// Partialdeploy: the paper's Experiment 3 in miniature. On the 63-AS
// topology, compare normal BGP, 50% deployment and full deployment of
// MOAS checking as the attacker population grows — partial deployment
// already contains most of the damage because MOAS-capable ASes stop
// false routes from propagating through them (§5.4).
//
// Run with:
//
//	go run ./examples/partialdeploy
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	set, err := repro.BuildPaperTopologies(42)
	if err != nil {
		return err
	}
	topo := set.T63
	fmt.Printf("63-AS topology: %d transit, %d stub ASes\n\n",
		len(topo.TransitASes()), len(topo.StubASes()))

	res, err := repro.Sweep(repro.SweepConfig{
		Topology:       topo,
		TopologyName:   "63",
		NumOrigins:     1,
		AttackerCounts: repro.AttackerCountsFor(topo, 30),
		Modes: []repro.ModeSpec{
			{Label: "Normal BGP", Detection: repro.DetectionOff},
			{Label: "Half MOAS Detection", Detection: repro.DetectionPartial, DeployFraction: 0.5},
			{Label: "Full MOAS Detection", Detection: repro.DetectionFull},
		},
		Seed:      7,
		ColdStart: true,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%-10s %-8s %-14s %-14s %-14s\n", "attackers", "pct", "normal", "half", "full")
	for _, p := range res.Points {
		fmt.Printf("%-10d %-8.1f %-13.2f%% %-13.2f%% %-13.2f%%\n",
			p.NumAttackers, p.AttackerPct,
			p.MeanFalsePct[0], p.MeanFalsePct[1], p.MeanFalsePct[2])
	}

	last := res.Points[len(res.Points)-1]
	reduction := 100 * (last.MeanFalsePct[0] - last.MeanFalsePct[1]) / last.MeanFalsePct[0]
	fmt.Printf("\nat %.0f%% attackers, half deployment cuts false-route adoption by %.0f%%\n",
		last.AttackerPct, reduction)
	return nil
}
