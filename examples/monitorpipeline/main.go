// Monitorpipeline: the §4.2 off-line deployment path, end to end. The
// synthetic RouteViews generator emits daily table dumps around the
// 2001-04-06 (AS3561, AS15412) incident; the off-line monitor ingests
// each day's dump, checks MOAS-list consistency, and classifies the
// multi-origin cases against a MOASRR database built from the quiet
// days — flagging the mass fault the moment it appears, without
// touching a single router.
//
// Run with:
//
//	go run ./examples/monitorpipeline
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/routegen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	gen, err := repro.NewDumpGenerator(repro.DefaultDumpConfig())
	if err != nil {
		return err
	}

	// Build the MOASRR database from a quiet day well before the event:
	// every origin set visible then is treated as authorized (in
	// operation this is the registry the paper's §4.4 DNS records hold).
	store := repro.NewMOASRRStore()
	quiet, err := gen.DumpForDay(routegen.EventAS15412Day - 30)
	if err != nil {
		return err
	}
	registerFromDump(store, quiet)
	fmt.Printf("MOASRR database seeded from %s: %d records\n",
		quiet.Date.Format("2006-01-02"), store.Len())

	// Replay the days around the incident through the monitor.
	for day := routegen.EventAS15412Day - 2; day <= routegen.EventAS15412Day+5; day++ {
		d, err := gen.DumpForDay(day)
		if err != nil {
			return err
		}
		mon := repro.NewMonitor(repro.WithMonitorResolver(store))
		mon.ObserveDump("route-views", d)

		invalid, valid, unknown := 0, 0, 0
		faultCases := 0
		for _, c := range mon.MOASCases() {
			switch {
			case c.Invalid:
				invalid++
			case c.Known:
				valid++
			default:
				unknown++
			}
			for _, o := range c.Origins {
				if o == 15412 {
					faultCases++
					break
				}
			}
		}
		marker := ""
		if faultCases > 0 {
			marker = fmt.Sprintf("  <-- AS15412 falsely originating %d prefixes", faultCases)
		}
		fmt.Printf("%s: %4d MOAS cases (%4d invalid, %4d valid, %4d unregistered)%s\n",
			d.Date.Format("2006-01-02"), len(mon.MOASCases()), invalid, valid, unknown, marker)
	}
	fmt.Println("\nthe spike days stand out exactly as in the paper's Figure 4")
	return nil
}

// registerFromDump records every prefix's visible origin set as its
// authorized MOASRR entry.
func registerFromDump(store *repro.MOASRRStore, d *repro.Dump) {
	origins := make(map[repro.Prefix][]repro.ASN)
	for _, e := range d.Entries {
		origins[e.Prefix] = append(origins[e.Prefix], e.Origin())
	}
	for prefix, asns := range origins {
		store.Register(prefix, repro.NewList(asns...))
	}
}
