// Hijack: an AS7007-style mass de-aggregation incident on a live,
// in-process BGP speaker mesh over TCP. A faulty AS re-originates every
// prefix it learned; speakers running MOAS validation detect each
// conflict against the MOASRR database and keep the true routes, while
// a plain-BGP control speaker happily installs the bogus ones.
//
// Run with:
//
//	go run ./examples/hijack
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		asBackbone repro.ASN = 701
		asVictim1  repro.ASN = 4006
		asVictim2  repro.ASN = 4544
		asFaulty   repro.ASN = 7007
		asPlain    repro.ASN = 9000 // plain BGP, no validation: the control
	)
	store := repro.NewMOASRRStore()

	// Victim prefixes, registered in the MOASRR database.
	prefixes := []repro.Prefix{
		repro.MustPrefix(0x0c000000, 8),  // 12.0.0.0/8
		repro.MustPrefix(0x80080000, 16), // 128.8.0.0/16
		repro.MustPrefix(0xc06f0000, 16), // 192.111.0.0/16
		repro.MustPrefix(0xcc170000, 16), // 204.23.0.0/16
	}
	owners := []repro.ASN{asVictim1, asVictim1, asVictim2, asVictim2}

	newSpeaker := func(asn repro.ASN, mode repro.ValidationMode) (*repro.Speaker, error) {
		return repro.NewSpeaker(repro.SpeakerConfig{
			AS:         asn,
			RouterID:   uint32(asn),
			Validation: mode,
			Resolver:   store,
			OnAlarm: func(c repro.Conflict) {
				fmt.Printf("  ALARM at checker: %v\n", c.Error())
			},
		})
	}

	backbone, err := newSpeaker(asBackbone, repro.ValidationDrop)
	if err != nil {
		return err
	}
	defer backbone.Close()
	victim1, err := newSpeaker(asVictim1, repro.ValidationOff)
	if err != nil {
		return err
	}
	defer victim1.Close()
	victim2, err := newSpeaker(asVictim2, repro.ValidationOff)
	if err != nil {
		return err
	}
	defer victim2.Close()
	faulty, err := newSpeaker(asFaulty, repro.ValidationOff)
	if err != nil {
		return err
	}
	defer faulty.Close()
	plain, err := newSpeaker(asPlain, repro.ValidationOff)
	if err != nil {
		return err
	}
	defer plain.Close()

	// Star around the backbone, plus the control peered with the faulty
	// AS so it hears the bogus routes first-hand.
	for _, leaf := range []*repro.Speaker{victim1, victim2, faulty, plain} {
		if err := connect(backbone, leaf); err != nil {
			return err
		}
	}
	if err := connect(faulty, plain); err != nil {
		return err
	}

	for i, p := range prefixes {
		store.Register(p, repro.NewList(owners[i]))
	}
	victim1.Originate(prefixes[0], repro.List{})
	victim1.Originate(prefixes[1], repro.List{})
	victim2.Originate(prefixes[2], repro.List{})
	victim2.Originate(prefixes[3], repro.List{})

	if err := waitRoutes(faulty, prefixes, 5*time.Second); err != nil {
		return err
	}
	fmt.Println("converged: faulty AS learned all victim prefixes")

	// The incident: the faulty AS re-originates everything it learned
	// as its own (the 1997-04-25 event, §3.3).
	fmt.Println("\nAS7007-style fault: re-originating all learned prefixes...")
	for _, p := range prefixes {
		faulty.Originate(p, repro.List{})
	}
	time.Sleep(300 * time.Millisecond)

	fmt.Println()
	hijackedAtBackbone, hijackedAtPlain := 0, 0
	for i, p := range prefixes {
		b := backbone.Table().Best(p)
		c := plain.Table().Best(p)
		if b == nil || b.OriginAS() != owners[i] {
			hijackedAtBackbone++
		}
		if c != nil && c.OriginAS() == asFaulty {
			hijackedAtPlain++
		}
		fmt.Printf("%-18s owner AS %-5s backbone(best origin)=AS %-5v plain(best origin)=AS %v\n",
			p, owners[i], originOf(b), originOf(c))
	}
	fmt.Printf("\nvalidating backbone hijacked on %d/%d prefixes; plain-BGP control hijacked on %d/%d\n",
		hijackedAtBackbone, len(prefixes), hijackedAtPlain, len(prefixes))
	fmt.Printf("backbone raised %d alarms; DNS MOASRR store served %d queries\n",
		len(backbone.Alarms()), store.Queries())
	if hijackedAtBackbone != 0 {
		return fmt.Errorf("validation failed to protect the backbone")
	}
	return nil
}

func originOf(r *repro.Route) any {
	if r == nil {
		return "-"
	}
	return r.OriginAS()
}

func connect(a, b *repro.Speaker) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	a.Listen(ln)
	return b.Connect(ln.Addr().String(), a.AS())
}

func waitRoutes(s *repro.Speaker, prefixes []repro.Prefix, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, p := range prefixes {
			if s.Table().Best(p) == nil {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("timeout waiting for convergence at AS %s", s.AS())
}
