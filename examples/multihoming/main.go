// Multihoming: the paper's Figure 2/6 scenario. An organization's
// prefix is legitimately originated by two ASes (BGP peering with one
// ISP, static announcement via another). Both attach the identical
// MOAS list {AS1, AS2}, so checkers see a consistent valid MOAS and no
// alarm fires. A forging attacker then announces the prefix with a
// superset list {AS1, AS2, ASZ} (§4.1) — set inequality exposes it
// immediately. Finally, the off-line monitor (§4.2) reaches the same
// verdicts from table dumps alone.
//
// Run with:
//
//	go run ./examples/multihoming
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		asOrg    repro.ASN = 1   // the organization's own AS
		asISP2   repro.ASN = 2   // second provider, static announcement
		asMid    repro.ASN = 7   // transit between the origins and others
		asObs    repro.ASN = 30  // the paper's "AS X"
		asZ      repro.ASN = 666 // the forging attacker "AS Z"
		asRemote repro.ASN = 40
	)
	prefix := repro.MustPrefix(0xc0a80000, 16) // 192.168.0.0/16 stand-in
	valid := repro.NewList(asOrg, asISP2)

	g := repro.NewGraph()
	g.AddEdge(asOrg, asMid)
	g.AddEdge(asISP2, asMid)
	g.AddEdge(asMid, asObs)
	g.AddEdge(asObs, asZ)
	g.AddEdge(asObs, asRemote)

	net, err := repro.NewSimNetwork(repro.SimConfig{
		Topology: g,
		Resolver: repro.ResolverFunc(func(p repro.Prefix) (repro.List, bool) {
			return valid, p == prefix
		}),
	})
	if err != nil {
		return err
	}
	for _, asn := range net.Nodes() {
		if asn != asZ {
			if err := net.SetMode(asn, repro.SimModeDetect); err != nil {
				return err
			}
		}
	}

	// Phase 1: both legitimate origins announce with the same list.
	if err := net.Originate(asOrg, prefix, valid); err != nil {
		return err
	}
	if err := net.Originate(asISP2, prefix, valid); err != nil {
		return err
	}
	if err := net.Run(); err != nil {
		return err
	}
	alarmsAfterValid := totalAlarms(net)
	fmt.Printf("valid MOAS %s for %s announced by both origins: %d alarms (want 0)\n",
		valid, prefix, alarmsAfterValid)
	if alarmsAfterValid != 0 {
		return fmt.Errorf("false alarm on a valid MOAS")
	}

	// Phase 2: AS Z forges a superset list including itself.
	forged := valid.WithOrigin(asZ)
	fmt.Printf("\nAS %s falsely originates %s with forged list %s\n", asZ, prefix, forged)
	if err := net.OriginateInvalid(asZ, prefix, forged); err != nil {
		return err
	}
	if err := net.Run(); err != nil {
		return err
	}
	fmt.Printf("alarms after the forgery: %d (set inequality %s != %s)\n",
		totalAlarms(net), forged, valid)

	census := net.TakeCensus(prefix, valid)
	fmt.Printf("census: %d/%d non-attacker ASes adopted the forged route\n",
		census.AdoptedFalse, census.NonAttackers)
	if census.AdoptedFalse != 0 {
		return fmt.Errorf("forged superset list was not contained")
	}

	// Phase 3: the off-line monitor reaches the same verdicts from
	// table dumps alone (§4.2's quick-deployment path).
	store := repro.NewMOASRRStore()
	store.Register(prefix, valid)
	mon := repro.NewMonitor(repro.WithMonitorResolver(store))
	mon.ObserveEntry("vantage-obs", prefix, repro.NewSeqPath(asMid, asOrg), valid.Communities())
	mon.ObserveEntry("vantage-obs", prefix, repro.NewSeqPath(asMid, asISP2), valid.Communities())
	mon.ObserveEntry("vantage-remote", prefix, repro.NewSeqPath(asObs, asZ), forged.Communities())

	fmt.Printf("\noff-line monitor: %d alarm(s)\n", len(mon.Alarms()))
	for _, c := range mon.MOASCases() {
		verdict := "valid"
		if c.Invalid {
			verdict = "INVALID"
		}
		fmt.Printf("  %s origins %v -> %s\n", c.Prefix, c.Origins, verdict)
	}
	if len(mon.Alarms()) == 0 {
		return fmt.Errorf("monitor missed the forged list")
	}
	return nil
}

func totalAlarms(net *repro.SimNetwork) int {
	n := 0
	for _, asn := range net.Nodes() {
		n += len(net.Node(asn).Alarms())
	}
	return n
}
