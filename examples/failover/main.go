// Failover: detection is stateful and survives topology churn. The
// victim's primary path fails mid-attack; the network reroutes over the
// backup, the MOAS checkers keep rejecting the hijacker throughout, and
// the event tracer shows the whole sequence — announcements, alarms,
// rejections, best-route changes — in virtual-time order.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/simbgp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Diamond with a tail:
	//
	//	      2 --- 3
	//	     /       \
	//	    1         5 --- 9(attacker)
	//	     \       /
	//	      4 -----
	const (
		origin   repro.ASN = 1
		attacker repro.ASN = 9
	)
	g := repro.NewGraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 5)
	g.AddEdge(1, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 9)

	prefix := repro.MustPrefix(0x83b30000, 16)
	valid := repro.NewList(origin)

	net, err := repro.NewSimNetwork(repro.SimConfig{
		Topology: g,
		Resolver: repro.ResolverFunc(func(p repro.Prefix) (repro.List, bool) {
			return valid, p == prefix
		}),
	})
	if err != nil {
		return err
	}
	tracer := simbgp.NewTracer(4096, simbgp.WithFilter(func(e simbgp.TraceEvent) bool {
		// Keep the interesting plot points; drop the announcement noise.
		return e.Kind != simbgp.EvAnnounce
	}))
	net.Attach(tracer)
	for _, asn := range net.Nodes() {
		if asn != attacker {
			if err := net.SetMode(asn, repro.SimModeDetect); err != nil {
				return err
			}
		}
	}

	fmt.Println("phase 1: origin announces; attacker hijacks")
	if err := net.Originate(origin, prefix, repro.List{}); err != nil {
		return err
	}
	if err := net.OriginateInvalid(attacker, prefix, repro.List{}); err != nil {
		return err
	}
	if err := net.Run(); err != nil {
		return err
	}
	report(net, prefix, valid)

	fmt.Println("\nphase 2: the 3-5 link fails; traffic reroutes via 4")
	if err := net.FailLink(3, 5); err != nil {
		return err
	}
	if err := net.Run(); err != nil {
		return err
	}
	report(net, prefix, valid)

	fmt.Println("\nphase 3: the 1-4 link also fails; only 1-2-3 remains cut off from 5")
	if err := net.FailLink(1, 4); err != nil {
		return err
	}
	if err := net.Run(); err != nil {
		return err
	}
	report(net, prefix, valid)

	fmt.Println("\nevent trace (alarms, rejections, best-route changes):")
	for _, e := range tracer.Events() {
		fmt.Println(" ", e)
	}
	if tracer.Dropped() > 0 {
		fmt.Printf("  (%d earlier events evicted)\n", tracer.Dropped())
	}
	return nil
}

func report(net *repro.SimNetwork, prefix repro.Prefix, valid repro.List) {
	c := net.TakeCensus(prefix, valid)
	fmt.Printf("  census: %d/%d hijacked, %d without a route\n",
		c.AdoptedFalse, c.NonAttackers, c.NoRoute)
	for _, asn := range net.Nodes() {
		best := net.Node(asn).Best(prefix)
		if best == nil {
			fmt.Printf("  AS %-2s has no route\n", asn)
			continue
		}
		fmt.Printf("  AS %-2s via path [%s]\n", asn, best.Path)
	}
}
