// Quickstart: a six-AS simulated internetwork in which AS 52 falsely
// originates a prefix owned by AS 4 — the exact scenario of the paper's
// Figure 3 — and every MOAS-capable AS detects the conflict and keeps
// routing to the true origin.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Figure 1/3 topology: AS 4 originates the prefix; AS Y and AS Z
	// transit; AS X is the observer; AS 52 is the false origin.
	const (
		asOrigin   repro.ASN = 4
		asY        repro.ASN = 10
		asZ        repro.ASN = 20
		asX        repro.ASN = 30
		asAttacker repro.ASN = 52
		asStub     repro.ASN = 60
	)
	g := repro.NewGraph()
	g.AddEdge(asOrigin, asY)
	g.AddEdge(asOrigin, asZ)
	g.AddEdge(asY, asX)
	g.AddEdge(asZ, asX)
	g.AddEdge(asX, asAttacker)
	// The stub is multi-homed: via the attacker and via AS X. Were the
	// attacker its only provider, it would be captured — the paper's
	// single-path caveat (§4.1).
	g.AddEdge(asAttacker, asStub)
	g.AddEdge(asX, asStub)

	prefix := repro.MustPrefix(0x83b30000, 16) // 131.179.0.0/16
	valid := repro.NewList(asOrigin)

	// The resolver plays the role of the DNS MOASRR lookup (§4.4).
	net, err := repro.NewSimNetwork(repro.SimConfig{
		Topology: g,
		Resolver: repro.ResolverFunc(func(p repro.Prefix) (repro.List, bool) {
			return valid, p == prefix
		}),
	})
	if err != nil {
		return err
	}
	// Everyone but the attacker checks MOAS lists.
	for _, asn := range net.Nodes() {
		if asn != asAttacker {
			if err := net.SetMode(asn, repro.SimModeDetect); err != nil {
				return err
			}
		}
	}

	if err := net.Originate(asOrigin, prefix, repro.List{}); err != nil {
		return err
	}
	if err := net.OriginateInvalid(asAttacker, prefix, repro.List{}); err != nil {
		return err
	}
	if err := net.Run(); err != nil {
		return err
	}

	fmt.Printf("prefix %s, true origin AS %s, false origin AS %s\n\n", prefix, asOrigin, asAttacker)
	for _, asn := range net.Nodes() {
		node := net.Node(asn)
		best := node.Best(prefix)
		status := "no route"
		if best != nil {
			status = fmt.Sprintf("best path [%s]", best.Path)
		}
		fmt.Printf("AS %-3s %-24s alarms=%d\n", asn, status, len(node.Alarms()))
	}

	census := net.TakeCensus(prefix, valid)
	fmt.Printf("\ncensus: %d non-attacker ASes, %d adopted the false route (%.1f%%), %d raised alarms\n",
		census.NonAttackers, census.AdoptedFalse, census.FalsePct(), census.AlarmedNodes)
	if census.AdoptedFalse != 0 {
		return fmt.Errorf("expected full detection to stop the hijack")
	}
	fmt.Println("hijack contained: every AS still routes to the true origin")
	return nil
}
