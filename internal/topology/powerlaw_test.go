package topology

import (
	"testing"

	"repro/internal/astypes"
)

func TestGeneratePowerLawShape(t *testing.T) {
	res, err := GeneratePowerLaw(PowerLawParams{Nodes: 2000, MinDegree: 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.NumNodes() != 2000 {
		t.Fatalf("nodes = %d, want 2000", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("power-law graph disconnected")
	}
	deg := g.Degrees()
	if deg.Min < 2 {
		t.Errorf("min degree %d < attachment degree", deg.Min)
	}
	// Preferential attachment must concentrate edges on hubs: the top
	// node should dwarf the attachment degree, and the MLE exponent
	// should land in the heavy-tail range of the measured AS graph.
	if deg.Max < 40 {
		t.Errorf("max degree %d: no hub concentration", deg.Max)
	}
	if a := g.PowerLawAlpha(2); a < 1.8 || a > 3.5 {
		t.Errorf("alpha = %.2f, want heavy-tail range [1.8, 3.5]", a)
	}
	// Hubs arrive early: the highest-degree node should be a low ASN.
	var hub astypes.ASN
	hubDeg := 0
	for _, n := range g.Nodes() {
		if d := g.Degree(n); d > hubDeg {
			hub, hubDeg = n, d
		}
	}
	if hub > 100 {
		t.Errorf("top hub is AS %d, want an early arrival", hub)
	}
	// Transit/stub split: stubs are degree-MinDegree nodes and must be
	// the majority, as on the real internet.
	stubs := len(res.StubASes())
	if stubs <= g.NumNodes()/2 {
		t.Errorf("stubs = %d of %d, want a majority", stubs, g.NumNodes())
	}
	for _, s := range res.StubASes()[:10] {
		if g.Degree(s) != 2 {
			t.Errorf("stub AS %d has degree %d", s, g.Degree(s))
		}
	}
}

func TestGeneratePowerLawDeterministic(t *testing.T) {
	a, err := GeneratePowerLaw(PowerLawParams{Nodes: 300, MinDegree: 3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GeneratePowerLaw(PowerLawParams{Nodes: 300, MinDegree: 3}, 11)
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
	c, _ := GeneratePowerLaw(PowerLawParams{Nodes: 300, MinDegree: 3}, 12)
	if len(c.Graph.Edges()) == len(ea) {
		same := true
		for i, e := range c.Graph.Edges() {
			if e != ea[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestGeneratePowerLawValidation(t *testing.T) {
	if _, err := GeneratePowerLaw(PowerLawParams{Nodes: 3, MinDegree: 2}, 1); err == nil {
		t.Error("accepted too-small size")
	}
	if _, err := GeneratePowerLaw(PowerLawParams{Nodes: 10, MinDegree: 0}, 1); err == nil {
		t.Error("accepted zero attachment degree")
	}
}
