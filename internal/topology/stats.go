package topology

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/astypes"
)

// GraphStats summarizes the structural properties the paper's topology
// discussion leans on (rich interconnection, small diameter).
type GraphStats struct {
	Nodes, Edges int
	Degree       DegreeStats
	// Diameter is the longest shortest path; MeanDistance averages all
	// pairwise shortest-path lengths. Both are 0 for graphs with fewer
	// than 2 nodes and computed on the largest component if disconnected.
	Diameter     int
	MeanDistance float64
	// Clustering is the mean local clustering coefficient.
	Clustering float64
}

// Stats computes the summary. O(V * (V + E)); fine for the topology
// sizes this repository works at.
func (g *Graph) Stats() GraphStats {
	s := GraphStats{
		Nodes:  g.NumNodes(),
		Edges:  g.NumEdges(),
		Degree: g.Degrees(),
	}
	work := g
	if !g.Connected() && g.NumNodes() > 0 {
		work = g.LargestComponent()
	}
	var (
		sum   int
		pairs int
	)
	for _, src := range work.Nodes() {
		dist := work.ShortestPathLens(src)
		for dst, d := range dist {
			if dst == src {
				continue
			}
			sum += d
			pairs++
			if d > s.Diameter {
				s.Diameter = d
			}
		}
	}
	if pairs > 0 {
		s.MeanDistance = float64(sum) / float64(pairs)
	}
	s.Clustering = g.clustering()
	return s
}

// clustering returns the mean local clustering coefficient: for each
// node with degree >= 2, the fraction of neighbor pairs that are
// themselves connected.
func (g *Graph) clustering() float64 {
	var (
		total float64
		count int
	)
	for _, v := range g.Nodes() {
		nbrs := g.Neighbors(v)
		if len(nbrs) < 2 {
			continue
		}
		links := 0
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				if g.HasEdge(nbrs[i], nbrs[j]) {
					links++
				}
			}
		}
		possible := len(nbrs) * (len(nbrs) - 1) / 2
		total += float64(links) / float64(possible)
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// WriteDOT renders the sampled topology as Graphviz DOT: transit ASes
// as boxes, stubs as circles.
func (r *SampleResult) WriteDOT(w io.Writer, name string) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("graph %s {\n", name); err != nil {
		return fmt.Errorf("write dot: %w", err)
	}
	for _, n := range r.Graph.Nodes() {
		shape := "circle"
		if r.Transit[n] {
			shape = "box"
		}
		if err := p("  %s [shape=%s];\n", n, shape); err != nil {
			return fmt.Errorf("write dot: %w", err)
		}
	}
	for _, e := range r.Graph.Edges() {
		if err := p("  %s -- %s;\n", e[0], e[1]); err != nil {
			return fmt.Errorf("write dot: %w", err)
		}
	}
	if err := p("}\n"); err != nil {
		return fmt.Errorf("write dot: %w", err)
	}
	return nil
}

// WriteEdgeList renders the graph as "a b" lines in deterministic
// order, with a summary comment header.
func (r *SampleResult) WriteEdgeList(w io.Writer, name string) error {
	g := r.Graph
	deg := g.Degrees()
	if _, err := fmt.Fprintf(w,
		"# %s: %d nodes (%d transit, %d stub), %d edges, degree min/mean/max %d/%.1f/%d\n",
		name, g.NumNodes(), len(r.TransitASes()), len(r.StubASes()), g.NumEdges(),
		deg.Min, deg.Mean, deg.Max); err != nil {
		return fmt.Errorf("write edge list: %w", err)
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "%s %s\n", e[0], e[1]); err != nil {
			return fmt.Errorf("write edge list: %w", err)
		}
	}
	return nil
}

// DegreeDistribution returns (degree, count) pairs ascending by degree.
func (g *Graph) DegreeDistribution() [][2]int {
	counts := make(map[int]int)
	for _, n := range g.Nodes() {
		counts[g.Degree(n)]++
	}
	out := make([][2]int, 0, len(counts))
	for d, c := range counts {
		out = append(out, [2]int{d, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// PowerLawAlpha estimates the exponent of a power-law degree
// distribution P(d) ~ d^-alpha by the continuous maximum-likelihood
// estimator of Clauset-Shalizi-Newman over nodes with degree >= dmin:
// alpha = 1 + n / sum ln(d_i / (dmin - 1/2)). Returns 0 when fewer than
// two nodes reach dmin. The measured AS graph sits near alpha ~ 2.1.
func (g *Graph) PowerLawAlpha(dmin int) float64 {
	if dmin < 1 {
		dmin = 1
	}
	var (
		sum float64
		n   int
	)
	for _, nbrs := range g.adj {
		d := len(nbrs)
		if d < dmin {
			continue
		}
		sum += math.Log(float64(d) / (float64(dmin) - 0.5))
		n++
	}
	if n < 2 || sum == 0 {
		return 0
	}
	return 1 + float64(n)/sum
}

// ParseEdgeList reads "a b" lines (comments and blanks skipped) into a
// graph — the inverse of WriteEdgeList, for loading saved topologies.
func ParseEdgeList(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("parse edge list line %d: want \"a b\", got %q", lineNo, line)
		}
		a, err := astypes.ParseASN(fields[0])
		if err != nil {
			return nil, fmt.Errorf("parse edge list line %d: %w", lineNo, err)
		}
		b, err := astypes.ParseASN(fields[1])
		if err != nil {
			return nil, fmt.Errorf("parse edge list line %d: %w", lineNo, err)
		}
		g.AddEdge(a, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("parse edge list: %w", err)
	}
	return g, nil
}
