package topology

import (
	"repro/internal/astypes"
)

// AS business relationships in the Gao-Rexford model. The paper's
// simulation floods announcements over every peering; real BGP export
// policy is constrained by these relationships (valley-free routing),
// which internal/simbgp offers as an ablation.
type Relation int

// Relation values, read as "a is X of b" for Of(a, b).
const (
	// RelProvider: a sells transit to b.
	RelProvider Relation = iota + 1
	// RelCustomer: a buys transit from b.
	RelCustomer
	// RelPeer: settlement-free peering.
	RelPeer
	// RelNone: a and b do not peer.
	RelNone
)

func (r Relation) String() string {
	switch r {
	case RelProvider:
		return "provider"
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	default:
		return "none"
	}
}

// Relations holds the inferred relationship of every edge.
type Relations struct {
	rel map[[2]astypes.ASN]Relation // keyed low-high; value is low's role
}

// NewRelations returns an empty relationship table for manual policy
// configuration (operators know their contracts; inference is only a
// fallback).
func NewRelations() *Relations {
	return &Relations{rel: make(map[[2]astypes.ASN]Relation)}
}

// Set records a's relationship to b (and implicitly the inverse).
func (r *Relations) Set(a, b astypes.ASN, relation Relation) {
	if a > b {
		switch relation {
		case RelProvider:
			relation = RelCustomer
		case RelCustomer:
			relation = RelProvider
		}
		a, b = b, a
	}
	r.rel[[2]astypes.ASN{a, b}] = relation
}

// InferRelations classifies every edge of g with the standard
// degree-based heuristic (after Gao): a transit AS adjacent to a stub
// is the stub's provider; between two ASes of the same kind, the one
// with substantially higher degree (>= 1.5x) is the provider, otherwise
// they peer.
func InferRelations(g *Graph, transit map[astypes.ASN]bool) *Relations {
	r := &Relations{rel: make(map[[2]astypes.ASN]Relation, g.NumEdges())}
	for _, e := range g.Edges() {
		lo, hi := e[0], e[1]
		r.rel[e] = classify(g, transit, lo, hi)
	}
	return r
}

func classify(g *Graph, transit map[astypes.ASN]bool, lo, hi astypes.ASN) Relation {
	switch {
	case transit[lo] && !transit[hi]:
		return RelProvider
	case !transit[lo] && transit[hi]:
		return RelCustomer
	}
	dl, dh := g.Degree(lo), g.Degree(hi)
	switch {
	case 2*dl >= 3*dh: // dl >= 1.5*dh
		return RelProvider
	case 2*dh >= 3*dl:
		return RelCustomer
	default:
		return RelPeer
	}
}

// Of reports a's relationship to b (RelNone if they do not peer).
func (r *Relations) Of(a, b astypes.ASN) Relation {
	if a > b {
		switch r.Of(b, a) {
		case RelProvider:
			return RelCustomer
		case RelCustomer:
			return RelProvider
		case RelPeer:
			return RelPeer
		default:
			return RelNone
		}
	}
	rel, ok := r.rel[[2]astypes.ASN{a, b}]
	if !ok {
		return RelNone
	}
	return rel
}

// Counts tallies classified edges by kind: customer-provider transit
// edges and settlement-free peerings.
func (r *Relations) Counts() (providerCustomer, peer int) {
	for _, rel := range r.rel {
		switch rel {
		case RelProvider, RelCustomer:
			providerCustomer++
		case RelPeer:
			peer++
		}
	}
	return providerCustomer, peer
}

// Customers returns a's customer neighbors in ascending order.
func (r *Relations) Customers(g *Graph, a astypes.ASN) []astypes.ASN {
	var out []astypes.ASN
	for _, nb := range g.Neighbors(a) {
		if r.Of(a, nb) == RelProvider {
			out = append(out, nb)
		}
	}
	return out
}
