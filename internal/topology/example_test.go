package topology_test

import (
	"fmt"

	"repro/internal/astypes"
	"repro/internal/topology"
)

// The §5.1 construction end to end: infer an AS-level topology from
// observed AS paths, classify roles, and sample a simulation topology.
func ExampleInferFromPaths() {
	paths := []astypes.ASPath{
		astypes.NewSeqPath(6447, 701, 4),
		astypes.NewSeqPath(6447, 701, 226),
		astypes.NewSeqPath(6447, 1239, 701, 4),
		astypes.NewSeqPath(6447, 1239, 7018),
	}
	inf := topology.InferFromPaths(paths)
	fmt.Println("nodes:", inf.Graph.NumNodes(), "edges:", inf.Graph.NumEdges())
	fmt.Println("transit:", inf.TransitASes())
	fmt.Println("stubs:", inf.StubASes())
	// Output:
	// nodes: 6 edges: 6
	// transit: [701 1239]
	// stubs: [4 226 6447 7018]
}

// The three simulation topologies of the paper are built
// deterministically from a seed.
func ExampleBuildPaperTopologies() {
	set, err := topology.BuildPaperTopologies(42)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(set.Sizes())
	fmt.Println("46-AS connected:", set.T46.Graph.Connected())
	// Output:
	// [25 46 63]
	// 46-AS connected: true
}
