package topology

import (
	"math/rand"
	"testing"

	"repro/internal/astypes"
)

func lineGraph(asns ...astypes.ASN) *Graph {
	g := NewGraph()
	for i := 1; i < len(asns); i++ {
		g.AddEdge(asns[i-1], asns[i])
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddNode(9)
	if g.NumNodes() != 4 || g.NumEdges() != 2 {
		t.Errorf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("edges must be undirected")
	}
	if g.HasEdge(1, 3) {
		t.Error("phantom edge")
	}
	if g.Degree(2) != 2 || g.Degree(9) != 0 {
		t.Error("degree wrong")
	}
	got := g.Neighbors(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Neighbors(2) = %v", got)
	}
	// Self-loops ignored.
	g.AddEdge(5, 5)
	if g.HasEdge(5, 5) {
		t.Error("self-loop added")
	}
}

func TestGraphRemoveNode(t *testing.T) {
	g := lineGraph(1, 2, 3)
	g.RemoveNode(2)
	if g.HasNode(2) || g.HasEdge(1, 2) || g.HasEdge(3, 2) {
		t.Error("RemoveNode left residue")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Errorf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestGraphCloneIndependent(t *testing.T) {
	g := lineGraph(1, 2, 3)
	cp := g.Clone()
	cp.AddEdge(1, 3)
	cp.RemoveNode(2)
	if !g.HasNode(2) || g.HasEdge(1, 3) {
		t.Error("clone aliases original")
	}
}

func TestComponentsAndConnected(t *testing.T) {
	g := lineGraph(1, 2, 3)
	g.AddEdge(10, 11)
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	lc := g.LargestComponent()
	if lc.NumNodes() != 3 || !lc.HasNode(2) {
		t.Errorf("largest component = %v", lc.Nodes())
	}
	if !lc.Connected() {
		t.Error("largest component should be connected")
	}
	if NewGraph().Connected() {
		t.Error("empty graph is not connected")
	}
}

func TestShortestPaths(t *testing.T) {
	g := lineGraph(1, 2, 3, 4)
	g.AddEdge(1, 4) // shortcut
	dist := g.ShortestPathLens(1)
	if dist[4] != 1 || dist[3] != 2 || dist[2] != 1 || dist[1] != 0 {
		t.Errorf("dist = %v", dist)
	}
	path := g.ShortestPath(1, 3)
	if len(path) != 3 || path[0] != 1 || path[2] != 3 {
		t.Errorf("path = %v", path)
	}
	if p := g.ShortestPath(1, 1); len(p) != 1 {
		t.Errorf("self path = %v", p)
	}
	g.AddNode(99)
	if g.ShortestPath(1, 99) != nil {
		t.Error("unreachable node should have nil path")
	}
}

func TestSubgraphAndEdges(t *testing.T) {
	g := lineGraph(1, 2, 3, 4)
	sub := g.Subgraph(map[astypes.ASN]bool{1: true, 2: true, 4: true})
	if sub.NumNodes() != 3 || sub.NumEdges() != 1 {
		t.Errorf("subgraph: %v", sub)
	}
	edges := g.Edges()
	if len(edges) != 3 || edges[0] != [2]astypes.ASN{1, 2} {
		t.Errorf("edges = %v", edges)
	}
}

func TestDegrees(t *testing.T) {
	g := lineGraph(1, 2, 3)
	d := g.Degrees()
	if d.Min != 1 || d.Max != 2 || d.Mean < 1.3 || d.Mean > 1.4 {
		t.Errorf("degrees = %+v", d)
	}
	if (NewGraph().Degrees() != DegreeStats{}) {
		t.Error("empty graph degree stats should be zero")
	}
}

func TestInferFromPaths(t *testing.T) {
	paths := []astypes.ASPath{
		astypes.NewSeqPath(6453, 1239, 4621),
		astypes.NewSeqPath(6453, 701, 88),
		astypes.NewSeqPath(6453, 701, 701, 42), // prepending collapsed
	}
	inf := InferFromPaths(paths)
	if !inf.Graph.HasEdge(6453, 1239) || !inf.Graph.HasEdge(1239, 4621) {
		t.Error("peerings not inferred")
	}
	if !inf.IsTransit(1239) || !inf.IsTransit(701) {
		t.Error("interior ASes should be transit")
	}
	if inf.IsTransit(4621) || inf.IsTransit(6453) {
		t.Error("endpoints should not be transit from these paths")
	}
	if inf.Graph.HasEdge(701, 701) {
		t.Error("prepending should not create self-edges")
	}
	if !inf.Graph.HasEdge(701, 42) {
		t.Error("prepending should collapse, preserving the real edge")
	}
	stubs := inf.StubASes()
	transits := inf.TransitASes()
	if len(stubs)+len(transits) != inf.Graph.NumNodes() {
		t.Error("stub/transit partition broken")
	}
}

func TestInferFromPathsASSet(t *testing.T) {
	p := astypes.ASPath{Segments: []astypes.Segment{
		{Type: astypes.SegSequence, ASNs: []astypes.ASN{701, 1239}},
		{Type: astypes.SegSet, ASNs: []astypes.ASN{4006, 4544}},
	}}
	inf := InferFromPaths([]astypes.ASPath{p})
	if !inf.Graph.HasNode(4006) || !inf.Graph.HasNode(4544) {
		t.Error("AS_SET members should be registered")
	}
	if inf.Graph.HasEdge(1239, 4006) {
		t.Error("AS_SET must not contribute peering edges")
	}
}

func TestSampleConstruction(t *testing.T) {
	inf, err := GenerateInternet(DefaultInternetParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	res, err := Sample(inf, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if !g.Connected() {
		t.Fatal("sampled topology must be connected")
	}
	// Pruning invariant: no transit AS with degree <= 1 survives.
	for _, a := range g.Nodes() {
		if res.Transit[a] && g.Degree(a) <= 1 {
			t.Errorf("transit AS %s has degree %d after pruning", a, g.Degree(a))
		}
	}
	// Role partition matches the inference.
	for _, a := range g.Nodes() {
		if res.Transit[a] != inf.Transit[a] {
			t.Errorf("role of AS %s changed in sampling", a)
		}
	}
	// Determinism: same seed, same sample.
	rng2 := rand.New(rand.NewSource(2))
	res2, err := Sample(inf, 0.1, rng2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumNodes() != res2.Graph.NumNodes() ||
		res.Graph.NumEdges() != res2.Graph.NumEdges() {
		t.Error("sampling is not deterministic")
	}
}

func TestSampleValidatesFraction(t *testing.T) {
	inf, _ := GenerateInternet(DefaultInternetParams(), 1)
	rng := rand.New(rand.NewSource(1))
	for _, frac := range []float64{0, -1, 1.5} {
		if _, err := Sample(inf, frac, rng); err == nil {
			t.Errorf("fraction %v accepted", frac)
		}
	}
}

func TestSampleStubSet(t *testing.T) {
	inf, _ := GenerateInternet(DefaultInternetParams(), 1)
	stubs := inf.StubASes()[:5]
	res, err := SampleStubSet(inf, stubs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Connected() {
		t.Error("explicit stub-set sample should be connected")
	}
	// A transit AS is not a valid stub selection.
	if _, err := SampleStubSet(inf, inf.TransitASes()[:1]); err == nil {
		t.Error("transit AS accepted as stub")
	}
	if _, err := SampleStubSet(inf, nil); err == nil {
		t.Error("empty selection accepted")
	}
	if _, err := SampleStubSet(inf, []astypes.ASN{60000}); err == nil {
		t.Error("unknown AS accepted")
	}
}

func TestGenerateInternetShape(t *testing.T) {
	params := DefaultInternetParams()
	inf, err := GenerateInternet(params, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !inf.Graph.Connected() {
		t.Error("synthetic internet must be connected")
	}
	wantNodes := params.Core + params.Mid + params.Stubs
	if inf.Graph.NumNodes() != wantNodes {
		t.Errorf("nodes = %d, want %d", inf.Graph.NumNodes(), wantNodes)
	}
	if got := len(inf.TransitASes()); got != params.Core+params.Mid {
		t.Errorf("transit count = %d", got)
	}
	// Determinism.
	inf2, _ := GenerateInternet(params, 42)
	if inf.Graph.NumEdges() != inf2.Graph.NumEdges() {
		t.Error("generation is not deterministic")
	}
	// Different seed, different graph (overwhelmingly likely).
	inf3, _ := GenerateInternet(params, 43)
	if inf.Graph.NumEdges() == inf3.Graph.NumEdges() {
		t.Log("warning: same edge count for different seeds (possible, but suspicious)")
	}
}

func TestGenerateInternetValidation(t *testing.T) {
	bad := []InternetParams{
		{Core: 1, Mid: 5, Stubs: 5},
		{Core: 5, Mid: 0, Stubs: 5},
		{Core: 5, Mid: 5, Stubs: 0},
		{Core: 5, Mid: 5, Stubs: 5, MultiHomeProb: 1.5},
	}
	for _, p := range bad {
		if _, err := GenerateInternet(p, 1); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestBuildPaperTopologies(t *testing.T) {
	set, err := BuildPaperTopologies(42)
	if err != nil {
		t.Fatal(err)
	}
	if set.Sizes() != [3]int{25, 46, 63} {
		t.Errorf("sizes = %v", set.Sizes())
	}
	for _, s := range []*SampleResult{set.T25, set.T46, set.T63} {
		if !s.Graph.Connected() {
			t.Error("paper topology must be connected")
		}
		if len(s.StubASes()) == 0 || len(s.TransitASes()) == 0 {
			t.Error("paper topology must mix roles")
		}
	}
	// ByName accessor.
	for _, name := range []string{"25", "46", "63"} {
		if _, err := set.ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := set.ByName("99"); err == nil {
		t.Error("ByName(99) should fail")
	}
	// Determinism across builds.
	set2, err := BuildPaperTopologies(42)
	if err != nil {
		t.Fatal(err)
	}
	if set.T46.Graph.NumEdges() != set2.T46.Graph.NumEdges() {
		t.Error("paper topologies are not deterministic")
	}
}
