// Package topology models AS-level Internet topologies: the undirected
// peering graph, inference of peerings and transit/stub roles from
// observed AS paths (paper §5.1), the paper's stub-sampling and
// iterative-pruning construction of simulation topologies, and a
// deterministic synthetic Internet generator that stands in for the
// Oregon RouteViews table the authors sampled.
package topology

import (
	"fmt"
	"sort"

	"repro/internal/astypes"
)

// Graph is an undirected AS-level peering graph. The zero value is not
// usable; call NewGraph.
type Graph struct {
	adj map[astypes.ASN]map[astypes.ASN]struct{}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{adj: make(map[astypes.ASN]map[astypes.ASN]struct{})}
}

// Clone deep-copies the graph.
func (g *Graph) Clone() *Graph {
	cp := NewGraph()
	for a, nbrs := range g.adj {
		m := make(map[astypes.ASN]struct{}, len(nbrs))
		for b := range nbrs {
			m[b] = struct{}{}
		}
		cp.adj[a] = m
	}
	return cp
}

// AddNode ensures the node exists (possibly with no edges).
func (g *Graph) AddNode(a astypes.ASN) {
	if _, ok := g.adj[a]; !ok {
		g.adj[a] = make(map[astypes.ASN]struct{})
	}
}

// AddEdge inserts the undirected peering (a, b). Self-loops are ignored.
func (g *Graph) AddEdge(a, b astypes.ASN) {
	if a == b {
		return
	}
	g.AddNode(a)
	g.AddNode(b)
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
}

// RemoveNode deletes a node and all incident edges.
func (g *Graph) RemoveNode(a astypes.ASN) {
	for b := range g.adj[a] {
		delete(g.adj[b], a)
	}
	delete(g.adj, a)
}

// HasNode reports node membership.
func (g *Graph) HasNode(a astypes.ASN) bool {
	_, ok := g.adj[a]
	return ok
}

// HasEdge reports whether a and b peer.
func (g *Graph) HasEdge(a, b astypes.ASN) bool {
	_, ok := g.adj[a][b]
	return ok
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, nbrs := range g.adj {
		n += len(nbrs)
	}
	return n / 2
}

// Degree returns the number of peers of a.
func (g *Graph) Degree(a astypes.ASN) int { return len(g.adj[a]) }

// Nodes returns all nodes in ascending ASN order.
func (g *Graph) Nodes() []astypes.ASN {
	out := make([]astypes.ASN, 0, len(g.adj))
	for a := range g.adj {
		out = append(out, a)
	}
	astypes.SortASNs(out)
	return out
}

// Neighbors returns a's peers in ascending ASN order.
func (g *Graph) Neighbors(a astypes.ASN) []astypes.ASN {
	nbrs := g.adj[a]
	out := make([]astypes.ASN, 0, len(nbrs))
	for b := range nbrs {
		out = append(out, b)
	}
	astypes.SortASNs(out)
	return out
}

// Edges returns each undirected edge once as an ordered (low, high)
// pair, sorted for deterministic iteration.
func (g *Graph) Edges() [][2]astypes.ASN {
	var out [][2]astypes.ASN
	for a, nbrs := range g.adj {
		for b := range nbrs {
			if a < b {
				out = append(out, [2]astypes.ASN{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Subgraph returns the induced subgraph on keep.
func (g *Graph) Subgraph(keep map[astypes.ASN]bool) *Graph {
	sub := NewGraph()
	for a := range g.adj {
		if keep[a] {
			sub.AddNode(a)
		}
	}
	for a, nbrs := range g.adj {
		if !keep[a] {
			continue
		}
		for b := range nbrs {
			if keep[b] {
				sub.AddEdge(a, b)
			}
		}
	}
	return sub
}

// Connected reports whether the graph is non-empty and connected.
func (g *Graph) Connected() bool {
	if len(g.adj) == 0 {
		return false
	}
	comp := g.Components()
	return len(comp) == 1
}

// Components returns the connected components, each as a sorted node
// list, ordered by their smallest member.
func (g *Graph) Components() [][]astypes.ASN {
	visited := make(map[astypes.ASN]bool, len(g.adj))
	var comps [][]astypes.ASN
	for _, start := range g.Nodes() {
		if visited[start] {
			continue
		}
		var comp []astypes.ASN
		queue := []astypes.ASN{start}
		visited[start] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			comp = append(comp, cur)
			for _, nb := range g.Neighbors(cur) {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		astypes.SortASNs(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// LargestComponent returns the induced subgraph on the largest connected
// component (ties broken by smallest member ASN).
func (g *Graph) LargestComponent() *Graph {
	comps := g.Components()
	if len(comps) == 0 {
		return NewGraph()
	}
	best := comps[0]
	for _, c := range comps[1:] {
		if len(c) > len(best) {
			best = c
		}
	}
	keep := make(map[astypes.ASN]bool, len(best))
	for _, a := range best {
		keep[a] = true
	}
	return g.Subgraph(keep)
}

// ShortestPathLens returns BFS hop counts from src to every reachable
// node (src itself maps to 0).
func (g *Graph) ShortestPathLens(src astypes.ASN) map[astypes.ASN]int {
	dist := map[astypes.ASN]int{src: 0}
	queue := []astypes.ASN{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(cur) {
			if _, ok := dist[nb]; !ok {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest path (node sequence, inclusive of
// endpoints) from src to dst, preferring lexicographically smaller
// next-hops for determinism, or nil if unreachable.
func (g *Graph) ShortestPath(src, dst astypes.ASN) []astypes.ASN {
	if src == dst {
		return []astypes.ASN{src}
	}
	prev := make(map[astypes.ASN]astypes.ASN)
	seen := map[astypes.ASN]bool{src: true}
	queue := []astypes.ASN{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(cur) {
			if seen[nb] {
				continue
			}
			seen[nb] = true
			prev[nb] = cur
			if nb == dst {
				var path []astypes.ASN
				for at := dst; ; at = prev[at] {
					path = append([]astypes.ASN{at}, path...)
					if at == src {
						return path
					}
				}
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

// DegreeStats summarizes the degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// Degrees computes degree statistics; zero-value for an empty graph.
func (g *Graph) Degrees() DegreeStats {
	if len(g.adj) == 0 {
		return DegreeStats{}
	}
	var s DegreeStats
	s.Min = -1
	total := 0
	for _, nbrs := range g.adj {
		d := len(nbrs)
		total += d
		if s.Min < 0 || d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
	}
	s.Mean = float64(total) / float64(len(g.adj))
	return s
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{%d nodes, %d edges}", g.NumNodes(), g.NumEdges())
}
