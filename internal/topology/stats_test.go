package topology

import (
	"strings"
	"testing"

	"repro/internal/astypes"
)

func TestGraphStats(t *testing.T) {
	// Triangle plus a pendant: clustering of the triangle nodes varies.
	g := NewGraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	g.AddEdge(3, 4)
	s := g.Stats()
	if s.Nodes != 4 || s.Edges != 4 {
		t.Errorf("nodes/edges = %d/%d", s.Nodes, s.Edges)
	}
	if s.Diameter != 2 {
		t.Errorf("diameter = %d", s.Diameter)
	}
	// Clustering: nodes 1 and 2 have coefficient 1 (their two neighbors
	// connect); node 3 has 1/3; node 4 has degree 1 (excluded).
	want := (1.0 + 1.0 + 1.0/3.0) / 3.0
	if diff := s.Clustering - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("clustering = %v, want %v", s.Clustering, want)
	}
	if s.MeanDistance <= 1 || s.MeanDistance >= 2 {
		t.Errorf("mean distance = %v", s.MeanDistance)
	}
	if got := (NewGraph().Stats()); got.Nodes != 0 || got.Clustering != 0 {
		t.Errorf("empty stats = %+v", got)
	}
}

func TestDegreeDistribution(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	dist := g.DegreeDistribution()
	if len(dist) != 2 || dist[0] != [2]int{1, 2} || dist[1] != [2]int{2, 1} {
		t.Errorf("distribution = %v", dist)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	set, err := BuildPaperTopologies(42)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := set.T25.WriteEdgeList(&sb, "25-AS"); err != nil {
		t.Fatal(err)
	}
	back, err := ParseEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != set.T25.Graph.NumNodes() || back.NumEdges() != set.T25.Graph.NumEdges() {
		t.Errorf("roundtrip: %d/%d vs %d/%d", back.NumNodes(), back.NumEdges(),
			set.T25.Graph.NumNodes(), set.T25.Graph.NumEdges())
	}
	for _, e := range set.T25.Graph.Edges() {
		if !back.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"1\n", "1 2 3\n", "x y\n", "1 y\n"} {
		if _, err := ParseEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseEdgeList(%q) should fail", bad)
		}
	}
	g, err := ParseEdgeList(strings.NewReader("# only comments\n\n"))
	if err != nil || g.NumNodes() != 0 {
		t.Errorf("comment-only input: %v, %v", g, err)
	}
}

func TestWriteDOT(t *testing.T) {
	inf, _ := GenerateInternet(DefaultInternetParams(), 1)
	res, err := SampleStubSet(inf, inf.StubASes()[:3])
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteDOT(&sb, "test"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "graph test {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Errorf("dot framing wrong:\n%s", out)
	}
	if !strings.Contains(out, "[shape=box]") || !strings.Contains(out, "[shape=circle]") {
		t.Error("dot missing role shapes")
	}
	_ = astypes.ASN(0)
}
