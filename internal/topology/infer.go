package topology

import (
	"repro/internal/astypes"
)

// Inference is the result of reconstructing an AS-level topology from
// observed AS paths, exactly as the paper does from the Oregon
// RouteViews table (§5.1): consecutive ASes on a path peer; an AS seen
// in the interior of any path is a transit AS; all others are stubs.
type Inference struct {
	Graph   *Graph
	Transit map[astypes.ASN]bool
}

// IsTransit reports whether asn was classified as a transit AS.
func (inf *Inference) IsTransit(asn astypes.ASN) bool {
	return inf.Transit[asn]
}

// TransitASes returns the transit ASes in ascending order.
func (inf *Inference) TransitASes() []astypes.ASN {
	var out []astypes.ASN
	for a, t := range inf.Transit {
		if t {
			out = append(out, a)
		}
	}
	return astypes.SortASNs(out)
}

// StubASes returns the stub ASes in ascending order.
func (inf *Inference) StubASes() []astypes.ASN {
	var out []astypes.ASN
	for _, a := range inf.Graph.Nodes() {
		if !inf.Transit[a] {
			out = append(out, a)
		}
	}
	return out
}

// InferFromPaths reconstructs peerings and transit/stub roles from AS
// paths. Duplicate consecutive ASes (path prepending) are collapsed;
// AS_SET segments contribute no peering edges (aggregation hides the
// true adjacency) but their members are registered as nodes.
func InferFromPaths(paths []astypes.ASPath) *Inference {
	inf := &Inference{Graph: NewGraph(), Transit: make(map[astypes.ASN]bool)}
	for _, path := range paths {
		inf.addPath(path)
	}
	return inf
}

func (inf *Inference) addPath(path astypes.ASPath) {
	// Flatten AS_SEQUENCE hops, collapsing prepend repetitions; AS_SET
	// members become isolated registrations.
	var hops []astypes.ASN
	for _, seg := range path.Segments {
		if seg.Type == astypes.SegSet {
			for _, a := range seg.ASNs {
				inf.Graph.AddNode(a)
			}
			continue
		}
		for _, a := range seg.ASNs {
			if len(hops) > 0 && hops[len(hops)-1] == a {
				continue
			}
			hops = append(hops, a)
		}
	}
	for i, a := range hops {
		inf.Graph.AddNode(a)
		if i > 0 {
			inf.Graph.AddEdge(hops[i-1], a)
		}
		// "If a route to a prefix p has the AS Path 6453 1239 4621 ...
		// we also mark AS 6453 as a transit AS" — interior positions.
		if i > 0 && i < len(hops)-1 {
			inf.Transit[a] = true
		}
	}
}
