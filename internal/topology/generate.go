package topology

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/astypes"
)

// InternetParams sizes the synthetic Internet model that substitutes for
// the Oregon RouteViews table (see DESIGN.md §2). The model is a
// three-tier hierarchy mirroring the inferred structure the paper works
// from: a densely meshed core, a middle transit tier, and stub ASes
// multi-homed to one or more transit providers.
type InternetParams struct {
	// Core is the number of tier-1 ASes (full-ish mesh).
	Core int
	// Mid is the number of regional transit ASes.
	Mid int
	// Stubs is the number of edge (non-transit) ASes.
	Stubs int
	// MultiHomeProb is the probability a stub connects to a second
	// provider (the paper's valid-MOAS scenarios come from these).
	MultiHomeProb float64
}

// DefaultInternetParams is sized so the §5.1 sampling yields the paper's
// 25/46/63-node topologies comfortably. Multi-homing is high, matching
// the richly interconnected mesh the paper's detection argument relies
// on ("it is difficult, if not impossible, to completely block correct
// routing information from propagating out", §1).
func DefaultInternetParams() InternetParams {
	return InternetParams{Core: 10, Mid: 30, Stubs: 300, MultiHomeProb: 0.8}
}

// ASN ranges for the generated tiers; stable so tests can target tiers.
const (
	CoreASNBase astypes.ASN = 1
	MidASNBase  astypes.ASN = 100
	StubASNBase astypes.ASN = 1000
)

// GenerateInternet builds the synthetic Internet as an Inference (graph
// plus transit labelling), deterministically from seed.
func GenerateInternet(params InternetParams, seed int64) (*Inference, error) {
	if params.Core < 2 || params.Mid < 1 || params.Stubs < 1 {
		return nil, fmt.Errorf("internet params too small: %+v", params)
	}
	if params.MultiHomeProb < 0 || params.MultiHomeProb > 1 {
		return nil, fmt.Errorf("multi-home probability %v out of [0,1]", params.MultiHomeProb)
	}
	rng := rand.New(rand.NewSource(seed))
	inf := &Inference{Graph: NewGraph(), Transit: make(map[astypes.ASN]bool)}

	cores := make([]astypes.ASN, params.Core)
	for i := range cores {
		cores[i] = CoreASNBase + astypes.ASN(i)
		inf.Graph.AddNode(cores[i])
		inf.Transit[cores[i]] = true
	}
	// Core mesh: ring for guaranteed connectivity plus random chords.
	for i := range cores {
		inf.Graph.AddEdge(cores[i], cores[(i+1)%len(cores)])
		for j := i + 2; j < len(cores); j++ {
			if rng.Float64() < 0.6 {
				inf.Graph.AddEdge(cores[i], cores[j])
			}
		}
	}

	mids := make([]astypes.ASN, params.Mid)
	for i := range mids {
		mids[i] = MidASNBase + astypes.ASN(i)
		inf.Graph.AddNode(mids[i])
		inf.Transit[mids[i]] = true
		// Every mid transit homes to 2 distinct cores (so pruning never
		// deletes a mid for lack of upstreams alone)...
		c1 := cores[rng.Intn(len(cores))]
		c2 := cores[rng.Intn(len(cores))]
		for c2 == c1 {
			c2 = cores[rng.Intn(len(cores))]
		}
		inf.Graph.AddEdge(mids[i], c1)
		inf.Graph.AddEdge(mids[i], c2)
		// ...and occasionally peers laterally with another mid.
		if i > 0 && rng.Float64() < 0.3 {
			inf.Graph.AddEdge(mids[i], mids[rng.Intn(i)])
		}
	}

	// Provider popularity follows a Zipf-like law, as in the measured AS
	// topology: a handful of large ISPs serve most edge networks. This
	// concentration matters for the §5.1 sampling — selected stubs
	// mostly share providers, so the sampled topologies are stub-heavy
	// like the paper's.
	pickMid := zipfPicker(mids)
	pickProvider := zipfPicker(append(append([]astypes.ASN(nil), mids...), cores...))
	for i := 0; i < params.Stubs; i++ {
		stub := StubASNBase + astypes.ASN(i)
		inf.Graph.AddNode(stub)
		// Primary provider biased toward the mid tier (edge networks
		// rarely home directly to tier-1).
		var p1 astypes.ASN
		if rng.Float64() < 0.85 {
			p1 = pickMid(rng)
		} else {
			p1 = cores[rng.Intn(len(cores))]
		}
		inf.Graph.AddEdge(stub, p1)
		if rng.Float64() < params.MultiHomeProb {
			p2 := pickProvider(rng)
			for p2 == p1 {
				p2 = pickProvider(rng)
			}
			inf.Graph.AddEdge(stub, p2)
		}
	}
	return inf, nil
}

// PowerLawParams sizes the preferential-attachment generator used for
// the internet-scale simulations: unlike the three-tier model above,
// which is shaped for the paper's 25/46/63-node sampling, this grows a
// Barabási-Albert graph whose degree distribution follows the power law
// measured on the real AS topology (Faloutsos et al.), so hijack
// propagation at 10k-70k ASes sees realistic hub concentration.
type PowerLawParams struct {
	// Nodes is the total AS count.
	Nodes int
	// MinDegree is the number of provider links each new AS attaches
	// with (the Barabási-Albert m). The measured AS graph's mean degree
	// is ~4.2, giving MinDegree 2-3; DefaultPowerLawParams uses 2.
	MinDegree int
}

// DefaultPowerLawParams returns the measured-internet-shaped defaults
// for n ASes.
func DefaultPowerLawParams(n int) PowerLawParams {
	return PowerLawParams{Nodes: n, MinDegree: 2}
}

// GeneratePowerLaw grows a connected preferential-attachment AS graph,
// deterministically from seed: a (MinDegree+1)-clique of tier-1 ASes,
// then one AS at a time, each peering with MinDegree distinct existing
// ASes chosen proportional to current degree. ASNs are assigned in
// arrival order starting at 1, so hubs have low ASNs (like the real
// registry's early allocations) and an ASN doubles as its arrival rank.
//
// The result is a SampleResult usable anywhere the §5.1 sampled
// topologies are: ASes whose final degree exceeds MinDegree attracted
// later arrivals and are classified transit; the rest are stubs.
// Feed the graph to InferRelations for valley-free policy experiments.
func GeneratePowerLaw(params PowerLawParams, seed int64) (*SampleResult, error) {
	n, m := params.Nodes, params.MinDegree
	if m < 1 {
		return nil, fmt.Errorf("power-law min degree %d < 1", m)
	}
	if n < m+2 {
		return nil, fmt.Errorf("power-law size %d too small for min degree %d", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	// endpoints lists every edge endpoint once per incidence, so a
	// uniform draw from it is exactly degree-proportional attachment.
	endpoints := make([]astypes.ASN, 0, 2*(m*n+m*(m+1)/2))
	for i := 1; i <= m+1; i++ {
		for j := i + 1; j <= m+1; j++ {
			a, b := astypes.ASN(i), astypes.ASN(j)
			g.AddEdge(a, b)
			endpoints = append(endpoints, a, b)
		}
	}
	chosen := make([]astypes.ASN, 0, m)
	for v := m + 2; v <= n; v++ {
		asn := astypes.ASN(v)
		chosen = chosen[:0]
		for len(chosen) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			g.AddEdge(asn, t)
			endpoints = append(endpoints, asn, t)
		}
	}
	res := &SampleResult{Graph: g, Transit: make(map[astypes.ASN]bool, n/4)}
	for a, nbrs := range g.adj {
		if len(nbrs) > m {
			res.Transit[a] = true
		}
	}
	return res, nil
}

// zipfPicker returns a sampler over pool with P(rank i) proportional to
// 1/(i+1)^1.35, approximating the heavy-tailed provider popularity of the
// measured AS graph.
func zipfPicker(pool []astypes.ASN) func(*rand.Rand) astypes.ASN {
	weights := make([]float64, len(pool))
	total := 0.0
	for i := range pool {
		weights[i] = 1 / math.Pow(float64(i+1), 1.35)
		total += weights[i]
	}
	return func(rng *rand.Rand) astypes.ASN {
		x := rng.Float64() * total
		for i, w := range weights {
			x -= w
			if x < 0 {
				return pool[i]
			}
		}
		return pool[len(pool)-1]
	}
}

// PaperSet bundles the three simulation topologies of §5.1.
type PaperSet struct {
	T25, T46, T63 *SampleResult
}

// Sizes returns the node counts (should be 25, 46, 63).
func (s *PaperSet) Sizes() [3]int {
	return [3]int{s.T25.Graph.NumNodes(), s.T46.Graph.NumNodes(), s.T63.Graph.NumNodes()}
}

// ByName returns a topology by its paper name ("25", "46", "63").
func (s *PaperSet) ByName(name string) (*SampleResult, error) {
	switch name {
	case "25":
		return s.T25, nil
	case "46":
		return s.T46, nil
	case "63":
		return s.T63, nil
	default:
		return nil, fmt.Errorf("unknown topology %q (want 25, 46 or 63)", name)
	}
}

// BuildPaperTopologies generates the synthetic Internet and samples the
// 25-, 46- and 63-node simulation topologies from it, all
// deterministically from seed.
func BuildPaperTopologies(seed int64) (*PaperSet, error) {
	inf, err := GenerateInternet(DefaultInternetParams(), seed)
	if err != nil {
		return nil, fmt.Errorf("generate internet: %w", err)
	}
	var set PaperSet
	for _, spec := range []struct {
		n   int
		dst **SampleResult
	}{{25, &set.T25}, {46, &set.T46}, {63, &set.T63}} {
		res, err := SampleToSize(inf, spec.n, seed)
		if err != nil {
			return nil, fmt.Errorf("sample %d-node topology: %w", spec.n, err)
		}
		*spec.dst = res
	}
	return &set, nil
}
