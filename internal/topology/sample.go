package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/astypes"
)

// SampleResult is a simulation topology produced by the paper's §5.1
// construction: the induced subgraph plus the role classification
// restricted to retained nodes.
type SampleResult struct {
	Graph   *Graph
	Transit map[astypes.ASN]bool
}

// StubASes lists retained stub ASes in ascending order.
func (r *SampleResult) StubASes() []astypes.ASN {
	var out []astypes.ASN
	for _, a := range r.Graph.Nodes() {
		if !r.Transit[a] {
			out = append(out, a)
		}
	}
	return out
}

// TransitASes lists retained transit ASes in ascending order.
func (r *SampleResult) TransitASes() []astypes.ASN {
	var out []astypes.ASN
	for _, a := range r.Graph.Nodes() {
		if r.Transit[a] {
			out = append(out, a)
		}
	}
	return out
}

// Sample implements the paper's topology construction (§5.1):
//
//  1. randomly select fraction of the stub ASes;
//  2. build the topology containing those stubs and their ISP (transit)
//     peers, "with the peering relations among all the selected ASes
//     completely preserved";
//  3. iteratively prune any transit AS left with one or zero peers;
//  4. inspect the result for connectedness (we keep the largest
//     connected component, then re-prune, so the returned topology is
//     always connected).
//
// The rng drives only the stub selection, so a fixed seed yields a fixed
// topology.
func Sample(inf *Inference, fraction float64, rng *rand.Rand) (*SampleResult, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("stub fraction %v out of (0, 1]", fraction)
	}
	stubs := inf.StubASes()
	if len(stubs) == 0 {
		return nil, fmt.Errorf("inference has no stub ASes")
	}
	want := int(float64(len(stubs))*fraction + 0.5)
	if want < 1 {
		want = 1
	}
	perm := rng.Perm(len(stubs))
	keep := make(map[astypes.ASN]bool)
	for _, idx := range perm[:want] {
		keep[stubs[idx]] = true
	}
	return buildFromStubs(inf, keep)
}

// SampleStubSet runs the same construction from an explicit stub set,
// useful for tests and for reproducing a previously selected topology.
func SampleStubSet(inf *Inference, stubs []astypes.ASN) (*SampleResult, error) {
	keep := make(map[astypes.ASN]bool, len(stubs))
	for _, s := range stubs {
		if inf.Transit[s] {
			return nil, fmt.Errorf("AS %s is a transit AS, not a stub", s)
		}
		if !inf.Graph.HasNode(s) {
			return nil, fmt.Errorf("AS %s not in inferred graph", s)
		}
		keep[s] = true
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("empty stub selection")
	}
	return buildFromStubs(inf, keep)
}

func buildFromStubs(inf *Inference, selectedStubs map[astypes.ASN]bool) (*SampleResult, error) {
	// Selected stubs plus their ISP (transit) peers.
	keep := make(map[astypes.ASN]bool, len(selectedStubs)*2)
	for s := range selectedStubs {
		keep[s] = true
		for _, nb := range inf.Graph.Neighbors(s) {
			if inf.Transit[nb] {
				keep[nb] = true
			}
		}
	}
	sub := inf.Graph.Subgraph(keep)

	// Iterative prune: a transit AS with <= 1 peer carries no traffic in
	// the sample and is removed; removal may strand others, so repeat to
	// a fixpoint. Stubs left with no peers are also dropped.
	prune(sub, inf.Transit)

	// Keep the largest connected component, then prune again since
	// component extraction can leave degree-1 transits.
	sub = sub.LargestComponent()
	prune(sub, inf.Transit)
	sub = sub.LargestComponent()

	if sub.NumNodes() == 0 {
		return nil, fmt.Errorf("sampled topology pruned to nothing")
	}
	res := &SampleResult{Graph: sub, Transit: make(map[astypes.ASN]bool)}
	for _, a := range sub.Nodes() {
		if inf.Transit[a] {
			res.Transit[a] = true
		}
	}
	return res, nil
}

func prune(g *Graph, transit map[astypes.ASN]bool) {
	for {
		var victims []astypes.ASN
		for _, a := range g.Nodes() {
			d := g.Degree(a)
			if transit[a] && d <= 1 {
				victims = append(victims, a)
			} else if !transit[a] && d == 0 {
				victims = append(victims, a)
			}
		}
		if len(victims) == 0 {
			return
		}
		for _, v := range victims {
			g.RemoveNode(v)
		}
	}
}

// SampleToSize searches stub fractions (and per-fraction seed offsets)
// until the §5.1 construction yields a topology with exactly target
// nodes. The search order is deterministic, so (inference, target,
// seed) identifies a unique topology. Returns an error if no candidate
// within the search budget matches.
func SampleToSize(inf *Inference, target int, seed int64) (*SampleResult, error) {
	if target < 3 {
		return nil, fmt.Errorf("target size %d too small", target)
	}
	nStubs := len(inf.StubASes())
	if nStubs == 0 {
		return nil, fmt.Errorf("inference has no stub ASes")
	}
	for attempt := int64(0); attempt < 400; attempt++ {
		for _, frac := range searchFractions(target, nStubs) {
			rng := rand.New(rand.NewSource(seed + attempt*7919))
			res, err := Sample(inf, frac, rng)
			if err != nil {
				continue
			}
			if res.Graph.NumNodes() == target {
				return res, nil
			}
		}
	}
	return nil, fmt.Errorf("no %d-node sample found for seed %d", target, seed)
}

func searchFractions(target, nStubs int) []float64 {
	// The sampled topology tends to have roughly 1.3-2x the stub count
	// (stubs + their ISPs - pruning), so center the scan accordingly.
	center := float64(target) / (1.8 * float64(nStubs))
	var fracs []float64
	for _, mult := range []float64{1.0, 0.85, 1.15, 0.7, 1.3, 0.55, 1.5} {
		f := center * mult
		if f > 0 && f <= 1 {
			fracs = append(fracs, f)
		}
	}
	if len(fracs) == 0 {
		fracs = []float64{0.5}
	}
	return fracs
}
