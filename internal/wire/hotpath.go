// Hot-path companions to the codec: a pooled message buffer shared by
// the package-level ReadMessage/WriteMessage, a Decoder that reuses one
// Update as decode scratch, and per-connection Reader/Writer wrappers
// that make the steady-state message loop allocation-free. See
// docs/performance.md for the design and the benchmarks that guard it.
package wire

import (
	"io"
	"sync"

	"repro/internal/astypes"
	"repro/internal/obs"
)

// msgBufPool holds full-size message buffers for the package-level
// ReadMessage/WriteMessage, which have no per-connection state to
// anchor a reusable buffer on.
var msgBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, MaxMessageLen)
		return &b
	},
}

// Decoder decodes messages into reusable scratch storage. The UPDATE it
// returns — including Withdrawn/NLRI slices, AS-path segments,
// communities, and unknown-attribute values (which alias the input
// buffer) — is valid only until the next Decode call; callers that
// retain any of it must copy (rib.Route construction already does).
// OPEN, NOTIFICATION and ROUTE-REFRESH are session-rare and decode
// into fresh memory. A Decoder is not safe for concurrent use.
type Decoder struct {
	upd Update
	// asns is the flat backing store for decoded AS-path segments.
	asns []astypes.ASN
	// span counts successfully decoded messages: the per-session message
	// ordinal trace events correlate on. Plain (non-atomic) on purpose —
	// a Decoder already requires single-goroutine use.
	span uint64
}

// Decode parses one complete message from buf (header included),
// reusing the Decoder's scratch for UPDATEs.
//
//repro:allocfree
func (d *Decoder) Decode(buf []byte) (Message, error) {
	t, body, err := checkHeader(buf)
	if err != nil {
		return nil, err
	}
	var m Message
	if t == MsgUpdate {
		m, err = decodeUpdateInto(&d.upd, d, body)
	} else {
		m, err = Decode(buf)
	}
	if err == nil {
		d.span++
	}
	return m, err
}

// Span returns the ordinal of the most recently decoded message,
// starting at 1; 0 means nothing has decoded yet.
func (d *Decoder) Span() uint64 { return d.span }

// Reader frames and decodes messages from one connection with zero
// steady-state allocations: the read buffer is owned by the Reader and
// UPDATEs decode into Decoder scratch. The message returned by
// ReadMessage is valid only until the next call. Not safe for
// concurrent use; a BGP session has exactly one reader goroutine.
type Reader struct {
	r   io.Reader
	buf [MaxMessageLen]byte
	dec Decoder
	// rec, when set, stamps each message's ingest instant and records
	// its decode-stage latency; st is the current message's stamp,
	// owned by the Reader (valid until the next ReadMessage) so the
	// record path stays allocation-free.
	rec *obs.Recorder
	st  obs.Stamp
}

// NewReader returns a Reader framing messages from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// ReadMessage reads exactly one message, validating the marker before
// the body is consumed (see readFrame).
//
//repro:allocfree
func (rd *Reader) ReadMessage() (Message, error) {
	n, err := readFrame(rd.r, rd.buf[:])
	if err != nil {
		return nil, err
	}
	// Ingest T0 is stamped after the frame is read, so time spent
	// blocked on the socket (idle sessions) never pollutes the decode
	// stage.
	rd.st = rd.rec.Start(0)
	m, err := rd.dec.Decode(rd.buf[:n])
	if err != nil {
		return nil, err
	}
	// The span is threaded even with no recorder so downstream stamp
	// handlers still correlate on it.
	rd.st.Span = rd.dec.Span()
	rd.rec.Cross(&rd.st, obs.StageDecode)
	return m, nil
}

// Span returns the ordinal of the most recently decoded message (see
// Decoder.Span).
func (rd *Reader) Span() uint64 { return rd.dec.Span() }

// SetObserver attaches a stage-latency recorder: each subsequent
// message gets an ingest stamp and a decode-stage observation. A nil
// recorder (the default) keeps the reader observation-free.
func (rd *Reader) SetObserver(rec *obs.Recorder) { rd.rec = rec }

// Stamp returns the current message's stage stamp, for handlers that
// carry it across later stage crossings. The pointer is owned by the
// Reader and is overwritten by the next ReadMessage.
func (rd *Reader) Stamp() *obs.Stamp { return &rd.st }

// Writer accumulates encoded messages in an owned buffer and writes
// them out on explicit Flush points, so back-to-back sends (a route
// burst, the OPEN/KEEPALIVE handshake pair) coalesce into fewer writes
// and the encode path never allocates. Callers must serialize access
// (sessions hold writeMu) and must Flush before expecting the peer to
// see anything.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a buffered message writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 0, 2*MaxMessageLen)}
}

// WriteMessage encodes m into the buffer. The buffer is written out
// early when it already holds at least one full-size message, keeping
// the backing array at its initial capacity forever.
//
//repro:allocfree
func (wr *Writer) WriteMessage(m Message) error {
	buf, err := AppendMessage(wr.buf, m)
	if err != nil {
		return err
	}
	wr.buf = buf
	if len(wr.buf) >= MaxMessageLen {
		return wr.Flush()
	}
	return nil
}

// Buffered returns the number of bytes pending a Flush.
func (wr *Writer) Buffered() int { return len(wr.buf) }

// Flush writes any buffered messages to the underlying writer. Buffered
// data is discarded on error (the connection is failing anyway).
//
//repro:allocfree
func (wr *Writer) Flush() error {
	if len(wr.buf) == 0 {
		return nil
	}
	_, err := wr.w.Write(wr.buf)
	wr.buf = wr.buf[:0]
	return err
}
