package wire

import (
	"bytes"
	"io"
	"testing"
)

// The Baseline benchmarks exercise the allocating compatibility APIs
// (Encode/Decode allocate the frame and the decoded message afresh);
// their non-baseline twins exercise the pooled/scratch hot path. The
// pairs are what BENCH_hotpath.json compares — the allocs/op delta is
// the tentpole's acceptance criterion.

func BenchmarkWireEncodeBaseline(b *testing.B) {
	u := moasUpdate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncodePooled frames the same UPDATE through the pooled
// package-level write path (encode + framing, no per-call buffer).
func BenchmarkWireEncodePooled(b *testing.B) {
	u := moasUpdate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteMessage(io.Discard, u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeBaseline(b *testing.B) {
	buf, err := Encode(moasUpdate())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireDecodeScratch decodes the same frame into Decoder
// scratch storage (the per-connection read path).
func BenchmarkWireDecodeScratch(b *testing.B) {
	buf, err := Encode(moasUpdate())
	if err != nil {
		b.Fatal(err)
	}
	var d Decoder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireReaderStream measures the full framed read path (header
// validation + body read + scratch decode) over an in-memory stream.
func BenchmarkWireReaderStream(b *testing.B) {
	frame, err := Encode(moasUpdate())
	if err != nil {
		b.Fatal(err)
	}
	src := bytes.NewReader(nil)
	rd := NewReader(src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.Reset(frame)
		if _, err := rd.ReadMessage(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireKeepaliveRoundTrip measures a full keepalive write+read
// cycle through the buffered Writer and scratch Reader — the session
// steady state when no routes are churning.
func BenchmarkWireKeepaliveRoundTrip(b *testing.B) {
	var pipe bytes.Buffer
	wr := NewWriter(&pipe)
	rd := NewReader(&pipe)
	ka := &Keepalive{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := wr.WriteMessage(ka); err != nil {
			b.Fatal(err)
		}
		if err := wr.Flush(); err != nil {
			b.Fatal(err)
		}
		if _, err := rd.ReadMessage(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireUpdateRoundTrip is the same cycle for the representative
// MOAS UPDATE — the collector ingest shape.
func BenchmarkWireUpdateRoundTrip(b *testing.B) {
	var pipe bytes.Buffer
	wr := NewWriter(&pipe)
	rd := NewReader(&pipe)
	u := moasUpdate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := wr.WriteMessage(u); err != nil {
			b.Fatal(err)
		}
		if err := wr.Flush(); err != nil {
			b.Fatal(err)
		}
		if _, err := rd.ReadMessage(); err != nil {
			b.Fatal(err)
		}
	}
}
