package wire

import (
	"bytes"
	"testing"

	"repro/internal/astypes"
)

// FuzzDecode asserts the codec never panics on arbitrary input, and
// that anything it accepts re-encodes and decodes to the same message
// (decode-encode-decode stability).
func FuzzDecode(f *testing.F) {
	// Seed corpus: one valid encoding of each message type plus some
	// deliberately damaged variants.
	seed := func(m Message) []byte {
		buf, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		return buf
	}
	open := seed(&Open{Version: Version4, AS: 701, HoldTime: 90, BGPID: 1})
	update := seed(&Update{
		Withdrawn: []astypes.Prefix{astypes.MustPrefix(0x0a000000, 8)},
		Attrs:     wireAttrs(),
		NLRI:      []astypes.Prefix{astypes.MustPrefix(0x83b30000, 16)},
	})
	keepalive := seed(&Keepalive{})
	notif := seed(&Notification{Code: 6, Subcode: 1, Data: []byte{1}})
	f.Add(open)
	f.Add(update)
	f.Add(keepalive)
	f.Add(notif)
	for _, base := range [][]byte{open, update} {
		for i := 0; i < len(base); i += 3 {
			mut := append([]byte(nil), base...)
			mut[i] ^= 0xa5
			f.Add(mut)
		}
		f.Add(base[:len(base)-1])
		f.Add(append(append([]byte(nil), base...), 0))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 19))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		re2, err := Encode(m2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("encode not stable:\n  %x\n  %x", re, re2)
		}
	})
}

func wireAttrs() PathAttrs {
	return PathAttrs{
		HasOrigin:       true,
		Origin:          OriginIGP,
		ASPath:          astypes.NewSeqPath(701, 1239, 4),
		HasNextHop:      true,
		NextHop:         0x0a000001,
		HasLocalPref:    true,
		LocalPref:       100,
		AtomicAggregate: true,
		HasAggregator:   true,
		AggregatorAS:    701,
		AggregatorID:    7,
		Communities:     []astypes.Community{astypes.NewCommunity(4, 0xffde)},
	}
}
