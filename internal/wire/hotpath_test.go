package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/astypes"
)

// moasUpdate builds the representative MOAS UPDATE used across the
// hot-path tests and benchmarks: a 4-hop path, a 2-entry MOAS list in
// communities, one NLRI prefix.
func moasUpdate() *Update {
	return &Update{
		Attrs: PathAttrs{
			HasOrigin:  true,
			Origin:     OriginIGP,
			ASPath:     astypes.NewSeqPath(701, 1239, 3561, 4),
			HasNextHop: true,
			NextHop:    0x0a000001,
			Communities: []astypes.Community{
				astypes.NewCommunity(4, 0x7fde),
				astypes.NewCommunity(226, 0x7fde),
			},
		},
		NLRI: []astypes.Prefix{astypes.MustPrefix(0x83b30000, 16)},
	}
}

func TestDecoderScratchReuseAcrossMessages(t *testing.T) {
	var d Decoder
	first := moasUpdate()
	second := &Update{
		Withdrawn: []astypes.Prefix{astypes.MustPrefix(0x0a000000, 8)},
		Attrs: PathAttrs{
			HasOrigin:  true,
			Origin:     OriginEGP,
			ASPath:     astypes.NewSeqPath(9, 10),
			HasNextHop: true,
			NextHop:    7,
			Unknown:    []UnknownAttr{NewOptionalTransitive(240, []byte{1, 2, 3})},
		},
		NLRI: []astypes.Prefix{astypes.MustPrefix(0x14000000, 8)},
	}
	bufA, err := Encode(first)
	if err != nil {
		t.Fatal(err)
	}
	bufB, err := Encode(second)
	if err != nil {
		t.Fatal(err)
	}
	// Decode A, then B, then A again: each decode must fully describe
	// its own message with no residue from the previous one.
	for i, want := range []*Update{first, second, first} {
		buf := bufA
		if i == 1 {
			buf = bufB
		}
		msg, err := d.Decode(buf)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		got, ok := msg.(*Update)
		if !ok {
			t.Fatalf("decode %d: got %T", i, msg)
		}
		reenc, err := Encode(got)
		if err != nil {
			t.Fatalf("re-encode %d: %v", i, err)
		}
		wantBuf, _ := Encode(want)
		if !bytes.Equal(reenc, wantBuf) {
			t.Errorf("decode %d: scratch residue: got %x want %x", i, reenc, wantBuf)
		}
	}
}

func TestDecoderNonUpdateMessages(t *testing.T) {
	var d Decoder
	open := &Open{Version: Version4, AS: 701, HoldTime: 90, BGPID: 7}
	buf, err := Encode(open)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := d.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := msg.(*Open); !ok || got.AS != 701 {
		t.Errorf("Decoder mangled OPEN: %+v", msg)
	}
}

// TestReadMessageFailsFastOnBadMarker is the desync regression test:
// the marker must be rejected from the header alone, before any body
// byte is consumed, with the RFC 4271 §6.1 header error.
func TestReadMessageFailsFastOnBadMarker(t *testing.T) {
	frame, err := Encode(moasUpdate())
	if err != nil {
		t.Fatal(err)
	}
	frame[0] = 0x00 // corrupt the marker
	src := bytes.NewReader(frame)
	_, err = ReadMessage(src)
	var me *MessageError
	if !errors.As(err, &me) || me.Code != ErrCodeHeader || me.Subcode != SubConnNotSynced {
		t.Fatalf("err = %v, want header/not-synced MessageError", err)
	}
	// Fail-fast property: only the 19 header bytes may have been
	// consumed; the declared body must still be unread.
	if remaining := src.Len(); remaining != len(frame)-HeaderLen {
		t.Errorf("reader consumed %d bytes past the header", len(frame)-HeaderLen-remaining)
	}
}

func TestReadMessageFailsFastOnBadLength(t *testing.T) {
	frame, err := Encode(&Keepalive{})
	if err != nil {
		t.Fatal(err)
	}
	frame[16], frame[17] = 0xff, 0xff // declared length > MaxMessageLen
	_, err = ReadMessage(bytes.NewReader(frame))
	var me *MessageError
	if !errors.As(err, &me) || me.Code != ErrCodeHeader || me.Subcode != SubBadLength {
		t.Fatalf("err = %v, want header/bad-length MessageError", err)
	}
}

func TestReaderStreamsMessages(t *testing.T) {
	var stream bytes.Buffer
	upd := moasUpdate()
	for i := 0; i < 3; i++ {
		if err := WriteMessage(&stream, upd); err != nil {
			t.Fatal(err)
		}
		if err := WriteMessage(&stream, &Keepalive{}); err != nil {
			t.Fatal(err)
		}
	}
	rd := NewReader(&stream)
	for i := 0; i < 3; i++ {
		msg, err := rd.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		u, ok := msg.(*Update)
		if !ok || len(u.NLRI) != 1 || u.NLRI[0] != upd.NLRI[0] {
			t.Fatalf("message %d: %+v", 2*i, msg)
		}
		if msg, err = rd.ReadMessage(); err != nil {
			t.Fatal(err)
		}
		if _, ok := msg.(*Keepalive); !ok {
			t.Fatalf("message %d: %T, want KEEPALIVE", 2*i+1, msg)
		}
	}
	if _, err := rd.ReadMessage(); err != io.EOF {
		t.Errorf("end of stream: %v, want io.EOF", err)
	}
}

func TestWriterBuffersAndFlushes(t *testing.T) {
	var sink bytes.Buffer
	wr := NewWriter(&sink)
	if err := wr.WriteMessage(&Keepalive{}); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 {
		t.Error("Writer wrote before Flush")
	}
	if wr.Buffered() != HeaderLen {
		t.Errorf("Buffered = %d, want %d", wr.Buffered(), HeaderLen)
	}
	if err := wr.WriteMessage(moasUpdate()); err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if wr.Buffered() != 0 {
		t.Error("Flush left bytes buffered")
	}
	// Both messages must decode back from the coalesced write.
	rd := NewReader(&sink)
	if m, err := rd.ReadMessage(); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*Keepalive); !ok {
		t.Fatalf("first message %T", m)
	}
	if m, err := rd.ReadMessage(); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*Update); !ok {
		t.Fatalf("second message %T", m)
	}
}

func TestWriterAutoFlushesAtHighWater(t *testing.T) {
	var sink bytes.Buffer
	wr := NewWriter(&sink)
	// Enough keepalives to cross MaxMessageLen forces an early write so
	// the buffer never grows past its initial capacity.
	n := MaxMessageLen/HeaderLen + 2
	for i := 0; i < n; i++ {
		if err := wr.WriteMessage(&Keepalive{}); err != nil {
			t.Fatal(err)
		}
	}
	if sink.Len() == 0 {
		t.Error("no auto-flush despite exceeding the high-water mark")
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != n*HeaderLen {
		t.Errorf("sink holds %d bytes, want %d", sink.Len(), n*HeaderLen)
	}
}

type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("sink broken") }

func TestWriterFlushErrorDiscards(t *testing.T) {
	wr := NewWriter(errWriter{})
	if err := wr.WriteMessage(&Keepalive{}); err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err == nil {
		t.Fatal("Flush swallowed the write error")
	}
	if wr.Buffered() != 0 {
		t.Error("failed Flush retained buffered data")
	}
}

// TestKeepaliveRoundTripZeroAlloc locks in the zero-allocation
// steady state of a keepalive round-trip over Writer/Reader.
func TestKeepaliveRoundTripZeroAlloc(t *testing.T) {
	var pipe bytes.Buffer
	wr := NewWriter(&pipe)
	rd := NewReader(&pipe)
	ka := &Keepalive{}
	avg := testing.AllocsPerRun(200, func() {
		if err := wr.WriteMessage(ka); err != nil {
			t.Fatal(err)
		}
		if err := wr.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, err := rd.ReadMessage(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("keepalive round-trip allocates %v per run, want 0", avg)
	}
}

// TestUpdateRoundTripZeroAlloc locks in the zero-allocation steady
// state of the full UPDATE encode→frame→decode path.
func TestUpdateRoundTripZeroAlloc(t *testing.T) {
	var pipe bytes.Buffer
	wr := NewWriter(&pipe)
	rd := NewReader(&pipe)
	upd := moasUpdate()
	avg := testing.AllocsPerRun(200, func() {
		if err := wr.WriteMessage(upd); err != nil {
			t.Fatal(err)
		}
		if err := wr.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, err := rd.ReadMessage(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("UPDATE round-trip allocates %v per run, want 0", avg)
	}
}

// TestPooledWriteMessageZeroAlloc locks in the pooled buffer on the
// package-level write path.
func TestPooledWriteMessageZeroAlloc(t *testing.T) {
	upd := moasUpdate()
	avg := testing.AllocsPerRun(200, func() {
		if err := WriteMessage(io.Discard, upd); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("pooled WriteMessage allocates %v per run, want 0", avg)
	}
}

// TestDecoderSpan: spans are per-session message ordinals — they
// advance on every successful decode (any message type) and stand
// still on failures, so trace events never share a span across
// distinct messages.
func TestDecoderSpan(t *testing.T) {
	var d Decoder
	if d.Span() != 0 {
		t.Fatalf("fresh Decoder span = %d, want 0", d.Span())
	}
	updBuf, err := Encode(moasUpdate())
	if err != nil {
		t.Fatal(err)
	}
	kaBuf, err := Encode(&Keepalive{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decode(updBuf); err != nil {
		t.Fatal(err)
	}
	if d.Span() != 1 {
		t.Errorf("span after UPDATE = %d, want 1", d.Span())
	}
	if _, err := d.Decode(kaBuf); err != nil {
		t.Fatal(err)
	}
	if d.Span() != 2 {
		t.Errorf("span after KEEPALIVE = %d, want 2", d.Span())
	}
	bad := append([]byte(nil), updBuf...)
	bad[0] = 0 // corrupt marker
	if _, err := d.Decode(bad); err == nil {
		t.Fatal("corrupt message decoded")
	}
	if d.Span() != 2 {
		t.Errorf("span advanced on failed decode: %d", d.Span())
	}
}

func TestReaderSpan(t *testing.T) {
	var stream bytes.Buffer
	for i := 0; i < 3; i++ {
		buf, err := Encode(moasUpdate())
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(buf)
	}
	rd := NewReader(&stream)
	for want := uint64(1); want <= 3; want++ {
		if _, err := rd.ReadMessage(); err != nil {
			t.Fatal(err)
		}
		if rd.Span() != want {
			t.Errorf("Reader span = %d, want %d", rd.Span(), want)
		}
	}
	if _, err := rd.ReadMessage(); err != io.EOF {
		t.Fatalf("EOF read: %v", err)
	}
	if rd.Span() != 3 {
		t.Errorf("span changed at EOF: %d", rd.Span())
	}
}
