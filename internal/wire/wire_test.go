package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/astypes"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode(%v): %v", m.Type(), err)
	}
	back, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode(%v): %v", m.Type(), err)
	}
	return back
}

func TestOpenRoundTrip(t *testing.T) {
	o := &Open{Version: Version4, AS: 701, HoldTime: 90, BGPID: 0x0a000001}
	back := roundTrip(t, o).(*Open)
	if !reflect.DeepEqual(o, back) {
		t.Errorf("roundtrip: %+v != %+v", back, o)
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	if _, ok := roundTrip(t, &Keepalive{}).(*Keepalive); !ok {
		t.Error("expected Keepalive")
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := &Notification{Code: ErrCodeUpdate, Subcode: SubMalformedASPath, Data: []byte{1, 2}}
	back := roundTrip(t, n).(*Notification)
	if !reflect.DeepEqual(n, back) {
		t.Errorf("roundtrip: %+v != %+v", back, n)
	}
}

func TestUpdateRoundTripFull(t *testing.T) {
	u := &Update{
		Withdrawn: []astypes.Prefix{
			astypes.MustPrefix(0x0a000000, 8),
			astypes.MustPrefix(0xc0a80000, 16),
		},
		Attrs: PathAttrs{
			HasOrigin:    true,
			Origin:       OriginEGP,
			ASPath:       astypes.NewSeqPath(701, 1239, 4),
			HasNextHop:   true,
			NextHop:      0x0a000001,
			HasLocalPref: true,
			LocalPref:    200,
			Communities: []astypes.Community{
				astypes.NewCommunity(4, 0xffde),
				astypes.NewCommunity(226, 0xffde),
			},
		},
		NLRI: []astypes.Prefix{
			astypes.MustPrefix(0x83b30000, 16),
			astypes.MustPrefix(0x00000000, 0),
			astypes.MustPrefix(0xffffffff, 32),
		},
	}
	back := roundTrip(t, u).(*Update)
	if !reflect.DeepEqual(u, back) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", back, u)
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	u := &Update{Withdrawn: []astypes.Prefix{astypes.MustPrefix(0x0a000000, 8)}}
	back := roundTrip(t, u).(*Update)
	if len(back.NLRI) != 0 || len(back.Withdrawn) != 1 {
		t.Errorf("roundtrip = %+v", back)
	}
}

func TestUpdateASSetSegment(t *testing.T) {
	u := &Update{
		Attrs: PathAttrs{
			HasOrigin:  true,
			Origin:     OriginIncomplete,
			HasNextHop: true,
			ASPath: astypes.ASPath{Segments: []astypes.Segment{
				{Type: astypes.SegSequence, ASNs: []astypes.ASN{701}},
				{Type: astypes.SegSet, ASNs: []astypes.ASN{4006, 4544}},
			}},
		},
		NLRI: []astypes.Prefix{astypes.MustPrefix(0x0c000000, 8)},
	}
	back := roundTrip(t, u).(*Update)
	if !back.Attrs.ASPath.Equal(u.Attrs.ASPath) {
		t.Errorf("AS_SET roundtrip: %v != %v", back.Attrs.ASPath, u.Attrs.ASPath)
	}
}

func TestUpdateUnknownAttrTransits(t *testing.T) {
	u := &Update{
		Attrs: PathAttrs{
			HasOrigin:  true,
			HasNextHop: true,
			ASPath:     astypes.NewSeqPath(1),
			Unknown: []UnknownAttr{
				{Flags: flagOptional | flagTransitive, Code: 99, Value: []byte{0xde, 0xad}},
			},
		},
		NLRI: []astypes.Prefix{astypes.MustPrefix(0x0a000000, 8)},
	}
	back := roundTrip(t, u).(*Update)
	if len(back.Attrs.Unknown) != 1 || back.Attrs.Unknown[0].Code != 99 ||
		!bytes.Equal(back.Attrs.Unknown[0].Value, []byte{0xde, 0xad}) {
		t.Errorf("unknown attr roundtrip = %+v", back.Attrs.Unknown)
	}
}

func TestUpdateLargeCommunityListUsesExtendedLength(t *testing.T) {
	attrs := PathAttrs{HasOrigin: true, HasNextHop: true, ASPath: astypes.NewSeqPath(1)}
	for i := 0; i < 100; i++ { // 400 bytes > 255 forces extended length
		attrs.Communities = append(attrs.Communities, astypes.NewCommunity(astypes.ASN(i+1), 0xffde))
	}
	u := &Update{Attrs: attrs, NLRI: []astypes.Prefix{astypes.MustPrefix(0x0a000000, 8)}}
	back := roundTrip(t, u).(*Update)
	if len(back.Attrs.Communities) != 100 {
		t.Errorf("communities roundtrip = %d", len(back.Attrs.Communities))
	}
}

func TestDecodeRejectsBadMarker(t *testing.T) {
	buf, _ := Encode(&Keepalive{})
	buf[0] = 0
	_, err := Decode(buf)
	assertMessageError(t, err, ErrCodeHeader, SubConnNotSynced)
}

func TestDecodeRejectsBadType(t *testing.T) {
	buf, _ := Encode(&Keepalive{})
	buf[18] = 42
	_, err := Decode(buf)
	assertMessageError(t, err, ErrCodeHeader, SubBadType)
}

func TestDecodeRejectsLengthMismatch(t *testing.T) {
	buf, _ := Encode(&Keepalive{})
	buf[17]++ // declared length now exceeds actual
	if _, err := Decode(buf); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDecodeRejectsKeepaliveWithBody(t *testing.T) {
	buf, _ := Encode(&Keepalive{})
	buf = append(buf, 0)
	buf[17] = byte(len(buf))
	if _, err := Decode(buf); err == nil {
		t.Error("KEEPALIVE with body accepted")
	}
}

func TestDecodeOpenVersionError(t *testing.T) {
	o := &Open{Version: 3, AS: 1, HoldTime: 90, BGPID: 1}
	buf, err := Encode(o)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Decode(buf)
	assertMessageError(t, err, ErrCodeOpen, SubUnsupportedVersion)
}

func TestDecodeOpenBadHoldTime(t *testing.T) {
	o := &Open{Version: Version4, AS: 1, HoldTime: 2, BGPID: 1}
	buf, _ := Encode(o)
	_, err := Decode(buf)
	assertMessageError(t, err, ErrCodeOpen, SubUnacceptableHold)
}

func TestDecodeUpdateMissingMandatory(t *testing.T) {
	u := &Update{
		Attrs: PathAttrs{ASPath: astypes.NewSeqPath(1)},
		NLRI:  []astypes.Prefix{astypes.MustPrefix(0x0a000000, 8)},
	}
	// Hand-encode without ORIGIN/NEXT_HOP by building the body manually:
	// encodeBody adds them when NLRI present (mandatory), so corrupt a
	// valid encoding instead: strip the ORIGIN attribute.
	buf, err := Encode(&Update{
		Attrs: PathAttrs{
			HasOrigin:  true,
			HasNextHop: true,
			ASPath:     astypes.NewSeqPath(1),
		},
		NLRI: u.NLRI,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Locate and zero out the attribute block except AS_PATH+NEXT_HOP is
	// fiddly; instead decode a crafted body: attrs = NEXT_HOP only.
	body := []byte{0, 0} // no withdrawn
	attr := []byte{flagTransitive, attrNextHop, 4, 10, 0, 0, 1}
	body = append(body, byte(len(attr)>>8), byte(len(attr)))
	body = append(body, attr...)
	body = append(body, 8, 10) // NLRI 10.0.0.0/8
	full := append(buf[:HeaderLen:HeaderLen], body...)
	full[16] = byte(len(full) >> 8)
	full[17] = byte(len(full))
	_, err = Decode(full)
	assertMessageError(t, err, ErrCodeUpdate, SubMissingMandatory)
}

func TestDecodeUpdateDuplicateAttr(t *testing.T) {
	body := []byte{0, 0}
	attr := []byte{
		flagTransitive, attrOrigin, 1, 0,
		flagTransitive, attrOrigin, 1, 0,
	}
	body = append(body, byte(len(attr)>>8), byte(len(attr)))
	body = append(body, attr...)
	full := frame(MsgUpdate, body)
	_, err := Decode(full)
	assertMessageError(t, err, ErrCodeUpdate, SubMalformedAttrList)
}

func TestDecodeUpdateBadPrefixLength(t *testing.T) {
	body := []byte{0, 1, 40, 0, 0} // withdrawn: /40
	full := frame(MsgUpdate, body)
	if _, err := Decode(full); err == nil {
		t.Error("prefix /40 accepted")
	}
}

func TestDecodeUpdateTruncatedAttr(t *testing.T) {
	body := []byte{0, 0, 0, 2, flagTransitive, attrOrigin} // header cut short
	full := frame(MsgUpdate, body)
	if _, err := Decode(full); err == nil {
		t.Error("truncated attribute accepted")
	}
}

func TestDecodeUpdateStrayHostBitsMasked(t *testing.T) {
	// Withdrawn 10.0.0.0/7 encoded with a second set bit below the
	// mask: the decoder masks rather than rejects.
	body := []byte{0, 2, 7, 0x0b, 0, 0}
	full := frame(MsgUpdate, body)
	m, err := Decode(full)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	u := m.(*Update)
	if len(u.Withdrawn) != 1 || u.Withdrawn[0].String() != "10.0.0.0/7" {
		t.Errorf("Withdrawn = %v", u.Withdrawn)
	}
}

func TestUnrecognizedWellKnownAttrRejected(t *testing.T) {
	body := []byte{0, 0}
	attr := []byte{0 /* well-known flags */, 77, 1, 0}
	body = append(body, byte(len(attr)>>8), byte(len(attr)))
	body = append(body, attr...)
	full := frame(MsgUpdate, body)
	_, err := Decode(full)
	assertMessageError(t, err, ErrCodeUpdate, SubUnrecognizedAttr)
}

func TestOptionalNonTransitiveUnknownDropped(t *testing.T) {
	body := []byte{0, 0}
	attr := []byte{flagOptional, 77, 1, 0}
	body = append(body, byte(len(attr)>>8), byte(len(attr)))
	body = append(body, attr...)
	full := frame(MsgUpdate, body)
	m, err := Decode(full)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if u := m.(*Update); len(u.Attrs.Unknown) != 0 {
		t.Errorf("optional non-transitive unknown kept: %+v", u.Attrs.Unknown)
	}
}

func TestReadWriteMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Open{Version: Version4, AS: 1, HoldTime: 90, BGPID: 7},
		&Keepalive{},
		&Update{
			Attrs: PathAttrs{HasOrigin: true, HasNextHop: true, ASPath: astypes.NewSeqPath(1)},
			NLRI:  []astypes.Prefix{astypes.MustPrefix(0x0a000000, 8)},
		},
		&Notification{Code: 6},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Errorf("message %d type = %v, want %v", i, got.Type(), want.Type())
		}
	}
	if _, err := ReadMessage(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReadMessageTruncated(t *testing.T) {
	buf, _ := Encode(&Open{Version: Version4, AS: 1, HoldTime: 90, BGPID: 7})
	r := bytes.NewReader(buf[:len(buf)-2])
	if _, err := ReadMessage(r); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("expected unexpected EOF, got %v", err)
	}
}

func TestReadMessageBogusLength(t *testing.T) {
	buf, _ := Encode(&Keepalive{})
	buf[16], buf[17] = 0xff, 0xff // 65535 > max
	if _, err := ReadMessage(bytes.NewReader(buf)); err == nil {
		t.Error("bogus length accepted")
	}
}

func TestUpdateRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		u := randomUpdate(rng)
		buf, err := Encode(u)
		if err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
		m, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		back := m.(*Update)
		if !reflect.DeepEqual(u, back) {
			t.Fatalf("roundtrip %d mismatch:\n got %#v\nwant %#v", i, back, u)
		}
	}
}

func randomUpdate(rng *rand.Rand) *Update {
	u := &Update{}
	for i := rng.Intn(4); i > 0; i-- {
		u.Withdrawn = append(u.Withdrawn, randomPrefix(rng))
	}
	if rng.Intn(4) > 0 { // usually has NLRI
		for i := rng.Intn(4) + 1; i > 0; i-- {
			u.NLRI = append(u.NLRI, randomPrefix(rng))
		}
	}
	if len(u.NLRI) > 0 {
		u.Attrs.HasOrigin = true
		u.Attrs.Origin = OriginCode(rng.Intn(3))
		u.Attrs.HasNextHop = true
		u.Attrs.NextHop = rng.Uint32()
		hops := make([]astypes.ASN, rng.Intn(5)+1)
		for i := range hops {
			hops[i] = astypes.ASN(rng.Intn(65535) + 1)
		}
		u.Attrs.ASPath = astypes.NewSeqPath(hops...)
		if rng.Intn(2) == 0 {
			u.Attrs.HasLocalPref = true
			u.Attrs.LocalPref = rng.Uint32()
		}
		for i := rng.Intn(4); i > 0; i-- {
			u.Attrs.Communities = append(u.Attrs.Communities,
				astypes.Community(rng.Uint32()))
		}
	}
	return u
}

func randomPrefix(rng *rand.Rand) astypes.Prefix {
	length := uint8(rng.Intn(33))
	addr := rng.Uint32()
	if length == 0 {
		addr = 0
	} else {
		addr &= ^uint32(0) << (32 - length)
	}
	return astypes.MustPrefix(addr, length)
}

func frame(t MsgType, body []byte) []byte {
	full := make([]byte, HeaderLen, HeaderLen+len(body))
	for i := 0; i < markerLen; i++ {
		full[i] = 0xff
	}
	full[18] = byte(t)
	full = append(full, body...)
	full[16] = byte(len(full) >> 8)
	full[17] = byte(len(full))
	return full
}

func assertMessageError(t *testing.T, err error, code, sub uint8) {
	t.Helper()
	if err == nil {
		t.Fatal("expected error")
	}
	var me *MessageError
	if !errors.As(err, &me) {
		t.Fatalf("expected MessageError, got %T: %v", err, err)
	}
	if me.Code != code || me.Subcode != sub {
		t.Errorf("error code/subcode = %d/%d, want %d/%d", me.Code, me.Subcode, code, sub)
	}
}

func TestRouteRefreshRoundTrip(t *testing.T) {
	rr := &RouteRefresh{AFI: AFIIPv4, SAFI: SAFIUnicast}
	back := roundTrip(t, rr).(*RouteRefresh)
	if back.AFI != AFIIPv4 || back.SAFI != SAFIUnicast {
		t.Errorf("roundtrip = %+v", back)
	}
	if MsgRouteRefresh.String() != "ROUTE-REFRESH" {
		t.Errorf("type string = %q", MsgRouteRefresh.String())
	}
}

func TestRouteRefreshBadLength(t *testing.T) {
	full := frame(MsgRouteRefresh, []byte{0, 1, 0}) // 3 bytes, want 4
	if _, err := Decode(full); err == nil {
		t.Error("short ROUTE-REFRESH accepted")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	tests := map[MsgType]string{
		MsgOpen:         "OPEN",
		MsgUpdate:       "UPDATE",
		MsgNotification: "NOTIFICATION",
		MsgKeepalive:    "KEEPALIVE",
		MsgRouteRefresh: "ROUTE-REFRESH",
		MsgType(77):     "TYPE(77)",
	}
	for mt, want := range tests {
		if mt.String() != want {
			t.Errorf("MsgType(%d).String() = %q", mt, mt.String())
		}
	}
}

func TestMessageErrorString(t *testing.T) {
	err := &MessageError{Code: ErrCodeUpdate, Subcode: SubMalformedASPath, Reason: "boom"}
	want := "bgp message error (code 3 subcode 11): boom"
	if err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
}

func TestUnknownAttrHelpers(t *testing.T) {
	a := NewOptionalTransitive(254, []byte{1, 2})
	if a.Code != 254 || a.Flags&flagOptional == 0 || a.Flags&flagTransitive == 0 {
		t.Errorf("NewOptionalTransitive = %+v", a)
	}
	// Value is copied defensively.
	src := []byte{9}
	b := NewOptionalTransitive(200, src)
	src[0] = 0
	if b.Value[0] != 9 {
		t.Error("value aliased caller storage")
	}

	attrs := []UnknownAttr{a, b}
	cp := CloneUnknownAttrs(attrs)
	cp[0].Value[0] = 0xff
	if attrs[0].Value[0] == 0xff {
		t.Error("CloneUnknownAttrs aliased storage")
	}
	if CloneUnknownAttrs(nil) != nil {
		t.Error("clone of nil should be nil")
	}

	if got := FindUnknownAttr(attrs, 200); len(got) != 1 || got[0] != 9 {
		t.Errorf("FindUnknownAttr(200) = %v", got)
	}
	if FindUnknownAttr(attrs, 99) != nil {
		t.Error("absent code should be nil")
	}
}
