// Package wire implements a BGP-4 binary message codec in the style of
// RFC 4271 (with RFC 1997 communities), sufficient to run live speaker
// meshes over TCP and to serialize routing feeds for the offline MOAS
// monitor. AS numbers are 2 octets, matching the era of the paper.
//
// The codec is strict on decode: malformed input returns a
// *MessageError carrying the NOTIFICATION error code/subcode a conformant
// speaker would send.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/astypes"
)

// Message size limits and header layout (RFC 4271 §4.1).
const (
	HeaderLen     = 19
	MaxMessageLen = 4096
	markerLen     = 16
)

// MsgType identifies a BGP message type.
type MsgType uint8

// BGP message types.
const (
	MsgOpen         MsgType = 1
	MsgUpdate       MsgType = 2
	MsgNotification MsgType = 3
	MsgKeepalive    MsgType = 4
	// MsgRouteRefresh is the RFC 2918 ROUTE-REFRESH message.
	MsgRouteRefresh MsgType = 5
)

func (t MsgType) String() string {
	switch t {
	case MsgOpen:
		return "OPEN"
	case MsgUpdate:
		return "UPDATE"
	case MsgNotification:
		return "NOTIFICATION"
	case MsgKeepalive:
		return "KEEPALIVE"
	case MsgRouteRefresh:
		return "ROUTE-REFRESH"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// NOTIFICATION error codes (RFC 4271 §4.5).
const (
	ErrCodeHeader    uint8 = 1
	ErrCodeOpen      uint8 = 2
	ErrCodeUpdate    uint8 = 3
	ErrCodeHoldTimer uint8 = 4
	ErrCodeFSM       uint8 = 5
	ErrCodeCease     uint8 = 6
)

// Header error subcodes.
const (
	SubConnNotSynced uint8 = 1
	SubBadLength     uint8 = 2
	SubBadType       uint8 = 3
)

// UPDATE error subcodes (subset used by this implementation).
const (
	SubMalformedAttrList uint8 = 1
	SubUnrecognizedAttr  uint8 = 2
	SubMissingMandatory  uint8 = 3
	SubAttrFlagsError    uint8 = 4
	SubAttrLengthError   uint8 = 5
	SubInvalidOrigin     uint8 = 6
	SubInvalidNextHop    uint8 = 8
	SubMalformedASPath   uint8 = 11
	SubMalformedNLRI     uint8 = 10
)

// OPEN error subcodes.
const (
	SubUnsupportedVersion uint8 = 1
	SubBadPeerAS          uint8 = 2
	SubBadBGPID           uint8 = 3
	SubUnacceptableHold   uint8 = 6
)

// MessageError is a decode failure annotated with the NOTIFICATION
// code/subcode a speaker should emit in response.
type MessageError struct {
	Code    uint8
	Subcode uint8
	Reason  string
}

func (e *MessageError) Error() string {
	return fmt.Sprintf("bgp message error (code %d subcode %d): %s", e.Code, e.Subcode, e.Reason)
}

func msgErrf(code, sub uint8, format string, args ...any) error {
	return &MessageError{Code: code, Subcode: sub, Reason: fmt.Sprintf(format, args...)}
}

// Message is any decodable BGP message body.
type Message interface {
	// Type returns the message type code.
	Type() MsgType
	// encodeBody appends the body (everything after the 19-byte header).
	encodeBody(dst []byte) ([]byte, error)
}

// Open is the BGP OPEN message. Optional parameters are not modelled.
type Open struct {
	Version  uint8
	AS       astypes.ASN
	HoldTime uint16
	BGPID    uint32
}

// Version4 is the only supported BGP version.
const Version4 uint8 = 4

// Type implements Message.
func (*Open) Type() MsgType { return MsgOpen }

func (o *Open) encodeBody(dst []byte) ([]byte, error) {
	dst = append(dst, o.Version)
	dst = binary.BigEndian.AppendUint16(dst, as2of(o.AS))
	dst = binary.BigEndian.AppendUint16(dst, o.HoldTime)
	dst = binary.BigEndian.AppendUint32(dst, o.BGPID)
	dst = append(dst, 0) // optional parameters length
	return dst, nil
}

// as2of narrows a 4-octet ASN into a 2-octet wire field, substituting
// AS_TRANS (RFC 6793) for values that do not fit — the classic encoding
// used by this speaker carries only 2-octet AS fields.
func as2of(a astypes.ASN) uint16 {
	if a > astypes.Max2Octet {
		return uint16(astypes.ASTrans)
	}
	return uint16(a)
}

func decodeOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, msgErrf(ErrCodeHeader, SubBadLength, "OPEN body %d bytes, need >= 10", len(body))
	}
	o := &Open{
		Version:  body[0],
		AS:       astypes.ASN(binary.BigEndian.Uint16(body[1:3])),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		BGPID:    binary.BigEndian.Uint32(body[5:9]),
	}
	if o.Version != Version4 {
		return nil, msgErrf(ErrCodeOpen, SubUnsupportedVersion, "version %d", o.Version)
	}
	optLen := int(body[9])
	if len(body) != 10+optLen {
		return nil, msgErrf(ErrCodeHeader, SubBadLength, "OPEN optional params length mismatch")
	}
	if o.HoldTime == 1 || o.HoldTime == 2 {
		return nil, msgErrf(ErrCodeOpen, SubUnacceptableHold, "hold time %d", o.HoldTime)
	}
	return o, nil
}

// RouteRefresh is the RFC 2918 ROUTE-REFRESH message: a request that
// the peer re-advertise its Adj-RIB-Out for the given AFI/SAFI (always
// IPv4 unicast here).
type RouteRefresh struct {
	AFI  uint16
	SAFI uint8
}

// IPv4 unicast address family identifiers.
const (
	AFIIPv4     uint16 = 1
	SAFIUnicast uint8  = 1
)

// Type implements Message.
func (*RouteRefresh) Type() MsgType { return MsgRouteRefresh }

func (r *RouteRefresh) encodeBody(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint16(dst, r.AFI)
	dst = append(dst, 0 /* reserved */, r.SAFI)
	return dst, nil
}

func decodeRouteRefresh(body []byte) (*RouteRefresh, error) {
	if len(body) != 4 {
		return nil, msgErrf(ErrCodeHeader, SubBadLength, "ROUTE-REFRESH body %d bytes", len(body))
	}
	return &RouteRefresh{
		AFI:  binary.BigEndian.Uint16(body[:2]),
		SAFI: body[3],
	}, nil
}

// Keepalive is the (body-less) KEEPALIVE message.
type Keepalive struct{}

// Type implements Message.
func (*Keepalive) Type() MsgType { return MsgKeepalive }

func (*Keepalive) encodeBody(dst []byte) ([]byte, error) { return dst, nil }

// Notification is the BGP NOTIFICATION message.
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Type implements Message.
func (*Notification) Type() MsgType { return MsgNotification }

func (n *Notification) encodeBody(dst []byte) ([]byte, error) {
	dst = append(dst, n.Code, n.Subcode)
	return append(dst, n.Data...), nil
}

func decodeNotification(body []byte) (*Notification, error) {
	if len(body) < 2 {
		return nil, msgErrf(ErrCodeHeader, SubBadLength, "NOTIFICATION body %d bytes", len(body))
	}
	n := &Notification{Code: body[0], Subcode: body[1]}
	if len(body) > 2 {
		n.Data = append([]byte(nil), body[2:]...)
	}
	return n, nil
}

// OriginCode is the value of the ORIGIN path attribute.
type OriginCode uint8

// ORIGIN attribute values.
const (
	OriginIGP        OriginCode = 0
	OriginEGP        OriginCode = 1
	OriginIncomplete OriginCode = 2
)

// Update is the BGP UPDATE message. Attrs carries the decoded path
// attributes relevant to this system; unrecognized optional transitive
// attributes are preserved opaquely in Unknown so they transit unchanged.
type Update struct {
	Withdrawn []astypes.Prefix
	Attrs     PathAttrs
	NLRI      []astypes.Prefix
}

// PathAttrs is the decoded attribute set of an UPDATE.
type PathAttrs struct {
	HasOrigin    bool
	Origin       OriginCode
	ASPath       astypes.ASPath
	HasNextHop   bool
	NextHop      uint32
	HasLocalPref bool
	LocalPref    uint32
	// AtomicAggregate marks a route summarized with loss of path detail
	// (RFC 4271 §5.1.6); Aggregator identifies the summarizing speaker.
	AtomicAggregate bool
	HasAggregator   bool
	AggregatorAS    astypes.ASN
	AggregatorID    uint32
	Communities     []astypes.Community
	// Unknown holds unrecognized optional transitive attributes verbatim
	// (flags, type, value) so they are re-encoded on propagation.
	Unknown []UnknownAttr
}

// UnknownAttr preserves an attribute this codec does not interpret.
type UnknownAttr struct {
	Flags uint8
	Code  uint8
	Value []byte
}

// NewOptionalTransitive builds an optional transitive attribute this
// codec carries opaquely (e.g. the dedicated MOAS-list attribute).
func NewOptionalTransitive(code uint8, value []byte) UnknownAttr {
	return UnknownAttr{
		Flags: flagOptional | flagTransitive,
		Code:  code,
		Value: append([]byte(nil), value...),
	}
}

// CloneUnknownAttrs deep-copies a slice of opaque attributes.
func CloneUnknownAttrs(in []UnknownAttr) []UnknownAttr {
	if len(in) == 0 {
		return nil
	}
	out := make([]UnknownAttr, len(in))
	for i, u := range in {
		out[i] = UnknownAttr{Flags: u.Flags, Code: u.Code, Value: append([]byte(nil), u.Value...)}
	}
	return out
}

// FindUnknownAttr returns the value of the first opaque attribute with
// the given code, or nil.
func FindUnknownAttr(attrs []UnknownAttr, code uint8) []byte {
	for _, u := range attrs {
		if u.Code == code {
			return u.Value
		}
	}
	return nil
}

// Path attribute type codes.
const (
	attrOrigin          uint8 = 1
	attrASPath          uint8 = 2
	attrNextHop         uint8 = 3
	attrLocalPref       uint8 = 5
	attrAtomicAggregate uint8 = 6
	attrAggregator      uint8 = 7
	attrCommunity       uint8 = 8
)

// Path attribute flags.
const (
	flagOptional   uint8 = 0x80
	flagTransitive uint8 = 0x40
	flagPartial    uint8 = 0x20
	flagExtLen     uint8 = 0x10
)

// Type implements Message.
func (*Update) Type() MsgType { return MsgUpdate }

//repro:allocfree
func (u *Update) encodeBody(dst []byte) ([]byte, error) {
	// Both length-prefixed sections are appended in place and their
	// lengths fixed up afterwards, so encoding a full UPDATE never
	// builds intermediate slices.
	wOff := len(dst)
	dst = append(dst, 0, 0) // withdrawn routes length, fixed up below
	dst, err := encodePrefixes(dst, u.Withdrawn)
	if err != nil {
		return nil, fmt.Errorf("encode withdrawn routes: %w", err)
	}
	if len(dst)-wOff-2 > 0xffff {
		return nil, fmt.Errorf("encode withdrawn routes: section %d bytes", len(dst)-wOff-2)
	}
	binary.BigEndian.PutUint16(dst[wOff:], uint16(len(dst)-wOff-2))
	aOff := len(dst)
	dst = append(dst, 0, 0) // total path attribute length, fixed up below
	dst, err = u.Attrs.encode(dst, len(u.NLRI) > 0)
	if err != nil {
		return nil, err
	}
	if len(dst)-aOff-2 > 0xffff {
		return nil, fmt.Errorf("encode attributes: section %d bytes", len(dst)-aOff-2)
	}
	binary.BigEndian.PutUint16(dst[aOff:], uint16(len(dst)-aOff-2))
	dst, err = encodePrefixes(dst, u.NLRI)
	if err != nil {
		return nil, fmt.Errorf("encode NLRI: %w", err)
	}
	return dst, nil
}

// appendAttrHeader appends one attribute header for a value of vLen
// bytes; the caller appends the value itself. The extended-length bit
// describes this encoding, not the attribute, so it is recomputed from
// the actual value size.
//
//repro:allocfree
func appendAttrHeader(dst []byte, flags, code uint8, vLen int) ([]byte, error) {
	if vLen > 0xffff {
		return nil, fmt.Errorf("attribute %d too long: %d bytes", code, vLen)
	}
	flags &^= flagExtLen
	if vLen > 0xff {
		flags |= flagExtLen
		dst = append(dst, flags, code)
		return binary.BigEndian.AppendUint16(dst, uint16(vLen)), nil
	}
	return append(dst, flags, code, uint8(vLen)), nil
}

//repro:allocfree
func (a *PathAttrs) encode(dst []byte, mandatory bool) ([]byte, error) {
	var err error
	if a.HasOrigin || mandatory {
		if dst, err = appendAttrHeader(dst, flagTransitive, attrOrigin, 1); err != nil {
			return nil, err
		}
		dst = append(dst, uint8(a.Origin))
	}
	if len(a.ASPath.Segments) > 0 || mandatory {
		pLen := 0
		for _, seg := range a.ASPath.Segments {
			if len(seg.ASNs) > 255 {
				return nil, fmt.Errorf("AS_PATH segment with %d ASNs exceeds 255", len(seg.ASNs))
			}
			pLen += 2 + 2*len(seg.ASNs)
		}
		if dst, err = appendAttrHeader(dst, flagTransitive, attrASPath, pLen); err != nil {
			return nil, err
		}
		for _, seg := range a.ASPath.Segments {
			dst = append(dst, uint8(seg.Type), uint8(len(seg.ASNs)))
			for _, asn := range seg.ASNs {
				dst = binary.BigEndian.AppendUint16(dst, as2of(asn))
			}
		}
	}
	if a.HasNextHop || mandatory {
		if dst, err = appendAttrHeader(dst, flagTransitive, attrNextHop, 4); err != nil {
			return nil, err
		}
		dst = binary.BigEndian.AppendUint32(dst, a.NextHop)
	}
	if a.HasLocalPref {
		if dst, err = appendAttrHeader(dst, flagTransitive, attrLocalPref, 4); err != nil {
			return nil, err
		}
		dst = binary.BigEndian.AppendUint32(dst, a.LocalPref)
	}
	if a.AtomicAggregate {
		if dst, err = appendAttrHeader(dst, flagTransitive, attrAtomicAggregate, 0); err != nil {
			return nil, err
		}
	}
	if a.HasAggregator {
		if dst, err = appendAttrHeader(dst, flagOptional|flagTransitive, attrAggregator, 6); err != nil {
			return nil, err
		}
		dst = binary.BigEndian.AppendUint16(dst, as2of(a.AggregatorAS))
		dst = binary.BigEndian.AppendUint32(dst, a.AggregatorID)
	}
	if len(a.Communities) > 0 {
		if dst, err = appendAttrHeader(dst, flagOptional|flagTransitive, attrCommunity, 4*len(a.Communities)); err != nil {
			return nil, err
		}
		for _, c := range a.Communities {
			dst = binary.BigEndian.AppendUint32(dst, uint32(c))
		}
	}
	for _, u := range a.Unknown {
		if dst, err = appendAttrHeader(dst, u.Flags|flagPartial, u.Code, len(u.Value)); err != nil {
			return nil, err
		}
		dst = append(dst, u.Value...)
	}
	return dst, nil
}

// reset clears the attribute set for reuse, keeping the capacity of the
// decoded slices so steady-state decoding does not reallocate.
func (a *PathAttrs) reset() {
	comms := a.Communities[:0]
	unknown := a.Unknown[:0]
	segs := a.ASPath.Segments[:0]
	*a = PathAttrs{
		Communities: comms,
		Unknown:     unknown,
		ASPath:      astypes.ASPath{Segments: segs},
	}
}

// decodeUpdateInto parses an UPDATE body into u, which is reset first.
// A non-nil d supplies reusable decode scratch and makes the decoded
// message alias both d and body: unknown-attribute values point into
// body, and slices are reused on d's next Decode. With d == nil every
// byte is copied and the result is independently owned.
//
//repro:allocfree
func decodeUpdateInto(u *Update, d *Decoder, body []byte) (*Update, error) {
	u.Withdrawn = u.Withdrawn[:0]
	u.NLRI = u.NLRI[:0]
	u.Attrs.reset()
	if len(body) < 4 {
		return nil, msgErrf(ErrCodeUpdate, SubMalformedAttrList, "UPDATE body %d bytes", len(body))
	}
	wLen := int(binary.BigEndian.Uint16(body[:2]))
	rest := body[2:]
	if wLen > len(rest) {
		return nil, msgErrf(ErrCodeUpdate, SubMalformedAttrList, "withdrawn length %d exceeds body", wLen)
	}
	var err error
	u.Withdrawn, err = decodePrefixes(u.Withdrawn, rest[:wLen])
	if err != nil {
		return nil, msgErrf(ErrCodeUpdate, SubMalformedNLRI, "withdrawn routes: %v", err)
	}
	rest = rest[wLen:]
	if len(rest) < 2 {
		return nil, msgErrf(ErrCodeUpdate, SubMalformedAttrList, "missing attribute length")
	}
	aLen := int(binary.BigEndian.Uint16(rest[:2]))
	rest = rest[2:]
	if aLen > len(rest) {
		return nil, msgErrf(ErrCodeUpdate, SubMalformedAttrList, "attribute length %d exceeds body", aLen)
	}
	if err := u.Attrs.decode(rest[:aLen], d); err != nil {
		return nil, err
	}
	u.NLRI, err = decodePrefixes(u.NLRI, rest[aLen:])
	if err != nil {
		return nil, msgErrf(ErrCodeUpdate, SubMalformedNLRI, "NLRI: %v", err)
	}
	if len(u.NLRI) > 0 {
		if !u.Attrs.HasOrigin {
			return nil, msgErrf(ErrCodeUpdate, SubMissingMandatory, "ORIGIN missing")
		}
		if !u.Attrs.HasNextHop {
			return nil, msgErrf(ErrCodeUpdate, SubMissingMandatory, "NEXT_HOP missing")
		}
	}
	return u, nil
}

//repro:allocfree
func (a *PathAttrs) decode(data []byte, d *Decoder) error {
	// Duplicate detection on the stack: a map here costs an allocation
	// per UPDATE decoded.
	var seen [256]bool
	for len(data) > 0 {
		if len(data) < 3 {
			return msgErrf(ErrCodeUpdate, SubMalformedAttrList, "truncated attribute header")
		}
		flags, code := data[0], data[1]
		var (
			vLen int
			off  int
		)
		if flags&flagExtLen != 0 {
			if len(data) < 4 {
				return msgErrf(ErrCodeUpdate, SubMalformedAttrList, "truncated extended length")
			}
			vLen = int(binary.BigEndian.Uint16(data[2:4]))
			off = 4
		} else {
			vLen = int(data[2])
			off = 3
		}
		if off+vLen > len(data) {
			return msgErrf(ErrCodeUpdate, SubAttrLengthError, "attribute %d length %d exceeds remaining", code, vLen)
		}
		val := data[off : off+vLen]
		data = data[off+vLen:]
		if seen[code] {
			return msgErrf(ErrCodeUpdate, SubMalformedAttrList, "duplicate attribute %d", code)
		}
		seen[code] = true
		switch code {
		case attrOrigin:
			if vLen != 1 {
				return msgErrf(ErrCodeUpdate, SubAttrLengthError, "ORIGIN length %d", vLen)
			}
			if val[0] > uint8(OriginIncomplete) {
				return msgErrf(ErrCodeUpdate, SubInvalidOrigin, "ORIGIN value %d", val[0])
			}
			a.HasOrigin, a.Origin = true, OriginCode(val[0])
		case attrASPath:
			if err := decodeASPathInto(&a.ASPath, d, val); err != nil {
				return err
			}
		case attrNextHop:
			if vLen != 4 {
				return msgErrf(ErrCodeUpdate, SubInvalidNextHop, "NEXT_HOP length %d", vLen)
			}
			a.HasNextHop, a.NextHop = true, binary.BigEndian.Uint32(val)
		case attrLocalPref:
			if vLen != 4 {
				return msgErrf(ErrCodeUpdate, SubAttrLengthError, "LOCAL_PREF length %d", vLen)
			}
			a.HasLocalPref, a.LocalPref = true, binary.BigEndian.Uint32(val)
		case attrAtomicAggregate:
			if vLen != 0 {
				return msgErrf(ErrCodeUpdate, SubAttrLengthError, "ATOMIC_AGGREGATE length %d", vLen)
			}
			a.AtomicAggregate = true
		case attrAggregator:
			if vLen != 6 {
				return msgErrf(ErrCodeUpdate, SubAttrLengthError, "AGGREGATOR length %d", vLen)
			}
			a.HasAggregator = true
			a.AggregatorAS = astypes.ASN(binary.BigEndian.Uint16(val[:2]))
			a.AggregatorID = binary.BigEndian.Uint32(val[2:6])
		case attrCommunity:
			if vLen%4 != 0 {
				return msgErrf(ErrCodeUpdate, SubAttrLengthError, "COMMUNITY length %d", vLen)
			}
			for i := 0; i < vLen; i += 4 {
				a.Communities = append(a.Communities, astypes.Community(binary.BigEndian.Uint32(val[i:i+4])))
			}
		default:
			if flags&flagOptional == 0 {
				return msgErrf(ErrCodeUpdate, SubUnrecognizedAttr, "well-known attribute %d unrecognized", code)
			}
			if flags&flagTransitive != 0 {
				value := val
				if d == nil {
					// Copy so the decoded message outlives the input
					// buffer; scratch decoding aliases it instead.
					//repro:vet ignore allocfree -- d == nil is the copying decode mode; the scratch path (d != nil) aliases val
					value = append([]byte(nil), val...)
				}
				a.Unknown = append(a.Unknown, UnknownAttr{
					// Strip the length-encoding bit: it is recomputed on
					// re-encode and must not leak into stored state.
					Flags: flags &^ flagExtLen,
					Code:  code,
					Value: value,
				})
			}
			// Optional non-transitive unknown attributes are silently dropped.
		}
	}
	return nil
}

// decodeASPathInto parses an AS_PATH attribute value into path. With a
// non-nil Decoder the segment ASN storage comes from d's flat scratch
// slice (valid until d's next Decode); otherwise each segment allocates
// its own backing array.
//
//repro:allocfree
func decodeASPathInto(path *astypes.ASPath, d *Decoder, val []byte) error {
	segs := path.Segments[:0]
	var asns []astypes.ASN
	if d != nil {
		// Pre-size the flat scratch so appends below never reallocate
		// (a mid-decode growth would strand earlier segments on the old
		// backing array).
		total := 0
		for rest := val; len(rest) > 0; {
			if len(rest) < 2 {
				break // the main loop reports the framing error
			}
			count := int(rest[1])
			total += count
			need := 2 + 2*count
			if len(rest) < need {
				break
			}
			rest = rest[need:]
		}
		if cap(d.asns) < total {
			//repro:vet ignore allocfree -- scratch growth: amortized to zero once d.asns reaches the high-water mark
			d.asns = make([]astypes.ASN, 0, total)
		}
		asns = d.asns[:0]
	}
	for len(val) > 0 {
		if len(val) < 2 {
			return msgErrf(ErrCodeUpdate, SubMalformedASPath, "truncated segment header")
		}
		segType, count := val[0], int(val[1])
		if segType != uint8(astypes.SegSequence) && segType != uint8(astypes.SegSet) {
			return msgErrf(ErrCodeUpdate, SubMalformedASPath, "segment type %d", segType)
		}
		need := 2 + 2*count
		if len(val) < need {
			return msgErrf(ErrCodeUpdate, SubMalformedASPath, "segment needs %d bytes, have %d", need, len(val))
		}
		var segASNs []astypes.ASN
		if d != nil {
			start := len(asns)
			for i := 0; i < count; i++ {
				asns = append(asns, astypes.ASN(binary.BigEndian.Uint16(val[2+2*i:4+2*i])))
			}
			segASNs = asns[start:len(asns):len(asns)]
		} else {
			//repro:vet ignore allocfree -- d == nil is the copying decode mode; the scratch path above carves from d.asns
			segASNs = make([]astypes.ASN, count)
			for i := 0; i < count; i++ {
				segASNs[i] = astypes.ASN(binary.BigEndian.Uint16(val[2+2*i : 4+2*i]))
			}
		}
		segs = append(segs, astypes.Segment{Type: astypes.SegmentType(segType), ASNs: segASNs})
		val = val[need:]
	}
	path.Segments = segs
	if d != nil {
		d.asns = asns
	}
	return nil
}

//repro:allocfree
func encodePrefixes(dst []byte, prefixes []astypes.Prefix) ([]byte, error) {
	for _, p := range prefixes {
		if p.Len > 32 {
			return nil, fmt.Errorf("prefix length %d out of range", p.Len)
		}
		dst = append(dst, p.Len)
		octets := (int(p.Len) + 7) / 8
		for i := 0; i < octets; i++ {
			dst = append(dst, byte(p.Addr>>uint(24-8*i)))
		}
	}
	return dst, nil
}

// decodePrefixes appends the prefixes encoded in data to out.
//
//repro:allocfree
func decodePrefixes(out []astypes.Prefix, data []byte) ([]astypes.Prefix, error) {
	for len(data) > 0 {
		length := data[0]
		if length > 32 {
			return nil, fmt.Errorf("prefix length %d out of range", length)
		}
		octets := (int(length) + 7) / 8
		if len(data) < 1+octets {
			return nil, fmt.Errorf("truncated prefix of length %d", length)
		}
		var addr uint32
		for i := 0; i < octets; i++ {
			addr |= uint32(data[1+i]) << uint(24-8*i)
		}
		// Mask off any stray host bits rather than rejecting: RFC 4271
		// leaves trailing bits unspecified.
		if length > 0 {
			addr &= ^uint32(0) << (32 - length)
		} else {
			addr = 0
		}
		p, err := astypes.NewPrefix(addr, length)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		data = data[1+octets:]
	}
	return out, nil
}

// AppendMessage serializes a full message (header + body) onto dst and
// returns the extended slice. When dst has spare capacity no allocation
// occurs; this is the zero-allocation core that Encode, WriteMessage
// and Writer share.
//
//repro:allocfree
func AppendMessage(dst []byte, m Message) ([]byte, error) {
	start := len(dst)
	dst = append(dst,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
		0, 0, uint8(m.Type()))
	dst, err := m.encodeBody(dst)
	if err != nil {
		return nil, fmt.Errorf("encode %s: %w", m.Type(), err)
	}
	if len(dst)-start > MaxMessageLen {
		return nil, fmt.Errorf("encode %s: message %d bytes exceeds max %d", m.Type(), len(dst)-start, MaxMessageLen)
	}
	binary.BigEndian.PutUint16(dst[start+16:start+18], uint16(len(dst)-start))
	return dst, nil
}

// Encode serializes a full message (header + body) into a fresh buffer.
func Encode(m Message) ([]byte, error) {
	return AppendMessage(make([]byte, 0, HeaderLen+64), m)
}

// checkHeader validates the marker, declared length, and framing of one
// complete message and returns its type code and body.
//
//repro:allocfree
func checkHeader(buf []byte) (MsgType, []byte, error) {
	if len(buf) < HeaderLen {
		return 0, nil, msgErrf(ErrCodeHeader, SubBadLength, "message %d bytes < header", len(buf))
	}
	for i := 0; i < markerLen; i++ {
		if buf[i] != 0xff {
			return 0, nil, msgErrf(ErrCodeHeader, SubConnNotSynced, "bad marker")
		}
	}
	totalLen := int(binary.BigEndian.Uint16(buf[16:18]))
	if totalLen != len(buf) || totalLen > MaxMessageLen {
		return 0, nil, msgErrf(ErrCodeHeader, SubBadLength, "declared length %d, have %d", totalLen, len(buf))
	}
	return MsgType(buf[18]), buf[HeaderLen:], nil
}

// Decode parses one complete message from buf (header included). The
// returned message owns all of its memory; use a Decoder for the
// allocation-free variant.
func Decode(buf []byte) (Message, error) {
	t, body, err := checkHeader(buf)
	if err != nil {
		return nil, err
	}
	switch t {
	case MsgOpen:
		return decodeOpen(body)
	case MsgUpdate:
		return decodeUpdateInto(&Update{}, nil, body)
	case MsgNotification:
		return decodeNotification(body)
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, msgErrf(ErrCodeHeader, SubBadLength, "KEEPALIVE with body")
		}
		return &Keepalive{}, nil
	case MsgRouteRefresh:
		return decodeRouteRefresh(body)
	default:
		return nil, msgErrf(ErrCodeHeader, SubBadType, "type %d", uint8(t))
	}
}

// readFrame reads one framed message from r into buf (which must hold
// MaxMessageLen bytes) and returns its total length. The 16-byte marker
// is validated as part of the header read — before any body byte is
// consumed — so a desynchronized peer fails fast with ErrCodeHeader/
// SubConnNotSynced instead of feeding up to MaxMessageLen of garbage
// through the body read.
func readFrame(r io.Reader, buf []byte) (int, error) {
	if _, err := io.ReadFull(r, buf[:HeaderLen]); err != nil {
		return 0, err
	}
	for i := 0; i < markerLen; i++ {
		if buf[i] != 0xff {
			return 0, msgErrf(ErrCodeHeader, SubConnNotSynced, "bad marker")
		}
	}
	totalLen := int(binary.BigEndian.Uint16(buf[16:18]))
	if totalLen < HeaderLen || totalLen > MaxMessageLen {
		return 0, msgErrf(ErrCodeHeader, SubBadLength, "declared length %d", totalLen)
	}
	if _, err := io.ReadFull(r, buf[HeaderLen:totalLen]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	return totalLen, nil
}

// ReadMessage reads exactly one message from r, using the header length
// field to frame it. The read buffer is pooled; the returned message
// owns all of its memory. Long-lived readers should prefer a Reader,
// which also reuses the decoded message.
func ReadMessage(r io.Reader) (Message, error) {
	bp := msgBufPool.Get().(*[]byte)
	buf := (*bp)[:MaxMessageLen]
	n, err := readFrame(r, buf)
	if err != nil {
		msgBufPool.Put(bp)
		return nil, err
	}
	m, err := Decode(buf[:n])
	msgBufPool.Put(bp)
	return m, err
}

// WriteMessage encodes and writes one message to w as a single Write,
// using a pooled encode buffer.
func WriteMessage(w io.Writer, m Message) error {
	bp := msgBufPool.Get().(*[]byte)
	buf, err := AppendMessage((*bp)[:0], m)
	if err != nil {
		msgBufPool.Put(bp)
		return err
	}
	_, err = w.Write(buf)
	*bp = buf[:0]
	msgBufPool.Put(bp)
	return err
}
