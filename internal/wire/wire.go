// Package wire implements a BGP-4 binary message codec in the style of
// RFC 4271 (with RFC 1997 communities), sufficient to run live speaker
// meshes over TCP and to serialize routing feeds for the offline MOAS
// monitor. AS numbers are 2 octets, matching the era of the paper.
//
// The codec is strict on decode: malformed input returns a
// *MessageError carrying the NOTIFICATION error code/subcode a conformant
// speaker would send.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/astypes"
)

// Message size limits and header layout (RFC 4271 §4.1).
const (
	HeaderLen     = 19
	MaxMessageLen = 4096
	markerLen     = 16
)

// MsgType identifies a BGP message type.
type MsgType uint8

// BGP message types.
const (
	MsgOpen         MsgType = 1
	MsgUpdate       MsgType = 2
	MsgNotification MsgType = 3
	MsgKeepalive    MsgType = 4
	// MsgRouteRefresh is the RFC 2918 ROUTE-REFRESH message.
	MsgRouteRefresh MsgType = 5
)

func (t MsgType) String() string {
	switch t {
	case MsgOpen:
		return "OPEN"
	case MsgUpdate:
		return "UPDATE"
	case MsgNotification:
		return "NOTIFICATION"
	case MsgKeepalive:
		return "KEEPALIVE"
	case MsgRouteRefresh:
		return "ROUTE-REFRESH"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// NOTIFICATION error codes (RFC 4271 §4.5).
const (
	ErrCodeHeader    uint8 = 1
	ErrCodeOpen      uint8 = 2
	ErrCodeUpdate    uint8 = 3
	ErrCodeHoldTimer uint8 = 4
	ErrCodeFSM       uint8 = 5
	ErrCodeCease     uint8 = 6
)

// Header error subcodes.
const (
	SubConnNotSynced uint8 = 1
	SubBadLength     uint8 = 2
	SubBadType       uint8 = 3
)

// UPDATE error subcodes (subset used by this implementation).
const (
	SubMalformedAttrList uint8 = 1
	SubUnrecognizedAttr  uint8 = 2
	SubMissingMandatory  uint8 = 3
	SubAttrFlagsError    uint8 = 4
	SubAttrLengthError   uint8 = 5
	SubInvalidOrigin     uint8 = 6
	SubInvalidNextHop    uint8 = 8
	SubMalformedASPath   uint8 = 11
	SubMalformedNLRI     uint8 = 10
)

// OPEN error subcodes.
const (
	SubUnsupportedVersion uint8 = 1
	SubBadPeerAS          uint8 = 2
	SubBadBGPID           uint8 = 3
	SubUnacceptableHold   uint8 = 6
)

// MessageError is a decode failure annotated with the NOTIFICATION
// code/subcode a speaker should emit in response.
type MessageError struct {
	Code    uint8
	Subcode uint8
	Reason  string
}

func (e *MessageError) Error() string {
	return fmt.Sprintf("bgp message error (code %d subcode %d): %s", e.Code, e.Subcode, e.Reason)
}

func msgErrf(code, sub uint8, format string, args ...any) error {
	return &MessageError{Code: code, Subcode: sub, Reason: fmt.Sprintf(format, args...)}
}

// Message is any decodable BGP message body.
type Message interface {
	// Type returns the message type code.
	Type() MsgType
	// encodeBody appends the body (everything after the 19-byte header).
	encodeBody(dst []byte) ([]byte, error)
}

// Open is the BGP OPEN message. Optional parameters are not modelled.
type Open struct {
	Version  uint8
	AS       astypes.ASN
	HoldTime uint16
	BGPID    uint32
}

// Version4 is the only supported BGP version.
const Version4 uint8 = 4

// Type implements Message.
func (*Open) Type() MsgType { return MsgOpen }

func (o *Open) encodeBody(dst []byte) ([]byte, error) {
	dst = append(dst, o.Version)
	dst = binary.BigEndian.AppendUint16(dst, uint16(o.AS))
	dst = binary.BigEndian.AppendUint16(dst, o.HoldTime)
	dst = binary.BigEndian.AppendUint32(dst, o.BGPID)
	dst = append(dst, 0) // optional parameters length
	return dst, nil
}

func decodeOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, msgErrf(ErrCodeHeader, SubBadLength, "OPEN body %d bytes, need >= 10", len(body))
	}
	o := &Open{
		Version:  body[0],
		AS:       astypes.ASN(binary.BigEndian.Uint16(body[1:3])),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		BGPID:    binary.BigEndian.Uint32(body[5:9]),
	}
	if o.Version != Version4 {
		return nil, msgErrf(ErrCodeOpen, SubUnsupportedVersion, "version %d", o.Version)
	}
	optLen := int(body[9])
	if len(body) != 10+optLen {
		return nil, msgErrf(ErrCodeHeader, SubBadLength, "OPEN optional params length mismatch")
	}
	if o.HoldTime == 1 || o.HoldTime == 2 {
		return nil, msgErrf(ErrCodeOpen, SubUnacceptableHold, "hold time %d", o.HoldTime)
	}
	return o, nil
}

// RouteRefresh is the RFC 2918 ROUTE-REFRESH message: a request that
// the peer re-advertise its Adj-RIB-Out for the given AFI/SAFI (always
// IPv4 unicast here).
type RouteRefresh struct {
	AFI  uint16
	SAFI uint8
}

// IPv4 unicast address family identifiers.
const (
	AFIIPv4     uint16 = 1
	SAFIUnicast uint8  = 1
)

// Type implements Message.
func (*RouteRefresh) Type() MsgType { return MsgRouteRefresh }

func (r *RouteRefresh) encodeBody(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint16(dst, r.AFI)
	dst = append(dst, 0 /* reserved */, r.SAFI)
	return dst, nil
}

func decodeRouteRefresh(body []byte) (*RouteRefresh, error) {
	if len(body) != 4 {
		return nil, msgErrf(ErrCodeHeader, SubBadLength, "ROUTE-REFRESH body %d bytes", len(body))
	}
	return &RouteRefresh{
		AFI:  binary.BigEndian.Uint16(body[:2]),
		SAFI: body[3],
	}, nil
}

// Keepalive is the (body-less) KEEPALIVE message.
type Keepalive struct{}

// Type implements Message.
func (*Keepalive) Type() MsgType { return MsgKeepalive }

func (*Keepalive) encodeBody(dst []byte) ([]byte, error) { return dst, nil }

// Notification is the BGP NOTIFICATION message.
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Type implements Message.
func (*Notification) Type() MsgType { return MsgNotification }

func (n *Notification) encodeBody(dst []byte) ([]byte, error) {
	dst = append(dst, n.Code, n.Subcode)
	return append(dst, n.Data...), nil
}

func decodeNotification(body []byte) (*Notification, error) {
	if len(body) < 2 {
		return nil, msgErrf(ErrCodeHeader, SubBadLength, "NOTIFICATION body %d bytes", len(body))
	}
	n := &Notification{Code: body[0], Subcode: body[1]}
	if len(body) > 2 {
		n.Data = append([]byte(nil), body[2:]...)
	}
	return n, nil
}

// OriginCode is the value of the ORIGIN path attribute.
type OriginCode uint8

// ORIGIN attribute values.
const (
	OriginIGP        OriginCode = 0
	OriginEGP        OriginCode = 1
	OriginIncomplete OriginCode = 2
)

// Update is the BGP UPDATE message. Attrs carries the decoded path
// attributes relevant to this system; unrecognized optional transitive
// attributes are preserved opaquely in Unknown so they transit unchanged.
type Update struct {
	Withdrawn []astypes.Prefix
	Attrs     PathAttrs
	NLRI      []astypes.Prefix
}

// PathAttrs is the decoded attribute set of an UPDATE.
type PathAttrs struct {
	HasOrigin    bool
	Origin       OriginCode
	ASPath       astypes.ASPath
	HasNextHop   bool
	NextHop      uint32
	HasLocalPref bool
	LocalPref    uint32
	// AtomicAggregate marks a route summarized with loss of path detail
	// (RFC 4271 §5.1.6); Aggregator identifies the summarizing speaker.
	AtomicAggregate bool
	HasAggregator   bool
	AggregatorAS    astypes.ASN
	AggregatorID    uint32
	Communities     []astypes.Community
	// Unknown holds unrecognized optional transitive attributes verbatim
	// (flags, type, value) so they are re-encoded on propagation.
	Unknown []UnknownAttr
}

// UnknownAttr preserves an attribute this codec does not interpret.
type UnknownAttr struct {
	Flags uint8
	Code  uint8
	Value []byte
}

// NewOptionalTransitive builds an optional transitive attribute this
// codec carries opaquely (e.g. the dedicated MOAS-list attribute).
func NewOptionalTransitive(code uint8, value []byte) UnknownAttr {
	return UnknownAttr{
		Flags: flagOptional | flagTransitive,
		Code:  code,
		Value: append([]byte(nil), value...),
	}
}

// CloneUnknownAttrs deep-copies a slice of opaque attributes.
func CloneUnknownAttrs(in []UnknownAttr) []UnknownAttr {
	if len(in) == 0 {
		return nil
	}
	out := make([]UnknownAttr, len(in))
	for i, u := range in {
		out[i] = UnknownAttr{Flags: u.Flags, Code: u.Code, Value: append([]byte(nil), u.Value...)}
	}
	return out
}

// FindUnknownAttr returns the value of the first opaque attribute with
// the given code, or nil.
func FindUnknownAttr(attrs []UnknownAttr, code uint8) []byte {
	for _, u := range attrs {
		if u.Code == code {
			return u.Value
		}
	}
	return nil
}

// Path attribute type codes.
const (
	attrOrigin          uint8 = 1
	attrASPath          uint8 = 2
	attrNextHop         uint8 = 3
	attrLocalPref       uint8 = 5
	attrAtomicAggregate uint8 = 6
	attrAggregator      uint8 = 7
	attrCommunity       uint8 = 8
)

// Path attribute flags.
const (
	flagOptional   uint8 = 0x80
	flagTransitive uint8 = 0x40
	flagPartial    uint8 = 0x20
	flagExtLen     uint8 = 0x10
)

// Type implements Message.
func (*Update) Type() MsgType { return MsgUpdate }

func (u *Update) encodeBody(dst []byte) ([]byte, error) {
	withdrawn, err := encodePrefixes(nil, u.Withdrawn)
	if err != nil {
		return nil, fmt.Errorf("encode withdrawn routes: %w", err)
	}
	attrs, err := u.Attrs.encode(nil, len(u.NLRI) > 0)
	if err != nil {
		return nil, err
	}
	nlri, err := encodePrefixes(nil, u.NLRI)
	if err != nil {
		return nil, fmt.Errorf("encode NLRI: %w", err)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(withdrawn)))
	dst = append(dst, withdrawn...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(attrs)))
	dst = append(dst, attrs...)
	return append(dst, nlri...), nil
}

func (a *PathAttrs) encode(dst []byte, mandatory bool) ([]byte, error) {
	appendAttr := func(flags, code uint8, val []byte) error {
		if len(val) > 0xffff {
			return fmt.Errorf("attribute %d too long: %d bytes", code, len(val))
		}
		// The extended-length bit describes this encoding, not the
		// attribute; recompute it from the actual value size.
		flags &^= flagExtLen
		if len(val) > 0xff {
			flags |= flagExtLen
			dst = append(dst, flags, code)
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(val)))
		} else {
			dst = append(dst, flags, code, uint8(len(val)))
		}
		dst = append(dst, val...)
		return nil
	}
	if a.HasOrigin || mandatory {
		if err := appendAttr(flagTransitive, attrOrigin, []byte{uint8(a.Origin)}); err != nil {
			return nil, err
		}
	}
	if len(a.ASPath.Segments) > 0 || mandatory {
		var pv []byte
		for _, seg := range a.ASPath.Segments {
			if len(seg.ASNs) > 255 {
				return nil, fmt.Errorf("AS_PATH segment with %d ASNs exceeds 255", len(seg.ASNs))
			}
			pv = append(pv, uint8(seg.Type), uint8(len(seg.ASNs)))
			for _, asn := range seg.ASNs {
				pv = binary.BigEndian.AppendUint16(pv, uint16(asn))
			}
		}
		if err := appendAttr(flagTransitive, attrASPath, pv); err != nil {
			return nil, err
		}
	}
	if a.HasNextHop || mandatory {
		if err := appendAttr(flagTransitive, attrNextHop, binary.BigEndian.AppendUint32(nil, a.NextHop)); err != nil {
			return nil, err
		}
	}
	if a.HasLocalPref {
		if err := appendAttr(flagTransitive, attrLocalPref, binary.BigEndian.AppendUint32(nil, a.LocalPref)); err != nil {
			return nil, err
		}
	}
	if a.AtomicAggregate {
		if err := appendAttr(flagTransitive, attrAtomicAggregate, nil); err != nil {
			return nil, err
		}
	}
	if a.HasAggregator {
		av := binary.BigEndian.AppendUint16(nil, uint16(a.AggregatorAS))
		av = binary.BigEndian.AppendUint32(av, a.AggregatorID)
		if err := appendAttr(flagOptional|flagTransitive, attrAggregator, av); err != nil {
			return nil, err
		}
	}
	if len(a.Communities) > 0 {
		cv := make([]byte, 0, 4*len(a.Communities))
		for _, c := range a.Communities {
			cv = binary.BigEndian.AppendUint32(cv, uint32(c))
		}
		if err := appendAttr(flagOptional|flagTransitive, attrCommunity, cv); err != nil {
			return nil, err
		}
	}
	for _, u := range a.Unknown {
		if err := appendAttr(u.Flags|flagPartial, u.Code, u.Value); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func decodeUpdate(body []byte) (*Update, error) {
	if len(body) < 4 {
		return nil, msgErrf(ErrCodeUpdate, SubMalformedAttrList, "UPDATE body %d bytes", len(body))
	}
	u := &Update{}
	wLen := int(binary.BigEndian.Uint16(body[:2]))
	rest := body[2:]
	if wLen > len(rest) {
		return nil, msgErrf(ErrCodeUpdate, SubMalformedAttrList, "withdrawn length %d exceeds body", wLen)
	}
	var err error
	u.Withdrawn, err = decodePrefixes(rest[:wLen])
	if err != nil {
		return nil, msgErrf(ErrCodeUpdate, SubMalformedNLRI, "withdrawn routes: %v", err)
	}
	rest = rest[wLen:]
	if len(rest) < 2 {
		return nil, msgErrf(ErrCodeUpdate, SubMalformedAttrList, "missing attribute length")
	}
	aLen := int(binary.BigEndian.Uint16(rest[:2]))
	rest = rest[2:]
	if aLen > len(rest) {
		return nil, msgErrf(ErrCodeUpdate, SubMalformedAttrList, "attribute length %d exceeds body", aLen)
	}
	if err := u.Attrs.decode(rest[:aLen]); err != nil {
		return nil, err
	}
	u.NLRI, err = decodePrefixes(rest[aLen:])
	if err != nil {
		return nil, msgErrf(ErrCodeUpdate, SubMalformedNLRI, "NLRI: %v", err)
	}
	if len(u.NLRI) > 0 {
		if !u.Attrs.HasOrigin {
			return nil, msgErrf(ErrCodeUpdate, SubMissingMandatory, "ORIGIN missing")
		}
		if !u.Attrs.HasNextHop {
			return nil, msgErrf(ErrCodeUpdate, SubMissingMandatory, "NEXT_HOP missing")
		}
	}
	return u, nil
}

func (a *PathAttrs) decode(data []byte) error {
	seen := make(map[uint8]bool)
	for len(data) > 0 {
		if len(data) < 3 {
			return msgErrf(ErrCodeUpdate, SubMalformedAttrList, "truncated attribute header")
		}
		flags, code := data[0], data[1]
		var (
			vLen int
			off  int
		)
		if flags&flagExtLen != 0 {
			if len(data) < 4 {
				return msgErrf(ErrCodeUpdate, SubMalformedAttrList, "truncated extended length")
			}
			vLen = int(binary.BigEndian.Uint16(data[2:4]))
			off = 4
		} else {
			vLen = int(data[2])
			off = 3
		}
		if off+vLen > len(data) {
			return msgErrf(ErrCodeUpdate, SubAttrLengthError, "attribute %d length %d exceeds remaining", code, vLen)
		}
		val := data[off : off+vLen]
		data = data[off+vLen:]
		if seen[code] {
			return msgErrf(ErrCodeUpdate, SubMalformedAttrList, "duplicate attribute %d", code)
		}
		seen[code] = true
		switch code {
		case attrOrigin:
			if vLen != 1 {
				return msgErrf(ErrCodeUpdate, SubAttrLengthError, "ORIGIN length %d", vLen)
			}
			if val[0] > uint8(OriginIncomplete) {
				return msgErrf(ErrCodeUpdate, SubInvalidOrigin, "ORIGIN value %d", val[0])
			}
			a.HasOrigin, a.Origin = true, OriginCode(val[0])
		case attrASPath:
			path, err := decodeASPath(val)
			if err != nil {
				return err
			}
			a.ASPath = path
		case attrNextHop:
			if vLen != 4 {
				return msgErrf(ErrCodeUpdate, SubInvalidNextHop, "NEXT_HOP length %d", vLen)
			}
			a.HasNextHop, a.NextHop = true, binary.BigEndian.Uint32(val)
		case attrLocalPref:
			if vLen != 4 {
				return msgErrf(ErrCodeUpdate, SubAttrLengthError, "LOCAL_PREF length %d", vLen)
			}
			a.HasLocalPref, a.LocalPref = true, binary.BigEndian.Uint32(val)
		case attrAtomicAggregate:
			if vLen != 0 {
				return msgErrf(ErrCodeUpdate, SubAttrLengthError, "ATOMIC_AGGREGATE length %d", vLen)
			}
			a.AtomicAggregate = true
		case attrAggregator:
			if vLen != 6 {
				return msgErrf(ErrCodeUpdate, SubAttrLengthError, "AGGREGATOR length %d", vLen)
			}
			a.HasAggregator = true
			a.AggregatorAS = astypes.ASN(binary.BigEndian.Uint16(val[:2]))
			a.AggregatorID = binary.BigEndian.Uint32(val[2:6])
		case attrCommunity:
			if vLen%4 != 0 {
				return msgErrf(ErrCodeUpdate, SubAttrLengthError, "COMMUNITY length %d", vLen)
			}
			for i := 0; i < vLen; i += 4 {
				a.Communities = append(a.Communities, astypes.Community(binary.BigEndian.Uint32(val[i:i+4])))
			}
		default:
			if flags&flagOptional == 0 {
				return msgErrf(ErrCodeUpdate, SubUnrecognizedAttr, "well-known attribute %d unrecognized", code)
			}
			if flags&flagTransitive != 0 {
				a.Unknown = append(a.Unknown, UnknownAttr{
					// Strip the length-encoding bit: it is recomputed on
					// re-encode and must not leak into stored state.
					Flags: flags &^ flagExtLen,
					Code:  code,
					Value: append([]byte(nil), val...),
				})
			}
			// Optional non-transitive unknown attributes are silently dropped.
		}
	}
	return nil
}

func decodeASPath(val []byte) (astypes.ASPath, error) {
	var path astypes.ASPath
	for len(val) > 0 {
		if len(val) < 2 {
			return astypes.ASPath{}, msgErrf(ErrCodeUpdate, SubMalformedASPath, "truncated segment header")
		}
		segType, count := val[0], int(val[1])
		if segType != uint8(astypes.SegSequence) && segType != uint8(astypes.SegSet) {
			return astypes.ASPath{}, msgErrf(ErrCodeUpdate, SubMalformedASPath, "segment type %d", segType)
		}
		need := 2 + 2*count
		if len(val) < need {
			return astypes.ASPath{}, msgErrf(ErrCodeUpdate, SubMalformedASPath, "segment needs %d bytes, have %d", need, len(val))
		}
		seg := astypes.Segment{Type: astypes.SegmentType(segType), ASNs: make([]astypes.ASN, count)}
		for i := 0; i < count; i++ {
			seg.ASNs[i] = astypes.ASN(binary.BigEndian.Uint16(val[2+2*i : 4+2*i]))
		}
		path.Segments = append(path.Segments, seg)
		val = val[need:]
	}
	return path, nil
}

func encodePrefixes(dst []byte, prefixes []astypes.Prefix) ([]byte, error) {
	for _, p := range prefixes {
		if p.Len > 32 {
			return nil, fmt.Errorf("prefix length %d out of range", p.Len)
		}
		dst = append(dst, p.Len)
		octets := (int(p.Len) + 7) / 8
		for i := 0; i < octets; i++ {
			dst = append(dst, byte(p.Addr>>uint(24-8*i)))
		}
	}
	return dst, nil
}

func decodePrefixes(data []byte) ([]astypes.Prefix, error) {
	var out []astypes.Prefix
	for len(data) > 0 {
		length := data[0]
		if length > 32 {
			return nil, fmt.Errorf("prefix length %d out of range", length)
		}
		octets := (int(length) + 7) / 8
		if len(data) < 1+octets {
			return nil, fmt.Errorf("truncated prefix of length %d", length)
		}
		var addr uint32
		for i := 0; i < octets; i++ {
			addr |= uint32(data[1+i]) << uint(24-8*i)
		}
		// Mask off any stray host bits rather than rejecting: RFC 4271
		// leaves trailing bits unspecified.
		if length > 0 {
			addr &= ^uint32(0) << (32 - length)
		} else {
			addr = 0
		}
		p, err := astypes.NewPrefix(addr, length)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		data = data[1+octets:]
	}
	return out, nil
}

// Encode serializes a full message (header + body).
func Encode(m Message) ([]byte, error) {
	buf := make([]byte, HeaderLen, HeaderLen+64)
	for i := 0; i < markerLen; i++ {
		buf[i] = 0xff
	}
	buf[18] = uint8(m.Type())
	buf, err := m.encodeBody(buf)
	if err != nil {
		return nil, fmt.Errorf("encode %s: %w", m.Type(), err)
	}
	if len(buf) > MaxMessageLen {
		return nil, fmt.Errorf("encode %s: message %d bytes exceeds max %d", m.Type(), len(buf), MaxMessageLen)
	}
	binary.BigEndian.PutUint16(buf[16:18], uint16(len(buf)))
	return buf, nil
}

// Decode parses one complete message from buf (header included).
func Decode(buf []byte) (Message, error) {
	if len(buf) < HeaderLen {
		return nil, msgErrf(ErrCodeHeader, SubBadLength, "message %d bytes < header", len(buf))
	}
	for i := 0; i < markerLen; i++ {
		if buf[i] != 0xff {
			return nil, msgErrf(ErrCodeHeader, SubConnNotSynced, "bad marker")
		}
	}
	totalLen := int(binary.BigEndian.Uint16(buf[16:18]))
	if totalLen != len(buf) || totalLen > MaxMessageLen {
		return nil, msgErrf(ErrCodeHeader, SubBadLength, "declared length %d, have %d", totalLen, len(buf))
	}
	body := buf[HeaderLen:]
	switch MsgType(buf[18]) {
	case MsgOpen:
		return decodeOpen(body)
	case MsgUpdate:
		return decodeUpdate(body)
	case MsgNotification:
		return decodeNotification(body)
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, msgErrf(ErrCodeHeader, SubBadLength, "KEEPALIVE with body")
		}
		return &Keepalive{}, nil
	case MsgRouteRefresh:
		return decodeRouteRefresh(body)
	default:
		return nil, msgErrf(ErrCodeHeader, SubBadType, "type %d", buf[18])
	}
}

// ReadMessage reads exactly one message from r, using the header length
// field to frame it.
func ReadMessage(r io.Reader) (Message, error) {
	hdr := make([]byte, HeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	totalLen := int(binary.BigEndian.Uint16(hdr[16:18]))
	if totalLen < HeaderLen || totalLen > MaxMessageLen {
		return nil, msgErrf(ErrCodeHeader, SubBadLength, "declared length %d", totalLen)
	}
	buf := make([]byte, totalLen)
	copy(buf, hdr)
	if _, err := io.ReadFull(r, buf[HeaderLen:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return Decode(buf)
}

// WriteMessage encodes and writes one message to w.
func WriteMessage(w io.Writer, m Message) error {
	buf, err := Encode(m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}
