package dnsval

import (
	"errors"
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
)

var (
	p16 = astypes.MustPrefix(0x83b30000, 16) // 131.179.0.0/16
	p24 = astypes.MustPrefix(0x83b34500, 24) // 131.179.69.0/24
	p8  = astypes.MustPrefix(0x83000000, 8)  // 131.0.0.0/8
)

func TestRegisterLookup(t *testing.T) {
	s := NewStore()
	s.Register(p16, core.NewList(4, 226))
	rec, err := s.Lookup(p16)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Origins.Equal(core.NewList(4, 226)) {
		t.Errorf("origins = %v", rec.Origins)
	}
	if _, err := s.Lookup(p24); !errors.Is(err, ErrNotFound) {
		t.Errorf("exact lookup of unregistered prefix: %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Remove(p16)
	if _, err := s.Lookup(p16); !errors.Is(err, ErrNotFound) {
		t.Error("record survived Remove")
	}
}

func TestLookupCoveringLongestMatch(t *testing.T) {
	s := NewStore()
	s.Register(p8, core.NewList(1))
	s.Register(p16, core.NewList(2))
	rec, err := s.LookupCovering(p24)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Prefix != p16 {
		t.Errorf("covering = %v, want the /16", rec.Prefix)
	}
	// A query outside both registered trees fails.
	other := astypes.MustPrefix(0x0a000000, 8)
	if _, err := s.LookupCovering(other); !errors.Is(err, ErrNotFound) {
		t.Errorf("unexpected covering result: %v", err)
	}
}

func TestVerify(t *testing.T) {
	s := NewStore()
	s.Register(p16, core.NewList(4, 226))
	ok, err := s.Verify(p24, 4)
	if err != nil || !ok {
		t.Errorf("Verify(4) = %v, %v", ok, err)
	}
	ok, err = s.Verify(p24, 52)
	if err != nil || ok {
		t.Errorf("Verify(52) = %v, %v (the paper's bogus-route test)", ok, err)
	}
	if _, err := s.Verify(astypes.MustPrefix(0x0a000000, 8), 4); err == nil {
		t.Error("Verify without a record should fail")
	}
}

func TestValidOriginsResolverInterface(t *testing.T) {
	s := NewStore()
	s.Register(p16, core.NewList(4))
	list, ok := s.ValidOrigins(p24)
	if !ok || !list.Equal(core.NewList(4)) {
		t.Errorf("ValidOrigins = %v, %v", list, ok)
	}
	if _, ok := s.ValidOrigins(astypes.MustPrefix(0x0a000000, 8)); ok {
		t.Error("ValidOrigins without a record should report false")
	}
}

func TestSignedRecords(t *testing.T) {
	s := NewStore(WithSigningKey([]byte("dnssec-standin")))
	s.Register(p16, core.NewList(4))
	if _, err := s.Lookup(p16); err != nil {
		t.Fatalf("signed lookup: %v", err)
	}
	s.Tamper(p16)
	if _, err := s.Lookup(p16); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered record accepted: %v", err)
	}
	if _, err := s.LookupCovering(p24); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered record accepted via covering lookup: %v", err)
	}
}

func TestUnsignedStoreIgnoresTamper(t *testing.T) {
	s := NewStore()
	s.Register(p16, core.NewList(4))
	s.Tamper(p16) // no key: signatures are not checked
	if _, err := s.Lookup(p16); err != nil {
		t.Errorf("unsigned store should not verify: %v", err)
	}
}

func TestQueryCounting(t *testing.T) {
	s := NewStore()
	s.Register(p16, core.NewList(4))
	s.Lookup(p16)
	s.LookupCovering(p24)
	s.Verify(p16, 4)
	if got := s.Queries(); got != 3 {
		t.Errorf("Queries = %d, want 3", got)
	}
}

func TestMOASRRName(t *testing.T) {
	tests := []struct {
		prefix astypes.Prefix
		want   string
	}{
		{p16, "16/179.131.in-addr.moas."},
		{p24, "24/69.179.131.in-addr.moas."},
		{astypes.MustPrefix(0x0a000000, 8), "8/10.in-addr.moas."},
	}
	for _, tt := range tests {
		rec := MOASRR{Prefix: tt.prefix}
		if got := rec.Name(); got != tt.want {
			t.Errorf("Name(%v) = %q, want %q", tt.prefix, got, tt.want)
		}
	}
}
