// Package dnsval implements the DNS-based origin-verification side of
// the system (paper §4.4, after Bates et al.): a store of MOASRR
// records mapping an address prefix to the AS numbers entitled to
// originate it, a lookup API shaped like a DNS resource-record query
// (including longest-match semantics on the reversed-prefix namespace),
// and optional record signing so tests can exercise the paper's
// "DNS security can be used to assure correctness" point.
//
// The store satisfies both simbgp.Resolver and speaker.Resolver, so a
// simulated network or a live speaker can resolve MOAS alarms against
// it exactly the way the paper prescribes: "whenever a MOAS conflict
// for prefix p, the router performs a DNS lookup to verify the origin
// AS of p ... If the origin AS in a route announcement does not match
// any AS number in the AS list of DNS MOASRR record, the route
// announcement should be considered as bogus."
package dnsval

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/ptrie"
)

// MOASRR is one DNS resource record asserting the valid origin set for
// a prefix.
type MOASRR struct {
	Prefix  astypes.Prefix
	Origins core.List
	// Signature authenticates the record under the store's key (DNSSEC
	// stand-in); empty for unsigned records.
	Signature []byte
}

// Name returns the record's DNS-style owner name in the conventional
// reverse in-addr form, e.g. "16/179.131.in-addr.moas." for
// 131.179.0.0/16.
func (r MOASRR) Name() string {
	a := r.Prefix.Addr
	octets := [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
	significant := int(r.Prefix.Len+7) / 8
	if significant == 0 {
		significant = 1
	}
	name := fmt.Sprintf("%d/", r.Prefix.Len)
	for i := significant - 1; i >= 0; i-- {
		name += fmt.Sprintf("%d.", octets[i])
	}
	return name + "in-addr.moas."
}

// Errors returned by Store operations.
var (
	ErrNotFound     = errors.New("no MOASRR record")
	ErrBadSignature = errors.New("MOASRR signature verification failed")
)

// Store is an in-memory MOASRR database. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	records map[astypes.Prefix]MOASRR
	// trie indexes registered prefixes for covering lookups.
	trie *ptrie.Trie[astypes.Prefix]
	key  []byte
	// queries counts lookups, letting tests verify the paper's point
	// that DNS queries happen only on conflicts.
	queries int
}

// StoreOption configures a Store.
type StoreOption interface {
	apply(*Store)
}

type keyOption []byte

func (k keyOption) apply(s *Store) { s.key = []byte(k) }

// WithSigningKey enables record signing/verification under an
// HMAC-SHA256 key (the repository's stand-in for DNSSEC).
func WithSigningKey(key []byte) StoreOption {
	return keyOption(append([]byte(nil), key...))
}

// NewStore returns an empty store.
func NewStore(opts ...StoreOption) *Store {
	s := &Store{
		records: make(map[astypes.Prefix]MOASRR),
		trie:    ptrie.New[astypes.Prefix](),
	}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// Register installs (or replaces) the MOASRR for a prefix, signing it
// if the store has a key.
func (s *Store) Register(prefix astypes.Prefix, origins core.List) {
	rec := MOASRR{Prefix: prefix, Origins: origins}
	if len(s.key) > 0 {
		rec.Signature = s.sign(rec)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records[prefix] = rec
	s.trie.Insert(prefix, prefix)
}

// Remove deletes the record for a prefix.
func (s *Store) Remove(prefix astypes.Prefix) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.records, prefix)
	s.trie.Delete(prefix)
}

// Lookup returns the record for exactly this prefix, verifying its
// signature when the store is keyed.
func (s *Store) Lookup(prefix astypes.Prefix) (MOASRR, error) {
	s.mu.Lock()
	s.queries++
	rec, ok := s.records[prefix]
	key := s.key
	s.mu.Unlock()
	if !ok {
		return MOASRR{}, fmt.Errorf("%w for %s", ErrNotFound, prefix)
	}
	if len(key) > 0 && !hmac.Equal(rec.Signature, s.sign(rec)) {
		return MOASRR{}, fmt.Errorf("%w for %s", ErrBadSignature, prefix)
	}
	return rec, nil
}

// LookupCovering returns the record for the longest registered prefix
// covering the query prefix — the DNS walk a resolver performs when the
// exact name is absent.
func (s *Store) LookupCovering(prefix astypes.Prefix) (MOASRR, error) {
	s.mu.Lock()
	s.queries++
	var (
		best  MOASRR
		found bool
	)
	if _, match, ok := s.trie.LongestMatchPrefix(prefix); ok {
		best, found = s.records[match], true
	}
	key := s.key
	s.mu.Unlock()
	if !found {
		return MOASRR{}, fmt.Errorf("%w covering %s", ErrNotFound, prefix)
	}
	if len(key) > 0 && !hmac.Equal(best.Signature, s.sign(best)) {
		return MOASRR{}, fmt.Errorf("%w for %s", ErrBadSignature, best.Prefix)
	}
	return best, nil
}

// Verify checks one (prefix, origin) claim against the database: the
// paper's bogus-route test.
func (s *Store) Verify(prefix astypes.Prefix, origin astypes.ASN) (bool, error) {
	rec, err := s.LookupCovering(prefix)
	if err != nil {
		return false, err
	}
	return rec.Origins.Contains(origin), nil
}

// ValidOrigins implements the Resolver interface shared by
// internal/simbgp and internal/speaker.
func (s *Store) ValidOrigins(prefix astypes.Prefix) (core.List, bool) {
	rec, err := s.LookupCovering(prefix)
	if err != nil {
		return core.List{}, false
	}
	return rec.Origins, true
}

// Queries returns the number of lookups served so far.
func (s *Store) Queries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// Len returns the number of registered records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Tamper corrupts the stored signature for a prefix (test hook for the
// forged-DNS threat the paper cites from Atkins & Austein).
func (s *Store) Tamper(prefix astypes.Prefix) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.records[prefix]; ok {
		rec.Signature = append([]byte(nil), rec.Signature...)
		if len(rec.Signature) == 0 {
			rec.Signature = []byte{0}
		}
		rec.Signature[0] ^= 0xff
		s.records[prefix] = rec
	}
}

func (s *Store) sign(rec MOASRR) []byte {
	mac := hmac.New(sha256.New, s.key)
	fmt.Fprintf(mac, "%s=%s", rec.Prefix, rec.Origins)
	return mac.Sum(nil)
}
