package routegen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/astypes"
)

// Binary dump format — the compact archive form, standing in for the
// MRT files real collectors write. Layout (all integers big-endian):
//
//	magic   uint32  "MOAS" (0x4d4f4153)
//	version uint16  1
//	day     uint32
//	unix    int64   snapshot date (seconds)
//	count   uint32  number of entries
//	entries:
//	  addr   uint32
//	  len    uint8
//	  nhops  uint8   segments encoded as (type, count, asns...)
//	  ...path segments...
//	  ncomm  uint16
//	  comm   uint32 x ncomm
//
// Path encoding: nseg uint8, then per segment: type uint8, count uint8,
// count x uint16 ASNs.

const (
	binMagic   uint32 = 0x4d4f4153 // "MOAS"
	binVersion uint16 = 1
)

// WriteBinaryDump serializes d in the binary archive format.
func WriteBinaryDump(w io.Writer, d *Dump) error {
	bw := bufio.NewWriter(w)
	writeErr := func(err error) error { return fmt.Errorf("write binary dump: %w", err) }
	hdr := make([]byte, 0, 22)
	hdr = binary.BigEndian.AppendUint32(hdr, binMagic)
	hdr = binary.BigEndian.AppendUint16(hdr, binVersion)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(d.Day))
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(d.Date.Unix()))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(d.Entries)))
	if _, err := bw.Write(hdr); err != nil {
		return writeErr(err)
	}
	var buf []byte
	for _, e := range d.Entries {
		buf = buf[:0]
		buf = binary.BigEndian.AppendUint32(buf, e.Prefix.Addr)
		buf = append(buf, e.Prefix.Len)
		if len(e.Path.Segments) > 255 {
			return writeErr(fmt.Errorf("path with %d segments", len(e.Path.Segments)))
		}
		buf = append(buf, uint8(len(e.Path.Segments)))
		for _, seg := range e.Path.Segments {
			if len(seg.ASNs) > 255 {
				return writeErr(fmt.Errorf("segment with %d ASNs", len(seg.ASNs)))
			}
			buf = append(buf, uint8(seg.Type), uint8(len(seg.ASNs)))
			for _, a := range seg.ASNs {
				// The version-1 archive format carries 2-octet ASNs only;
				// refuse 4-octet values rather than truncate silently.
				if a > astypes.Max2Octet {
					return writeErr(fmt.Errorf("ASN %d exceeds the 2-octet archive format", a))
				}
				buf = binary.BigEndian.AppendUint16(buf, uint16(a))
			}
		}
		if len(e.Communities) > 0xffff {
			return writeErr(fmt.Errorf("%d communities", len(e.Communities)))
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Communities)))
		for _, c := range e.Communities {
			buf = binary.BigEndian.AppendUint32(buf, uint32(c))
		}
		if _, err := bw.Write(buf); err != nil {
			return writeErr(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return writeErr(err)
	}
	return nil
}

// ReadBinaryDump parses a binary archive.
func ReadBinaryDump(r io.Reader) (*Dump, error) {
	br := bufio.NewReader(r)
	readErr := func(err error) error { return fmt.Errorf("read binary dump: %w", err) }
	hdr := make([]byte, 22)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, readErr(err)
	}
	if got := binary.BigEndian.Uint32(hdr[:4]); got != binMagic {
		return nil, readErr(fmt.Errorf("bad magic %#x", got))
	}
	if got := binary.BigEndian.Uint16(hdr[4:6]); got != binVersion {
		return nil, readErr(fmt.Errorf("unsupported version %d", got))
	}
	d := &Dump{
		Day:  int(binary.BigEndian.Uint32(hdr[6:10])),
		Date: time.Unix(int64(binary.BigEndian.Uint64(hdr[10:18])), 0).UTC(),
	}
	count := binary.BigEndian.Uint32(hdr[18:22])
	const maxEntries = 16 << 20 // refuse absurd declared sizes
	if count > maxEntries {
		return nil, readErr(fmt.Errorf("declared %d entries", count))
	}
	scratch := make([]byte, 4)
	readN := func(n int) ([]byte, error) {
		if cap(scratch) < n {
			scratch = make([]byte, n)
		}
		s := scratch[:n]
		_, err := io.ReadFull(br, s)
		return s, err
	}
	d.Entries = make([]Entry, 0, min(int(count), 1<<16))
	for i := uint32(0); i < count; i++ {
		b, err := readN(6)
		if err != nil {
			return nil, readErr(err)
		}
		addr := binary.BigEndian.Uint32(b[:4])
		length := b[4]
		nseg := int(b[5])
		prefix, err := astypes.NewPrefix(addr, length)
		if err != nil {
			return nil, readErr(err)
		}
		var path astypes.ASPath
		for s := 0; s < nseg; s++ {
			b, err := readN(2)
			if err != nil {
				return nil, readErr(err)
			}
			segType := astypes.SegmentType(b[0])
			if segType != astypes.SegSequence && segType != astypes.SegSet {
				return nil, readErr(fmt.Errorf("segment type %d", b[0]))
			}
			n := int(b[1])
			b, err = readN(2 * n)
			if err != nil {
				return nil, readErr(err)
			}
			seg := astypes.Segment{Type: segType, ASNs: make([]astypes.ASN, n)}
			for j := 0; j < n; j++ {
				seg.ASNs[j] = astypes.ASN(binary.BigEndian.Uint16(b[2*j : 2*j+2]))
			}
			path.Segments = append(path.Segments, seg)
		}
		b, err = readN(2)
		if err != nil {
			return nil, readErr(err)
		}
		ncomm := int(binary.BigEndian.Uint16(b))
		entry := Entry{Prefix: prefix, Path: path}
		if ncomm > 0 {
			b, err = readN(4 * ncomm)
			if err != nil {
				return nil, readErr(err)
			}
			entry.Communities = make([]astypes.Community, ncomm)
			for j := 0; j < ncomm; j++ {
				entry.Communities[j] = astypes.Community(binary.BigEndian.Uint32(b[4*j : 4*j+4]))
			}
		}
		d.Entries = append(d.Entries, entry)
	}
	return d, nil
}

// ReadDumpAuto sniffs the format (binary magic vs text header) and
// parses accordingly.
func ReadDumpAuto(r io.Reader) (*Dump, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("read dump: %w", err)
	}
	if binary.BigEndian.Uint32(head) == binMagic {
		return ReadBinaryDump(br)
	}
	return ReadDump(br)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
