package routegen

import (
	"bytes"
	"testing"

	"repro/internal/astypes"
)

func binRoundTrip(t *testing.T, d *Dump) *Dump {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinaryDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinaryDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestBinaryRoundTrip(t *testing.T) {
	g, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.DumpForDay(50)
	if err != nil {
		t.Fatal(err)
	}
	// Decorate some entries with communities and AS_SET paths.
	d.Entries[0].Communities = []astypes.Community{
		astypes.NewCommunity(4, 0xffde), astypes.NewCommunity(226, 0xffde),
	}
	d.Entries[1].Path.Segments = append(d.Entries[1].Path.Segments, astypes.Segment{
		Type: astypes.SegSet, ASNs: []astypes.ASN{4006, 4544},
	})

	back := binRoundTrip(t, d)
	if back.Day != d.Day || !back.Date.Equal(d.Date.UTC().Truncate(0)) {
		t.Errorf("header: day=%d date=%v", back.Day, back.Date)
	}
	if len(back.Entries) != len(d.Entries) {
		t.Fatalf("entries = %d, want %d", len(back.Entries), len(d.Entries))
	}
	for i := range d.Entries {
		a, b := d.Entries[i], back.Entries[i]
		if a.Prefix != b.Prefix || !a.Path.Equal(b.Path) {
			t.Fatalf("entry %d mismatch", i)
		}
		if len(a.Communities) != len(b.Communities) {
			t.Fatalf("entry %d communities mismatch", i)
		}
		for j := range a.Communities {
			if a.Communities[j] != b.Communities[j] {
				t.Fatalf("entry %d community %d mismatch", i, j)
			}
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g, _ := New(smallConfig())
	d, _ := g.DumpForDay(3)
	var buf bytes.Buffer
	if err := WriteBinaryDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xff
	if _, err := ReadBinaryDump(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), valid...)
	bad[5] = 99
	if _, err := ReadBinaryDump(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncation at every boundary must error, never panic.
	for cut := 0; cut < len(valid)-1; cut += 7 {
		if _, err := ReadBinaryDump(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncated at %d accepted", cut)
		}
	}
	// Absurd declared entry count.
	bad = append([]byte(nil), valid[:22]...)
	bad[18], bad[19], bad[20], bad[21] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadBinaryDump(bytes.NewReader(bad)); err == nil {
		t.Error("absurd count accepted")
	}
}

func TestReadDumpAutoSniffsFormats(t *testing.T) {
	g, _ := New(smallConfig())
	d, _ := g.DumpForDay(10)

	var binBuf, txtBuf bytes.Buffer
	if err := WriteBinaryDump(&binBuf, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteDump(&txtBuf, d); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"binary": &binBuf, "text": &txtBuf} {
		back, err := ReadDumpAuto(buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(back.Entries) != len(d.Entries) {
			t.Errorf("%s: entries = %d, want %d", name, len(back.Entries), len(d.Entries))
		}
	}
	if _, err := ReadDumpAuto(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func BenchmarkBinaryVsTextEncode(b *testing.B) {
	g, err := New(smallConfig())
	if err != nil {
		b.Fatal(err)
	}
	d, err := g.DumpForDay(50)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("binary", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := WriteBinaryDump(&buf, d); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(buf.Len()), "bytes")
	})
	b.Run("text", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := WriteDump(&buf, d); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(buf.Len()), "bytes")
	})
}
