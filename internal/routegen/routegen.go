// Package routegen synthesizes the daily BGP table-dump series that
// stands in for the Oregon RouteViews archive the paper measures
// (§3.1, Figures 4 and 5). The generator deterministically produces,
// for each day of the 1279-day study window (1997-11-08 onward), a
// routing-table snapshot containing:
//
//   - a large body of ordinary single-origin prefixes;
//   - long-lived valid MOAS cases from operational multi-homing
//     (BGP + static announcement, and ASE private-AS substitution) and a
//     few exchange-point prefixes (§3.2);
//   - a background rate of short-lived (1-2 day) configuration faults;
//   - the large historical fault events the paper calls out: the
//     1998-04-07 AS8584 incident and the 2001-04-06/2001-04-10
//     (AS3561, AS15412) incident (§3.3).
//
// The population parameters are calibrated so the measurement pipeline
// (internal/measure) reproduces the paper's §3 statistics: daily
// medians of ~683 (1998) rising to ~1294 (2001), ~36% one-day cases
// with ~83% of them from the 1998-04-07 event, and a 96%/2.7% split of
// two-/three-origin cases.
package routegen

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/astypes"
)

// Study window constants from the paper.
const (
	// StudyDays is the length of the measurement period ("Over the
	// 1279-day period").
	StudyDays = 1279
)

// StudyStart is the first day of the measurement window (1997-11-08).
var StudyStart = time.Date(1997, time.November, 8, 0, 0, 0, 0, time.UTC)

// Well-known fault events reproduced by the default configuration.
var (
	// EventAS8584Day is 1998-04-07 relative to StudyStart.
	EventAS8584Day = daysSinceStart(time.Date(1998, time.April, 7, 0, 0, 0, 0, time.UTC))
	// EventAS15412Day is 2001-04-06 relative to StudyStart.
	EventAS15412Day = daysSinceStart(time.Date(2001, time.April, 6, 0, 0, 0, 0, time.UTC))
	// EventAS7007Day is 1997-04-25; it predates the window (the paper
	// notes this) and is exported for the examples only.
	EventAS7007Day = daysSinceStart(time.Date(1997, time.April, 25, 0, 0, 0, 0, time.UTC))
)

func daysSinceStart(t time.Time) int {
	return int(t.Sub(StudyStart) / (24 * time.Hour))
}

// CaseKind classifies why a prefix has multiple origins.
type CaseKind int

// Case kinds.
const (
	// KindMultiHoming: BGP peering with one ISP, static announcement via
	// another (§3.2).
	KindMultiHoming CaseKind = iota + 1
	// KindASE: private-AS substitution on egress; all providers appear
	// as origins (§3.2).
	KindASE
	// KindExchangePoint: exchange-point prefix advertised by members.
	KindExchangePoint
	// KindShortFault: small operational error lasting a day or two.
	KindShortFault
	// KindMassFault: a historical large-scale false-origination event.
	KindMassFault
)

func (k CaseKind) String() string {
	switch k {
	case KindMultiHoming:
		return "multi-homing"
	case KindASE:
		return "ase"
	case KindExchangePoint:
		return "exchange-point"
	case KindShortFault:
		return "short-fault"
	case KindMassFault:
		return "mass-fault"
	default:
		return "unknown"
	}
}

// Valid reports whether the kind is a legitimate operational MOAS.
func (k CaseKind) Valid() bool {
	switch k {
	case KindMultiHoming, KindASE, KindExchangePoint:
		return true
	default:
		return false
	}
}

// FaultEvent is a mass false-origination incident.
type FaultEvent struct {
	// Day index (relative to StudyStart) the event begins.
	Day int
	// Duration in days (usually 1).
	Duration int
	// RepeatOffsets lists additional start days (relative to Day) on
	// which the same faulty AS re-announces the same prefix set — the
	// 2001-04 incident recurred on 04-06 and 04-10, giving its victim
	// prefixes a total MOAS duration of two days.
	RepeatOffsets []int
	// FaultAS is the AS that falsely originates the prefixes.
	FaultAS astypes.ASN
	// UpstreamAS, if nonzero, appears before FaultAS on the announced
	// paths (the paper's (AS 3561, AS 15412) sequence).
	UpstreamAS astypes.ASN
	// Prefixes is how many existing prefixes the event falsely
	// originates.
	Prefixes int
}

// Config parameterizes the generator. DefaultConfig matches the paper.
type Config struct {
	Days int
	Seed int64
	// SingleOriginPrefixes is the size of the ordinary routing-table
	// body (kept modest; the real table had ~10^5 entries, but only the
	// multi-origin subset matters for every statistic we reproduce).
	SingleOriginPrefixes int
	// BaseCases is the population of operational MOAS cases active for
	// the whole window (in place before measurement began).
	BaseCases int
	// GrowthCases arrive uniformly over the window and persist to its
	// end; they produce the rising daily counts of Figure 4.
	GrowthCases int
	// ChurnCases come and go with moderate lifetimes.
	ChurnCases int
	// ChurnMeanDays is the mean lifetime of a churn case.
	ChurnMeanDays float64
	// ShortFaultCases is the population of scattered 1-2 day faults.
	ShortFaultCases int
	// ShortFaultOneDayProb is the probability a scattered fault lasts
	// one day rather than two.
	ShortFaultOneDayProb float64
	// ExchangePointCases is the small population of exchange-point
	// prefixes (§3.2).
	ExchangePointCases int
	// Events are the mass-fault incidents.
	Events []FaultEvent
}

// DefaultConfig reproduces the paper's measurement window, calibrated
// against the §3 statistics (see internal/measure tests).
func DefaultConfig() Config {
	return Config{
		Days:                 StudyDays,
		Seed:                 1997,
		SingleOriginPrefixes: 4000,
		BaseCases:            469,
		GrowthCases:          795,
		ChurnCases:           600,
		ChurnMeanDays:        150,
		ShortFaultCases:      350,
		ShortFaultOneDayProb: 0.55,
		ExchangePointCases:   6,
		Events: []FaultEvent{
			{Day: EventAS8584Day, Duration: 1, FaultAS: 8584, Prefixes: 1400},
			{Day: EventAS15412Day, Duration: 1, RepeatOffsets: []int{4},
				FaultAS: 15412, UpstreamAS: 3561, Prefixes: 650},
		},
	}
}

// moasCase is one prefix's multi-origin episode.
type moasCase struct {
	prefix  astypes.Prefix
	origins []astypes.ASN
	start   int // first day active (inclusive)
	end     int // last day active (inclusive)
	kind    CaseKind
}

// Entry is one routing-table line as seen from the collector.
type Entry struct {
	Prefix      astypes.Prefix
	Path        astypes.ASPath
	Communities []astypes.Community
}

// Origin returns the entry's origin AS.
func (e Entry) Origin() astypes.ASN {
	o, _ := e.Path.Origin()
	return o
}

// Dump is one day's table snapshot. A Dump returned by DumpForDay is
// independent and may be retained; a Dump filled via DumpForDayInto
// (including the dumps handed to Series and SeriesParallel callbacks)
// owns reusable backing storage and is only valid until the next
// DumpForDayInto call on it.
type Dump struct {
	Day     int
	Date    time.Time
	Entries []Entry

	// Arena storage backing the fabricated case paths, reused across
	// DumpForDayInto calls so steady-state generation does not allocate
	// per entry.
	asnArena []astypes.ASN
	segArena []astypes.Segment
	override map[astypes.Prefix]bool
}

// Generator produces the dump series. It is immutable after New and safe
// for concurrent DumpForDay calls.
type Generator struct {
	cfg      Config
	cases    []moasCase
	baseline []Entry
}

// New builds a Generator; all randomness derives from cfg.Seed.
func New(cfg Config) (*Generator, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("routegen: days %d", cfg.Days)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{cfg: cfg}
	alloc := newPrefixAllocator()

	// Ordinary single-origin table body.
	g.baseline = make([]Entry, 0, cfg.SingleOriginPrefixes)
	for i := 0; i < cfg.SingleOriginPrefixes; i++ {
		origin := stubASN(rng)
		g.baseline = append(g.baseline, Entry{
			Prefix: alloc.next(24),
			Path:   collectorPath(rng, origin),
		})
	}

	// Long-lived operational MOAS in three strata, producing the rising
	// daily counts of Figure 4: a base population spanning the window, a
	// growing population arriving uniformly and persisting, and a churn
	// population with moderate lifetimes.
	addLong := func(start, end int) {
		kind := KindMultiHoming
		if rng.Float64() < 0.3 {
			kind = KindASE
		}
		g.cases = append(g.cases, moasCase{
			prefix:  alloc.next(uint8(19 + rng.Intn(6))),
			origins: multiOrigins(rng),
			start:   start,
			end:     end,
			kind:    kind,
		})
	}
	for i := 0; i < cfg.BaseCases; i++ {
		addLong(0, cfg.Days-1)
	}
	for i := 0; i < cfg.GrowthCases; i++ {
		addLong(rng.Intn(cfg.Days), cfg.Days-1)
	}
	for i := 0; i < cfg.ChurnCases; i++ {
		start := rng.Intn(cfg.Days)
		end := start + 2 + int(rng.ExpFloat64()*cfg.ChurnMeanDays)
		if end >= cfg.Days {
			end = cfg.Days - 1
		}
		addLong(start, end)
	}

	// Exchange-point prefixes: long-lasting, several origins.
	for i := 0; i < cfg.ExchangePointCases; i++ {
		nOrigins := 3 + rng.Intn(2)
		origins := make([]astypes.ASN, 0, nOrigins)
		for len(origins) < nOrigins {
			origins = astypes.DedupASNs(append(origins, transitASN(rng)))
		}
		g.cases = append(g.cases, moasCase{
			prefix:  alloc.next(24),
			origins: origins,
			start:   0,
			end:     cfg.Days - 1,
			kind:    KindExchangePoint,
		})
	}

	// Scattered short faults: one or two days each.
	for i := 0; i < cfg.ShortFaultCases; i++ {
		start := rng.Intn(cfg.Days)
		dur := 2
		if rng.Float64() < cfg.ShortFaultOneDayProb {
			dur = 1
		}
		end := start + dur - 1
		if end >= cfg.Days {
			end = cfg.Days - 1
		}
		// The faulty origin plus the true origin both appear.
		g.cases = append(g.cases, moasCase{
			prefix:  alloc.next(24),
			origins: []astypes.ASN{stubASN(rng), stubASN(rng)},
			start:   start,
			end:     end,
			kind:    KindShortFault,
		})
	}

	// Mass-fault events: each falsely originates existing baseline
	// prefixes for the event duration (and again at each repeat offset,
	// reusing the same victim set). Events consume disjoint slices of a
	// single shuffle so victim sets never overlap across incidents.
	perm := rng.Perm(len(g.baseline))
	nextVictim := 0
	for _, ev := range cfg.Events {
		if ev.Day < 0 || ev.Day >= cfg.Days {
			continue
		}
		if nextVictim+ev.Prefixes > len(g.baseline) {
			return nil, fmt.Errorf("routegen: event at day %d wants %d prefixes, only %d unclaimed",
				ev.Day, ev.Prefixes, len(g.baseline)-nextVictim)
		}
		victims := perm[nextVictim : nextVictim+ev.Prefixes]
		nextVictim += ev.Prefixes
		starts := append([]int{0}, ev.RepeatOffsets...)
		for _, off := range starts {
			day := ev.Day + off
			if day < 0 || day >= cfg.Days {
				continue
			}
			end := day + ev.Duration - 1
			if end >= cfg.Days {
				end = cfg.Days - 1
			}
			for _, idx := range victims {
				victim := g.baseline[idx]
				g.cases = append(g.cases, moasCase{
					prefix:  victim.Prefix,
					origins: []astypes.ASN{victim.Origin(), ev.FaultAS},
					start:   day,
					end:     end,
					kind:    KindMassFault,
				})
			}
		}
	}
	return g, nil
}

// Days returns the configured window length.
func (g *Generator) Days() int { return g.cfg.Days }

// DateOf converts a day index to its calendar date.
func (g *Generator) DateOf(day int) time.Time {
	return StudyStart.AddDate(0, 0, day)
}

// DumpForDay assembles the table snapshot for one day. Baseline entries
// appear every day; a MOAS case active on the day contributes one entry
// per origin (replacing the baseline entry for that prefix, if any).
// The returned Dump is freshly allocated and may be retained.
func (g *Generator) DumpForDay(day int) (*Dump, error) {
	d := new(Dump)
	if err := g.DumpForDayInto(day, d); err != nil {
		return nil, err
	}
	return d, nil
}

// DumpForDayInto assembles the snapshot for one day into d, reusing
// d's entry slice and path arenas. The dump's contents are valid until
// the next DumpForDayInto call on the same d. Output is byte-for-byte
// identical to DumpForDay for the same day.
func (g *Generator) DumpForDayInto(day int, d *Dump) error {
	if day < 0 || day >= g.cfg.Days {
		return fmt.Errorf("routegen: day %d out of [0, %d)", day, g.cfg.Days)
	}
	d.Day = day
	d.Date = g.DateOf(day)
	d.Entries = d.Entries[:0]
	d.asnArena = d.asnArena[:0]
	d.segArena = d.segArena[:0]
	if d.override == nil {
		d.override = make(map[astypes.Prefix]bool, 1024)
	} else {
		clear(d.override)
	}
	// Per-day deterministic rng for path fabrication.
	rng := rand.New(rand.NewSource(g.cfg.Seed ^ int64(day)*0x9e3779b9))

	for _, c := range g.cases {
		if day < c.start || day > c.end {
			continue
		}
		d.override[c.prefix] = true
		for _, origin := range c.origins {
			d.appendCaseEntry(rng, c.prefix, origin)
		}
	}
	for _, e := range g.baseline {
		if !d.override[e.Prefix] {
			d.Entries = append(d.Entries, e)
		}
	}
	return nil
}

// appendCaseEntry fabricates one collector-view entry, carving the AS
// path out of the dump's arenas instead of allocating per entry. The
// rng draw order matches collectorPath exactly so both construction
// paths yield identical dumps. Earlier entries keep aliasing the old
// backing array if an arena grows, so capping each carve at its length
// is enough to keep entries disjoint.
func (d *Dump) appendCaseEntry(rng *rand.Rand, prefix astypes.Prefix, origin astypes.ASN) {
	start := len(d.asnArena)
	d.asnArena = append(d.asnArena, collectorASN, transitASN(rng))
	if rng.Float64() < 0.5 {
		d.asnArena = append(d.asnArena, transitASN(rng))
	}
	d.asnArena = append(d.asnArena, origin)
	hops := d.asnArena[start:len(d.asnArena):len(d.asnArena)]
	segStart := len(d.segArena)
	d.segArena = append(d.segArena, astypes.Segment{Type: astypes.SegSequence, ASNs: hops})
	d.Entries = append(d.Entries, Entry{
		Prefix: prefix,
		Path:   astypes.ASPath{Segments: d.segArena[segStart:len(d.segArena):len(d.segArena)]},
	})
}

// Series iterates over all days, invoking fn for each dump in order.
// Generation is O(day) memory; one Dump is reused across the whole
// iteration, so fn must not retain it past its return.
func (g *Generator) Series(fn func(*Dump) error) error {
	var d Dump
	for day := 0; day < g.cfg.Days; day++ {
		if err := g.DumpForDayInto(day, &d); err != nil {
			return err
		}
		if err := fn(&d); err != nil {
			return fmt.Errorf("routegen: day %d: %w", day, err)
		}
	}
	return nil
}

// SeriesParallel is Series with the per-day generation fanned out over
// a bounded worker pool. DumpForDay is pure per day, so workers claim
// days from an atomic counter and a consumer-side reorder buffer
// delivers the dumps to fn strictly in day order — the callback sees
// exactly the serial sequence. fn runs on the calling goroutine; dumps
// are pooled, so fn must not retain one past its return. workers <= 1
// degrades to the serial Series.
func (g *Generator) SeriesParallel(workers int, fn func(*Dump) error) error {
	if workers <= 1 {
		return g.Series(fn)
	}
	days := g.cfg.Days
	if workers > days {
		workers = days
	}
	// The token window bounds how many generated-but-unconsumed dumps
	// can exist, which in turn bounds the reorder buffer. Tokens are
	// acquired BEFORE claiming a day: claiming first could park every
	// worker on days far ahead of the next day fn needs, with no token
	// ever released — a deadlock.
	window := 2 * workers
	type dayResult struct {
		day  int
		dump *Dump
	}
	var (
		next    int64
		results = make(chan dayResult, window)
		tokens  = make(chan struct{}, window)
		done    = make(chan struct{})
		wg      sync.WaitGroup
		pool    = sync.Pool{New: func() any { return new(Dump) }}
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case tokens <- struct{}{}:
				case <-done:
					return
				}
				day := int(atomic.AddInt64(&next, 1)) - 1
				if day >= days {
					<-tokens
					return
				}
				d := pool.Get().(*Dump)
				// day is in range by construction, so this cannot fail.
				if err := g.DumpForDayInto(day, d); err != nil {
					panic(err)
				}
				select {
				case results <- dayResult{day: day, dump: d}:
				case <-done:
					return
				}
			}
		}()
	}
	defer func() {
		close(done)
		wg.Wait()
	}()

	pending := make(map[int]*Dump, window)
	for nextEmit := 0; nextEmit < days; {
		r := <-results
		pending[r.day] = r.dump
		for {
			d, ok := pending[nextEmit]
			if !ok {
				break
			}
			delete(pending, nextEmit)
			err := fn(d)
			pool.Put(d)
			<-tokens
			if err != nil {
				return fmt.Errorf("routegen: day %d: %w", nextEmit, err)
			}
			nextEmit++
		}
	}
	return nil
}

// multiOrigins draws the origin set of a valid MOAS case with the
// paper's measured split: 96.14% two origins, 2.7% three, remainder
// four or five.
func multiOrigins(rng *rand.Rand) []astypes.ASN {
	n := 2
	switch x := rng.Float64(); {
	case x > 0.9614 && x <= 0.9884:
		n = 3
	case x > 0.9884 && x <= 0.9964:
		n = 4
	case x > 0.9964:
		n = 5
	}
	origins := make([]astypes.ASN, 0, n)
	for len(origins) < n {
		origins = astypes.DedupASNs(append(origins, stubASN(rng)))
	}
	return origins
}

// stubASN draws an edge-network AS number (disjoint from the transit
// range so path fabrication stays unambiguous).
func stubASN(rng *rand.Rand) astypes.ASN {
	return astypes.ASN(10000 + rng.Intn(20000))
}

// transitASN draws a provider AS number.
func transitASN(rng *rand.Rand) astypes.ASN {
	return astypes.ASN(100 + rng.Intn(600))
}

// collectorASN is the AS of the synthetic route collector's peer.
const collectorASN astypes.ASN = 6447

// collectorPath fabricates the AS path the collector records toward
// origin: collector peer, one or two transit hops, origin.
func collectorPath(rng *rand.Rand, origin astypes.ASN) astypes.ASPath {
	hops := []astypes.ASN{collectorASN, transitASN(rng)}
	if rng.Float64() < 0.5 {
		hops = append(hops, transitASN(rng))
	}
	hops = append(hops, origin)
	return astypes.NewSeqPath(hops...)
}

// prefixAllocator hands out distinct prefixes deterministically.
type prefixAllocator struct {
	next16 uint32
}

func newPrefixAllocator() *prefixAllocator {
	// Start in 24.0.0.0/8-ish space and walk /16 blocks.
	return &prefixAllocator{next16: 24 << 24}
}

func (a *prefixAllocator) next(length uint8) astypes.Prefix {
	if length < 16 {
		length = 16
	}
	p := astypes.Prefix{Addr: a.next16, Len: length}
	a.next16 += 1 << 16
	return p
}
