package routegen

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// encodeDump renders a dump to its binary wire form — the strictest
// equality available (prefixes, paths, communities, day, date).
func encodeDump(t *testing.T, d *Dump) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinaryDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDumpForDayIntoMatchesDumpForDay(t *testing.T) {
	g, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One reused dump across many days, including event days, must be
	// byte-identical to a fresh DumpForDay each time.
	var reused Dump
	for _, day := range []int{0, 50, 51, 80, 84, g.Days() - 1} {
		fresh, err := g.DumpForDay(day)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.DumpForDayInto(day, &reused); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeDump(t, fresh), encodeDump(t, &reused)) {
			t.Errorf("day %d: reused dump differs from fresh dump", day)
		}
	}
	if err := g.DumpForDayInto(-1, &reused); err == nil {
		t.Error("negative day accepted")
	}
	if err := g.DumpForDayInto(g.Days(), &reused); err == nil {
		t.Error("day == Days accepted")
	}
}

func TestSeriesParallelMatchesSerial(t *testing.T) {
	g, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	serial := make([][]byte, 0, g.Days())
	if err := g.Series(func(d *Dump) error {
		serial = append(serial, encodeDump(t, d))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(serial) != g.Days() {
		t.Fatalf("serial visited %d days, want %d", len(serial), g.Days())
	}
	for _, workers := range []int{2, 3, 8, 2 * g.Days()} {
		day := 0
		err := g.SeriesParallel(workers, func(d *Dump) error {
			if d.Day != day {
				return fmt.Errorf("got day %d, want %d (out of order)", d.Day, day)
			}
			if !bytes.Equal(serial[day], encodeDump(t, d)) {
				return fmt.Errorf("day %d differs from serial output", day)
			}
			day++
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if day != g.Days() {
			t.Fatalf("workers=%d visited %d days, want %d", workers, day, g.Days())
		}
	}
}

func TestSeriesParallelPropagatesError(t *testing.T) {
	g, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	seen := 0
	err = g.SeriesParallel(4, func(d *Dump) error {
		if d.Day == 7 {
			return boom
		}
		seen++
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if seen != 7 {
		t.Errorf("callback ran for %d days before the failing day, want 7", seen)
	}
}
