package routegen

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/astypes"
)

// smallConfig keeps unit tests fast; calibration against the paper's
// numbers is asserted in internal/measure.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Days = 120
	cfg.SingleOriginPrefixes = 300
	cfg.BaseCases = 40
	cfg.GrowthCases = 30
	cfg.ChurnCases = 20
	cfg.ShortFaultCases = 15
	cfg.ExchangePointCases = 2
	cfg.Events = []FaultEvent{
		{Day: 50, Duration: 1, FaultAS: 8584, Prefixes: 25},
		{Day: 80, Duration: 1, RepeatOffsets: []int{4}, FaultAS: 15412, UpstreamAS: 3561, Prefixes: 10},
	}
	return cfg
}

func TestGeneratorValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Days = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero days accepted")
	}
	cfg = smallConfig()
	cfg.Events = []FaultEvent{{Day: 10, Duration: 1, FaultAS: 1, Prefixes: 10_000}}
	if _, err := New(cfg); err == nil {
		t.Error("event larger than baseline accepted")
	}
}

func TestDumpForDayBounds(t *testing.T) {
	g, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.DumpForDay(-1); err == nil {
		t.Error("negative day accepted")
	}
	if _, err := g.DumpForDay(g.Days()); err == nil {
		t.Error("day == Days accepted")
	}
	d, err := g.DumpForDay(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Entries) == 0 {
		t.Error("empty dump")
	}
	if !d.Date.Equal(StudyStart) {
		t.Errorf("day 0 date = %v", d.Date)
	}
}

func TestDumpDeterminism(t *testing.T) {
	g1, _ := New(smallConfig())
	g2, _ := New(smallConfig())
	d1, _ := g1.DumpForDay(33)
	d2, _ := g2.DumpForDay(33)
	if len(d1.Entries) != len(d2.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(d1.Entries), len(d2.Entries))
	}
	for i := range d1.Entries {
		if d1.Entries[i].Prefix != d2.Entries[i].Prefix ||
			!d1.Entries[i].Path.Equal(d2.Entries[i].Path) {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func originSets(d *Dump) map[astypes.Prefix]map[astypes.ASN]bool {
	sets := make(map[astypes.Prefix]map[astypes.ASN]bool)
	for _, e := range d.Entries {
		if sets[e.Prefix] == nil {
			sets[e.Prefix] = make(map[astypes.ASN]bool)
		}
		sets[e.Prefix][e.Origin()] = true
	}
	return sets
}

func countMOAS(d *Dump) int {
	n := 0
	for _, set := range originSets(d) {
		if len(set) > 1 {
			n++
		}
	}
	return n
}

func TestEventSpikeVisible(t *testing.T) {
	g, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	before, _ := g.DumpForDay(49)
	event, _ := g.DumpForDay(50)
	after, _ := g.DumpForDay(51)
	b, e, a := countMOAS(before), countMOAS(event), countMOAS(after)
	if e < b+20 {
		t.Errorf("event day should spike: before=%d event=%d", b, e)
	}
	if a >= e {
		t.Errorf("spike should subside: event=%d after=%d", e, a)
	}
}

func TestRepeatEventReusesVictims(t *testing.T) {
	g, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, _ := g.DumpForDay(80)
	repeat, _ := g.DumpForDay(84)
	victimsOf := func(d *Dump) map[astypes.Prefix]bool {
		v := make(map[astypes.Prefix]bool)
		for p, set := range originSets(d) {
			if set[15412] {
				v[p] = true
			}
		}
		return v
	}
	v1, v2 := victimsOf(first), victimsOf(repeat)
	if len(v1) == 0 || len(v1) != len(v2) {
		t.Fatalf("victim sets sized %d and %d", len(v1), len(v2))
	}
	for p := range v1 {
		if !v2[p] {
			t.Fatalf("victim %s missing from the repeat day", p)
		}
	}
}

func TestEventAbsentOtherDays(t *testing.T) {
	g, _ := New(smallConfig())
	d, _ := g.DumpForDay(10)
	// AS 8584 lies outside every random ASN range, so any sighting off
	// the event day is a leak. (AS 15412 falls inside the stub range and
	// can legitimately appear as a random origin.)
	for _, set := range originSets(d) {
		if set[8584] {
			t.Fatal("event origin visible outside event days")
		}
	}
}

func TestCaseKindClassification(t *testing.T) {
	tests := []struct {
		kind      CaseKind
		wantValid bool
		wantName  string
	}{
		{KindMultiHoming, true, "multi-homing"},
		{KindASE, true, "ase"},
		{KindExchangePoint, true, "exchange-point"},
		{KindShortFault, false, "short-fault"},
		{KindMassFault, false, "mass-fault"},
	}
	for _, tt := range tests {
		if tt.kind.Valid() != tt.wantValid {
			t.Errorf("%v.Valid() = %v", tt.kind, tt.kind.Valid())
		}
		if tt.kind.String() != tt.wantName {
			t.Errorf("%v.String() = %q", tt.kind, tt.kind.String())
		}
	}
}

func TestSeriesVisitsEveryDay(t *testing.T) {
	cfg := smallConfig()
	cfg.Days = 10
	g, _ := New(cfg)
	var days []int
	err := g.Series(func(d *Dump) error {
		days = append(days, d.Day)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 10 || days[0] != 0 || days[9] != 9 {
		t.Errorf("days = %v", days)
	}
}

func TestHistoricalEventDates(t *testing.T) {
	if got := StudyStart.AddDate(0, 0, EventAS8584Day).Format("2006-01-02"); got != "1998-04-07" {
		t.Errorf("AS8584 event date = %s", got)
	}
	if got := StudyStart.AddDate(0, 0, EventAS15412Day).Format("2006-01-02"); got != "2001-04-06" {
		t.Errorf("AS15412 event date = %s", got)
	}
	if EventAS7007Day >= 0 {
		t.Error("the 1997-04-25 event must predate the study window")
	}
}

func TestTextRoundTrip(t *testing.T) {
	g, _ := New(smallConfig())
	d, _ := g.DumpForDay(50)
	var buf bytes.Buffer
	if err := WriteDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Day != d.Day || !back.Date.Equal(d.Date) {
		t.Errorf("header mismatch: %d/%v", back.Day, back.Date)
	}
	if len(back.Entries) != len(d.Entries) {
		t.Fatalf("entries = %d, want %d", len(back.Entries), len(d.Entries))
	}
	for i := range d.Entries {
		if back.Entries[i].Prefix != d.Entries[i].Prefix ||
			!back.Entries[i].Path.Equal(d.Entries[i].Path) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestReadDumpErrors(t *testing.T) {
	cases := []string{
		"",                                          // empty
		"garbage\n",                                 // bad header
		"# dump day=x date=1998-01-01\n",            // bad day
		"# dump day=1 date=bad\n",                   // bad date
		"# dump day=1 date=1998-01-01\nnopipe",      // bad entry
		"# dump day=1 date=1998-01-01\nbad|1 2",     // bad prefix
		"# dump day=1 date=1998-01-01\n1.0.0.0/8|x", // bad path
		"# dump day=1 date=1998-01-01 entries=5\n1.0.0.0/8|1 2\n", // count mismatch
	}
	for _, give := range cases {
		if _, err := ReadDump(strings.NewReader(give)); err == nil {
			t.Errorf("ReadDump(%q) should fail", give)
		}
	}
}

func TestReadDumpSkipsCommentsAndBlanks(t *testing.T) {
	text := "# dump day=3 date=1998-01-01 entries=1\n\n# comment\n10.0.0.0/8|6447 701 42\n"
	d, err := ReadDump(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Entries) != 1 || d.Entries[0].Origin() != 42 {
		t.Errorf("parsed = %+v", d.Entries)
	}
}
