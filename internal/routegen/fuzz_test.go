package routegen

import (
	"bytes"
	"testing"
)

// FuzzReadBinaryDump: the binary archive parser must never panic and
// anything it accepts must re-encode and re-parse to the same dump.
func FuzzReadBinaryDump(f *testing.F) {
	g, err := New(smallConfig())
	if err != nil {
		f.Fatal(err)
	}
	for _, day := range []int{0, 50, 80} {
		d, err := g.DumpForDay(day)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteBinaryDump(&buf, d); err != nil {
			f.Fatal(err)
		}
		seed := buf.Bytes()
		f.Add(seed)
		for i := 0; i < len(seed); i += 11 {
			mut := append([]byte(nil), seed...)
			mut[i] ^= 0x5a
			f.Add(mut)
		}
		f.Add(seed[:len(seed)/2])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadBinaryDump(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinaryDump(&buf, d); err != nil {
			t.Fatalf("accepted dump failed to re-encode: %v", err)
		}
		d2, err := ReadBinaryDump(&buf)
		if err != nil {
			t.Fatalf("re-encoded dump failed to parse: %v", err)
		}
		if len(d2.Entries) != len(d.Entries) || d2.Day != d.Day {
			t.Fatal("binary roundtrip not stable")
		}
	})
}

// FuzzReadDumpText: same properties for the text format.
func FuzzReadDumpText(f *testing.F) {
	f.Add("# dump day=1 date=1998-01-01 entries=1\n10.0.0.0/8|6447 701 42\n")
	f.Add("# dump day=1 date=1998-01-01\n10.0.0.0/8|6447 701 42|4:65502 226:65502\n")
	f.Add("# dump day=0 date=2001-04-06 entries=0\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, text string) {
		d, err := ReadDump(bytes.NewReader([]byte(text)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDump(&buf, d); err != nil {
			t.Fatalf("accepted dump failed to re-encode: %v", err)
		}
		if _, err := ReadDump(&buf); err != nil {
			t.Fatalf("re-encoded dump failed to parse: %v", err)
		}
	})
}
