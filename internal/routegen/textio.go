package routegen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/astypes"
)

// Dump text format: a header line, then one entry per line.
//
//	# dump day=<n> date=<YYYY-MM-DD> entries=<n>
//	<prefix>|<as path>[|<community> <community> ...]
//
// The third field is optional and carries the route's community
// attribute (including any MOAS list). The format is what
// cmd/moas-measure emits and cmd/moas-monitor consumes, standing in for
// the MRT archives of the real collectors.

// WriteDump serializes d to w in the text format.
func WriteDump(w io.Writer, d *Dump) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dump day=%d date=%s entries=%d\n",
		d.Day, d.Date.Format("2006-01-02"), len(d.Entries)); err != nil {
		return fmt.Errorf("write dump header: %w", err)
	}
	for _, e := range d.Entries {
		if len(e.Communities) == 0 {
			if _, err := fmt.Fprintf(bw, "%s|%s\n", e.Prefix, e.Path); err != nil {
				return fmt.Errorf("write dump entry: %w", err)
			}
			continue
		}
		if _, err := fmt.Fprintf(bw, "%s|%s|%s\n", e.Prefix, e.Path, formatCommunities(e.Communities)); err != nil {
			return fmt.Errorf("write dump entry: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flush dump: %w", err)
	}
	return nil
}

// ReadDump parses one dump in the text format.
func ReadDump(r io.Reader) (*Dump, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("read dump header: %w", err)
		}
		return nil, io.ErrUnexpectedEOF
	}
	d, want, err := parseHeader(sc.Text())
	if err != nil {
		return nil, err
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseEntry(line)
		if err != nil {
			return nil, err
		}
		d.Entries = append(d.Entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read dump: %w", err)
	}
	if want >= 0 && len(d.Entries) != want {
		return nil, fmt.Errorf("dump declares %d entries, found %d", want, len(d.Entries))
	}
	return d, nil
}

func parseHeader(line string) (*Dump, int, error) {
	if !strings.HasPrefix(line, "# dump ") {
		return nil, 0, fmt.Errorf("bad dump header %q", line)
	}
	d := &Dump{}
	want := -1
	for _, field := range strings.Fields(line[len("# dump "):]) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, 0, fmt.Errorf("bad dump header field %q", field)
		}
		switch key {
		case "day":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, 0, fmt.Errorf("bad dump day %q: %w", val, err)
			}
			d.Day = n
		case "date":
			t, err := time.Parse("2006-01-02", val)
			if err != nil {
				return nil, 0, fmt.Errorf("bad dump date %q: %w", val, err)
			}
			d.Date = t
		case "entries":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, 0, fmt.Errorf("bad dump entries %q: %w", val, err)
			}
			want = n
		}
	}
	return d, want, nil
}

func parseEntry(line string) (Entry, error) {
	prefixStr, rest, ok := strings.Cut(line, "|")
	if !ok {
		return Entry{}, fmt.Errorf("bad dump entry %q", line)
	}
	pathStr, commStr, hasComms := strings.Cut(rest, "|")
	prefix, err := astypes.ParsePrefix(strings.TrimSpace(prefixStr))
	if err != nil {
		return Entry{}, fmt.Errorf("bad dump entry %q: %w", line, err)
	}
	path, err := astypes.ParseASPath(strings.TrimSpace(pathStr))
	if err != nil {
		return Entry{}, fmt.Errorf("bad dump entry %q: %w", line, err)
	}
	e := Entry{Prefix: prefix, Path: path}
	if hasComms {
		for _, tok := range strings.Fields(commStr) {
			c, err := astypes.ParseCommunity(tok)
			if err != nil {
				return Entry{}, fmt.Errorf("bad dump entry %q: %w", line, err)
			}
			e.Communities = append(e.Communities, c)
		}
	}
	return e, nil
}

func formatCommunities(comms []astypes.Community) string {
	var b strings.Builder
	for i, c := range comms {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(c.String())
	}
	return b.String()
}
