package astypes

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestASNIsPrivate(t *testing.T) {
	tests := []struct {
		asn  ASN
		want bool
	}{
		{0, false},
		{1, false},
		{64511, false},
		{64512, true},
		{65000, true},
		{65534, true},
		{65535, false},
	}
	for _, tt := range tests {
		if got := tt.asn.IsPrivate(); got != tt.want {
			t.Errorf("ASN(%d).IsPrivate() = %v, want %v", tt.asn, got, tt.want)
		}
	}
}

func TestParseASN(t *testing.T) {
	tests := []struct {
		give    string
		want    ASN
		wantErr bool
	}{
		{give: "0", want: 0},
		{give: "701", want: 701},
		{give: "65535", want: 65535},
		{give: "65536", want: 65536},
		{give: "4294967295", want: 4294967295},
		{give: "4294967296", wantErr: true},
		{give: "-1", wantErr: true},
		{give: "abc", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseASN(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseASN(%q) error = %v, wantErr %v", tt.give, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseASN(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestNewPrefixValidation(t *testing.T) {
	if _, err := NewPrefix(0x0a000000, 33); err == nil {
		t.Error("NewPrefix with /33 should fail")
	}
	if _, err := NewPrefix(0x0a000001, 8); err == nil {
		t.Error("NewPrefix with host bits should fail")
	}
	p, err := NewPrefix(0x0a000000, 8)
	if err != nil {
		t.Fatalf("NewPrefix: %v", err)
	}
	if p.String() != "10.0.0.0/8" {
		t.Errorf("String() = %q, want 10.0.0.0/8", p.String())
	}
}

func TestParsePrefix(t *testing.T) {
	tests := []struct {
		give    string
		want    string
		wantErr bool
	}{
		{give: "10.0.0.0/8", want: "10.0.0.0/8"},
		{give: "131.179.0.0/16", want: "131.179.0.0/16"},
		{give: "0.0.0.0/0", want: "0.0.0.0/0"},
		{give: "255.255.255.255/32", want: "255.255.255.255/32"},
		{give: "10.0.0.0", wantErr: true},
		{give: "10.0.0.1/8", wantErr: true}, // host bits
		{give: "10.0.0.0/33", wantErr: true},
		{give: "10.0.0/8", wantErr: true},
		{give: "256.0.0.0/8", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParsePrefix(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParsePrefix(%q) error = %v, wantErr %v", tt.give, err, tt.wantErr)
			continue
		}
		if err == nil && got.String() != tt.want {
			t.Errorf("ParsePrefix(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p8 := MustPrefix(0x0a000000, 8)
	p16 := MustPrefix(0x0a010000, 16)
	p16other := MustPrefix(0x0b010000, 16)
	zero := MustPrefix(0, 0)
	if !p8.Contains(p16) {
		t.Error("10/8 should contain 10.1/16")
	}
	if p16.Contains(p8) {
		t.Error("10.1/16 should not contain 10/8")
	}
	if p8.Contains(p16other) {
		t.Error("10/8 should not contain 11.1/16")
	}
	if !p8.Contains(p8) {
		t.Error("prefix should contain itself")
	}
	if !zero.Contains(p8) {
		t.Error("0/0 should contain everything")
	}
}

func TestPrefixCompare(t *testing.T) {
	a := MustPrefix(0x0a000000, 8)
	b := MustPrefix(0x0a000000, 16)
	c := MustPrefix(0x0b000000, 8)
	if a.Compare(b) >= 0 {
		t.Error("shorter prefix of same addr should sort first")
	}
	if b.Compare(c) >= 0 {
		t.Error("lower addr should sort first")
	}
	if a.Compare(a) != 0 {
		t.Error("self compare should be 0")
	}
	if c.Compare(a) <= 0 {
		t.Error("compare should be antisymmetric")
	}
}

func TestPrefixRoundTripQuick(t *testing.T) {
	f := func(addr uint32, lenSeed uint8) bool {
		length := lenSeed % 33
		masked := addr
		if length == 0 {
			masked = 0
		} else {
			masked &= ^uint32(0) << (32 - length)
		}
		p := MustPrefix(masked, length)
		back, err := ParsePrefix(p.String())
		return err == nil && back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewSeqPathAndAccessors(t *testing.T) {
	p := NewSeqPath(1, 2, 3)
	if got := p.String(); got != "1 2 3" {
		t.Errorf("String() = %q", got)
	}
	if o, ok := p.Origin(); !ok || o != 3 {
		t.Errorf("Origin() = %v, %v", o, ok)
	}
	if f, ok := p.First(); !ok || f != 1 {
		t.Errorf("First() = %v, %v", f, ok)
	}
	if p.Hops() != 3 {
		t.Errorf("Hops() = %d", p.Hops())
	}
	if !p.Contains(2) || p.Contains(4) {
		t.Error("Contains misbehaves")
	}

	var empty ASPath
	if _, ok := empty.Origin(); ok {
		t.Error("empty path should have no origin")
	}
	if _, ok := empty.First(); ok {
		t.Error("empty path should have no first")
	}
	if empty.Hops() != 0 {
		t.Error("empty path should have 0 hops")
	}
}

func TestASPathPrependDoesNotMutate(t *testing.T) {
	p := NewSeqPath(2, 3)
	q := p.Prepend(1)
	if p.String() != "2 3" {
		t.Errorf("original mutated: %q", p)
	}
	if q.String() != "1 2 3" {
		t.Errorf("prepended = %q", q)
	}
	// Prepending onto an AS_SET-leading path makes a new segment.
	set := ASPath{Segments: []Segment{{Type: SegSet, ASNs: []ASN{5, 6}}}}
	r := set.Prepend(1)
	if r.String() != "1 {5 6}" {
		t.Errorf("prepend onto set = %q", r)
	}
}

func TestASPathSetSemantics(t *testing.T) {
	p := ASPath{Segments: []Segment{
		{Type: SegSequence, ASNs: []ASN{1, 2}},
		{Type: SegSet, ASNs: []ASN{9, 4}},
	}}
	if p.Hops() != 3 {
		t.Errorf("AS_SET should count 1 hop; Hops() = %d", p.Hops())
	}
	// Origin of a trailing set is the smallest member.
	if o, ok := p.Origin(); !ok || o != 4 {
		t.Errorf("Origin() = %v, %v, want 4", o, ok)
	}
	if p.String() != "1 2 {9 4}" {
		t.Errorf("String() = %q", p.String())
	}
}

func TestParseASPath(t *testing.T) {
	tests := []struct {
		give    string
		want    string
		wantErr bool
	}{
		{give: "1 2 3", want: "1 2 3"},
		{give: "", want: ""},
		{give: "701", want: "701"},
		{give: "1 2 {4 9}", want: "1 2 {4 9}"},
		{give: "{4 9} 7", want: "{4 9} 7"},
		{give: "1 {2} 3", want: "1 {2} 3"},
		{give: "1 {2 3", wantErr: true},
		{give: "1 2} 3", wantErr: true},
		{give: "1 {{2}} 3", wantErr: true},
		{give: "1 x 3", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseASPath(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseASPath(%q) error = %v, wantErr %v", tt.give, err, tt.wantErr)
			continue
		}
		if err == nil && got.String() != tt.want {
			t.Errorf("ParseASPath(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestASPathEqualAndClone(t *testing.T) {
	p := NewSeqPath(1, 2, 3)
	q := p.Clone()
	if !p.Equal(q) {
		t.Error("clone should be equal")
	}
	q.Segments[0].ASNs[0] = 9
	if p.Equal(q) {
		t.Error("mutating clone should not affect original")
	}
	if p.Segments[0].ASNs[0] != 1 {
		t.Error("clone aliases original storage")
	}
}

// genPath produces a random structurally valid path for property tests.
func genPath(rng *rand.Rand) ASPath {
	var p ASPath
	segs := rng.Intn(3) + 1
	for i := 0; i < segs; i++ {
		typ := SegSequence
		if rng.Intn(4) == 0 {
			typ = SegSet
		}
		n := rng.Intn(4) + 1
		asns := make([]ASN, n)
		for j := range asns {
			asns[j] = ASN(rng.Intn(65535) + 1)
		}
		p.Segments = append(p.Segments, Segment{Type: typ, ASNs: asns})
	}
	return p
}

func TestASPathStringParseRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := genPath(rng)
		back, err := ParseASPath(p.String())
		if err != nil {
			t.Fatalf("ParseASPath(%q): %v", p.String(), err)
		}
		// Adjacent AS_SEQUENCE segments legitimately merge on parse, so
		// compare canonical text (and semantics), not segmentation.
		if p.String() != back.String() {
			t.Fatalf("roundtrip mismatch: %q -> %q", p.String(), back.String())
		}
		if p.Hops() < back.Hops() {
			t.Fatalf("hops grew on roundtrip: %q", p.String())
		}
		pOrigin, _ := p.Origin()
		bOrigin, _ := back.Origin()
		if pOrigin != bOrigin {
			t.Fatalf("origin changed on roundtrip: %q", p.String())
		}
	}
}

func TestCommunity(t *testing.T) {
	c := NewCommunity(701, 0xffde)
	if c.ASN() != 701 || c.Value() != 0xffde {
		t.Errorf("halves = %v:%v", c.ASN(), c.Value())
	}
	if c.String() != "701:65502" {
		t.Errorf("String() = %q", c.String())
	}
	back, err := ParseCommunity("701:65502")
	if err != nil || back != c {
		t.Errorf("ParseCommunity = %v, %v", back, err)
	}
	for _, bad := range []string{"701", "701:", ":1", "701:70000", "x:1", "70000:1"} {
		if _, err := ParseCommunity(bad); err == nil {
			t.Errorf("ParseCommunity(%q) should fail", bad)
		}
	}
}

func TestCommunityRoundTripQuick(t *testing.T) {
	f := func(asn uint16, val uint16) bool {
		c := NewCommunity(ASN(asn), val)
		back, err := ParseCommunity(c.String())
		return err == nil && back == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortAndDedupASNs(t *testing.T) {
	got := DedupASNs([]ASN{5, 1, 5, 3, 1})
	want := []ASN{1, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DedupASNs = %v, want %v", got, want)
	}
	if got := DedupASNs(nil); got != nil {
		t.Errorf("DedupASNs(nil) = %v", got)
	}
	if got := DedupASNs([]ASN{7}); len(got) != 1 || got[0] != 7 {
		t.Errorf("DedupASNs single = %v", got)
	}
}

func TestDedupASNsQuick(t *testing.T) {
	f := func(in []uint16) bool {
		asns := make([]ASN, len(in))
		for i, v := range in {
			asns[i] = ASN(v)
		}
		out := DedupASNs(asns)
		for i := 1; i < len(out); i++ {
			if out[i] <= out[i-1] {
				return false
			}
		}
		// Every input value must be present.
		set := make(map[ASN]bool, len(out))
		for _, a := range out {
			set[a] = true
		}
		for _, v := range in {
			if !set[ASN(v)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
