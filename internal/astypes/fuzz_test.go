package astypes

import "testing"

// FuzzParsePrefix: no panics; accepted prefixes round-trip.
func FuzzParsePrefix(f *testing.F) {
	for _, s := range []string{
		"10.0.0.0/8", "131.179.0.0/16", "0.0.0.0/0", "255.255.255.255/32",
		"10.0.0.1/8", "10/8", "10.0.0.0", "10.0.0.0/33", "", "a.b.c.d/8",
		"10.0.0.0/08", "010.0.0.0/8", "-1.0.0.0/8",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		back, err := ParsePrefix(p.String())
		if err != nil || back != p {
			t.Fatalf("roundtrip %q -> %v -> %v (%v)", s, p, back, err)
		}
	})
}

// FuzzParseASPath: no panics; accepted paths round-trip canonically.
func FuzzParseASPath(f *testing.F) {
	for _, s := range []string{
		"", "701", "701 1239 4", "1 2 {4 9}", "{4 9} 7", "1 {2} 3",
		"1 {2 3", "1 2} 3", "x", "65536", "{{1}}", "{}", "1  2",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseASPath(s)
		if err != nil {
			return
		}
		back, err := ParseASPath(p.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q failed to parse: %v", p.String(), s, err)
		}
		if back.String() != p.String() {
			t.Fatalf("canonical form unstable: %q -> %q", p.String(), back.String())
		}
	})
}

// FuzzParseCommunity: no panics; accepted communities round-trip.
func FuzzParseCommunity(f *testing.F) {
	for _, s := range []string{"701:65502", "0:0", "65535:65535", "1:", ":1", "x:y", "70000:1"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCommunity(s)
		if err != nil {
			return
		}
		back, err := ParseCommunity(c.String())
		if err != nil || back != c {
			t.Fatalf("roundtrip %q -> %v -> %v (%v)", s, c, back, err)
		}
	})
}
