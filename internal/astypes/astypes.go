// Package astypes defines the fundamental inter-domain routing types
// shared by every other package in this repository: autonomous system
// numbers, IPv4 address prefixes, AS paths (including AS_SET segments
// produced by route aggregation), and BGP community values.
//
// All types are small values with well-defined zero values; none of them
// hold references to shared mutable state, so they may be copied and
// passed between goroutines freely.
package astypes

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ASN is a BGP autonomous system number. The paper predates 4-octet AS
// numbers (RFC 4893), but internet-scale simulated topologies need more
// than the 16-bit space, so ASN is 32 bits wide (RFC 6793). On the
// 2-octet wire encoding and in community values, ASNs above 65535 are
// substituted with ASTrans, mirroring real 4-octet-AS interop; private
// AS numbers (64512-65534) are used by the ASE multi-homing model in
// routegen.
type ASN uint32

// Reserved and boundary AS numbers.
const (
	// ASNNone marks "no AS"; 0 is reserved by IANA and never a valid origin.
	ASNNone ASN = 0
	// PrivateASNBase is the first private-use AS number (RFC 1930 / RFC 6996).
	PrivateASNBase ASN = 64512
	// PrivateASNLast is the last private-use AS number.
	PrivateASNLast ASN = 65534
	// ASTrans (RFC 6793) substitutes for ASNs above 65535 wherever only
	// a 2-octet field is available (wire encoding, communities).
	ASTrans ASN = 23456
	// Max2Octet is the largest ASN representable in a 2-octet field.
	Max2Octet ASN = 0xffff
)

// IsPrivate reports whether the ASN falls in the private-use range that
// the "AS number Substitution on Egress" practice (paper §3.2) strips
// before announcements propagate.
func (a ASN) IsPrivate() bool {
	return a >= PrivateASNBase && a <= PrivateASNLast
}

// String formats the ASN in the conventional plain decimal form.
func (a ASN) String() string {
	return strconv.FormatUint(uint64(a), 10)
}

// ParseASN parses a decimal AS number.
func ParseASN(s string) (ASN, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parse ASN %q: %w", s, err)
	}
	return ASN(v), nil
}

// Prefix is an IPv4 address prefix in CIDR form. Addr holds the network
// address in host byte order with all host bits zero; Len is the prefix
// length in [0, 32].
type Prefix struct {
	Addr uint32
	Len  uint8
}

// Errors returned by prefix construction and parsing.
var (
	ErrPrefixLen  = errors.New("prefix length out of range")
	ErrPrefixBits = errors.New("prefix has nonzero host bits")
)

// NewPrefix builds a canonical Prefix, validating the length and masking
// off host bits is NOT performed: callers must supply a clean network
// address so that accidental host addresses are caught early.
func NewPrefix(addr uint32, length uint8) (Prefix, error) {
	if length > 32 {
		return Prefix{}, fmt.Errorf("%w: /%d", ErrPrefixLen, length)
	}
	if addr&^maskFor(length) != 0 {
		return Prefix{}, fmt.Errorf("%w: %s/%d", ErrPrefixBits, formatAddr(addr), length)
	}
	return Prefix{Addr: addr, Len: length}, nil
}

// MustPrefix is NewPrefix that panics on error; intended for tests and
// static tables.
func MustPrefix(addr uint32, length uint8) Prefix {
	p, err := NewPrefix(addr, length)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses dotted-quad CIDR notation, e.g. "131.179.0.0/16".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("parse prefix %q: missing /len", s)
	}
	addr, err := parseAddr(s[:slash])
	if err != nil {
		return Prefix{}, fmt.Errorf("parse prefix %q: %w", s, err)
	}
	length, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil {
		return Prefix{}, fmt.Errorf("parse prefix %q: %w", s, err)
	}
	p, err := NewPrefix(addr, uint8(length))
	if err != nil {
		return Prefix{}, fmt.Errorf("parse prefix %q: %w", s, err)
	}
	return p, nil
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return formatAddr(p.Addr) + "/" + strconv.Itoa(int(p.Len))
}

// Contains reports whether p covers the other prefix (p is equal to or
// less specific than q and their network bits agree).
func (p Prefix) Contains(q Prefix) bool {
	if q.Len < p.Len {
		return false
	}
	return q.Addr&maskFor(p.Len) == p.Addr
}

// Compare orders prefixes by address then by length, for deterministic
// iteration over routing tables.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.Addr < q.Addr:
		return -1
	case p.Addr > q.Addr:
		return 1
	case p.Len < q.Len:
		return -1
	case p.Len > q.Len:
		return 1
	default:
		return 0
	}
}

func maskFor(length uint8) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << (32 - length)
}

func parseAddr(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("address %q: need 4 octets", s)
	}
	var addr uint32
	for _, part := range parts {
		o, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("address %q: %w", s, err)
		}
		addr = addr<<8 | uint32(o)
	}
	return addr, nil
}

func formatAddr(addr uint32) string {
	var b strings.Builder
	b.Grow(15)
	for shift := 24; shift >= 0; shift -= 8 {
		if shift != 24 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(addr>>uint(shift)&0xff), 10))
	}
	return b.String()
}

// SegmentType distinguishes the two AS_PATH segment kinds of BGP-4.
type SegmentType uint8

// AS_PATH segment type codes (RFC 4271 §4.3).
const (
	SegSequence SegmentType = 2 // AS_SEQUENCE: ordered
	SegSet      SegmentType = 1 // AS_SET: unordered, from aggregation
)

// Segment is one AS_PATH segment. For SegSequence the order of ASNs is
// significant; for SegSet it is not (the paper notes that under route
// aggregation "an element in the AS path may include a set of ASes").
type Segment struct {
	Type SegmentType
	ASNs []ASN
}

// ASPath is a full AS path: a list of segments. The common case is a
// single AS_SEQUENCE segment.
type ASPath struct {
	Segments []Segment
}

// NewSeqPath builds the common single-sequence path. The slice is copied
// so callers may reuse their argument.
func NewSeqPath(asns ...ASN) ASPath {
	if len(asns) == 0 {
		return ASPath{}
	}
	cp := make([]ASN, len(asns))
	copy(cp, asns)
	return ASPath{Segments: []Segment{{Type: SegSequence, ASNs: cp}}}
}

// Clone deep-copies the path.
func (p ASPath) Clone() ASPath {
	if len(p.Segments) == 0 {
		return ASPath{}
	}
	segs := make([]Segment, len(p.Segments))
	for i, s := range p.Segments {
		asns := make([]ASN, len(s.ASNs))
		copy(asns, s.ASNs)
		segs[i] = Segment{Type: s.Type, ASNs: asns}
	}
	return ASPath{Segments: segs}
}

// Prepend returns a new path with asn prepended as the newest AS_SEQUENCE
// hop, following BGP propagation semantics. The receiver is not modified.
func (p ASPath) Prepend(asn ASN) ASPath {
	cp := p.Clone()
	if len(cp.Segments) > 0 && cp.Segments[0].Type == SegSequence {
		seg := &cp.Segments[0]
		seg.ASNs = append([]ASN{asn}, seg.ASNs...)
		return cp
	}
	cp.Segments = append([]Segment{{Type: SegSequence, ASNs: []ASN{asn}}}, cp.Segments...)
	return cp
}

// Origin returns the origin AS: the last AS in the path (paper §1.1). If
// the last segment is an AS_SET (aggregation), the smallest member is
// returned as the canonical representative along with ok=true; an empty
// path returns (ASNNone, false).
func (p ASPath) Origin() (ASN, bool) {
	if len(p.Segments) == 0 {
		return ASNNone, false
	}
	last := p.Segments[len(p.Segments)-1]
	if len(last.ASNs) == 0 {
		return ASNNone, false
	}
	if last.Type == SegSequence {
		return last.ASNs[len(last.ASNs)-1], true
	}
	min := last.ASNs[0]
	for _, a := range last.ASNs[1:] {
		if a < min {
			min = a
		}
	}
	return min, true
}

// First returns the neighbor-most AS (the first AS of the path), used by
// receivers to validate that the peer prepended itself.
func (p ASPath) First() (ASN, bool) {
	if len(p.Segments) == 0 || len(p.Segments[0].ASNs) == 0 {
		return ASNNone, false
	}
	return p.Segments[0].ASNs[0], true
}

// Hops returns the AS-path length as used by the BGP decision process:
// each AS in an AS_SEQUENCE counts 1; each AS_SET counts 1 regardless of
// size (RFC 4271 §9.1.2.2).
func (p ASPath) Hops() int {
	n := 0
	for _, s := range p.Segments {
		if s.Type == SegSet {
			n++
			continue
		}
		n += len(s.ASNs)
	}
	return n
}

// Contains reports whether asn appears anywhere in the path; used for
// loop detection on receipt.
func (p ASPath) Contains(asn ASN) bool {
	for _, s := range p.Segments {
		for _, a := range s.ASNs {
			if a == asn {
				return true
			}
		}
	}
	return false
}

// Equal reports full structural equality.
func (p ASPath) Equal(q ASPath) bool {
	if len(p.Segments) != len(q.Segments) {
		return false
	}
	for i := range p.Segments {
		a, b := p.Segments[i], q.Segments[i]
		if a.Type != b.Type || len(a.ASNs) != len(b.ASNs) {
			return false
		}
		for j := range a.ASNs {
			if a.ASNs[j] != b.ASNs[j] {
				return false
			}
		}
	}
	return true
}

// String renders the path in the conventional space-separated form with
// AS_SETs braced, e.g. "701 1239 {4006 4544}".
func (p ASPath) String() string {
	var b strings.Builder
	for i, s := range p.Segments {
		if i > 0 {
			b.WriteByte(' ')
		}
		if s.Type == SegSet {
			b.WriteByte('{')
		}
		for j, a := range s.ASNs {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(a.String())
		}
		if s.Type == SegSet {
			b.WriteByte('}')
		}
	}
	return b.String()
}

// ParseASPath parses the String format back into a path.
func ParseASPath(s string) (ASPath, error) {
	var (
		path  ASPath
		inSet bool
		cur   []ASN
	)
	flush := func(t SegmentType) {
		if len(cur) == 0 {
			return
		}
		path.Segments = append(path.Segments, Segment{Type: t, ASNs: cur})
		cur = nil
	}
	for _, tok := range strings.Fields(s) {
		for len(tok) > 0 && tok[0] == '{' {
			if inSet {
				return ASPath{}, fmt.Errorf("parse as-path %q: nested set", s)
			}
			flush(SegSequence)
			inSet = true
			tok = tok[1:]
		}
		closes := 0
		for len(tok) > 0 && tok[len(tok)-1] == '}' {
			closes++
			tok = tok[:len(tok)-1]
		}
		if tok != "" {
			asn, err := ParseASN(tok)
			if err != nil {
				return ASPath{}, fmt.Errorf("parse as-path %q: %w", s, err)
			}
			cur = append(cur, asn)
		}
		for ; closes > 0; closes-- {
			if !inSet {
				return ASPath{}, fmt.Errorf("parse as-path %q: unbalanced '}'", s)
			}
			flush(SegSet)
			inSet = false
		}
	}
	if inSet {
		return ASPath{}, fmt.Errorf("parse as-path %q: unterminated set", s)
	}
	flush(SegSequence)
	return path, nil
}

// Community is a BGP community value (RFC 1997): conventionally the high
// 16 bits carry an AS number and the low 16 bits an AS-defined value.
type Community uint32

// NewCommunity builds a community from its (ASN, value) halves. ASNs
// above the 2-octet range are substituted with ASTrans, as RFC 1997
// communities cannot carry 4-octet AS numbers.
func NewCommunity(asn ASN, value uint16) Community {
	if asn > Max2Octet {
		asn = ASTrans
	}
	return Community(uint32(asn)<<16 | uint32(value))
}

// ASN returns the high-order AS half.
func (c Community) ASN() ASN { return ASN(c >> 16) }

// Value returns the low-order AS-defined half.
func (c Community) Value() uint16 { return uint16(c & 0xffff) }

// String renders the conventional "ASN:value" form.
func (c Community) String() string {
	return c.ASN().String() + ":" + strconv.FormatUint(uint64(c.Value()), 10)
}

// ParseCommunity parses the "ASN:value" form.
func ParseCommunity(s string) (Community, error) {
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return 0, fmt.Errorf("parse community %q: missing ':'", s)
	}
	// Communities carry only 2-octet AS numbers, so the AS half is
	// parsed with a 16-bit bound rather than via ParseASN.
	asn, err := strconv.ParseUint(s[:colon], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("parse community %q: %w", s, err)
	}
	v, err := strconv.ParseUint(s[colon+1:], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("parse community %q: %w", s, err)
	}
	return NewCommunity(ASN(asn), uint16(v)), nil
}

// SortASNs sorts a slice of ASNs ascending, in place, and returns it.
func SortASNs(asns []ASN) []ASN {
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	return asns
}

// DedupASNs sorts and removes duplicates in place, returning the
// shortened slice.
func DedupASNs(asns []ASN) []ASN {
	if len(asns) < 2 {
		return asns
	}
	SortASNs(asns)
	out := asns[:1]
	for _, a := range asns[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return out
}
