// Package ptrie implements a binary radix trie over IPv4 prefixes with
// longest-prefix-match lookup — the forwarding-table structure behind
// simbgp's address-level census and dnsval's covering-record lookup.
// The trie stores one value of type V per prefix.
//
// Operations are O(32) regardless of table size. The zero Trie is not
// usable; call New. Trie is not safe for concurrent mutation; callers
// that share one across goroutines must synchronize (dnsval does).
package ptrie

import (
	"repro/internal/astypes"
)

// Trie is a binary radix trie keyed by IPv4 prefix.
type Trie[V any] struct {
	root *node[V]
	size int
}

type node[V any] struct {
	children [2]*node[V]
	value    V
	present  bool
}

// New returns an empty trie.
func New[V any]() *Trie[V] {
	return &Trie[V]{root: &node[V]{}}
}

// Len returns the number of stored prefixes.
func (t *Trie[V]) Len() int { return t.size }

func bitAt(addr uint32, depth uint8) int {
	return int(addr >> (31 - depth) & 1)
}

// Insert stores (or replaces) the value for prefix.
func (t *Trie[V]) Insert(prefix astypes.Prefix, value V) {
	n := t.root
	for depth := uint8(0); depth < prefix.Len; depth++ {
		b := bitAt(prefix.Addr, depth)
		if n.children[b] == nil {
			n.children[b] = &node[V]{}
		}
		n = n.children[b]
	}
	if !n.present {
		t.size++
	}
	n.value = value
	n.present = true
}

// Delete removes the value for prefix, reporting whether it existed.
// Emptied branches are pruned so long-lived tries do not accrete dead
// nodes.
func (t *Trie[V]) Delete(prefix astypes.Prefix) bool {
	// Record the path for pruning.
	path := make([]*node[V], 0, prefix.Len+1)
	n := t.root
	path = append(path, n)
	for depth := uint8(0); depth < prefix.Len; depth++ {
		b := bitAt(prefix.Addr, depth)
		if n.children[b] == nil {
			return false
		}
		n = n.children[b]
		path = append(path, n)
	}
	if !n.present {
		return false
	}
	var zero V
	n.value = zero
	n.present = false
	t.size--
	// Prune childless, valueless nodes bottom-up (never the root).
	for i := len(path) - 1; i > 0; i-- {
		cur := path[i]
		if cur.present || cur.children[0] != nil || cur.children[1] != nil {
			break
		}
		parent := path[i-1]
		b := bitAt(prefix.Addr, uint8(i-1))
		parent.children[b] = nil
	}
	return true
}

// Get returns the value stored for exactly this prefix.
func (t *Trie[V]) Get(prefix astypes.Prefix) (V, bool) {
	n := t.root
	for depth := uint8(0); depth < prefix.Len; depth++ {
		b := bitAt(prefix.Addr, depth)
		if n.children[b] == nil {
			var zero V
			return zero, false
		}
		n = n.children[b]
	}
	return n.value, n.present
}

// LongestMatch returns the most specific stored prefix covering addr.
func (t *Trie[V]) LongestMatch(addr uint32) (astypes.Prefix, V, bool) {
	var (
		bestPrefix astypes.Prefix
		bestValue  V
		found      bool
	)
	n := t.root
	for depth := uint8(0); ; depth++ {
		if n.present {
			bestPrefix = astypes.Prefix{Addr: maskAddr(addr, depth), Len: depth}
			bestValue = n.value
			found = true
		}
		if depth == 32 {
			break
		}
		b := bitAt(addr, depth)
		if n.children[b] == nil {
			break
		}
		n = n.children[b]
	}
	return bestPrefix, bestValue, found
}

// LongestMatchPrefix returns the most specific stored prefix covering
// the query prefix (the query itself qualifies if stored).
func (t *Trie[V]) LongestMatchPrefix(query astypes.Prefix) (astypes.Prefix, V, bool) {
	var (
		bestPrefix astypes.Prefix
		bestValue  V
		found      bool
	)
	n := t.root
	for depth := uint8(0); ; depth++ {
		if n.present {
			bestPrefix = astypes.Prefix{Addr: maskAddr(query.Addr, depth), Len: depth}
			bestValue = n.value
			found = true
		}
		if depth == query.Len {
			break
		}
		b := bitAt(query.Addr, depth)
		if n.children[b] == nil {
			break
		}
		n = n.children[b]
	}
	return bestPrefix, bestValue, found
}

// CoverIter returns a cursor over every stored prefix covering query
// (the query itself qualifies if stored), shortest first. The cursor is
// a value type and Next performs no allocation, so a lookup path under
// an allocation-free contract (rpki origin validation) can enumerate
// all covering entries — LongestMatchPrefix only yields the most
// specific one. The cursor is invalidated by trie mutation.
func (t *Trie[V]) CoverIter(query astypes.Prefix) CoverIter[V] {
	return CoverIter[V]{n: t.root, query: query}
}

// CoverIter cursors over the stored prefixes covering a query prefix.
type CoverIter[V any] struct {
	n     *node[V]
	query astypes.Prefix
	depth uint8
	done  bool
}

// Next returns the next covering (prefix, value), or ok == false when
// the walk is exhausted.
//
//repro:allocfree
func (it *CoverIter[V]) Next() (prefix astypes.Prefix, value V, ok bool) {
	for !it.done && it.n != nil {
		n, depth := it.n, it.depth
		// Advance first so a hit can return immediately.
		if depth == it.query.Len {
			it.done = true
		} else {
			it.n = n.children[bitAt(it.query.Addr, depth)]
			it.depth = depth + 1
		}
		if n.present {
			prefix = astypes.Prefix{Addr: maskAddr(it.query.Addr, depth), Len: depth}
			return prefix, n.value, true
		}
	}
	var zero V
	return astypes.Prefix{}, zero, false
}

// Walk visits every stored (prefix, value) in address order (then by
// ascending length); returning false from fn stops the walk.
func (t *Trie[V]) Walk(fn func(prefix astypes.Prefix, value V) bool) {
	t.walk(t.root, 0, 0, fn)
}

func (t *Trie[V]) walk(n *node[V], addr uint32, depth uint8, fn func(astypes.Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.present {
		if !fn(astypes.Prefix{Addr: addr, Len: depth}, n.value) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if !t.walk(n.children[0], addr, depth+1, fn) {
		return false
	}
	return t.walk(n.children[1], addr|1<<(31-depth), depth+1, fn)
}

func maskAddr(addr uint32, length uint8) uint32 {
	if length == 0 {
		return 0
	}
	return addr & (^uint32(0) << (32 - length))
}
