package ptrie

import (
	"math/rand"
	"testing"

	"repro/internal/astypes"
)

func p(s string) astypes.Prefix {
	prefix, err := astypes.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return prefix
}

func TestInsertGetDelete(t *testing.T) {
	tr := New[int]()
	tr.Insert(p("10.0.0.0/8"), 8)
	tr.Insert(p("10.1.0.0/16"), 16)
	tr.Insert(p("0.0.0.0/0"), 0)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, ok := tr.Get(p("10.0.0.0/8")); !ok || v != 8 {
		t.Errorf("Get /8 = %v, %v", v, ok)
	}
	if _, ok := tr.Get(p("10.0.0.0/9")); ok {
		t.Error("phantom /9")
	}
	// Replacement does not grow the trie.
	tr.Insert(p("10.0.0.0/8"), 88)
	if tr.Len() != 3 {
		t.Errorf("Len after replace = %d", tr.Len())
	}
	if v, _ := tr.Get(p("10.0.0.0/8")); v != 88 {
		t.Errorf("replaced value = %v", v)
	}
	if !tr.Delete(p("10.0.0.0/8")) {
		t.Error("Delete existing failed")
	}
	if tr.Delete(p("10.0.0.0/8")) {
		t.Error("double Delete succeeded")
	}
	if _, ok := tr.Get(p("10.0.0.0/8")); ok {
		t.Error("deleted prefix still present")
	}
	// The more-specific survives its parent's deletion.
	if v, ok := tr.Get(p("10.1.0.0/16")); !ok || v != 16 {
		t.Errorf("child after parent delete = %v, %v", v, ok)
	}
}

func TestLongestMatch(t *testing.T) {
	tr := New[string]()
	tr.Insert(p("0.0.0.0/0"), "default")
	tr.Insert(p("10.0.0.0/8"), "eight")
	tr.Insert(p("10.1.0.0/16"), "sixteen")
	tr.Insert(p("10.1.2.0/24"), "twentyfour")

	tests := []struct {
		addr string
		want string
	}{
		{"10.1.2.3", "twentyfour"},
		{"10.1.9.9", "sixteen"},
		{"10.9.9.9", "eight"},
		{"11.0.0.1", "default"},
	}
	for _, tt := range tests {
		addr := p(tt.addr + "/32").Addr
		prefix, got, ok := tr.LongestMatch(addr)
		if !ok || got != tt.want {
			t.Errorf("LongestMatch(%s) = %q (%v), want %q", tt.addr, got, ok, tt.want)
		}
		host := astypes.Prefix{Addr: addr, Len: 32}
		if !prefix.Contains(host) {
			t.Errorf("returned prefix %v does not cover %s", prefix, tt.addr)
		}
	}
	// No default: miss outside coverage.
	tr.Delete(p("0.0.0.0/0"))
	if _, _, ok := tr.LongestMatch(p("11.0.0.0/32").Addr); ok {
		t.Error("match without coverage")
	}
}

func TestLongestMatchPrefix(t *testing.T) {
	tr := New[string]()
	tr.Insert(p("10.0.0.0/8"), "eight")
	tr.Insert(p("10.1.0.0/16"), "sixteen")
	prefix, v, ok := tr.LongestMatchPrefix(p("10.1.2.0/24"))
	if !ok || v != "sixteen" || prefix != p("10.1.0.0/16") {
		t.Errorf("covering(/24) = %v %q %v", prefix, v, ok)
	}
	// The query itself counts.
	if _, v, _ := tr.LongestMatchPrefix(p("10.1.0.0/16")); v != "sixteen" {
		t.Errorf("exact covering = %q", v)
	}
	// A more specific stored prefix does not cover a shorter query.
	if _, v, _ := tr.LongestMatchPrefix(p("10.0.0.0/12")); v != "eight" {
		t.Errorf("covering(/12) = %q", v)
	}
}

func TestWalkOrderAndStop(t *testing.T) {
	tr := New[int]()
	prefixes := []string{"10.1.0.0/16", "0.0.0.0/0", "10.0.0.0/8", "192.168.0.0/16"}
	for i, s := range prefixes {
		tr.Insert(p(s), i)
	}
	var seen []astypes.Prefix
	tr.Walk(func(prefix astypes.Prefix, _ int) bool {
		seen = append(seen, prefix)
		return true
	})
	if len(seen) != 4 {
		t.Fatalf("walked %d", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Compare(seen[i-1]) <= 0 {
			t.Fatalf("walk out of order: %v", seen)
		}
	}
	count := 0
	tr.Walk(func(astypes.Prefix, int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestHostRoutesAndExtremes(t *testing.T) {
	tr := New[int]()
	tr.Insert(p("255.255.255.255/32"), 1)
	tr.Insert(p("0.0.0.0/32"), 2)
	if _, v, ok := tr.LongestMatch(0xffffffff); !ok || v != 1 {
		t.Errorf("host route hi = %v %v", v, ok)
	}
	if _, v, ok := tr.LongestMatch(0); !ok || v != 2 {
		t.Errorf("host route lo = %v %v", v, ok)
	}
	if _, _, ok := tr.LongestMatch(0x80000000); ok {
		t.Error("uncovered address matched")
	}
}

// TestAgainstLinearScan cross-checks the trie against a brute-force
// model over random workloads.
func TestAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr := New[uint32]()
	model := make(map[astypes.Prefix]uint32)
	randPrefix := func() astypes.Prefix {
		length := uint8(rng.Intn(25) + 8)
		addr := rng.Uint32() & (^uint32(0) << (32 - length))
		return astypes.Prefix{Addr: addr, Len: length}
	}
	for step := 0; step < 5000; step++ {
		switch rng.Intn(5) {
		case 0, 1, 2: // insert
			prefix := randPrefix()
			v := rng.Uint32()
			tr.Insert(prefix, v)
			model[prefix] = v
		case 3: // delete something that exists (when possible)
			for prefix := range model {
				if !tr.Delete(prefix) {
					t.Fatalf("step %d: delete of stored prefix failed", step)
				}
				delete(model, prefix)
				break
			}
		case 4: // lookup
			addr := rng.Uint32()
			var (
				wantPrefix astypes.Prefix
				wantVal    uint32
				found      bool
			)
			host := astypes.Prefix{Addr: addr, Len: 32}
			for prefix, v := range model {
				if prefix.Contains(host) && (!found || prefix.Len > wantPrefix.Len) {
					wantPrefix, wantVal, found = prefix, v, true
				}
			}
			gotPrefix, gotVal, ok := tr.LongestMatch(addr)
			if ok != found || (found && (gotPrefix != wantPrefix || gotVal != wantVal)) {
				t.Fatalf("step %d: LongestMatch(%08x) = %v/%v/%v, want %v/%v/%v",
					step, addr, gotPrefix, gotVal, ok, wantPrefix, wantVal, found)
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("step %d: Len %d != model %d", step, tr.Len(), len(model))
		}
	}
}

func TestCoverIter(t *testing.T) {
	tr := New[int]()
	tr.Insert(p("0.0.0.0/0"), 0)
	tr.Insert(p("10.0.0.0/8"), 8)
	tr.Insert(p("10.1.0.0/16"), 16)
	tr.Insert(p("10.1.2.0/24"), 24)
	tr.Insert(p("10.2.0.0/16"), 99) // sibling branch, never covering

	collect := func(q astypes.Prefix) (prefixes []astypes.Prefix, values []int) {
		it := tr.CoverIter(q)
		for {
			prefix, v, ok := it.Next()
			if !ok {
				return
			}
			prefixes = append(prefixes, prefix)
			values = append(values, v)
		}
	}

	// All covering prefixes, shortest first; the query itself included.
	prefixes, values := collect(p("10.1.2.0/24"))
	want := []astypes.Prefix{p("0.0.0.0/0"), p("10.0.0.0/8"), p("10.1.0.0/16"), p("10.1.2.0/24")}
	if len(prefixes) != len(want) {
		t.Fatalf("covering prefixes = %v, want %v", prefixes, want)
	}
	for i := range want {
		if prefixes[i] != want[i] || values[i] != int(want[i].Len) {
			t.Errorf("cover[%d] = %v/%d, want %v/%d", i, prefixes[i], values[i], want[i], want[i].Len)
		}
	}

	// A more specific query than anything stored still sees its covers;
	// stored more-specifics of the query are not covers.
	if prefixes, _ = collect(p("10.1.3.0/28")); len(prefixes) != 3 {
		t.Errorf("10.1.3.0/28 covers = %v, want /0 /8 /16", prefixes)
	}
	if prefixes, _ = collect(p("10.1.0.0/16")); len(prefixes) != 3 {
		t.Errorf("10.1.0.0/16 covers = %v, want /0 /8 /16", prefixes)
	}
	if prefixes, _ = collect(p("192.168.0.0/16")); len(prefixes) != 1 || prefixes[0] != p("0.0.0.0/0") {
		t.Errorf("192.168.0.0/16 covers = %v, want just /0", prefixes)
	}

	// Without a default route, an uncovered query yields nothing.
	tr.Delete(p("0.0.0.0/0"))
	if prefixes, _ = collect(p("192.168.0.0/16")); prefixes != nil {
		t.Errorf("uncovered query yielded %v", prefixes)
	}
}

func TestCoverIterAgainstWalk(t *testing.T) {
	// Property check: CoverIter must agree with a brute-force Walk
	// filter on random tries and queries.
	rng := rand.New(rand.NewSource(7))
	tr := New[int]()
	var stored []astypes.Prefix
	for i := 0; i < 500; i++ {
		length := uint8(rng.Intn(25))
		addr := rng.Uint32() & (^uint32(0) << (32 - length))
		if length == 0 {
			addr = 0
		}
		prefix := astypes.Prefix{Addr: addr, Len: length}
		tr.Insert(prefix, i)
		stored = append(stored, prefix)
	}
	for q := 0; q < 200; q++ {
		var query astypes.Prefix
		if q%2 == 0 && len(stored) > 0 {
			query = stored[rng.Intn(len(stored))] // exact hits included
		} else {
			length := uint8(rng.Intn(33))
			query = astypes.Prefix{Addr: maskAddr(rng.Uint32(), length), Len: length}
		}
		var want []astypes.Prefix
		tr.Walk(func(prefix astypes.Prefix, _ int) bool {
			if prefix.Len <= query.Len && maskAddr(query.Addr, prefix.Len) == prefix.Addr {
				want = append(want, prefix)
			}
			return true
		})
		var got []astypes.Prefix
		it := tr.CoverIter(query)
		for {
			prefix, _, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, prefix)
		}
		if len(got) != len(want) {
			t.Fatalf("query %v: got %v, want %v", query, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %v: got %v, want %v", query, got, want)
			}
		}
	}
}

func TestCoverIterAllocFree(t *testing.T) {
	tr := New[int]()
	tr.Insert(p("10.0.0.0/8"), 1)
	tr.Insert(p("10.1.0.0/16"), 2)
	query := p("10.1.2.0/24")
	allocs := testing.AllocsPerRun(100, func() {
		it := tr.CoverIter(query)
		for {
			if _, _, ok := it.Next(); !ok {
				return
			}
		}
	})
	if allocs != 0 {
		t.Errorf("CoverIter walk allocates %v per run, want 0", allocs)
	}
}

func BenchmarkLongestMatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New[int]()
	for i := 0; i < 10000; i++ {
		length := uint8(rng.Intn(17) + 8)
		addr := rng.Uint32() & (^uint32(0) << (32 - length))
		tr.Insert(astypes.Prefix{Addr: addr, Len: length}, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.LongestMatch(uint32(i) * 2654435761)
	}
}
