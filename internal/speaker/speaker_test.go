package speaker

import (
	"net"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
)

// connectPair wires two speakers over an in-process TCP connection.
func connectPair(t *testing.T, a, b *Speaker) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	a.Listen(ln)
	if err := b.Connect(ln.Addr().String(), a.AS()); err != nil {
		t.Fatalf("connect AS%s->AS%s: %v", b.AS(), a.AS(), err)
	}
	waitFor(t, func() bool {
		return hasPeer(a, b.AS()) && hasPeer(b, a.AS())
	}, "peering AS%s<->AS%s", a.AS(), b.AS())
}

func hasPeer(s *Speaker, asn astypes.ASN) bool {
	for _, p := range s.Peers() {
		if p == asn {
			return true
		}
	}
	return false
}

func waitFor(t *testing.T, cond func() bool, format string, args ...any) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for: "+format, args...)
}

func newSpeaker(t *testing.T, asn astypes.ASN, mode ValidationMode, res Resolver) *Speaker {
	t.Helper()
	s, err := New(Config{
		AS:         asn,
		RouterID:   uint32(asn),
		Validation: mode,
		Resolver:   res,
	})
	if err != nil {
		t.Fatalf("new speaker AS%s: %v", asn, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestLiveMeshPropagationAndHijackDetection(t *testing.T) {
	prefix := astypes.MustPrefix(0x0a000000, 8) // 10.0.0.0/8
	valid := core.NewList(1)
	resolver := ResolverFunc(func(p astypes.Prefix) (core.List, bool) {
		if p == prefix {
			return valid, true
		}
		return core.List{}, false
	})

	// AS1 -- AS2 -- AS3 -- AS4(attacker)
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationDrop, resolver)
	s3 := newSpeaker(t, 3, ValidationDrop, resolver)
	s4 := newSpeaker(t, 4, ValidationOff, nil)
	connectPair(t, s1, s2)
	connectPair(t, s2, s3)
	connectPair(t, s3, s4)

	s1.Originate(prefix, core.List{})
	waitFor(t, func() bool {
		r := s4.Table().Best(prefix)
		return r != nil && r.OriginAS() == 1
	}, "valid route at AS4")

	// AS4 hijacks the prefix. AS3 must detect and refuse it; AS2 and
	// AS1's best routes stay on the valid origin.
	s4.Originate(prefix, core.List{})
	waitFor(t, func() bool { return len(s3.Alarms()) > 0 }, "alarm at AS3")

	time.Sleep(50 * time.Millisecond) // allow any (wrong) propagation
	for _, s := range []*Speaker{s1, s2, s3} {
		r := s.Table().Best(prefix)
		if r == nil || r.OriginAS() != 1 {
			t.Errorf("AS%s best route = %+v, want origin AS1", s.AS(), r)
		}
	}
}

// ResolverFunc adapts a function to Resolver.
type ResolverFunc func(astypes.Prefix) (core.List, bool)

// ValidOrigins implements Resolver.
func (f ResolverFunc) ValidOrigins(p astypes.Prefix) (core.List, bool) { return f(p) }
