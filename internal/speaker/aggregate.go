package speaker

import (
	"fmt"

	"repro/internal/astypes"
	"repro/internal/rib"
	"repro/internal/wire"
)

// Route aggregation (RFC 4271 §9.2.2.2), the practice behind the
// paper's footnote 1: "In the case of route aggregation, an element in
// the AS path may include a set of ASes." A configured aggregate is
// originated whenever at least one more-specific contributor is present
// in the Loc-RIB; its AS path is [self] followed by an AS_SET holding
// the union of the contributors' path ASes, and it carries the
// AGGREGATOR attribute (and ATOMIC_AGGREGATE when detail was lost).
//
// MOAS-list interaction: the aggregate is a route *originated by this
// AS*, so it carries no explicit MOAS list (receivers apply the
// implicit rule, entitling exactly this AS). The contributors'
// MOAS lists stay on the more-specific announcements, which continue to
// propagate unless the aggregate is configured summary-only.

type aggregateState struct {
	prefix      astypes.Prefix
	summaryOnly bool
	active      bool
}

// ConfigureAggregate installs an aggregate for prefix. With summaryOnly
// the contributors inside the aggregate are suppressed from
// advertisement (only the summary leaves this AS). Reconfiguration of
// the same prefix updates the flag.
func (s *Speaker) ConfigureAggregate(prefix astypes.Prefix, summaryOnly bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, agg := range s.aggregates {
		if agg.prefix == prefix {
			agg.summaryOnly = summaryOnly
			s.refreshAggregateLocked(agg)
			return nil
		}
	}
	agg := &aggregateState{prefix: prefix, summaryOnly: summaryOnly}
	s.aggregates = append(s.aggregates, agg)
	s.refreshAggregateLocked(agg)
	return nil
}

// RemoveAggregate deletes the aggregate configuration (and withdraws
// the aggregate route if it was active).
func (s *Speaker) RemoveAggregate(prefix astypes.Prefix) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, agg := range s.aggregates {
		if agg.prefix != prefix {
			continue
		}
		s.aggregates = append(s.aggregates[:i], s.aggregates[i+1:]...)
		if agg.active {
			ch := s.table.WithdrawLocal(prefix)
			s.propagateLocked(ch, 0)
		}
		return nil
	}
	return fmt.Errorf("speaker AS %s: no aggregate %s", s.cfg.AS, prefix)
}

// refreshAggregatesLocked re-evaluates every aggregate that covers the
// changed prefix.
func (s *Speaker) refreshAggregatesLocked(changed astypes.Prefix) {
	for _, agg := range s.aggregates {
		if agg.prefix.Contains(changed) && agg.prefix != changed {
			s.refreshAggregateLocked(agg)
		}
	}
}

// refreshAggregateLocked recomputes one aggregate from the Loc-RIB.
func (s *Speaker) refreshAggregateLocked(agg *aggregateState) {
	var (
		contributors int
		setMembers   []astypes.ASN
		lostDetail   bool
	)
	for _, r := range s.table.BestRoutes() {
		if r.Prefix == agg.prefix || !agg.prefix.Contains(r.Prefix) {
			continue
		}
		contributors++
		for _, seg := range r.Path.Segments {
			if seg.Type == astypes.SegSet {
				lostDetail = true
			}
			for _, asn := range seg.ASNs {
				if asn != s.cfg.AS {
					setMembers = append(setMembers, asn)
				}
			}
		}
	}
	if contributors == 0 {
		if agg.active {
			agg.active = false
			ch := s.table.WithdrawLocal(agg.prefix)
			s.propagateLocked(ch, 0)
		}
		return
	}
	setMembers = astypes.DedupASNs(setMembers)
	path := astypes.NewSeqPath(s.cfg.AS)
	if len(setMembers) > 0 {
		lostDetail = true
		path.Segments = append(path.Segments, astypes.Segment{
			Type: astypes.SegSet,
			ASNs: setMembers,
		})
	}
	route := &rib.Route{
		Prefix:          agg.prefix,
		Path:            path,
		Origin:          wire.OriginIncomplete,
		NextHop:         s.cfg.NextHop,
		LocalPref:       rib.DefaultLocalPref,
		FromPeer:        astypes.ASNNone,
		AtomicAggregate: lostDetail,
		AggregatorAS:    s.cfg.AS,
		AggregatorID:    s.cfg.RouterID,
	}
	agg.active = true
	// route (path, set members) was built fresh above, so ownership
	// transfers to the table without a clone.
	ch := s.table.OriginateOwned(route)
	s.propagateLocked(ch, 0)
}

// suppressedLocked reports whether prefix must not be advertised
// because a summary-only aggregate covers it.
func (s *Speaker) suppressedLocked(prefix astypes.Prefix) bool {
	for _, agg := range s.aggregates {
		if agg.summaryOnly && agg.active && agg.prefix != prefix && agg.prefix.Contains(prefix) {
			return true
		}
	}
	return false
}

// AggregateInfo describes one configured aggregate and whether it is
// currently originated.
type AggregateInfo struct {
	Prefix      astypes.Prefix
	SummaryOnly bool
	Active      bool
}

// Aggregates returns the configured aggregates in configuration order.
func (s *Speaker) Aggregates() []AggregateInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]AggregateInfo, len(s.aggregates))
	for i, agg := range s.aggregates {
		out[i] = AggregateInfo{Prefix: agg.prefix, SummaryOnly: agg.summaryOnly, Active: agg.active}
	}
	return out
}
