package speaker

import (
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/wire"
)

// TestAttributeEncodedListTransitsUnmodifiedSpeakers: the dedicated
// MOAS-list attribute must cross a plain (non-validating, unmodified)
// transit speaker verbatim and still be checkable downstream.
func TestAttributeEncodedListTransitsUnmodifiedSpeakers(t *testing.T) {
	prefix := astypes.MustPrefix(0x0a000000, 8)
	list := core.NewList(1, 7)

	s1, err := New(Config{AS: 1, RouterID: 1, ListEncoding: EncodeAttribute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s1.Close() })
	s2 := newSpeaker(t, 2, ValidationOff, nil) // plain transit
	s3 := newSpeaker(t, 3, ValidationAlarm, nil)
	connectPair(t, s1, s2)
	connectPair(t, s2, s3)

	s1.Originate(prefix, list)
	waitFor(t, func() bool { return s3.Table().Best(prefix) != nil }, "route at AS3")

	best := s3.Table().Best(prefix)
	raw := wire.FindUnknownAttr(best.Unknown, core.ListAttrCode)
	if raw == nil {
		t.Fatal("MOAS-list attribute lost in transit")
	}
	got, err := core.ListFromAttrBytes(raw)
	if err != nil || !got.Equal(list) {
		t.Errorf("attribute list at AS3 = %v (%v)", got, err)
	}
	// No communities were used.
	if _, has := core.FromCommunities(best.Communities); has {
		t.Error("community encoding present despite attribute mode")
	}
}

// TestAttributeEncodedHijackDetected: a hijack against an
// attribute-encoded valid list raises an alarm and is dropped.
func TestAttributeEncodedHijackDetected(t *testing.T) {
	prefix := astypes.MustPrefix(0x0a000000, 8)
	valid := core.NewList(1)
	resolver := ResolverFunc(func(p astypes.Prefix) (core.List, bool) {
		return valid, p == prefix
	})

	s1, err := New(Config{AS: 1, RouterID: 1, ListEncoding: EncodeAttribute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s1.Close() })
	s2 := newSpeaker(t, 2, ValidationDrop, resolver)
	s4 := newSpeaker(t, 4, ValidationOff, nil)
	connectPair(t, s1, s2)
	connectPair(t, s2, s4)

	s1.Originate(prefix, valid)
	waitFor(t, func() bool { return s4.Table().Best(prefix) != nil }, "valid route at AS4")

	s4.Originate(prefix, core.List{})
	waitFor(t, func() bool { return len(s2.Alarms()) > 0 }, "alarm at AS2")
	time.Sleep(30 * time.Millisecond)
	if best := s2.Table().Best(prefix); best == nil || best.OriginAS() != 1 {
		t.Errorf("AS2 best = %+v", best)
	}
}

func TestListAttrBytesRoundTrip(t *testing.T) {
	tests := []core.List{
		core.NewList(1),
		core.NewList(1, 2),
		core.NewList(65535, 1, 700),
	}
	for _, give := range tests {
		got, err := core.ListFromAttrBytes(give.AttrBytes())
		if err != nil || !got.Equal(give) {
			t.Errorf("roundtrip %v = %v (%v)", give, got, err)
		}
	}
	if (core.List{}).AttrBytes() != nil {
		t.Error("empty list should encode to nil")
	}
	for _, bad := range [][]byte{{}, {1}, {1, 2, 3}} {
		if _, err := core.ListFromAttrBytes(bad); err == nil {
			t.Errorf("ListFromAttrBytes(%v) should fail", bad)
		}
	}
}
