package speaker

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/astypes"
)

// TestListenCloseRace hammers the Listen/Close window: the accept
// goroutine's wg.Add must not race Close's wg.Wait. Run under -race.
func TestListenCloseRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		s, err := New(Config{AS: 1, RouterID: 1})
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			s.Listen(ln)
		}()
		go func() {
			defer wg.Done()
			s.Close()
		}()
		wg.Wait()
		s.Close()
		ln.Close()
	}
}

// TestCloseWaitsForOnPeerDown pins the OnPeerDown contract: the callback
// runs on a tracked goroutine, and Close does not return before it does.
func TestCloseWaitsForOnPeerDown(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var finished atomic.Bool
	a, err := New(Config{AS: 1, RouterID: 1, OnPeerDown: func(astypes.ASN) {
		close(started)
		<-release
		finished.Store(true)
	}})
	if err != nil {
		t.Fatalf("new a: %v", err)
	}
	b, err := New(Config{AS: 2, RouterID: 2})
	if err != nil {
		t.Fatalf("new b: %v", err)
	}
	defer b.Close()
	connectPair(t, a, b)

	b.Close() // takes the session down on a's side
	<-started

	closed := make(chan struct{})
	go func() {
		a.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while OnPeerDown was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after OnPeerDown finished")
	}
	if !finished.Load() {
		t.Fatal("Close returned before OnPeerDown finished")
	}
}
