package speaker

import (
	"repro/internal/session"
	"repro/internal/telemetry"
)

// metrics is the speaker's instrumentation, registered on the speaker's
// telemetry registry. The former private MIB counter struct now lives
// here: the §4.2 MIB snapshot and the /metrics exposition read the same
// instruments, so the two management views cannot disagree.
type metrics struct {
	updatesIn      *telemetry.Counter
	updatesOut     *telemetry.Counter
	withdrawalsIn  *telemetry.Counter
	routesAccepted *telemetry.Counter
	routesRejected *telemetry.Counter
	loopsDropped   *telemetry.Counter
	alarms         *telemetry.Counter
	alarmClasses   *telemetry.CounterVec
	suppressed     *telemetry.Counter
	peers          *telemetry.Gauge

	// session is shared by every peer session of this speaker.
	session *session.Metrics
}

func newMetrics(r *telemetry.Registry) *metrics {
	return &metrics{
		updatesIn: r.Counter("speaker_updates_in_total",
			"UPDATE messages received from peers."),
		updatesOut: r.Counter("speaker_updates_out_total",
			"UPDATE messages enqueued to peers (announcements and withdrawals)."),
		withdrawalsIn: r.Counter("speaker_withdrawals_in_total",
			"Withdrawn prefixes received."),
		routesAccepted: r.Counter("speaker_routes_accepted_total",
			"Announced prefixes that passed import policy and MOAS validation."),
		routesRejected: r.Counter("speaker_routes_rejected_total",
			"Announced prefixes rejected by import policy or MOAS validation."),
		loopsDropped: r.Counter("speaker_loops_dropped_total",
			"Announced prefixes dropped by AS-path loop detection."),
		alarms: r.Counter("speaker_moas_alarms_total",
			"MOAS-list conflicts detected (the paper's alarms)."),
		alarmClasses: r.CounterVec("speaker_moas_alarm_class_total",
			"MOAS alarms by RPKI/ROV cross-validated class.", "class"),
		suppressed: r.Counter("speaker_routes_suppressed_total",
			"Best-route changes not propagated because a summary-only aggregate suppresses the prefix."),
		peers: r.Gauge("speaker_peers",
			"Established peer sessions."),
		session: session.NewMetrics(r),
	}
}

// snapshot assembles the cumulative MIB counter view from the registry
// instruments. Reads are individually atomic; the struct is not a
// cross-counter consistent cut (neither were the old atomics).
func (m *metrics) snapshot() Counters {
	return Counters{
		UpdatesIn:      m.updatesIn.Value(),
		UpdatesOut:     m.updatesOut.Value(),
		WithdrawalsIn:  m.withdrawalsIn.Value(),
		RoutesAccepted: m.routesAccepted.Value(),
		RoutesRejected: m.routesRejected.Value(),
		LoopsDropped:   m.loopsDropped.Value(),
		Alarms:         m.alarms.Value(),
	}
}
