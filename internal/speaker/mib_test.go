package speaker

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
)

func TestMIBSnapshot(t *testing.T) {
	prefix := astypes.MustPrefix(0x0a000000, 8)
	valid := core.NewList(1)
	resolver := ResolverFunc(func(p astypes.Prefix) (core.List, bool) {
		return valid, p == prefix
	})
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationDrop, resolver)
	s3 := newSpeaker(t, 3, ValidationOff, nil)
	connectPair(t, s1, s2)
	connectPair(t, s2, s3)

	s1.Originate(prefix, core.List{})
	waitFor(t, func() bool { return s3.Table().Best(prefix) != nil }, "convergence")
	s3.Originate(prefix, core.List{}) // hijack
	waitFor(t, func() bool { return len(s2.Alarms()) > 0 }, "alarm")
	time.Sleep(30 * time.Millisecond)

	m := s2.MIB()
	if m.AS != 2 || m.Mode != "drop" {
		t.Errorf("MIB identity: %+v", m)
	}
	if len(m.Peers) != 2 {
		t.Fatalf("peers = %+v", m.Peers)
	}
	for _, p := range m.Peers {
		if p.State != "Established" {
			t.Errorf("peer %v state %q", p.AS, p.State)
		}
	}
	if m.Counters.UpdatesIn == 0 || m.Counters.UpdatesOut == 0 {
		t.Errorf("counters = %+v", m.Counters)
	}
	if m.Counters.RoutesRejected == 0 {
		t.Error("the hijacked route should have been rejected")
	}
	if m.Counters.Alarms == 0 || len(m.Alarms) == 0 {
		t.Error("alarms missing from MIB")
	}
	if len(m.Routes) != 1 {
		t.Fatalf("routes = %+v", m.Routes)
	}
	r := m.Routes[0]
	if r.Prefix != "10.0.0.0/8" || r.OriginAS != "1" || !r.Implicit {
		t.Errorf("route entry = %+v", r)
	}
	if len(r.MOASList) != 1 || r.MOASList[0] != "1" {
		t.Errorf("implicit MOAS list = %v", r.MOASList)
	}
}

func TestMIBExplicitList(t *testing.T) {
	prefix := astypes.MustPrefix(0x0a000000, 8)
	list := core.NewList(1, 7)
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationOff, nil)
	connectPair(t, s1, s2)
	s1.Originate(prefix, list)
	waitFor(t, func() bool { return s2.Table().Best(prefix) != nil }, "route")
	m := s2.MIB()
	if len(m.Routes) != 1 || m.Routes[0].Implicit {
		t.Fatalf("routes = %+v", m.Routes)
	}
	if got := m.Routes[0].MOASList; len(got) != 2 || got[0] != "1" || got[1] != "7" {
		t.Errorf("MOAS list = %v", got)
	}
}

func TestMIBServeHTTP(t *testing.T) {
	prefix := astypes.MustPrefix(0x0a000000, 8)
	s1 := newSpeaker(t, 1, ValidationAlarm, nil)
	s1.Originate(prefix, core.NewList(1))

	rec := httptest.NewRecorder()
	s1.ServeHTTP(rec, httptest.NewRequest("GET", "/mib", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var m MIB
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if m.AS != 1 || m.Mode != "alarm" || len(m.Routes) != 1 {
		t.Errorf("decoded MIB = %+v", m)
	}
}
