package speaker

import (
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
)

func TestRouteRefreshReadvertises(t *testing.T) {
	prefix := astypes.MustPrefix(0x0a000000, 8)
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationOff, nil)
	connectPair(t, s1, s2)

	s1.Originate(prefix, core.List{})
	waitFor(t, func() bool { return s2.Table().Best(prefix) != nil }, "initial route")

	// Simulate operator intervention: s2 flushes its view of the peer,
	// then requests a refresh instead of bouncing the session.
	s2.Table().DropPeer(1)
	if s2.Table().Best(prefix) != nil {
		t.Fatal("flush failed")
	}
	if err := s2.RequestRefresh(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s2.Table().Best(prefix) != nil }, "route after refresh")

	if err := s2.RequestRefresh(99); err == nil {
		t.Error("refresh to unknown peer accepted")
	}
}

func TestImportDenyFilter(t *testing.T) {
	bogon := astypes.MustPrefix(0x0a000000, 8)     // 10.0.0.0/8
	bogonSub := astypes.MustPrefix(0x0a010000, 16) // inside the bogon
	legit := astypes.MustPrefix(0x83b30000, 16)

	s1 := newSpeaker(t, 1, ValidationOff, nil)
	filtering, err := New(Config{
		AS:         2,
		RouterID:   2,
		ImportDeny: []astypes.Prefix{bogon},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { filtering.Close() })
	connectPair(t, s1, filtering)

	s1.Originate(bogon, core.List{})
	s1.Originate(bogonSub, core.List{})
	s1.Originate(legit, core.List{})
	waitFor(t, func() bool { return filtering.Table().Best(legit) != nil }, "legit route")
	time.Sleep(30 * time.Millisecond)
	if filtering.Table().Best(bogon) != nil {
		t.Error("denied prefix installed")
	}
	if filtering.Table().Best(bogonSub) != nil {
		t.Error("more-specific of denied prefix installed")
	}
	if got := filtering.MIB().Counters.RoutesRejected; got < 2 {
		t.Errorf("RoutesRejected = %d, want >= 2", got)
	}
}

func TestAdvertisedTo(t *testing.T) {
	p1 := astypes.MustPrefix(0x0a000000, 8)
	p2 := astypes.MustPrefix(0x14000000, 8)
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationOff, nil)
	connectPair(t, s1, s2)

	s1.Originate(p1, core.List{})
	s1.Originate(p2, core.List{})
	waitFor(t, func() bool { return len(s1.AdvertisedTo(2)) == 2 }, "adj-rib-out populated")
	got := s1.AdvertisedTo(2)
	if got[0] != p1 || got[1] != p2 {
		t.Errorf("AdvertisedTo = %v", got)
	}
	s1.WithdrawLocal(p1)
	waitFor(t, func() bool { return len(s1.AdvertisedTo(2)) == 1 }, "withdrawal reflected")
	if s1.AdvertisedTo(99) != nil {
		t.Error("unknown peer should be nil")
	}
}
