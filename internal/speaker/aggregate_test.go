package speaker

import (
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
)

var (
	aggPrefix = astypes.MustPrefix(0x0a000000, 8)  // 10.0.0.0/8
	more1     = astypes.MustPrefix(0x0a010000, 16) // 10.1.0.0/16
	more2     = astypes.MustPrefix(0x0a020000, 16) // 10.2.0.0/16
	outside   = astypes.MustPrefix(0x14000000, 8)  // 20.0.0.0/8
)

func TestAggregateOriginatedFromContributors(t *testing.T) {
	s1 := newSpeaker(t, 1, ValidationOff, nil) // contributor origin
	s2 := newSpeaker(t, 2, ValidationOff, nil) // aggregator
	s3 := newSpeaker(t, 3, ValidationOff, nil) // downstream observer
	connectPair(t, s1, s2)
	connectPair(t, s2, s3)

	if err := s2.ConfigureAggregate(aggPrefix, false); err != nil {
		t.Fatal(err)
	}
	// No contributors yet: aggregate inactive.
	if info := s2.Aggregates(); len(info) != 1 || info[0].Active {
		t.Fatalf("aggregate state = %+v", info)
	}

	s1.Originate(more1, core.List{})
	waitFor(t, func() bool { return s3.Table().Best(aggPrefix) != nil }, "aggregate at AS3")

	agg := s3.Table().Best(aggPrefix)
	if got := agg.OriginAS(); got != 2 && got != 1 {
		t.Errorf("aggregate origin = %v", got)
	}
	// Path must contain an AS_SET holding the contributor's ASes
	// (footnote 1's aggregated path element).
	foundSet := false
	for _, seg := range agg.Path.Segments {
		if seg.Type == astypes.SegSet {
			foundSet = true
			if len(seg.ASNs) != 1 || seg.ASNs[0] != 1 {
				t.Errorf("AS_SET members = %v", seg.ASNs)
			}
		}
	}
	if !foundSet {
		t.Errorf("aggregate path %v lacks an AS_SET", agg.Path)
	}
	if !agg.AtomicAggregate {
		t.Error("ATOMIC_AGGREGATE not set on a detail-losing aggregate")
	}
	if agg.AggregatorAS != 2 {
		t.Errorf("AGGREGATOR AS = %v", agg.AggregatorAS)
	}
	// The more-specific still propagates (not summary-only).
	if s3.Table().Best(more1) == nil {
		t.Error("more-specific suppressed without summary-only")
	}
}

func TestAggregateWithdrawnWhenContributorsVanish(t *testing.T) {
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationOff, nil)
	connectPair(t, s1, s2)
	if err := s2.ConfigureAggregate(aggPrefix, false); err != nil {
		t.Fatal(err)
	}
	s1.Originate(more1, core.List{})
	waitFor(t, func() bool { return s2.Table().Best(aggPrefix) != nil }, "aggregate active")

	s1.WithdrawLocal(more1)
	waitFor(t, func() bool { return s2.Table().Best(aggPrefix) == nil }, "aggregate withdrawn")
	if info := s2.Aggregates(); info[0].Active {
		t.Error("aggregate still marked active")
	}
}

func TestSummaryOnlySuppressesMoreSpecifics(t *testing.T) {
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationOff, nil)
	s3 := newSpeaker(t, 3, ValidationOff, nil)
	connectPair(t, s1, s2)
	connectPair(t, s2, s3)

	if err := s2.ConfigureAggregate(aggPrefix, true); err != nil {
		t.Fatal(err)
	}
	s1.Originate(more1, core.List{})
	s1.Originate(more2, core.List{})
	s1.Originate(outside, core.List{})
	waitFor(t, func() bool { return s3.Table().Best(aggPrefix) != nil }, "summary at AS3")
	waitFor(t, func() bool { return s3.Table().Best(outside) != nil }, "outside prefix at AS3")
	time.Sleep(50 * time.Millisecond)
	if s3.Table().Best(more1) != nil || s3.Table().Best(more2) != nil {
		t.Error("summary-only aggregate leaked more-specifics")
	}
	// The aggregator itself still holds the more-specifics.
	if s2.Table().Best(more1) == nil {
		t.Error("aggregator lost the contributor route")
	}
}

func TestRemoveAggregate(t *testing.T) {
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationOff, nil)
	connectPair(t, s1, s2)
	if err := s2.ConfigureAggregate(aggPrefix, false); err != nil {
		t.Fatal(err)
	}
	s1.Originate(more1, core.List{})
	waitFor(t, func() bool { return s2.Table().Best(aggPrefix) != nil }, "aggregate active")
	if err := s2.RemoveAggregate(aggPrefix); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s2.Table().Best(aggPrefix) == nil }, "aggregate removed")
	if err := s2.RemoveAggregate(aggPrefix); err == nil {
		t.Error("double remove accepted")
	}
}

func TestAggregateReconfigureFlag(t *testing.T) {
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationOff, nil)
	s3 := newSpeaker(t, 3, ValidationOff, nil)
	connectPair(t, s1, s2)
	connectPair(t, s2, s3)
	if err := s2.ConfigureAggregate(aggPrefix, false); err != nil {
		t.Fatal(err)
	}
	s1.Originate(more1, core.List{})
	waitFor(t, func() bool { return s3.Table().Best(more1) != nil }, "more-specific visible")
	// Flip to summary-only: the more-specific should be withdrawn from
	// peers on the next change affecting it; a re-announcement triggers
	// the suppression path.
	if err := s2.ConfigureAggregate(aggPrefix, true); err != nil {
		t.Fatal(err)
	}
	s1.WithdrawLocal(more1)
	s1.Originate(more1, core.List{})
	waitFor(t, func() bool { return s3.Table().Best(more1) == nil }, "more-specific suppressed")
	if got := len(s2.Aggregates()); got != 1 {
		t.Errorf("aggregate duplicated on reconfigure: %d", got)
	}
}

func TestAggregateOfAggregates(t *testing.T) {
	// A /8 aggregate fed by a /12 aggregate: hierarchical refresh must
	// chain without recursion issues.
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationOff, nil)
	connectPair(t, s1, s2)
	mid := astypes.MustPrefix(0x0a100000, 12) // 10.16.0.0/12
	inner := astypes.MustPrefix(0x0a110000, 16)
	if err := s2.ConfigureAggregate(aggPrefix, false); err != nil {
		t.Fatal(err)
	}
	if err := s2.ConfigureAggregate(mid, false); err != nil {
		t.Fatal(err)
	}
	s1.Originate(inner, core.List{})
	waitFor(t, func() bool {
		return s2.Table().Best(mid) != nil && s2.Table().Best(aggPrefix) != nil
	}, "both aggregates active")
}
