package speaker

import (
	"net"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
)

func TestNewSpeakerValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("speaker without AS accepted")
	}
	s, err := New(Config{AS: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.AS() != 1 {
		t.Errorf("AS() = %v", s.AS())
	}
}

func TestWithdrawPropagatesAcrossMesh(t *testing.T) {
	prefix := astypes.MustPrefix(0x0a000000, 8)
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationOff, nil)
	s3 := newSpeaker(t, 3, ValidationOff, nil)
	connectPair(t, s1, s2)
	connectPair(t, s2, s3)

	s1.Originate(prefix, core.List{})
	waitFor(t, func() bool { return s3.Table().Best(prefix) != nil }, "route at AS3")

	s1.WithdrawLocal(prefix)
	waitFor(t, func() bool { return s3.Table().Best(prefix) == nil }, "withdrawal at AS3")
}

func TestPeerDownDropsRoutes(t *testing.T) {
	prefix := astypes.MustPrefix(0x0a000000, 8)
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationOff, nil)
	connectPair(t, s1, s2)

	s1.Originate(prefix, core.List{})
	waitFor(t, func() bool { return s2.Table().Best(prefix) != nil }, "route at AS2")

	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s2.Table().Best(prefix) == nil }, "route flushed at AS2")
	waitFor(t, func() bool { return len(s2.Peers()) == 0 }, "peer removed at AS2")
}

func TestLateJoinerReceivesFullTable(t *testing.T) {
	p1 := astypes.MustPrefix(0x0a000000, 8)
	p2 := astypes.MustPrefix(0x14000000, 8)
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s1.Originate(p1, core.List{})
	s1.Originate(p2, core.List{})

	s2 := newSpeaker(t, 2, ValidationOff, nil)
	connectPair(t, s1, s2)
	waitFor(t, func() bool {
		return s2.Table().Best(p1) != nil && s2.Table().Best(p2) != nil
	}, "full table at late joiner")
}

func TestValidationAlarmModeAcceptsButAlarms(t *testing.T) {
	prefix := astypes.MustPrefix(0x0a000000, 8)
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationAlarm, nil)
	s3 := newSpeaker(t, 3, ValidationOff, nil)
	connectPair(t, s1, s2)
	connectPair(t, s2, s3)

	s1.Originate(prefix, core.List{})
	waitFor(t, func() bool { return s2.Table().Best(prefix) != nil }, "valid route at AS2")
	s3.Originate(prefix, core.List{}) // hijack from the other side
	waitFor(t, func() bool { return len(s2.Alarms()) > 0 }, "alarm at AS2")
	// Alarm-only mode must still have both routes available (it accepts
	// pending investigation).
	if got := len(s2.Table().RoutesFrom(3)); got != 1 {
		t.Errorf("alarm mode dropped the route: RoutesFrom(3) = %d", got)
	}
}

func TestDropModeWithoutResolverRejectsConservatively(t *testing.T) {
	prefix := astypes.MustPrefix(0x0a000000, 8)
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationDrop, nil) // no resolver
	s3 := newSpeaker(t, 3, ValidationOff, nil)
	connectPair(t, s1, s2)
	connectPair(t, s2, s3)

	s1.Originate(prefix, core.List{})
	waitFor(t, func() bool { return s2.Table().Best(prefix) != nil }, "valid route at AS2")
	s3.Originate(prefix, core.List{})
	waitFor(t, func() bool { return len(s2.Alarms()) > 0 }, "alarm at AS2")
	time.Sleep(30 * time.Millisecond)
	// Conservative rejection: the conflicting newcomer is not installed.
	if got := len(s2.Table().RoutesFrom(3)); got != 0 {
		t.Errorf("conflicting route installed without resolution: %d", got)
	}
	if best := s2.Table().Best(prefix); best == nil || best.OriginAS() != 1 {
		t.Errorf("best = %+v", best)
	}
}

func TestDuplicatePeeringRejected(t *testing.T) {
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationOff, nil)
	connectPair(t, s1, s2)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s1.Listen(ln)
	if err := s2.Connect(ln.Addr().String(), 1); err == nil {
		t.Error("second session with the same peer accepted")
	}
}

func TestConnectFailures(t *testing.T) {
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	if err := s1.Connect("127.0.0.1:1", 2); err == nil { // nothing listens there
		t.Error("dial to dead address succeeded")
	}
	// AS mismatch: expect AS 9, get AS 2.
	s2 := newSpeaker(t, 2, ValidationOff, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s2.Listen(ln)
	if err := s1.Connect(ln.Addr().String(), 9); err == nil {
		t.Error("AS mismatch accepted")
	}
}

func TestLoopPreventionAcrossCycle(t *testing.T) {
	// Triangle 1-2-3: routes must stabilize without AS-path loops.
	prefix := astypes.MustPrefix(0x0a000000, 8)
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationOff, nil)
	s3 := newSpeaker(t, 3, ValidationOff, nil)
	connectPair(t, s1, s2)
	connectPair(t, s2, s3)
	connectPair(t, s3, s1)

	s1.Originate(prefix, core.List{})
	waitFor(t, func() bool {
		b2, b3 := s2.Table().Best(prefix), s3.Table().Best(prefix)
		return b2 != nil && b3 != nil
	}, "convergence on the triangle")
	time.Sleep(50 * time.Millisecond)
	for _, s := range []*Speaker{s2, s3} {
		best := s.Table().Best(prefix)
		if best.Path.Contains(s.AS()) {
			t.Errorf("AS%s best path loops: %v", s.AS(), best.Path)
		}
		if best.Path.Hops() != 1 {
			t.Errorf("AS%s should be one hop from the origin: %v", s.AS(), best.Path)
		}
	}
}

func TestMOASListTransitsVerbatim(t *testing.T) {
	prefix := astypes.MustPrefix(0x0a000000, 8)
	list := core.NewList(1, 7)
	s1 := newSpeaker(t, 1, ValidationOff, nil)
	s2 := newSpeaker(t, 2, ValidationOff, nil)
	s3 := newSpeaker(t, 3, ValidationOff, nil)
	connectPair(t, s1, s2)
	connectPair(t, s2, s3)

	s1.Originate(prefix, list)
	waitFor(t, func() bool { return s3.Table().Best(prefix) != nil }, "route at AS3")
	got, has := core.FromCommunities(s3.Table().Best(prefix).Communities)
	if !has || !got.Equal(list) {
		t.Errorf("MOAS list at AS3 = %v, %v", got, has)
	}
}
