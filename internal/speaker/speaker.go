// Package speaker assembles a complete BGP speaker from the substrate
// packages: wire codec, per-peer sessions, RIB and decision process,
// and — the point of the exercise — the paper's MOAS-list mechanism
// wired into the import policy. A speaker originates prefixes with MOAS
// lists attached via the community attribute, checks every received
// announcement for MOAS-list consistency, raises alarms on conflicts,
// optionally resolves them against a Resolver (DNS MOASRR stand-in),
// and refuses to install or propagate resolved-invalid routes.
//
// Speakers run over real TCP (or any net.Conn, e.g. net.Pipe in tests);
// the examples and integration tests build multi-AS meshes in-process.
package speaker

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ptrie"
	"repro/internal/rib"
	"repro/internal/rpki"
	"repro/internal/session"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Resolver answers which origins are entitled to a prefix, consulted
// when a MOAS conflict is detected (§4.4's DNS MOASRR lookup).
type Resolver interface {
	ValidOrigins(prefix astypes.Prefix) (core.List, bool)
}

// ValidationMode selects what the speaker does with its MOAS checker.
type ValidationMode int

// Validation modes.
const (
	// ValidationOff: plain BGP; MOAS communities transit untouched.
	ValidationOff ValidationMode = iota + 1
	// ValidationAlarm: check and raise alarms, but accept the route
	// (the paper's minimal deployment: an alarm prompts investigation).
	ValidationAlarm
	// ValidationDrop: check, alarm, resolve, and reject routes from
	// origins outside the resolved valid set (the simulation's
	// full-detection behaviour).
	ValidationDrop
)

func (m ValidationMode) String() string {
	switch m {
	case ValidationOff:
		return "off"
	case ValidationAlarm:
		return "alarm"
	case ValidationDrop:
		return "drop"
	default:
		return "unknown"
	}
}

// ListEncoding selects how this speaker attaches MOAS lists to the
// routes it originates. Checking always understands both encodings.
type ListEncoding int

// List encodings.
const (
	// EncodeCommunities is the paper's deployment-friendly encoding:
	// one (ASN : MLVal) community per entitled origin (§4.2).
	EncodeCommunities ListEncoding = iota + 1
	// EncodeAttribute carries the list in the dedicated optional
	// transitive path attribute (core.ListAttrCode); unmodified
	// speakers transit it untouched.
	EncodeAttribute
)

// Config parameterizes a Speaker.
type Config struct {
	// AS and RouterID identify the speaker; AS is required.
	AS       astypes.ASN
	RouterID uint32
	// Validation selects the MOAS checking behaviour (default off).
	Validation ValidationMode
	// Resolver resolves conflicts under ValidationDrop; without one,
	// conflicting routes are rejected conservatively.
	Resolver Resolver
	// HoldTime for sessions (zero selects the session default).
	HoldTime time.Duration
	// OnAlarm, if set, is invoked for every MOAS conflict detected.
	OnAlarm func(core.Conflict)
	// NextHop is the next-hop address advertised in UPDATEs (an opaque
	// 32-bit value at this abstraction level).
	NextHop uint32
	// ListEncoding selects the MOAS-list encoding on originated routes
	// (default EncodeCommunities).
	ListEncoding ListEncoding
	// ImportDeny lists prefixes whose announcements are rejected from
	// every peer (with all their more-specifics) — the operational
	// bogon/martian filter that complements MOAS checking.
	ImportDeny []astypes.Prefix
	// OnPeerDown, if set, is invoked on its own goroutine after a peer
	// session ends and its routes are flushed; Close waits for it.
	OnPeerDown func(peer astypes.ASN)
	// Telemetry, if set, is the registry the speaker instruments itself
	// (and its sessions) on; nil creates a private "moas" registry, so
	// counting is always on. Registry() exposes whichever is in use.
	Telemetry *telemetry.Registry
	// Trace, if set, is the flight recorder the speaker (and its
	// sessions) record pipeline events on: message receipt, validation
	// verdicts, RIB decisions, exports, and alarm forensics.
	Trace *trace.Recorder
	// RPKI, if set, is the validated ROA store every detected conflict
	// is cross-checked against: the ROV outcome for (prefix, origin)
	// crossed with the checker verdict yields the alarm's class
	// (benign-moas / likely-misconfig / likely-hijack). A nil store
	// validates to NotFound, degrading to the MOAS-provenance classes.
	RPKI *rpki.Store
	// Obs, if set, records per-stage detection latency: sessions stamp
	// ingest at the wire reader, the speaker crosses the validate and
	// RIB stages per prefix, and a raised alarm records the cumulative
	// ingest → alarm latency against the message's span.
	Obs *obs.Recorder
}

// Speaker is a BGP speaker instance.
type Speaker struct {
	cfg     Config
	checker *core.Checker
	reg     *telemetry.Registry
	met     *metrics

	// denied, when non-nil, indexes the import deny list.
	denied *ptrie.Trie[struct{}]

	mu    sync.Mutex
	table *rib.Table // set at construction; the Table locks itself
	// peers holds established sessions by peer AS. Guarded by mu.
	peers map[astypes.ASN]*peer
	// curStamp is the stage stamp of the UPDATE currently being
	// processed (nil outside handleUpdate). Guarded by mu; the alarm
	// callback fires under mu from admitLocked, which is how the
	// cumulative ingest → alarm latency finds its stamp.
	curStamp *obs.Stamp

	// resolved caches Resolver answers per prefix. Guarded by mu.
	resolved map[astypes.Prefix]core.List
	// aggregates holds configured aggregate state. Guarded by mu.
	aggregates []*aggregateState
	listeners  []net.Listener // guarded by mu
	closed     bool           // guarded by mu

	wg sync.WaitGroup
}

type peer struct {
	asn  astypes.ASN
	sess *session.Session
	// advertised tracks prefixes announced to this peer, for withdrawals.
	advertised map[astypes.Prefix]bool
	// sendQ decouples route propagation from transport writes: the RIB
	// lock is never held across a blocking socket write, so meshes over
	// synchronous transports (net.Pipe) cannot deadlock.
	sendQ chan *wire.Update
	// qdone is closed when the writer goroutine exits.
	qdone chan struct{}
}

// sendQueueLen bounds per-peer outbound buffering; overflow tears the
// session down (a peer that cannot drain this many updates is stuck).
const sendQueueLen = 4096

func (p *peer) enqueue(u *wire.Update) bool {
	select {
	case p.sendQ <- u:
		return true
	default:
		return false
	}
}

func (p *peer) writeLoop() {
	defer close(p.qdone)
	batch := make([]*wire.Update, 0, 64)
	for u := range p.sendQ {
		// Drain whatever else is already queued so a propagation burst
		// goes out as one buffered batch instead of one write per route.
		batch = append(batch[:0], u)
	drain:
		for len(batch) < cap(batch) {
			select {
			case more, ok := <-p.sendQ:
				if !ok {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		if _, err := p.sess.SendUpdates(batch); err != nil {
			return
		}
	}
}

// New builds a speaker.
func New(cfg Config) (*Speaker, error) {
	if cfg.AS == astypes.ASNNone {
		return nil, errors.New("speaker: AS required")
	}
	if cfg.Validation == 0 {
		cfg.Validation = ValidationOff
	}
	if cfg.ListEncoding == 0 {
		cfg.ListEncoding = EncodeCommunities
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry("moas")
	}
	s := &Speaker{
		cfg:      cfg,
		reg:      reg,
		met:      newMetrics(reg),
		table:    rib.NewTable(),
		peers:    make(map[astypes.ASN]*peer),
		resolved: make(map[astypes.Prefix]core.List),
	}
	if len(cfg.ImportDeny) > 0 {
		s.denied = ptrie.New[struct{}]()
		for _, p := range cfg.ImportDeny {
			s.denied.Insert(p, struct{}{})
		}
	}
	s.checker = core.NewChecker(core.WithAlarmFunc(func(c core.Conflict) {
		class := rpki.Classify(s.cfg.RPKI.Validate(c.Prefix, c.Origin), c.Verdict)
		s.met.alarms.Inc()
		s.met.alarmClasses.With(class.String()).Inc()
		// Detection latency: ingest instant → alarm raise, cumulative.
		//repro:vet ignore lockcheck -- alarm closures fire from admitLocked, under s.mu
		s.cfg.Obs.End(s.curStamp, obs.StageAlarm)
		s.recordAlarm(&c, class)
		if cfg.OnAlarm != nil {
			cfg.OnAlarm(c)
		}
	}))
	return s, nil
}

// recordAlarm snapshots the forensic bundle for one detected conflict:
// both competing MOAS lists, the offending path, the ROV-derived class,
// and the prefix's event timeline from the flight recorder.
func (s *Speaker) recordAlarm(c *core.Conflict, class rpki.Class) {
	if !s.cfg.Trace.Enabled() {
		return
	}
	s.cfg.Trace.RecordAlarm(c.Prefix, trace.AlarmBundle{
		Span:     c.Span,
		Node:     uint32(s.cfg.AS),
		FromPeer: uint32(c.FromPeer),
		Origin:   uint32(c.Origin),
		Verdict:  c.Verdict.String(),
		Class:    class.String(),
		Existing: trace.ASNs(c.Existing.Origins()),
		Received: trace.ASNs(c.Received.Origins()),
		Path:     trace.PathASNs(c.Path),
	})
}

// AS returns the speaker's AS number.
func (s *Speaker) AS() astypes.ASN { return s.cfg.AS }

// Registry returns the telemetry registry the speaker instruments
// itself on (the configured one, or the private default).
func (s *Speaker) Registry() *telemetry.Registry { return s.reg }

// Table exposes the speaker's RIB.
func (s *Speaker) Table() *rib.Table { return s.table }

// Alarms returns all MOAS conflicts detected so far.
func (s *Speaker) Alarms() []core.Conflict { return s.checker.Alarms() }

// handler adapts session callbacks to the speaker.
type handler struct {
	s    *Speaker
	peer astypes.ASN
}

func (h handler) HandleUpdate(peerAS astypes.ASN, u *wire.Update) {
	h.s.handleUpdate(peerAS, u, 0, nil)
}

// HandleUpdateSpan is the traced delivery path: the session hands over
// the message's span so every downstream event correlates back to the
// exact UPDATE.
func (h handler) HandleUpdateSpan(peerAS astypes.ASN, u *wire.Update, span uint64) {
	h.s.handleUpdate(peerAS, u, span, nil)
}

// HandleUpdateStamp is the stage-timed delivery path: the stamp carries
// the span plus the ingest instant, so validate/RIB crossings and the
// alarm latency land in the speaker's obs recorder.
func (h handler) HandleUpdateStamp(peerAS astypes.ASN, u *wire.Update, st *obs.Stamp) {
	h.s.handleUpdate(peerAS, u, st.Span, st)
}

func (h handler) HandleDown(peerAS astypes.ASN, err error) {
	h.s.handlePeerDown(peerAS)
}

// HandleRouteRefresh re-advertises the full Loc-RIB to the requesting
// peer (RFC 2918).
func (h handler) HandleRouteRefresh(peerAS astypes.ASN, _ *wire.RouteRefresh) {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	p, ok := h.s.peers[peerAS]
	if !ok {
		return
	}
	for _, r := range h.s.table.BestRoutes() {
		if h.s.suppressedLocked(r.Prefix) {
			continue
		}
		h.s.advertiseLocked(p, r)
	}
}

// RequestRefresh asks one peer to resend its routes.
func (s *Speaker) RequestRefresh(peerAS astypes.ASN) error {
	s.mu.Lock()
	p, ok := s.peers[peerAS]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("speaker AS %s: no peer AS %s", s.cfg.AS, peerAS)
	}
	return p.sess.SendRouteRefresh()
}

// deniedPrefix reports whether the import filter rejects prefix.
func (s *Speaker) deniedPrefix(prefix astypes.Prefix) bool {
	if s.denied == nil {
		return false
	}
	_, _, covered := s.denied.LongestMatchPrefix(prefix)
	return covered
}

// AddPeerConn runs the BGP handshake on an existing connection and
// registers the peer. peerAS of ASNNone accepts any AS.
func (s *Speaker) AddPeerConn(conn net.Conn, peerAS astypes.ASN) (astypes.ASN, error) {
	sess, err := session.Establish(conn, session.Config{
		LocalAS:  s.cfg.AS,
		LocalID:  s.cfg.RouterID,
		PeerAS:   peerAS,
		HoldTime: s.cfg.HoldTime,
		Handler:  handler{s: s},
		Metrics:  s.met.session,
		Trace:    s.cfg.Trace,
		Obs:      s.cfg.Obs,
	})
	if err != nil {
		return astypes.ASNNone, fmt.Errorf("speaker AS %s: establish: %w", s.cfg.AS, err)
	}
	got := sess.PeerAS()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		sess.Close()
		return astypes.ASNNone, errors.New("speaker closed")
	}
	if _, dup := s.peers[got]; dup {
		s.mu.Unlock()
		sess.Close()
		return astypes.ASNNone, fmt.Errorf("speaker AS %s: duplicate session with AS %s", s.cfg.AS, got)
	}
	p := &peer{
		asn:        got,
		sess:       sess,
		advertised: make(map[astypes.Prefix]bool),
		sendQ:      make(chan *wire.Update, sendQueueLen),
		qdone:      make(chan struct{}),
	}
	s.peers[got] = p
	s.met.peers.Inc()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		p.writeLoop()
	}()
	// Advertise the current Loc-RIB to the new peer.
	for _, r := range s.table.BestRoutes() {
		if s.suppressedLocked(r.Prefix) {
			continue
		}
		s.advertiseLocked(p, r)
	}
	s.mu.Unlock()
	return got, nil
}

// Connect dials addr and peers with the given AS.
func (s *Speaker) Connect(addr string, peerAS astypes.ASN) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("speaker AS %s: dial %s: %w", s.cfg.AS, addr, err)
	}
	if _, err := s.AddPeerConn(conn, peerAS); err != nil {
		return err
	}
	return nil
}

// Listen accepts inbound peering connections on ln until the speaker is
// closed. It returns immediately; accepting happens on a goroutine.
func (s *Speaker) Listen(ln net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return
	}
	s.listeners = append(s.listeners, ln)
	// Add while still holding mu with closed false: Close sets closed
	// under mu before it Waits, so the Add cannot race the Wait.
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				// Inbound peer AS learned from its OPEN.
				if _, err := s.AddPeerConn(conn, astypes.ASNNone); err != nil {
					conn.Close()
				}
			}()
		}
	}()
}

// AdvertisedTo returns the prefixes currently advertised to one peer,
// in ascending order — the speaker's Adj-RIB-Out view for debugging and
// export-policy tests.
func (s *Speaker) AdvertisedTo(peerAS astypes.ASN) []astypes.Prefix {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.peers[peerAS]
	if !ok {
		return nil
	}
	var out []astypes.Prefix
	for prefix, on := range p.advertised {
		if on {
			out = append(out, prefix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Peers returns the ASNs of established peers in ascending order.
func (s *Speaker) Peers() []astypes.ASN {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]astypes.ASN, 0, len(s.peers))
	for a := range s.peers {
		out = append(out, a)
	}
	astypes.SortASNs(out)
	return out
}

// Originate announces prefix from this speaker with the given MOAS list
// (empty list attaches no communities; receivers apply the implicit
// rule).
func (s *Speaker) Originate(prefix astypes.Prefix, list core.List) {
	route := &rib.Route{
		Prefix:    prefix,
		Path:      astypes.NewSeqPath(s.cfg.AS),
		Origin:    wire.OriginIGP,
		NextHop:   s.cfg.NextHop,
		LocalPref: rib.DefaultLocalPref,
		FromPeer:  astypes.ASNNone,
	}
	if !list.Empty() {
		switch s.cfg.ListEncoding {
		case EncodeAttribute:
			route.Unknown = []wire.UnknownAttr{
				wire.NewOptionalTransitive(core.ListAttrCode, list.AttrBytes()),
			}
		default:
			route.Communities = list.Communities()
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// The route was built fresh above (list encoders return fresh
	// slices), so ownership transfers to the table without a clone.
	ch := s.table.OriginateOwned(route)
	s.propagateLocked(ch, 0)
}

// WithdrawLocal withdraws a locally originated prefix.
func (s *Speaker) WithdrawLocal(prefix astypes.Prefix) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.table.WithdrawLocal(prefix)
	s.propagateLocked(ch, 0)
}

func (s *Speaker) handleUpdate(peerAS astypes.ASN, u *wire.Update, span uint64, st *obs.Stamp) {
	s.met.updatesIn.Inc()
	s.met.withdrawalsIn.Add(uint64(len(u.Withdrawn)))
	origin, _ := u.Attrs.ASPath.Origin()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.curStamp = st
	//repro:vet ignore lockcheck -- deferred before the Unlock defer, so it runs under s.mu
	defer func() { s.curStamp = nil }()
	for _, w := range u.Withdrawn {
		ch := s.table.Withdraw(peerAS, w)
		s.propagateLocked(ch, span)
	}
	if len(u.NLRI) == 0 {
		return
	}
	// Receiver-side sanity: the peer must have prepended itself.
	if first, ok := u.Attrs.ASPath.First(); !ok || first != peerAS {
		s.met.routesRejected.Add(uint64(len(u.NLRI)))
		for _, prefix := range u.NLRI {
			s.recordValidate(prefix, peerAS, origin, trace.DetailRejected, span)
		}
		return
	}
	// Loop detection. A looped announcement is an implicit withdrawal of
	// the peer's previous route for each prefix (RFC 4271 route
	// exclusion): ignoring it would leave stale routes that two speakers
	// can keep mutually alive after the origin withdraws.
	if u.Attrs.ASPath.Contains(s.cfg.AS) {
		s.met.loopsDropped.Add(uint64(len(u.NLRI)))
		for _, prefix := range u.NLRI {
			ch := s.table.Withdraw(peerAS, prefix)
			s.propagateLocked(ch, span)
		}
		return
	}
	for _, prefix := range u.NLRI {
		if s.deniedPrefix(prefix) {
			s.met.routesRejected.Inc()
			s.recordValidate(prefix, peerAS, origin, trace.DetailRejected, span)
			continue
		}
		if s.cfg.Validation != ValidationOff {
			admitted := s.admitLocked(prefix, u.Attrs, peerAS, span)
			s.cfg.Obs.Cross(st, obs.StageValidate)
			if !admitted {
				s.met.routesRejected.Inc()
				s.recordValidate(prefix, peerAS, origin, trace.DetailRejected, span)
				continue
			}
		}
		s.met.routesAccepted.Inc()
		route := &rib.Route{
			Prefix:          prefix,
			Path:            u.Attrs.ASPath.Clone(),
			Origin:          u.Attrs.Origin,
			NextHop:         u.Attrs.NextHop,
			LocalPref:       rib.DefaultLocalPref,
			Communities:     append([]astypes.Community(nil), u.Attrs.Communities...),
			FromPeer:        peerAS,
			AtomicAggregate: u.Attrs.AtomicAggregate,
			AggregatorAS:    u.Attrs.AggregatorAS,
			AggregatorID:    u.Attrs.AggregatorID,
			Unknown:         wire.CloneUnknownAttrs(u.Attrs.Unknown),
		}
		// route deep-copied everything it keeps from the decoder-scratch
		// Update above, so the table takes ownership without re-cloning.
		ch := s.table.UpdateOwned(route)
		s.propagateLocked(ch, span)
		s.cfg.Obs.Cross(st, obs.StageRIB)
	}
}

// recordValidate captures a validation-stage trace event.
func (s *Speaker) recordValidate(prefix astypes.Prefix, peerAS, origin astypes.ASN, detail trace.Detail, span uint64) {
	if !s.cfg.Trace.Enabled() {
		return
	}
	s.cfg.Trace.Record(trace.Event{
		Span:   span,
		Kind:   trace.KindValidate,
		Detail: detail,
		Node:   s.cfg.AS,
		Peer:   peerAS,
		Origin: origin,
		Prefix: prefix,
	})
}

// admitLocked applies the MOAS check to one NLRI of an UPDATE.
func (s *Speaker) admitLocked(prefix astypes.Prefix, attrs wire.PathAttrs, peerAS astypes.ASN, span uint64) bool {
	origin, _ := attrs.ASPath.Origin()
	if truth, ok := s.resolved[prefix]; ok && s.cfg.Validation == ValidationDrop {
		return truth.Contains(origin)
	}
	var attrList *core.List
	if raw := wire.FindUnknownAttr(attrs.Unknown, core.ListAttrCode); raw != nil {
		if l, err := core.ListFromAttrBytes(raw); err == nil {
			attrList = &l
		}
	}
	verdict, conflict := s.checker.Check(core.Announcement{
		Prefix:      prefix,
		Path:        attrs.ASPath,
		Communities: attrs.Communities,
		AttrList:    attrList,
		FromPeer:    peerAS,
		Span:        span,
	})
	switch verdict {
	case core.VerdictConsistent:
		s.recordValidate(prefix, peerAS, origin, trace.DetailConsistent, span)
	case core.VerdictConflict:
		s.recordValidate(prefix, peerAS, origin, trace.DetailConflict, span)
	case core.VerdictOriginNotListed:
		s.recordValidate(prefix, peerAS, origin, trace.DetailOriginNotListed, span)
	}
	if verdict == core.VerdictConsistent {
		return true
	}
	if s.cfg.Validation == ValidationAlarm {
		return true // alarm raised; route accepted pending investigation
	}
	// ValidationDrop: resolve and filter.
	if s.cfg.Resolver != nil {
		if truth, ok := s.cfg.Resolver.ValidOrigins(prefix); ok {
			s.resolved[prefix] = truth
			s.purgeInvalidLocked(prefix, truth)
			return truth.Contains(origin)
		}
	}
	_ = conflict
	return false
}

// purgeInvalidLocked drops installed routes for prefix whose origin is
// outside the resolved valid set.
func (s *Speaker) purgeInvalidLocked(prefix astypes.Prefix, truth core.List) {
	for peerAS := range s.peers {
		for _, r := range s.table.RoutesFrom(peerAS) {
			if r.Prefix == prefix && !truth.Contains(r.OriginAS()) {
				ch := s.table.Withdraw(peerAS, prefix)
				s.propagateLocked(ch, 0)
			}
		}
	}
}

func (s *Speaker) handlePeerDown(peerAS astypes.ASN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.peers[peerAS]
	if !ok {
		return
	}
	delete(s.peers, peerAS)
	s.met.peers.Dec()
	close(p.sendQ)
	for _, ch := range s.table.DropPeer(peerAS) {
		s.propagateLocked(ch, 0)
	}
	if s.cfg.OnPeerDown != nil && !s.closed {
		// Tracked so Close waits for the callback; Add is safe here
		// because closed is false under the same mu Close sets it in.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.cfg.OnPeerDown(peerAS)
		}()
	}
}

// propagateLocked reacts to a best-route change: advertise the new best
// (or a withdrawal) to every established peer, re-evaluate any
// aggregates the prefix contributes to, and honor summary-only
// suppression. span correlates the change to the UPDATE that caused it
// (0 for local events: origination, peer teardown, aggregation).
func (s *Speaker) propagateLocked(ch rib.Change, span uint64) {
	if !ch.Changed {
		return
	}
	s.recordRIB(ch, span)
	s.refreshAggregatesLocked(ch.Prefix)
	suppressed := s.suppressedLocked(ch.Prefix)
	if suppressed && ch.New != nil {
		s.met.suppressed.Inc()
	}
	// Deterministic peer order keeps tests reproducible. The export
	// UPDATE is built once and shared by every peer: updates are
	// immutable once enqueued, and the encoder only reads them.
	var u *wire.Update
	if ch.New != nil && !suppressed {
		u = s.exportUpdate(ch.New)
	}
	asns := make([]astypes.ASN, 0, len(s.peers))
	for a := range s.peers {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, a := range asns {
		p := s.peers[a]
		if u == nil {
			s.withdrawFromLocked(p, ch.Prefix, span)
			continue
		}
		s.enqueueUpdateLocked(p, u, ch.Prefix, span)
	}
}

// recordRIB captures the decision-process trace event for one change.
func (s *Speaker) recordRIB(ch rib.Change, span uint64) {
	if !s.cfg.Trace.Enabled() {
		return
	}
	e := trace.Event{
		Span:   span,
		Kind:   trace.KindRIB,
		Node:   s.cfg.AS,
		Prefix: ch.Prefix,
	}
	switch ch.Reason {
	case rib.ReasonInstalled:
		e.Detail = trace.DetailInstalled
	case rib.ReasonReplaced:
		e.Detail = trace.DetailReplaced
	case rib.ReasonWithdrawn:
		e.Detail = trace.DetailWithdrawn
	}
	if ch.New != nil {
		e.Peer = ch.New.FromPeer
		e.Origin = ch.New.OriginAS()
	}
	s.cfg.Trace.Record(e)
}

// exportUpdate builds the UPDATE advertising route r to peers. The
// result aliases r's immutable slices (communities, unknown attrs), so
// it must be treated as read-only, which every enqueue/encode path is.
func (s *Speaker) exportUpdate(r *rib.Route) *wire.Update {
	// A locally originated route already carries this AS as its path;
	// learned routes are prepended on export.
	path := r.Path
	if r.FromPeer != astypes.ASNNone {
		path = path.Prepend(s.cfg.AS)
	}
	return &wire.Update{
		Attrs: wire.PathAttrs{
			HasOrigin:       true,
			Origin:          r.Origin,
			ASPath:          path,
			HasNextHop:      true,
			NextHop:         s.cfg.NextHop,
			Communities:     r.Communities,
			AtomicAggregate: r.AtomicAggregate,
			HasAggregator:   r.AggregatorAS != astypes.ASNNone,
			AggregatorAS:    r.AggregatorAS,
			AggregatorID:    r.AggregatorID,
			Unknown:         r.Unknown,
		},
		NLRI: []astypes.Prefix{r.Prefix},
	}
}

func (s *Speaker) advertiseLocked(p *peer, r *rib.Route) {
	s.enqueueUpdateLocked(p, s.exportUpdate(r), r.Prefix, 0)
}

func (s *Speaker) enqueueUpdateLocked(p *peer, u *wire.Update, prefix astypes.Prefix, span uint64) {
	if !p.enqueue(u) {
		s.teardownLocked(p)
		return
	}
	s.met.updatesOut.Inc()
	p.advertised[prefix] = true
	if s.cfg.Trace.Enabled() {
		origin, _ := u.Attrs.ASPath.Origin()
		s.cfg.Trace.Record(trace.Event{
			Span:   span,
			Kind:   trace.KindExport,
			Detail: trace.DetailAdvertise,
			Node:   s.cfg.AS,
			Peer:   p.asn,
			Origin: origin,
			Prefix: prefix,
		})
	}
}

// teardownLocked closes a stuck peer's session on a tracked goroutine
// (session.Close joins the reader we may be running on, so it cannot
// run inline). After Close has set closed, the speaker is already
// closing every session, so the duplicate teardown is skipped.
func (s *Speaker) teardownLocked(p *peer) {
	if s.closed {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		p.sess.Close()
	}()
}

func (s *Speaker) withdrawFromLocked(p *peer, prefix astypes.Prefix, span uint64) {
	if !p.advertised[prefix] {
		return
	}
	u := &wire.Update{Withdrawn: []astypes.Prefix{prefix}}
	if !p.enqueue(u) {
		s.teardownLocked(p)
		return
	}
	s.met.updatesOut.Inc()
	p.advertised[prefix] = false
	if s.cfg.Trace.Enabled() {
		s.cfg.Trace.Record(trace.Event{
			Span:   span,
			Kind:   trace.KindExport,
			Detail: trace.DetailWithdrawal,
			Node:   s.cfg.AS,
			Peer:   p.asn,
			Prefix: prefix,
		})
	}
}

// Close shuts down every session and listener and waits for all speaker
// goroutines to exit.
func (s *Speaker) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	listeners := s.listeners
	sessions := make([]*session.Session, 0, len(s.peers))
	for _, p := range s.peers {
		sessions = append(sessions, p.sess)
	}
	s.mu.Unlock()
	// Closing sessions triggers HandleDown, which closes each sendQ and
	// lets writer goroutines drain out.
	for _, ln := range listeners {
		ln.Close()
	}
	for _, sess := range sessions {
		sess.Close()
	}
	s.wg.Wait()
	return nil
}
