package speaker

import (
	"reflect"
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/trace"
)

// TestTracedPipelineAndAlarmForensics drives the legit-then-forged
// scenario through a traced validating speaker and checks the full
// event chain (recv → validate → rib → export) plus the forensic
// bundle captured for the conflict.
func TestTracedPipelineAndAlarmForensics(t *testing.T) {
	prefix := astypes.MustPrefix(0x83b30000, 16) // 131.179.0.0/16
	rec := trace.NewRecorder(1024)

	validator, err := New(Config{
		AS:         100,
		RouterID:   100,
		Validation: ValidationDrop,
		Trace:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { validator.Close() })
	legit := newSpeaker(t, 65001, ValidationOff, nil)
	forged := newSpeaker(t, 64999, ValidationOff, nil)
	connectPair(t, validator, legit)
	connectPair(t, validator, forged)

	legit.Originate(prefix, core.NewList(65001))
	waitFor(t, func() bool { return validator.Table().Best(prefix) != nil }, "legit route at validator")

	forged.Originate(prefix, core.List{}) // implicit {64999}: MOAS conflict
	waitFor(t, func() bool { return rec.AlarmCount() == 1 }, "forensic bundle capture")

	b, ok := rec.Alarm(0)
	if !ok {
		t.Fatal("bundle 0 missing")
	}
	if b.Prefix != "131.179.0.0/16" || b.Verdict != "conflict" {
		t.Errorf("bundle identity: %+v", b)
	}
	if b.Node != 100 || b.FromPeer != 64999 || b.Origin != 64999 {
		t.Errorf("bundle endpoints: node=%d fromPeer=%d origin=%d", b.Node, b.FromPeer, b.Origin)
	}
	if want := []uint32{64999, 65001}; !reflect.DeepEqual(b.Origins, want) {
		t.Errorf("competing origins: %v, want %v", b.Origins, want)
	}
	if !reflect.DeepEqual(b.Existing, []uint32{65001}) || !reflect.DeepEqual(b.Received, []uint32{64999}) {
		t.Errorf("MOAS lists: existing=%v received=%v", b.Existing, b.Received)
	}
	if !reflect.DeepEqual(b.Path, []uint32{64999}) {
		t.Errorf("offending path: %v", b.Path)
	}
	if b.Span == 0 {
		t.Error("bundle missing the triggering message's span")
	}
	if len(b.Timeline) == 0 || b.Timeline[len(b.Timeline)-1].Kind != trace.KindAlarm {
		t.Errorf("timeline must end with the alarm: %+v", b.Timeline)
	}

	// The ring holds the full causal chain for the prefix.
	kinds := map[trace.Kind]bool{}
	var valDetails []trace.Detail
	for _, e := range rec.Events() {
		if e.Prefix.String() != "131.179.0.0/16" {
			continue
		}
		kinds[e.Kind] = true
		if e.Kind == trace.KindValidate {
			valDetails = append(valDetails, e.Detail)
		}
	}
	for _, k := range []trace.Kind{trace.KindRecv, trace.KindValidate, trace.KindRIB, trace.KindExport, trace.KindAlarm} {
		if !kinds[k] {
			t.Errorf("no %s event recorded for the prefix", k)
		}
	}
	// The legit route validated consistent; the forged one conflicted
	// and was ultimately rejected.
	hasDetail := func(d trace.Detail) bool {
		for _, v := range valDetails {
			if v == d {
				return true
			}
		}
		return false
	}
	if !hasDetail(trace.DetailConsistent) || !hasDetail(trace.DetailConflict) || !hasDetail(trace.DetailRejected) {
		t.Errorf("validate details: %v", valDetails)
	}
}
