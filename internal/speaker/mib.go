package speaker

import (
	"encoding/json"
	"net/http"
	"sort"

	"repro/internal/astypes"
	"repro/internal/core"
)

// This file provides the management-plane view the paper sketches in
// §4.2: "If the router is equipped to support the new BGP MIB, one
// could also run a management application to get all MOAS List through
// the MIB interface and check the MOAS List consistency." The MIB
// snapshot exposes per-peer session entries, message counters, the
// Loc-RIB's per-prefix MOAS lists, and the alarm log; ServeHTTP makes
// it consumable by an external checker over HTTP/JSON, and the daemon
// serves the same handler at the admin endpoint's /debug/mib.
//
// The counters themselves live on the speaker's telemetry registry
// (metrics.go), so the MIB view and the /metrics exposition read the
// same instruments.

// Counters aggregates the speaker's message and validation statistics.
// All fields are cumulative since the speaker started.
type Counters struct {
	UpdatesIn      uint64 `json:"updatesIn"`
	UpdatesOut     uint64 `json:"updatesOut"`
	WithdrawalsIn  uint64 `json:"withdrawalsIn"`
	RoutesAccepted uint64 `json:"routesAccepted"`
	RoutesRejected uint64 `json:"routesRejected"`
	LoopsDropped   uint64 `json:"loopsDropped"`
	Alarms         uint64 `json:"alarms"`
}

// PeerEntry is one row of the MIB's peer table.
type PeerEntry struct {
	AS         astypes.ASN `json:"as"`
	State      string      `json:"state"`
	Advertised int         `json:"advertisedPrefixes"`
}

// PrefixEntry is one row of the MIB's route table: the selected route
// and the MOAS list it carries (explicit or implicit).
type PrefixEntry struct {
	Prefix   string   `json:"prefix"`
	Path     string   `json:"asPath"`
	OriginAS string   `json:"originAS"`
	MOASList []string `json:"moasList"`
	Implicit bool     `json:"implicitList"`
}

// MIB is a point-in-time snapshot of the speaker's management view.
type MIB struct {
	AS       astypes.ASN   `json:"as"`
	Mode     string        `json:"validationMode"`
	Counters Counters      `json:"counters"`
	Peers    []PeerEntry   `json:"peers"`
	Routes   []PrefixEntry `json:"routes"`
	Alarms   []string      `json:"alarms"`
}

// MIB returns the current management snapshot.
//
// Snapshot ordering (kept consistent so concurrent updates cannot show
// a peer table newer than the routes it produced):
//
//  1. the s.mu-guarded peer walk (peers map; each session's State is
//     internally synchronized),
//  2. the Loc-RIB route walk (rib.Table locks itself) — taken after
//     s.mu is released: propagateLocked runs under s.mu, so every route
//     visible here was propagated by a peer the walk in (1) could see,
//  3. the counter reads (telemetry atomics, each individually exact),
//  4. the alarm log (core.Checker locks itself).
//
// s.mu is deliberately NOT held across steps 2–4: BestRoutes and
// Alarms take their own locks, and holding s.mu across them would
// order s.mu before those locks here while the update path (handleUpdate
// → admitLocked → checker.Check) already orders them the other way
// around on the alarm-callback path.
func (s *Speaker) MIB() MIB {
	m := MIB{
		AS:   s.cfg.AS,
		Mode: s.cfg.Validation.String(),
	}
	s.mu.Lock()
	for asn, p := range s.peers { // peers guarded by mu
		advertised := 0
		for _, on := range p.advertised { // advertised guarded by mu
			if on {
				advertised++
			}
		}
		m.Peers = append(m.Peers, PeerEntry{
			AS:         asn,
			State:      p.sess.State().String(),
			Advertised: advertised,
		})
	}
	s.mu.Unlock()
	sort.Slice(m.Peers, func(i, j int) bool { return m.Peers[i].AS < m.Peers[j].AS })

	for _, r := range s.table.BestRoutes() {
		entry := PrefixEntry{
			Prefix:   r.Prefix.String(),
			Path:     r.Path.String(),
			OriginAS: r.OriginAS().String(),
		}
		if list, has := core.FromCommunities(r.Communities); has {
			for _, o := range list.Origins() {
				entry.MOASList = append(entry.MOASList, o.String())
			}
		} else {
			entry.Implicit = true
			entry.MOASList = []string{r.OriginAS().String()}
		}
		m.Routes = append(m.Routes, entry)
	}

	// Counters are read after the route walk: a route that made it into
	// the snapshot has its accept/reject decision already counted, so
	// the counter view is never behind the route view.
	m.Counters = s.met.snapshot()
	for _, a := range s.checker.Alarms() {
		m.Alarms = append(m.Alarms, a.Error())
	}
	return m
}

// ServeHTTP serves the MIB snapshot as JSON, so an external management
// application (or cmd/moas-monitor in a future mode) can poll it.
func (s *Speaker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.MIB()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

var _ http.Handler = (*Speaker)(nil)
