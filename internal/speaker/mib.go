package speaker

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync/atomic"

	"repro/internal/astypes"
	"repro/internal/core"
)

// This file provides the management-plane view the paper sketches in
// §4.2: "If the router is equipped to support the new BGP MIB, one
// could also run a management application to get all MOAS List through
// the MIB interface and check the MOAS List consistency." The MIB
// snapshot exposes per-peer session entries, message counters, the
// Loc-RIB's per-prefix MOAS lists, and the alarm log; ServeHTTP makes
// it consumable by an external checker over HTTP/JSON.

// Counters aggregates the speaker's message and validation statistics.
// All fields are cumulative since the speaker started.
type Counters struct {
	UpdatesIn      uint64 `json:"updatesIn"`
	UpdatesOut     uint64 `json:"updatesOut"`
	WithdrawalsIn  uint64 `json:"withdrawalsIn"`
	RoutesAccepted uint64 `json:"routesAccepted"`
	RoutesRejected uint64 `json:"routesRejected"`
	LoopsDropped   uint64 `json:"loopsDropped"`
	Alarms         uint64 `json:"alarms"`
}

// counters is the internal atomic representation.
type counters struct {
	updatesIn      atomic.Uint64
	updatesOut     atomic.Uint64
	withdrawalsIn  atomic.Uint64
	routesAccepted atomic.Uint64
	routesRejected atomic.Uint64
	loopsDropped   atomic.Uint64
	alarms         atomic.Uint64
}

func (c *counters) snapshot() Counters {
	return Counters{
		UpdatesIn:      c.updatesIn.Load(),
		UpdatesOut:     c.updatesOut.Load(),
		WithdrawalsIn:  c.withdrawalsIn.Load(),
		RoutesAccepted: c.routesAccepted.Load(),
		RoutesRejected: c.routesRejected.Load(),
		LoopsDropped:   c.loopsDropped.Load(),
		Alarms:         c.alarms.Load(),
	}
}

// PeerEntry is one row of the MIB's peer table.
type PeerEntry struct {
	AS         astypes.ASN `json:"as"`
	State      string      `json:"state"`
	Advertised int         `json:"advertisedPrefixes"`
}

// PrefixEntry is one row of the MIB's route table: the selected route
// and the MOAS list it carries (explicit or implicit).
type PrefixEntry struct {
	Prefix   string   `json:"prefix"`
	Path     string   `json:"asPath"`
	OriginAS string   `json:"originAS"`
	MOASList []string `json:"moasList"`
	Implicit bool     `json:"implicitList"`
}

// MIB is a point-in-time snapshot of the speaker's management view.
type MIB struct {
	AS       astypes.ASN   `json:"as"`
	Mode     string        `json:"validationMode"`
	Counters Counters      `json:"counters"`
	Peers    []PeerEntry   `json:"peers"`
	Routes   []PrefixEntry `json:"routes"`
	Alarms   []string      `json:"alarms"`
}

// MIB returns the current management snapshot.
func (s *Speaker) MIB() MIB {
	m := MIB{
		AS:       s.cfg.AS,
		Mode:     s.cfg.Validation.String(),
		Counters: s.ctr.snapshot(),
	}
	s.mu.Lock()
	for asn, p := range s.peers {
		advertised := 0
		for _, on := range p.advertised {
			if on {
				advertised++
			}
		}
		m.Peers = append(m.Peers, PeerEntry{
			AS:         asn,
			State:      p.sess.State().String(),
			Advertised: advertised,
		})
	}
	s.mu.Unlock()
	sort.Slice(m.Peers, func(i, j int) bool { return m.Peers[i].AS < m.Peers[j].AS })

	for _, r := range s.table.BestRoutes() {
		entry := PrefixEntry{
			Prefix:   r.Prefix.String(),
			Path:     r.Path.String(),
			OriginAS: r.OriginAS().String(),
		}
		if list, has := core.FromCommunities(r.Communities); has {
			for _, o := range list.Origins() {
				entry.MOASList = append(entry.MOASList, o.String())
			}
		} else {
			entry.Implicit = true
			entry.MOASList = []string{r.OriginAS().String()}
		}
		m.Routes = append(m.Routes, entry)
	}
	for _, a := range s.checker.Alarms() {
		m.Alarms = append(m.Alarms, a.Error())
	}
	return m
}

// ServeHTTP serves the MIB snapshot as JSON, so an external management
// application (or cmd/moas-monitor in a future mode) can poll it.
func (s *Speaker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.MIB()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

var _ http.Handler = (*Speaker)(nil)
