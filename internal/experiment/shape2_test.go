package experiment

import (
	"testing"

	"repro/internal/topology"
)

// TestShapeTopologySizeAndPartial probes the Fig 10/11 shapes: larger
// topologies more robust under detection; partial deployment between
// normal and full.
func TestShapeTopologySizeAndPartial(t *testing.T) {
	set, err := topology.BuildPaperTopologies(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []struct {
		name string
		s    *topology.SampleResult
	}{{"25", set.T25}, {"46", set.T46}, {"63", set.T63}} {
		n := topo.s.Graph.NumNodes()
		counts := []int{n * 4 / 100, n * 20 / 100, n * 30 / 100}
		for i := range counts {
			if counts[i] < 1 {
				counts[i] = 1
			}
		}
		res, err := Sweep(SweepConfig{
			Topology: topo.s, TopologyName: topo.name, NumOrigins: 1,
			AttackerCounts: counts,
			Modes: []ModeSpec{
				{Label: "normal", Detection: DetectionOff},
				{Label: "half", Detection: DetectionPartial, DeployFraction: 0.5},
				{Label: "full", Detection: DetectionFull},
			},
			Seed: 7, ColdStart: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Points {
			t.Logf("topo=%s attackers=%d (%.0f%%): normal=%.2f half=%.2f full=%.2f",
				topo.name, p.NumAttackers, p.AttackerPct,
				p.MeanFalsePct[0], p.MeanFalsePct[1], p.MeanFalsePct[2])
		}
	}
}
