package experiment

import (
	"bytes"
	"testing"

	"repro/internal/topology"
)

// TestParallelismDeterminism10k pins the sweep's concurrency contract
// at internet scale: a 10k-AS sweep serialized to CSV must be
// byte-identical whether runs execute sequentially or on 8 workers.
// Parallelism may only change wall-clock, never results — pooled
// networks, interned state, and per-scenario seeding all have to be
// order-independent for this to hold. Skipped with -short.
func TestParallelismDeterminism10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-AS sweep; skipped with -short")
	}
	topo, err := topology.GeneratePowerLaw(topology.DefaultPowerLawParams(10_000), 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{
		Topology:       topo,
		TopologyName:   "powerlaw-10000",
		NumOrigins:     1,
		AttackerCounts: []int{1, 2},
		Modes: []ModeSpec{
			{Label: "normal", Detection: DetectionOff},
			{Label: "full", Detection: DetectionFull},
		},
		OriginSets:   1,
		AttackerSets: 2,
		Seed:         42,
		ColdStart:    true,
		ROACoverage:  0.5,
	}
	render := func(parallelism int) []byte {
		cfg.Parallelism = parallelism
		res, err := Sweep(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("sweep output depends on parallelism:\n serial:\n%s\n parallel:\n%s", serial, parallel)
	}
}
