// Package experiment is the harness that reproduces the paper's
// simulation study (§5): it selects origin and attacker ASes, assembles
// simbgp networks in the requested detection mode, runs them to
// quiescence in parallel, and aggregates the paper's metric — the
// percentage of non-attacker ASes that adopt a false route — over the
// paper's 15-run averaging scheme (3 origin sets x 5 attacker sets,
// footnote 4).
package experiment

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/rpki"
	"repro/internal/simbgp"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// VictimPrefix is the prefix under attack in every run; its identity is
// arbitrary (the paper's "prefix p").
var VictimPrefix = astypes.MustPrefix(0x83b30000, 16) // 131.179.0.0/16

// Detection selects the deployment of MOAS checking across the network.
type Detection int

// Detection deployments.
const (
	// DetectionOff: no node checks MOAS lists ("Normal BGP").
	DetectionOff Detection = iota + 1
	// DetectionFull: every node checks ("Full MOAS Detection").
	DetectionFull
	// DetectionPartial: a random fraction of nodes checks ("Half MOAS
	// Detection" when the fraction is 0.5).
	DetectionPartial
)

func (d Detection) String() string {
	switch d {
	case DetectionOff:
		return "normal-bgp"
	case DetectionFull:
		return "full-moas"
	case DetectionPartial:
		return "partial-moas"
	default:
		return "unknown"
	}
}

// Scenario fixes the random selections of one simulation run so the same
// setting can be replayed under different detection modes (the paper
// compares modes on identical settings).
type Scenario struct {
	Origins   []astypes.ASN
	Attackers []astypes.ASN
	// DeploySeed drives the random choice of MOAS-capable nodes under
	// partial deployment.
	DeploySeed int64
}

// RunConfig is one simulation run.
type RunConfig struct {
	Topology *topology.SampleResult
	Scenario Scenario
	// Detection mode; DeployFraction applies to DetectionPartial only.
	Detection      Detection
	DeployFraction float64
	// ForgeSupersetList makes attackers attach the valid MOAS list
	// extended with themselves (§4.1's forging attacker) instead of
	// announcing bare routes.
	ForgeSupersetList bool
	// StripMOASInTransit, when true, makes attacker nodes remove MOAS
	// communities from routes they propagate (tampering ablation; bare
	// false origination is the paper's model).
	StripMOASInTransit bool
	// ColdStart announces valid routes and the attack simultaneously
	// into an empty network instead of letting the valid routes converge
	// first.
	ColdStart bool
	// ValleyFree applies Gao-Rexford export policy over relationships
	// inferred from the topology (ablation; the paper's model floods).
	ValleyFree bool
	// ROACoverage is the probability that the victim prefix is covered
	// by ROAs authorizing the valid origins — the simulator-side model
	// of partial RPKI deployment. The draw is seeded from
	// Scenario.DeploySeed, so the same scenario sees the same RPKI state
	// under every detection mode being compared. With coverage, forged
	// announcements validate Invalid and the resulting alarms classify
	// likely-hijack; 0 disables RPKI for the run.
	ROACoverage float64
	// FreshNetwork disables the per-topology network pool and builds a
	// new simbgp.Network for this run, the pre-pooling behaviour. It
	// exists as the in-tree baseline for the evaluation benchmarks
	// (Benchmark*Baseline); results are identical either way.
	FreshNetwork bool
	// Recorder, if set, is attached to the network for the run's
	// duration: the flight recorder captures per-prefix propagation
	// events and forensic alarm bundles in virtual time (moas-sim
	// -trace). Pooled networks detach it on Reset before reuse.
	Recorder *trace.Recorder
}

// RunResult is the outcome of one run.
type RunResult struct {
	// Census is the paper's RIB-level metric; Forwarding is the stricter
	// traffic-level census (a node counts as hijacked when its packets
	// physically reach an attacker).
	Census     simbgp.Census
	Forwarding simbgp.Census
	Alarms     int
	// AlarmClasses tallies the network's raised alarms by their
	// RPKI/ROV cross-validated class (rpki.Classify). Without ROAs every
	// alarm degrades to the MOAS-provenance classes.
	AlarmClasses [rpki.NumClasses]uint64
	// Messages is the total number of UPDATE deliveries; ConvergeVirtual
	// is the virtual time at quiescence — the simulator's convergence
	// cost metrics.
	Messages        uint64
	ConvergeVirtual time.Duration
}

// roaSeedSalt decorrelates the ROA-coverage draw from the partial
// deployment permutation, which shares Scenario.DeploySeed.
const roaSeedSalt = 0x524f4173 // "ROAs"

// runJob indirects Run so tests can observe/abort sweep dispatch.
var runJob = Run

// netPools holds one sync.Pool of reusable *simbgp.Network per
// *topology.Graph. A sweep of hundreds of runs on one topology draws
// its networks from here and rewinds them with Reset instead of
// rebuilding every node, RIB shard, and adjacency map per run.
var netPools sync.Map // *topology.Graph -> *sync.Pool

// relCache memoizes topology.InferRelations per graph: relationships
// are a pure function of the topology, and re-inferring them for every
// ValleyFree run dominated sweep setup. Relations are read-only after
// construction, so sharing across concurrent runs is safe.
var relCache sync.Map // *topology.Graph -> *topology.Relations

// acquireNetwork returns a run-ready network for simCfg plus a release
// function to call once the run's results have been read out. Pooled
// networks are rewound with Reset; fresh ones are built from scratch.
func acquireNetwork(simCfg simbgp.Config, fresh bool) (*simbgp.Network, func(), error) {
	if fresh {
		net, err := simbgp.NewNetwork(simCfg)
		return net, func() {}, err
	}
	p, _ := netPools.LoadOrStore(simCfg.Topology, &sync.Pool{})
	pool := p.(*sync.Pool)
	if v := pool.Get(); v != nil {
		net := v.(*simbgp.Network)
		if err := net.Reset(simCfg); err != nil {
			return nil, nil, err
		}
		return net, func() { pool.Put(net) }, nil
	}
	net, err := simbgp.NewNetwork(simCfg)
	if err != nil {
		return nil, nil, err
	}
	return net, func() { pool.Put(net) }, nil
}

// Run executes one simulation run to quiescence.
func Run(cfg RunConfig) (RunResult, error) {
	if cfg.Topology == nil {
		return RunResult{}, fmt.Errorf("experiment: nil topology")
	}
	if len(cfg.Scenario.Origins) == 0 {
		return RunResult{}, fmt.Errorf("experiment: no origin ASes")
	}
	valid := core.NewList(cfg.Scenario.Origins...)
	resolver := simbgp.ResolverFunc(func(p astypes.Prefix) (core.List, bool) {
		if p == VictimPrefix {
			return valid, true
		}
		return core.List{}, false
	})
	simCfg := simbgp.Config{
		Topology: cfg.Topology.Graph,
		Resolver: resolver,
	}
	if cfg.ROACoverage < 0 || cfg.ROACoverage > 1 {
		return RunResult{}, fmt.Errorf("experiment: ROA coverage %v out of [0,1]", cfg.ROACoverage)
	}
	if cfg.ROACoverage > 0 {
		// The coverage draw reuses DeploySeed (salted so it is
		// independent of the deployment permutation): replaying one
		// scenario across modes keeps its RPKI state fixed.
		rng := rand.New(rand.NewSource(cfg.Scenario.DeploySeed ^ roaSeedSalt))
		if rng.Float64() < cfg.ROACoverage {
			roas := rpki.NewStore()
			for _, origin := range cfg.Scenario.Origins {
				roas.Add(rpki.ROA{Prefix: VictimPrefix, Origin: origin})
			}
			simCfg.RPKI = roas
		}
	}
	if cfg.ValleyFree {
		if r, ok := relCache.Load(cfg.Topology.Graph); ok {
			simCfg.Relations = r.(*topology.Relations)
		} else {
			rel := topology.InferRelations(cfg.Topology.Graph, cfg.Topology.Transit)
			relCache.Store(cfg.Topology.Graph, rel)
			simCfg.Relations = rel
		}
	}
	net, release, err := acquireNetwork(simCfg, cfg.FreshNetwork)
	if err != nil {
		return RunResult{}, fmt.Errorf("experiment: %w", err)
	}
	// Even a half-configured network goes back to the pool: the next
	// Reset rewinds whatever state this run left behind.
	defer release()
	if cfg.Recorder != nil {
		net.AttachRecorder(cfg.Recorder)
	}

	if err := applyDetection(net, cfg); err != nil {
		return RunResult{}, err
	}
	if cfg.StripMOASInTransit {
		for _, attacker := range cfg.Scenario.Attackers {
			if err := net.SetStripMOAS(attacker, true); err != nil {
				return RunResult{}, err
			}
		}
	}

	// The paper attaches an explicit MOAS list whenever a prefix is
	// multi-origin; single-origin routes rely on the implicit rule
	// ("Routes that originate from a single AS need not attach a MOAS
	// list", §4.3).
	announce := core.List{}
	if len(cfg.Scenario.Origins) > 1 {
		announce = valid
	}
	for _, origin := range cfg.Scenario.Origins {
		if err := net.Originate(origin, VictimPrefix, announce); err != nil {
			return RunResult{}, fmt.Errorf("experiment: originate: %w", err)
		}
	}
	// ColdStart announces valid and false routes into a fresh network
	// simultaneously (the paper's SSFnet setup); otherwise the valid
	// announcements converge first and the hijack hits an operating
	// network, where prefer-oldest selection shields tied paths.
	if !cfg.ColdStart {
		if err := net.Run(); err != nil {
			return RunResult{}, fmt.Errorf("experiment: converge valid routes: %w", err)
		}
	}
	for _, attacker := range cfg.Scenario.Attackers {
		forged := core.List{}
		if cfg.ForgeSupersetList {
			forged = valid.WithOrigin(attacker)
		}
		if err := net.OriginateInvalid(attacker, VictimPrefix, forged); err != nil {
			return RunResult{}, fmt.Errorf("experiment: attack: %w", err)
		}
	}
	if err := net.Run(); err != nil {
		return RunResult{}, fmt.Errorf("experiment: run: %w", err)
	}
	census := net.TakeCensus(VictimPrefix, valid)
	forwarding := net.TakeForwardingCensus(VictimPrefix, valid)
	alarms := 0
	for _, asn := range net.Nodes() {
		alarms += net.Node(asn).AlarmCount()
	}
	return RunResult{
		Census:          census,
		Forwarding:      forwarding,
		Alarms:          alarms,
		AlarmClasses:    net.AlarmClasses(),
		Messages:        net.MessageCount(),
		ConvergeVirtual: net.Engine().Now(),
	}, nil
}

func applyDetection(net *simbgp.Network, cfg RunConfig) error {
	switch cfg.Detection {
	case DetectionOff:
		return nil
	case DetectionFull:
		for _, asn := range net.Nodes() {
			if err := net.SetMode(asn, simbgp.ModeDetect); err != nil {
				return err
			}
		}
		return nil
	case DetectionPartial:
		frac := cfg.DeployFraction
		if frac <= 0 || frac > 1 {
			return fmt.Errorf("experiment: partial deployment fraction %v out of (0,1]", frac)
		}
		nodes := net.Nodes()
		rng := rand.New(rand.NewSource(cfg.Scenario.DeploySeed))
		perm := rng.Perm(len(nodes))
		capable := int(float64(len(nodes))*frac + 0.5)
		for _, idx := range perm[:capable] {
			if err := net.SetMode(nodes[idx], simbgp.ModeDetect); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("experiment: unknown detection mode %v", cfg.Detection)
	}
}

// Selections generates the paper's 15-run scheme: originSets distinct
// origin selections (from stub ASes) and, for each, attackerSets
// attacker selections (from all ASes, excluding the chosen origins).
//
// Multi-origin selections draw only from stubs with 2-octet ASNs:
// explicit MOAS-list communities carry origins in a 16-bit field and
// substitute AS_TRANS above it, so a 4-byte origin could not be listed
// faithfully. Paper topologies assign only small ASNs, making the
// filter a no-op there; on internet-scale power-law graphs it keeps
// victims among the (low-numbered, early-arrival) ASes.
func Selections(topo *topology.SampleResult, numOrigins, numAttackers, originSets, attackerSets int, seed int64) ([]Scenario, error) {
	stubs := topo.StubASes()
	if numOrigins > 1 {
		listable := make([]astypes.ASN, 0, len(stubs))
		for _, a := range stubs {
			if a <= astypes.Max2Octet {
				listable = append(listable, a)
			}
		}
		stubs = listable
	}
	if len(stubs) < numOrigins {
		return nil, fmt.Errorf("experiment: %d eligible stubs < %d origins", len(stubs), numOrigins)
	}
	all := topo.Graph.Nodes()
	if len(all)-numOrigins < numAttackers {
		return nil, fmt.Errorf("experiment: not enough ASes for %d attackers", numAttackers)
	}
	rng := rand.New(rand.NewSource(seed))
	scenarios := make([]Scenario, 0, originSets*attackerSets)
	for o := 0; o < originSets; o++ {
		origins := pick(rng, stubs, numOrigins, nil)
		originSet := make(map[astypes.ASN]bool, len(origins))
		for _, a := range origins {
			originSet[a] = true
		}
		for a := 0; a < attackerSets; a++ {
			attackers := pick(rng, all, numAttackers, originSet)
			scenarios = append(scenarios, Scenario{
				Origins:    origins,
				Attackers:  attackers,
				DeploySeed: rng.Int63(),
			})
		}
	}
	return scenarios, nil
}

// pick selects n distinct elements of pool uniformly at random,
// excluding members of skip.
func pick(rng *rand.Rand, pool []astypes.ASN, n int, skip map[astypes.ASN]bool) []astypes.ASN {
	var eligible []astypes.ASN
	for _, a := range pool {
		if !skip[a] {
			eligible = append(eligible, a)
		}
	}
	perm := rng.Perm(len(eligible))
	out := make([]astypes.ASN, n)
	for i := 0; i < n; i++ {
		out[i] = eligible[perm[i]]
	}
	return astypes.SortASNs(out)
}

// ModeSpec names one detection configuration of a sweep.
type ModeSpec struct {
	Label          string
	Detection      Detection
	DeployFraction float64
}

// SweepConfig describes one curve family: a topology, an origin count,
// attacker counts to sweep, and the detection modes to compare on
// identical scenarios.
type SweepConfig struct {
	Topology       *topology.SampleResult
	TopologyName   string
	NumOrigins     int
	AttackerCounts []int
	Modes          []ModeSpec
	// OriginSets x AttackerSets runs per point; defaults to the paper's
	// 3 x 5 when zero.
	OriginSets   int
	AttackerSets int
	Seed         int64
	// Parallelism bounds concurrent simulation runs; defaults to
	// GOMAXPROCS.
	Parallelism int
	// ForgeSupersetList propagates to every run.
	ForgeSupersetList bool
	// ColdStart propagates to every run.
	ColdStart bool
	// StripMOASInTransit propagates to every run.
	StripMOASInTransit bool
	// ValleyFree propagates to every run.
	ValleyFree bool
	// ROACoverage propagates to every run (simulator-side RPKI
	// deployment fraction; see RunConfig.ROACoverage).
	ROACoverage float64
	// FreshNetworks propagates RunConfig.FreshNetwork to every run
	// (benchmark baseline knob).
	FreshNetworks bool
}

// Point is one x-position of a sweep: the attacker percentage and, per
// mode, the mean adoption percentage over the 15 runs.
type Point struct {
	NumAttackers int
	AttackerPct  float64
	// MeanFalsePct is indexed like SweepConfig.Modes.
	MeanFalsePct []float64
	// MeanAlarms is the mean total alarms raised, per mode.
	MeanAlarms []float64
	// MeanMessages is the mean UPDATE deliveries to quiescence, per mode
	// (the protocol-overhead view of detection).
	MeanMessages []float64
	// StdDevFalsePct is the per-mode standard deviation of the adoption
	// percentage across the 15 runs — the figure's error bars.
	StdDevFalsePct []float64
	// MeanForwardPct is the mean traffic-level hijack percentage per
	// mode (>= MeanFalsePct: it additionally counts nodes whose packets
	// transit an attacker).
	MeanForwardPct []float64
	// AlarmClassTotals sums the per-class alarm tallies over the
	// point's runs, indexed [mode][class] in rpki.Class order.
	AlarmClassTotals [][rpki.NumClasses]uint64
	// FalseAlarmPct is, per mode, the percentage of the point's alarms
	// whose class fell below likely-hijack. Every simulated alarm stems
	// from a real forged origin, so under ROA coverage this is the
	// sweep's false-alarm (missed-classification) rate; 0 when the mode
	// raised no alarms.
	FalseAlarmPct []float64
}

// SweepResult is a full curve family.
type SweepResult struct {
	TopologyName string
	NumOrigins   int
	Modes        []ModeSpec
	Points       []Point
}

// Sweep runs the full curve family, parallelizing across runs.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	if cfg.OriginSets <= 0 {
		cfg.OriginSets = 3
	}
	if cfg.AttackerSets <= 0 {
		cfg.AttackerSets = 5
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if len(cfg.Modes) == 0 {
		return nil, fmt.Errorf("experiment: sweep with no modes")
	}
	total := cfg.Topology.Graph.NumNodes()

	type job struct {
		point, mode, scen int
		cfg               RunConfig
	}
	var jobs []job
	points := make([]Point, len(cfg.AttackerCounts))
	results := make([][][]RunResult, len(cfg.AttackerCounts))
	for pi, count := range cfg.AttackerCounts {
		points[pi] = Point{
			NumAttackers:     count,
			AttackerPct:      100 * float64(count) / float64(total),
			MeanFalsePct:     make([]float64, len(cfg.Modes)),
			MeanAlarms:       make([]float64, len(cfg.Modes)),
			MeanMessages:     make([]float64, len(cfg.Modes)),
			StdDevFalsePct:   make([]float64, len(cfg.Modes)),
			MeanForwardPct:   make([]float64, len(cfg.Modes)),
			AlarmClassTotals: make([][rpki.NumClasses]uint64, len(cfg.Modes)),
			FalseAlarmPct:    make([]float64, len(cfg.Modes)),
		}
		scenarios, err := Selections(cfg.Topology, cfg.NumOrigins, count,
			cfg.OriginSets, cfg.AttackerSets, cfg.Seed+int64(pi)*1_000_003)
		if err != nil {
			return nil, fmt.Errorf("experiment: point %d: %w", pi, err)
		}
		results[pi] = make([][]RunResult, len(cfg.Modes))
		for mi, mode := range cfg.Modes {
			results[pi][mi] = make([]RunResult, len(scenarios))
			for si, scen := range scenarios {
				jobs = append(jobs, job{
					point: pi, mode: mi, scen: si,
					cfg: RunConfig{
						Topology:           cfg.Topology,
						Scenario:           scen,
						Detection:          mode.Detection,
						DeployFraction:     mode.DeployFraction,
						ForgeSupersetList:  cfg.ForgeSupersetList,
						ColdStart:          cfg.ColdStart,
						StripMOASInTransit: cfg.StripMOASInTransit,
						ValleyFree:         cfg.ValleyFree,
						ROACoverage:        cfg.ROACoverage,
						FreshNetwork:       cfg.FreshNetworks,
					},
				})
			}
		}
	}

	// Fail fast: the first Run error closes done, which aborts dispatch
	// and makes the remaining workers drain without executing — a broken
	// config fails in seconds instead of grinding through the full sweep.
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	jobCh := make(chan job)
	done := make(chan struct{})
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				select {
				case <-done:
					continue // drain without running
				default:
				}
				res, err := runJob(j.cfg)
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						close(done)
					})
					continue
				}
				results[j.point][j.mode][j.scen] = res
			}
		}()
	}
dispatch:
	for _, j := range jobs {
		select {
		case jobCh <- j:
		case <-done:
			break dispatch
		}
	}
	close(jobCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	for pi := range points {
		for mi := range cfg.Modes {
			var alarmSum, msgSum float64
			var classSum [rpki.NumClasses]uint64
			pcts := make([]float64, 0, len(results[pi][mi]))
			fwd := make([]float64, 0, len(results[pi][mi]))
			for _, r := range results[pi][mi] {
				pcts = append(pcts, r.Census.FalsePct())
				fwd = append(fwd, r.Forwarding.FalsePct())
				alarmSum += float64(r.Alarms)
				msgSum += float64(r.Messages)
				for ci, v := range r.AlarmClasses {
					classSum[ci] += v
				}
			}
			n := float64(len(results[pi][mi]))
			points[pi].MeanFalsePct[mi] = stats.Mean(pcts)
			points[pi].StdDevFalsePct[mi] = stats.StdDev(pcts)
			points[pi].MeanForwardPct[mi] = stats.Mean(fwd)
			points[pi].MeanAlarms[mi] = alarmSum / n
			points[pi].MeanMessages[mi] = msgSum / n
			points[pi].AlarmClassTotals[mi] = classSum
			var classTotal uint64
			for _, v := range classSum {
				classTotal += v
			}
			if classTotal > 0 {
				points[pi].FalseAlarmPct[mi] =
					100 * float64(classTotal-classSum[rpki.ClassLikelyHijack]) / float64(classTotal)
			}
		}
	}
	return &SweepResult{
		TopologyName: cfg.TopologyName,
		NumOrigins:   cfg.NumOrigins,
		Modes:        cfg.Modes,
		Points:       points,
	}, nil
}

// AttackerCountsFor returns a sweep of attacker counts from one AS up to
// maxPct percent of the topology, suitable as SweepConfig.AttackerCounts.
func AttackerCountsFor(topo *topology.SampleResult, maxPct float64) []int {
	total := topo.Graph.NumNodes()
	maxCount := int(float64(total) * maxPct / 100)
	if maxCount < 1 {
		maxCount = 1
	}
	step := 1
	if maxCount > 12 {
		step = (maxCount + 11) / 12
	}
	var counts []int
	for c := 1; c <= maxCount; c += step {
		counts = append(counts, c)
	}
	if counts[len(counts)-1] != maxCount {
		counts = append(counts, maxCount)
	}
	return counts
}
