package experiment

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	res := &SweepResult{
		TopologyName: "46",
		NumOrigins:   2,
		Modes: []ModeSpec{
			{Label: "normal", Detection: DetectionOff},
			{Label: "full", Detection: DetectionFull},
		},
		Points: []Point{
			{
				NumAttackers: 2,
				AttackerPct:  4.35,
				MeanFalsePct: []float64{36.5, 0.15},
				MeanAlarms:   []float64{0, 12.4},
				MeanMessages: []float64{350, 420},
			},
			{
				NumAttackers: 14,
				AttackerPct:  30.43,
				MeanFalsePct: []float64{51.0, 9.8},
				MeanAlarms:   []float64{0, 33},
				MeanMessages: []float64{500, 610},
			},
		},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) != 3 {
		t.Fatalf("rows = %d", len(records))
	}
	header := records[0]
	if header[0] != "topology" || header[4] != "normal_false_pct" || header[11] != "full_false_pct" {
		t.Errorf("header = %v", header)
	}
	if header[9] != "normal_false_alarm_pct" || header[10] != "normal_alarms_hijack" {
		t.Errorf("class columns: header = %v", header)
	}
	row := records[1]
	if row[0] != "46" || row[1] != "2" || row[2] != "2" || row[4] != "36.500" || row[11] != "0.150" {
		t.Errorf("row = %v", row)
	}
	if records[2][2] != "14" || records[2][11] != "9.800" {
		t.Errorf("row2 = %v", records[2])
	}
}
