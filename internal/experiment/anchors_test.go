package experiment

import (
	"testing"
)

// TestPaperAnchorsFigure9 is the reproduction gate for Figure 9: the
// real sweep on the 46-AS topology must satisfy the paper's shape
// claims within the tolerances recorded in EXPERIMENTS.md.
func TestPaperAnchorsFigure9(t *testing.T) {
	topo := paperSet(t).T46
	res, err := Sweep(SweepConfig{
		Topology:       topo,
		TopologyName:   "46",
		NumOrigins:     1,
		AttackerCounts: AttackerCountsFor(topo, 32),
		Modes: []ModeSpec{
			{Label: "normal", Detection: DetectionOff},
			{Label: "full", Detection: DetectionFull},
		},
		Seed:      42,
		ColdStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 0.15% at ~4%, 9.8% at 30%, ~5x improvement. Tolerances per
	// EXPERIMENTS.md: <=3% low, <=12% high, >=5x factor.
	anchors := Figure9Anchors("normal", "full", 3, 12, 5)
	for _, dev := range CheckAnchors(res, anchors) {
		t.Error(dev)
	}
}

// TestPaperAnchorsFigure11 gates the partial-deployment claims on the
// 63-AS topology.
func TestPaperAnchorsFigure11(t *testing.T) {
	topo := paperSet(t).T63
	res, err := Sweep(SweepConfig{
		Topology:       topo,
		TopologyName:   "63",
		NumOrigins:     1,
		AttackerCounts: AttackerCountsFor(topo, 32),
		Modes: []ModeSpec{
			{Label: "normal", Detection: DetectionOff},
			{Label: "half", Detection: DetectionPartial, DeployFraction: 0.5},
			{Label: "full", Detection: DetectionFull},
		},
		Seed:      42,
		ColdStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: >63% reduction; we gate at 35% (see EXPERIMENTS.md
	// deviation 2).
	anchors := Figure11Anchors("normal", "half", "full", 0.35)
	for _, dev := range CheckAnchors(res, anchors) {
		t.Error(dev)
	}
}

// TestAnchorsReportDeviations verifies the anchor machinery itself
// flags violations.
func TestAnchorsReportDeviations(t *testing.T) {
	res := &SweepResult{
		Modes: []ModeSpec{{Label: "normal"}, {Label: "full"}},
		Points: []Point{{
			NumAttackers: 14,
			AttackerPct:  30,
			MeanFalsePct: []float64{50, 60}, // detection worse!
		}},
	}
	devs := CheckAnchors(res, Figure9Anchors("normal", "full", 3, 12, 5))
	if len(devs) == 0 {
		t.Fatal("broken sweep passed the anchors")
	}
	// Missing modes are reported, not panicked on.
	devs = CheckAnchors(res, Figure9Anchors("nope", "full", 3, 12, 5))
	if len(devs) == 0 {
		t.Error("missing mode not reported")
	}
}
