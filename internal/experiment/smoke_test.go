package experiment

import (
	"testing"

	"repro/internal/topology"
)

func TestSmokeSweepShape(t *testing.T) {
	set, err := topology.BuildPaperTopologies(42)
	if err != nil {
		t.Fatalf("build topologies: %v", err)
	}
	t.Logf("sizes: %v", set.Sizes())
	for _, cold := range []bool{false, true} {
		res, err := Sweep(SweepConfig{
			Topology:       set.T46,
			TopologyName:   "46",
			NumOrigins:     1,
			AttackerCounts: []int{2, 6, 14},
			Modes: []ModeSpec{
				{Label: "normal", Detection: DetectionOff},
				{Label: "full", Detection: DetectionFull},
			},
			Seed:      1,
			ColdStart: cold,
		})
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		for _, p := range res.Points {
			t.Logf("cold=%v attackers=%d (%.1f%%): normal=%.2f%% full=%.2f%% alarms=%.1f",
				cold, p.NumAttackers, p.AttackerPct, p.MeanFalsePct[0], p.MeanFalsePct[1], p.MeanAlarms[1])
			if p.MeanFalsePct[1] > p.MeanFalsePct[0] {
				t.Errorf("detection should not increase false adoption at %d attackers", p.NumAttackers)
			}
		}
	}
}
