package experiment

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/rpki"
	"repro/internal/simbgp"
	"repro/internal/topology"
)

// TestStaleROAChurnDegradesAlarmClass replays the operational hazard of
// RPKI lag: a prefix legitimately moves to a new origin AS, but the
// covering ROA still authorizes only the old origin. The ROA state is
// served over a live RTR session (rpki.Server -> rtr client -> Store),
// and the same origin-change scenario runs against the synced store
// before and after the cache catches up:
//
//   - stale ROA:  the new origin validates Invalid, so every MOAS alarm
//     classifies likely-hijack — a false alarm, there is no attacker;
//   - after the RTR delta lands: the same conflicts validate Valid and
//     degrade to likely-misconfig (the MOAS lists, not the route, are
//     out of date).
//
// The measured stale-phase false-alarm rate is the figure quoted in
// EXPERIMENTS.md.
func TestStaleROAChurnDegradesAlarmClass(t *testing.T) {
	topo, err := topology.GeneratePowerLaw(topology.DefaultPowerLawParams(500), 42)
	if err != nil {
		t.Fatal(err)
	}
	stubs := topo.StubASes()
	oldOrigin, newOrigin := stubs[0], stubs[1]
	if oldOrigin > astypes.Max2Octet || newOrigin > astypes.Max2Octet {
		t.Fatalf("origins %s/%s exceed the RTR wire's 16-bit origin space", oldOrigin, newOrigin)
	}

	// Live RTR plumbing: the store the simulation validates against is
	// fed by a client session, not assembled by hand.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	staleROA := rpki.ROA{Prefix: VictimPrefix, MaxLen: VictimPrefix.Len, Origin: oldOrigin}
	srv := rpki.NewServer(ln, []rpki.ROA{staleROA})
	defer srv.Close()
	store := rpki.NewStore()
	client, err := rpki.NewClient(rpki.ClientConfig{
		Addr:          srv.Addr(),
		Store:         store,
		ReconnectBase: time.Millisecond,
		ReconnectMax:  10 * time.Millisecond,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		client.Run(ctx)
	}()
	defer func() {
		cancel()
		<-clientDone
	}()
	waitFor(t, "initial RTR sync", func() bool { return store.Len() == 1 })

	// Both origins are legitimate during the handover, so the resolver's
	// ground truth lists them both: detection raises alarms on the MOAS
	// conflict but purges nothing.
	truth := core.NewList(oldOrigin, newOrigin)
	cfg := simbgp.Config{
		Topology: topo.Graph,
		Resolver: simbgp.ResolverFunc(func(p astypes.Prefix) (core.List, bool) {
			return truth, p == VictimPrefix
		}),
		RPKI: store,
	}
	net1, err := simbgp.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}

	originChange := func() [rpki.NumClasses]uint64 {
		if err := net1.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		for _, asn := range net1.Nodes() {
			if err := net1.SetMode(asn, simbgp.ModeDetect); err != nil {
				t.Fatal(err)
			}
		}
		// The old origin's announcement converges first (the operating
		// network), then the new origin takes over announcing the prefix.
		if err := net1.Originate(oldOrigin, VictimPrefix, core.List{}); err != nil {
			t.Fatal(err)
		}
		if err := net1.Run(); err != nil {
			t.Fatal(err)
		}
		if err := net1.Originate(newOrigin, VictimPrefix, core.List{}); err != nil {
			t.Fatal(err)
		}
		if err := net1.Run(); err != nil {
			t.Fatal(err)
		}
		return net1.AlarmClasses()
	}

	stale := originChange()
	staleTotal := stale[rpki.ClassBenignMOAS] + stale[rpki.ClassLikelyMisconfig] + stale[rpki.ClassLikelyHijack]
	if staleTotal == 0 {
		t.Fatal("origin change raised no alarms")
	}
	if stale[rpki.ClassLikelyHijack] == 0 {
		t.Fatal("stale ROA raised no likely-hijack alarms — nothing to degrade")
	}
	// Every alarm stems from a legitimate origin change, so the hijack
	// share IS the false-alarm rate of the stale phase.
	staleFalsePct := 100 * float64(stale[rpki.ClassLikelyHijack]) / float64(staleTotal)
	if staleFalsePct < 50 {
		t.Errorf("stale-phase false-alarm rate %.1f%%, want the hijack class dominant", staleFalsePct)
	}

	// The RPKI catches up with the origin change over the live session:
	// announce the new origin's ROA, retire the old one.
	srv.Announce(rpki.ROA{Prefix: VictimPrefix, MaxLen: VictimPrefix.Len, Origin: newOrigin})
	srv.Withdraw(staleROA)
	waitFor(t, "ROA delta to land", func() bool {
		return store.Validate(VictimPrefix, newOrigin) == rpki.Valid &&
			store.Validate(VictimPrefix, oldOrigin) == rpki.Invalid
	})

	fresh := originChange()
	if fresh[rpki.ClassLikelyHijack] >= stale[rpki.ClassLikelyHijack] {
		t.Errorf("hijack alarms did not degrade: stale %d, fresh %d",
			stale[rpki.ClassLikelyHijack], fresh[rpki.ClassLikelyHijack])
	}
	if fresh[rpki.ClassLikelyMisconfig] <= stale[rpki.ClassLikelyMisconfig] {
		t.Errorf("misconfig alarms did not absorb the degradation: stale %d, fresh %d",
			stale[rpki.ClassLikelyMisconfig], fresh[rpki.ClassLikelyMisconfig])
	}
	freshTotal := fresh[rpki.ClassBenignMOAS] + fresh[rpki.ClassLikelyMisconfig] + fresh[rpki.ClassLikelyHijack]
	freshFalsePct := 0.0
	if freshTotal > 0 {
		freshFalsePct = 100 * float64(fresh[rpki.ClassLikelyHijack]) / float64(freshTotal)
	}
	t.Logf("stale ROA: %d alarms, %.1f%% misclassified likely-hijack; after RTR catch-up: %d alarms, %.1f%% likely-hijack (classes %v -> %v)",
		staleTotal, staleFalsePct, freshTotal, freshFalsePct, stale, fresh)
}

// waitFor polls cond with a deadline, the rtr test idiom.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
