package experiment

import (
	"fmt"
	"math"
)

// Paper anchors: the quantitative claims of §5 that this reproduction
// gates on. Absolute equality with the paper is not expected (the
// substrate differs; see EXPERIMENTS.md), so each anchor expresses a
// *shape* condition with an explicit tolerance.

// Anchor is one checkable claim about a sweep result.
type Anchor struct {
	// Name identifies the claim in failure messages.
	Name string
	// Check returns a non-empty deviation description when the claim
	// does not hold.
	Check func(res *SweepResult) string
}

// CheckAnchors evaluates every anchor, returning the deviations.
func CheckAnchors(res *SweepResult, anchors []Anchor) []string {
	var out []string
	for _, a := range anchors {
		if msg := a.Check(res); msg != "" {
			out = append(out, fmt.Sprintf("%s: %s", a.Name, msg))
		}
	}
	return out
}

// modeIndex finds a mode by label; -1 if absent.
func modeIndex(res *SweepResult, label string) int {
	for i, m := range res.Modes {
		if m.Label == label {
			return i
		}
	}
	return -1
}

// pointNear returns the sweep point closest to the given attacker
// percentage.
func pointNear(res *SweepResult, pct float64) *Point {
	if len(res.Points) == 0 {
		return nil
	}
	best := &res.Points[0]
	for i := range res.Points {
		if math.Abs(res.Points[i].AttackerPct-pct) < math.Abs(best.AttackerPct-pct) {
			best = &res.Points[i]
		}
	}
	return best
}

// Figure9Anchors encode the §5.2 claims for a normal-vs-full sweep (the
// mode labels must be normalLabel and fullLabel):
//
//  1. detection never exceeds normal BGP at any point;
//  2. near 4% attackers, detection holds adoption under maxLowPct
//     (paper: 0.15%; tolerance admits topology differences);
//  3. near 30% attackers, detection holds adoption under maxHighPct
//     (paper: 9.8%);
//  4. near 30% attackers, detection improves on normal BGP by at least
//     minFactor (paper: ~5x).
func Figure9Anchors(normalLabel, fullLabel string, maxLowPct, maxHighPct, minFactor float64) []Anchor {
	return []Anchor{
		{
			Name: "detection-never-worse",
			Check: func(res *SweepResult) string {
				ni, fi := modeIndex(res, normalLabel), modeIndex(res, fullLabel)
				if ni < 0 || fi < 0 {
					return "modes missing"
				}
				for _, p := range res.Points {
					if p.MeanFalsePct[fi] > p.MeanFalsePct[ni]+1e-9 {
						return fmt.Sprintf("at %d attackers: %.2f%% > %.2f%%",
							p.NumAttackers, p.MeanFalsePct[fi], p.MeanFalsePct[ni])
					}
				}
				return ""
			},
		},
		{
			Name: "low-attackers-contained",
			Check: func(res *SweepResult) string {
				fi := modeIndex(res, fullLabel)
				p := pointNear(res, 4)
				if fi < 0 || p == nil {
					return "modes or points missing"
				}
				if p.MeanFalsePct[fi] > maxLowPct {
					return fmt.Sprintf("%.2f%% at ~4%% attackers (limit %.2f%%)",
						p.MeanFalsePct[fi], maxLowPct)
				}
				return ""
			},
		},
		{
			Name: "high-attackers-contained",
			Check: func(res *SweepResult) string {
				fi := modeIndex(res, fullLabel)
				p := pointNear(res, 30)
				if fi < 0 || p == nil {
					return "modes or points missing"
				}
				if p.MeanFalsePct[fi] > maxHighPct {
					return fmt.Sprintf("%.2f%% at ~30%% attackers (limit %.2f%%)",
						p.MeanFalsePct[fi], maxHighPct)
				}
				return ""
			},
		},
		{
			Name: "improvement-factor",
			Check: func(res *SweepResult) string {
				ni, fi := modeIndex(res, normalLabel), modeIndex(res, fullLabel)
				p := pointNear(res, 30)
				if ni < 0 || fi < 0 || p == nil {
					return "modes or points missing"
				}
				full := p.MeanFalsePct[fi]
				if full == 0 {
					return "" // infinite improvement
				}
				if factor := p.MeanFalsePct[ni] / full; factor < minFactor {
					return fmt.Sprintf("factor %.1fx at ~30%% attackers (want >= %.1fx)",
						factor, minFactor)
				}
				return ""
			},
		},
	}
}

// Figure11Anchors encode the §5.4 claims for a
// normal/partial/full sweep: ordering normal >= partial >= full at
// every point, and partial removing at least minReduction (fraction of
// normal's adoption) near 30% attackers (paper: >63%; we gate at a
// looser bound).
func Figure11Anchors(normalLabel, halfLabel, fullLabel string, minReduction float64) []Anchor {
	return []Anchor{
		{
			Name: "deployment-ordering",
			Check: func(res *SweepResult) string {
				ni := modeIndex(res, normalLabel)
				hi := modeIndex(res, halfLabel)
				fi := modeIndex(res, fullLabel)
				if ni < 0 || hi < 0 || fi < 0 {
					return "modes missing"
				}
				for _, p := range res.Points {
					if p.MeanFalsePct[hi] > p.MeanFalsePct[ni]+1e-9 ||
						p.MeanFalsePct[fi] > p.MeanFalsePct[hi]+5 {
						return fmt.Sprintf("ordering broken at %d attackers: %.2f / %.2f / %.2f",
							p.NumAttackers, p.MeanFalsePct[ni], p.MeanFalsePct[hi], p.MeanFalsePct[fi])
					}
				}
				return ""
			},
		},
		{
			Name: "partial-reduction",
			Check: func(res *SweepResult) string {
				ni, hi := modeIndex(res, normalLabel), modeIndex(res, halfLabel)
				p := pointNear(res, 30)
				if ni < 0 || hi < 0 || p == nil {
					return "modes or points missing"
				}
				if p.MeanFalsePct[ni] == 0 {
					return ""
				}
				reduction := 1 - p.MeanFalsePct[hi]/p.MeanFalsePct[ni]
				if reduction < minReduction {
					return fmt.Sprintf("partial deployment removed only %.0f%% of the damage (want >= %.0f%%)",
						100*reduction, 100*minReduction)
				}
				return ""
			},
		},
	}
}
