package experiment

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/astypes"
	"repro/internal/rpki"
	"repro/internal/topology"
)

var (
	topoOnce sync.Once
	topoSet  *topology.PaperSet
	topoErr  error
)

func paperSet(t *testing.T) *topology.PaperSet {
	t.Helper()
	topoOnce.Do(func() {
		topoSet, topoErr = topology.BuildPaperTopologies(42)
	})
	if topoErr != nil {
		t.Fatal(topoErr)
	}
	return topoSet
}

func TestSelectionsScheme(t *testing.T) {
	topo := paperSet(t).T46
	scenarios, err := Selections(topo, 2, 5, 3, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 15 {
		t.Fatalf("scenarios = %d, want 15 (3 origin sets x 5 attacker sets)", len(scenarios))
	}
	stubs := make(map[astypes.ASN]bool)
	for _, s := range topo.StubASes() {
		stubs[s] = true
	}
	originSets := make(map[string]bool)
	for _, sc := range scenarios {
		if len(sc.Origins) != 2 || len(sc.Attackers) != 5 {
			t.Fatalf("scenario sizes: %+v", sc)
		}
		key := ""
		for _, o := range sc.Origins {
			if !stubs[o] {
				t.Errorf("origin %s is not a stub", o)
			}
			key += o.String() + ","
		}
		originSets[key] = true
		seen := make(map[astypes.ASN]bool)
		for _, a := range sc.Attackers {
			if seen[a] {
				t.Errorf("duplicate attacker %s", a)
			}
			seen[a] = true
			for _, o := range sc.Origins {
				if a == o {
					t.Errorf("attacker %s is an origin", a)
				}
			}
		}
	}
	if len(originSets) != 3 {
		t.Errorf("distinct origin sets = %d, want 3", len(originSets))
	}
}

func TestSelectionsValidation(t *testing.T) {
	topo := paperSet(t).T25
	if _, err := Selections(topo, 1000, 1, 1, 1, 1); err == nil {
		t.Error("too many origins accepted")
	}
	if _, err := Selections(topo, 1, 1000, 1, 1, 1); err == nil {
		t.Error("too many attackers accepted")
	}
}

func TestSelectionsDeterministic(t *testing.T) {
	topo := paperSet(t).T46
	a, err := Selections(topo, 1, 3, 2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Selections(topo, 1, 3, 2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].DeploySeed != b[i].DeploySeed {
			t.Fatal("deploy seeds diverge")
		}
		for j := range a[i].Origins {
			if a[i].Origins[j] != b[i].Origins[j] {
				t.Fatal("origins diverge")
			}
		}
		for j := range a[i].Attackers {
			if a[i].Attackers[j] != b[i].Attackers[j] {
				t.Fatal("attackers diverge")
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	topo := paperSet(t).T25
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := Run(RunConfig{Topology: topo}); err == nil {
		t.Error("no origins accepted")
	}
	scen := Scenario{Origins: topo.StubASes()[:1]}
	if _, err := Run(RunConfig{
		Topology: topo, Scenario: scen,
		Detection: DetectionPartial, DeployFraction: 0,
	}); err == nil {
		t.Error("zero partial fraction accepted")
	}
	if _, err := Run(RunConfig{
		Topology: topo, Scenario: scen, Detection: Detection(42),
	}); err == nil {
		t.Error("bogus detection mode accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	topo := paperSet(t).T46
	scenarios, err := Selections(topo, 1, 4, 1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Topology:  topo,
		Scenario:  scenarios[0],
		Detection: DetectionFull,
		ColdStart: true,
	}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("runs diverge: %+v vs %+v", r1, r2)
	}
}

func TestDetectionNeverWorseThanNormal(t *testing.T) {
	topo := paperSet(t).T25
	scenarios, err := Selections(topo, 1, 3, 2, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, cold := range []bool{false, true} {
		for _, scen := range scenarios {
			base := RunConfig{Topology: topo, Scenario: scen, ColdStart: cold}
			normalCfg := base
			normalCfg.Detection = DetectionOff
			fullCfg := base
			fullCfg.Detection = DetectionFull
			normal, err := Run(normalCfg)
			if err != nil {
				t.Fatal(err)
			}
			full, err := Run(fullCfg)
			if err != nil {
				t.Fatal(err)
			}
			if full.Census.AdoptedFalse > normal.Census.AdoptedFalse {
				t.Errorf("cold=%v scen=%+v: detection %d > normal %d adopters",
					cold, scen, full.Census.AdoptedFalse, normal.Census.AdoptedFalse)
			}
			if full.Alarms == 0 && full.Census.AdoptedFalse < normal.Census.AdoptedFalse {
				t.Errorf("detection improved outcome without any alarms")
			}
			if normal.Alarms != 0 {
				t.Errorf("normal BGP raised %d alarms", normal.Alarms)
			}
		}
	}
}

func TestForgedListStillContained(t *testing.T) {
	topo := paperSet(t).T46
	scenarios, err := Selections(topo, 2, 4, 1, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, scen := range scenarios {
		res, err := Run(RunConfig{
			Topology:          topo,
			Scenario:          scen,
			Detection:         DetectionFull,
			ForgeSupersetList: true,
			ColdStart:         true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Forging a superset list must not help the attacker much: the
		// valid origins' list disagrees, so capable nodes still detect.
		if res.Alarms == 0 {
			t.Errorf("forged list raised no alarms: %+v", scen)
		}
		if pct := res.Census.FalsePct(); pct > 30 {
			t.Errorf("forged list adopted by %.1f%% despite full detection", pct)
		}
	}
}

func TestStripMOASAblation(t *testing.T) {
	topo := paperSet(t).T46
	scenarios, err := Selections(topo, 2, 4, 1, 1, 23)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Topology:           topo,
		Scenario:           scenarios[0],
		Detection:          DetectionFull,
		StripMOASInTransit: true,
		ColdStart:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stripping cannot disable detection outright: the implicit-list
	// rule still exposes origin disagreement.
	if res.Alarms == 0 {
		t.Error("no alarms with stripping attackers")
	}
}

func TestSweepShapes(t *testing.T) {
	topo := paperSet(t).T46
	res, err := Sweep(SweepConfig{
		Topology:       topo,
		TopologyName:   "46",
		NumOrigins:     1,
		AttackerCounts: []int{1, 6, 12},
		Modes: []ModeSpec{
			{Label: "normal", Detection: DetectionOff},
			{Label: "half", Detection: DetectionPartial, DeployFraction: 0.5},
			{Label: "full", Detection: DetectionFull},
		},
		Seed:      3,
		ColdStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TopologyName != "46" || res.NumOrigins != 1 || len(res.Points) != 3 {
		t.Fatalf("result meta: %+v", res)
	}
	for _, p := range res.Points {
		normal, half, full := p.MeanFalsePct[0], p.MeanFalsePct[1], p.MeanFalsePct[2]
		if full > normal {
			t.Errorf("attackers=%d: full (%v) worse than normal (%v)", p.NumAttackers, full, normal)
		}
		if half > normal+1e-9 {
			t.Errorf("attackers=%d: half (%v) worse than normal (%v)", p.NumAttackers, half, normal)
		}
		if full > half+5 { // full should generally beat half (tolerance for noise)
			t.Errorf("attackers=%d: full (%v) much worse than half (%v)", p.NumAttackers, full, half)
		}
		if p.AttackerPct <= 0 || p.AttackerPct > 100 {
			t.Errorf("attacker pct = %v", p.AttackerPct)
		}
	}
}

func TestSweepRequiresModes(t *testing.T) {
	if _, err := Sweep(SweepConfig{Topology: paperSet(t).T25, AttackerCounts: []int{1}}); err == nil {
		t.Error("sweep with no modes accepted")
	}
}

func TestSweepAbortsDispatchOnFirstError(t *testing.T) {
	defer func(orig func(RunConfig) (RunResult, error)) { runJob = orig }(runJob)
	var attempted atomic.Int64
	wantErr := errors.New("boom")
	runJob = func(RunConfig) (RunResult, error) {
		attempted.Add(1)
		return RunResult{}, wantErr
	}
	topo := paperSet(t).T46
	_, err := Sweep(SweepConfig{
		Topology:       topo,
		NumOrigins:     1,
		AttackerCounts: []int{1, 6, 12},
		Modes: []ModeSpec{
			{Label: "normal", Detection: DetectionOff},
			{Label: "full", Detection: DetectionFull},
		},
		Seed:        3,
		Parallelism: 2,
		ColdStart:   true,
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Sweep error = %v, want %v", err, wantErr)
	}
	// 3 points × 2 modes × (OriginSets×AttackerSets defaulted to 3×5)
	// scenarios = 90 jobs. With dispatch aborted after the first error,
	// only jobs already in flight or accepted may run: at most one per
	// worker plus the one that failed.
	if got := attempted.Load(); got > 3 {
		t.Errorf("sweep ran %d jobs after first error, want <= 3", got)
	}
}

func TestAttackerCountsFor(t *testing.T) {
	topo := paperSet(t).T46
	counts := AttackerCountsFor(topo, 30)
	if len(counts) == 0 || counts[0] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	maxCount := counts[len(counts)-1]
	if maxCount != int(float64(topo.Graph.NumNodes())*0.30) {
		t.Errorf("max count = %d", maxCount)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Fatalf("counts not increasing: %v", counts)
		}
	}
	// Tiny percentage still yields at least one attacker.
	if got := AttackerCountsFor(topo, 0.5); len(got) == 0 || got[0] != 1 {
		t.Errorf("tiny pct counts = %v", got)
	}
}

func TestPartialDeploymentUsesDeploySeed(t *testing.T) {
	topo := paperSet(t).T63
	scenarios, err := Selections(topo, 1, 8, 1, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	scen := scenarios[0]
	run := func(seed int64) RunResult {
		s := scen
		s.DeploySeed = seed
		res, err := Run(RunConfig{
			Topology:       topo,
			Scenario:       s,
			Detection:      DetectionPartial,
			DeployFraction: 0.5,
			ColdStart:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1a, r1b := run(1), run(1)
	if r1a != r1b {
		t.Error("same deploy seed should reproduce")
	}
	// Different seeds usually deploy different node sets; allow equality
	// of outcome but verify at least the runs complete.
	_ = run(2)
}

func TestValleyFreeSweepRuns(t *testing.T) {
	topo := paperSet(t).T25
	res, err := Sweep(SweepConfig{
		Topology:       topo,
		TopologyName:   "25",
		NumOrigins:     1,
		AttackerCounts: []int{2},
		Modes: []ModeSpec{
			{Label: "normal", Detection: DetectionOff},
			{Label: "full", Detection: DetectionFull},
		},
		Seed:       5,
		ColdStart:  true,
		ValleyFree: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if p.MeanFalsePct[1] > p.MeanFalsePct[0] {
		t.Errorf("detection worse than normal under valley-free: %v vs %v",
			p.MeanFalsePct[1], p.MeanFalsePct[0])
	}
	if len(p.StdDevFalsePct) != 2 {
		t.Errorf("stddev missing: %+v", p)
	}
}

func TestForwardingCensusDominatesRIBCensus(t *testing.T) {
	topo := paperSet(t).T46
	res, err := Sweep(SweepConfig{
		Topology:       topo,
		TopologyName:   "46",
		NumOrigins:     1,
		AttackerCounts: []int{3, 9},
		Modes: []ModeSpec{
			{Label: "normal", Detection: DetectionOff},
			{Label: "full", Detection: DetectionFull},
		},
		Seed:      13,
		ColdStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		for mi := range res.Modes {
			if p.MeanForwardPct[mi]+1e-9 < p.MeanFalsePct[mi] {
				t.Errorf("attackers=%d mode=%d: forwarding %.2f%% < RIB %.2f%%",
					p.NumAttackers, mi, p.MeanForwardPct[mi], p.MeanFalsePct[mi])
			}
		}
	}
}

func TestRunPooledMatchesFresh(t *testing.T) {
	topo := paperSet(t).T46
	scenarios, err := Selections(topo, 2, 5, 1, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, scen := range scenarios {
		for _, det := range []Detection{DetectionOff, DetectionFull, DetectionPartial} {
			cfg := RunConfig{
				Topology:       topo,
				Scenario:       scen,
				Detection:      det,
				DeployFraction: 0.5,
			}
			fresh := cfg
			fresh.FreshNetwork = true
			want, err := Run(fresh)
			if err != nil {
				t.Fatal(err)
			}
			// Run pooled twice so the second draw reuses a network the
			// first one dirtied.
			for i := 0; i < 2; i++ {
				got, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("pooled run %d diverges from fresh (%v): %+v vs %+v", i, det, got, want)
				}
			}
		}
	}
}

// TestSweepParallelismDeterministic is the parallel-vs-serial
// determinism gate: a sweep's result must not depend on worker count.
func TestSweepParallelismDeterministic(t *testing.T) {
	topo := paperSet(t).T46
	base := SweepConfig{
		Topology:       topo,
		TopologyName:   "46",
		NumOrigins:     1,
		AttackerCounts: []int{1, 4},
		Modes: []ModeSpec{
			{Label: "normal", Detection: DetectionOff},
			{Label: "full", Detection: DetectionFull},
		},
		Seed:      21,
		ColdStart: true,
	}
	serial := base
	serial.Parallelism = 1
	want, err := Sweep(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := base
	parallel.Parallelism = 8
	got, err := Sweep(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sweep diverges across parallelism:\n 1: %+v\n 8: %+v", want, got)
	}
	// And pooled must equal the fresh-network baseline at full width.
	baseline := base
	baseline.FreshNetworks = true
	fresh, err := Sweep(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, want) {
		t.Errorf("fresh-network sweep diverges from pooled:\n fresh: %+v\n pooled: %+v", fresh, want)
	}
}

func TestROACoverageClassifiesAlarms(t *testing.T) {
	topo := paperSet(t).T46
	scenarios, err := Selections(topo, 1, 4, 1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Topology:  topo,
		Scenario:  scenarios[0],
		Detection: DetectionFull,
		ColdStart: true,
	}
	sum := func(c [rpki.NumClasses]uint64) uint64 {
		var t uint64
		for _, v := range c {
			t += v
		}
		return t
	}

	// Without ROAs, ROV answers NotFound everywhere: alarms fall back to
	// the MOAS-provenance classes and nothing can be called a hijack.
	uncovered, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uncovered.Alarms == 0 {
		t.Fatal("full detection raised no alarms")
	}
	if got := uncovered.AlarmClasses[rpki.ClassLikelyHijack]; got != 0 {
		t.Errorf("likely-hijack without ROAs = %d", got)
	}
	if got := sum(uncovered.AlarmClasses); got != uint64(uncovered.Alarms) {
		t.Errorf("class tallies %v sum %d, alarms %d", uncovered.AlarmClasses, got, uncovered.Alarms)
	}

	// Full coverage authorizes only the valid origin, so ROV never
	// answers NotFound for the victim prefix: forged announcements
	// validate Invalid (likely-hijack) and alarms triggered by the
	// valid origin's own announcement validate Valid (likely-misconfig)
	// — nothing is left in the benign-moas fallback class.
	cfg.ROACoverage = 1
	covered, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if covered.Alarms == 0 {
		t.Fatal("full detection raised no alarms under coverage")
	}
	if got := covered.AlarmClasses[rpki.ClassLikelyHijack]; got == 0 {
		t.Errorf("no likely-hijack alarms under full coverage: %v", covered.AlarmClasses)
	}
	if got := covered.AlarmClasses[rpki.ClassBenignMOAS]; got != 0 {
		t.Errorf("benign-moas = %d with the prefix fully covered", got)
	}
	if got := sum(covered.AlarmClasses); got != uint64(covered.Alarms) {
		t.Errorf("class tallies %v sum %d, alarms %d", covered.AlarmClasses, got, covered.Alarms)
	}

	cfg.ROACoverage = 1.5
	if _, err := Run(cfg); err == nil {
		t.Error("coverage > 1 accepted")
	}
	cfg.ROACoverage = -0.1
	if _, err := Run(cfg); err == nil {
		t.Error("negative coverage accepted")
	}
}

func TestSweepFalseAlarmRate(t *testing.T) {
	topo := paperSet(t).T25
	res, err := Sweep(SweepConfig{
		Topology:       topo,
		TopologyName:   "25",
		NumOrigins:     1,
		AttackerCounts: []int{2},
		Modes: []ModeSpec{
			{Label: "full", Detection: DetectionFull},
		},
		OriginSets:   1,
		AttackerSets: 2,
		Seed:         7,
		ColdStart:    true,
		ROACoverage:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	var total uint64
	for _, v := range p.AlarmClassTotals[0] {
		total += v
	}
	if total == 0 {
		t.Fatal("sweep collected no classified alarms")
	}
	hijacks := p.AlarmClassTotals[0][rpki.ClassLikelyHijack]
	if hijacks == 0 {
		t.Errorf("class totals %v, want likely-hijack alarms under full coverage", p.AlarmClassTotals[0])
	}
	if p.AlarmClassTotals[0][rpki.ClassBenignMOAS] != 0 {
		t.Errorf("class totals %v, want no benign-moas with the prefix covered", p.AlarmClassTotals[0])
	}
	want := 100 * float64(total-hijacks) / float64(total)
	if p.FalseAlarmPct[0] != want {
		t.Errorf("false-alarm rate %v, want %v", p.FalseAlarmPct[0], want)
	}
}
