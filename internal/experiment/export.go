package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/rpki"
)

// WriteCSV serializes a sweep result as CSV, one row per attacker
// count, with a false-adoption, alarm and message column per mode —
// directly plottable as one of the paper's figures.
func WriteCSV(w io.Writer, res *SweepResult) error {
	cw := csv.NewWriter(w)
	header := []string{"topology", "origins", "attackers", "attacker_pct"}
	for _, m := range res.Modes {
		header = append(header,
			m.Label+"_false_pct",
			m.Label+"_false_pct_stddev",
			m.Label+"_forward_pct",
			m.Label+"_alarms",
			m.Label+"_messages",
			m.Label+"_false_alarm_pct",
			m.Label+"_alarms_hijack",
		)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("write csv header: %w", err)
	}
	for _, p := range res.Points {
		row := []string{
			res.TopologyName,
			strconv.Itoa(res.NumOrigins),
			strconv.Itoa(p.NumAttackers),
			strconv.FormatFloat(p.AttackerPct, 'f', 2, 64),
		}
		for mi := range res.Modes {
			stddev := 0.0
			if mi < len(p.StdDevFalsePct) {
				stddev = p.StdDevFalsePct[mi]
			}
			forward := 0.0
			if mi < len(p.MeanForwardPct) {
				forward = p.MeanForwardPct[mi]
			}
			falseAlarm := 0.0
			if mi < len(p.FalseAlarmPct) {
				falseAlarm = p.FalseAlarmPct[mi]
			}
			var hijacks uint64
			if mi < len(p.AlarmClassTotals) {
				hijacks = p.AlarmClassTotals[mi][rpki.ClassLikelyHijack]
			}
			row = append(row,
				strconv.FormatFloat(p.MeanFalsePct[mi], 'f', 3, 64),
				strconv.FormatFloat(stddev, 'f', 3, 64),
				strconv.FormatFloat(forward, 'f', 3, 64),
				strconv.FormatFloat(p.MeanAlarms[mi], 'f', 2, 64),
				strconv.FormatFloat(p.MeanMessages[mi], 'f', 1, 64),
				strconv.FormatFloat(falseAlarm, 'f', 3, 64),
				strconv.FormatUint(hijacks, 10),
			)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("flush csv: %w", err)
	}
	return nil
}
