package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/astypes"
)

func TestEventJSONRoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 3, Nanos: 1700000000000000000, Span: 12, Kind: KindRecv, Node: 100, Peer: 65001, Origin: 65001, Prefix: testPrefix, Aux: 2},
		{Seq: 9, VNanos: 450000, Kind: KindValidate, Detail: DetailOriginNotListed, Node: 23, Peer: 7, Origin: 64999, Prefix: testPrefix},
		{Kind: KindRIB, Detail: DetailReplaced, Node: 1, Prefix: astypes.MustPrefix(0x0a000000, 8)},
		{Kind: KindExport, Detail: DetailWithdrawal, Node: 65535, Peer: 65535, Origin: 65535, Aux: 1<<32 - 1},
		{Kind: KindAlarm, Detail: DetailConflict, Node: 100, Peer: 64999, Origin: 64999, Prefix: testPrefix, Aux: 0},
	}
	for _, e := range events {
		buf := AppendEventJSON(nil, &e)
		got, err := DecodeEventJSON(buf)
		if err != nil {
			t.Fatalf("decode %s: %v", buf, err)
		}
		if got != e {
			t.Errorf("round trip: got %+v, want %+v\n  json: %s", got, e, buf)
		}
	}
}

func TestDecodeEventJSONErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"{",
		`{"kind":"nonsense"}`,
		`{"kind":"recv","detail":"nonsense"}`,
		`{"kind":"recv","prefix":"not-a-prefix"}`,
		`{"kind":"recv","node":"string"}`,
	} {
		if _, err := DecodeEventJSON([]byte(bad)); err == nil {
			t.Errorf("DecodeEventJSON(%q): want error, got nil", bad)
		}
	}
}

func TestEventMarshalViaEncodingJSON(t *testing.T) {
	e := Event{Seq: 5, VNanos: 99, Span: 2, Kind: KindRIB, Detail: DetailInstalled, Node: 42, Prefix: testPrefix}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if want := string(AppendEventJSON(nil, &e)); string(data) != want {
		t.Errorf("json.Marshal: got %s, want %s", data, want)
	}
	var back Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != e {
		t.Errorf("unmarshal: got %+v, want %+v", back, e)
	}
}

func TestBundleJSONRoundTrip(t *testing.T) {
	b := AlarmBundle{
		ID: 2, VNanos: 1234, Span: 7, Node: 100, FromPeer: 64999, Origin: 64999,
		Prefix: "131.179.0.0/16", Verdict: "conflict", Note: "vantage-3",
		Existing: []uint32{65001}, Received: []uint32{64999}, Path: []uint32{64999},
		Origins: []uint32{64999, 65001},
		Timeline: []Event{
			{Span: 7, Kind: KindRecv, Node: 100, Peer: 64999, Origin: 64999, Prefix: testPrefix},
			{Span: 7, Kind: KindAlarm, Detail: DetailConflict, Node: 100, Peer: 64999, Origin: 64999, Prefix: testPrefix},
		},
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back AlarmBundle
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Prefix != b.Prefix || back.Verdict != b.Verdict || back.Note != b.Note {
		t.Errorf("bundle fields lost: %+v", back)
	}
	if len(back.Timeline) != 2 || back.Timeline[0] != b.Timeline[0] || back.Timeline[1] != b.Timeline[1] {
		t.Errorf("timeline lost: %+v", back.Timeline)
	}
}

func TestAppendEventTextGolden(t *testing.T) {
	// Virtual-time (simulator) rendering: fixed columns, no wall clock.
	e := Event{VNanos: 45_000_000, Span: 3, Kind: KindRecv, Detail: DetailWithdrawal,
		Node: 23, Peer: 7, Origin: 23, Prefix: testPrefix, Aux: 1}
	got := string(AppendEventText(nil, &e))
	want := "[     45ms] span=3    AS23    recv      131.179.0.0/16     peer=AS7     origin=AS23    aux=1 withdrawal\n"
	if got != want {
		t.Errorf("text render:\n got %q\nwant %q", got, want)
	}

	// Wall-clock rendering carries the RFC3339Nano stamp.
	w := Event{Nanos: 1700000000000000000, Kind: KindAlarm, Detail: DetailConflict, Node: 100, Prefix: testPrefix}
	if s := string(AppendEventText(nil, &w)); !strings.Contains(s, "2023-11-14T22:13:20Z") || !strings.Contains(s, "alarm") {
		t.Errorf("wall text render: %q", s)
	}
}

func TestAppendBundleText(t *testing.T) {
	b := AlarmBundle{
		ID: 1, VNanos: 45_000_000, Span: 7, Node: 100, FromPeer: 64999, Origin: 64999,
		Prefix: "131.179.0.0/16", Verdict: "conflict", Note: "sim",
		Existing: []uint32{65001}, Received: []uint32{64999},
		Path:    []uint32{64999},
		Origins: []uint32{64999, 65001},
	}
	got := string(AppendBundleText(nil, &b))
	for _, want := range []string{
		"alarm #1: MOAS conflict for 131.179.0.0/16 at AS100",
		"45ms (virtual)",
		"origin AS64999 from peer AS64999 (span 7)",
		"existing {65001} vs received {64999}",
		"path:     64999",
		"origins:  {64999, 65001}",
		"note:     sim",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("bundle text missing %q:\n%s", want, got)
		}
	}
}
