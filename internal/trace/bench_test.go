package trace

import "testing"

// BenchmarkTraceRecord measures the enabled record path — the cost
// every traced message pays at each pipeline stage. The acceptance bar
// is 0 allocs/op.
func BenchmarkTraceRecord(b *testing.B) {
	r := NewRecorder(4096) // wall clock on: the live-path configuration
	e := testEvent(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(e)
	}
}

// BenchmarkTraceRecordDisabled is the baseline an untraced run pays on
// the session receive path: one atomic load, 0 allocs, a few ns.
func BenchmarkTraceRecordDisabled(b *testing.B) {
	r := NewRecorder(4096)
	r.SetEnabled(false)
	e := testEvent(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(e)
	}
}

// BenchmarkTraceRecordNil is the cost with tracing absent entirely (nil
// recorder), the default for binaries built without -trace-events.
func BenchmarkTraceRecordNil(b *testing.B) {
	var r *Recorder
	e := testEvent(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(e)
	}
}

// BenchmarkTraceAppendJSON measures the admin-endpoint event encoder.
func BenchmarkTraceAppendJSON(b *testing.B) {
	e := testEvent(1)
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEventJSON(buf[:0], &e)
	}
}
