// Admin-endpoint handlers for the flight recorder. Routes plugs into
// the telemetry admin server's Debug map (telemetry.AdminConfig) so
// every binary that serves /metrics can also serve its trace ring and
// alarm forensics.
package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// Routes returns the debug handlers for a recorder, keyed by URL
// pattern in the form http.ServeMux expects:
//
//	/debug/trace      recent ring events; text by default, ?format=json
//	                  for one JSON object per line, ?n= to limit count
//	/debug/alarms     all retained forensic bundles as a JSON array;
//	                  ?span= keeps only bundles for that message span
//	                  (how /debug/status exemplars resolve to bundles)
//	/debug/alarms/    a single bundle by ID (/debug/alarms/3)
//
// A nil recorder yields handlers that answer 503, so wiring is
// unconditional at call sites.
func Routes(r *Recorder) map[string]http.Handler {
	return map[string]http.Handler{
		"/debug/trace":   traceHandler{r},
		"/debug/alarms":  alarmListHandler{r},
		"/debug/alarms/": alarmHandler{r},
	}
}

func recorderUnavailable(w http.ResponseWriter, r *Recorder) bool {
	if r == nil {
		http.Error(w, "tracing not enabled", http.StatusServiceUnavailable)
		return true
	}
	return false
}

type traceHandler struct{ rec *Recorder }

func (h traceHandler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if recorderUnavailable(w, h.rec) {
		return
	}
	events := h.rec.Events()
	if s := req.URL.Query().Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "invalid n", http.StatusBadRequest)
			return
		}
		if n < len(events) {
			events = events[len(events)-n:]
		}
	}
	var buf []byte
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		buf = append(buf, '[')
		for i := range events {
			if i > 0 {
				buf = append(buf, ',', '\n')
			}
			buf = AppendEventJSON(buf, &events[i])
		}
		buf = append(buf, ']', '\n')
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for i := range events {
			buf = AppendEventText(buf, &events[i])
		}
	}
	w.Write(buf)
}

type alarmListHandler struct{ rec *Recorder }

func (h alarmListHandler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if recorderUnavailable(w, h.rec) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	bundles := h.rec.Alarms()
	if s := req.URL.Query().Get("span"); s != "" {
		span, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "invalid span", http.StatusBadRequest)
			return
		}
		kept := bundles[:0]
		for _, b := range bundles {
			if b.Span == span {
				kept = append(kept, b)
			}
		}
		bundles = kept
	}
	if bundles == nil {
		bundles = []AlarmBundle{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(bundles)
}

type alarmHandler struct{ rec *Recorder }

func (h alarmHandler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if recorderUnavailable(w, h.rec) {
		return
	}
	idStr := strings.TrimPrefix(req.URL.Path, "/debug/alarms/")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 {
		http.Error(w, "invalid alarm id", http.StatusBadRequest)
		return
	}
	b, ok := h.rec.Alarm(id)
	if !ok {
		http.Error(w, "no such alarm (evicted or never raised)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(b)
}
