package trace

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func serveRoute(t *testing.T, routes map[string]http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	mux := http.NewServeMux()
	for pattern, h := range routes {
		mux.Handle(pattern, h)
	}
	req := httptest.NewRequest(http.MethodGet, url, nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	return w
}

func TestTraceEndpoint(t *testing.T) {
	r := NewRecorder(16, WithoutWallClock())
	for i := 0; i < 4; i++ {
		r.Record(testEvent(i))
	}
	routes := Routes(r)

	w := serveRoute(t, routes, "/debug/trace")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/trace: status %d", w.Code)
	}
	if body := w.Body.String(); strings.Count(body, "\n") != 4 || !strings.Contains(body, "131.179.0.0/16") {
		t.Errorf("text body: %q", body)
	}

	w = serveRoute(t, routes, "/debug/trace?format=json")
	var events []Event
	if err := json.Unmarshal(w.Body.Bytes(), &events); err != nil {
		t.Fatalf("json body: %v\n%s", err, w.Body.String())
	}
	if len(events) != 4 || events[3].Span != 3 {
		t.Errorf("json events: %+v", events)
	}

	w = serveRoute(t, routes, "/debug/trace?n=2&format=json")
	events = nil
	if err := json.Unmarshal(w.Body.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Span != 2 {
		t.Errorf("limited events: %+v", events)
	}

	if w = serveRoute(t, routes, "/debug/trace?n=bogus"); w.Code != http.StatusBadRequest {
		t.Errorf("bad n: status %d", w.Code)
	}
}

func TestAlarmEndpoints(t *testing.T) {
	r := NewRecorder(64, WithoutWallClock())
	routes := Routes(r)

	// Empty alarm list is a JSON array, not null.
	w := serveRoute(t, routes, "/debug/alarms")
	if got := strings.TrimSpace(w.Body.String()); got != "[]" {
		t.Errorf("empty alarms: %q", got)
	}

	r.Record(Event{Span: 7, Kind: KindRecv, Node: 100, Peer: 64999, Origin: 64999, Prefix: testPrefix})
	r.RecordAlarm(testPrefix, AlarmBundle{
		Span: 7, Node: 100, FromPeer: 64999, Origin: 64999, Verdict: "conflict",
		Existing: []uint32{65001}, Received: []uint32{64999}, Path: []uint32{64999},
	})

	w = serveRoute(t, routes, "/debug/alarms")
	var bundles []AlarmBundle
	if err := json.Unmarshal(w.Body.Bytes(), &bundles); err != nil {
		t.Fatalf("alarms json: %v\n%s", err, w.Body.String())
	}
	if len(bundles) != 1 || bundles[0].Prefix != "131.179.0.0/16" || len(bundles[0].Timeline) != 2 {
		t.Fatalf("bundles: %+v", bundles)
	}

	w = serveRoute(t, routes, "/debug/alarms/0")
	var b AlarmBundle
	if err := json.Unmarshal(w.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if b.ID != 0 || b.Origin != 64999 {
		t.Errorf("alarm 0: %+v", b)
	}

	// ?span= filters the list to bundles for one message — the lookup
	// /debug/status exemplars use.
	w = serveRoute(t, routes, "/debug/alarms?span=7")
	bundles = nil
	if err := json.Unmarshal(w.Body.Bytes(), &bundles); err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 || bundles[0].Span != 7 {
		t.Errorf("span=7 bundles: %+v", bundles)
	}
	w = serveRoute(t, routes, "/debug/alarms?span=8")
	if got := strings.TrimSpace(w.Body.String()); got != "[]" {
		t.Errorf("span=8 bundles: %q", got)
	}
	if w = serveRoute(t, routes, "/debug/alarms?span=nope"); w.Code != http.StatusBadRequest {
		t.Errorf("bad span: status %d", w.Code)
	}

	if w = serveRoute(t, routes, "/debug/alarms/99"); w.Code != http.StatusNotFound {
		t.Errorf("missing alarm: status %d", w.Code)
	}
	if w = serveRoute(t, routes, "/debug/alarms/nope"); w.Code != http.StatusBadRequest {
		t.Errorf("bad alarm id: status %d", w.Code)
	}
}

func TestRoutesNilRecorder(t *testing.T) {
	routes := Routes(nil)
	for _, url := range []string{"/debug/trace", "/debug/alarms", "/debug/alarms/0"} {
		if w := serveRoute(t, routes, url); w.Code != http.StatusServiceUnavailable {
			t.Errorf("%s with nil recorder: status %d", url, w.Code)
		}
	}
}
