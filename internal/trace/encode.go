// Event wire formats: a hand-rolled append-style JSON encoder (so
// streaming a trace out of the admin endpoint never allocates per
// event), a stdlib-based decoder for tools that read traces back, and
// the fixed-layout text rendering shared by /debug/trace and the
// simulator's -trace timelines (deterministic byte-for-byte, which the
// moas-sim reproducibility test relies on).
package trace

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"repro/internal/astypes"
)

// AppendEventJSON appends e as one JSON object to dst and returns the
// extended buffer. With sufficient capacity in dst it does not
// allocate. The format round-trips through DecodeEventJSON.
func AppendEventJSON(dst []byte, e *Event) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	dst = append(dst, `,"ns":`...)
	dst = strconv.AppendInt(dst, e.Nanos, 10)
	dst = append(dst, `,"vns":`...)
	dst = strconv.AppendInt(dst, e.VNanos, 10)
	dst = append(dst, `,"span":`...)
	dst = strconv.AppendUint(dst, e.Span, 10)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, e.Kind.String()...)
	dst = append(dst, `","detail":"`...)
	dst = append(dst, e.Detail.String()...)
	dst = append(dst, `","node":`...)
	dst = strconv.AppendUint(dst, uint64(e.Node), 10)
	dst = append(dst, `,"peer":`...)
	dst = strconv.AppendUint(dst, uint64(e.Peer), 10)
	dst = append(dst, `,"origin":`...)
	dst = strconv.AppendUint(dst, uint64(e.Origin), 10)
	dst = append(dst, `,"prefix":"`...)
	dst = appendPrefix(dst, e.Prefix)
	dst = append(dst, `","aux":`...)
	dst = strconv.AppendUint(dst, uint64(e.Aux), 10)
	dst = append(dst, '}')
	return dst
}

// appendPrefix renders a.b.c.d/len without the fmt machinery (and so
// without allocating).
func appendPrefix(dst []byte, p astypes.Prefix) []byte {
	dst = strconv.AppendUint(dst, uint64(p.Addr>>24), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(p.Addr>>16&0xff), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(p.Addr>>8&0xff), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(p.Addr&0xff), 10)
	dst = append(dst, '/')
	dst = strconv.AppendUint(dst, uint64(p.Len), 10)
	return dst
}

var kindNames = map[string]Kind{
	"recv":     KindRecv,
	"validate": KindValidate,
	"rib":      KindRIB,
	"export":   KindExport,
	"alarm":    KindAlarm,
}

var detailNames = map[string]Detail{
	"":                  DetailNone,
	"consistent":        DetailConsistent,
	"conflict":          DetailConflict,
	"origin-not-listed": DetailOriginNotListed,
	"rejected":          DetailRejected,
	"installed":         DetailInstalled,
	"replaced":          DetailReplaced,
	"withdrawn":         DetailWithdrawn,
	"advertise":         DetailAdvertise,
	"withdrawal":        DetailWithdrawal,
}

// DecodeEventJSON parses one event in the AppendEventJSON format.
func DecodeEventJSON(data []byte) (Event, error) {
	var raw struct {
		Seq    uint64 `json:"seq"`
		Ns     int64  `json:"ns"`
		Vns    int64  `json:"vns"`
		Span   uint64 `json:"span"`
		Kind   string `json:"kind"`
		Detail string `json:"detail"`
		Node   uint32 `json:"node"`
		Peer   uint32 `json:"peer"`
		Origin uint32 `json:"origin"`
		Prefix string `json:"prefix"`
		Aux    uint32 `json:"aux"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return Event{}, fmt.Errorf("trace: decode event: %w", err)
	}
	kind, ok := kindNames[raw.Kind]
	if !ok {
		return Event{}, fmt.Errorf("trace: decode event: unknown kind %q", raw.Kind)
	}
	detail, ok := detailNames[raw.Detail]
	if !ok {
		return Event{}, fmt.Errorf("trace: decode event: unknown detail %q", raw.Detail)
	}
	e := Event{
		Seq:    raw.Seq,
		Nanos:  raw.Ns,
		VNanos: raw.Vns,
		Span:   raw.Span,
		Kind:   kind,
		Detail: detail,
		Node:   astypes.ASN(raw.Node),
		Peer:   astypes.ASN(raw.Peer),
		Origin: astypes.ASN(raw.Origin),
		Aux:    raw.Aux,
	}
	if raw.Prefix != "" {
		p, err := astypes.ParsePrefix(raw.Prefix)
		if err != nil {
			return Event{}, fmt.Errorf("trace: decode event: %w", err)
		}
		e.Prefix = p
	}
	return e, nil
}

// MarshalJSON renders the event via AppendEventJSON, so bundles and
// event lists marshalled with encoding/json use the same format the
// zero-allocation encoder emits.
func (e Event) MarshalJSON() ([]byte, error) {
	return AppendEventJSON(nil, &e), nil
}

// UnmarshalJSON parses the AppendEventJSON format.
func (e *Event) UnmarshalJSON(data []byte) error {
	ev, err := DecodeEventJSON(data)
	if err != nil {
		return err
	}
	*e = ev
	return nil
}

// AppendEventText appends the fixed one-line text rendering of e:
//
//	[     45ms] span=3    AS23    recv      131.179.0.0/16     peer=AS7     origin=AS23    aux=1 withdrawal
//
// The timestamp column is the virtual time when no wall time is set
// (simulator traces), else the wall clock in RFC3339Nano. The layout is
// deterministic: identical events render to identical bytes.
func AppendEventText(dst []byte, e *Event) []byte {
	if e.Nanos != 0 {
		dst = append(dst, '[')
		dst = time.Unix(0, e.Nanos).UTC().AppendFormat(dst, time.RFC3339Nano)
		dst = append(dst, `] `...)
	} else {
		dst = fmt.Appendf(dst, "[%9s] ", time.Duration(e.VNanos))
	}
	dst = fmt.Appendf(dst, "span=%-4d AS%-5d %-9s %-18s peer=AS%-5d origin=AS%-5d aux=%d",
		e.Span, uint32(e.Node), e.Kind, e.Prefix, uint32(e.Peer), uint32(e.Origin), e.Aux)
	if e.Detail != DetailNone {
		dst = append(dst, ' ')
		dst = append(dst, e.Detail.String()...)
	}
	dst = append(dst, '\n')
	return dst
}

// AppendBundleText appends a multi-line human-readable rendering of an
// alarm bundle (without its timeline): the forensic summary an operator
// reads first.
func AppendBundleText(dst []byte, b *AlarmBundle) []byte {
	dst = fmt.Appendf(dst, "alarm #%d: MOAS %s for %s at AS%d\n", b.ID, b.Verdict, b.Prefix, b.Node)
	if b.Class != "" {
		dst = fmt.Appendf(dst, "  class:    %s\n", b.Class)
	}
	if b.Nanos != 0 {
		dst = fmt.Appendf(dst, "  at:       %s\n", time.Unix(0, b.Nanos).UTC().Format(time.RFC3339Nano))
	} else if b.VNanos != 0 {
		dst = fmt.Appendf(dst, "  at:       %s (virtual)\n", time.Duration(b.VNanos))
	}
	dst = fmt.Appendf(dst, "  received: origin AS%d from peer AS%d (span %d)\n", b.Origin, b.FromPeer, b.Span)
	dst = fmt.Appendf(dst, "  lists:    existing %s vs received %s\n", u16Set(b.Existing), u16Set(b.Received))
	dst = fmt.Appendf(dst, "  path:     %s\n", u16Seq(b.Path))
	dst = fmt.Appendf(dst, "  origins:  %s\n", u16Set(b.Origins))
	if b.Note != "" {
		dst = fmt.Appendf(dst, "  note:     %s\n", b.Note)
	}
	return dst
}

// u16Set renders an AS set as {1, 2}; u16Seq renders a path as 1 2 3.
func u16Set(asns []uint32) string {
	out := "{"
	for i, a := range asns {
		if i > 0 {
			out += ", "
		}
		out += strconv.Itoa(int(a))
	}
	return out + "}"
}

func u16Seq(asns []uint32) string {
	out := ""
	for i, a := range asns {
		if i > 0 {
			out += " "
		}
		out += strconv.Itoa(int(a))
	}
	return out
}
