package trace

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/astypes"
)

var testPrefix = astypes.MustPrefix(0x83b30000, 16) // 131.179.0.0/16

func testEvent(i int) Event {
	return Event{
		VNanos: int64(i) * 1000,
		Span:   uint64(i),
		Kind:   KindRecv,
		Detail: DetailNone,
		Node:   100,
		Peer:   65001,
		Origin: 65001,
		Prefix: testPrefix,
		Aux:    uint32(i),
	}
}

func TestRecordAndEvents(t *testing.T) {
	r := NewRecorder(16, WithoutWallClock())
	for i := 0; i < 5; i++ {
		r.Record(testEvent(i))
	}
	events := r.Events()
	if len(events) != 5 {
		t.Fatalf("Events: got %d, want 5", len(events))
	}
	for i, e := range events {
		want := testEvent(i)
		want.Seq = uint64(i)
		if e != want {
			t.Errorf("event %d: got %+v, want %+v", i, e, want)
		}
	}
	if r.Seq() != 5 {
		t.Errorf("Seq: got %d, want 5", r.Seq())
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped: got %d, want 0", r.Dropped())
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRecorder(16, WithoutWallClock())
	const total = 40
	for i := 0; i < total; i++ {
		r.Record(testEvent(i))
	}
	events := r.Events()
	if len(events) != 16 {
		t.Fatalf("Events after wrap: got %d, want 16", len(events))
	}
	// Oldest retained event is total-16; newest is total-1.
	for i, e := range events {
		wantIdx := total - 16 + i
		if e.Span != uint64(wantIdx) || e.Seq != uint64(wantIdx) {
			t.Errorf("event %d: span=%d seq=%d, want both %d", i, e.Span, e.Seq, wantIdx)
		}
	}
	if got := r.Dropped(); got != total-16 {
		t.Errorf("Dropped: got %d, want %d", got, total-16)
	}
}

func TestSizeRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {1000, 1024},
	} {
		if got := NewRecorder(tc.ask).Cap(); got != tc.want {
			t.Errorf("NewRecorder(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestDisabledAndNil(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	nilRec.Record(testEvent(0)) // must not panic
	if nilRec.Events() != nil || nilRec.Seq() != 0 || nilRec.Dropped() != 0 {
		t.Error("nil recorder returned non-zero state")
	}
	if id := nilRec.RecordAlarm(testPrefix, AlarmBundle{}); id != -1 {
		t.Errorf("nil RecordAlarm: got %d, want -1", id)
	}
	if nilRec.Alarms() != nil || nilRec.AlarmCount() != 0 {
		t.Error("nil recorder returned alarms")
	}
	if _, ok := nilRec.Alarm(0); ok {
		t.Error("nil recorder found an alarm")
	}

	r := NewRecorder(16)
	r.SetEnabled(false)
	if r.Enabled() {
		t.Error("disabled recorder reports enabled")
	}
	r.Record(testEvent(0))
	if len(r.Events()) != 0 {
		t.Error("disabled recorder recorded an event")
	}
	if id := r.RecordAlarm(testPrefix, AlarmBundle{}); id != -1 {
		t.Errorf("disabled RecordAlarm: got %d, want -1", id)
	}
	r.SetEnabled(true)
	r.Record(testEvent(1))
	if len(r.Events()) != 1 {
		t.Error("re-enabled recorder did not record")
	}
}

func TestWallClockStamping(t *testing.T) {
	r := NewRecorder(16)
	r.Record(testEvent(0))
	events := r.Events()
	if len(events) != 1 || events[0].Nanos == 0 {
		t.Fatalf("wall-clock recorder left Nanos unset: %+v", events)
	}

	d := NewRecorder(16, WithoutWallClock())
	d.Record(testEvent(0))
	if e := d.Events(); len(e) != 1 || e[0].Nanos != 0 {
		t.Fatalf("WithoutWallClock recorder stamped Nanos: %+v", e)
	}
}

func TestRecordAlarmBundle(t *testing.T) {
	r := NewRecorder(64, WithoutWallClock())
	// Build a plausible timeline: recv + validate for the prefix, plus
	// noise for an unrelated prefix that must not leak into the bundle.
	other := astypes.MustPrefix(0x0a000000, 8)
	r.Record(Event{Span: 7, Kind: KindRecv, Node: 100, Peer: 64999, Origin: 64999, Prefix: testPrefix, Aux: 1})
	r.Record(Event{Span: 3, Kind: KindRecv, Node: 100, Peer: 65001, Origin: 65001, Prefix: other})
	r.Record(Event{Span: 7, Kind: KindValidate, Detail: DetailConflict, Node: 100, Peer: 64999, Origin: 64999, Prefix: testPrefix})

	id := r.RecordAlarm(testPrefix, AlarmBundle{
		VNanos:   42,
		Span:     7,
		Node:     100,
		FromPeer: 64999,
		Origin:   64999,
		Verdict:  "conflict",
		Existing: []uint32{65001},
		Received: []uint32{64999},
		Path:     []uint32{64999},
	})
	if id != 0 {
		t.Fatalf("RecordAlarm: got id %d, want 0", id)
	}
	if r.AlarmCount() != 1 {
		t.Fatalf("AlarmCount: got %d, want 1", r.AlarmCount())
	}
	b, ok := r.Alarm(0)
	if !ok {
		t.Fatal("Alarm(0) not found")
	}
	if b.Prefix != "131.179.0.0/16" {
		t.Errorf("bundle prefix: got %q", b.Prefix)
	}
	if want := []uint32{64999, 65001}; !reflect.DeepEqual(b.Origins, want) {
		t.Errorf("bundle origins: got %v, want %v", b.Origins, want)
	}
	// Timeline: the two testPrefix events plus the alarm event itself,
	// in ring order, excluding the unrelated prefix.
	if len(b.Timeline) != 3 {
		t.Fatalf("timeline: got %d events, want 3: %+v", len(b.Timeline), b.Timeline)
	}
	if b.Timeline[0].Kind != KindRecv || b.Timeline[1].Kind != KindValidate {
		t.Errorf("timeline order wrong: %+v", b.Timeline)
	}
	last := b.Timeline[2]
	if last.Kind != KindAlarm || last.Detail != DetailConflict || last.Aux != 0 {
		t.Errorf("timeline must end with the alarm event: %+v", last)
	}
	for _, e := range b.Timeline {
		if e.Prefix != testPrefix {
			t.Errorf("foreign prefix leaked into timeline: %+v", e)
		}
	}
	// The alarm event is also visible in the public ring.
	events := r.Events()
	if got := events[len(events)-1]; got.Kind != KindAlarm {
		t.Errorf("ring does not end with the alarm event: %+v", got)
	}
}

func TestRecordAlarmOriginNotListed(t *testing.T) {
	r := NewRecorder(16, WithoutWallClock())
	r.RecordAlarm(testPrefix, AlarmBundle{Origin: 64999, Verdict: "origin-not-listed"})
	events := r.Events()
	if len(events) != 1 || events[0].Detail != DetailOriginNotListed {
		t.Fatalf("alarm event detail: %+v", events)
	}
}

func TestAlarmEviction(t *testing.T) {
	r := NewRecorder(16, WithoutWallClock(), WithMaxAlarms(2))
	for i := 0; i < 5; i++ {
		if id := r.RecordAlarm(testPrefix, AlarmBundle{Origin: uint32(64990 + i), Verdict: "conflict"}); id != i {
			t.Fatalf("alarm %d got id %d", i, id)
		}
	}
	if r.AlarmCount() != 5 {
		t.Errorf("AlarmCount: got %d, want 5", r.AlarmCount())
	}
	alarms := r.Alarms()
	if len(alarms) != 2 || alarms[0].ID != 3 || alarms[1].ID != 4 {
		t.Fatalf("retained alarms: %+v", alarms)
	}
	if _, ok := r.Alarm(0); ok {
		t.Error("evicted alarm 0 still retrievable")
	}
	if b, ok := r.Alarm(4); !ok || b.Origin != 64994 {
		t.Errorf("alarm 4: ok=%v bundle=%+v", ok, b)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder(256, WithoutWallClock())
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(testEvent(i))
				if i%64 == 0 {
					r.Events() // concurrent snapshots must be safe
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Seq(); got != writers*perWriter {
		t.Fatalf("Seq after soak: got %d, want %d", got, writers*perWriter)
	}
	// A quiescent ring must read back fully: all marks published.
	if got := len(r.Events()); got != 256 {
		t.Fatalf("Events after soak: got %d, want 256", got)
	}
}

// TestRecordAllocs is the in-tree guard for the acceptance criterion:
// the record path is allocation-free both enabled and disabled.
func TestRecordAllocs(t *testing.T) {
	r := NewRecorder(1024) // wall clock on: the live-path configuration
	e := testEvent(1)
	if allocs := testing.AllocsPerRun(1000, func() { r.Record(e) }); allocs != 0 {
		t.Errorf("Record (enabled): %v allocs/op, want 0", allocs)
	}
	r.SetEnabled(false)
	if allocs := testing.AllocsPerRun(1000, func() { r.Record(e) }); allocs != 0 {
		t.Errorf("Record (disabled): %v allocs/op, want 0", allocs)
	}
	var nilRec *Recorder
	if allocs := testing.AllocsPerRun(1000, func() { nilRec.Record(e) }); allocs != 0 {
		t.Errorf("Record (nil): %v allocs/op, want 0", allocs)
	}
}

func TestAppendEventJSONAllocs(t *testing.T) {
	e := testEvent(1)
	buf := make([]byte, 0, 512)
	if allocs := testing.AllocsPerRun(1000, func() { buf = AppendEventJSON(buf[:0], &e) }); allocs != 0 {
		t.Errorf("AppendEventJSON: %v allocs/op, want 0", allocs)
	}
}

func TestHelpers(t *testing.T) {
	if got := ASNs(nil); got != nil {
		t.Errorf("ASNs(nil) = %v", got)
	}
	if got := ASNs([]astypes.ASN{65001, 64999}); !reflect.DeepEqual(got, []uint32{65001, 64999}) {
		t.Errorf("ASNs = %v", got)
	}
	p := astypes.NewSeqPath(100, 200, 65001)
	if got := PathASNs(p); !reflect.DeepEqual(got, []uint32{100, 200, 65001}) {
		t.Errorf("PathASNs = %v", got)
	}
	if got := unionOrigins([]uint32{65001, 0}, []uint32{64999, 65001}, 64999); !reflect.DeepEqual(got, []uint32{64999, 65001}) {
		t.Errorf("unionOrigins = %v", got)
	}
}
