// Package trace is the flight recorder: a fixed-size lock-free ring of
// typed routing-plane events (message received, validated, RIB
// decision, export, alarm) shared by the live path (wire → session →
// speaker/daemon → rib → core.Checker) and the simulator. Recording is
// allocation-free and cheap enough for per-message call sites; a
// disabled or absent recorder costs one atomic load (or nothing at all
// for a nil *Recorder), so untraced runs pay essentially zero.
//
// Every MOAS alarm additionally snapshots a forensic AlarmBundle — the
// competing MOAS lists, the offending AS path, and the decision
// timeline for the prefix — which is what separates a benign MOAS from
// a hijack when an operator investigates. Bundles are served by the
// admin endpoint (/debug/alarms, see Routes) next to /debug/trace.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/astypes"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds, following a message through the pipeline.
const (
	// KindRecv: a message was received and decoded (wire → session).
	KindRecv Kind = iota + 1
	// KindValidate: the MOAS checker judged one announced prefix.
	KindValidate
	// KindRIB: the decision process ran for a prefix.
	KindRIB
	// KindExport: an UPDATE (or withdrawal) was queued to a peer.
	KindExport
	// KindAlarm: a MOAS conflict was detected; a forensic bundle was
	// captured alongside this event.
	KindAlarm
)

func (k Kind) String() string {
	switch k {
	case KindRecv:
		return "recv"
	case KindValidate:
		return "validate"
	case KindRIB:
		return "rib"
	case KindExport:
		return "export"
	case KindAlarm:
		return "alarm"
	default:
		return "unknown"
	}
}

// Detail qualifies an event within its kind.
type Detail uint8

// Event details.
const (
	DetailNone Detail = iota
	// Validation outcomes (KindValidate, KindAlarm).
	DetailConsistent
	DetailConflict
	DetailOriginNotListed
	DetailRejected
	// Decision-process outcomes (KindRIB).
	DetailInstalled
	DetailReplaced
	DetailWithdrawn
	// Export flavours (KindExport); DetailWithdrawal also marks a
	// received withdrawal on KindRecv.
	DetailAdvertise
	DetailWithdrawal
)

func (d Detail) String() string {
	switch d {
	case DetailNone:
		return ""
	case DetailConsistent:
		return "consistent"
	case DetailConflict:
		return "conflict"
	case DetailOriginNotListed:
		return "origin-not-listed"
	case DetailRejected:
		return "rejected"
	case DetailInstalled:
		return "installed"
	case DetailReplaced:
		return "replaced"
	case DetailWithdrawn:
		return "withdrawn"
	case DetailAdvertise:
		return "advertise"
	case DetailWithdrawal:
		return "withdrawal"
	default:
		return "unknown"
	}
}

// Event is one recorded routing-plane event. It is a fixed-size value —
// no slices, no pointers — so the record path never allocates; the full
// AS path and MOAS lists of an alarm live in its AlarmBundle instead.
type Event struct {
	// Seq is the event's position in the recorder's global order.
	Seq uint64
	// Nanos is the wall-clock UnixNano timestamp (zero when the
	// recorder runs WithoutWallClock, e.g. deterministic simulations).
	Nanos int64
	// VNanos is the virtual time of simulator events (zero on the live
	// path).
	VNanos int64
	// Span correlates the events of one received message: the per
	// session message ordinal minted by wire.Decoder. Spans are unique
	// within a session; (Peer, Span) disambiguates across sessions.
	Span   uint64
	Kind   Kind
	Detail Detail
	// Node is the AS recording the event; Peer the message source
	// (ASNNone for local events); Origin the originating AS of the
	// route involved, when known.
	Node   astypes.ASN
	Peer   astypes.ASN
	Origin astypes.ASN
	Prefix astypes.Prefix
	// Aux is kind-specific: NLRI (or withdrawn-route) count on
	// KindRecv, the alarm bundle ID on KindAlarm.
	Aux uint32
}

// slot is one ring entry: a seqlock-published event packed into atomic
// words. mark holds seq+1 while the event is published and 0 while a
// writer is mid-store, so readers can detect and skip torn entries
// without taking a lock.
type slot struct {
	mark atomic.Uint64
	w    [6]atomic.Uint64
}

//repro:allocfree
func (s *slot) store(e *Event) {
	s.w[0].Store(uint64(e.Nanos))
	s.w[1].Store(uint64(e.VNanos))
	s.w[2].Store(e.Span)
	s.w[3].Store(uint64(e.Kind)<<56 | uint64(e.Detail)<<48 |
		uint64(e.Node)<<32 | uint64(e.Peer)<<16 | uint64(e.Origin))
	s.w[4].Store(uint64(e.Prefix.Addr)<<32 | uint64(e.Prefix.Len)<<24)
	s.w[5].Store(uint64(e.Aux))
}

//repro:allocfree
func (s *slot) load(e *Event) {
	e.Nanos = int64(s.w[0].Load())
	e.VNanos = int64(s.w[1].Load())
	e.Span = s.w[2].Load()
	packed := s.w[3].Load()
	e.Kind = Kind(packed >> 56)
	e.Detail = Detail(packed >> 48 & 0xff)
	e.Node = astypes.ASN(packed >> 32 & 0xffff)
	e.Peer = astypes.ASN(packed >> 16 & 0xffff)
	e.Origin = astypes.ASN(packed & 0xffff)
	pfx := s.w[4].Load()
	e.Prefix = astypes.Prefix{Addr: uint32(pfx >> 32), Len: uint8(pfx >> 24 & 0xff)}
	e.Aux = uint32(s.w[5].Load())
}

// Recorder is the lock-free flight recorder: a power-of-two ring of
// event slots claimed by one atomic increment and published per slot
// with a seqlock mark. Record never blocks and never allocates; when
// the ring wraps, the oldest events are overwritten.
//
// Torn reads are handled, not prevented: Events validates each slot's
// mark before and after copying it and drops entries that changed
// underneath it. The one theoretical gap — a writer stalled for an
// entire ring revolution while another writer reuses its slot — would
// publish mixed words under a valid mark; with rings of thousands of
// slots and writers that finish in nanoseconds this is not a practical
// concern, and a misattributed trace event (not a crash) is the worst
// outcome.
type Recorder struct {
	slots []slot
	mask  uint64
	// seq is the next event sequence number; seq-1 addressed the most
	// recently claimed slot.
	seq atomic.Uint64
	// on gates recording: the single atomic load a disabled-but-present
	// recorder costs on the hot path.
	on atomic.Bool
	// wall, set at construction, stamps events with time.Now;
	// WithoutWallClock disables it for deterministic traces.
	wall bool

	// alarmMu guards alarms and alarmSeq. Alarm capture is rare (one
	// per detected MOAS conflict) and allocation there is acceptable.
	alarmMu   sync.Mutex
	alarms    []AlarmBundle // guarded by alarmMu
	alarmSeq  int           // guarded by alarmMu
	maxAlarms int
}

// Option configures a Recorder.
type Option interface {
	apply(*Recorder)
}

type optionFunc func(*Recorder)

func (f optionFunc) apply(r *Recorder) { f(r) }

// WithoutWallClock stops the recorder stamping events and bundles with
// time.Now, leaving timestamps exactly as recorded by callers — the
// deterministic mode simulator traces need (same seed, byte-identical
// timeline).
func WithoutWallClock() Option {
	return optionFunc(func(r *Recorder) { r.wall = false })
}

// WithMaxAlarms bounds the retained alarm bundles (default 64; the
// oldest are evicted first, their IDs stay assigned).
func WithMaxAlarms(n int) Option {
	return optionFunc(func(r *Recorder) {
		if n > 0 {
			r.maxAlarms = n
		}
	})
}

// NewRecorder builds an enabled recorder holding the most recent size
// events (rounded up to a power of two, minimum 16).
func NewRecorder(size int, opts ...Option) *Recorder {
	n := 16
	for n < size && n < 1<<24 {
		n <<= 1
	}
	r := &Recorder{
		slots:     make([]slot, n),
		mask:      uint64(n - 1),
		wall:      true,
		maxAlarms: 64,
	}
	for _, o := range opts {
		o.apply(r)
	}
	r.on.Store(true)
	return r
}

// Enabled reports whether the recorder is recording. Nil-safe.
func (r *Recorder) Enabled() bool { return r != nil && r.on.Load() }

// SetEnabled toggles recording without discarding captured events.
func (r *Recorder) SetEnabled(on bool) { r.on.Store(on) }

// Cap returns the ring capacity in events.
func (r *Recorder) Cap() int { return len(r.slots) }

// Record captures one event. Nil-safe and allocation-free; a disabled
// recorder pays one atomic load.
//
//repro:allocfree
func (r *Recorder) Record(e Event) {
	if r == nil || !r.on.Load() {
		return
	}
	if r.wall {
		e.Nanos = time.Now().UnixNano()
	}
	i := r.seq.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.mark.Store(0)
	s.store(&e)
	s.mark.Store(i + 1)
}

// Seq returns the number of events recorded so far (including
// overwritten ones).
func (r *Recorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Dropped returns how many events the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	head := r.seq.Load()
	if n := uint64(len(r.slots)); head > n {
		return head - n
	}
	return 0
}

// Events returns a snapshot of the retained events, oldest first.
// Entries a concurrent writer is mid-publish (or has already
// overwritten) are skipped rather than returned torn.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	head := r.seq.Load()
	start := uint64(0)
	if n := uint64(len(r.slots)); head > n {
		start = head - n
	}
	out := make([]Event, 0, head-start)
	for i := start; i < head; i++ {
		s := &r.slots[i&r.mask]
		if s.mark.Load() != i+1 {
			continue
		}
		var e Event
		s.load(&e)
		if s.mark.Load() != i+1 {
			continue // overwritten while copying; drop the torn read
		}
		e.Seq = i
		out = append(out, e)
	}
	return out
}

// AlarmBundle is the forensic record captured for one MOAS alarm: the
// conflicting announcement's identity, both competing MOAS lists, the
// offending AS path, and the event timeline for the prefix at capture
// time. Field types are JSON-friendly on purpose — bundles exist to be
// shipped to an operator (/debug/alarms) or a report, not to sit on a
// hot path.
type AlarmBundle struct {
	// ID is the bundle's stable identity: /debug/alarms/<ID>.
	ID int `json:"id"`
	// Nanos is the wall-clock capture time; VNanos the virtual time for
	// simulator alarms.
	Nanos  int64 `json:"ns"`
	VNanos int64 `json:"vns"`
	// Span of the message that triggered the alarm (0 when unknown).
	Span uint64 `json:"span"`
	// Node is the detecting AS; FromPeer the session the conflicting
	// announcement arrived on; Origin its origin AS.
	Node     uint32 `json:"node"`
	FromPeer uint32 `json:"fromPeer"`
	Origin   uint32 `json:"origin"`
	Prefix   string `json:"prefix"`
	// Verdict is the checker's classification ("conflict" or
	// "origin-not-listed").
	Verdict string `json:"verdict"`
	// Class is the cross-validated severity from rpki.Classify —
	// "benign-moas", "likely-misconfig" or "likely-hijack" — crossing the
	// ROV outcome for (Prefix, Origin) with the checker verdict. Callers
	// without RPKI data still classify: a silent RPKI degrades to the
	// MOAS-provenance classes.
	Class string `json:"class"`
	// Note carries deployment context (e.g. the monitor's vantage).
	Note string `json:"note,omitempty"`
	// Existing is the MOAS list previously accepted for the prefix;
	// Received the inconsistent list on the incoming route; Path the
	// incoming route's AS path, origin last.
	Existing []uint32 `json:"existingList"`
	Received []uint32 `json:"receivedList"`
	Path     []uint32 `json:"path"`
	// Origins is the sorted union of Existing, Received and Origin —
	// the complete set of ASes competing for the prefix.
	Origins []uint32 `json:"origins"`
	// Timeline holds the retained trace events for the prefix up to and
	// including the alarm, oldest first.
	Timeline []Event `json:"timeline"`
}

// Origins computes the sorted union of existing ∪ received ∪ {origin},
// dropping zeros.
func unionOrigins(existing, received []uint32, origin uint32) []uint32 {
	seen := make(map[uint32]bool, len(existing)+len(received)+1)
	add := func(a uint32) {
		if a != 0 {
			seen[a] = true
		}
	}
	for _, a := range existing {
		add(a)
	}
	for _, a := range received {
		add(a)
	}
	add(origin)
	out := make([]uint32, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RecordAlarm captures a forensic bundle: it fills in the bundle's ID,
// prefix string, origin union, wall time (unless WithoutWallClock) and
// prefix-filtered event timeline, records the matching KindAlarm ring
// event, and retains the bundle for Alarms/Alarm. Returns the assigned
// ID, or -1 when the recorder is nil or disabled.
func (r *Recorder) RecordAlarm(prefix astypes.Prefix, b AlarmBundle) int {
	if r == nil || !r.on.Load() {
		return -1
	}
	if r.wall {
		b.Nanos = time.Now().UnixNano()
	}
	b.Prefix = prefix.String()
	b.Origins = unionOrigins(b.Existing, b.Received, b.Origin)

	r.alarmMu.Lock()
	defer r.alarmMu.Unlock()
	b.ID = r.alarmSeq
	r.alarmSeq++

	// The alarm event goes into the ring first so the timeline snapshot
	// below ends with it.
	r.Record(Event{
		Nanos:  b.Nanos,
		VNanos: b.VNanos,
		Span:   b.Span,
		Kind:   KindAlarm,
		Detail: verdictDetail(b.Verdict),
		Node:   astypes.ASN(b.Node),
		Peer:   astypes.ASN(b.FromPeer),
		Origin: astypes.ASN(b.Origin),
		Prefix: prefix,
		Aux:    uint32(b.ID),
	})
	for _, e := range r.Events() {
		if e.Prefix == prefix {
			b.Timeline = append(b.Timeline, e)
		}
	}

	r.alarms = append(r.alarms, b)
	if len(r.alarms) > r.maxAlarms {
		// Evict oldest; copy down so the backing array doesn't pin them.
		n := copy(r.alarms, r.alarms[len(r.alarms)-r.maxAlarms:])
		r.alarms = r.alarms[:n]
	}
	return b.ID
}

func verdictDetail(v string) Detail {
	switch v {
	case "origin-not-listed":
		return DetailOriginNotListed
	default:
		return DetailConflict
	}
}

// Alarms returns a copy of the retained alarm bundles, oldest first.
func (r *Recorder) Alarms() []AlarmBundle {
	if r == nil {
		return nil
	}
	r.alarmMu.Lock()
	defer r.alarmMu.Unlock()
	out := make([]AlarmBundle, len(r.alarms))
	copy(out, r.alarms)
	return out
}

// Alarm returns the bundle with the given ID, if still retained.
func (r *Recorder) Alarm(id int) (AlarmBundle, bool) {
	if r == nil {
		return AlarmBundle{}, false
	}
	r.alarmMu.Lock()
	defer r.alarmMu.Unlock()
	for i := range r.alarms {
		if r.alarms[i].ID == id {
			return r.alarms[i], true
		}
	}
	return AlarmBundle{}, false
}

// AlarmCount returns how many alarm bundles have been captured in
// total (retained or evicted).
func (r *Recorder) AlarmCount() int {
	if r == nil {
		return 0
	}
	r.alarmMu.Lock()
	defer r.alarmMu.Unlock()
	return r.alarmSeq
}

// ASNs converts a typed ASN slice to the bundle's wire-width form.
func ASNs(in []astypes.ASN) []uint32 {
	if len(in) == 0 {
		return nil
	}
	out := make([]uint32, len(in))
	for i, a := range in {
		out[i] = uint32(a)
	}
	return out
}

// PathASNs flattens an AS path into hop order (origin last), the form
// alarm bundles carry.
func PathASNs(p astypes.ASPath) []uint32 {
	var out []uint32
	for _, seg := range p.Segments {
		for _, a := range seg.ASNs {
			out = append(out, uint32(a))
		}
	}
	return out
}
