package trace

import (
	"testing"

	"repro/internal/astypes"
)

// FuzzTraceDecode drives the trace-event JSON decoder with arbitrary
// input and checks the encode/decode pair agrees on everything that
// decodes cleanly: decode(b) must re-encode and decode back to the
// identical event (the encoder is canonical, not the input bytes).
func FuzzTraceDecode(f *testing.F) {
	seed := []Event{
		{Kind: KindRecv, Node: 100, Peer: 65001, Origin: 65001,
			Prefix: astypes.MustPrefix(0x83b30000, 16), Aux: 1},
		{Seq: 42, Nanos: 1700000000000000000, Span: 9, Kind: KindAlarm,
			Detail: DetailConflict, Node: 100, Peer: 64999, Origin: 64999,
			Prefix: astypes.MustPrefix(0x83b30000, 16)},
		{VNanos: 450000, Kind: KindRIB, Detail: DetailWithdrawn, Node: 23,
			Prefix: astypes.MustPrefix(0x0a000000, 8)},
		{Kind: KindExport, Detail: DetailAdvertise, Node: 65535, Peer: 65535,
			Origin: 65535, Aux: 1<<32 - 1},
		{Kind: KindValidate, Detail: DetailOriginNotListed, Node: 7, Peer: 3, Origin: 64999},
	}
	for _, e := range seed {
		f.Add(AppendEventJSON(nil, &e))
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":"recv","prefix":""}`))
	f.Add([]byte(`{"kind":"recv","prefix":"999.0.0.1/8"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEventJSON(data)
		if err != nil {
			return // malformed input is expected; it must only not panic
		}
		re := AppendEventJSON(nil, &e)
		back, err := DecodeEventJSON(re)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v\n in: %q\nout: %q", err, data, re)
		}
		if back != e {
			t.Fatalf("decode/encode disagreement:\n in: %q\n e1: %+v\n e2: %+v", data, e, back)
		}
		// Text rendering of any decodable event must not panic.
		AppendEventText(nil, &e)
	})
}
