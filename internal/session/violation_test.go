package session

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/wire"
)

// scriptedHandshake answers the OPEN + KEEPALIVE exchange on conn so a
// real Session reaches Established against a hand-driven peer.
func scriptedHandshake(t *testing.T, conn net.Conn, as astypes.ASN) {
	t.Helper()
	if _, err := wire.ReadMessage(conn); err != nil {
		t.Errorf("scripted peer: read OPEN: %v", err)
		return
	}
	if err := wire.WriteMessage(conn, &wire.Open{
		Version: wire.Version4, AS: as, HoldTime: 90, BGPID: uint32(as),
	}); err != nil {
		t.Errorf("scripted peer: send OPEN: %v", err)
		return
	}
	if err := wire.WriteMessage(conn, &wire.Keepalive{}); err != nil {
		t.Errorf("scripted peer: send KEEPALIVE: %v", err)
		return
	}
	if _, err := wire.ReadMessage(conn); err != nil {
		t.Errorf("scripted peer: read KEEPALIVE: %v", err)
	}
}

// establishAgainstScript returns an Established session whose peer is
// the returned conn, driven by the test.
func establishAgainstScript(t *testing.T) (*Session, net.Conn, *collector) {
	t.Helper()
	ca, cb := net.Pipe()
	h := newCollector()
	done := make(chan struct{})
	go func() {
		defer close(done)
		scriptedHandshake(t, cb, 2)
	}()
	s, err := Establish(ca, Config{LocalAS: 1, Handler: h})
	if err != nil {
		t.Fatalf("establish: %v", err)
	}
	<-done
	t.Cleanup(func() {
		s.Close()
		cb.Close()
	})
	return s, cb, h
}

func TestOpenInEstablishedIsFatal(t *testing.T) {
	s, peer, h := establishAgainstScript(t)
	// The violator must be reading when the NOTIFICATION is emitted
	// (net.Pipe is synchronous), so arm the read first.
	notif := readMessageAsync(peer)
	// Protocol violation: a second OPEN after Established.
	if err := wire.WriteMessage(peer, &wire.Open{
		Version: wire.Version4, AS: 2, HoldTime: 90, BGPID: 2,
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.downCh:
	case <-time.After(5 * time.Second):
		t.Fatal("session survived an OPEN in Established")
	}
	if s.State() != StateClosed {
		t.Errorf("state = %v", s.State())
	}
	select {
	case got := <-notif:
		if got.err != nil {
			t.Fatalf("read NOTIFICATION: %v", got.err)
		}
		if n, ok := got.msg.(*wire.Notification); !ok || n.Code != wire.ErrCodeFSM {
			t.Errorf("got %v, want FSM NOTIFICATION", got.msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no NOTIFICATION arrived")
	}
}

type asyncMsg struct {
	msg wire.Message
	err error
}

func readMessageAsync(conn net.Conn) <-chan asyncMsg {
	ch := make(chan asyncMsg, 1)
	go func() {
		m, err := wire.ReadMessage(conn)
		ch <- asyncMsg{msg: m, err: err}
	}()
	return ch
}

func TestMalformedUpdateIsFatalWithNotification(t *testing.T) {
	s, peer, h := establishAgainstScript(t)
	// Craft an UPDATE with a duplicate ORIGIN attribute.
	body := []byte{0, 0}
	attr := []byte{
		0x40 /* transitive */, 1 /* ORIGIN */, 1, 0,
		0x40, 1, 1, 0,
	}
	body = append(body, byte(len(attr)>>8), byte(len(attr)))
	body = append(body, attr...)
	full := make([]byte, 19, 19+len(body))
	for i := 0; i < 16; i++ {
		full[i] = 0xff
	}
	full[18] = byte(wire.MsgUpdate)
	full = append(full, body...)
	full[16] = byte(len(full) >> 8)
	full[17] = byte(len(full))
	notif := readMessageAsync(peer)
	if _, err := peer.Write(full); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.downCh:
	case <-time.After(5 * time.Second):
		t.Fatal("session survived a malformed UPDATE")
	}
	var me *wire.MessageError
	if !errors.As(s.Err(), &me) || me.Code != wire.ErrCodeUpdate {
		t.Errorf("session error = %v", s.Err())
	}
	// The sender gets the matching NOTIFICATION.
	select {
	case got := <-notif:
		if got.err != nil {
			t.Fatalf("read NOTIFICATION: %v", got.err)
		}
		if n, ok := got.msg.(*wire.Notification); !ok || n.Code != wire.ErrCodeUpdate {
			t.Errorf("got %v, want UPDATE-error NOTIFICATION", got.msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no NOTIFICATION arrived")
	}
}

func TestRouteRefreshDeliveredToRefreshHandler(t *testing.T) {
	// A handler implementing RefreshHandler sees the request.
	ca, cb := net.Pipe()
	h := &refreshCollector{collector: newCollector(), got: make(chan struct{}, 1)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		scriptedHandshake(t, cb, 2)
	}()
	s, err := Establish(ca, Config{LocalAS: 1, Handler: h})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer cb.Close()
	<-done

	if err := wire.WriteMessage(cb, &wire.RouteRefresh{AFI: wire.AFIIPv4, SAFI: wire.SAFIUnicast}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.got:
	case <-time.After(5 * time.Second):
		t.Fatal("refresh not delivered")
	}
}

type refreshCollector struct {
	*collector
	got chan struct{}
}

func (r *refreshCollector) HandleRouteRefresh(peer astypes.ASN, _ *wire.RouteRefresh) {
	select {
	case r.got <- struct{}{}:
	default:
	}
}
