package session

import (
	"strings"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Metrics is the session layer's instrumentation: message counts in and
// out by wire type, handshake failures, and an approximate keepalive
// round trip. One Metrics is shared by every session of a speaker or
// collector (the label space is the message type, not the peer).
//
// A nil *Metrics disables instrumentation; all record methods are
// nil-receiver safe so the session hot paths stay branch-cheap.
type Metrics struct {
	// msgsIn/msgsOut cache the per-type counters by wire.MsgType so the
	// read and write loops never pay the labeled-lookup cost.
	msgsIn  [wire.MsgRouteRefresh + 1]*telemetry.Counter
	msgsOut [wire.MsgRouteRefresh + 1]*telemetry.Counter

	handshakeFailures *telemetry.Counter
	keepaliveRTT      *telemetry.Histogram
}

// NewMetrics registers the session metric families on r:
//
//	session_msgs_in_total{type}   counter
//	session_msgs_out_total{type}  counter
//	session_handshake_failures_total  counter
//	session_keepalive_rtt_seconds     histogram
func NewMetrics(r *telemetry.Registry) *Metrics {
	in := r.CounterVec("session_msgs_in_total", "BGP messages received, by type.", "type")
	out := r.CounterVec("session_msgs_out_total", "BGP messages sent, by type.", "type")
	m := &Metrics{
		handshakeFailures: r.Counter("session_handshake_failures_total",
			"OPEN handshakes that failed before reaching Established."),
		keepaliveRTT: r.Histogram("session_keepalive_rtt_seconds",
			"Approximate keepalive round trip: our KEEPALIVE send to the peer's next KEEPALIVE receipt.", nil),
	}
	for t := wire.MsgOpen; t <= wire.MsgRouteRefresh; t++ {
		label := strings.ToLower(t.String())
		m.msgsIn[t] = in.With(label)
		m.msgsOut[t] = out.With(label)
	}
	return m
}

func (m *Metrics) recvMsg(t wire.MsgType) {
	if m == nil || int(t) >= len(m.msgsIn) || m.msgsIn[t] == nil {
		return
	}
	m.msgsIn[t].Inc()
}

func (m *Metrics) sentMsg(t wire.MsgType) {
	if m == nil || int(t) >= len(m.msgsOut) || m.msgsOut[t] == nil {
		return
	}
	m.msgsOut[t].Inc()
}

func (m *Metrics) handshakeFailed() {
	if m == nil {
		return
	}
	m.handshakeFailures.Inc()
}

func (m *Metrics) observeKeepaliveRTT(d time.Duration) {
	if m == nil || d < 0 {
		return
	}
	m.keepaliveRTT.Observe(d.Seconds())
}
