package session

import (
	"net"
	"sync"
	"testing"

	"repro/internal/astypes"
	"repro/internal/trace"
	"repro/internal/wire"
)

// spanCollector is a Handler that also implements SpanHandler, so
// UPDATEs arrive through HandleUpdateSpan with their message ordinal.
type spanCollector struct {
	collector
	spans []uint64 // guarded by mu
}

func (c *spanCollector) HandleUpdateSpan(peer astypes.ASN, u *wire.Update, span uint64) {
	c.mu.Lock()
	c.spans = append(c.spans, span)
	c.mu.Unlock()
	c.HandleUpdate(peer, u)
}

func (c *spanCollector) spanList() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]uint64(nil), c.spans...)
}

// TestSpanHandlerAndTrace: a SpanHandler receives strictly increasing
// spans that count every received message (the handshake OPEN and
// KEEPALIVE included), and the session's recorder captures one
// KindRecv event per UPDATE with matching spans.
func TestSpanHandlerAndTrace(t *testing.T) {
	ca, cb := net.Pipe()
	rec := trace.NewRecorder(64)
	sc := &spanCollector{collector: collector{downCh: make(chan struct{}, 1)}}
	plain := newCollector()
	var (
		sa, sb     *Session
		errA, errB error
		wg         sync.WaitGroup
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		sa, errA = Establish(ca, Config{LocalAS: 100, LocalID: 1, Handler: sc, Trace: rec})
	}()
	go func() {
		defer wg.Done()
		sb, errB = Establish(cb, Config{LocalAS: 65001, LocalID: 2, Handler: plain})
	}()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("establish: %v / %v", errA, errB)
	}
	defer sa.Close()
	defer sb.Close()

	prefix := astypes.MustPrefix(0x83b30000, 16)
	for i := 0; i < 3; i++ {
		u := &wire.Update{
			Attrs: wire.PathAttrs{HasOrigin: true, HasNextHop: true, ASPath: astypes.NewSeqPath(65001)},
			NLRI:  []astypes.Prefix{prefix},
		}
		if err := sb.SendUpdate(u); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, func() bool { return sc.updateCount() == 3 }, "span update delivery")

	spans := sc.spanList()
	// The handshake consumed spans 1 (OPEN) and 2 (KEEPALIVE), so the
	// UPDATEs start at 3; keepalives may interleave, so only demand
	// strict monotonic growth from there.
	if len(spans) != 3 || spans[0] < 3 {
		t.Fatalf("spans: %v", spans)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i] <= spans[i-1] {
			t.Fatalf("spans not increasing: %v", spans)
		}
	}

	var recvs []trace.Event
	for _, e := range rec.Events() {
		if e.Kind == trace.KindRecv {
			recvs = append(recvs, e)
		}
	}
	if len(recvs) != 3 {
		t.Fatalf("recv events: %d, want 3 (%+v)", len(recvs), recvs)
	}
	for i, e := range recvs {
		if e.Span != spans[i] {
			t.Errorf("event %d span %d, handler saw %d", i, e.Span, spans[i])
		}
		if e.Node != 100 || e.Peer != 65001 || e.Origin != 65001 || e.Prefix != prefix || e.Aux != 1 {
			t.Errorf("recv event fields: %+v", e)
		}
		if e.Nanos == 0 {
			t.Errorf("live-path event missing wall timestamp: %+v", e)
		}
	}
}

// TestPlainHandlerUnaffectedByTrace: without a SpanHandler the classic
// HandleUpdate path still runs, traced or not.
func TestPlainHandlerUnaffectedByTrace(t *testing.T) {
	rec := trace.NewRecorder(16)
	sa, sb, _, hb := establishPair(t,
		Config{LocalAS: 1, LocalID: 11, PeerAS: 2},
		Config{LocalAS: 2, LocalID: 22, PeerAS: 1, Trace: rec},
	)
	_ = sb
	u := &wire.Update{
		Attrs: wire.PathAttrs{HasOrigin: true, HasNextHop: true, ASPath: astypes.NewSeqPath(1)},
		NLRI:  []astypes.Prefix{astypes.MustPrefix(0x0a000000, 8)},
	}
	if err := sa.SendUpdate(u); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return hb.updateCount() == 1 }, "update delivery")
	waitCond(t, func() bool {
		for _, e := range rec.Events() {
			if e.Kind == trace.KindRecv && e.Peer == 1 {
				return true
			}
		}
		return false
	}, "trace event capture")
}
