// Package session implements the per-peer BGP-4 session machinery over
// a net.Conn: the OPEN handshake, keepalive generation, hold-timer
// supervision, and framed message exchange, following the FSM of RFC
// 4271 §8 in the states a connected transport can reach (OpenSent,
// OpenConfirm, Established).
//
// A Session owns two goroutines (reader and keepalive timer); both are
// joined by Close, so sessions never leak. Incoming UPDATEs are
// delivered to the Handler synchronously from the reader goroutine.
package session

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/astypes"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wire"
)

// State is the session's FSM state.
type State int32

// FSM states (subset reachable once a transport connection exists).
const (
	StateIdle State = iota + 1
	StateOpenSent
	StateOpenConfirm
	StateEstablished
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	case StateClosed:
		return "Closed"
	default:
		return "Unknown"
	}
}

// Handler receives session events. Calls are serialized per session.
type Handler interface {
	// HandleUpdate is invoked for every received UPDATE. The Update is
	// decoded into per-session scratch storage and is valid only for
	// the duration of the call: a handler that retains any part of it
	// (paths, prefixes, communities, unknown-attribute bytes) must copy
	// what it keeps before returning.
	HandleUpdate(peer astypes.ASN, u *wire.Update)
	// HandleDown is invoked exactly once when the session leaves
	// Established (err describes why; nil for a clean local Close).
	HandleDown(peer astypes.ASN, err error)
}

// RefreshHandler is optionally implemented by Handlers that honor
// ROUTE-REFRESH (RFC 2918) requests from the peer.
type RefreshHandler interface {
	// HandleRouteRefresh is invoked when the peer requests
	// re-advertisement of our Adj-RIB-Out.
	HandleRouteRefresh(peer astypes.ASN, r *wire.RouteRefresh)
}

// SpanHandler is optionally implemented by Handlers that thread trace
// span IDs through the pipeline. When implemented, it is invoked for
// every UPDATE instead of HandleUpdate, with the message's span (the
// per-session ordinal minted by wire.Decoder). The Update lifetime
// contract is the same as HandleUpdate's.
type SpanHandler interface {
	HandleUpdateSpan(peer astypes.ASN, u *wire.Update, span uint64)
}

// StampHandler is optionally implemented by Handlers that carry the
// full stage-timing stamp (span plus ingest instant) through the
// pipeline. When implemented, it takes precedence over SpanHandler.
// The stamp pointer is owned by the session's reader and is valid only
// for the duration of the call, like the Update itself.
type StampHandler interface {
	HandleUpdateStamp(peer astypes.ASN, u *wire.Update, st *obs.Stamp)
}

// Config parameterizes a session.
type Config struct {
	// LocalAS and LocalID identify this speaker.
	LocalAS astypes.ASN
	LocalID uint32
	// PeerAS, if nonzero, is enforced against the peer's OPEN.
	PeerAS astypes.ASN
	// HoldTime proposed in our OPEN; the effective hold time is the
	// minimum of both sides (RFC 4271 §4.2). Zero selects 90s.
	HoldTime time.Duration
	// Handler receives updates and the down event; required.
	Handler Handler
	// Metrics, if set, instruments this session. Typically one Metrics
	// is shared by all sessions of a speaker.
	Metrics *Metrics
	// Trace, if set, records a flight-recorder event per received
	// UPDATE. Nil (or a disabled recorder) adds nothing to the receive
	// path beyond one nil check / atomic load.
	Trace *trace.Recorder
	// Obs, if set, stamps each message's ingest instant at the wire
	// reader and records decode/session stage latencies; the stamp is
	// passed on to a StampHandler when the Handler implements one.
	Obs *obs.Recorder
}

// Errors surfaced by session establishment and supervision.
var (
	ErrHoldTimerExpired = errors.New("hold timer expired")
	ErrPeerASMismatch   = errors.New("peer AS mismatch")
	ErrClosed           = errors.New("session closed")
)

// NotificationError reports a NOTIFICATION received from the peer.
type NotificationError struct {
	Code    uint8
	Subcode uint8
}

func (e *NotificationError) Error() string {
	return fmt.Sprintf("peer sent NOTIFICATION code %d subcode %d", e.Code, e.Subcode)
}

// Session is one established BGP session.
type Session struct {
	conn     net.Conn
	cfg      Config
	met      *Metrics // nil disables instrumentation
	peerAS   astypes.ASN
	peerID   uint32
	holdTime time.Duration

	// kaSentAt holds the UnixNano timestamp of the oldest KEEPALIVE we
	// sent that has not yet been answered by a peer KEEPALIVE (0 =
	// none outstanding) — the basis of the approximate keepalive RTT.
	kaSentAt atomic.Int64

	// writeMu serializes all writes on conn: keepalives, updates, and
	// teardown notifications interleave frames without it.
	writeMu sync.Mutex
	// bw buffers outgoing messages so bursts coalesce into fewer conn
	// writes and the encode path stays allocation-free. Guarded by
	// writeMu; every writeMu critical section must Flush before
	// releasing, or the peer never sees the messages.
	bw *wire.Writer
	// rd frames and decodes incoming messages into reusable scratch.
	// Used only by the handshake and then the reader goroutine, which
	// are sequential, never concurrent.
	rd *wire.Reader
	// spanH and stampH are cfg.Handler's SpanHandler/StampHandler
	// faces, resolved once at Establish so the read loop pays no
	// per-message type assertion.
	spanH  SpanHandler
	stampH StampHandler

	mu    sync.Mutex
	state State // guarded by mu
	err   error // guarded by mu

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{} // reader goroutine exited
	kaDone   chan struct{} // keepalive goroutine exited
	downOnce sync.Once
}

// Establish runs the OPEN handshake on conn and starts the session
// goroutines. On error the connection is closed.
func Establish(conn net.Conn, cfg Config) (*Session, error) {
	if cfg.Handler == nil {
		conn.Close()
		return nil, errors.New("session: nil handler")
	}
	holdTime := cfg.HoldTime
	if holdTime == 0 {
		holdTime = 90 * time.Second
	}
	s := &Session{
		conn:     conn,
		cfg:      cfg,
		met:      cfg.Metrics,
		holdTime: holdTime,
		state:    StateOpenSent,
		bw:       wire.NewWriter(conn),
		rd:       wire.NewReader(conn),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		kaDone:   make(chan struct{}),
	}
	s.spanH, _ = cfg.Handler.(SpanHandler)
	s.stampH, _ = cfg.Handler.(StampHandler)
	s.rd.SetObserver(cfg.Obs)
	if err := s.handshake(); err != nil {
		s.met.handshakeFailed()
		conn.Close()
		return nil, err
	}
	s.setState(StateEstablished)
	go s.readLoop()
	go s.keepaliveLoop()
	return s, nil
}

func (s *Session) handshake() error {
	open := &wire.Open{
		Version:  wire.Version4,
		AS:       s.cfg.LocalAS,
		HoldTime: uint16(s.holdTime / time.Second),
		BGPID:    s.cfg.LocalID,
	}
	// Handshake sends run concurrently with the matching reads: both
	// peers write their OPEN (and later KEEPALIVE) at the same moment,
	// which deadlocks on an unbuffered transport (net.Pipe) if done
	// synchronously. On error paths the caller closes the connection,
	// which unblocks a stuck writer.
	openSent := make(chan error, 1)
	go func() {
		s.writeMu.Lock()
		defer s.writeMu.Unlock()
		err := s.writeLocked(open)
		if err == nil {
			s.met.sentMsg(wire.MsgOpen)
		}
		openSent <- err
	}()
	deadline := time.Now().Add(s.holdTime)
	if err := s.conn.SetReadDeadline(deadline); err != nil {
		return fmt.Errorf("session: set handshake deadline: %w", err)
	}
	msg, err := s.rd.ReadMessage()
	if err != nil {
		return fmt.Errorf("session: read OPEN: %w", err)
	}
	s.met.recvMsg(msg.Type())
	if err := <-openSent; err != nil {
		return fmt.Errorf("session: send OPEN: %w", err)
	}
	peerOpen, ok := msg.(*wire.Open)
	if !ok {
		s.sendNotification(wire.ErrCodeFSM, 0)
		return fmt.Errorf("session: expected OPEN, got %s", msg.Type())
	}
	if s.cfg.PeerAS != astypes.ASNNone && peerOpen.AS != s.cfg.PeerAS {
		s.sendNotification(wire.ErrCodeOpen, wire.SubBadPeerAS)
		return fmt.Errorf("session: %w: want AS %s, got AS %s", ErrPeerASMismatch, s.cfg.PeerAS, peerOpen.AS)
	}
	s.peerAS = peerOpen.AS
	s.peerID = peerOpen.BGPID
	if peerHold := time.Duration(peerOpen.HoldTime) * time.Second; peerHold > 0 && peerHold < s.holdTime {
		s.holdTime = peerHold
	} else if peerOpen.HoldTime == 0 {
		// Zero disables keepalives entirely (RFC 4271 §4.2).
		s.holdTime = 0
	}
	s.setState(StateOpenConfirm)
	kaSent := make(chan error, 1)
	go func() {
		s.writeMu.Lock()
		defer s.writeMu.Unlock()
		err := s.writeLocked(&wire.Keepalive{})
		if err == nil {
			s.met.sentMsg(wire.MsgKeepalive)
		}
		kaSent <- err
	}()
	if err := s.conn.SetReadDeadline(s.readDeadline()); err != nil {
		return fmt.Errorf("session: set deadline: %w", err)
	}
	msg, err = s.rd.ReadMessage()
	if err != nil {
		return fmt.Errorf("session: read confirm KEEPALIVE: %w", err)
	}
	s.met.recvMsg(msg.Type())
	if err := <-kaSent; err != nil {
		return fmt.Errorf("session: send KEEPALIVE: %w", err)
	}
	switch m := msg.(type) {
	case *wire.Keepalive:
		return nil
	case *wire.Notification:
		return &NotificationError{Code: m.Code, Subcode: m.Subcode}
	default:
		s.sendNotification(wire.ErrCodeFSM, 0)
		return fmt.Errorf("session: expected KEEPALIVE, got %s", msg.Type())
	}
}

func (s *Session) readDeadline() time.Time {
	if s.holdTime == 0 {
		return time.Time{}
	}
	return time.Now().Add(s.holdTime)
}

// PeerAS returns the AS number the peer declared in its OPEN.
func (s *Session) PeerAS() astypes.ASN { return s.peerAS }

// PeerID returns the peer's BGP identifier.
func (s *Session) PeerID() uint32 { return s.peerID }

// HoldTime returns the negotiated hold time (zero = disabled).
func (s *Session) HoldTime() time.Duration { return s.holdTime }

// State returns the current FSM state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Err returns the error that took the session down, if any.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Session) setState(st State) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
}

// writeLocked encodes m into the buffered writer and flushes it out.
// Callers must hold writeMu.
func (s *Session) writeLocked(m wire.Message) error {
	if err := s.bw.WriteMessage(m); err != nil {
		//repro:vet ignore wireerr -- every caller wraps with peer and message context
		return err
	}
	return s.bw.Flush()
}

// SendUpdate transmits one UPDATE message.
func (s *Session) SendUpdate(u *wire.Update) error {
	if s.State() != StateEstablished {
		return ErrClosed
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := s.writeLocked(u); err != nil {
		return fmt.Errorf("session: send UPDATE to AS %s: %w", s.peerAS, err)
	}
	s.met.sentMsg(wire.MsgUpdate)
	return nil
}

// SendUpdates transmits a batch of UPDATE messages under one writeMu
// acquisition, letting the buffered writer coalesce them into as few
// connection writes as possible (a route burst after session-up, or a
// ROUTE-REFRESH replay). Returns on the first encode/write error with
// the number of messages already accepted.
func (s *Session) SendUpdates(us []*wire.Update) (int, error) {
	if s.State() != StateEstablished {
		return 0, ErrClosed
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	for i, u := range us {
		if err := s.bw.WriteMessage(u); err != nil {
			return i, fmt.Errorf("session: send UPDATE batch to AS %s: %w", s.peerAS, err)
		}
		s.met.sentMsg(wire.MsgUpdate)
	}
	if err := s.bw.Flush(); err != nil {
		return 0, fmt.Errorf("session: flush UPDATE batch to AS %s: %w", s.peerAS, err)
	}
	return len(us), nil
}

// SendRouteRefresh asks the peer to re-advertise its routes (RFC 2918).
func (s *Session) SendRouteRefresh() error {
	if s.State() != StateEstablished {
		return ErrClosed
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	rr := &wire.RouteRefresh{AFI: wire.AFIIPv4, SAFI: wire.SAFIUnicast}
	if err := s.writeLocked(rr); err != nil {
		return fmt.Errorf("session: send ROUTE-REFRESH to AS %s: %w", s.peerAS, err)
	}
	s.met.sentMsg(wire.MsgRouteRefresh)
	return nil
}

func (s *Session) sendKeepalive() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := s.writeLocked(&wire.Keepalive{}); err != nil {
		return fmt.Errorf("session: send KEEPALIVE to AS %s: %w", s.peerAS, err)
	}
	s.met.sentMsg(wire.MsgKeepalive)
	// Start an RTT measurement unless one is already outstanding: the
	// oldest unanswered keepalive keeps the baseline.
	s.kaSentAt.CompareAndSwap(0, time.Now().UnixNano())
	return nil
}

func (s *Session) sendNotification(code, sub uint8) {
	// A peer that has stopped reading can leave another writer blocked
	// while holding writeMu (e.g. the keepalive sender); bound every
	// in-flight and upcoming write so this call cannot deadlock the
	// teardown path. Best effort; the session is coming down anyway.
	_ = s.conn.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	//repro:vet ignore wireerr -- best-effort teardown write; the session is already coming down
	if err := s.writeLocked(&wire.Notification{Code: code, Subcode: sub}); err == nil {
		s.met.sentMsg(wire.MsgNotification)
	}
}

func (s *Session) readLoop() {
	defer close(s.done)
	for {
		if err := s.conn.SetReadDeadline(s.readDeadline()); err != nil {
			s.goDown(err)
			return
		}
		msg, err := s.rd.ReadMessage()
		if err != nil {
			select {
			case <-s.stop:
				s.goDown(nil)
			default:
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					s.sendNotification(wire.ErrCodeHoldTimer, 0)
					err = ErrHoldTimerExpired
				}
				var me *wire.MessageError
				if errors.As(err, &me) {
					s.sendNotification(me.Code, me.Subcode)
				}
				s.goDown(err)
			}
			return
		}
		s.met.recvMsg(msg.Type())
		switch m := msg.(type) {
		case *wire.Update:
			s.recordRecv(m)
			// The session stage covers decode completion → handler
			// dispatch (metrics/trace bookkeeping above included).
			st := s.rd.Stamp()
			s.cfg.Obs.Cross(st, obs.StageSession)
			switch {
			case s.stampH != nil:
				s.stampH.HandleUpdateStamp(s.peerAS, m, st)
			case s.spanH != nil:
				s.spanH.HandleUpdateSpan(s.peerAS, m, s.rd.Span())
			default:
				s.cfg.Handler.HandleUpdate(s.peerAS, m)
			}
		case *wire.RouteRefresh:
			if rh, ok := s.cfg.Handler.(RefreshHandler); ok {
				rh.HandleRouteRefresh(s.peerAS, m)
			}
		case *wire.Keepalive:
			// Receipt already refreshed the hold timer. Close out an
			// outstanding RTT measurement: the peer's keepalive timer
			// makes this a round-trip proxy, not a true echo.
			if t0 := s.kaSentAt.Swap(0); t0 != 0 {
				s.met.observeKeepaliveRTT(time.Duration(time.Now().UnixNano() - t0))
			}
		case *wire.Notification:
			s.goDown(&NotificationError{Code: m.Code, Subcode: m.Subcode})
			return
		case *wire.Open:
			s.sendNotification(wire.ErrCodeFSM, 0)
			s.goDown(errors.New("session: OPEN received in Established"))
			return
		}
	}
}

// recordRecv captures the flight-recorder event for one received
// UPDATE: the first announced (or, failing that, withdrawn) prefix
// identifies the message, Aux carries the total route count, and a
// pure withdrawal is flagged as such.
func (s *Session) recordRecv(u *wire.Update) {
	if !s.cfg.Trace.Enabled() {
		return
	}
	e := trace.Event{
		Span: s.rd.Span(),
		Kind: trace.KindRecv,
		Node: s.cfg.LocalAS,
		Peer: s.peerAS,
		Aux:  uint32(len(u.NLRI) + len(u.Withdrawn)),
	}
	if len(u.NLRI) > 0 {
		e.Prefix = u.NLRI[0]
		if origin, ok := u.Attrs.ASPath.Origin(); ok {
			e.Origin = origin
		}
	} else if len(u.Withdrawn) > 0 {
		e.Prefix = u.Withdrawn[0]
		e.Detail = trace.DetailWithdrawal
	}
	s.cfg.Trace.Record(e)
}

func (s *Session) keepaliveLoop() {
	defer close(s.kaDone)
	if s.holdTime == 0 {
		return
	}
	interval := s.holdTime / 3
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := s.sendKeepalive(); err != nil {
				return
			}
		case <-s.stop:
			return
		}
	}
}

func (s *Session) goDown(err error) {
	s.mu.Lock()
	if s.state != StateClosed {
		s.state = StateClosed
		s.err = err
	}
	s.mu.Unlock()
	s.conn.Close()
	s.downOnce.Do(func() {
		s.cfg.Handler.HandleDown(s.peerAS, err)
	})
}

// Close sends a Cease NOTIFICATION, tears the session down, and waits
// for both goroutines to exit. Safe to call multiple times.
func (s *Session) Close() error {
	s.mu.Lock()
	alreadyClosed := s.state == StateClosed
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	if !alreadyClosed {
		s.sendNotification(wire.ErrCodeCease, 0)
	}
	s.conn.Close()
	<-s.done
	<-s.kaDone
	return nil
}
