package session

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/wire"
)

// collector is a Handler that records events.
type collector struct {
	mu      sync.Mutex
	updates []*wire.Update
	downs   []error
	downCh  chan struct{}
}

func newCollector() *collector {
	return &collector{downCh: make(chan struct{}, 1)}
}

func (c *collector) HandleUpdate(peer astypes.ASN, u *wire.Update) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.updates = append(c.updates, u)
}

func (c *collector) HandleDown(peer astypes.ASN, err error) {
	c.mu.Lock()
	c.downs = append(c.downs, err)
	c.mu.Unlock()
	select {
	case c.downCh <- struct{}{}:
	default:
	}
}

func (c *collector) updateCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.updates)
}

// establishPair runs the handshake on both ends of a pipe concurrently.
func establishPair(t *testing.T, cfgA, cfgB Config) (*Session, *Session, *collector, *collector) {
	t.Helper()
	ca, cb := net.Pipe()
	ha, hb := newCollector(), newCollector()
	cfgA.Handler, cfgB.Handler = ha, hb
	var (
		sa, sb     *Session
		errA, errB error
		wg         sync.WaitGroup
	)
	wg.Add(2)
	go func() { defer wg.Done(); sa, errA = Establish(ca, cfgA) }()
	go func() { defer wg.Done(); sb, errB = Establish(cb, cfgB) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("establish: %v / %v", errA, errB)
	}
	t.Cleanup(func() {
		sa.Close()
		sb.Close()
	})
	return sa, sb, ha, hb
}

func TestHandshakeAndUpdateExchange(t *testing.T) {
	sa, sb, _, hb := establishPair(t,
		Config{LocalAS: 1, LocalID: 11, PeerAS: 2},
		Config{LocalAS: 2, LocalID: 22, PeerAS: 1},
	)
	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Fatalf("states: %v / %v", sa.State(), sb.State())
	}
	if sa.PeerAS() != 2 || sb.PeerAS() != 1 {
		t.Errorf("peer ASNs: %v / %v", sa.PeerAS(), sb.PeerAS())
	}
	if sa.PeerID() != 22 || sb.PeerID() != 11 {
		t.Errorf("peer IDs: %v / %v", sa.PeerID(), sb.PeerID())
	}
	u := &wire.Update{
		Attrs: wire.PathAttrs{HasOrigin: true, HasNextHop: true, ASPath: astypes.NewSeqPath(1)},
		NLRI:  []astypes.Prefix{astypes.MustPrefix(0x0a000000, 8)},
	}
	if err := sa.SendUpdate(u); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return hb.updateCount() == 1 }, "update delivery")
}

func TestPeerASMismatchRejected(t *testing.T) {
	ca, cb := net.Pipe()
	var wg sync.WaitGroup
	var errA error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errA = Establish(ca, Config{LocalAS: 1, PeerAS: 99, Handler: newCollector()})
	}()
	go func() {
		defer wg.Done()
		s, err := Establish(cb, Config{LocalAS: 2, PeerAS: 1, Handler: newCollector()})
		if err == nil {
			s.Close()
		}
	}()
	wg.Wait()
	if !errors.Is(errA, ErrPeerASMismatch) {
		t.Errorf("err = %v, want ErrPeerASMismatch", errA)
	}
}

func TestNilHandlerRejected(t *testing.T) {
	ca, cb := net.Pipe()
	defer cb.Close()
	if _, err := Establish(ca, Config{LocalAS: 1}); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestHoldTimeNegotiation(t *testing.T) {
	sa, sb, _, _ := establishPair(t,
		Config{LocalAS: 1, HoldTime: 30 * time.Second},
		Config{LocalAS: 2, HoldTime: 12 * time.Second},
	)
	if sa.HoldTime() != 12*time.Second || sb.HoldTime() != 12*time.Second {
		t.Errorf("negotiated hold times: %v / %v", sa.HoldTime(), sb.HoldTime())
	}
}

func TestKeepalivesMaintainSession(t *testing.T) {
	sa, sb, ha, _ := establishPair(t,
		Config{LocalAS: 1, HoldTime: 300 * time.Millisecond},
		Config{LocalAS: 2, HoldTime: 300 * time.Millisecond},
	)
	// Hold time is 300ms; surviving 4x that proves keepalives flow.
	time.Sleep(1200 * time.Millisecond)
	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Errorf("session died despite keepalives: %v / %v (downs=%v)",
			sa.State(), sb.State(), ha.downs)
	}
}

func TestHoldTimerExpiry(t *testing.T) {
	// Peer B stops participating after the handshake (its goroutines are
	// torn down without a close); A's hold timer must fire.
	ca, cb := net.Pipe()
	ha := newCollector()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Minimal scripted peer: answer OPEN + KEEPALIVE, then go mute.
		if _, err := wire.ReadMessage(cb); err != nil {
			return
		}
		_ = wire.WriteMessage(cb, &wire.Open{Version: wire.Version4, AS: 2, HoldTime: 3, BGPID: 2})
		_ = wire.WriteMessage(cb, &wire.Keepalive{})
		if _, err := wire.ReadMessage(cb); err != nil {
			return
		}
		// Mute: read nothing, send nothing, keep the conn open.
		select {}
	}()
	sa, err := Establish(ca, Config{LocalAS: 1, HoldTime: 3 * time.Second, Handler: ha})
	if err != nil {
		t.Fatalf("establish: %v", err)
	}
	defer sa.Close()
	select {
	case <-ha.downCh:
	case <-time.After(10 * time.Second):
		t.Fatal("hold timer never fired")
	}
	if !errors.Is(sa.Err(), ErrHoldTimerExpired) {
		t.Errorf("session error = %v, want ErrHoldTimerExpired", sa.Err())
	}
}

func TestNotificationTakesSessionDown(t *testing.T) {
	sa, sb, ha, _ := establishPair(t,
		Config{LocalAS: 1},
		Config{LocalAS: 2},
	)
	_ = sb
	sb.sendNotification(wire.ErrCodeCease, 0)
	select {
	case <-ha.downCh:
	case <-time.After(5 * time.Second):
		t.Fatal("NOTIFICATION did not take the session down")
	}
	var ne *NotificationError
	if !errors.As(sa.Err(), &ne) || ne.Code != wire.ErrCodeCease {
		t.Errorf("session error = %v", sa.Err())
	}
}

func TestCloseIsIdempotentAndSignalsPeer(t *testing.T) {
	sa, sb, _, hb := establishPair(t,
		Config{LocalAS: 1},
		Config{LocalAS: 2},
	)
	if err := sa.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sa.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-hb.downCh:
	case <-time.After(5 * time.Second):
		t.Fatal("peer never noticed the close")
	}
	if sb.State() != StateClosed && sb.State() != StateEstablished {
		// The reader may still be delivering the down event; State will
		// settle to Closed.
		waitCond(t, func() bool { return sb.State() == StateClosed }, "peer close")
	}
	if err := sa.SendUpdate(&wire.Update{}); !errors.Is(err, ErrClosed) {
		t.Errorf("SendUpdate after close = %v, want ErrClosed", err)
	}
}

func TestStateString(t *testing.T) {
	states := map[State]string{
		StateIdle:        "Idle",
		StateOpenSent:    "OpenSent",
		StateOpenConfirm: "OpenConfirm",
		StateEstablished: "Established",
		StateClosed:      "Closed",
		State(99):        "Unknown",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q", s, s.String())
		}
	}
}

func waitCond(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
