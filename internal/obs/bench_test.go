package obs

import (
	"testing"
	"time"
)

// BenchmarkObsRecord pins the per-observation cost of the enabled
// record path; the acceptance bar is ≤200ns and 0 allocs per stamp.
func BenchmarkObsRecord(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(StageDecode, uint64(i), 150*time.Nanosecond)
	}
}

// BenchmarkObsRecordBaseline is the no-op comparison: the same call
// against a nil recorder, i.e. the cost instrumented code pays when
// observation is off entirely.
func BenchmarkObsRecordBaseline(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(StageDecode, uint64(i), 150*time.Nanosecond)
	}
}

// BenchmarkObsStamp measures a full message lifecycle: Start at ingest,
// three crossings, and the cumulative alarm End — five clock reads.
func BenchmarkObsStamp(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := r.Start(uint64(i))
		r.Cross(&st, StageDecode)
		r.Cross(&st, StageValidate)
		r.Cross(&st, StageRIB)
		r.End(&st, StageAlarm)
	}
}

// BenchmarkObsStampBaseline is the same lifecycle against a disabled
// recorder: one atomic load per call.
func BenchmarkObsStampBaseline(b *testing.B) {
	r := NewRecorder()
	r.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := r.Start(uint64(i))
		r.Cross(&st, StageDecode)
		r.Cross(&st, StageValidate)
		r.Cross(&st, StageRIB)
		r.End(&st, StageAlarm)
	}
}

// BenchmarkObsCross isolates one stage crossing (one clock read plus
// one Record) — the unit the ≤200ns acceptance bound applies to.
func BenchmarkObsCross(b *testing.B) {
	r := NewRecorder()
	st := r.Start(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Cross(&st, StageSession)
	}
}

// BenchmarkObsSnapshot prices the read side (scrape-time only, never on
// the hot path).
func BenchmarkObsSnapshot(b *testing.B) {
	r := NewRecorder()
	for i := 0; i < 10000; i++ {
		r.Record(StageDecode, uint64(i), time.Duration(i)*time.Nanosecond)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if snaps := r.Snapshot(); len(snaps) != int(NumStages) {
			b.Fatal("bad snapshot")
		}
	}
}
