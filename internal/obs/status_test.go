package obs

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func statusFixture() (*StatusHandler, *Recorder) {
	reg := telemetry.NewRegistry("t")
	reg.Counter("updates_total", "updates").Add(12)
	reg.Gauge("rislive_lag_ms", "stream lag").Set(340)
	reg.CounterVec("moas_alarm_class_total", "alarms by class", "class").
		With("forged").Add(3)
	reg.CounterVec("monitor_alarm_class_total", "monitor alarms", "class").
		With("forged").Add(2)
	reg.Histogram("apply_seconds", "apply latency", nil).Observe(0.004)

	rec := NewRecorder()
	rec.Record(StageDecode, 11, 300*time.Nanosecond)
	rec.Record(StageAlarm, 11, 2*time.Millisecond)

	var replay Progress
	replay.SetTotalBytes(100)
	replay.AddBytes(100)
	replay.AddRecords(9)
	replay.MarkDone()

	smp := NewSampler(4, time.Hour)
	smp.record(takeSample())

	h := NewStatusHandler(StatusConfig{
		Registry: reg,
		Stages:   rec,
		Runtime:  smp,
		Replay:   &replay,
		Ready:    func() error { return nil },
	})
	return h, rec
}

func TestStatusDoc(t *testing.T) {
	h, _ := statusFixture()
	doc := h.Doc()

	if doc.Ready == nil || !*doc.Ready {
		t.Fatalf("ready = %+v, want true", doc.Ready)
	}
	if len(doc.Stages) != int(NumStages) {
		t.Fatalf("stages = %d, want %d", len(doc.Stages), NumStages)
	}
	if doc.Stages[StageDecode].Count != 1 || doc.Stages[StageAlarm].Count != 1 {
		t.Fatalf("stage counts wrong: %+v", doc.Stages)
	}
	if doc.LagMs == nil || *doc.LagMs != 340 {
		t.Fatalf("lagMs = %v, want 340", doc.LagMs)
	}
	// Alarm classes merge across the speaker and monitor families.
	if got := doc.AlarmClasses["forged"]; got != 5 {
		t.Fatalf("alarmClasses[forged] = %g, want 5", got)
	}
	if doc.Replay == nil || !doc.Replay.Done || doc.Replay.Records != 9 {
		t.Fatalf("replay = %+v", doc.Replay)
	}
	if doc.Runtime == nil || doc.Runtime.Goroutines <= 0 {
		t.Fatalf("runtime = %+v", doc.Runtime)
	}
	if got := doc.Counters["t_updates_total"]; got != 12 {
		t.Fatalf("counters = %+v", doc.Counters)
	}
	if got := doc.Counters[`t_moas_alarm_class_total{class="forged"}`]; got != 3 {
		t.Fatalf("labeled counter key missing: %+v", doc.Counters)
	}
	hs, ok := doc.Histograms["t_apply_seconds"]
	if !ok || hs.Count != 1 {
		t.Fatalf("histograms = %+v", doc.Histograms)
	}
	if hs.P50 <= 0 || hs.P99 < hs.P50 {
		t.Fatalf("quantiles = %+v", hs)
	}
}

func TestStatusReadyError(t *testing.T) {
	h := NewStatusHandler(StatusConfig{Ready: func() error { return errors.New("rtr not synced") }})
	doc := h.Doc()
	if doc.Ready == nil || *doc.Ready || doc.ReadyError != "rtr not synced" {
		t.Fatalf("doc = %+v, want not-ready with error", doc)
	}
}

func TestStatusServeJSONAndText(t *testing.T) {
	h, _ := statusFixture()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/status?format=json", nil))
	if rec.Code != 200 || !strings.Contains(rec.Header().Get("Content-Type"), "json") {
		t.Fatalf("json response: %d %s", rec.Code, rec.Header().Get("Content-Type"))
	}
	var doc StatusDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(doc.Stages) != int(NumStages) {
		t.Fatalf("json stages = %d", len(doc.Stages))
	}

	// Accept header selects JSON too.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/debug/status", nil)
	req.Header.Set("Accept", "application/json")
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Header().Get("Content-Type"), "json") {
		t.Fatalf("Accept: application/json got %s", rec.Header().Get("Content-Type"))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/status", nil))
	body := rec.Body.String()
	for _, want := range []string{"uptime:", "stage latency", "decode", "alarm", "stream lag: 340ms", "alarm classes:", "forged", "replay: 9 records"} {
		if !strings.Contains(body, want) {
			t.Errorf("text view missing %q in:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("PUT", "/debug/status", nil))
	if rec.Code != 405 {
		t.Fatalf("PUT status = %d, want 405", rec.Code)
	}
}

func TestStatusEmptyConfig(t *testing.T) {
	h := NewStatusHandler(StatusConfig{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/status?format=json", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var doc StatusDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if doc.Ready != nil || doc.Stages != nil || doc.LagMs != nil {
		t.Fatalf("empty config produced %+v", doc)
	}
}
