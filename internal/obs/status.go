package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// StatusConfig wires the sources the consolidated /debug/status
// endpoint aggregates. Every field is optional; absent sources are
// simply omitted from the document.
type StatusConfig struct {
	// Registry supplies counters, gauges, and histograms (with quantile
	// estimates), plus the derived stream-lag and alarm-class views.
	Registry *telemetry.Registry
	// Stages supplies the per-stage detection-latency histograms.
	Stages *Recorder
	// Runtime supplies the most recent runtime vitals sample.
	Runtime *Sampler
	// Replay supplies MRT replay progress.
	Replay *Progress
	// Ready mirrors the /readyz probe so one scrape answers both
	// "how fast" and "is it serving".
	Ready func() error
}

// HistogramSummary is one registry histogram flattened for consumers:
// totals plus pre-computed quantile estimates.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// StatusDoc is the consolidated /debug/status document. Field order is
// the rendering order of the text view.
type StatusDoc struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Ready         *bool   `json:"ready,omitempty"`
	ReadyError    string  `json:"readyError,omitempty"`
	// Stages is the detection-latency breakdown, stage order.
	Stages []StageSnapshot `json:"stages,omitempty"`
	// LagMs is the RIS-Live stream-lag watermark (wall clock minus
	// message timestamp) when a lag gauge is registered.
	LagMs *int64 `json:"lagMs,omitempty"`
	// AlarmClasses sums every `*_alarm_class_total` family by class
	// label — the one view moas-top ranks.
	AlarmClasses map[string]float64 `json:"alarmClasses,omitempty"`
	Replay       *ProgressSnapshot  `json:"replay,omitempty"`
	Runtime      *RuntimeSample     `json:"runtime,omitempty"`
	// Counters and Gauges flatten the registry into the same series-key
	// space as the Prometheus text exposition (name{label="v"}).
	Counters   map[string]float64          `json:"counters,omitempty"`
	Gauges     map[string]float64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

// StatusHandler serves the consolidated status document as JSON
// (?format=json or Accept: application/json) or a human-readable text
// summary (default).
type StatusHandler struct {
	cfg   StatusConfig
	start time.Time
}

// NewStatusHandler returns a handler over the given sources.
func NewStatusHandler(cfg StatusConfig) *StatusHandler {
	return &StatusHandler{cfg: cfg, start: time.Now()}
}

// Doc builds the current status document.
func (h *StatusHandler) Doc() StatusDoc {
	doc := StatusDoc{
		UptimeSeconds: time.Since(h.start).Seconds(),
		Stages:        h.cfg.Stages.Snapshot(),
	}
	if h.cfg.Ready != nil {
		ok := true
		if err := h.cfg.Ready(); err != nil {
			ok = false
			doc.ReadyError = err.Error()
		}
		doc.Ready = &ok
	}
	if sm, has := h.cfg.Runtime.Last(); has {
		doc.Runtime = &sm
	}
	if h.cfg.Replay != nil {
		snap := h.cfg.Replay.Snapshot()
		doc.Replay = &snap
	}
	if h.cfg.Registry != nil {
		h.flatten(&doc, h.cfg.Registry.Gather())
	}
	return doc
}

// flatten renders registry families into the doc's counter/gauge/
// histogram maps and derives the lag and alarm-class views.
func (h *StatusHandler) flatten(doc *StatusDoc, fams []telemetry.FamilySnapshot) {
	for _, f := range fams {
		for _, s := range f.Series {
			key := seriesKey(f.Name, f.LabelKeys, s.LabelValues)
			switch f.Kind {
			case telemetry.KindCounter:
				if doc.Counters == nil {
					doc.Counters = make(map[string]float64)
				}
				doc.Counters[key] = s.Value
				if class, ok := alarmClassOf(f.Name, f.LabelKeys, s.LabelValues); ok {
					if doc.AlarmClasses == nil {
						doc.AlarmClasses = make(map[string]float64)
					}
					doc.AlarmClasses[class] += s.Value
				}
			case telemetry.KindGauge:
				if doc.Gauges == nil {
					doc.Gauges = make(map[string]float64)
				}
				doc.Gauges[key] = s.Value
				if strings.HasSuffix(f.Name, "_lag_ms") && len(s.LabelValues) == 0 {
					v := int64(s.Value)
					doc.LagMs = &v
				}
			case telemetry.KindHistogram:
				if s.Histogram == nil {
					continue
				}
				if doc.Histograms == nil {
					doc.Histograms = make(map[string]HistogramSummary)
				}
				sum := HistogramSummary{Count: s.Histogram.Count, Sum: s.Histogram.Sum}
				if s.Histogram.Count > 0 {
					sum.P50 = finiteOr0(s.Histogram.Quantile(0.50))
					sum.P90 = finiteOr0(s.Histogram.Quantile(0.90))
					sum.P99 = finiteOr0(s.Histogram.Quantile(0.99))
				}
				doc.Histograms[key] = sum
			}
		}
	}
}

// alarmClassOf recognizes `*_alarm_class_total`-style counter series
// and extracts the class label value.
func alarmClassOf(name string, keys, values []string) (string, bool) {
	if !strings.HasSuffix(name, "_alarm_class_total") {
		return "", false
	}
	for i, k := range keys {
		if k == "class" && i < len(values) {
			return values[i], true
		}
	}
	return "", false
}

func finiteOr0(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// seriesKey renders a series exactly as the Prometheus text exposition
// keys it: name, then {k="v",...} when labeled.
func seriesKey(name string, keys, values []string) string {
	if len(keys) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, "%s=%q", k, v)
	}
	b.WriteByte('}')
	return b.String()
}

// ServeHTTP serves the document. JSON when ?format=json or the Accept
// header asks for application/json; text otherwise.
func (h *StatusHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	doc := h.Doc()
	wantJSON := r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json")
	if wantJSON {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	writeStatusText(w, &doc)
}

// writeStatusText renders the operator-facing text view.
func writeStatusText(w http.ResponseWriter, doc *StatusDoc) {
	fmt.Fprintf(w, "uptime: %.1fs\n", doc.UptimeSeconds)
	if doc.Ready != nil {
		if *doc.Ready {
			fmt.Fprintf(w, "ready: true\n")
		} else {
			fmt.Fprintf(w, "ready: false (%s)\n", doc.ReadyError)
		}
	}
	if len(doc.Stages) > 0 {
		fmt.Fprintf(w, "\nstage latency (count p50 p90 p99 max):\n")
		for _, st := range doc.Stages {
			fmt.Fprintf(w, "  %-9s %8d  %10s %10s %10s %10s\n",
				st.Stage, st.Count,
				fmtNs(st.P50Ns), fmtNs(st.P90Ns), fmtNs(st.P99Ns), fmtNs(st.MaxNs))
		}
	}
	if doc.LagMs != nil {
		fmt.Fprintf(w, "\nstream lag: %dms\n", *doc.LagMs)
	}
	if doc.Replay != nil {
		fmt.Fprintf(w, "\nreplay: %d records, %d bytes (%.1f%%), done=%v\n",
			doc.Replay.Records, doc.Replay.Bytes, doc.Replay.Percent, doc.Replay.Done)
	}
	if len(doc.AlarmClasses) > 0 {
		fmt.Fprintf(w, "\nalarm classes:\n")
		classes := make([]string, 0, len(doc.AlarmClasses))
		for c := range doc.AlarmClasses {
			classes = append(classes, c)
		}
		sort.Slice(classes, func(i, j int) bool {
			if doc.AlarmClasses[classes[i]] != doc.AlarmClasses[classes[j]] {
				return doc.AlarmClasses[classes[i]] > doc.AlarmClasses[classes[j]]
			}
			return classes[i] < classes[j]
		})
		for _, c := range classes {
			fmt.Fprintf(w, "  %-24s %g\n", c, doc.AlarmClasses[c])
		}
	}
	if doc.Runtime != nil {
		fmt.Fprintf(w, "\nruntime: goroutines=%d heap=%dB gc=%d lastPause=%s\n",
			doc.Runtime.Goroutines, doc.Runtime.HeapAllocBytes,
			doc.Runtime.NumGC, fmtNs(int64(doc.Runtime.LastGCPauseNs)))
	}
	// Counters and gauges round out the text view, sorted for stability.
	writeKVBlock(w, "counters", doc.Counters)
	writeKVBlock(w, "gauges", doc.Gauges)
	if len(doc.Histograms) > 0 {
		fmt.Fprintf(w, "\nhistograms (count sum p50 p90 p99):\n")
		keys := sortedKeysH(doc.Histograms)
		for _, k := range keys {
			hs := doc.Histograms[k]
			fmt.Fprintf(w, "  %-48s %8d %12g %10g %10g %10g\n",
				k, hs.Count, hs.Sum, hs.P50, hs.P90, hs.P99)
		}
	}
}

func writeKVBlock(w http.ResponseWriter, title string, m map[string]float64) {
	if len(m) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%s:\n", title)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %-48s %g\n", k, m[k])
	}
}

func sortedKeysH(m map[string]HistogramSummary) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtNs renders a nanosecond reading with an adaptive unit.
func fmtNs(ns int64) string {
	switch {
	case ns >= int64(time.Second):
		return fmt.Sprintf("%.2fs", float64(ns)/float64(time.Second))
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.2fms", float64(ns)/float64(time.Millisecond))
	case ns >= int64(time.Microsecond):
		return fmt.Sprintf("%.1fµs", float64(ns)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
