package obs

import (
	"io"
	"sync/atomic"
)

// Progress tracks an MRT replay: records and bytes consumed against an
// optional byte total (known when replaying from a regular file), plus
// a completion flag that readiness probes consult.
type Progress struct {
	records atomic.Uint64
	bytes   atomic.Uint64
	total   atomic.Uint64
	done    atomic.Bool
}

// ProgressSnapshot is one point-in-time reading of a replay.
type ProgressSnapshot struct {
	Records    uint64 `json:"records"`
	Bytes      uint64 `json:"bytes"`
	TotalBytes uint64 `json:"totalBytes,omitempty"`
	// Percent is bytes/total ×100, 0 when the total is unknown.
	Percent float64 `json:"percent"`
	Done    bool    `json:"done"`
}

// AddRecords adds n consumed records.
func (p *Progress) AddRecords(n uint64) {
	if p != nil {
		p.records.Add(n)
	}
}

// AddBytes adds n consumed bytes.
func (p *Progress) AddBytes(n uint64) {
	if p != nil {
		p.bytes.Add(n)
	}
}

// SetTotalBytes records the expected input size (0 = unknown).
func (p *Progress) SetTotalBytes(n uint64) {
	if p != nil {
		p.total.Store(n)
	}
}

// MarkDone flags the replay complete.
func (p *Progress) MarkDone() {
	if p != nil {
		p.done.Store(true)
	}
}

// Done reports whether the replay has completed.
func (p *Progress) Done() bool { return p != nil && p.done.Load() }

// Snapshot returns the current reading.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		Records:    p.records.Load(),
		Bytes:      p.bytes.Load(),
		TotalBytes: p.total.Load(),
		Done:       p.done.Load(),
	}
	if s.TotalBytes > 0 {
		s.Percent = 100 * float64(s.Bytes) / float64(s.TotalBytes)
		if s.Percent > 100 {
			s.Percent = 100
		}
	} else if s.Done {
		s.Percent = 100
	}
	return s
}

// CountReader wraps r, crediting every byte read to p.
func (p *Progress) CountReader(r io.Reader) io.Reader {
	if p == nil {
		return r
	}
	return &countingReader{r: r, p: p}
}

type countingReader struct {
	r io.Reader
	p *Progress
}

func (c *countingReader) Read(b []byte) (int, error) {
	n, err := c.r.Read(b)
	if n > 0 {
		c.p.AddBytes(uint64(n))
	}
	return n, err
}
