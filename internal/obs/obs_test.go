package obs

import (
	"math"
	"testing"
	"time"
)

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageDecode:   "decode",
		StageSession:  "session",
		StageValidate: "validate",
		StageRIB:      "rib",
		StageAlarm:    "alarm",
		NumStages:     "unknown",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("Stage(%d).String() = %q, want %q", s, got, name)
		}
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {255, 0},
		{256, 1}, {511, 1},
		{512, 2},
		{1 << 20, 13}, {1<<21 - 1, 13},
		{math.MaxInt64, numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every value must land in a bucket whose bound contains it.
	for i := 0; i < numBuckets-1; i++ {
		ub := BucketBound(i)
		if got := bucketOf(ub); got != i {
			t.Errorf("bucketOf(bound %d) = %d, want %d", ub, got, i)
		}
		if got := bucketOf(ub + 1); got != i+1 {
			t.Errorf("bucketOf(bound+1 %d) = %d, want %d", ub+1, got, i+1)
		}
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	r := NewRecorder()
	r.Record(StageDecode, 7, 100*time.Nanosecond)
	r.Record(StageDecode, 8, 100*time.Nanosecond)
	r.Record(StageDecode, 9, 10*time.Millisecond)

	snaps := r.Snapshot()
	if len(snaps) != int(NumStages) {
		t.Fatalf("Snapshot stages = %d, want %d", len(snaps), NumStages)
	}
	dec := snaps[StageDecode]
	if dec.Stage != "decode" || dec.Count != 3 {
		t.Fatalf("decode snapshot = %+v, want stage decode count 3", dec)
	}
	if dec.MaxNs != int64(10*time.Millisecond) {
		t.Errorf("MaxNs = %d, want %d", dec.MaxNs, 10*time.Millisecond)
	}
	if dec.SumNs != int64(10*time.Millisecond+200*time.Nanosecond) {
		t.Errorf("SumNs = %d", dec.SumNs)
	}
	if len(dec.Buckets) != 2 {
		t.Fatalf("buckets = %+v, want 2 non-empty", dec.Buckets)
	}
	// The fast bucket keeps a recent landing span, the slow one keeps 9.
	if got := dec.Buckets[0].ExemplarSpan; got != 8 {
		t.Errorf("fast-bucket exemplar = %d, want 8 (last writer)", got)
	}
	if got := dec.Buckets[1].ExemplarSpan; got != 9 {
		t.Errorf("slow-bucket exemplar = %d, want 9", got)
	}
	// p50 sits in the fast bucket, p99 in the slow one.
	if dec.P50Ns > BucketBound(0) {
		t.Errorf("P50Ns = %d, want ≤ %d", dec.P50Ns, BucketBound(0))
	}
	if dec.P99Ns < int64(time.Millisecond) {
		t.Errorf("P99Ns = %d, want ≥ 1ms", dec.P99Ns)
	}
	if dec.P99Ns > dec.MaxNs {
		t.Errorf("P99Ns = %d exceeds max %d", dec.P99Ns, dec.MaxNs)
	}

	// Untouched stages still appear, with zero counts.
	if al := snaps[StageAlarm]; al.Stage != "alarm" || al.Count != 0 || len(al.Buckets) != 0 {
		t.Errorf("alarm snapshot = %+v, want empty", al)
	}
}

func TestRecordSpanZeroKeepsExemplar(t *testing.T) {
	r := NewRecorder()
	r.Record(StageRIB, 42, time.Nanosecond)
	r.Record(StageRIB, 0, time.Nanosecond)
	snap := r.Snapshot()[StageRIB]
	if len(snap.Buckets) != 1 || snap.Buckets[0].ExemplarSpan != 42 {
		t.Fatalf("buckets = %+v, want one bucket with exemplar 42", snap.Buckets)
	}
}

func TestStampCrossAndEnd(t *testing.T) {
	r := NewRecorder()
	st := r.Start(5)
	if !st.Started() || st.Span != 5 {
		t.Fatalf("Start → %+v, want started span 5", st)
	}
	r.Cross(&st, StageDecode)
	r.Cross(&st, StageSession)
	r.End(&st, StageAlarm)
	r.Cross(&st, StageRIB) // End must not have consumed the stamp
	for _, s := range []Stage{StageDecode, StageSession, StageRIB, StageAlarm} {
		if got := r.StageCount(s); got != 1 {
			t.Errorf("stage %s count = %d, want 1", s, got)
		}
	}
	// The cumulative alarm reading covers the decode+session deltas.
	snaps := r.Snapshot()
	if snaps[StageAlarm].SumNs < snaps[StageDecode].SumNs {
		t.Errorf("alarm sum %d < decode sum %d — End should be cumulative",
			snaps[StageAlarm].SumNs, snaps[StageDecode].SumNs)
	}
}

func TestNilAndDisabledAreInert(t *testing.T) {
	var nilRec *Recorder
	st := nilRec.Start(1)
	if st.Started() {
		t.Error("nil recorder minted a started stamp")
	}
	if st.Span != 1 {
		t.Error("nil recorder dropped the span")
	}
	nilRec.Cross(&st, StageDecode)
	nilRec.End(&st, StageAlarm)
	nilRec.Record(StageDecode, 1, time.Second)
	if nilRec.Snapshot() != nil {
		t.Error("nil Snapshot not nil")
	}
	if nilRec.Enabled() {
		t.Error("nil recorder enabled")
	}

	r := NewRecorder()
	r.SetEnabled(false)
	st2 := r.Start(2)
	if st2.Started() {
		t.Error("disabled recorder minted a started stamp")
	}
	r.Record(StageDecode, 2, time.Second)
	if got := r.StageCount(StageDecode); got != 0 {
		t.Errorf("disabled recorder recorded %d observations", got)
	}
	// A stamp minted while disabled stays inert after re-enable.
	r.SetEnabled(true)
	r.Cross(&st2, StageDecode)
	if got := r.StageCount(StageDecode); got != 0 {
		t.Errorf("inert stamp recorded %d observations", got)
	}
}

func TestRecordOutOfRangeStage(t *testing.T) {
	r := NewRecorder()
	r.Record(NumStages, 1, time.Second)
	r.Record(Stage(200), 1, time.Second)
	for _, s := range r.Snapshot() {
		if s.Count != 0 {
			t.Fatalf("out-of-range stage leaked into %s", s.Stage)
		}
	}
}

func TestNegativeDurationClampsToZero(t *testing.T) {
	r := NewRecorder()
	r.Record(StageDecode, 1, -time.Second)
	snap := r.Snapshot()[StageDecode]
	if snap.Count != 1 || snap.SumNs != 0 {
		t.Fatalf("snapshot = %+v, want count 1 sum 0", snap)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	r := NewRecorder()
	r.Record(StageValidate, 3, 700*time.Nanosecond)
	snap := r.Snapshot()[StageValidate]
	for _, q := range []int64{snap.P50Ns, snap.P90Ns, snap.P99Ns} {
		if q < bucketLower(bucketOf(700)) || q > snap.MaxNs {
			t.Errorf("quantile %d outside [%d, %d]", q, bucketLower(bucketOf(700)), snap.MaxNs)
		}
	}
}

// The record path must stay allocation-free: these guards back the
// //repro:allocfree annotations dynamically.
func TestRecordPathAllocFree(t *testing.T) {
	r := NewRecorder()
	if n := testing.AllocsPerRun(1000, func() {
		r.Record(StageDecode, 1, 100*time.Nanosecond)
	}); n != 0 {
		t.Errorf("Record allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		st := r.Start(2)
		r.Cross(&st, StageDecode)
		r.Cross(&st, StageSession)
		r.End(&st, StageAlarm)
	}); n != 0 {
		t.Errorf("Start/Cross/End allocates %.1f per run, want 0", n)
	}
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		st := nilRec.Start(3)
		nilRec.Cross(&st, StageDecode)
	}); n != 0 {
		t.Errorf("nil-recorder path allocates %.1f per run, want 0", n)
	}
}
