package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSamplerRingAndLast(t *testing.T) {
	s := NewSampler(4, time.Hour) // interval never fires; we drive record()
	defer s.Close()
	for i := 1; i <= 6; i++ {
		s.record(RuntimeSample{UnixNanos: int64(i)})
	}
	got := s.Samples()
	if len(got) != 4 {
		t.Fatalf("Samples len = %d, want ring size 4", len(got))
	}
	for i, sm := range got {
		if want := int64(i + 3); sm.UnixNanos != want {
			t.Errorf("sample[%d].UnixNanos = %d, want %d (oldest first)", i, sm.UnixNanos, want)
		}
	}
	last, ok := s.Last()
	if !ok || last.UnixNanos != 6 {
		t.Fatalf("Last = %+v ok=%v, want UnixNanos 6", last, ok)
	}
}

func TestSamplerStartClose(t *testing.T) {
	s := NewSampler(8, time.Millisecond)
	s.Start()
	s.Start() // idempotent
	if _, ok := s.Last(); !ok {
		t.Fatal("Start took no synchronous sample")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(s.Samples()) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler loop never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	s.Close() // idempotent
	n := len(s.Samples())
	time.Sleep(5 * time.Millisecond)
	if got := len(s.Samples()); got != n {
		t.Fatalf("sampler still recording after Close: %d → %d", n, got)
	}
	last, _ := s.Last()
	if last.Goroutines <= 0 || last.HeapAllocBytes == 0 {
		t.Errorf("sample looks empty: %+v", last)
	}
}

func TestSamplerCloseWithoutStart(t *testing.T) {
	s := NewSampler(2, time.Second)
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Close without Start hung")
	}
	var nilS *Sampler
	nilS.Start()
	nilS.Close()
	if _, ok := nilS.Last(); ok {
		t.Error("nil sampler has a sample")
	}
}

func TestSamplerServeHTTP(t *testing.T) {
	s := NewSampler(4, time.Hour)
	defer s.Close()
	s.record(takeSample())

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/runtime", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var out []RuntimeSample
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != 1 || out[0].Goroutines <= 0 {
		t.Fatalf("body = %+v, want one live sample", out)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/runtime", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
}

func TestProgress(t *testing.T) {
	var p Progress
	if p.Done() {
		t.Fatal("fresh progress done")
	}
	p.SetTotalBytes(200)
	p.AddRecords(3)
	p.AddBytes(50)
	s := p.Snapshot()
	if s.Records != 3 || s.Bytes != 50 || s.TotalBytes != 200 || s.Percent != 25 || s.Done {
		t.Fatalf("snapshot = %+v", s)
	}
	p.AddBytes(300) // over-read past the declared total clamps
	if pct := p.Snapshot().Percent; pct != 100 {
		t.Fatalf("percent = %g, want clamped 100", pct)
	}
	p.MarkDone()
	if !p.Done() || !p.Snapshot().Done {
		t.Fatal("MarkDone not visible")
	}

	var unknown Progress
	unknown.AddBytes(10)
	if pct := unknown.Snapshot().Percent; pct != 0 {
		t.Fatalf("unknown-total percent = %g, want 0", pct)
	}
	unknown.MarkDone()
	if pct := unknown.Snapshot().Percent; pct != 100 {
		t.Fatalf("done unknown-total percent = %g, want 100", pct)
	}

	var nilP *Progress
	nilP.AddRecords(1)
	nilP.AddBytes(1)
	nilP.MarkDone()
	if nilP.Done() || nilP.Snapshot().Records != 0 {
		t.Fatal("nil progress not inert")
	}
}

func TestCountReader(t *testing.T) {
	var p Progress
	r := p.CountReader(strings.NewReader("hello world"))
	buf := make([]byte, 5)
	n, _ := r.Read(buf)
	if n != 5 || p.Snapshot().Bytes != 5 {
		t.Fatalf("read %d, progress %d", n, p.Snapshot().Bytes)
	}
	var nilP *Progress
	src := strings.NewReader("x")
	if nilP.CountReader(src) != io.Reader(src) {
		t.Fatal("nil progress should pass the reader through")
	}
}
