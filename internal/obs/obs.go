// Package obs is the detection-latency observatory: a per-message
// stage-timing layer keyed on the span IDs the wire decoder (and the
// replay/streaming ingest paths) already mint. A monotonic ingest
// timestamp is stamped when a message enters the system — after the
// frame is read off the wire, before an MRT record decodes, before a
// RIS-Live line decodes — and every stage crossing after that records
// its delta into a fixed, allocation-free per-stage histogram:
//
//	decode   framing/parse cost of the message itself
//	session  decode completion → handler dispatch (queueing included)
//	validate MOAS-list check (speaker admit / monitor check)
//	rib      Loc-RIB apply and propagation
//	alarm    ingest → alarm raise, cumulative — the paper's detection
//	         latency, the one SLO an operator pages on
//
// Each histogram bucket retains an exemplar: the span ID of a recent
// message that landed in it, so a p99 outlier links straight to its
// /debug/trace timeline or /debug/alarms bundle instead of being an
// anonymous count. See docs/latency.md for the stage model.
//
// The record path (Record, Cross, End) is lock-free — atomic adds into
// fixed arrays — holds the //repro:allocfree contract, and is nil-safe
// throughout, so instrumented code needs no conditionals. The
// stagestamp analyzer additionally requires every record call site to
// name its stage with an explicit obs.Stage constant.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage boundary.
type Stage uint8

// Pipeline stages, in crossing order. StageAlarm is cumulative
// (ingest → alarm); the others are deltas from the previous crossing.
const (
	StageDecode Stage = iota
	StageSession
	StageValidate
	StageRIB
	StageAlarm
	// NumStages bounds the Stage space; not a stage itself.
	NumStages
)

func (s Stage) String() string {
	switch s {
	case StageDecode:
		return "decode"
	case StageSession:
		return "session"
	case StageValidate:
		return "validate"
	case StageRIB:
		return "rib"
	case StageAlarm:
		return "alarm"
	default:
		return "unknown"
	}
}

// Bucket geometry: powers of two in nanoseconds. Bucket 0 holds
// everything under 256ns; bucket i holds [2^(7+i), 2^(8+i)) ns; the
// last bucket is the +Inf overflow (everything ≥ ~1.07s).
const (
	bucketMinBits = 8
	numBuckets    = 24
)

// bucketOf maps a nanosecond duration to its bucket index.
//
//repro:allocfree
func bucketOf(ns int64) int {
	b := bits.Len64(uint64(ns))
	if b <= bucketMinBits {
		return 0
	}
	i := b - bucketMinBits
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i in
// nanoseconds (math.MaxInt64 for the overflow bucket).
func BucketBound(i int) int64 {
	if i < 0 {
		return 0
	}
	if i >= numBuckets-1 {
		return math.MaxInt64
	}
	return 1<<(bucketMinBits+i) - 1
}

// bucketLower returns the exclusive-lower/inclusive-lower edge of
// bucket i, used for quantile interpolation.
func bucketLower(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (bucketMinBits + i - 1)
}

// stageHist is one stage's latency histogram: per-bucket counts plus a
// per-bucket exemplar span, all atomics so the record path never locks.
type stageHist struct {
	counts [numBuckets]atomic.Uint64
	// exemplars[i] holds the span ID of a recent message that landed in
	// bucket i (0 = none yet). Last-writer-wins on purpose: "a recent
	// one" is the contract, not "the maximum".
	exemplars [numBuckets]atomic.Uint64
	count     atomic.Uint64
	sumNs     atomic.Int64
	maxNs     atomic.Int64
}

// Recorder accumulates per-stage latency histograms. The zero value is
// disabled; NewRecorder returns an enabled one. All methods are
// nil-receiver safe.
type Recorder struct {
	on atomic.Bool
	// epoch anchors relative time: deltas are computed against one
	// process-local monotonic reference so a Stamp is two plain int64s.
	epoch  time.Time
	stages [NumStages]stageHist
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder {
	r := &Recorder{epoch: time.Now()}
	r.on.Store(true)
	return r
}

// SetEnabled toggles recording. Disabled recorders cost one atomic load
// per call site.
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.on.Store(on)
	}
}

// Enabled reports whether the recorder is active.
//
//repro:allocfree
func (r *Recorder) Enabled() bool { return r != nil && r.on.Load() }

// now returns nanoseconds since the recorder's epoch, monotonic.
//
//repro:allocfree
func (r *Recorder) now() int64 { return int64(time.Since(r.epoch)) }

// Record adds one observation of d to stage, tagging the landing bucket
// with span as its exemplar (span 0 leaves the exemplar untouched).
//
//repro:allocfree
func (r *Recorder) Record(stage Stage, span uint64, d time.Duration) {
	if r == nil || !r.on.Load() || stage >= NumStages {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h := &r.stages[stage]
	i := bucketOf(ns)
	h.counts[i].Add(1)
	if span != 0 {
		h.exemplars[i].Store(span)
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Stamp carries one in-flight message's timing context: its span ID,
// the monotonic ingest instant, and the last stage crossing. It travels
// by value (or by pointer into per-connection scratch) alongside the
// message; the zero value is inert and every operation on it no-ops.
type Stamp struct {
	// Span is the message's span ID (the wire decoder ordinal, an MRT
	// record span, or a RIS-Live stream ordinal).
	Span uint64
	// t0 and last are nanoseconds since the recorder's epoch; 0 means
	// the stamp was never started (disabled or nil recorder).
	t0   int64
	last int64
}

// Started reports whether the stamp carries a live ingest timestamp.
//
//repro:allocfree
func (st *Stamp) Started() bool { return st != nil && st.t0 != 0 }

// Start mints a stamp at the ingest instant for the message identified
// by span (0 when the span is not known yet; fill Span in later).
//
//repro:allocfree
func (r *Recorder) Start(span uint64) Stamp {
	if r == nil || !r.on.Load() {
		return Stamp{Span: span}
	}
	n := r.now()
	if n == 0 {
		n = 1 // preserve the t0 != 0 "started" invariant
	}
	return Stamp{Span: span, t0: n, last: n}
}

// Cross records the delta since the previous crossing (or Start) into
// stage and advances the stamp. No-op on a nil/zero stamp or disabled
// recorder.
//
//repro:allocfree
func (r *Recorder) Cross(st *Stamp, stage Stage) {
	if r == nil || st == nil || st.t0 == 0 || !r.on.Load() {
		return
	}
	n := r.now()
	r.Record(stage, st.Span, time.Duration(n-st.last))
	st.last = n
}

// End records the cumulative latency from ingest (Start) into stage —
// the wire-arrival → alarm detection latency when used with StageAlarm.
// The stamp stays valid: End does not advance the crossing point, so a
// pipeline can End into StageAlarm and still Cross into StageRIB after.
//
//repro:allocfree
func (r *Recorder) End(st *Stamp, stage Stage) {
	if r == nil || st == nil || st.t0 == 0 || !r.on.Load() {
		return
	}
	r.Record(stage, st.Span, time.Duration(r.now()-st.t0))
}

// BucketSnapshot is one non-empty histogram bucket.
type BucketSnapshot struct {
	// UpperNs is the bucket's inclusive upper bound in nanoseconds;
	// math.MaxInt64 marks the overflow bucket (rendered as +Inf).
	UpperNs int64  `json:"upperNs"`
	Count   uint64 `json:"count"`
	// ExemplarSpan is the span ID of a recent message that landed here
	// (0 = none recorded).
	ExemplarSpan uint64 `json:"exemplarSpan,omitempty"`
}

// StageSnapshot is one stage's merged point-in-time reading, quantiles
// pre-computed so consumers (moas-top, /debug/status) need no
// client-side re-derivation.
type StageSnapshot struct {
	Stage string `json:"stage"`
	Count uint64 `json:"count"`
	SumNs int64  `json:"sumNs"`
	MaxNs int64  `json:"maxNs"`
	P50Ns int64  `json:"p50Ns"`
	P90Ns int64  `json:"p90Ns"`
	P99Ns int64  `json:"p99Ns"`
	// Buckets lists only the non-empty buckets, smallest bound first.
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot returns every stage's current histogram, in stage order.
// Stages with no observations are included with Count 0 so consumers
// always see the complete stage model.
func (r *Recorder) Snapshot() []StageSnapshot {
	if r == nil {
		return nil
	}
	out := make([]StageSnapshot, 0, int(NumStages))
	for s := Stage(0); s < NumStages; s++ {
		h := &r.stages[s]
		snap := StageSnapshot{
			Stage: s.String(),
			Count: h.count.Load(),
			SumNs: h.sumNs.Load(),
			MaxNs: h.maxNs.Load(),
		}
		var counts [numBuckets]uint64
		for i := 0; i < numBuckets; i++ {
			counts[i] = h.counts[i].Load()
			if counts[i] == 0 {
				continue
			}
			snap.Buckets = append(snap.Buckets, BucketSnapshot{
				UpperNs:      BucketBound(i),
				Count:        counts[i],
				ExemplarSpan: h.exemplars[i].Load(),
			})
		}
		snap.P50Ns = quantileNs(counts, snap.Count, snap.MaxNs, 0.50)
		snap.P90Ns = quantileNs(counts, snap.Count, snap.MaxNs, 0.90)
		snap.P99Ns = quantileNs(counts, snap.Count, snap.MaxNs, 0.99)
		out = append(out, snap)
	}
	return out
}

// StageCount returns the observation count of one stage (0 on nil).
func (r *Recorder) StageCount(stage Stage) uint64 {
	if r == nil || stage >= NumStages {
		return 0
	}
	return r.stages[stage].count.Load()
}

// quantileNs estimates the q-quantile from power-of-two bucket counts
// by linear interpolation inside the landing bucket; the overflow
// bucket interpolates toward the observed maximum.
func quantileNs(counts [numBuckets]uint64, total uint64, maxNs int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		c := counts[i]
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		lo := bucketLower(i)
		hi := BucketBound(i)
		if i == numBuckets-1 || hi > maxNs {
			hi = maxNs // never report beyond what was observed
		}
		if hi < lo {
			return lo
		}
		frac := float64(rank-cum) / float64(c)
		return lo + int64(frac*float64(hi-lo))
	}
	return maxNs
}
