package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"time"
)

// RuntimeSample is one reading of the process's runtime vitals.
type RuntimeSample struct {
	UnixNanos      int64  `json:"unixNanos"`
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heapAllocBytes"`
	HeapSysBytes   uint64 `json:"heapSysBytes"`
	NumGC          uint32 `json:"numGC"`
	LastGCPauseNs  uint64 `json:"lastGCPauseNs"`
	TotalGCPauseNs uint64 `json:"totalGCPauseNs"`
}

// Sampler periodically reads runtime vitals (heap, GC pause, goroutine
// count) into a fixed ring, served as JSON at /debug/runtime. Memory is
// bounded by construction: the ring never grows.
type Sampler struct {
	interval time.Duration

	mu   sync.Mutex
	ring []RuntimeSample
	next int // ring insertion cursor
	n    int // samples held (≤ len(ring))

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewSampler returns a sampler holding the most recent `size` samples
// taken every `interval` (defaults: 256 samples, 1s).
func NewSampler(size int, interval time.Duration) *Sampler {
	if size <= 0 {
		size = 256
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &Sampler{
		interval: interval,
		ring:     make([]RuntimeSample, size),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the sampling loop (idempotent). One sample is taken
// synchronously so Last is immediately meaningful.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.startOnce.Do(func() {
		s.record(takeSample())
		go s.loop()
	})
}

// Close stops the sampling loop and waits for it to exit. Safe to call
// without Start and more than once.
func (s *Sampler) Close() {
	if s == nil {
		return
	}
	started := true
	s.startOnce.Do(func() { started = false })
	s.stopOnce.Do(func() { close(s.stop) })
	if started {
		<-s.done
	}
}

func (s *Sampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.record(takeSample())
		}
	}
}

func takeSample() RuntimeSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeSample{
		UnixNanos:      time.Now().UnixNano(),
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
		LastGCPauseNs:  ms.PauseNs[(ms.NumGC+255)%256],
		TotalGCPauseNs: ms.PauseTotalNs,
	}
}

func (s *Sampler) record(sm RuntimeSample) {
	s.mu.Lock()
	s.ring[s.next] = sm
	s.next = (s.next + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.mu.Unlock()
}

// Samples returns the held samples, oldest first.
func (s *Sampler) Samples() []RuntimeSample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RuntimeSample, 0, s.n)
	start := s.next - s.n
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(start+i)%len(s.ring)])
	}
	return out
}

// Last returns the most recent sample and whether one exists.
func (s *Sampler) Last() (RuntimeSample, bool) {
	if s == nil {
		return RuntimeSample{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return RuntimeSample{}, false
	}
	i := s.next - 1
	if i < 0 {
		i += len(s.ring)
	}
	return s.ring[i], true
}

// ServeHTTP serves the ring as a JSON array, oldest sample first.
func (s *Sampler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	samples := s.Samples()
	if samples == nil {
		samples = []RuntimeSample{}
	}
	enc.Encode(samples)
}
