package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry("t")
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("peers", "peer count")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %d, want 1", got)
	}
	// Re-registration returns the same instruments.
	if r.Counter("reqs_total", "requests") != c {
		t.Error("counter re-registration returned a new instrument")
	}
	if r.Gauge("peers", "peer count") != g {
		t.Error("gauge re-registration returned a new instrument")
	}
}

func TestVecSeriesIdentity(t *testing.T) {
	r := NewRegistry("t")
	v := r.CounterVec("msgs_total", "messages", "type")
	a := v.With("update")
	b := v.With("update")
	if a != b {
		t.Error("same label values produced distinct counters")
	}
	other := v.With("keepalive")
	if a == other {
		t.Error("distinct label values shared a counter")
	}
	a.Add(2)
	other.Inc()
	fams := r.Gather()
	if len(fams) != 1 || len(fams[0].Series) != 2 {
		t.Fatalf("gather: %+v", fams)
	}
	// Series sorted by label value: keepalive before update.
	if fams[0].Series[0].LabelValues[0] != "keepalive" || fams[0].Series[0].Value != 1 {
		t.Errorf("series[0] = %+v", fams[0].Series[0])
	}
	if fams[0].Series[1].LabelValues[0] != "update" || fams[0].Series[1].Value != 2 {
		t.Errorf("series[1] = %+v", fams[0].Series[1])
	}
}

func TestRegistrationMismatchPanics(t *testing.T) {
	r := NewRegistry("t")
	r.Counter("x_total", "")
	for name, fn := range map[string]func(){
		"kind":      func() { r.Gauge("x_total", "") },
		"labels":    func() { r.CounterVec("x_total", "", "k") },
		"badName":   func() { r.Counter("bad-name", "") },
		"badLabel":  func() { r.CounterVec("y_total", "", "bad label") },
		"emptyName": func() { r.Counter("", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry("t")
	h := r.Histogram("rtt_seconds", "round trips", []float64{0.01, 0.1, 1})
	h.Observe(0.01) // exactly on a bound: counted in that bucket (le is inclusive)
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(99) // above the last bound: only count/sum
	snap := h.Snapshot()
	if want := []uint64{2, 0, 1}; !equalU64(snap.Counts, want) {
		t.Errorf("counts = %v, want %v", snap.Counts, want)
	}
	if snap.Count != 4 {
		t.Errorf("count = %d, want 4", snap.Count)
	}
	if want := 0.01 + 0.005 + 0.5 + 99; math.Abs(snap.Sum-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", snap.Sum, want)
	}
}

func TestHistogramInfBoundDropped(t *testing.T) {
	r := NewRegistry("t")
	h := r.Histogram("x_seconds", "", []float64{1, math.Inf(1)})
	if got := len(h.Snapshot().Bounds); got != 1 {
		t.Errorf("bounds = %d, want 1 (+Inf implicit)", got)
	}
}

func TestBucketHelpers(t *testing.T) {
	if got := ExpBuckets(1, 10, 3); !equalF64(got, []float64{1, 10, 100}) {
		t.Errorf("ExpBuckets = %v", got)
	}
	if got := LinearBuckets(0.5, 0.5, 3); !equalF64(got, []float64{0.5, 1, 1.5}) {
		t.Errorf("LinearBuckets = %v", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry("t")
	h := r.Histogram("x_seconds", "", []float64{1})
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*per || snap.Counts[0] != goroutines*per {
		t.Errorf("snapshot = %+v, want %d observations", snap, goroutines*per)
	}
}

func TestAdminEndpoints(t *testing.T) {
	r := NewRegistry("t")
	r.Counter("reqs_total", "requests").Add(7)
	mib := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"mib":true}`))
	})
	a, err := ServeAdmin("127.0.0.1:0", AdminConfig{Registry: r, MIB: mib})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	text := get(t, "http://"+a.Addr()+"/metrics")
	if !strings.Contains(text, "t_reqs_total 7") {
		t.Errorf("/metrics:\n%s", text)
	}
	js := get(t, "http://"+a.Addr()+"/metrics?format=json")
	var doc struct {
		Metrics []struct {
			Name   string `json:"name"`
			Series []struct {
				Value *float64 `json:"value"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(js), &doc); err != nil {
		t.Fatalf("metrics json: %v\n%s", err, js)
	}
	if len(doc.Metrics) != 1 || doc.Metrics[0].Name != "t_reqs_total" || *doc.Metrics[0].Series[0].Value != 7 {
		t.Errorf("json doc = %+v", doc)
	}
	if got := get(t, "http://"+a.Addr()+"/healthz"); got != "ok\n" {
		t.Errorf("/healthz = %q", got)
	}
	if got := get(t, "http://"+a.Addr()+"/debug/mib"); got != `{"mib":true}` {
		t.Errorf("/debug/mib = %q", got)
	}
	if err := a.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestAdminHealthzFailure(t *testing.T) {
	r := NewRegistry("t")
	a, err := ServeAdmin("127.0.0.1:0", AdminConfig{
		Registry: r,
		Health:   func() error { return io.ErrUnexpectedEOF },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	resp, err := http.Get("http://" + a.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
