package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds the fixture both encoder golden tests share:
// every metric kind, labeled and unlabeled series, label values needing
// escaping, and histogram observations on, below, between and above the
// bucket bounds.
func goldenRegistry() *Registry {
	r := NewRegistry("demo")
	r.Counter("requests_total", "Total requests served.").Add(42)

	msgs := r.CounterVec("msgs_total", "Messages by type.", "type")
	msgs.With("update").Add(3)
	msgs.With("keepalive").Add(7)

	r.Gauge("peers", "Established peers.").Set(2)

	esc := r.GaugeVec("weird_labels", `Help with a backslash \ and
a newline.`, "path")
	esc.With("C:\\dir \"quoted\"\nnext").Set(1)

	// Observed values are binary-exact (powers of two and their sums) so
	// the merged _sum is identical no matter which lock stripe each
	// observation landed on — float addition order must not leak into
	// golden output.
	h := r.Histogram("rtt_seconds", "Round-trip time.", []float64{0.25, 0.5, 1, 2})
	h.Observe(0.25) // exactly the first bound: inclusive
	h.Observe(0.125)
	h.Observe(0.75)
	h.Observe(2) // exactly the last bound
	h.Observe(32)
	h.Observe(32) // two above every bound: only +Inf/_count/_sum move

	hv := r.HistogramVec("op_seconds", "Per-op latency.", []float64{0.5}, "op")
	hv.With("scrape").Observe(0.25)
	hv.With("dump") // declared but never observed: all-zero series
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenPrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "exposition.prom.golden", buf.Bytes())
}

func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "exposition.json.golden", buf.Bytes())
}

func TestGoldenEmptyRegistry(t *testing.T) {
	r := NewRegistry("")
	var prom, js bytes.Buffer
	if err := WritePrometheus(&prom, r); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&js, r); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "empty.prom.golden", prom.Bytes())
	checkGolden(t, "empty.json.golden", js.Bytes())
}
