// Package telemetry is the repo's stdlib-only metrics layer: atomic
// counters and gauges, lock-striped latency histograms, and a named
// Registry of labeled metric families with two exposition encodings
// (Prometheus text format and JSON) served from an admin HTTP endpoint.
//
// The paper's detection scheme only earns operational trust if its
// behaviour is observable: alarm rates, MOAS-list validation counts,
// session churn and propagation latencies are what an operator watches.
// Every subsystem (session, speaker, collector, daemon, monitor)
// registers its instruments here; cmd/* serve the registry via
// -metrics-addr.
//
// Concurrency: instruments are safe for concurrent use and their update
// paths are wait-free (counters, gauges) or lock-striped (histograms).
// Registration is cheap but takes locks; hot paths should register once
// and cache the returned instrument, as the instrumented packages do.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates the metric families a Registry can hold.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Counter is a monotonically increasing value. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry holds named metric families. The registry name is prefixed
// onto every family name at exposition (name_family), mirroring the
// Prometheus namespace convention.
type Registry struct {
	name string

	mu       sync.Mutex
	families map[string]*family // guarded by mu
}

// family is one named metric of one kind with a fixed label-key set and
// one series per distinct label-value tuple.
type family struct {
	name      string
	help      string
	kind      Kind
	labelKeys []string
	buckets   []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series // guarded by mu; keyed by joined label values
}

// series is one (labels → instrument) binding inside a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// NewRegistry returns an empty registry. name becomes the metric-name
// prefix ("" for none) and must be a valid metric-name fragment.
func NewRegistry(name string) *Registry {
	if name != "" {
		mustValidName(name)
	}
	return &Registry{
		name:     name,
		families: make(map[string]*family),
	}
}

// Name returns the registry's namespace prefix.
func (r *Registry) Name() string { return r.name }

// fullName joins the registry prefix onto a family name.
func (r *Registry) fullName(name string) string {
	if r.name == "" {
		return name
	}
	return r.name + "_" + name
}

// getFamily returns the named family, creating it on first use. It
// panics on a kind or label-key mismatch with an earlier registration:
// that is a programming error, not a runtime condition.
func (r *Registry) getFamily(name, help string, kind Kind, labelKeys []string, buckets []float64) *family {
	mustValidName(name)
	for _, k := range labelKeys {
		mustValidName(k)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:      name,
			help:      help,
			kind:      kind,
			labelKeys: append([]string(nil), labelKeys...),
			buckets:   append([]float64(nil), buckets...),
			series:    make(map[string]*series),
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	if len(f.labelKeys) != len(labelKeys) {
		panic(fmt.Sprintf("telemetry: metric %q re-registered with %d labels (was %d)", name, len(labelKeys), len(f.labelKeys)))
	}
	for i, k := range labelKeys {
		if f.labelKeys[i] != k {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with label %q (was %q)", name, k, f.labelKeys[i]))
		}
	}
	return f
}

// seriesKey joins label values into a map key. The separator cannot
// occur unescaped ambiguity-free in values, so escape it.
func seriesKey(values []string) string {
	if len(values) == 0 {
		return ""
	}
	esc := make([]string, len(values))
	for i, v := range values {
		esc[i] = strings.NewReplacer(`\`, `\\`, "\x1f", `\u`).Replace(v)
	}
	return strings.Join(esc, "\x1f")
}

// get returns the series for the given label values, creating its
// instrument on first use.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labelKeys) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labelKeys), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if ok {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = newHistogram(f.buckets)
	}
	f.series[key] = s
	return s
}

// Counter returns the unlabeled counter with the given name, creating
// it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.getFamily(name, help, KindCounter, nil, nil).get(nil).counter
}

// Gauge returns the unlabeled gauge with the given name, creating it on
// first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.getFamily(name, help, KindGauge, nil, nil).get(nil).gauge
}

// Histogram returns the unlabeled histogram with the given name,
// creating it on first use with the given bucket upper bounds (nil
// selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.getFamily(name, help, KindHistogram, nil, buckets).get(nil).hist
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{f: r.getFamily(name, help, KindCounter, labelKeys, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Hot paths should cache the result.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues).counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return &GaugeVec{f: r.getFamily(name, help, KindGauge, labelKeys, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.get(labelValues).gauge
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family with the given name
// and bucket bounds (nil selects DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.getFamily(name, help, KindHistogram, labelKeys, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(labelValues).hist
}

// FamilySnapshot is one family's point-in-time exposition view.
type FamilySnapshot struct {
	Name      string // full name including the registry prefix
	Help      string
	Kind      Kind
	LabelKeys []string
	Series    []SeriesSnapshot
}

// SeriesSnapshot is one series inside a FamilySnapshot.
type SeriesSnapshot struct {
	LabelValues []string
	// Value holds the counter or gauge reading (unused for histograms).
	Value float64
	// Histogram holds the histogram reading (histogram families only).
	Histogram *HistogramSnapshot
}

// Gather returns a consistent-enough snapshot of every family, sorted
// by name with series sorted by label values — the stable order both
// encoders rely on. Counters and gauges are read atomically; histogram
// stripes are merged under their stripe locks.
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:      r.fullName(f.name),
			Help:      f.help,
			Kind:      f.kind,
			LabelKeys: f.labelKeys,
		}
		f.mu.Lock()
		sers := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			sers = append(sers, s)
		}
		f.mu.Unlock()
		sort.Slice(sers, func(i, j int) bool {
			return lessStrings(sers[i].labelValues, sers[j].labelValues)
		})
		for _, s := range sers {
			ss := SeriesSnapshot{LabelValues: s.labelValues}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.counter.Value())
			case KindGauge:
				ss.Value = float64(s.gauge.Value())
			case KindHistogram:
				snap := s.hist.Snapshot()
				ss.Histogram = &snap
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

func lessStrings(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// mustValidName panics unless s is a valid Prometheus metric/label name
// fragment: [a-zA-Z_][a-zA-Z0-9_]*.
func mustValidName(s string) {
	if s == "" {
		panic("telemetry: empty name")
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if alpha || (i > 0 && c >= '0' && c <= '9') {
			continue
		}
		panic(fmt.Sprintf("telemetry: invalid name %q", s))
	}
}
