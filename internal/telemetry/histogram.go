package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram bucket upper bounds, in seconds,
// chosen for network RTT / handler-latency style measurements.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExpBuckets returns n bucket upper bounds starting at start and
// multiplying by factor — the exponential analogue of the unit-binned
// integer histograms in internal/stats, for continuous quantities whose
// interesting range spans orders of magnitude.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n bucket upper bounds starting at start with
// the given width.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("telemetry: LinearBuckets wants width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// histStripes is the histogram's stripe count. Striping trades a little
// snapshot cost for update-path scalability: concurrent observers on
// different Ps land on different stripes (and so different cache lines)
// instead of serializing on one mutex.
const histStripes = 16

// histStripe is one independently locked shard of a histogram. The
// trailing pad keeps adjacent stripes off one cache line.
type histStripe struct {
	mu     sync.Mutex
	counts []uint64 // per-bucket observation counts; guarded by mu
	count  uint64   // total observations; guarded by mu
	sum    float64  // sum of observed values; guarded by mu
	_      [32]byte
}

// Histogram counts observations into cumulative-at-exposition buckets
// with fixed upper bounds, like a Prometheus histogram. Observations
// are spread across lock stripes; Snapshot merges them.
//
// Construct via Registry.Histogram / HistogramVec; the zero value is
// not usable.
type Histogram struct {
	bounds  []float64 // sorted ascending; +Inf is implicit
	stripes [histStripes]histStripe
	// next hands out stripe indexes to the pool; see stripePool.
	next atomic.Uint32
	// stripePool caches a stripe index per P: a goroutine's Observe
	// usually gets the index the last Observe on that P used, so
	// same-CPU updates hit a warm, uncontended stripe without any
	// goroutine-identity tricks.
	stripePool sync.Pool
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	for i := 1; i < len(bs); i++ {
		if bs[i] == bs[i-1] {
			panic("telemetry: duplicate histogram bucket bound")
		}
	}
	if len(bs) > 0 && math.IsInf(bs[len(bs)-1], +1) {
		bs = bs[:len(bs)-1] // +Inf is always implicit
	}
	h := &Histogram{bounds: bs}
	for i := range h.stripes {
		// The histogram is not published yet, but locking keeps the
		// stripe's "guarded by mu" invariant checkable, and an
		// uncontended Lock at construction costs nothing.
		s := &h.stripes[i]
		s.mu.Lock()
		s.counts = make([]uint64, len(bs))
		s.mu.Unlock()
	}
	h.stripePool.New = func() any {
		idx := h.next.Add(1) % histStripes
		return &idx
	}
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	idx := h.stripePool.Get().(*uint32)
	s := &h.stripes[*idx]
	s.mu.Lock()
	// Linear scan: bucket counts are small (≤ ~20) and the slice is a
	// single cache line or two; binary search costs more in branches.
	for i, ub := range h.bounds {
		if v <= ub {
			s.counts[i]++
			break
		}
	}
	s.count++
	s.sum += v
	s.mu.Unlock()
	h.stripePool.Put(idx)
}

// HistogramSnapshot is a merged point-in-time histogram reading.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds (ascending, +Inf implicit).
	Bounds []float64
	// Counts[i] is the number of observations in (Bounds[i-1], Bounds[i]]
	// — per-bucket, not cumulative; encoders cumulate.
	Counts []uint64
	// Count is the total number of observations (including > last bound).
	Count uint64
	// Sum is the sum of all observed values.
	Sum float64
}

// Snapshot merges all stripes under their locks.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)),
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		for j, c := range s.counts {
			snap.Counts[j] += c
		}
		snap.Count += s.count
		snap.Sum += s.sum
		s.mu.Unlock()
	}
	return snap
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket counts
// by linear interpolation inside the bucket the rank lands in. The
// overflow bucket (observations above the last finite bound) has no
// upper edge, so estimates landing there clamp to the last finite
// bound — a deliberate under-estimate that keeps the value finite.
// Returns NaN when the snapshot holds no observations or no buckets.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return math.NaN()
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := float64(rank-cum) / float64(c)
		return lo + frac*(hi-lo)
	}
	// Rank falls in the implicit +Inf bucket: clamp to the last bound.
	return s.Bounds[len(s.Bounds)-1]
}
