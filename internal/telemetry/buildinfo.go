package telemetry

import (
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo registers the conventional build_info gauge on r: a
// constant 1 labeled with the module version, the Go toolchain version,
// and the VCS revision the binary was built from (when stamped by the
// Go tool). Fields the build didn't stamp report "unknown", so scrapers
// always see all three labels.
func RegisterBuildInfo(r *Registry) {
	version, revision := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				revision = s.Value
			}
		}
	}
	r.GaugeVec("build_info",
		"Build metadata: a constant 1 labeled with version, Go toolchain, and VCS revision.",
		"version", "goversion", "revision").
		With(version, runtime.Version(), revision).Set(1)
}
