package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// AdminConfig parameterizes an admin endpoint.
type AdminConfig struct {
	// Registry is served at /metrics; required.
	Registry *Registry
	// MIB, if set, is served at /debug/mib — the §4.2 management view of
	// whatever process owns this endpoint (speaker MIB, collector peer
	// table, ...).
	MIB http.Handler
	// Health, if set, is consulted by /healthz — the *liveness* probe
	// (is the process up and serving); a non-nil error turns the probe
	// into a 503. Nil means always live.
	Health func() error
	// Ready, if set, is consulted by /readyz — the *readiness* probe
	// (is the process actually serving validated data: RTR cache synced,
	// stream connected, replay complete). A non-nil error turns the
	// probe into a 503 carrying the error text. Nil means /readyz
	// mirrors /healthz, preserving the pre-split single-probe behavior.
	Ready func() error
	// ShutdownTimeout bounds the graceful drain in Close before open
	// connections are cut. Zero selects 2s.
	ShutdownTimeout time.Duration
	// Debug maps extra URL patterns to handlers (e.g. the flight
	// recorder's /debug/trace and /debug/alarms routes from
	// trace.Routes). Patterns follow http.ServeMux semantics.
	Debug map[string]http.Handler
	// Pprof, when true, mounts net/http/pprof under /debug/pprof/ so a
	// live process can be profiled through the same admin port.
	Pprof bool
}

// Admin is a running admin HTTP endpoint serving /metrics (Prometheus
// text, or JSON with ?format=json or an application/json Accept
// header), /healthz, and /debug/mib.
type Admin struct {
	cfg  AdminConfig
	srv  *http.Server
	addr string

	closeOnce sync.Once
	closeErr  error
	served    chan struct{} // closed when Serve returns
}

// ServeAdmin binds addr (host:port; port 0 picks a free port) and
// serves the admin endpoint on a background goroutine until Close.
func ServeAdmin(addr string, cfg AdminConfig) (*Admin, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("telemetry: admin endpoint requires a registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: admin listen %s: %w", addr, err)
	}
	a := &Admin{
		cfg:    cfg,
		addr:   ln.Addr().String(),
		served: make(chan struct{}),
	}
	a.srv = &http.Server{Handler: a.Handler()}
	go func() {
		defer close(a.served)
		// ErrServerClosed is the Close path, not a failure; any other
		// error leaves the endpoint dead, which /healthz consumers will
		// notice as a refused connection.
		_ = a.srv.Serve(ln)
	}()
	return a, nil
}

// Addr returns the bound address.
func (a *Admin) Addr() string { return a.addr }

// Handler returns the admin mux (also used by tests to serve the same
// routes without a socket).
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/readyz", a.handleReadyz)
	if a.cfg.MIB != nil {
		mux.Handle("/debug/mib", a.cfg.MIB)
	}
	for pattern, h := range a.cfg.Debug {
		mux.Handle(pattern, h)
	}
	if a.cfg.Pprof {
		// http.DefaultServeMux registration in net/http/pprof doesn't
		// apply to this mux; mount the handlers explicitly.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (a *Admin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	asJSON := r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json")
	if asJSON {
		w.Header().Set("Content-Type", "application/json")
		if err := WriteJSON(w, a.cfg.Registry); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WritePrometheus(w, a.cfg.Registry); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (a *Admin) handleHealthz(w http.ResponseWriter, r *http.Request) {
	serveProbe(w, a.cfg.Health)
}

func (a *Admin) handleReadyz(w http.ResponseWriter, r *http.Request) {
	probe := a.cfg.Ready
	if probe == nil {
		probe = a.cfg.Health
	}
	serveProbe(w, probe)
}

func serveProbe(w http.ResponseWriter, probe func() error) {
	if probe != nil {
		if err := probe(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Close drains the server gracefully (bounded by ShutdownTimeout), then
// cuts remaining connections, and waits for the serve goroutine to
// exit. Safe to call multiple times.
func (a *Admin) Close() error {
	a.closeOnce.Do(func() {
		timeout := a.cfg.ShutdownTimeout
		if timeout == 0 {
			timeout = 2 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		err := a.srv.Shutdown(ctx)
		if err != nil {
			// Drain timed out (a scrape is wedged); cut it.
			a.srv.Close()
		}
		<-a.served
		a.closeErr = err
	})
	return a.closeErr
}
