package telemetry

import (
	"io"
	"testing"
)

// BenchmarkTelemetryHotPath measures the full per-update cost the
// speaker's hot path pays: one counter increment plus one histogram
// observation. `make bench` records the result in BENCH_telemetry.json
// as the start of the perf trajectory.
func BenchmarkTelemetryHotPath(b *testing.B) {
	r := NewRegistry("bench")
	c := r.Counter("updates_total", "")
	h := r.Histogram("lat_seconds", "", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
			h.Observe(0.0007)
		}
	})
}

// BenchmarkTelemetryCounterInc isolates the wait-free counter path.
func BenchmarkTelemetryCounterInc(b *testing.B) {
	c := NewRegistry("bench").Counter("updates_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkTelemetryHistogramObserve isolates the lock-striped
// histogram path.
func BenchmarkTelemetryHistogramObserve(b *testing.B) {
	h := NewRegistry("bench").Histogram("lat_seconds", "", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0007)
		}
	})
}

// BenchmarkTelemetryVecWith measures the labeled lookup path, which hot
// paths should avoid by caching — this quantifies why.
func BenchmarkTelemetryVecWith(b *testing.B) {
	v := NewRegistry("bench").CounterVec("msgs_total", "", "type")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v.With("update").Inc()
		}
	})
}

// BenchmarkTelemetryScrape measures a full Prometheus-text exposition
// of a realistically sized registry.
func BenchmarkTelemetryScrape(b *testing.B) {
	r := NewRegistry("bench")
	for _, name := range []string{"a_total", "b_total", "c_total", "d_total"} {
		v := r.CounterVec(name, "", "type")
		for _, t := range []string{"open", "update", "notification", "keepalive"} {
			v.With(t).Add(12345)
		}
	}
	h := r.Histogram("lat_seconds", "", nil)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 997)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WritePrometheus(io.Discard, r); err != nil {
			b.Fatal(err)
		}
	}
}
