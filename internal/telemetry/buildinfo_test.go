package telemetry

import (
	"net/http"
	"runtime"
	"strings"
	"testing"
)

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry("t")
	RegisterBuildInfo(r)

	var prom strings.Builder
	if err := WritePrometheus(&prom, r); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	if !strings.Contains(text, "t_build_info{") {
		t.Fatalf("build_info missing from text exposition:\n%s", text)
	}
	if !strings.Contains(text, `goversion="`+runtime.Version()+`"`) {
		t.Errorf("goversion label missing:\n%s", text)
	}
	for _, label := range []string{`version="`, `revision="`} {
		if !strings.Contains(text, label) {
			t.Errorf("label %s missing:\n%s", label, text)
		}
	}

	var js strings.Builder
	if err := WriteJSON(&js, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"t_build_info"`) {
		t.Errorf("build_info missing from JSON exposition:\n%s", js.String())
	}

	// The gauge's value is the conventional constant 1.
	for _, fam := range r.Gather() {
		if fam.Name == "t_build_info" {
			if len(fam.Series) != 1 || fam.Series[0].Value != 1 {
				t.Errorf("build_info series: %+v", fam.Series)
			}
			return
		}
	}
	t.Error("build_info family not gathered")
}

func TestAdminDebugAndPprofRoutes(t *testing.T) {
	r := NewRegistry("t")
	extra := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("traced"))
	})
	a, err := ServeAdmin("127.0.0.1:0", AdminConfig{
		Registry: r,
		Debug:    map[string]http.Handler{"/debug/trace": extra},
		Pprof:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if got := get(t, "http://"+a.Addr()+"/debug/trace"); got != "traced" {
		t.Errorf("/debug/trace = %q", got)
	}
	if got := get(t, "http://"+a.Addr()+"/debug/pprof/cmdline"); got == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	if got := get(t, "http://"+a.Addr()+"/debug/pprof/"); !strings.Contains(got, "pprof") {
		t.Errorf("/debug/pprof/ index: %q", got)
	}
}
