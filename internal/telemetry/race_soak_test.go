package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

// These soaks extend the shutdown_race_test.go pattern from
// speaker/collector/daemon to the admin endpoint: the interesting
// windows are scrape-while-instrumenting (Gather racing hot-path
// updates and new-series registration) and Close racing an in-flight
// scrape. Run under -race; `make race` does.

func scrapeQuietly(url string) {
	resp, err := http.Get(url)
	if err != nil {
		return // Close may have won the race; that is the point.
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// TestScrapeWhileInstrumenting hammers every instrument kind — including
// series creation, which mutates family maps — while concurrent scrapes
// run both encoders over the same registry.
func TestScrapeWhileInstrumenting(t *testing.T) {
	for i := 0; i < 50; i++ {
		r := NewRegistry("soak")
		c := r.Counter("ops_total", "")
		g := r.Gauge("level", "")
		h := r.Histogram("lat_seconds", "", []float64{0.001, 0.1})
		vec := r.CounterVec("typed_total", "", "type")
		a, err := ServeAdmin("127.0.0.1:0", AdminConfig{Registry: r})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := 0; j < 200; j++ {
					c.Inc()
					g.Set(int64(j))
					h.Observe(float64(j) / 1000)
					// New label values force series-map writes under the
					// family lock while Gather reads it.
					vec.With(fmt.Sprintf("t%d", j%8)).Inc()
				}
			}(w)
		}
		for s := 0; s < 2; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 5; j++ {
					scrapeQuietly("http://" + a.Addr() + "/metrics")
					scrapeQuietly("http://" + a.Addr() + "/metrics?format=json")
				}
			}()
		}
		wg.Wait()
		if err := a.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if got := c.Value(); got != 4*200 {
			t.Fatalf("counter = %d, want %d", got, 4*200)
		}
	}
}

// TestCloseWhileScraping races Close against in-flight scrapes, the
// daemon-shutdown-during-scrape window.
func TestCloseWhileScraping(t *testing.T) {
	for i := 0; i < 50; i++ {
		r := NewRegistry("soak")
		r.Counter("ops_total", "").Inc()
		a, err := ServeAdmin("127.0.0.1:0", AdminConfig{Registry: r})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			scrapeQuietly("http://" + a.Addr() + "/metrics")
		}()
		go func() {
			defer wg.Done()
			a.Close()
		}()
		wg.Wait()
		// Close again after the race settles: must stay idempotent.
		if err := a.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
	}
}
