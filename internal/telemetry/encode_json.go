package telemetry

import (
	"encoding/json"
	"io"
)

// jsonExposition is the document WriteJSON emits. All ordering is
// deterministic (families by name, series by label values) so scrapes
// diff cleanly and golden tests stay stable.
type jsonExposition struct {
	Namespace string       `json:"namespace,omitempty"`
	Metrics   []jsonFamily `json:"metrics"`
}

type jsonFamily struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []jsonSeries `json:"series"`
}

type jsonSeries struct {
	// Labels preserves key order via a dedicated marshaller below; nil
	// (unlabeled series) omits the field entirely.
	Labels *jsonLabels `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value *float64 `json:"value,omitempty"`
	// Count/Sum/Quantiles/Buckets are set for histograms.
	Count *uint64  `json:"count,omitempty"`
	Sum   *float64 `json:"sum,omitempty"`
	// Quantiles carries p50/p90/p99 estimates so consumers (moas-top,
	// /debug/status) don't re-derive them client-side; omitted when the
	// histogram holds no observations.
	Quantiles *jsonQuantiles `json:"quantiles,omitempty"`
	Buckets   []jsonBucket   `json:"buckets,omitempty"`
}

type jsonQuantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

type jsonBucket struct {
	// LE is the bucket's inclusive upper bound, "+Inf" for the last.
	LE string `json:"le"`
	// Count is cumulative, matching the Prometheus exposition.
	Count uint64 `json:"count"`
}

// jsonLabels marshals label pairs as an object in declaration order
// (encoding/json sorts map keys, which would scramble the registry's
// key order).
type jsonLabels struct {
	keys   []string
	values []string
}

func (l jsonLabels) MarshalJSON() ([]byte, error) {
	buf := []byte{'{'}
	for i, k := range l.keys {
		if i > 0 {
			buf = append(buf, ',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		vb, err := json.Marshal(l.values[i])
		if err != nil {
			return nil, err
		}
		buf = append(buf, kb...)
		buf = append(buf, ':')
		buf = append(buf, vb...)
	}
	return append(buf, '}'), nil
}

// WriteJSON writes the registry as an indented JSON document — the
// machine-readable twin of WritePrometheus, for tooling that would
// rather json.Unmarshal than parse the text format.
func WriteJSON(w io.Writer, r *Registry) error {
	doc := jsonExposition{
		Namespace: r.Name(),
		Metrics:   []jsonFamily{},
	}
	for _, fam := range r.Gather() {
		jf := jsonFamily{
			Name:   fam.Name,
			Type:   fam.Kind.String(),
			Help:   fam.Help,
			Series: []jsonSeries{},
		}
		for _, s := range fam.Series {
			js := jsonSeries{}
			if len(fam.LabelKeys) > 0 {
				js.Labels = &jsonLabels{keys: fam.LabelKeys, values: s.LabelValues}
			}
			if h := s.Histogram; h != nil {
				count, sum := h.Count, h.Sum
				js.Count = &count
				js.Sum = &sum
				if count > 0 && len(h.Bounds) > 0 {
					js.Quantiles = &jsonQuantiles{
						P50: h.Quantile(0.50),
						P90: h.Quantile(0.90),
						P99: h.Quantile(0.99),
					}
				}
				cum := uint64(0)
				for i, ub := range h.Bounds {
					cum += h.Counts[i]
					js.Buckets = append(js.Buckets, jsonBucket{LE: formatFloat(ub), Count: cum})
				}
				js.Buckets = append(js.Buckets, jsonBucket{LE: "+Inf", Count: h.Count})
			} else {
				v := s.Value
				js.Value = &v
			}
			jf.Series = append(jf.Series, js)
		}
		doc.Metrics = append(doc.Metrics, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
