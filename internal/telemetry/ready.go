package telemetry

import (
	"fmt"
	"strings"
	"sync"
)

// Readiness aggregates named readiness probes into one func() error
// suitable for AdminConfig.Ready. Probes are evaluated in registration
// order and every failing probe is reported, so an operator reading the
// /readyz body sees the full set of blockers, not just the first.
//
// The zero value is ready to use; Register is safe against concurrent
// Check but is expected at wiring time.
type Readiness struct {
	mu     sync.Mutex
	names  []string
	probes []func() error
}

// Register adds a named probe. A nil probe is ignored.
func (r *Readiness) Register(name string, probe func() error) {
	if r == nil || probe == nil {
		return
	}
	r.mu.Lock()
	r.names = append(r.names, name)
	r.probes = append(r.probes, probe)
	r.mu.Unlock()
}

// Check runs every probe and returns nil when all pass, else one error
// naming each failure. Nil receivers and empty sets are always ready.
func (r *Readiness) Check() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := r.names
	probes := r.probes
	r.mu.Unlock()
	var fails []string
	for i, probe := range probes {
		if err := probe(); err != nil {
			fails = append(fails, fmt.Sprintf("%s: %v", names[i], err))
		}
	}
	if len(fails) == 0 {
		return nil
	}
	return fmt.Errorf("not ready: %s", strings.Join(fails, "; "))
}

// NotSynced is a convenience for boolean probes: it converts a
// condition into the error a probe reports while the condition is
// still false.
func NotSynced(ok func() bool, what string) func() error {
	return func() error {
		if ok() {
			return nil
		}
		return fmt.Errorf("%s", what)
	}
}
