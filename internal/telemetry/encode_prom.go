package telemetry

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one sample line per
// series, histograms expanded into cumulative _bucket / _sum / _count
// samples. Output order is deterministic: families by name, series by
// label values.
func WritePrometheus(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.Gather() {
		if fam.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(fam.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam.Name)
		bw.WriteByte(' ')
		bw.WriteString(fam.Kind.String())
		bw.WriteByte('\n')
		for _, s := range fam.Series {
			switch fam.Kind {
			case KindHistogram:
				writePromHistogram(bw, fam, s)
			default:
				writeSample(bw, fam.Name, fam.LabelKeys, s.LabelValues, "", "", s.Value)
			}
		}
	}
	return bw.Flush()
}

func writePromHistogram(bw *bufio.Writer, fam FamilySnapshot, s SeriesSnapshot) {
	h := s.Histogram
	cum := uint64(0)
	for i, ub := range h.Bounds {
		cum += h.Counts[i]
		writeSample(bw, fam.Name+"_bucket", fam.LabelKeys, s.LabelValues,
			"le", formatFloat(ub), float64(cum))
	}
	writeSample(bw, fam.Name+"_bucket", fam.LabelKeys, s.LabelValues,
		"le", "+Inf", float64(h.Count))
	writeSample(bw, fam.Name+"_sum", fam.LabelKeys, s.LabelValues, "", "", h.Sum)
	writeSample(bw, fam.Name+"_count", fam.LabelKeys, s.LabelValues, "", "", float64(h.Count))
}

// writeSample emits one sample line; extraKey/extraVal append a
// synthetic label (the histogram "le") after the series labels.
func writeSample(bw *bufio.Writer, name string, keys, values []string, extraKey, extraVal string, v float64) {
	bw.WriteString(name)
	if len(keys) > 0 || extraKey != "" {
		bw.WriteByte('{')
		first := true
		for i, k := range keys {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(k)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(values[i]))
			bw.WriteByte('"')
		}
		if extraKey != "" {
			if !first {
				bw.WriteByte(',')
			}
			bw.WriteString(extraKey)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(extraVal))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, "+Inf"/"-Inf"/"NaN" specials.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
