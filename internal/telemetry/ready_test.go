package telemetry

import (
	"errors"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestReadiness(t *testing.T) {
	var r Readiness
	if err := r.Check(); err != nil {
		t.Fatalf("empty readiness: %v", err)
	}

	var rtrOK, mrtOK atomic.Bool
	r.Register("rtr", NotSynced(rtrOK.Load, "cache not synced"))
	r.Register("mrt-replay", NotSynced(mrtOK.Load, "replay in progress"))
	r.Register("nil-probe", nil) // ignored

	err := r.Check()
	if err == nil {
		t.Fatal("want not-ready")
	}
	// Every failing probe must be named, not just the first.
	for _, want := range []string{"rtr: cache not synced", "mrt-replay: replay in progress"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	rtrOK.Store(true)
	if err := r.Check(); err == nil || strings.Contains(err.Error(), "rtr:") {
		t.Fatalf("after rtr sync: %v", err)
	}
	mrtOK.Store(true)
	if err := r.Check(); err != nil {
		t.Fatalf("all synced: %v", err)
	}

	var nilR *Readiness
	nilR.Register("x", func() error { return errors.New("boom") })
	if err := nilR.Check(); err != nil {
		t.Fatalf("nil readiness: %v", err)
	}
}

// TestAdminReadyzSplit pins the liveness/readiness split: /healthz
// answers "is the process up", /readyz answers "is it serving validated
// data", and the two probes are independent.
func TestAdminReadyzSplit(t *testing.T) {
	var ready atomic.Bool
	a, err := ServeAdmin("127.0.0.1:0", AdminConfig{
		Registry: NewRegistry("t"),
		Ready:    NotSynced(ready.Load, "rtr cache not synced"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Liveness passes from the start; readiness gates on the probe.
	if got := get(t, "http://"+a.Addr()+"/healthz"); got != "ok\n" {
		t.Errorf("/healthz = %q", got)
	}
	resp, err := http.Get("http://" + a.Addr() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before sync: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "rtr cache not synced") {
		t.Errorf("/readyz body = %q, want the probe error", body)
	}

	ready.Store(true)
	if got := get(t, "http://"+a.Addr()+"/readyz"); got != "ok\n" {
		t.Errorf("/readyz after sync = %q", got)
	}
}

// TestAdminReadyzFallsBackToHealth pins the compatibility default: with
// no Ready probe configured, /readyz mirrors /healthz.
func TestAdminReadyzFallsBackToHealth(t *testing.T) {
	a, err := ServeAdmin("127.0.0.1:0", AdminConfig{
		Registry: NewRegistry("t"),
		Health:   func() error { return errors.New("wedged") },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get("http://" + a.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s status = %d, want 503", path, resp.StatusCode)
		}
	}
}

// TestAdminShutdownDuringSlowScrape covers the window the /debug/status
// endpoint opened: a scrape handler that stalls mid-response while the
// admin endpoint shuts down. Close must return within the shutdown
// budget (graceful drain times out, connections are cut), the stalled
// handler must be released via its request context, and no goroutine
// may leak. Runs under -race via `make e2e`.
func TestAdminShutdownDuringSlowScrape(t *testing.T) {
	before := runtime.NumGoroutine()

	handlerDone := make(chan struct{})
	inHandler := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer close(handlerDone)
		w.Header().Set("Content-Type", "text/plain")
		w.Write([]byte("partial status\n"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		close(inHandler)
		// Stall like a wedged scraper until the server cuts the
		// connection (which cancels the request context) or a backstop
		// proves the release never came.
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	})

	a, err := ServeAdmin("127.0.0.1:0", AdminConfig{
		Registry:        NewRegistry("t"),
		ShutdownTimeout: 50 * time.Millisecond,
		Debug:           map[string]http.Handler{"/debug/status": slow},
	})
	if err != nil {
		t.Fatal(err)
	}

	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		scrapeQuietly("http://" + a.Addr() + "/debug/status")
	}()
	<-inHandler

	start := time.Now()
	closeDone := make(chan error, 1)
	go func() { closeDone <- a.Close() }()
	select {
	case err := <-closeDone:
		// The graceful drain must have timed out on the wedged scrape —
		// that is the scenario — and Close still returns promptly.
		if err == nil {
			t.Error("Close returned nil, want the drain-timeout error")
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("Close took %v, want bounded by the shutdown budget", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return while a slow scrape was in flight")
	}

	// The cut connection must release both the handler and the client.
	for what, ch := range map[string]chan struct{}{"handler": handlerDone, "scrape": scrapeDone} {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("%s goroutine still blocked after Close", what)
		}
	}

	// No goroutine leak: the serve loop, the handler, and the scraper
	// are all gone once Close returns and the channels fire.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: before=%d after=%d — leak", before, runtime.NumGoroutine())
}
