package rib

import (
	"testing"

	"repro/internal/astypes"
)

// benchTable builds a table with nPrefixes prefixes, each announced by
// two peers (a best and a backup), mirroring a small collector view.
func benchTable(nPrefixes int) (*Table, []astypes.Prefix) {
	tbl := NewTable()
	prefixes := make([]astypes.Prefix, nPrefixes)
	for i := 0; i < nPrefixes; i++ {
		p := astypes.MustPrefix(uint32(0x0a000000+i)<<8, 24)
		prefixes[i] = p
		short := route(2, 2, 4)
		short.Prefix = p
		tbl.UpdateOwned(short)
		long := route(3, 3, 7, 4)
		long.Prefix = p
		tbl.UpdateOwned(long)
	}
	return tbl, prefixes
}

// BenchmarkRIBBestBaselineClone measures the pre-PR read contract: every
// Best call deep-copies the route. Kept as the in-tree baseline that
// BENCH_hotpath.json compares BenchmarkRIBBest against.
func BenchmarkRIBBestBaselineClone(b *testing.B) {
	tbl, prefixes := benchTable(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := tbl.Best(prefixes[i%len(prefixes)]).Clone()
		if r == nil {
			b.Fatal("missing route")
		}
	}
}

// BenchmarkRIBBest measures the clone-free read path: a shared immutable
// route is returned without copying.
func BenchmarkRIBBest(b *testing.B) {
	tbl, prefixes := benchTable(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl.Best(prefixes[i%len(prefixes)]) == nil {
			b.Fatal("missing route")
		}
	}
}

// BenchmarkRIBBestParallel exercises the sharded locks from concurrent
// readers, the speaker's steady-state shape.
func BenchmarkRIBBestParallel(b *testing.B) {
	tbl, prefixes := benchTable(64)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if tbl.Best(prefixes[i%len(prefixes)]) == nil {
				b.Fatal("missing route")
			}
			i++
		}
	})
}

// BenchmarkRIBBestRoutes measures a full Loc-RIB scan (census / status
// endpoints).
func BenchmarkRIBBestRoutes(b *testing.B) {
	tbl, _ := benchTable(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(tbl.BestRoutes()) != 64 {
			b.Fatal("bad census")
		}
	}
}

// BenchmarkRIBUpdate measures the decision process on a re-announcement
// through the cloning entry point (the wire-facing path).
func BenchmarkRIBUpdate(b *testing.B) {
	tbl, prefixes := benchTable(64)
	r := route(2, 2, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Prefix = prefixes[i%len(prefixes)]
		tbl.Update(r)
	}
}

// BenchmarkRIBUpdateOwned measures the same decision process when the
// caller transfers ownership of a freshly built route, skipping the
// defensive clone.
func BenchmarkRIBUpdateOwned(b *testing.B) {
	tbl, prefixes := benchTable(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := route(2, 2, 4)
		r.Prefix = prefixes[i%len(prefixes)]
		tbl.UpdateOwned(r)
	}
}

// TestBestZeroAlloc locks in the clone-free read: a Best lookup must not
// allocate at all.
func TestBestZeroAlloc(t *testing.T) {
	tbl, prefixes := benchTable(8)
	avg := testing.AllocsPerRun(200, func() {
		if tbl.Best(prefixes[0]) == nil {
			t.Fatal("missing route")
		}
	})
	if avg != 0 {
		t.Errorf("Best allocates %v per run, want 0", avg)
	}
}
