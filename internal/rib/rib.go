// Package rib implements the BGP Routing Information Bases and the
// route decision process shared by the live speaker (internal/speaker)
// and the event-driven simulator (internal/simbgp): per-peer Adj-RIB-In
// tables, the Loc-RIB of selected best routes, and the tie-breaking
// rules of RFC 4271 §9.1 restricted to the attributes this system
// models (LOCAL_PREF, AS-path length, ORIGIN code, neighbor AS).
package rib

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/astypes"
	"repro/internal/wire"
)

// Route is one candidate path to a prefix as learned from a peer (or
// originated locally with FromPeer == ASNNone).
type Route struct {
	Prefix      astypes.Prefix
	Path        astypes.ASPath
	Origin      wire.OriginCode
	NextHop     uint32
	LocalPref   uint32
	Communities []astypes.Community
	FromPeer    astypes.ASN
	// Aggregation markers (RFC 4271 §5.1.6/5.1.7), carried so they
	// survive re-advertisement.
	AtomicAggregate bool
	AggregatorAS    astypes.ASN
	AggregatorID    uint32
	// Unknown holds optional transitive attributes this implementation
	// does not interpret; they transit verbatim (among them the
	// dedicated MOAS-list attribute, core.ListAttrCode).
	Unknown []wire.UnknownAttr
}

// DefaultLocalPref is assigned to routes without an explicit LOCAL_PREF.
const DefaultLocalPref uint32 = 100

// OriginAS returns the route's origin AS (last AS of the path), or the
// route's own FromPeer if the path is empty (a locally originated route
// carries its originator in the path, so this is a fallback only).
func (r *Route) OriginAS() astypes.ASN {
	if origin, ok := r.Path.Origin(); ok {
		return origin
	}
	return r.FromPeer
}

// Clone deep-copies the route so callers can mutate path/communities
// without aliasing the RIB's stored state.
func (r *Route) Clone() *Route {
	cp := *r
	cp.Path = r.Path.Clone()
	if len(r.Communities) > 0 {
		cp.Communities = append([]astypes.Community(nil), r.Communities...)
	}
	cp.Unknown = wire.CloneUnknownAttrs(r.Unknown)
	return &cp
}

// Better reports whether route a is preferred over b by the decision
// process. Either argument may be nil (a nil route always loses). The
// order of rules follows RFC 4271 §9.1.2.2 for the attributes modelled:
//
//  1. higher LOCAL_PREF
//  2. shorter AS path (AS_SET counts 1)
//  3. lower ORIGIN code (IGP < EGP < INCOMPLETE)
//  4. lower neighbor AS number (deterministic tie-break standing in for
//     the router-ID comparison, which an AS-level model lacks)
//
// Rule 4 is a last resort: reselection prefers the incumbent best route
// on an attribute tie (prefer-oldest, RFC 4271 §9.1.2.2 step (e)
// practice), which Compare exposes.
func Better(a, b *Route) bool {
	switch Compare(a, b) {
	case 1:
		return true
	case -1:
		return false
	default:
		return a != nil && b != nil && a.FromPeer < b.FromPeer
	}
}

// Compare ranks two routes on attributes alone: 1 if a is strictly
// preferred, -1 if b is, 0 on a full attribute tie. nil loses to
// non-nil; two nils tie.
func Compare(a, b *Route) int {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return -1
	case b == nil:
		return 1
	}
	if a.LocalPref != b.LocalPref {
		if a.LocalPref > b.LocalPref {
			return 1
		}
		return -1
	}
	if ah, bh := a.Path.Hops(), b.Path.Hops(); ah != bh {
		if ah < bh {
			return 1
		}
		return -1
	}
	if a.Origin != b.Origin {
		if a.Origin < b.Origin {
			return 1
		}
		return -1
	}
	return 0
}

// numShards partitions the table by prefix hash so concurrent speakers
// (one goroutine per peer) contend on independent locks. All state for
// one prefix — every peer's Adj-RIB-In entry, the local route, and the
// Loc-RIB selection — lives in a single shard, so the decision process
// never crosses a shard boundary. Must be a power of two.
const numShards = 16

// tableShard holds the RIB state for the prefixes hashing to it.
type tableShard struct {
	mu sync.RWMutex
	// adjIn[peer][prefix] is the route most recently advertised by peer.
	// Guarded by mu.
	adjIn map[astypes.ASN]map[astypes.Prefix]*Route
	// local[prefix] holds locally originated routes; they compete in the
	// decision process like any learned route. Guarded by mu.
	local map[astypes.Prefix]*Route
	// best[prefix] is the Loc-RIB: the selected route per prefix.
	// Guarded by mu.
	best map[astypes.Prefix]*Route
}

// Table is the full RIB state of one BGP speaker. It is safe for
// concurrent use.
//
// Published routes are immutable: once a *Route enters the table it is
// never modified, so the read accessors (Best, BestRoutes, RoutesFrom)
// hand out shared pointers without copying. Callers must treat returned
// routes as read-only and Clone any route they intend to mutate. The
// mutating entry points (Update, Originate) defensively Clone their
// argument to uphold that invariant; the ...Owned variants skip the
// copy when the caller transfers ownership of a freshly built route.
type Table struct {
	shards [numShards]tableShard
}

// NewTable returns an empty RIB.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.adjIn = make(map[astypes.ASN]map[astypes.Prefix]*Route)
		s.local = make(map[astypes.Prefix]*Route)
		s.best = make(map[astypes.Prefix]*Route)
		s.mu.Unlock()
	}
	return t
}

// shard maps a prefix to its shard. Fibonacci-style multiplicative
// hashing spreads the sequential prefix blocks that simulations and
// test topologies favor.
func (t *Table) shard(p astypes.Prefix) *tableShard {
	h := p.Addr*2654435761 + uint32(p.Len)*2246822519
	h ^= h >> 16
	return &t.shards[h&(numShards-1)]
}

// Reason classifies why a Change changed, for trace events and debug
// output; it adds nothing the Old/New pair doesn't imply, but saves
// every consumer re-deriving it.
type Reason uint8

// Change reasons.
const (
	// ReasonNone: the decision process ran but the best route held.
	ReasonNone Reason = iota
	// ReasonInstalled: a prefix with no best route gained one.
	ReasonInstalled
	// ReasonReplaced: the best route switched to a different selection.
	ReasonReplaced
	// ReasonWithdrawn: the last route for the prefix went away.
	ReasonWithdrawn
)

func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonInstalled:
		return "installed"
	case ReasonReplaced:
		return "replaced"
	case ReasonWithdrawn:
		return "withdrawn"
	default:
		return "unknown"
	}
}

// Change describes the result of applying one route event: whether the
// best route for the prefix changed, and the old and new selections (nil
// means no route).
type Change struct {
	Prefix   astypes.Prefix
	Old, New *Route
	Changed  bool
	// Reason is ReasonNone when Changed is false, else the flavour of
	// the change.
	Reason Reason
}

// Update installs (or replaces) the route from route.FromPeer for
// route.Prefix and re-runs the decision process for that prefix. A copy
// of the route is stored, so the caller may keep mutating its argument.
func (t *Table) Update(route *Route) Change {
	return t.UpdateOwned(route.Clone())
}

// UpdateOwned is Update without the defensive copy: ownership of route
// (path, communities, unknown attributes and all) transfers to the
// table, and the caller must not retain or mutate it afterwards. Use it
// when the route was freshly built for this call.
func (t *Table) UpdateOwned(route *Route) Change {
	s := t.shard(route.Prefix)
	s.mu.Lock()
	defer s.mu.Unlock()
	peerTable, ok := s.adjIn[route.FromPeer]
	if !ok {
		peerTable = make(map[astypes.Prefix]*Route)
		s.adjIn[route.FromPeer] = peerTable
	}
	peerTable[route.Prefix] = route
	return s.reselectLocked(route.Prefix)
}

// Withdraw removes the route previously advertised by peer for prefix,
// if any, and re-runs the decision process.
func (t *Table) Withdraw(peer astypes.ASN, prefix astypes.Prefix) Change {
	s := t.shard(prefix)
	s.mu.Lock()
	defer s.mu.Unlock()
	if peerTable, ok := s.adjIn[peer]; ok {
		delete(peerTable, prefix)
		if len(peerTable) == 0 {
			delete(s.adjIn, peer)
		}
	}
	return s.reselectLocked(prefix)
}

// Originate installs a locally originated route (FromPeer forced to
// ASNNone) and re-runs the decision process for its prefix. A copy of
// the route is stored.
func (t *Table) Originate(route *Route) Change {
	return t.OriginateOwned(route.Clone())
}

// OriginateOwned is Originate without the defensive copy; the same
// ownership-transfer contract as UpdateOwned applies.
func (t *Table) OriginateOwned(route *Route) Change {
	route.FromPeer = astypes.ASNNone
	s := t.shard(route.Prefix)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.local[route.Prefix] = route
	return s.reselectLocked(route.Prefix)
}

// WithdrawLocal removes a locally originated route.
func (t *Table) WithdrawLocal(prefix astypes.Prefix) Change {
	s := t.shard(prefix)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.local, prefix)
	return s.reselectLocked(prefix)
}

// DropPeer removes every route learned from peer (session teardown),
// returning a change record per affected prefix in deterministic prefix
// order. Shards are processed one at a time; concurrent writers to
// other shards proceed in parallel.
func (t *Table) DropPeer(peer astypes.ASN) []Change {
	var changes []Change
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		peerTable, ok := s.adjIn[peer]
		if !ok {
			s.mu.Unlock()
			continue
		}
		prefixes := make([]astypes.Prefix, 0, len(peerTable))
		for p := range peerTable {
			prefixes = append(prefixes, p)
		}
		delete(s.adjIn, peer)
		for _, p := range prefixes {
			if ch := s.reselectLocked(p); ch.Changed {
				changes = append(changes, ch)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(changes, func(i, j int) bool {
		return changes[i].Prefix.Compare(changes[j].Prefix) < 0
	})
	return changes
}

func (s *tableShard) reselectLocked(prefix astypes.Prefix) Change {
	old := s.best[prefix]
	var newBest *Route
	if lr, ok := s.local[prefix]; ok {
		newBest = lr
	}
	for _, peerTable := range s.adjIn {
		if r, ok := peerTable[prefix]; ok && Better(r, newBest) {
			newBest = r
		}
	}
	// Prefer-oldest: if the incumbent best still exists (same source)
	// and ties the scan winner on attributes, keep it. This models the
	// operational stability rule that a router does not churn its best
	// path — and so does not move traffic to a hijacker — unless the new
	// route is strictly preferred.
	if old != nil && newBest != nil && old.FromPeer != newBest.FromPeer {
		if cur := s.routeFromLocked(old.FromPeer, prefix); cur != nil && Compare(cur, newBest) == 0 {
			newBest = cur
		}
	}
	ch := Change{Prefix: prefix, Old: old, New: newBest}
	if sameRoute(old, newBest) {
		return ch
	}
	ch.Changed = true
	switch {
	case old == nil:
		ch.Reason = ReasonInstalled
	case newBest == nil:
		ch.Reason = ReasonWithdrawn
	default:
		ch.Reason = ReasonReplaced
	}
	if newBest == nil {
		delete(s.best, prefix)
	} else {
		s.best[prefix] = newBest
	}
	return ch
}

// routeFromLocked returns the live route for prefix from the given
// source (ASNNone selects the local table).
func (s *tableShard) routeFromLocked(peer astypes.ASN, prefix astypes.Prefix) *Route {
	if peer == astypes.ASNNone {
		return s.local[prefix]
	}
	return s.adjIn[peer][prefix]
}

func sameRoute(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.FromPeer == b.FromPeer &&
		a.Prefix == b.Prefix &&
		a.Origin == b.Origin &&
		a.LocalPref == b.LocalPref &&
		a.NextHop == b.NextHop &&
		a.AtomicAggregate == b.AtomicAggregate &&
		a.AggregatorAS == b.AggregatorAS &&
		a.Path.Equal(b.Path) &&
		sameCommunities(a.Communities, b.Communities) &&
		sameUnknown(a.Unknown, b.Unknown)
}

func sameUnknown(a, b []wire.UnknownAttr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Flags != b[i].Flags || a[i].Code != b[i].Code ||
			string(a[i].Value) != string(b[i].Value) {
			return false
		}
	}
	return true
}

func sameCommunities(a, b []astypes.Community) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Best returns the selected route for prefix, or nil. The route is
// shared, immutable table state: treat it as read-only and Clone before
// mutating.
//
//repro:allocfree
func (t *Table) Best(prefix astypes.Prefix) *Route {
	s := t.shard(prefix)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.best[prefix]
}

// BestRoutes returns the Loc-RIB in deterministic prefix order. The
// routes are shared, immutable table state (see Best). Each shard is
// snapshotted under its own lock; under concurrent writers the slice is
// per-shard consistent, not a single atomic cut of the whole table.
func (t *Table) BestRoutes() []*Route {
	out := make([]*Route, 0, t.Len())
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for _, r := range s.best {
			out = append(out, r)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// RoutesFrom returns all routes currently held in peer's Adj-RIB-In, in
// deterministic prefix order. Passing ASNNone returns the locally
// originated routes. The routes are shared, immutable table state (see
// Best), with the same per-shard snapshot semantics as BestRoutes.
func (t *Table) RoutesFrom(peer astypes.ASN) []*Route {
	var out []*Route
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		peerTable := s.adjIn[peer]
		if peer == astypes.ASNNone {
			peerTable = s.local
		}
		for _, r := range peerTable {
			out = append(out, r)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// RouteFrom returns the route currently held for prefix from the given
// source (ASNNone selects the locally originated route), or nil. It
// touches exactly one shard — callers that need one peer's route for
// one prefix should prefer it over scanning RoutesFrom.
//
//repro:allocfree
func (t *Table) RouteFrom(peer astypes.ASN, prefix astypes.Prefix) *Route {
	s := t.shard(prefix)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.routeFromLocked(peer, prefix)
}

// Clear empties the table in place, retaining the shard maps (and the
// per-peer Adj-RIB-In buckets) so a pooled simulation node can rerun
// without re-growing them.
func (t *Table) Clear() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, peerTable := range s.adjIn {
			clear(peerTable)
		}
		clear(s.local)
		clear(s.best)
		s.mu.Unlock()
	}
}

// Len returns the number of prefixes with a selected best route.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.best)
		s.mu.RUnlock()
	}
	return n
}

// String summarizes the Loc-RIB for debugging.
func (t *Table) String() string {
	routes := t.BestRoutes()
	s := fmt.Sprintf("Loc-RIB (%d prefixes):\n", len(routes))
	for _, r := range routes {
		s += fmt.Sprintf("  %s via AS%s path [%s]\n", r.Prefix, r.FromPeer, r.Path)
	}
	return s
}
