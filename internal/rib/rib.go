// Package rib implements the BGP Routing Information Bases and the
// route decision process shared by the live speaker (internal/speaker)
// and the event-driven simulator (internal/simbgp): per-peer Adj-RIB-In
// tables, the Loc-RIB of selected best routes, and the tie-breaking
// rules of RFC 4271 §9.1 restricted to the attributes this system
// models (LOCAL_PREF, AS-path length, ORIGIN code, neighbor AS).
package rib

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/astypes"
	"repro/internal/wire"
)

// Route is one candidate path to a prefix as learned from a peer (or
// originated locally with FromPeer == ASNNone).
type Route struct {
	Prefix      astypes.Prefix
	Path        astypes.ASPath
	Origin      wire.OriginCode
	NextHop     uint32
	LocalPref   uint32
	Communities []astypes.Community
	FromPeer    astypes.ASN
	// Aggregation markers (RFC 4271 §5.1.6/5.1.7), carried so they
	// survive re-advertisement.
	AtomicAggregate bool
	AggregatorAS    astypes.ASN
	AggregatorID    uint32
	// Unknown holds optional transitive attributes this implementation
	// does not interpret; they transit verbatim (among them the
	// dedicated MOAS-list attribute, core.ListAttrCode).
	Unknown []wire.UnknownAttr
}

// DefaultLocalPref is assigned to routes without an explicit LOCAL_PREF.
const DefaultLocalPref uint32 = 100

// OriginAS returns the route's origin AS (last AS of the path), or the
// route's own FromPeer if the path is empty (a locally originated route
// carries its originator in the path, so this is a fallback only).
func (r *Route) OriginAS() astypes.ASN {
	if origin, ok := r.Path.Origin(); ok {
		return origin
	}
	return r.FromPeer
}

// Clone deep-copies the route so callers can mutate path/communities
// without aliasing the RIB's stored state.
func (r *Route) Clone() *Route {
	cp := *r
	cp.Path = r.Path.Clone()
	if len(r.Communities) > 0 {
		cp.Communities = append([]astypes.Community(nil), r.Communities...)
	}
	cp.Unknown = wire.CloneUnknownAttrs(r.Unknown)
	return &cp
}

// Better reports whether route a is preferred over b by the decision
// process. Either argument may be nil (a nil route always loses). The
// order of rules follows RFC 4271 §9.1.2.2 for the attributes modelled:
//
//  1. higher LOCAL_PREF
//  2. shorter AS path (AS_SET counts 1)
//  3. lower ORIGIN code (IGP < EGP < INCOMPLETE)
//  4. lower neighbor AS number (deterministic tie-break standing in for
//     the router-ID comparison, which an AS-level model lacks)
//
// Rule 4 is a last resort: reselection prefers the incumbent best route
// on an attribute tie (prefer-oldest, RFC 4271 §9.1.2.2 step (e)
// practice), which Compare exposes.
func Better(a, b *Route) bool {
	switch Compare(a, b) {
	case 1:
		return true
	case -1:
		return false
	default:
		return a != nil && b != nil && a.FromPeer < b.FromPeer
	}
}

// Compare ranks two routes on attributes alone: 1 if a is strictly
// preferred, -1 if b is, 0 on a full attribute tie. nil loses to
// non-nil; two nils tie.
func Compare(a, b *Route) int {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return -1
	case b == nil:
		return 1
	}
	if a.LocalPref != b.LocalPref {
		if a.LocalPref > b.LocalPref {
			return 1
		}
		return -1
	}
	if ah, bh := a.Path.Hops(), b.Path.Hops(); ah != bh {
		if ah < bh {
			return 1
		}
		return -1
	}
	if a.Origin != b.Origin {
		if a.Origin < b.Origin {
			return 1
		}
		return -1
	}
	return 0
}

// Table is the full RIB state of one BGP speaker. It is safe for
// concurrent use.
type Table struct {
	mu sync.RWMutex
	// adjIn[peer][prefix] is the route most recently advertised by peer.
	// Guarded by mu.
	adjIn map[astypes.ASN]map[astypes.Prefix]*Route
	// local[prefix] holds locally originated routes; they compete in the
	// decision process like any learned route. Guarded by mu.
	local map[astypes.Prefix]*Route
	// best[prefix] is the Loc-RIB: the selected route per prefix.
	// Guarded by mu.
	best map[astypes.Prefix]*Route
}

// NewTable returns an empty RIB.
func NewTable() *Table {
	return &Table{
		adjIn: make(map[astypes.ASN]map[astypes.Prefix]*Route),
		local: make(map[astypes.Prefix]*Route),
		best:  make(map[astypes.Prefix]*Route),
	}
}

// Change describes the result of applying one route event: whether the
// best route for the prefix changed, and the old and new selections (nil
// means no route).
type Change struct {
	Prefix   astypes.Prefix
	Old, New *Route
	Changed  bool
}

// Update installs (or replaces) the route from route.FromPeer for
// route.Prefix and re-runs the decision process for that prefix. A copy
// of the route is stored.
func (t *Table) Update(route *Route) Change {
	cp := route.Clone()
	t.mu.Lock()
	defer t.mu.Unlock()
	peerTable, ok := t.adjIn[cp.FromPeer]
	if !ok {
		peerTable = make(map[astypes.Prefix]*Route)
		t.adjIn[cp.FromPeer] = peerTable
	}
	peerTable[cp.Prefix] = cp
	return t.reselectLocked(cp.Prefix)
}

// Withdraw removes the route previously advertised by peer for prefix,
// if any, and re-runs the decision process.
func (t *Table) Withdraw(peer astypes.ASN, prefix astypes.Prefix) Change {
	t.mu.Lock()
	defer t.mu.Unlock()
	if peerTable, ok := t.adjIn[peer]; ok {
		delete(peerTable, prefix)
		if len(peerTable) == 0 {
			delete(t.adjIn, peer)
		}
	}
	return t.reselectLocked(prefix)
}

// Originate installs a locally originated route (FromPeer forced to
// ASNNone) and re-runs the decision process for its prefix.
func (t *Table) Originate(route *Route) Change {
	cp := route.Clone()
	cp.FromPeer = astypes.ASNNone
	t.mu.Lock()
	defer t.mu.Unlock()
	t.local[cp.Prefix] = cp
	return t.reselectLocked(cp.Prefix)
}

// WithdrawLocal removes a locally originated route.
func (t *Table) WithdrawLocal(prefix astypes.Prefix) Change {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.local, prefix)
	return t.reselectLocked(prefix)
}

// DropPeer removes every route learned from peer (session teardown),
// returning a change record per affected prefix.
func (t *Table) DropPeer(peer astypes.ASN) []Change {
	t.mu.Lock()
	defer t.mu.Unlock()
	peerTable, ok := t.adjIn[peer]
	if !ok {
		return nil
	}
	prefixes := make([]astypes.Prefix, 0, len(peerTable))
	for p := range peerTable {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Compare(prefixes[j]) < 0 })
	delete(t.adjIn, peer)
	changes := make([]Change, 0, len(prefixes))
	for _, p := range prefixes {
		if ch := t.reselectLocked(p); ch.Changed {
			changes = append(changes, ch)
		}
	}
	return changes
}

func (t *Table) reselectLocked(prefix astypes.Prefix) Change {
	old := t.best[prefix]
	var newBest *Route
	if lr, ok := t.local[prefix]; ok {
		newBest = lr
	}
	for _, peerTable := range t.adjIn {
		if r, ok := peerTable[prefix]; ok && Better(r, newBest) {
			newBest = r
		}
	}
	// Prefer-oldest: if the incumbent best still exists (same source)
	// and ties the scan winner on attributes, keep it. This models the
	// operational stability rule that a router does not churn its best
	// path — and so does not move traffic to a hijacker — unless the new
	// route is strictly preferred.
	if old != nil && newBest != nil && old.FromPeer != newBest.FromPeer {
		if cur := t.routeFromLocked(old.FromPeer, prefix); cur != nil && Compare(cur, newBest) == 0 {
			newBest = cur
		}
	}
	ch := Change{Prefix: prefix, Old: old, New: newBest}
	if sameRoute(old, newBest) {
		return ch
	}
	ch.Changed = true
	if newBest == nil {
		delete(t.best, prefix)
	} else {
		t.best[prefix] = newBest
	}
	return ch
}

// routeFromLocked returns the live route for prefix from the given
// source (ASNNone selects the local table).
func (t *Table) routeFromLocked(peer astypes.ASN, prefix astypes.Prefix) *Route {
	if peer == astypes.ASNNone {
		return t.local[prefix]
	}
	return t.adjIn[peer][prefix]
}

func sameRoute(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.FromPeer == b.FromPeer &&
		a.Prefix == b.Prefix &&
		a.Origin == b.Origin &&
		a.LocalPref == b.LocalPref &&
		a.NextHop == b.NextHop &&
		a.AtomicAggregate == b.AtomicAggregate &&
		a.AggregatorAS == b.AggregatorAS &&
		a.Path.Equal(b.Path) &&
		sameCommunities(a.Communities, b.Communities) &&
		sameUnknown(a.Unknown, b.Unknown)
}

func sameUnknown(a, b []wire.UnknownAttr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Flags != b[i].Flags || a[i].Code != b[i].Code ||
			string(a[i].Value) != string(b[i].Value) {
			return false
		}
	}
	return true
}

func sameCommunities(a, b []astypes.Community) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Best returns the selected route for prefix (a copy), or nil.
func (t *Table) Best(prefix astypes.Prefix) *Route {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if r, ok := t.best[prefix]; ok {
		return r.Clone()
	}
	return nil
}

// BestRoutes returns a copy of the Loc-RIB in deterministic prefix order.
func (t *Table) BestRoutes() []*Route {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Route, 0, len(t.best))
	for _, r := range t.best {
		out = append(out, r.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// RoutesFrom returns copies of all routes currently held in peer's
// Adj-RIB-In, in deterministic prefix order. Passing ASNNone returns the
// locally originated routes.
func (t *Table) RoutesFrom(peer astypes.ASN) []*Route {
	t.mu.RLock()
	defer t.mu.RUnlock()
	peerTable := t.adjIn[peer]
	if peer == astypes.ASNNone {
		peerTable = t.local
	}
	out := make([]*Route, 0, len(peerTable))
	for _, r := range peerTable {
		out = append(out, r.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// Len returns the number of prefixes with a selected best route.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.best)
}

// String summarizes the Loc-RIB for debugging.
func (t *Table) String() string {
	routes := t.BestRoutes()
	s := fmt.Sprintf("Loc-RIB (%d prefixes):\n", len(routes))
	for _, r := range routes {
		s += fmt.Sprintf("  %s via AS%s path [%s]\n", r.Prefix, r.FromPeer, r.Path)
	}
	return s
}
