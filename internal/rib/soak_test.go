package rib

import (
	"sync"
	"testing"

	"repro/internal/astypes"
)

// TestTableConcurrentSoak hammers the sharded table from concurrent
// announcers, withdrawers, and readers. It asserts nothing beyond
// internal consistency of what readers observe — its job is to give the
// race detector (make race) a dense interleaving over every shard and
// every accessor, including the clone-free shared-route reads.
func TestTableConcurrentSoak(t *testing.T) {
	const (
		writers    = 4
		readers    = 4
		iterations = 400
		nPrefixes  = 64
	)
	tbl := NewTable()
	prefixes := make([]astypes.Prefix, nPrefixes)
	for i := range prefixes {
		prefixes[i] = astypes.MustPrefix(uint32(0x0a000000+i)<<8, 24)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(peer astypes.ASN) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				p := prefixes[i%nPrefixes]
				switch i % 4 {
				case 0, 1:
					r := route(peer, peer, astypes.ASN(4+i%3), 4)
					r.Prefix = p
					tbl.UpdateOwned(r)
				case 2:
					tbl.Withdraw(peer, p)
				case 3:
					tbl.DropPeer(peer)
				}
			}
		}(astypes.ASN(100 + w))
	}
	for rdr := 0; rdr < readers; rdr++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				p := prefixes[(seed+i)%nPrefixes]
				if r := tbl.Best(p); r != nil {
					// Walk the shared route's slices so the race
					// detector sees reads overlapping writer installs.
					if r.Prefix != p {
						t.Errorf("Best(%v) returned route for %v", p, r.Prefix)
					}
					_ = r.Path.Hops()
					_ = r.OriginAS()
				}
				switch i % 3 {
				case 0:
					for _, r := range tbl.BestRoutes() {
						_ = r.Path.Hops()
					}
				case 1:
					for _, r := range tbl.RoutesFrom(astypes.ASN(100 + seed%writers)) {
						_ = r.Path.Hops()
					}
				case 2:
					_ = tbl.Len()
				}
			}
		}(rdr)
	}
	wg.Wait()

	// Quiesced state must be internally consistent: every best route's
	// prefix keys its own entry.
	for _, r := range tbl.BestRoutes() {
		if tbl.Best(r.Prefix) != r {
			t.Errorf("best route for %v not reachable via Best", r.Prefix)
		}
	}
}
