package rib

import (
	"math/rand"
	"testing"

	"repro/internal/astypes"
)

// TestRandomOpSequenceInvariants drives the table with random
// update/withdraw/originate sequences and checks after every step that
// the selected best route is attribute-optimal: no held candidate
// strictly beats it, and the Loc-RIB is empty exactly when no
// candidates are held.
func TestRandomOpSequenceInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2002))
	prefixes := []astypes.Prefix{
		astypes.MustPrefix(0x0a000000, 8),
		astypes.MustPrefix(0x14000000, 8),
		astypes.MustPrefix(0x1e000000, 8),
	}
	peers := []astypes.ASN{2, 3, 5, 7, 11}

	tbl := NewTable()
	// held mirrors what the table should contain: held[peer][prefix].
	held := make(map[astypes.ASN]map[astypes.Prefix]*Route)
	heldSet := func(peer astypes.ASN, prefix astypes.Prefix, r *Route) {
		if held[peer] == nil {
			held[peer] = make(map[astypes.Prefix]*Route)
		}
		if r == nil {
			delete(held[peer], prefix)
		} else {
			held[peer][prefix] = r
		}
	}

	randomRoute := func(peer astypes.ASN, prefix astypes.Prefix) *Route {
		hops := make([]astypes.ASN, rng.Intn(4)+1)
		hops[0] = peer
		for i := 1; i < len(hops); i++ {
			hops[i] = astypes.ASN(rng.Intn(900) + 100)
		}
		return &Route{
			Prefix:    prefix,
			Path:      astypes.NewSeqPath(hops...),
			LocalPref: DefaultLocalPref + uint32(rng.Intn(3))*10,
			FromPeer:  peer,
		}
	}

	for step := 0; step < 3000; step++ {
		prefix := prefixes[rng.Intn(len(prefixes))]
		peer := peers[rng.Intn(len(peers))]
		switch rng.Intn(3) {
		case 0, 1: // update twice as likely as withdraw
			r := randomRoute(peer, prefix)
			tbl.Update(r)
			heldSet(peer, prefix, r)
		case 2:
			tbl.Withdraw(peer, prefix)
			heldSet(peer, prefix, nil)
		}

		// Invariants per prefix.
		for _, p := range prefixes {
			var candidates []*Route
			for _, byPrefix := range held {
				if r, ok := byPrefix[p]; ok {
					candidates = append(candidates, r)
				}
			}
			best := tbl.Best(p)
			if len(candidates) == 0 {
				if best != nil {
					t.Fatalf("step %d: best exists with no candidates: %+v", step, best)
				}
				continue
			}
			if best == nil {
				t.Fatalf("step %d: candidates exist but no best for %s", step, p)
			}
			for _, c := range candidates {
				if Compare(c, best) > 0 {
					t.Fatalf("step %d: candidate %+v strictly beats best %+v", step, c, best)
				}
			}
			// The best must be one of the candidates (same source).
			found := false
			for _, c := range candidates {
				if c.FromPeer == best.FromPeer {
					found = true
				}
			}
			if !found {
				t.Fatalf("step %d: best from unknown source %v", step, best.FromPeer)
			}
		}
	}
}

// TestPreferOldestStability: re-announcing attribute-equal routes from
// other peers must never move the selection.
func TestPreferOldestStability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := NewTable()
	p := astypes.MustPrefix(0x0a000000, 8)
	first := &Route{
		Prefix:    p,
		Path:      astypes.NewSeqPath(50, 4),
		LocalPref: DefaultLocalPref,
		FromPeer:  50,
	}
	tbl.Update(first)
	for i := 0; i < 500; i++ {
		peer := astypes.ASN(rng.Intn(40) + 2)
		tbl.Update(&Route{
			Prefix:    p,
			Path:      astypes.NewSeqPath(peer, astypes.ASN(rng.Intn(900)+100)),
			LocalPref: DefaultLocalPref,
			FromPeer:  peer,
		})
		if best := tbl.Best(p); best.FromPeer != 50 {
			t.Fatalf("iteration %d: tied route from %v displaced the incumbent", i, best.FromPeer)
		}
	}
}
