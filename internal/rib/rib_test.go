package rib

import (
	"testing"

	"repro/internal/astypes"
	"repro/internal/wire"
)

var prefix = astypes.MustPrefix(0x83b30000, 16)

func route(peer astypes.ASN, hops ...astypes.ASN) *Route {
	return &Route{
		Prefix:    prefix,
		Path:      astypes.NewSeqPath(hops...),
		Origin:    wire.OriginIGP,
		LocalPref: DefaultLocalPref,
		FromPeer:  peer,
	}
}

func TestCompareRules(t *testing.T) {
	shorter := route(2, 2, 4)
	longer := route(3, 3, 5, 4)
	if Compare(shorter, longer) != 1 {
		t.Error("shorter path should win")
	}
	higherPref := route(3, 3, 5, 4)
	higherPref.LocalPref = 200
	if Compare(higherPref, shorter) != 1 {
		t.Error("LOCAL_PREF should dominate path length")
	}
	egp := route(2, 2, 4)
	egp.Origin = wire.OriginEGP
	if Compare(shorter, egp) != 1 {
		t.Error("lower ORIGIN code should win")
	}
	tie := route(9, 9, 4)
	if Compare(shorter, tie) != 0 {
		t.Error("equal attributes should tie")
	}
	if Compare(nil, nil) != 0 || Compare(shorter, nil) != 1 || Compare(nil, shorter) != -1 {
		t.Error("nil handling wrong")
	}
}

func TestBetterBreaksTiesByPeer(t *testing.T) {
	a := route(2, 2, 4)
	b := route(9, 9, 4)
	if !Better(a, b) || Better(b, a) {
		t.Error("lower peer ASN should break full ties")
	}
	if Better(nil, a) {
		t.Error("nil never wins")
	}
	if !Better(a, nil) {
		t.Error("non-nil beats nil")
	}
}

func TestTableSelectsShortest(t *testing.T) {
	tbl := NewTable()
	tbl.Update(route(2, 2, 7, 4))
	ch := tbl.Update(route(3, 3, 4))
	if !ch.Changed {
		t.Fatal("shorter route should change best")
	}
	best := tbl.Best(prefix)
	if best == nil || best.FromPeer != 3 {
		t.Errorf("best = %+v", best)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestTablePreferOldestOnTie(t *testing.T) {
	tbl := NewTable()
	first := tbl.Update(route(9, 9, 4))
	if !first.Changed {
		t.Fatal("first route should install")
	}
	// An attribute-tied route from a lower-ASN peer must NOT displace
	// the incumbent (prefer-oldest stability rule).
	ch := tbl.Update(route(2, 2, 4))
	if ch.Changed {
		t.Errorf("tied route displaced incumbent: %+v", ch.New)
	}
	if best := tbl.Best(prefix); best.FromPeer != 9 {
		t.Errorf("best.FromPeer = %v, want 9", best.FromPeer)
	}
	// A strictly better route must displace it.
	ch = tbl.Update(route(2, 2))
	if !ch.Changed || ch.New.FromPeer != 2 {
		t.Errorf("strictly better route not selected: %+v", ch.New)
	}
}

func TestTableWithdraw(t *testing.T) {
	tbl := NewTable()
	tbl.Update(route(2, 2, 4))
	tbl.Update(route(3, 3, 7, 4))
	ch := tbl.Withdraw(2, prefix)
	if !ch.Changed || ch.New == nil || ch.New.FromPeer != 3 {
		t.Errorf("withdraw should fall back to peer 3: %+v", ch.New)
	}
	ch = tbl.Withdraw(3, prefix)
	if !ch.Changed || ch.New != nil {
		t.Errorf("final withdraw should empty the table: %+v", ch.New)
	}
	if tbl.Best(prefix) != nil {
		t.Error("best should be nil after all withdrawals")
	}
	// Withdrawing something absent is a no-op.
	if ch := tbl.Withdraw(5, prefix); ch.Changed {
		t.Error("withdraw of absent route changed state")
	}
}

func TestTableLocalRoutes(t *testing.T) {
	tbl := NewTable()
	local := route(astypes.ASNNone, 4)
	tbl.Originate(local)
	// A learned route with a longer path must not displace the local.
	tbl.Update(route(2, 2, 7, 4))
	if best := tbl.Best(prefix); best.FromPeer != astypes.ASNNone {
		t.Errorf("local route should win: %+v", best)
	}
	ch := tbl.WithdrawLocal(prefix)
	if !ch.Changed || ch.New == nil || ch.New.FromPeer != 2 {
		t.Errorf("withdraw local: %+v", ch.New)
	}
	// RoutesFrom(ASNNone) exposes locals.
	tbl.Originate(local)
	if got := tbl.RoutesFrom(astypes.ASNNone); len(got) != 1 {
		t.Errorf("RoutesFrom(none) = %d routes", len(got))
	}
}

func TestTableDropPeer(t *testing.T) {
	tbl := NewTable()
	p2 := astypes.MustPrefix(0x0a000000, 8)
	tbl.Update(route(2, 2, 4))
	r2 := route(2, 2, 9)
	r2.Prefix = p2
	tbl.Update(r2)
	tbl.Update(route(3, 3, 7, 4))
	changes := tbl.DropPeer(2)
	if len(changes) != 2 {
		t.Fatalf("DropPeer changes = %d, want 2", len(changes))
	}
	if best := tbl.Best(prefix); best == nil || best.FromPeer != 3 {
		t.Errorf("best after drop = %+v", best)
	}
	if tbl.Best(p2) != nil {
		t.Error("p2 should be gone")
	}
	if got := tbl.DropPeer(2); got != nil {
		t.Error("second DropPeer should be empty")
	}
}

func TestTableStoresClones(t *testing.T) {
	tbl := NewTable()
	r := route(2, 2, 4)
	tbl.Update(r)
	r.Path.Segments[0].ASNs[0] = 99 // mutate caller's copy
	if best := tbl.Best(prefix); best.Path.String() != "2 4" {
		t.Errorf("table aliased caller storage: %v", best.Path)
	}
	// Reads hand out the shared immutable route; a caller that needs a
	// mutable copy clones it, and that clone must not alias the table.
	cp := tbl.Best(prefix).Clone()
	cp.Path.Segments[0].ASNs[0] = 77
	if again := tbl.Best(prefix); again.Path.String() != "2 4" {
		t.Errorf("Clone aliased table storage: %v", again.Path)
	}
}

func TestTableOwnedVariantsSkipClone(t *testing.T) {
	tbl := NewTable()
	owned := route(2, 2, 4)
	tbl.UpdateOwned(owned)
	if best := tbl.Best(prefix); best != owned {
		t.Error("UpdateOwned should install the route without copying")
	}
	lr := route(astypes.ASNNone, 4)
	tbl.OriginateOwned(lr)
	if got := tbl.RoutesFrom(astypes.ASNNone); len(got) != 1 || got[0] != lr {
		t.Error("OriginateOwned should install the route without copying")
	}
	if best := tbl.Best(prefix); best != lr {
		t.Error("local one-hop route should win the decision process")
	}
}

func TestTableIdempotentUpdate(t *testing.T) {
	tbl := NewTable()
	tbl.Update(route(2, 2, 4))
	ch := tbl.Update(route(2, 2, 4))
	if ch.Changed {
		t.Error("identical re-announcement should not signal change")
	}
	// Same peer, different path: implicit replacement.
	ch = tbl.Update(route(2, 2, 9, 4))
	if !ch.Changed {
		t.Error("replacement with longer path should still change best (same source)")
	}
	if best := tbl.Best(prefix); best.Path.Hops() != 3 {
		t.Errorf("best path = %v", best.Path)
	}
}

func TestBestRoutesSortedAndOriginAS(t *testing.T) {
	tbl := NewTable()
	pA := astypes.MustPrefix(0x0a000000, 8)
	pB := astypes.MustPrefix(0x14000000, 8)
	rB := route(2, 2, 5)
	rB.Prefix = pB
	tbl.Update(rB)
	rA := route(2, 2, 4)
	rA.Prefix = pA
	tbl.Update(rA)
	routes := tbl.BestRoutes()
	if len(routes) != 2 || routes[0].Prefix != pA || routes[1].Prefix != pB {
		t.Errorf("BestRoutes order wrong: %+v", routes)
	}
	if routes[0].OriginAS() != 4 || routes[1].OriginAS() != 5 {
		t.Error("OriginAS wrong")
	}
}

func TestRouteFrom(t *testing.T) {
	tbl := NewTable()
	r2 := route(2, 2, 4)
	r3 := route(3, 3, 5, 4)
	tbl.Update(r2)
	tbl.Update(r3)
	lr := route(astypes.ASNNone, 7)
	tbl.Originate(lr)
	if got := tbl.RouteFrom(2, prefix); got == nil || got.FromPeer != 2 || got.Path.Hops() != 2 {
		t.Errorf("RouteFrom(2) = %+v", got)
	}
	if got := tbl.RouteFrom(3, prefix); got == nil || got.Path.Hops() != 3 {
		t.Errorf("RouteFrom(3) = %+v", got)
	}
	if got := tbl.RouteFrom(astypes.ASNNone, prefix); got == nil || got.FromPeer != astypes.ASNNone {
		t.Errorf("RouteFrom(ASNNone) = %+v", got)
	}
	if got := tbl.RouteFrom(9, prefix); got != nil {
		t.Errorf("RouteFrom(unknown peer) = %+v, want nil", got)
	}
	other := astypes.MustPrefix(0x0a000000, 8)
	if got := tbl.RouteFrom(2, other); got != nil {
		t.Errorf("RouteFrom(unknown prefix) = %+v, want nil", got)
	}
}

func TestClearEmptiesAndStaysUsable(t *testing.T) {
	tbl := NewTable()
	pA := astypes.MustPrefix(0x0a000000, 8)
	rA := route(2, 2, 4)
	rA.Prefix = pA
	tbl.Update(rA)
	tbl.Update(route(3, 3, 5, 4))
	tbl.Originate(route(astypes.ASNNone, 7))
	if tbl.Len() == 0 {
		t.Fatal("setup: table empty")
	}
	tbl.Clear()
	if tbl.Len() != 0 {
		t.Errorf("Len after Clear = %d", tbl.Len())
	}
	if tbl.Best(prefix) != nil || tbl.Best(pA) != nil {
		t.Error("Best should be nil after Clear")
	}
	if got := tbl.RouteFrom(2, pA); got != nil {
		t.Errorf("RouteFrom after Clear = %+v", got)
	}
	if got := tbl.RoutesFrom(astypes.ASNNone); len(got) != 0 {
		t.Errorf("local routes after Clear = %+v", got)
	}
	// The cleared table must behave exactly like a fresh one.
	tbl.Update(route(2, 2, 4))
	tbl.Update(route(3, 3, 5, 4))
	if best := tbl.Best(prefix); best == nil || best.FromPeer != 2 {
		t.Errorf("post-Clear decision process broken: %+v", tbl.Best(prefix))
	}
	if ch := tbl.Withdraw(2, prefix); !ch.Changed || ch.New.FromPeer != 3 {
		t.Errorf("post-Clear withdraw: %+v", ch)
	}
}

// TestChangeReason: every Changed=true result carries the matching
// Reason, and a no-op reselect stays ReasonNone.
func TestChangeReason(t *testing.T) {
	tbl := NewTable()

	ch := tbl.Update(route(2, 2, 4))
	if !ch.Changed || ch.Reason != ReasonInstalled {
		t.Errorf("first install: changed=%v reason=%v", ch.Changed, ch.Reason)
	}
	// A strictly worse route from another peer changes nothing.
	ch = tbl.Update(route(3, 3, 5, 4))
	if ch.Changed || ch.Reason != ReasonNone {
		t.Errorf("worse route: changed=%v reason=%v", ch.Changed, ch.Reason)
	}
	// A strictly better route replaces the best.
	better := route(9, 9)
	better.LocalPref = 200
	ch = tbl.Update(better)
	if !ch.Changed || ch.Reason != ReasonReplaced {
		t.Errorf("better route: changed=%v reason=%v", ch.Changed, ch.Reason)
	}
	// Withdrawing the best falls back to a remaining route.
	ch = tbl.Withdraw(9, prefix)
	if !ch.Changed || ch.Reason != ReasonReplaced || ch.New == nil {
		t.Errorf("fallback: changed=%v reason=%v new=%v", ch.Changed, ch.Reason, ch.New)
	}
	// Withdrawing everything empties the prefix.
	tbl.Withdraw(3, prefix)
	ch = tbl.Withdraw(2, prefix)
	if !ch.Changed || ch.Reason != ReasonWithdrawn || ch.New != nil {
		t.Errorf("final withdraw: changed=%v reason=%v new=%v", ch.Changed, ch.Reason, ch.New)
	}
	if s := ReasonReplaced.String(); s != "replaced" {
		t.Errorf("Reason string: %q", s)
	}
}
