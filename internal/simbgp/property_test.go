package simbgp

import (
	"math/rand"
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/topology"
)

// randomConnectedGraph builds a random connected graph: a random
// spanning tree plus random chords.
func randomConnectedGraph(rng *rand.Rand, n int) *topology.Graph {
	g := topology.NewGraph()
	nodes := make([]astypes.ASN, n)
	for i := range nodes {
		nodes[i] = astypes.ASN(i + 1)
		g.AddNode(nodes[i])
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(nodes[perm[i]], nodes[perm[rng.Intn(i)]])
	}
	extra := rng.Intn(n)
	for i := 0; i < extra; i++ {
		a, b := nodes[rng.Intn(n)], nodes[rng.Intn(n)]
		g.AddEdge(a, b)
	}
	return g
}

// TestConvergenceToShortestPaths: on random connected graphs with a
// single origin and no attackers, every node converges to a route whose
// AS-path length equals its BFS distance to the origin — the
// path-vector protocol finds shortest paths at quiescence.
func TestConvergenceToShortestPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(30) + 5
		g := randomConnectedGraph(rng, n)
		origin := astypes.ASN(rng.Intn(n) + 1)

		net, err := NewNetwork(Config{Topology: g})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Originate(origin, victim, core.List{}); err != nil {
			t.Fatal(err)
		}
		if err := net.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dist := g.ShortestPathLens(origin)
		for _, asn := range net.Nodes() {
			best := net.Node(asn).Best(victim)
			if asn == origin {
				if best == nil || best.FromPeer != astypes.ASNNone {
					t.Fatalf("trial %d: origin lost its own route", trial)
				}
				continue
			}
			if best == nil {
				t.Fatalf("trial %d: AS %s unreachable in a connected graph", trial, asn)
			}
			if got, want := best.Path.Hops(), dist[asn]; got != want {
				t.Fatalf("trial %d: AS %s path hops %d, BFS distance %d (path %v)",
					trial, asn, got, want, best.Path)
			}
			if o := best.OriginAS(); o != origin {
				t.Fatalf("trial %d: AS %s origin %s", trial, asn, o)
			}
			if best.Path.Contains(asn) {
				t.Fatalf("trial %d: AS %s has a looped path %v", trial, asn, best.Path)
			}
		}
	}
}

// TestDetectionConservation: on random graphs with random attackers and
// full detection, census categories partition the non-attacker
// population, and every adoption happens at a node that never saw the
// valid route (alarm-free adopters only).
func TestDetectionConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(25) + 8
		g := randomConnectedGraph(rng, n)
		origin := astypes.ASN(rng.Intn(n) + 1)
		valid := core.NewList(origin)
		var attackers []astypes.ASN
		for len(attackers) < n/5+1 {
			a := astypes.ASN(rng.Intn(n) + 1)
			if a != origin {
				attackers = astypes.DedupASNs(append(attackers, a))
			}
		}
		net, err := NewNetwork(Config{
			Topology: g,
			Resolver: resolverFor(valid),
		})
		if err != nil {
			t.Fatal(err)
		}
		attackerSet := make(map[astypes.ASN]bool)
		for _, a := range attackers {
			attackerSet[a] = true
		}
		for _, asn := range net.Nodes() {
			if !attackerSet[asn] {
				if err := net.SetMode(asn, ModeDetect); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := net.Originate(origin, victim, core.List{}); err != nil {
			t.Fatal(err)
		}
		for _, a := range attackers {
			if err := net.OriginateInvalid(a, victim, core.List{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := net.Run(); err != nil {
			t.Fatal(err)
		}
		c := net.TakeCensus(victim, valid)
		if c.NonAttackers != n-len(attackers) {
			t.Fatalf("trial %d: NonAttackers = %d, want %d", trial, c.NonAttackers, n-len(attackers))
		}
		if c.AdoptedFalse < 0 || c.AdoptedFalse+c.NoRoute > c.NonAttackers {
			t.Fatalf("trial %d: census does not partition: %+v", trial, c)
		}
		// A full-detection node that raised an alarm has, by definition,
		// resolved the conflict: it must not end on the false route.
		for _, asn := range net.Nodes() {
			node := net.Node(asn)
			if node.Attacker() || len(node.Alarms()) == 0 {
				continue
			}
			if node.AdoptsFalse(victim, valid) {
				t.Fatalf("trial %d: AS %s alarmed yet adopted the false route", trial, asn)
			}
		}
	}
}

// TestWithdrawalSymmetry: originate then withdraw leaves every RIB
// empty, regardless of topology.
func TestWithdrawalSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(20) + 4
		g := randomConnectedGraph(rng, n)
		origin := astypes.ASN(rng.Intn(n) + 1)
		net, err := NewNetwork(Config{Topology: g})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Originate(origin, victim, core.List{}); err != nil {
			t.Fatal(err)
		}
		if err := net.Run(); err != nil {
			t.Fatal(err)
		}
		if err := net.Withdraw(origin, victim); err != nil {
			t.Fatal(err)
		}
		if err := net.Run(); err != nil {
			t.Fatal(err)
		}
		for _, asn := range net.Nodes() {
			if net.Node(asn).Best(victim) != nil {
				t.Fatalf("trial %d: AS %s kept a route after withdrawal", trial, asn)
			}
		}
	}
}
