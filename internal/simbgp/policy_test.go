package simbgp

import (
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/topology"
)

// hierTopology builds a small provider hierarchy:
//
//	     1 ------- 2        (tier-1s)
//	    / \       / \
//	  11   12   21   22     (mid providers / stub 22)
//	  /     \    \
//	111     121  211        (stubs)
//
// Degrees are arranged so the degree heuristic classifies every
// transit-transit edge as provider-customer (deg 1 = deg 2 = 3, deg
// 11 = deg 12 = deg 21 = 2).
func hierTopology() (*topology.Graph, map[astypes.ASN]bool) {
	g := topology.NewGraph()
	g.AddEdge(1, 2)
	g.AddEdge(1, 11)
	g.AddEdge(1, 12)
	g.AddEdge(2, 21)
	g.AddEdge(2, 22)
	g.AddEdge(11, 111)
	g.AddEdge(12, 121)
	g.AddEdge(21, 211)
	transit := map[astypes.ASN]bool{1: true, 2: true, 11: true, 12: true, 21: true}
	return g, transit
}

func TestInferRelationsHierarchy(t *testing.T) {
	g, transit := hierTopology()
	rel := topology.InferRelations(g, transit)
	if got := rel.Of(11, 111); got != topology.RelProvider {
		t.Errorf("11->111 = %v, want provider", got)
	}
	if got := rel.Of(111, 11); got != topology.RelCustomer {
		t.Errorf("111->11 = %v, want customer", got)
	}
	// Tier-1s have equal degree 3: they peer.
	if got := rel.Of(1, 2); got != topology.RelPeer {
		t.Errorf("1->2 = %v, want peer", got)
	}
	// 2 (degree 3) is 21's (degree 2) provider: 2*3 >= 3*2.
	if got := rel.Of(2, 21); got != topology.RelProvider {
		t.Errorf("2->21 = %v, want provider", got)
	}
	if got := rel.Of(1, 211); got != topology.RelNone {
		t.Errorf("non-adjacent relation = %v", got)
	}
	if got := rel.Customers(g, 11); len(got) != 1 || got[0] != 111 {
		t.Errorf("Customers(11) = %v", got)
	}
}

func TestValleyFreeExportRestriction(t *testing.T) {
	g, transit := hierTopology()
	rel := topology.InferRelations(g, transit)
	n, err := NewNetwork(Config{Topology: g, Relations: rel})
	if err != nil {
		t.Fatal(err)
	}
	// Stub 111 originates: its announcement climbs to providers and
	// back down — everyone should reach it (customer routes export
	// everywhere).
	if err := n.Originate(111, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	for _, asn := range n.Nodes() {
		if n.Node(asn).Best(victim) == nil {
			t.Errorf("AS %s unreachable under valley-free (customer routes export everywhere)", asn)
		}
	}
	// Valley-free path property: on every node's path, once the route
	// has gone provider->customer (downhill), it never goes back uphill.
	for _, asn := range n.Nodes() {
		best := n.Node(asn).Best(victim)
		if best == nil {
			continue
		}
		// hops run receiver-first: [asn, ..., origin]. The announcement
		// flowed origin -> asn, so walk from the end of the slice toward
		// the front; once it has gone downhill (provider->customer or
		// across a peering), it must never climb again.
		hops := append([]astypes.ASN{asn}, flatten(best.Path)...)
		downhill := false
		for i := len(hops) - 1; i >= 1; i-- {
			from, to := hops[i], hops[i-1]
			switch rel.Of(from, to) {
			case topology.RelCustomer: // customer -> provider: uphill
				if downhill {
					t.Fatalf("valley in path %v of AS %s", hops, asn)
				}
			case topology.RelProvider, topology.RelPeer:
				downhill = true
			}
		}
	}
}

func TestValleyFreeBlocksPeerTransit(t *testing.T) {
	// 11 and 12 are both customers of 1 and peer directly: a route 12
	// learned from its provider 1 must NOT be exported to peer 11 over
	// the lateral link. Relations are configured explicitly (the
	// lateral link perturbs the degree heuristic).
	g, _ := hierTopology()
	g.AddEdge(11, 12) // lateral peer link
	rel := topology.NewRelations()
	rel.Set(1, 2, topology.RelPeer)
	rel.Set(1, 11, topology.RelProvider)
	rel.Set(1, 12, topology.RelProvider)
	rel.Set(2, 21, topology.RelProvider)
	rel.Set(2, 22, topology.RelProvider)
	rel.Set(11, 111, topology.RelProvider)
	rel.Set(12, 121, topology.RelProvider)
	rel.Set(21, 211, topology.RelProvider)
	rel.Set(11, 12, topology.RelPeer)
	if got := rel.Of(11, 12); got != topology.RelPeer {
		t.Fatalf("11-12 relation = %v, want peer", got)
	}
	n, err := NewNetwork(Config{Topology: g, Relations: rel})
	if err != nil {
		t.Fatal(err)
	}
	// 211 originates; 21 -> 2 -> 1 -> {11, 12} (downhill). 12 must not
	// re-export this provider-learned route to peer 11 (and vice
	// versa); both still hear it from provider 1.
	if err := n.Originate(211, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	best := n.Node(11).Best(victim)
	if best == nil {
		t.Fatal("AS 11 unreachable")
	}
	if best.FromPeer == 12 {
		t.Errorf("AS 11 routes via peer 12: provider-learned route leaked across the peering")
	}
	// Compare: flooding (no relations) may use the lateral link freely.
	n2, err := NewNetwork(Config{Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	if err := n2.Originate(211, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n2.Run(); err != nil {
		t.Fatal(err)
	}
	if n2.Node(11).Best(victim) == nil {
		t.Fatal("flooding baseline failed")
	}
}

func TestValleyFreeDetectionStillWorks(t *testing.T) {
	g, transit := hierTopology()
	rel := topology.InferRelations(g, transit)
	n, err := NewNetwork(Config{
		Topology:  g,
		Relations: rel,
		Resolver:  resolverFor(core.NewList(111)),
	})
	if err != nil {
		t.Fatal(err)
	}
	detectAll(t, n, 211)
	if err := n.Originate(111, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.OriginateInvalid(211, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	c := n.TakeCensus(victim, core.NewList(111))
	if c.AdoptedFalse != 0 {
		t.Errorf("census under valley-free = %+v", c)
	}
	if c.AlarmedNodes == 0 {
		t.Error("no alarms under valley-free")
	}
}

func flatten(p astypes.ASPath) []astypes.ASN {
	var out []astypes.ASN
	for _, seg := range p.Segments {
		out = append(out, seg.ASNs...)
	}
	return out
}
