package simbgp

import (
	"fmt"
	"sort"

	"repro/internal/astypes"
)

// FailLink schedules the (a, b) peering to fail at the current virtual
// time: both endpoints drop every route learned from the other and
// propagate the resulting changes, modelling a BGP session teardown.
// Messages already in flight on the link are discarded.
func (n *Network) FailLink(a, b astypes.ASN) error {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return fmt.Errorf("simbgp: no link %s-%s", a, b)
	}
	if !na.hasNeighbor(b) {
		return fmt.Errorf("simbgp: %s and %s do not peer", a, b)
	}
	n.engine.Schedule(0, func() {
		n.failedLinks[linkKey(a, b)] = true
		na.dropNeighbor(b)
		nb.dropNeighbor(a)
	})
	return nil
}

// RestoreLink re-establishes a previously failed link; both endpoints
// re-advertise their current best routes to each other, as a fresh BGP
// session would after table exchange.
func (n *Network) RestoreLink(a, b astypes.ASN) error {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return fmt.Errorf("simbgp: no link %s-%s", a, b)
	}
	n.engine.Schedule(0, func() {
		if !n.failedLinks[linkKey(a, b)] {
			return
		}
		delete(n.failedLinks, linkKey(a, b))
		na.addNeighbor(b)
		nb.addNeighbor(a)
		na.refreshTo(b)
		nb.refreshTo(a)
	})
	return nil
}

// LinkFailed reports whether the (a, b) link is currently failed.
func (n *Network) LinkFailed(a, b astypes.ASN) bool {
	return n.failedLinks[linkKey(a, b)]
}

func linkKey(a, b astypes.ASN) [2]astypes.ASN {
	if a > b {
		a, b = b, a
	}
	return [2]astypes.ASN{a, b}
}

func (nd *Node) hasNeighbor(peer astypes.ASN) bool {
	for _, nb := range nd.neighbors {
		if nb == peer {
			return true
		}
	}
	return false
}

func (nd *Node) addNeighbor(peer astypes.ASN) {
	if nd.hasNeighbor(peer) {
		return
	}
	nd.neighbors = append(nd.neighbors, peer)
	sort.Slice(nd.neighbors, func(i, j int) bool { return nd.neighbors[i] < nd.neighbors[j] })
}

// dropNeighbor removes peer from the adjacency and flushes every route
// learned from it, propagating the fallout.
func (nd *Node) dropNeighbor(peer astypes.ASN) {
	out := nd.neighbors[:0]
	for _, nb := range nd.neighbors {
		if nb != peer {
			out = append(out, nb)
		}
	}
	nd.neighbors = out
	delete(nd.advertised, peer)
	for _, ch := range nd.table.DropPeer(peer) {
		nd.propagate(ch)
	}
}

// refreshTo advertises the node's entire Loc-RIB to one (re-joined)
// neighbor, as a fresh session's initial table exchange would.
func (nd *Node) refreshTo(peer astypes.ASN) {
	for _, r := range nd.table.BestRoutes() {
		nd.emitTo(peer, r.Prefix, r)
	}
}
