package simbgp

import (
	"fmt"

	"repro/internal/astypes"
)

// FailLink schedules the (a, b) peering to fail at the current virtual
// time: both endpoints drop every route learned from the other and
// propagate the resulting changes, modelling a BGP session teardown.
// Messages already in flight on the link are discarded.
func (n *Network) FailLink(a, b astypes.ASN) error {
	na, nb := n.Node(a), n.Node(b)
	if na == nil || nb == nil {
		return fmt.Errorf("simbgp: no link %s-%s", a, b)
	}
	if !na.hasNeighbor(b) {
		return fmt.Errorf("simbgp: %s and %s do not peer", a, b)
	}
	n.engine.Schedule(0, func() {
		n.failedLinks[linkKey(a, b)] = true
		na.dropNeighbor(b)
		nb.dropNeighbor(a)
	})
	return nil
}

// RestoreLink re-establishes a previously failed link; both endpoints
// re-advertise their current best routes to each other, as a fresh BGP
// session would after table exchange.
func (n *Network) RestoreLink(a, b astypes.ASN) error {
	na, nb := n.Node(a), n.Node(b)
	if na == nil || nb == nil {
		return fmt.Errorf("simbgp: no link %s-%s", a, b)
	}
	n.engine.Schedule(0, func() {
		if !n.failedLinks[linkKey(a, b)] {
			return
		}
		delete(n.failedLinks, linkKey(a, b))
		na.restoreNeighbor(b)
		nb.restoreNeighbor(a)
		na.refreshTo(b)
		nb.refreshTo(a)
	})
	return nil
}

// LinkFailed reports whether the (a, b) link is currently failed.
func (n *Network) LinkFailed(a, b astypes.ASN) bool {
	return n.failedLinks[linkKey(a, b)]
}

func linkKey(a, b astypes.ASN) [2]astypes.ASN {
	if a > b {
		a, b = b, a
	}
	return [2]astypes.ASN{a, b}
}

// hasNeighbor reports whether peer is an adjacent, currently-up
// neighbor.
func (nd *Node) hasNeighbor(peer astypes.ASN) bool {
	s := nd.slotOf(peer)
	return s >= 0 && !nd.neighborDown[s]
}

// restoreNeighbor brings a failed adjacency slot back up.
func (nd *Node) restoreNeighbor(peer astypes.ASN) {
	if s := nd.slotOf(peer); s >= 0 {
		nd.neighborDown[s] = false
	}
}

// dropNeighbor marks the peer's adjacency slot down and flushes every
// route learned from it, propagating the fallout in ascending prefix
// order. The advertised bookkeeping for the slot resets: a restored
// session starts from a clean table exchange.
func (nd *Node) dropNeighbor(peer astypes.ASN) {
	s := nd.slotOf(peer)
	if s < 0 {
		return
	}
	nd.neighborDown[s] = true
	n := nd.net
	g := n.slotBase[nd.idx] + int32(s)
	for _, id := range n.pfxSorted {
		st := &n.pfx[id]
		st.clrAdv(g)
		if n.clearSlot(nd, st, g) {
			nd.propagate(st)
		}
	}
}

// refreshTo advertises the node's entire Loc-RIB to one (re-joined)
// neighbor, as a fresh session's initial table exchange would.
func (nd *Node) refreshTo(peer astypes.ASN) {
	s := nd.slotOf(peer)
	if s < 0 {
		return
	}
	n := nd.net
	for _, id := range n.pfxSorted {
		st := &n.pfx[id]
		if best := st.bestPlus[nd.idx] - 1; best >= 0 {
			var adv outMsg
			nd.emitToSlot(s, st, best, &adv)
		}
	}
}
