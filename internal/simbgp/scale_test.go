package simbgp

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/topology"
)

// powerLawNet builds a compact network over an n-AS preferential-
// attachment topology, returning it with the sample for node selection.
func powerLawNet(t testing.TB, n int, seed int64, valid core.List) (*Network, *topology.SampleResult) {
	t.Helper()
	res, err := topology.GeneratePowerLaw(topology.DefaultPowerLawParams(n), seed)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(Config{Topology: res.Graph, Resolver: resolverFor(valid)})
	if err != nil {
		t.Fatal(err)
	}
	return net, res
}

// scaleScenario picks a deterministic victim stub and a distant
// attacker for an internet-scale run: the victim originates with the
// implicit single-origin list, so no 2-octet ASN constraint applies.
func scaleScenario(res *topology.SampleResult) (origin, attacker astypes.ASN) {
	stubs := res.StubASes()
	origin = stubs[0]
	nbr := make(map[astypes.ASN]bool)
	for _, p := range res.Graph.Neighbors(origin) {
		nbr[p] = true
	}
	for _, s := range stubs[1:] {
		if s != origin && !nbr[s] {
			return origin, s
		}
	}
	panic("no eligible attacker")
}

// TestInternetScale70k is the tentpole acceptance test: a 70k-AS
// power-law internet must build, converge a valid announcement, and
// absorb one forged-origin hijack within a ~2 GiB live-heap budget.
// Skipped with -short (tens of seconds of work).
func TestInternetScale70k(t *testing.T) {
	if testing.Short() {
		t.Skip("70k-AS internet build; skipped with -short")
	}
	const nodes = 70_000
	origin := astypes.ASN(0)
	valid := core.List{}
	start := time.Now()
	net, res := powerLawNet(t, nodes, 42, valid)
	built := time.Since(start)
	origin, attacker := scaleScenario(res)
	valid = core.NewList(origin)
	if err := net.Reset(Config{Topology: res.Graph, Resolver: resolverFor(valid)}); err != nil {
		t.Fatal(err)
	}
	for _, asn := range net.Nodes() {
		if asn != attacker {
			if err := net.SetMode(asn, ModeDetect); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := net.Originate(origin, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	converged := time.Since(start) - built
	if err := net.OriginateInvalid(attacker, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}

	c := net.TakeCensus(victim, valid)
	if c.NonAttackers != nodes-1 {
		t.Fatalf("census covers %d of %d non-attacker nodes", c.NonAttackers, nodes-1)
	}
	if kept := c.NonAttackers - c.AdoptedFalse - c.NoRoute; kept < nodes*9/10 {
		t.Errorf("only %d of %d nodes kept the valid route under full detection", kept, nodes)
	}
	if c.AlarmedNodes == 0 {
		t.Error("no alarms raised at 70k scale")
	}

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	const budget = 2 << 30
	if ms.HeapAlloc > budget {
		t.Errorf("live heap %d bytes exceeds the 2 GiB budget", ms.HeapAlloc)
	}
	t.Logf("70k scale: build %v, valid convergence %v (%.0f nodes/s), %d messages, live heap %.1f MiB (%.1f KiB/node)",
		built.Round(time.Millisecond), converged.Round(time.Millisecond),
		nodes/converged.Seconds(), net.MessageCount(),
		float64(ms.HeapAlloc)/(1<<20), float64(ms.HeapAlloc)/float64(nodes)/1024)
}

// TestResetAllocsConstant10k guards the Reset scaling fix: rewinding a
// dirty 10k-AS network must allocate O(1) — in-place clears of the
// flat per-prefix arrays and per-node fields, never a fresh map or
// slice per node. Skipped with -short.
func TestResetAllocsConstant10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-AS reset soak; skipped with -short")
	}
	valid := core.NewList(1)
	net, res := powerLawNet(t, 10_000, 7, valid)
	cfg := Config{Topology: res.Graph, Resolver: resolverFor(valid), MRAI: 30 * time.Second}
	origin, attacker := scaleScenario(res)
	dirty := func() {
		if err := net.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		if err := net.Originate(origin, victim, core.List{}); err != nil {
			t.Fatal(err)
		}
		if err := net.OriginateInvalid(attacker, victim, core.List{}); err != nil {
			t.Fatal(err)
		}
		if err := net.Run(); err != nil {
			t.Fatal(err)
		}
	}
	dirty()
	allocs := testing.AllocsPerRun(5, func() {
		if err := net.Reset(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// The allowance covers the engine's constant-size resets; 10k nodes
	// would show up as thousands.
	if allocs > 64 {
		t.Errorf("Reset of a 10k-AS network allocates %.0f times, want O(1)", allocs)
	}

	// Same guard with state to rewind between measured Resets: interned
	// paths and registered prefixes persist, so even a dirty rewind stays
	// constant after the first scenario warmed the tables.
	dirty()
	allocs = testing.AllocsPerRun(5, func() {
		dirty()
	})
	if allocs > 256 {
		t.Errorf("dirty rewind+rerun of a 10k-AS network allocates %.0f times, want O(1)", allocs)
	}
}

// TestResetMatchesFreshAtScale10k extends the reset-vs-fresh
// equivalence pin to internet scale: a pooled network rewound from a
// different scenario must reproduce a fresh network's hijack outcome
// bit for bit. Skipped with -short.
func TestResetMatchesFreshAtScale10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-AS equivalence; skipped with -short")
	}
	const nodes = 10_000
	valid := core.NewList(1)
	fresh, res := powerLawNet(t, nodes, 11, valid)
	origin, attacker := scaleScenario(res)
	valid = core.NewList(origin)
	cfg := Config{Topology: res.Graph, Resolver: resolverFor(valid)}
	if err := fresh.Reset(cfg); err != nil {
		t.Fatal(err)
	}

	run := func(net *Network) (Census, Census, uint64) {
		for _, asn := range net.Nodes() {
			if asn != attacker {
				if err := net.SetMode(asn, ModeDetect); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := net.Originate(origin, victim, core.List{}); err != nil {
			t.Fatal(err)
		}
		if err := net.Run(); err != nil {
			t.Fatal(err)
		}
		if err := net.OriginateInvalid(attacker, victim, core.List{}); err != nil {
			t.Fatal(err)
		}
		if err := net.Run(); err != nil {
			t.Fatal(err)
		}
		return net.TakeCensus(victim, valid), net.TakeForwardingCensus(victim, valid), net.MessageCount()
	}
	wantRIB, wantFwd, wantMsgs := run(fresh)

	reused, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the reused network with an unrelated scenario first.
	other := res.StubASes()[2]
	if err := reused.Originate(other, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := reused.FailLink(origin, res.Graph.Neighbors(origin)[0]); err != nil {
		t.Fatal(err)
	}
	if err := reused.Run(); err != nil {
		t.Fatal(err)
	}
	if err := reused.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	gotRIB, gotFwd, gotMsgs := run(reused)
	if gotRIB != wantRIB || gotFwd != wantFwd || gotMsgs != wantMsgs {
		t.Errorf("reset run diverged at 10k:\n rib  %+v vs %+v\n fwd  %+v vs %+v\n msgs %d vs %d",
			gotRIB, wantRIB, gotFwd, wantFwd, gotMsgs, wantMsgs)
	}
}

// TestInternedPathIsolation is the aliasing property test for the
// intern tables: routes handed out by Best are private copies, so no
// amount of mutation through one node's materialized route may change
// what any other node (or a re-query of the same node) observes.
func TestInternedPathIsolation(t *testing.T) {
	for _, seed := range []int64{3, 17, 99} {
		valid := core.NewList(1, 9)
		net, res := powerLawNet(t, 150, seed, valid)
		stubs := res.StubASes()
		o1, o2 := stubs[0], stubs[1]
		valid = core.NewList(o1, o2)
		if err := net.Reset(Config{Topology: res.Graph, Resolver: resolverFor(valid)}); err != nil {
			t.Fatal(err)
		}
		for _, asn := range net.Nodes() {
			if err := net.SetMode(asn, ModeDetect); err != nil {
				t.Fatal(err)
			}
		}
		// A multi-origin announcement with an explicit MOAS list makes
		// every propagated route carry shared interned communities.
		for _, o := range []astypes.ASN{o1, o2} {
			if err := net.Originate(o, victim, valid); err != nil {
				t.Fatal(err)
			}
		}
		if err := net.Run(); err != nil {
			t.Fatal(err)
		}

		render := func(asn astypes.ASN) string {
			best := net.Node(asn).Best(victim)
			if best == nil {
				return "<none>"
			}
			return fmt.Sprintf("%v|%v|%v", best.Path, best.Communities, best.FromPeer)
		}
		want := make(map[astypes.ASN]string, len(net.Nodes()))
		for _, asn := range net.Nodes() {
			want[asn] = render(asn)
		}
		// Vandalize every materialized route in place: if Best leaked a
		// reference into the shared tables, some later render changes.
		for _, asn := range net.Nodes() {
			best := net.Node(asn).Best(victim)
			if best == nil {
				continue
			}
			for si := range best.Path.Segments {
				for ai := range best.Path.Segments[si].ASNs {
					best.Path.Segments[si].ASNs[ai] = 0xdead
				}
			}
			for ci := range best.Communities {
				best.Communities[ci] = astypes.Community(0xdeadbeef)
			}
		}
		for _, asn := range net.Nodes() {
			if got := render(asn); got != want[asn] {
				t.Fatalf("seed %d: AS %s route changed after foreign mutation:\n got  %s\n want %s",
					seed, asn, got, want[asn])
			}
		}
	}
}
