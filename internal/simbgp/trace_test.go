package simbgp

import (
	"strings"
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/trace"
)

func TestTracerRecordsConvergence(t *testing.T) {
	n := newNet(t, lineTopology(1, 2, 3), core.NewList(1))
	tracer := NewTracer(1024)
	n.Attach(tracer)
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if tracer.CountKind(EvAnnounce) == 0 || tracer.CountKind(EvBestChanged) == 0 {
		t.Errorf("missing events: %d announces, %d best-changes",
			tracer.CountKind(EvAnnounce), tracer.CountKind(EvBestChanged))
	}
	events := tracer.Events()
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("events out of virtual-time order")
		}
	}
	if s := events[0].String(); !strings.Contains(s, "AS") {
		t.Errorf("event rendering: %q", s)
	}
}

func TestTracerAlarmAndRejectEvents(t *testing.T) {
	n := newNet(t, lineTopology(1, 2, 9), core.NewList(1))
	detectAll(t, n, 9)
	tracer := NewTracer(1024, WithFilter(func(e TraceEvent) bool {
		return e.Kind == EvAlarm || e.Kind == EvRejected
	}))
	n.Attach(tracer)
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.OriginateInvalid(9, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if tracer.CountKind(EvAlarm) == 0 {
		t.Error("no alarm events recorded")
	}
	for _, e := range tracer.Events() {
		if e.Kind != EvAlarm && e.Kind != EvRejected {
			t.Fatalf("filter leaked %v", e.Kind)
		}
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.record(TraceEvent{Node: astypes.ASN(i)})
	}
	events := tr.Events()
	if len(events) != 3 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", len(events), tr.Dropped())
	}
	if events[0].Node != 2 || events[2].Node != 4 {
		t.Errorf("ring order: %v", events)
	}
	if NewTracer(0) == nil {
		t.Error("zero capacity should clamp, not fail")
	}
}

func TestRecorderMirrorsSimulation(t *testing.T) {
	n := newNet(t, lineTopology(1, 2, 9), core.NewList(1))
	detectAll(t, n, 9)
	rec := trace.NewRecorder(1024, trace.WithoutWallClock())
	n.AttachRecorder(rec)
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.OriginateInvalid(9, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}

	kinds := map[trace.Kind]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind]++
		if e.Nanos != 0 {
			t.Fatal("virtual-clock recorder must not stamp wall time")
		}
	}
	if kinds[trace.KindRecv] == 0 || kinds[trace.KindRIB] == 0 {
		t.Errorf("missing mirrored events: %v", kinds)
	}
	if kinds[trace.KindValidate] == 0 {
		t.Errorf("detector rejection not mirrored: %v", kinds)
	}
	// The alarm event arrives exactly once per bundle (not double-fed
	// through the generic event hook).
	if kinds[trace.KindAlarm] != rec.AlarmCount() {
		t.Errorf("%d alarm events vs %d bundles", kinds[trace.KindAlarm], rec.AlarmCount())
	}
	if rec.AlarmCount() == 0 {
		t.Fatal("no forensic bundles captured")
	}
	// Link delays decide which origin's route reaches the detector
	// second (and so triggers the conflict); assert the bundle is
	// self-consistent rather than pinning the race.
	b, _ := rec.Alarm(0)
	if b.Node != 2 || b.Verdict != "conflict" {
		t.Errorf("bundle: %+v", b)
	}
	if got := b.Origins; len(got) != 2 || got[0] != 1 || got[1] != 9 {
		t.Errorf("competing origins: %v", got)
	}
	if len(b.Path) == 0 || b.Path[len(b.Path)-1] != b.Origin {
		t.Errorf("offending path %v must end at origin %d", b.Path, b.Origin)
	}

	// Reset must detach the recorder along with the tracer.
	if err := n.Reset(Config{Topology: n.topo}); err != nil {
		t.Fatal(err)
	}
	if n.recorder != nil {
		t.Error("Reset left the recorder attached")
	}
}
