package simbgp

import (
	"strings"
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
)

func TestTracerRecordsConvergence(t *testing.T) {
	n := newNet(t, lineTopology(1, 2, 3), core.NewList(1))
	tracer := NewTracer(1024)
	n.Attach(tracer)
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if tracer.CountKind(EvAnnounce) == 0 || tracer.CountKind(EvBestChanged) == 0 {
		t.Errorf("missing events: %d announces, %d best-changes",
			tracer.CountKind(EvAnnounce), tracer.CountKind(EvBestChanged))
	}
	events := tracer.Events()
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("events out of virtual-time order")
		}
	}
	if s := events[0].String(); !strings.Contains(s, "AS") {
		t.Errorf("event rendering: %q", s)
	}
}

func TestTracerAlarmAndRejectEvents(t *testing.T) {
	n := newNet(t, lineTopology(1, 2, 9), core.NewList(1))
	detectAll(t, n, 9)
	tracer := NewTracer(1024, WithFilter(func(e TraceEvent) bool {
		return e.Kind == EvAlarm || e.Kind == EvRejected
	}))
	n.Attach(tracer)
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.OriginateInvalid(9, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if tracer.CountKind(EvAlarm) == 0 {
		t.Error("no alarm events recorded")
	}
	for _, e := range tracer.Events() {
		if e.Kind != EvAlarm && e.Kind != EvRejected {
			t.Fatalf("filter leaked %v", e.Kind)
		}
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.record(TraceEvent{Node: astypes.ASN(i)})
	}
	events := tr.Events()
	if len(events) != 3 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", len(events), tr.Dropped())
	}
	if events[0].Node != 2 || events[2].Node != 4 {
		t.Errorf("ring order: %v", events)
	}
	if NewTracer(0) == nil {
		t.Error("zero capacity should clamp, not fail")
	}
}
