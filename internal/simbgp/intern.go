package simbgp

// Network-global intern tables for the compact simulation state. At
// quiescence most of an internet-scale network's nodes hold the same
// handful of AS paths and MOAS lists per prefix; interning stores each
// distinct value once and lets per-node state refer to it by a uint32
// id. Ids are content-addressed within one Network: equal content
// always yields the same id, so id equality is value equality and the
// simulation's behavior never depends on the order ids were assigned.

import (
	"encoding/binary"

	"repro/internal/astypes"
	"repro/internal/core"
)

// pathTab interns AS paths as a reverse trie: each sequence entry is
// (head, tail) where head is the newest (first) AS and tail the id of
// the rest of the path. BGP propagation grows paths by prepending, so
// the shared structure is exactly the suffix every downstream copy has
// in common, and a sender-side Prepend is one map lookup. Paths that
// are not a single AS_SEQUENCE (forged or aggregated) are stored as
// literal entries referencing a retained ASPath.
//
// Id 0 is reserved for "no path"; entry ids never reach callers before
// being interned, so adjacency slots can use 0 as "no route".
type pathTab struct {
	// head is the first AS of the entry; ASNNone marks a literal entry,
	// whose tail indexes lits instead of a parent entry.
	head []astypes.ASN
	tail []uint32
	// hops and origin cache the two path attributes the decision process
	// and census read, so neither ever materializes a path.
	hops   []uint32
	origin []astypes.ASN
	byKey  map[uint64]uint32
	lits   []astypes.ASPath
}

func newPathTab() *pathTab {
	t := &pathTab{byKey: make(map[uint64]uint32)}
	// Entry 0: the empty path.
	t.head = append(t.head, astypes.ASNNone)
	t.tail = append(t.tail, 0)
	t.hops = append(t.hops, 0)
	t.origin = append(t.origin, astypes.ASNNone)
	return t
}

// prepend returns the id of asn followed by the path id — the interned
// form of ASPath.Prepend. Steady state (the path already seen) is one
// map lookup and allocation-free.
func (t *pathTab) prepend(id uint32, asn astypes.ASN) uint32 {
	key := uint64(asn)<<32 | uint64(id)
	if got, ok := t.byKey[key]; ok {
		return got
	}
	next := uint32(len(t.head))
	t.head = append(t.head, asn)
	t.tail = append(t.tail, id)
	t.hops = append(t.hops, t.hops[id]+1)
	if id == 0 {
		t.origin = append(t.origin, asn)
	} else {
		t.origin = append(t.origin, t.origin[id])
	}
	t.byKey[key] = next
	return next
}

// internSeq interns a pure AS_SEQUENCE hop list.
func (t *pathTab) internSeq(asns []astypes.ASN) uint32 {
	id := uint32(0)
	for i := len(asns) - 1; i >= 0; i-- {
		id = t.prepend(id, asns[i])
	}
	return id
}

// intern interns an arbitrary path. Single-sequence paths (the entire
// simulation traffic) fold into the trie; anything else — forged
// multi-segment or AS_SET paths — becomes a literal entry. An empty
// path also becomes a literal so that id 0 stays "no path".
func (t *pathTab) intern(p astypes.ASPath) uint32 {
	if len(p.Segments) == 1 && p.Segments[0].Type == astypes.SegSequence && len(p.Segments[0].ASNs) > 0 {
		return t.internSeq(p.Segments[0].ASNs)
	}
	id := uint32(len(t.head))
	t.head = append(t.head, astypes.ASNNone)
	t.tail = append(t.tail, uint32(len(t.lits)))
	t.hops = append(t.hops, uint32(p.Hops()))
	origin, _ := p.Origin()
	t.origin = append(t.origin, origin)
	t.lits = append(t.lits, p.Clone())
	return id
}

// isLit reports whether id is a literal entry.
func (t *pathTab) isLit(id uint32) bool { return id != 0 && t.head[id] == astypes.ASNNone }

// contains is the interned ASPath.Contains, used for loop detection.
//
//repro:allocfree
func (t *pathTab) contains(id uint32, asn astypes.ASN) bool {
	for id != 0 {
		if t.isLit(id) {
			return t.lits[t.tail[id]].Contains(asn)
		}
		if t.head[id] == asn {
			return true
		}
		id = t.tail[id]
	}
	return false
}

// materialize rebuilds the ASPath for id. Only cold paths (traces,
// alarms, Best) call it; the hot path reads hops/origin directly.
func (t *pathTab) materialize(id uint32) astypes.ASPath {
	if id == 0 {
		return astypes.ASPath{}
	}
	var heads []astypes.ASN
	for id != 0 && !t.isLit(id) {
		heads = append(heads, t.head[id])
		id = t.tail[id]
	}
	if id == 0 {
		if len(heads) == 0 {
			return astypes.ASPath{}
		}
		return astypes.ASPath{Segments: []astypes.Segment{{Type: astypes.SegSequence, ASNs: heads}}}
	}
	// Terminal literal: splice the collected heads in front, merging
	// into its first segment when that is a sequence, exactly as
	// repeated ASPath.Prepend would have.
	lit := t.lits[t.tail[id]].Clone()
	if len(heads) == 0 {
		return lit
	}
	if len(lit.Segments) > 0 && lit.Segments[0].Type == astypes.SegSequence {
		lit.Segments[0].ASNs = append(heads, lit.Segments[0].ASNs...)
		return lit
	}
	return astypes.ASPath{Segments: append([]astypes.Segment{{Type: astypes.SegSequence, ASNs: heads}}, lit.Segments...)}
}

// listTab interns MOAS lists. Id 0 means "none"/"not cached"; every
// interned list (including the empty list) gets an id >= 1.
type listTab struct {
	lists []core.List // index id-1
	byKey map[string]uint32
	// implicit caches the id of the single-origin implicit list per
	// origin AS, the common case of every unlisted announcement.
	implicit map[astypes.ASN]uint32
	scratch  []byte
	asns     []astypes.ASN
}

func newListTab() *listTab {
	return &listTab{byKey: make(map[string]uint32), implicit: make(map[astypes.ASN]uint32)}
}

func (t *listTab) intern(l core.List) uint32 {
	t.asns = l.AppendOrigins(t.asns[:0])
	t.scratch = t.scratch[:0]
	for _, a := range t.asns {
		t.scratch = binary.LittleEndian.AppendUint32(t.scratch, uint32(a))
	}
	if got, ok := t.byKey[string(t.scratch)]; ok {
		return got
	}
	id := uint32(len(t.lists) + 1)
	t.lists = append(t.lists, l)
	t.byKey[string(t.scratch)] = id
	return id
}

// implicitOf returns the id of the implicit single-origin list for
// origin; steady state is one map lookup.
func (t *listTab) implicitOf(origin astypes.ASN) uint32 {
	if got, ok := t.implicit[origin]; ok {
		return got
	}
	id := t.intern(core.ImplicitList(origin))
	t.implicit[origin] = id
	return id
}

// listOf returns the interned list (id >= 1).
func (t *listTab) listOf(id uint32) core.List { return t.lists[id-1] }

// contains reports membership without materializing anything.
//
//repro:allocfree
func (t *listTab) contains(id uint32, asn astypes.ASN) bool {
	return t.lists[id-1].Contains(asn)
}

// commTab interns community attributes. Id 0 means the empty attribute.
// Each entry caches the decoded explicit MOAS-list id (0 when the
// attribute carries none) and the id of its MOAS-stripped form, so the
// detection and strip-in-transit paths never re-decode communities.
type commTab struct {
	sets [][]astypes.Community // index id-1
	// moas is the listTab id of the explicit MOAS list, 0 if absent.
	moas []uint32
	// strip is the commTab id after StripMOAS.
	strip   []uint32
	byKey   map[string]uint32
	scratch []byte
}

func newCommTab() *commTab {
	return &commTab{byKey: make(map[string]uint32)}
}

func (t *commTab) intern(comms []astypes.Community, lists *listTab) uint32 {
	if len(comms) == 0 {
		return 0
	}
	t.scratch = t.scratch[:0]
	for _, c := range comms {
		t.scratch = binary.LittleEndian.AppendUint32(t.scratch, uint32(c))
	}
	if got, ok := t.byKey[string(t.scratch)]; ok {
		return got
	}
	cp := make([]astypes.Community, len(comms))
	copy(cp, comms)
	id := uint32(len(t.sets) + 1)
	t.sets = append(t.sets, cp)
	moasID := uint32(0)
	if l, has := core.FromCommunities(cp); has {
		moasID = lists.intern(l)
	}
	t.moas = append(t.moas, moasID)
	t.strip = append(t.strip, 0xffffffff) // lazily computed
	t.byKey[string(t.scratch)] = id
	return id
}

// setOf returns the canonical stored slice; callers must treat it as
// read-only (Best clones before handing it out).
func (t *commTab) setOf(id uint32) []astypes.Community {
	if id == 0 {
		return nil
	}
	return t.sets[id-1]
}

// moasOf returns the explicit MOAS-list id of the attribute (0 = none).
//
//repro:allocfree
func (t *commTab) moasOf(id uint32) uint32 {
	if id == 0 {
		return 0
	}
	return t.moas[id-1]
}

// stripOf returns the id of the attribute with MOAS-list communities
// removed, computing and caching it on first use.
func (t *commTab) stripOf(id uint32, lists *listTab) uint32 {
	if id == 0 {
		return 0
	}
	if s := t.strip[id-1]; s != 0xffffffff {
		return s
	}
	s := t.intern(core.StripMOAS(t.sets[id-1]), lists)
	t.strip[id-1] = s
	return s
}

// effectiveID resolves the interned effective MOAS list of a route:
// the explicit list when present, else the implicit single-origin list
// (§4.2 footnote 3). Returns 0 when the route has neither a list nor
// an origin — the EffectiveList error case.
func effectiveID(comms *commTab, lists *listTab, commID uint32, origin astypes.ASN) uint32 {
	if m := comms.moasOf(commID); m != 0 {
		return m
	}
	if origin == astypes.ASNNone {
		return 0
	}
	return lists.implicitOf(origin)
}
