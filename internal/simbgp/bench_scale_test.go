package simbgp

import (
	"runtime"
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/rib"
	"repro/internal/topology"
)

// The BenchmarkSimScale family records the compact engine's
// internet-scale numbers in BENCH_simscale.json (make bench-simscale):
// convergence throughput in nodes/s, steady-state bytes of network
// state per node, and allocs/op for a full converge-attack-converge
// cycle at 10k and 70k ASes. The 1k pair benchmarks the identical
// workload against the pre-refactor map layout (one rib.Table, one
// advertised map and one resolved map per node), so the file itself
// documents the compaction factor.

// benchConverge measures the compact engine: per iteration one pooled
// Reset, a valid origination converged, one forged-origin attack
// converged.
func benchConverge(b *testing.B, nodes int) {
	res, err := topology.GeneratePowerLaw(topology.DefaultPowerLawParams(nodes), 42)
	if err != nil {
		b.Fatal(err)
	}
	origin, attacker := scaleScenario(res)
	valid := core.NewList(origin)
	cfg := Config{Topology: res.Graph, Resolver: resolverFor(valid)}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	net, err := NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	iter := func() {
		if err := net.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		for _, asn := range net.Nodes() {
			if asn != attacker {
				if err := net.SetMode(asn, ModeDetect); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := net.Originate(origin, victim, core.List{}); err != nil {
			b.Fatal(err)
		}
		if err := net.Run(); err != nil {
			b.Fatal(err)
		}
		if err := net.OriginateInvalid(attacker, victim, core.List{}); err != nil {
			b.Fatal(err)
		}
		if err := net.Run(); err != nil {
			b.Fatal(err)
		}
	}
	iter() // warm the intern tables and event pools before measuring
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	bytesPerNode := heapPerNode(before, after, nodes)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter()
	}
	// ResetTimer discards earlier user metrics, so both report here.
	b.ReportMetric(bytesPerNode, "state-bytes/node")
	b.ReportMetric(float64(nodes)*float64(b.N)/b.Elapsed().Seconds(), "nodes/s")
}

// heapPerNode is the live-heap growth per topology node between two
// GC'd MemStats snapshots.
func heapPerNode(before, after runtime.MemStats, nodes int) float64 {
	if after.HeapAlloc <= before.HeapAlloc {
		return 0
	}
	return float64(after.HeapAlloc-before.HeapAlloc) / float64(nodes)
}

func BenchmarkSimScaleConverge1k(b *testing.B)  { benchConverge(b, 1_000) }
func BenchmarkSimScaleConverge10k(b *testing.B) { benchConverge(b, 10_000) }
func BenchmarkSimScaleConverge70k(b *testing.B) { benchConverge(b, 70_000) }

// baseNode is the pre-refactor per-node state layout: a 16-shard
// rib.Table of cloned *rib.Route values plus per-peer advertised maps.
type baseNode struct {
	asn        astypes.ASN
	neighbors  []astypes.ASN
	table      *rib.Table
	advertised map[astypes.ASN]map[astypes.Prefix]bool
}

type baseMsg struct {
	to, from astypes.ASN
	route    *rib.Route
}

// baselineNetwork builds the map-layout network.
func baselineNetwork(g *topology.Graph) map[astypes.ASN]*baseNode {
	nodes := make(map[astypes.ASN]*baseNode, g.NumNodes())
	for _, asn := range g.Nodes() {
		nodes[asn] = &baseNode{
			asn:        asn,
			neighbors:  g.Neighbors(asn),
			table:      rib.NewTable(),
			advertised: make(map[astypes.ASN]map[astypes.Prefix]bool),
		}
	}
	return nodes
}

// baselineConverge floods one origination through the map layout with
// the same decision process (rib.Table's) and per-hop path prepending
// the old engine performed, processing messages FIFO to convergence.
func baselineConverge(nodes map[astypes.ASN]*baseNode, origin astypes.ASN, prefix astypes.Prefix) int {
	o := nodes[origin]
	o.table.OriginateOwned(&rib.Route{Prefix: prefix, LocalPref: rib.DefaultLocalPref})
	var queue []baseMsg
	emit := func(nd *baseNode, best *rib.Route) {
		out := best.Clone()
		out.Path = out.Path.Prepend(nd.asn)
		for _, peer := range nd.neighbors {
			if out.Path.Contains(peer) {
				continue
			}
			adv := nd.advertised[peer]
			if adv == nil {
				adv = make(map[astypes.Prefix]bool)
				nd.advertised[peer] = adv
			}
			adv[prefix] = true
			queue = append(queue, baseMsg{to: peer, from: nd.asn, route: out})
		}
	}
	emit(o, o.table.Best(prefix))
	msgs := 0
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		msgs++
		nd := nodes[m.to]
		r := m.route.Clone()
		r.FromPeer = m.from
		if ch := nd.table.Update(r); ch.Changed {
			emit(nd, ch.New)
		}
	}
	return msgs
}

// BenchmarkSimScaleConverge1kBaseline is the map-layout counterpart of
// BenchmarkSimScaleConverge1k: same topology, same origination flood,
// per-node rib.Table storage. The state-bytes/node gap against the
// compact benchmark is the refactor's headline number.
func BenchmarkSimScaleConverge1kBaseline(b *testing.B) {
	const nodeCount = 1_000
	res, err := topology.GeneratePowerLaw(topology.DefaultPowerLawParams(nodeCount), 42)
	if err != nil {
		b.Fatal(err)
	}
	origin, _ := scaleScenario(res)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	nodes := baselineNetwork(res.Graph)
	baselineConverge(nodes, origin, victim)
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	bytesPerNode := heapPerNode(before, after, nodeCount)
	runtime.KeepAlive(nodes)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := baselineNetwork(res.Graph)
		baselineConverge(fresh, origin, victim)
	}
	b.ReportMetric(bytesPerNode, "state-bytes/node")
	b.ReportMetric(float64(nodeCount)*float64(b.N)/b.Elapsed().Seconds(), "nodes/s")
}
