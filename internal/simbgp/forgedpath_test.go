package simbgp

import (
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
)

// TestForgedPathEvadesMOASDetection reproduces the second §4.3
// limitation as a negative result: the attacker claims a short path
// ending at the TRUE origin. The implicit MOAS list is {origin} —
// consistent with the valid announcements — so no alarm fires, yet
// traffic drawn by the shorter path physically enters the attacker.
func TestForgedPathEvadesMOASDetection(t *testing.T) {
	// 1 -- 2 -- 3 -- 4 -- 9: real origin AS 1, attacker AS 9 at the far
	// end claims to be directly adjacent to AS 1.
	g := lineTopology(1, 2, 3, 4, 9)
	valid := core.NewList(1)
	n := newNet(t, g, valid)
	detectAll(t, n, 9)
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	// AS 4's honest route is 3 hops ([3 2 1]).
	if hops := n.Node(4).Best(victim).Path.Hops(); hops != 3 {
		t.Fatalf("AS 4 honest hops = %d", hops)
	}

	// The attack: AS 9 claims path [1], i.e. a direct link to the
	// origin. Exported to AS 4 it becomes [9 1]: 2 hops, strictly
	// shorter than the honest 3.
	forged := astypes.NewSeqPath(1)
	if err := n.OriginateForgedPath(9, victim, forged, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}

	// No MOAS alarm anywhere: the forged announcement's implicit list
	// {1} matches the valid one.
	for _, asn := range n.Nodes() {
		if got := len(n.Node(asn).Alarms()); got != 0 {
			t.Errorf("AS %s alarmed (%d) — forged-path attacks should be invisible to MOAS checking", asn, got)
		}
	}
	// The RIB census also looks clean (origin is "valid")...
	c := n.TakeCensus(victim, valid)
	if c.AdoptedFalse != 0 {
		t.Errorf("RIB census flagged %d adopters; the forged origin is the valid one", c.AdoptedFalse)
	}
	// ...but the forwarding census exposes the hijack: AS 4's traffic
	// now flows into the attacker.
	fwd := n.TakeForwardingCensus(victim, valid)
	if fwd.AdoptedFalse == 0 {
		t.Error("forwarding census missed the forged-path capture")
	}
	best := n.Node(4).Best(victim)
	if best.FromPeer != 9 {
		t.Errorf("AS 4 next hop = %v, want the attacker 9", best.FromPeer)
	}
}
