// Package simbgp is the AS-level BGP simulation model used by the
// paper's evaluation (§5): one BGP speaker per AS on an undirected
// peering topology, driven by the discrete-event engine in internal/sim.
// It plays the role of the authors' modified SSFnet simulator.
//
// Each node runs the standard path-vector machinery (loop detection,
// shortest-AS-path decision, best-route propagation to all peers),
// replicating the decision process of internal/rib exactly — the live
// daemons keep their sharded rib.Table, the simulator trades it for the
// compact layout below. Nodes optionally run the paper's MOAS
// detection: they extract the effective MOAS list of every announcement
// (explicit communities or the implicit single-origin rule), raise an
// alarm on any inconsistency, resolve the conflict through a Resolver
// (the stand-in for the DNS MOASRR lookup of §4.4), and then refuse to
// install or propagate routes from origins outside the resolved valid
// set — "they stop the further propagation of a false route" (§5.2).
//
// Layout is optimized for internet scale (§5 runs the paper's curves on
// power-law topologies up to 70k ASes) and for the experiment harness,
// which runs hundreds of simulations per sweep: nodes live in a dense
// slice indexed by a per-topology ASN→index table (maps only at the API
// boundary); AS paths, MOAS lists, and community attributes are
// interned network-wide (intern.go) so per-adjacency routing state is a
// pair of uint32 ids in flat per-prefix arrays (compact.go) rather than
// a rib.Table per node; message delivery and MRAI fires are typed
// engine events carrying indices and pooled message slots (no closure
// per message); one propagated advertisement is interned once and
// shared by id across all receiving peers; and Reset rewinds a network
// for reuse clearing every structure in place, without per-node
// allocation.
package simbgp

import (
	"fmt"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/rib"
	"repro/internal/rpki"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Mode selects a node's MOAS-checking behaviour.
type Mode int

// Node modes.
const (
	// ModeNormal is unmodified BGP: MOAS lists transit opaquely and are
	// never checked ("Normal BGP" curves).
	ModeNormal Mode = iota + 1
	// ModeDetect checks MOAS-list consistency and suppresses resolved
	// false routes ("Full/Half MOAS Detection" curves).
	ModeDetect
)

func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeDetect:
		return "detect"
	default:
		return "unknown"
	}
}

// Resolver answers "which origins are entitled to announce this prefix"
// once a node has detected a conflict — the paper's DNS MOASRR lookup.
// internal/dnsval provides a production-shaped implementation; the
// experiment harness injects ground truth directly.
type Resolver interface {
	ValidOrigins(prefix astypes.Prefix) (core.List, bool)
}

// ResolverFunc adapts a function to the Resolver interface.
type ResolverFunc func(astypes.Prefix) (core.List, bool)

// ValidOrigins implements Resolver.
func (f ResolverFunc) ValidOrigins(p astypes.Prefix) (core.List, bool) { return f(p) }

// Config assembles a simulated network.
type Config struct {
	// Topology supplies the peering graph (required).
	Topology *topology.Graph
	// Resolver resolves detected conflicts (required if any node runs
	// ModeDetect).
	Resolver Resolver
	// LinkDelay returns the propagation delay of the (a, b) link. Nil
	// selects a deterministic per-link default.
	LinkDelay func(a, b astypes.ASN) time.Duration
	// EventLimit optionally overrides the engine's event budget.
	EventLimit uint64
	// MRAI enables the MinRouteAdvertisementInterval timer per peer
	// (zero disables it, the default and the paper's model).
	MRAI time.Duration
	// Relations, when set, enables Gao-Rexford valley-free export
	// policy: routes learned from a peer or provider are exported only
	// to customers. Nil floods every best route to every neighbor (the
	// paper's model).
	Relations *topology.Relations
	// RPKI, when set, cross-checks every raised alarm against a
	// validated ROA store: each alarm bundle carries the rpki.Classify
	// class and the network tallies per-class counts (AlarmClasses). A
	// nil store leaves ROV silent (everything validates NotFound).
	RPKI *rpki.Store
}

// Typed event kinds dispatched by Network.Dispatch.
const (
	// evDeliver delivers in-flight message B (a slot in Network.inflight)
	// to node index A.
	evDeliver uint32 = iota + 1
	// evMRAIFlush fires node A's MRAI timer for peer ASN B.
	evMRAIFlush
)

// Network is a simulated AS-level BGP internetwork.
type Network struct {
	engine *sim.Engine
	topo   *topology.Graph
	// nodes is the dense node array; byASN maps an ASN to its index and
	// asns caches the sorted ASN list. nodes is allocated once and never
	// regrown, so *Node pointers stay valid across Reset.
	nodes     []Node
	byASN     map[astypes.ASN]int32
	asns      []astypes.ASN
	resolver  Resolver
	linkDelay func(a, b astypes.ASN) time.Duration
	rpki      *rpki.Store
	// alarmClasses tallies raised alarms by ROV-crossed class across
	// the whole network, indexed by rpki.Class.
	alarmClasses [rpki.NumClasses]uint64
	msgCount     uint64
	failedLinks  map[[2]astypes.ASN]bool
	relations    *topology.Relations
	tracer       *Tracer
	recorder     *trace.Recorder

	// Adjacency-slot geometry: node i owns the global slot range
	// [slotBase[i], slotBase[i]+deg(i)] — one slot per neighbor in
	// ascending ASN order plus a trailing local slot. recip maps each
	// neighbor slot to the owner's slot index within that neighbor's own
	// adjacency (so a delivered message lands in O(1)); relSlot caches
	// the owner→neighbor business relation per slot when valley-free
	// export is enabled (relFilled remembers which Relations it holds).
	slotBase   []int32
	totalSlots int32
	recip      []int32
	relSlot    []topology.Relation
	relFilled  *topology.Relations

	// The network-global intern tables and the per-prefix flat routing
	// state (compact.go). All three tables and the prefix registry
	// persist across Reset: ids are content-addressed, so reuse is
	// behavior-neutral and steady-state sweeps stop allocating entirely.
	paths     *pathTab
	lists     *listTab
	comms     *commTab
	pfxID     map[astypes.Prefix]int32
	pfx       []pfxState
	pfxSorted []int32

	// inflight holds the payload of every scheduled-but-undelivered
	// message; freeMsgs recycles vacated slots so steady-state delivery
	// allocates nothing once the high-water mark is reached.
	inflight []message
	freeMsgs []uint32
	// visited/visitEpoch are the forwarding-walk scratch: a slot is
	// "visited" when it equals the current epoch, so clearing between
	// walks is one integer increment.
	visited    []uint32
	visitEpoch uint32
}

// DefaultLinkDelay derives a deterministic delay in [10ms, 35ms) from
// the link endpoints, so that message interleavings differ across links
// but never across runs.
func DefaultLinkDelay(a, b astypes.ASN) time.Duration {
	h := uint32(a)*2654435761 ^ uint32(b)*40503
	return 10*time.Millisecond + time.Duration(h%25)*time.Millisecond
}

// NewNetwork builds one node per topology vertex, all in ModeNormal.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Topology == nil || cfg.Topology.NumNodes() == 0 {
		return nil, fmt.Errorf("simbgp: empty topology")
	}
	n := &Network{
		engine:      sim.NewEngine(),
		topo:        cfg.Topology,
		failedLinks: make(map[[2]astypes.ASN]bool),
		paths:       newPathTab(),
		lists:       newListTab(),
		comms:       newCommTab(),
		pfxID:       make(map[astypes.Prefix]int32),
	}
	n.engine.SetDispatcher(n)
	asns := cfg.Topology.Nodes()
	n.asns = asns
	n.byASN = make(map[astypes.ASN]int32, len(asns))
	for i, a := range asns {
		n.byASN[a] = int32(i)
	}
	n.nodes = make([]Node, len(asns))
	n.visited = make([]uint32, len(asns))
	n.slotBase = make([]int32, len(asns))
	total := int32(0)
	for i, a := range asns {
		nd := &n.nodes[i]
		nd.asn = a
		nd.idx = int32(i)
		nd.net = n
		nd.neighbors = cfg.Topology.Neighbors(a)
		nd.neighborIdx = make([]int32, len(nd.neighbors))
		for s, p := range nd.neighbors {
			nd.neighborIdx[s] = n.byASN[p]
		}
		nd.neighborDown = make([]bool, len(nd.neighbors))
		n.slotBase[i] = total
		total += int32(len(nd.neighbors)) + 1
	}
	n.totalSlots = total
	n.recip = make([]int32, total)
	n.relSlot = make([]topology.Relation, total)
	for i := range n.nodes {
		nd := &n.nodes[i]
		base := n.slotBase[i]
		for s := range nd.neighbors {
			peer := &n.nodes[nd.neighborIdx[s]]
			n.recip[base+int32(s)] = int32(peer.slotOf(nd.asn))
		}
	}
	n.applyConfig(cfg)
	return n, nil
}

// applyConfig installs the per-run configuration shared by NewNetwork
// and Reset. It allocates nothing per node: MRAI state is created
// lazily on first deferral and relation slots are refilled only when
// the Relations table actually changed.
func (n *Network) applyConfig(cfg Config) {
	delay := cfg.LinkDelay
	if delay == nil {
		delay = DefaultLinkDelay
	}
	n.linkDelay = delay
	n.resolver = cfg.Resolver
	n.relations = cfg.Relations
	n.rpki = cfg.RPKI
	n.engine.SetEventLimit(cfg.EventLimit)
	if cfg.Relations != nil && n.relFilled != cfg.Relations {
		n.relFilled = cfg.Relations
		for i := range n.nodes {
			nd := &n.nodes[i]
			base := n.slotBase[i]
			for s, p := range nd.neighbors {
				n.relSlot[base+int32(s)] = cfg.Relations.Of(nd.asn, p)
			}
		}
	}
	for i := range n.nodes {
		nd := &n.nodes[i]
		nd.mode = ModeNormal
		nd.mraiInterval = cfg.MRAI
		if cfg.MRAI <= 0 {
			nd.mrai = nil
		} else if nd.mrai != nil {
			nd.mrai.clearAll()
		}
	}
}

// Reset rewinds the network for a fresh run under cfg, reusing every
// node, intern table, and per-prefix array in place. cfg.Topology must
// be the exact *topology.Graph the network was built with (the dense
// index layout is derived from it); any resolver, delay function,
// relations, MRAI, or event limit may change between runs. Existing
// *Node pointers remain valid. Reset performs no per-node allocation,
// so pooled sweep reuse costs O(state) writes and O(1) allocs.
func (n *Network) Reset(cfg Config) error {
	if cfg.Topology != n.topo {
		return fmt.Errorf("simbgp: Reset requires the network's own topology")
	}
	n.engine.Reset()
	n.msgCount = 0
	n.tracer = nil
	n.recorder = nil
	clear(n.alarmClasses[:])
	n.visitEpoch = 0
	clear(n.visited)
	clear(n.failedLinks)
	n.inflight = n.inflight[:0]
	n.freeMsgs = n.freeMsgs[:0]
	for i := range n.pfx {
		st := &n.pfx[i]
		clear(st.adjPath)
		clear(st.adjComm)
		clear(st.adjEff)
		clear(st.bestPlus)
		clear(st.adv)
		clear(st.resolved)
	}
	for i := range n.nodes {
		nd := &n.nodes[i]
		nd.attacker = false
		nd.stripMOAS = false
		nd.alarms = nil
		clear(nd.neighborDown)
	}
	n.applyConfig(cfg)
	return nil
}

// Node returns the node for asn, or nil.
func (n *Network) Node(asn astypes.ASN) *Node {
	if i, ok := n.byASN[asn]; ok {
		return &n.nodes[i]
	}
	return nil
}

// Nodes returns all node ASNs in ascending order.
func (n *Network) Nodes() []astypes.ASN {
	out := make([]astypes.ASN, len(n.asns))
	copy(out, n.asns)
	return out
}

// SetMode configures a node's MOAS-checking mode.
func (n *Network) SetMode(asn astypes.ASN, m Mode) error {
	node := n.Node(asn)
	if node == nil {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	node.mode = m
	return nil
}

// SetStripMOAS makes a node remove MOAS-list communities from every
// route it propagates — the §4.3 scenario of routers dropping optional
// transitive communities (and the tampering attacker of the ablation
// benches).
func (n *Network) SetStripMOAS(asn astypes.ASN, strip bool) error {
	node := n.Node(asn)
	if node == nil {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	node.stripMOAS = strip
	return nil
}

// MessageCount returns the number of UPDATE messages delivered so far.
func (n *Network) MessageCount() uint64 { return n.msgCount }

// AlarmClasses returns the network-wide tally of raised alarms by
// ROV-crossed class, indexed by rpki.Class. Without a configured RPKI
// store every alarm lands in the MOAS-provenance classes.
func (n *Network) AlarmClasses() [rpki.NumClasses]uint64 { return n.alarmClasses }

// Engine exposes the underlying event engine (for custom scheduling in
// tests and harnesses).
func (n *Network) Engine() *sim.Engine { return n.engine }

// Run drives the simulation to quiescence.
func (n *Network) Run() error { return n.engine.Run() }

// message is one simulated BGP UPDATE (or withdrawal) on a link. Path
// and community attributes travel as intern-table ids, so an in-flight
// message is a few words with no heap references, and every copy of one
// advertisement shares the same interned values. toSlot is the slot of
// the sender within the receiver's adjacency, precomputed so delivery
// never searches.
type message struct {
	from     astypes.ASN
	prefix   astypes.Prefix
	withdraw bool
	toSlot   int32
	pathID   uint32
	commID   uint32
}

// Dispatch executes typed engine events (sim.Dispatcher).
func (n *Network) Dispatch(ev sim.Typed) {
	switch ev.Kind {
	case evDeliver:
		n.deliver(ev.A, ev.B)
	case evMRAIFlush:
		n.nodes[ev.A].flushMRAI(astypes.ASN(ev.B))
	}
}

// deliver hands inflight slot `slot` to node index toIdx, releasing the
// slot. Link failure is re-checked at delivery time, so messages in
// flight when the link fails are lost with it.
//
//repro:allocfree
func (n *Network) deliver(toIdx, slot uint32) {
	msg := n.inflight[slot]
	n.inflight[slot] = message{}
	n.freeMsgs = append(n.freeMsgs, slot)
	dst := &n.nodes[toIdx]
	if len(n.failedLinks) != 0 && n.failedLinks[linkKey(msg.from, dst.asn)] {
		return
	}
	n.msgCount++
	// The delivery ordinal doubles as the trace span: alarm forensics
	// can point at "the Nth message delivered in this run", which is
	// stable under the deterministic engine.
	dst.receive(msg, n.msgCount)
}

// allocSlot parks msg in the inflight pool and returns its slot.
//
//repro:allocfree
func (n *Network) allocSlot(msg message) uint32 {
	if k := len(n.freeMsgs); k > 0 {
		slot := n.freeMsgs[k-1]
		n.freeMsgs = n.freeMsgs[:k-1]
		n.inflight[slot] = msg
		return slot
	}
	n.inflight = append(n.inflight, msg)
	return uint32(len(n.inflight) - 1)
}

// sendSlot schedules msg from nd to its neighbor in adjacency slot s.
//
//repro:allocfree
func (n *Network) sendSlot(nd *Node, s int, msg message) {
	if nd.neighborDown[s] {
		return
	}
	to := nd.neighbors[s]
	if len(n.failedLinks) != 0 && n.failedLinks[linkKey(nd.asn, to)] {
		return
	}
	msg.toSlot = n.recip[n.slotBase[nd.idx]+int32(s)]
	slot := n.allocSlot(msg)
	n.engine.ScheduleTyped(n.linkDelay(nd.asn, to),
		sim.Typed{Kind: evDeliver, A: uint32(nd.neighborIdx[s]), B: slot})
}

// Originate makes asn announce prefix with the given MOAS list attached.
// An empty list attaches no communities (the implicit rule applies at
// receivers). The announcement is scheduled at the current virtual time.
func (n *Network) Originate(asn astypes.ASN, prefix astypes.Prefix, list core.List) error {
	node := n.Node(asn)
	if node == nil {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	n.engine.Schedule(0, func() { node.originate(prefix, list, false) })
	return nil
}

// OriginateInvalid makes asn falsely announce prefix (the attack). The
// forged list, if non-empty, is attached verbatim — e.g. a superset list
// including the attacker (§4.1) or a copy of the valid list.
func (n *Network) OriginateInvalid(asn astypes.ASN, prefix astypes.Prefix, forged core.List) error {
	node := n.Node(asn)
	if node == nil {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	n.engine.Schedule(0, func() { node.originate(prefix, forged, true) })
	return nil
}

// OriginateForgedPath makes asn announce prefix with a fabricated AS
// path — the §4.3 limitation case: "an AS could make a false route
// announcement with a correct origin AS but a manipulated AS path."
// The forged path's origin can be the legitimate origin, so the
// announcement carries a consistent implicit MOAS list and evades
// list checking entirely; only path authentication (the paper cites
// predecessor signing) would catch it.
func (n *Network) OriginateForgedPath(asn astypes.ASN, prefix astypes.Prefix, forged astypes.ASPath, list core.List) error {
	node := n.Node(asn)
	if node == nil {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	n.engine.Schedule(0, func() {
		node.attacker = true
		st := n.registerPrefix(prefix)
		pathID := n.paths.intern(forged)
		commID := n.comms.intern(list.Communities(), n.lists)
		effID := effectiveID(n.comms, n.lists, commID, n.paths.origin[pathID])
		if n.updateSlot(node, st, n.localSlot(node), pathID, commID, effID) {
			node.propagate(st)
		}
	})
	return nil
}

// Withdraw makes asn withdraw its locally originated route for prefix.
func (n *Network) Withdraw(asn astypes.ASN, prefix astypes.Prefix) error {
	node := n.Node(asn)
	if node == nil {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	n.engine.Schedule(0, func() { node.withdrawLocal(prefix) })
	return nil
}

// Node is one simulated AS.
type Node struct {
	asn       astypes.ASN
	idx       int32
	mode      Mode
	attacker  bool
	stripMOAS bool
	net       *Network
	// neighbors is the node's adjacency in ascending ASN order,
	// immutable after construction. neighborIdx holds the dense node
	// index per slot; neighborDown marks slots whose link is currently
	// failed. All per-slot routing state lives in the network's flat
	// per-prefix arrays (compact.go).
	neighbors    []astypes.ASN
	neighborIdx  []int32
	neighborDown []bool
	alarms       []core.Conflict
	// mraiInterval is the configured MinRouteAdvertisementInterval
	// (zero = disabled); mrai is its timer state, created lazily on the
	// first deferred advertisement.
	mraiInterval time.Duration
	mrai         *mraiState
}

// ASN returns the node's AS number.
func (nd *Node) ASN() astypes.ASN { return nd.asn }

// Mode returns the node's MOAS-checking mode.
func (nd *Node) Mode() Mode { return nd.mode }

// Attacker reports whether the node has originated an invalid route.
func (nd *Node) Attacker() bool { return nd.attacker }

// Alarms returns the MOAS conflicts this node has raised, in order.
func (nd *Node) Alarms() []core.Conflict {
	out := make([]core.Conflict, len(nd.alarms))
	copy(out, nd.alarms)
	return out
}

// AlarmCount returns the number of MOAS conflicts the node has raised,
// without copying them out.
func (nd *Node) AlarmCount() int { return len(nd.alarms) }

// Best returns the node's selected route for prefix, or nil. The Route
// is materialized fresh from the interned state, so callers own it.
func (nd *Node) Best(prefix astypes.Prefix) *rib.Route {
	n := nd.net
	st, ok := n.stateOf(prefix)
	if !ok {
		return nil
	}
	b := st.bestPlus[nd.idx] - 1
	if b < 0 {
		return nil
	}
	var comms []astypes.Community
	if set := n.comms.setOf(st.adjComm[b]); len(set) > 0 {
		comms = make([]astypes.Community, len(set))
		copy(comms, set)
	}
	return &rib.Route{
		Prefix:      prefix,
		Path:        n.paths.materialize(st.adjPath[b]),
		Origin:      wire.OriginIGP,
		LocalPref:   rib.DefaultLocalPref,
		Communities: comms,
		FromPeer:    n.slotPeer(nd, b),
	}
}

// slotOf returns the adjacency slot of peer (binary search over the
// sorted neighbor list), or -1.
func (nd *Node) slotOf(peer astypes.ASN) int {
	lo, hi := 0, len(nd.neighbors)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nd.neighbors[mid] < peer {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nd.neighbors) && nd.neighbors[lo] == peer {
		return lo
	}
	return -1
}

func (nd *Node) originate(prefix astypes.Prefix, list core.List, invalid bool) {
	if invalid {
		nd.attacker = true
	}
	n := nd.net
	st := n.registerPrefix(prefix)
	pathID := n.paths.prepend(0, nd.asn)
	commID := n.comms.intern(list.Communities(), n.lists)
	effID := effectiveID(n.comms, n.lists, commID, nd.asn)
	if n.updateSlot(nd, st, n.localSlot(nd), pathID, commID, effID) {
		nd.propagate(st)
	}
}

func (nd *Node) withdrawLocal(prefix astypes.Prefix) {
	n := nd.net
	st, ok := n.stateOf(prefix)
	if !ok {
		return
	}
	if n.clearSlot(nd, st, n.localSlot(nd)) {
		nd.propagate(st)
	}
}

//repro:allocfree
func (nd *Node) receive(msg message, span uint64) {
	n := nd.net
	if msg.withdraw {
		n.trace(EvWithdrawMsg, nd.asn, msg.from, msg.prefix, astypes.ASPath{})
		st, ok := n.stateOf(msg.prefix)
		if !ok {
			return
		}
		if n.clearSlot(nd, st, n.slotBase[nd.idx]+msg.toSlot) {
			nd.propagate(st)
		}
		return
	}
	if n.tracing() {
		n.trace(EvAnnounce, nd.asn, msg.from, msg.prefix, n.paths.materialize(msg.pathID))
	}
	st := n.registerPrefix(msg.prefix)
	g := n.slotBase[nd.idx] + msg.toSlot
	// Sender-side prepending already happened; standard loop detection.
	// A looped announcement still implicitly replaces — i.e. withdraws —
	// whatever this peer previously advertised for the prefix (RFC 4271
	// treats it as route exclusion); silently ignoring it would let two
	// nodes keep each other's stale routes alive forever after the
	// origin withdraws.
	if n.paths.contains(msg.pathID, nd.asn) {
		if n.clearSlot(nd, st, g) {
			nd.propagate(st)
		}
		return
	}
	var effID uint32
	if nd.mode == ModeDetect {
		effID = effectiveID(n.comms, n.lists, msg.commID, n.paths.origin[msg.pathID])
		if !nd.admit(msg, st, effID, span) {
			if n.tracing() {
				n.trace(EvRejected, nd.asn, msg.from, msg.prefix, n.paths.materialize(msg.pathID))
			}
			// Rejected as invalid: treat the bogus announcement as a no-op.
			// Any previously accepted route from this peer is deliberately
			// kept — the checker "eliminates false routing announcements"
			// (§5.4) rather than tearing down state, mirroring a router that
			// refuses a poisoned replacement. If the peer has in fact moved
			// its traffic to the attacker, the forwarding-walk census still
			// observes the hijack.
			return
		}
	}
	if n.updateSlot(nd, st, g, msg.pathID, msg.commID, effID) {
		nd.propagate(st)
	}
}

// admit applies the paper's MOAS check to an incoming announcement,
// returning false if the route must be suppressed. effID is the
// announcement's interned effective MOAS list (0 = unresolvable).
//
//repro:allocfree
func (nd *Node) admit(msg message, st *pfxState, effID uint32, span uint64) bool {
	n := nd.net
	if effID == 0 {
		// Neither an attached list nor an origin AS (the EffectiveList
		// error case).
		return false
	}
	origin := n.paths.origin[msg.pathID]

	// Already-resolved prefix: filter directly by the investigated
	// origin set.
	if r := st.resolved[nd.idx]; r != 0 {
		return n.lists.contains(r, origin)
	}

	// A route whose own origin is missing from its attached list is
	// bogus on its face (§4.1).
	if !n.lists.contains(effID, origin) {
		nd.raiseAndResolve(st, 0, effID, origin, msg.from, msg.pathID, core.VerdictOriginNotListed, span)
		if r := st.resolved[nd.idx]; r != 0 {
			return n.lists.contains(r, origin)
		}
		return false
	}

	// Compare against the effective lists of every route currently held
	// for the prefix (Adj-RIB-Ins and local). Interned list ids are
	// content-addressed, so id inequality is exactly the paper's
	// set-inequality predicate. A down peer's routes were flushed when
	// its link failed, so skipping down slots is only an optimization.
	base := n.slotBase[nd.idx]
	deg := len(nd.neighbors)
	for s := 0; s <= deg; s++ {
		if s < deg && nd.neighborDown[s] {
			continue
		}
		held := n.heldEff(st, base+int32(s))
		if held == 0 || held == effID {
			continue
		}
		nd.raiseAndResolve(st, held, effID, origin, msg.from, msg.pathID, core.VerdictConflict, span)
		r := st.resolved[nd.idx]
		if r == 0 {
			// Unresolvable conflict: be conservative, reject the
			// newcomer (alarm stands for the operator).
			return false
		}
		nd.purgeInvalid(st, r)
		return n.lists.contains(r, origin)
	}
	return true
}

// raiseAndResolve materializes and records one alarm, then consults the
// resolver, caching the answer in the prefix's resolved table. Alarms
// are rare, so this is the one detection path that touches real List
// and ASPath values.
func (nd *Node) raiseAndResolve(st *pfxState, existingID, receivedID uint32, origin, from astypes.ASN, pathID uint32, verdict core.Verdict, span uint64) {
	n := nd.net
	prefix := st.prefix
	var existing, received core.List
	if existingID != 0 {
		existing = n.lists.listOf(existingID)
	}
	if receivedID != 0 {
		received = n.lists.listOf(receivedID)
	}
	path := n.paths.materialize(pathID)
	n.trace(EvAlarm, nd.asn, from, prefix, path)
	class := rpki.Classify(n.rpki.Validate(prefix, origin), verdict)
	n.alarmClasses[class]++
	if rec := n.recorder; rec.Enabled() {
		rec.RecordAlarm(prefix, trace.AlarmBundle{
			Span:     span,
			VNanos:   int64(n.engine.Now()),
			Node:     uint32(nd.asn),
			FromPeer: uint32(from),
			Origin:   uint32(origin),
			Verdict:  verdict.String(),
			Class:    class.String(),
			Existing: trace.ASNs(existing.Origins()),
			Received: trace.ASNs(received.Origins()),
			Path:     trace.PathASNs(path),
		})
	}
	nd.alarms = append(nd.alarms, core.Conflict{
		Prefix:   prefix,
		Existing: existing,
		Received: received,
		Origin:   origin,
		FromPeer: from,
		Path:     path,
		Span:     span,
		Verdict:  verdict,
	})
	if n.resolver == nil {
		return
	}
	if truth, ok := n.resolver.ValidOrigins(prefix); ok {
		st.resolved[nd.idx] = n.lists.intern(truth)
	}
}

// purgeInvalid withdraws any installed route for the prefix whose
// origin is outside the resolved valid set.
func (nd *Node) purgeInvalid(st *pfxState, truthID uint32) {
	n := nd.net
	base := n.slotBase[nd.idx]
	for s := range nd.neighbors {
		if nd.neighborDown[s] {
			continue
		}
		g := base + int32(s)
		p := st.adjPath[g]
		if p != 0 && !n.lists.contains(truthID, n.paths.origin[p]) {
			if n.clearSlot(nd, st, g) {
				nd.propagate(st)
			}
		}
	}
}

// outMsg is the advertisement a propagation builds lazily and then
// shares across every receiving peer: one interned Prepend (a map
// lookup in steady state) instead of per-peer path copies.
type outMsg struct {
	built  bool
	pathID uint32
	commID uint32
}

//repro:allocfree
func (o *outMsg) build(nd *Node, st *pfxState, bestG int32) {
	if o.built {
		return
	}
	o.built = true
	n := nd.net
	o.pathID, o.commID = st.adjPath[bestG], st.adjComm[bestG]
	// A locally originated route already carries this AS as its path;
	// learned routes are prepended on export.
	if bestG != n.localSlot(nd) {
		o.pathID = n.paths.prepend(o.pathID, nd.asn)
		if nd.stripMOAS {
			o.commID = n.comms.stripOf(o.commID, n.lists)
		}
	}
}

// propagate reacts to a best-route change by advertising the new best
// (or a withdrawal) to every neighbor. Advertisements may be deferred
// by the MRAI timer; withdrawals are always immediate (RFC 4271
// §9.2.1.1 rate limits advertisements only).
//
//repro:allocfree
func (nd *Node) propagate(st *pfxState) {
	n := nd.net
	bestG := st.bestPlus[nd.idx] - 1
	if n.tracing() {
		path := astypes.ASPath{}
		if bestG >= 0 {
			path = n.paths.materialize(st.adjPath[bestG])
		}
		n.trace(EvBestChanged, nd.asn, astypes.ASNNone, st.prefix, path)
	}
	var adv outMsg
	for s := range nd.neighbors {
		if nd.neighborDown[s] {
			continue
		}
		if bestG >= 0 && nd.mayExportSlot(bestG, s) && nd.shouldDefer(nd.neighbors[s], st.prefix) {
			continue
		}
		nd.emitToSlot(s, st, bestG, &adv)
	}
}

// emitTo sends the current best route (or a withdrawal) for prefix to
// one peer by ASN — the slow-path entry used by MRAI flushes.
func (nd *Node) emitTo(peer astypes.ASN, prefix astypes.Prefix) {
	s := nd.slotOf(peer)
	if s < 0 {
		return
	}
	st, ok := nd.net.stateOf(prefix)
	if !ok {
		return
	}
	var adv outMsg
	nd.emitToSlot(s, st, st.bestPlus[nd.idx]-1, &adv)
}

// emitToSlot sends the best route in slot bestG (or a withdrawal when
// bestG is -1 or export policy forbids it) to the peer in adjacency
// slot s, maintaining the advertised bitset. adv is the shared
// advertisement cache for this propagation round.
//
//repro:allocfree
func (nd *Node) emitToSlot(s int, st *pfxState, bestG int32, adv *outMsg) {
	n := nd.net
	g := n.slotBase[nd.idx] + int32(s)
	if bestG < 0 || !nd.mayExportSlot(bestG, s) {
		if !st.advBit(g) {
			return
		}
		st.clrAdv(g)
		n.sendSlot(nd, s, message{
			from:     nd.asn,
			prefix:   st.prefix,
			withdraw: true,
		})
		return
	}
	st.setAdv(g)
	adv.build(nd, st, bestG)
	n.sendSlot(nd, s, message{
		from:   nd.asn,
		prefix: st.prefix,
		pathID: adv.pathID,
		commID: adv.commID,
	})
}

// mayExportSlot applies the valley-free export rule when relationships
// are configured: local routes and routes learned from customers go to
// everyone; routes learned from peers or providers go to customers
// only. bestG is the slot the exported route was learned on.
//
//repro:allocfree
func (nd *Node) mayExportSlot(bestG int32, s int) bool {
	n := nd.net
	if n.relations == nil {
		return true
	}
	base := n.slotBase[nd.idx]
	if bestG == base+int32(len(nd.neighbors)) {
		return true // locally originated
	}
	if n.relSlot[bestG] == topology.RelProvider {
		return true // learned from a customer
	}
	return n.relSlot[base+int32(s)] == topology.RelProvider
}

// AdoptsFalse reports whether the node's best route for prefix
// originates at an AS outside the valid set — i.e. the node has adopted
// a false route (the paper's Y-axis metric).
func (nd *Node) AdoptsFalse(prefix astypes.Prefix, valid core.List) bool {
	n := nd.net
	st, ok := n.stateOf(prefix)
	if !ok {
		return false
	}
	b := st.bestPlus[nd.idx] - 1
	if b < 0 {
		return false
	}
	return !valid.Contains(n.paths.origin[st.adjPath[b]])
}

// Census counts, over non-attacker nodes, how many adopted a false route
// for prefix and how many have no route at all.
type Census struct {
	NonAttackers int
	AdoptedFalse int
	NoRoute      int
	AlarmedNodes int
}

// FalsePct returns the paper's metric: percentage of non-attacker ASes
// adopting a false route.
func (c Census) FalsePct() float64 {
	if c.NonAttackers == 0 {
		return 0
	}
	return 100 * float64(c.AdoptedFalse) / float64(c.NonAttackers)
}

// TakeCensus computes the adoption census for prefix against the valid
// origin set: the paper's metric counts a non-attacker AS as affected
// when the best route in its RIB originates outside the valid origin
// set ("the percentage of the remaining ASes (excluding attackers)
// adopting the false routes", §5.2).
func (n *Network) TakeCensus(prefix astypes.Prefix, valid core.List) Census {
	var c Census
	st, registered := n.stateOf(prefix)
	for i := range n.nodes {
		node := &n.nodes[i]
		if node.attacker {
			continue
		}
		c.NonAttackers++
		b := int32(-1)
		if registered {
			b = st.bestPlus[i] - 1
		}
		switch {
		case b < 0:
			c.NoRoute++
		case !valid.Contains(n.paths.origin[st.adjPath[b]]):
			c.AdoptedFalse++
		}
		if len(node.alarms) > 0 {
			c.AlarmedNodes++
		}
	}
	return c
}

// TakeForwardingCensus is the stricter traffic-level census: a node
// counts as hijacked when the AS-level forwarding walk for prefix
// passes through any attacker or terminates at a false origin. It is
// reported alongside the paper's RIB-level metric in the harness's
// extended output.
func (n *Network) TakeForwardingCensus(prefix astypes.Prefix, valid core.List) Census {
	var c Census
	for i := range n.nodes {
		node := &n.nodes[i]
		if node.attacker {
			continue
		}
		c.NonAttackers++
		switch n.forwardOutcome(node, prefix, valid) {
		case outcomeNoRoute:
			c.NoRoute++
		case outcomeHijacked:
			c.AdoptedFalse++
		}
		if len(node.alarms) > 0 {
			c.AlarmedNodes++
		}
	}
	return c
}

type forwardResult int

const (
	outcomeDelivered forwardResult = iota + 1
	outcomeHijacked
	outcomeNoRoute
)

// forwardOutcome walks the AS-level forwarding path a packet for prefix
// takes from src, reporting whether it is delivered to a valid origin,
// captured by an attacker/false origin, or dropped for lack of a route.
//
//repro:allocfree
func (n *Network) forwardOutcome(src *Node, prefix astypes.Prefix, valid core.List) forwardResult {
	st, registered := n.stateOf(prefix)
	n.visitEpoch++
	epoch := n.visitEpoch
	node := src
	for {
		if n.visited[node.idx] == epoch {
			return outcomeNoRoute // forwarding loop: packet never delivered
		}
		n.visited[node.idx] = epoch
		if node.attacker {
			return outcomeHijacked
		}
		if !registered {
			return outcomeNoRoute
		}
		b := st.bestPlus[node.idx] - 1
		if b < 0 {
			return outcomeNoRoute
		}
		rel := b - n.slotBase[node.idx]
		if int(rel) == len(node.neighbors) {
			// node originates the route itself.
			if valid.Contains(node.asn) {
				return outcomeDelivered
			}
			return outcomeHijacked
		}
		node = &n.nodes[node.neighborIdx[rel]]
	}
}
