// Package simbgp is the AS-level BGP simulation model used by the
// paper's evaluation (§5): one BGP speaker per AS on an undirected
// peering topology, driven by the discrete-event engine in internal/sim.
// It plays the role of the authors' modified SSFnet simulator.
//
// Each node runs the standard path-vector machinery (loop detection,
// shortest-AS-path decision via internal/rib, best-route propagation to
// all peers). Nodes optionally run the paper's MOAS detection: they
// extract the effective MOAS list of every announcement (explicit
// communities or the implicit single-origin rule), raise an alarm on any
// inconsistency, resolve the conflict through a Resolver (the stand-in
// for the DNS MOASRR lookup of §4.4), and then refuse to install or
// propagate routes from origins outside the resolved valid set —
// "they stop the further propagation of a false route" (§5.2).
//
// Layout is optimized for the experiment harness, which runs hundreds
// of simulations per sweep: nodes live in a dense slice indexed by a
// per-topology ASN→index table (maps only at the API boundary), message
// delivery and MRAI fires are typed engine events carrying indices and
// pooled message slots (no closure per message), one propagated
// advertisement is built once and shared across all receiving peers,
// and Reset rewinds a network for reuse without reallocating nodes,
// RIB shards, or adjacency state.
package simbgp

import (
	"fmt"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/rib"
	"repro/internal/rpki"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Mode selects a node's MOAS-checking behaviour.
type Mode int

// Node modes.
const (
	// ModeNormal is unmodified BGP: MOAS lists transit opaquely and are
	// never checked ("Normal BGP" curves).
	ModeNormal Mode = iota + 1
	// ModeDetect checks MOAS-list consistency and suppresses resolved
	// false routes ("Full/Half MOAS Detection" curves).
	ModeDetect
)

func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeDetect:
		return "detect"
	default:
		return "unknown"
	}
}

// Resolver answers "which origins are entitled to announce this prefix"
// once a node has detected a conflict — the paper's DNS MOASRR lookup.
// internal/dnsval provides a production-shaped implementation; the
// experiment harness injects ground truth directly.
type Resolver interface {
	ValidOrigins(prefix astypes.Prefix) (core.List, bool)
}

// ResolverFunc adapts a function to the Resolver interface.
type ResolverFunc func(astypes.Prefix) (core.List, bool)

// ValidOrigins implements Resolver.
func (f ResolverFunc) ValidOrigins(p astypes.Prefix) (core.List, bool) { return f(p) }

// Config assembles a simulated network.
type Config struct {
	// Topology supplies the peering graph (required).
	Topology *topology.Graph
	// Resolver resolves detected conflicts (required if any node runs
	// ModeDetect).
	Resolver Resolver
	// LinkDelay returns the propagation delay of the (a, b) link. Nil
	// selects a deterministic per-link default.
	LinkDelay func(a, b astypes.ASN) time.Duration
	// EventLimit optionally overrides the engine's event budget.
	EventLimit uint64
	// MRAI enables the MinRouteAdvertisementInterval timer per peer
	// (zero disables it, the default and the paper's model).
	MRAI time.Duration
	// Relations, when set, enables Gao-Rexford valley-free export
	// policy: routes learned from a peer or provider are exported only
	// to customers. Nil floods every best route to every neighbor (the
	// paper's model).
	Relations *topology.Relations
	// RPKI, when set, cross-checks every raised alarm against a
	// validated ROA store: each alarm bundle carries the rpki.Classify
	// class and the network tallies per-class counts (AlarmClasses). A
	// nil store leaves ROV silent (everything validates NotFound).
	RPKI *rpki.Store
}

// Typed event kinds dispatched by Network.Dispatch.
const (
	// evDeliver delivers in-flight message B (a slot in Network.inflight)
	// to node index A.
	evDeliver uint32 = iota + 1
	// evMRAIFlush fires node A's MRAI timer for peer ASN B.
	evMRAIFlush
)

// Network is a simulated AS-level BGP internetwork.
type Network struct {
	engine *sim.Engine
	topo   *topology.Graph
	// nodes is the dense node array; byASN maps an ASN to its index and
	// asns caches the sorted ASN list. nodes is allocated once and never
	// regrown, so *Node pointers stay valid across Reset.
	nodes     []Node
	byASN     map[astypes.ASN]int32
	asns      []astypes.ASN
	resolver  Resolver
	linkDelay func(a, b astypes.ASN) time.Duration
	rpki      *rpki.Store
	// alarmClasses tallies raised alarms by ROV-crossed class across
	// the whole network, indexed by rpki.Class.
	alarmClasses [rpki.NumClasses]uint64
	msgCount     uint64
	failedLinks  map[[2]astypes.ASN]bool
	relations    *topology.Relations
	tracer       *Tracer
	recorder     *trace.Recorder
	// inflight holds the payload of every scheduled-but-undelivered
	// message; freeMsgs recycles vacated slots so steady-state delivery
	// allocates nothing once the high-water mark is reached.
	inflight []message
	freeMsgs []uint32
	// visited/visitEpoch are the forwarding-walk scratch: a slot is
	// "visited" when it equals the current epoch, so clearing between
	// walks is one integer increment.
	visited    []uint32
	visitEpoch uint32
}

// DefaultLinkDelay derives a deterministic delay in [10ms, 35ms) from
// the link endpoints, so that message interleavings differ across links
// but never across runs.
func DefaultLinkDelay(a, b astypes.ASN) time.Duration {
	h := uint32(a)*2654435761 ^ uint32(b)*40503
	return 10*time.Millisecond + time.Duration(h%25)*time.Millisecond
}

// NewNetwork builds one node per topology vertex, all in ModeNormal.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Topology == nil || cfg.Topology.NumNodes() == 0 {
		return nil, fmt.Errorf("simbgp: empty topology")
	}
	n := &Network{
		engine:      sim.NewEngine(),
		topo:        cfg.Topology,
		failedLinks: make(map[[2]astypes.ASN]bool),
	}
	n.engine.SetDispatcher(n)
	asns := cfg.Topology.Nodes()
	n.asns = asns
	n.byASN = make(map[astypes.ASN]int32, len(asns))
	for i, a := range asns {
		n.byASN[a] = int32(i)
	}
	n.nodes = make([]Node, len(asns))
	n.visited = make([]uint32, len(asns))
	for i, a := range asns {
		nd := &n.nodes[i]
		nd.asn = a
		nd.idx = int32(i)
		nd.net = n
		nd.neighbors = cfg.Topology.Neighbors(a)
		nd.neighborIdx = make([]int32, len(nd.neighbors))
		for s, p := range nd.neighbors {
			nd.neighborIdx[s] = n.byASN[p]
		}
		nd.neighborDown = make([]bool, len(nd.neighbors))
		nd.advertised = make([]map[astypes.Prefix]bool, len(nd.neighbors))
		nd.table = rib.NewTable()
		nd.resolved = make(map[astypes.Prefix]core.List)
	}
	n.applyConfig(cfg)
	return n, nil
}

// applyConfig installs the per-run configuration shared by NewNetwork
// and Reset.
func (n *Network) applyConfig(cfg Config) {
	delay := cfg.LinkDelay
	if delay == nil {
		delay = DefaultLinkDelay
	}
	n.linkDelay = delay
	n.resolver = cfg.Resolver
	n.relations = cfg.Relations
	n.rpki = cfg.RPKI
	n.engine.SetEventLimit(cfg.EventLimit)
	for i := range n.nodes {
		nd := &n.nodes[i]
		nd.mode = ModeNormal
		nd.mrai = newMRAIState(cfg.MRAI)
	}
}

// Reset rewinds the network for a fresh run under cfg, reusing every
// node, RIB shard, and adjacency structure in place. cfg.Topology must
// be the exact *topology.Graph the network was built with (the dense
// index layout is derived from it); any resolver, delay function,
// relations, MRAI, or event limit may change between runs. Existing
// *Node pointers remain valid.
func (n *Network) Reset(cfg Config) error {
	if cfg.Topology != n.topo {
		return fmt.Errorf("simbgp: Reset requires the network's own topology")
	}
	n.engine.Reset()
	n.msgCount = 0
	n.tracer = nil
	n.recorder = nil
	clear(n.alarmClasses[:])
	n.visitEpoch = 0
	clear(n.visited)
	clear(n.failedLinks)
	clear(n.inflight) // release shared path/community references
	n.inflight = n.inflight[:0]
	n.freeMsgs = n.freeMsgs[:0]
	for i := range n.nodes {
		nd := &n.nodes[i]
		nd.attacker = false
		nd.stripMOAS = false
		nd.table.Clear()
		clear(nd.resolved)
		nd.alarms = nil
		for s := range nd.advertised {
			if sent := nd.advertised[s]; sent != nil {
				clear(sent)
			}
			nd.neighborDown[s] = false
		}
	}
	n.applyConfig(cfg)
	return nil
}

// Node returns the node for asn, or nil.
func (n *Network) Node(asn astypes.ASN) *Node {
	if i, ok := n.byASN[asn]; ok {
		return &n.nodes[i]
	}
	return nil
}

// Nodes returns all node ASNs in ascending order.
func (n *Network) Nodes() []astypes.ASN {
	out := make([]astypes.ASN, len(n.asns))
	copy(out, n.asns)
	return out
}

// SetMode configures a node's MOAS-checking mode.
func (n *Network) SetMode(asn astypes.ASN, m Mode) error {
	node := n.Node(asn)
	if node == nil {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	node.mode = m
	return nil
}

// SetStripMOAS makes a node remove MOAS-list communities from every
// route it propagates — the §4.3 scenario of routers dropping optional
// transitive communities (and the tampering attacker of the ablation
// benches).
func (n *Network) SetStripMOAS(asn astypes.ASN, strip bool) error {
	node := n.Node(asn)
	if node == nil {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	node.stripMOAS = strip
	return nil
}

// MessageCount returns the number of UPDATE messages delivered so far.
func (n *Network) MessageCount() uint64 { return n.msgCount }

// AlarmClasses returns the network-wide tally of raised alarms by
// ROV-crossed class, indexed by rpki.Class. Without a configured RPKI
// store every alarm lands in the MOAS-provenance classes.
func (n *Network) AlarmClasses() [rpki.NumClasses]uint64 { return n.alarmClasses }

// Engine exposes the underlying event engine (for custom scheduling in
// tests and harnesses).
func (n *Network) Engine() *sim.Engine { return n.engine }

// Run drives the simulation to quiescence.
func (n *Network) Run() error { return n.engine.Run() }

// message is one simulated BGP UPDATE (or withdrawal) on a link. The
// path and communities may be shared by every in-flight copy of one
// advertisement and by the sender's RIB: they are read-only in transit,
// and rib.Table.Update clones on install.
type message struct {
	from        astypes.ASN
	prefix      astypes.Prefix
	withdraw    bool
	path        astypes.ASPath
	communities []astypes.Community
}

// Dispatch executes typed engine events (sim.Dispatcher).
func (n *Network) Dispatch(ev sim.Typed) {
	switch ev.Kind {
	case evDeliver:
		n.deliver(ev.A, ev.B)
	case evMRAIFlush:
		n.nodes[ev.A].flushMRAI(astypes.ASN(ev.B))
	}
}

// deliver hands inflight slot `slot` to node index toIdx, releasing the
// slot. Link failure is re-checked at delivery time, so messages in
// flight when the link fails are lost with it.
//
//repro:allocfree
func (n *Network) deliver(toIdx, slot uint32) {
	msg := n.inflight[slot]
	n.inflight[slot] = message{}
	n.freeMsgs = append(n.freeMsgs, slot)
	dst := &n.nodes[toIdx]
	if len(n.failedLinks) != 0 && n.failedLinks[linkKey(msg.from, dst.asn)] {
		return
	}
	n.msgCount++
	// The delivery ordinal doubles as the trace span: alarm forensics
	// can point at "the Nth message delivered in this run", which is
	// stable under the deterministic engine.
	dst.receive(msg, n.msgCount)
}

// allocSlot parks msg in the inflight pool and returns its slot.
//
//repro:allocfree
func (n *Network) allocSlot(msg message) uint32 {
	if k := len(n.freeMsgs); k > 0 {
		slot := n.freeMsgs[k-1]
		n.freeMsgs = n.freeMsgs[:k-1]
		n.inflight[slot] = msg
		return slot
	}
	n.inflight = append(n.inflight, msg)
	return uint32(len(n.inflight) - 1)
}

// sendSlot schedules msg from nd to its neighbor in adjacency slot s.
//
//repro:allocfree
func (n *Network) sendSlot(nd *Node, s int, msg message) {
	if nd.neighborDown[s] {
		return
	}
	to := nd.neighbors[s]
	if len(n.failedLinks) != 0 && n.failedLinks[linkKey(nd.asn, to)] {
		return
	}
	slot := n.allocSlot(msg)
	n.engine.ScheduleTyped(n.linkDelay(nd.asn, to),
		sim.Typed{Kind: evDeliver, A: uint32(nd.neighborIdx[s]), B: slot})
}

// Originate makes asn announce prefix with the given MOAS list attached.
// An empty list attaches no communities (the implicit rule applies at
// receivers). The announcement is scheduled at the current virtual time.
func (n *Network) Originate(asn astypes.ASN, prefix astypes.Prefix, list core.List) error {
	node := n.Node(asn)
	if node == nil {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	n.engine.Schedule(0, func() { node.originate(prefix, list, false) })
	return nil
}

// OriginateInvalid makes asn falsely announce prefix (the attack). The
// forged list, if non-empty, is attached verbatim — e.g. a superset list
// including the attacker (§4.1) or a copy of the valid list.
func (n *Network) OriginateInvalid(asn astypes.ASN, prefix astypes.Prefix, forged core.List) error {
	node := n.Node(asn)
	if node == nil {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	n.engine.Schedule(0, func() { node.originate(prefix, forged, true) })
	return nil
}

// OriginateForgedPath makes asn announce prefix with a fabricated AS
// path — the §4.3 limitation case: "an AS could make a false route
// announcement with a correct origin AS but a manipulated AS path."
// The forged path's origin can be the legitimate origin, so the
// announcement carries a consistent implicit MOAS list and evades
// list checking entirely; only path authentication (the paper cites
// predecessor signing) would catch it.
func (n *Network) OriginateForgedPath(asn astypes.ASN, prefix astypes.Prefix, forged astypes.ASPath, list core.List) error {
	node := n.Node(asn)
	if node == nil {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	n.engine.Schedule(0, func() {
		node.attacker = true
		route := &rib.Route{
			Prefix:      prefix,
			Path:        forged.Clone(),
			Origin:      wire.OriginIGP,
			LocalPref:   rib.DefaultLocalPref,
			Communities: list.Communities(),
			FromPeer:    astypes.ASNNone,
		}
		ch := node.table.Originate(route)
		node.propagate(ch)
	})
	return nil
}

// Withdraw makes asn withdraw its locally originated route for prefix.
func (n *Network) Withdraw(asn astypes.ASN, prefix astypes.Prefix) error {
	node := n.Node(asn)
	if node == nil {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	n.engine.Schedule(0, func() { node.withdrawLocal(prefix) })
	return nil
}

// Node is one simulated AS.
type Node struct {
	asn       astypes.ASN
	idx       int32
	mode      Mode
	attacker  bool
	stripMOAS bool
	net       *Network
	// neighbors is the node's adjacency in ascending ASN order,
	// immutable after construction. neighborIdx holds the dense node
	// index per slot; neighborDown marks slots whose link is currently
	// failed; advertised tracks what was last sent per slot per prefix
	// so withdrawals are only sent for previously advertised prefixes.
	neighbors    []astypes.ASN
	neighborIdx  []int32
	neighborDown []bool
	advertised   []map[astypes.Prefix]bool
	table        *rib.Table
	// resolved caches the outcome of conflict resolution per prefix (the
	// "DNS answer"), emulating a router that has investigated an alarm.
	resolved map[astypes.Prefix]core.List
	alarms   []core.Conflict
	// mrai is non-nil when the MinRouteAdvertisementInterval is enabled.
	mrai *mraiState
}

// ASN returns the node's AS number.
func (nd *Node) ASN() astypes.ASN { return nd.asn }

// Mode returns the node's MOAS-checking mode.
func (nd *Node) Mode() Mode { return nd.mode }

// Attacker reports whether the node has originated an invalid route.
func (nd *Node) Attacker() bool { return nd.attacker }

// Alarms returns the MOAS conflicts this node has raised, in order.
func (nd *Node) Alarms() []core.Conflict {
	out := make([]core.Conflict, len(nd.alarms))
	copy(out, nd.alarms)
	return out
}

// AlarmCount returns the number of MOAS conflicts the node has raised,
// without copying them out.
func (nd *Node) AlarmCount() int { return len(nd.alarms) }

// Best returns the node's selected route for prefix, or nil.
func (nd *Node) Best(prefix astypes.Prefix) *rib.Route { return nd.table.Best(prefix) }

// Table exposes the node's RIB (read-mostly; the simulation is
// single-threaded per engine).
func (nd *Node) Table() *rib.Table { return nd.table }

// slotOf returns the adjacency slot of peer (binary search over the
// sorted neighbor list), or -1.
func (nd *Node) slotOf(peer astypes.ASN) int {
	lo, hi := 0, len(nd.neighbors)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nd.neighbors[mid] < peer {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nd.neighbors) && nd.neighbors[lo] == peer {
		return lo
	}
	return -1
}

func (nd *Node) originate(prefix astypes.Prefix, list core.List, invalid bool) {
	if invalid {
		nd.attacker = true
	}
	route := &rib.Route{
		Prefix:      prefix,
		Path:        astypes.NewSeqPath(nd.asn),
		Origin:      wire.OriginIGP,
		LocalPref:   rib.DefaultLocalPref,
		Communities: list.Communities(),
		FromPeer:    astypes.ASNNone,
	}
	ch := nd.table.Originate(route)
	nd.propagate(ch)
}

func (nd *Node) withdrawLocal(prefix astypes.Prefix) {
	ch := nd.table.WithdrawLocal(prefix)
	nd.propagate(ch)
}

func (nd *Node) receive(msg message, span uint64) {
	if msg.withdraw {
		nd.net.trace(EvWithdrawMsg, nd.asn, msg.from, msg.prefix, astypes.ASPath{})
		ch := nd.table.Withdraw(msg.from, msg.prefix)
		nd.propagate(ch)
		return
	}
	nd.net.trace(EvAnnounce, nd.asn, msg.from, msg.prefix, msg.path)
	// Sender-side prepending already happened; standard loop detection.
	// A looped announcement still implicitly replaces — i.e. withdraws —
	// whatever this peer previously advertised for the prefix (RFC 4271
	// treats it as route exclusion); silently ignoring it would let two
	// nodes keep each other's stale routes alive forever after the
	// origin withdraws.
	if msg.path.Contains(nd.asn) {
		ch := nd.table.Withdraw(msg.from, msg.prefix)
		nd.propagate(ch)
		return
	}
	if nd.mode == ModeDetect && !nd.admit(msg, span) {
		nd.net.trace(EvRejected, nd.asn, msg.from, msg.prefix, msg.path)
		// Rejected as invalid: treat the bogus announcement as a no-op.
		// Any previously accepted route from this peer is deliberately
		// kept — the checker "eliminates false routing announcements"
		// (§5.4) rather than tearing down state, mirroring a router that
		// refuses a poisoned replacement. If the peer has in fact moved
		// its traffic to the attacker, the forwarding-walk census still
		// observes the hijack.
		return
	}
	route := &rib.Route{
		Prefix:      msg.prefix,
		Path:        msg.path,
		Origin:      wire.OriginIGP,
		LocalPref:   rib.DefaultLocalPref,
		Communities: msg.communities,
		FromPeer:    msg.from,
	}
	ch := nd.table.Update(route)
	nd.propagate(ch)
}

// admit applies the paper's MOAS check to an incoming announcement,
// returning false if the route must be suppressed.
func (nd *Node) admit(msg message, span uint64) bool {
	eff, err := core.EffectiveList(msg.communities, msg.path)
	if err != nil {
		return false
	}
	origin, _ := msg.path.Origin()

	// Already-resolved prefix: filter directly by the investigated
	// origin set.
	if truth, ok := nd.resolved[msg.prefix]; ok {
		return truth.Contains(origin)
	}

	// A route whose own origin is missing from its attached list is
	// bogus on its face (§4.1).
	if !eff.Contains(origin) {
		nd.raiseAndResolve(msg.prefix, core.List{}, eff, origin, msg.from, msg.path, core.VerdictOriginNotListed, span)
		if truth, ok := nd.resolved[msg.prefix]; ok {
			return truth.Contains(origin)
		}
		return false
	}

	// Compare against the effective lists of every route currently held
	// for the prefix (Adj-RIB-Ins and local).
	for _, held := range nd.heldLists(msg.prefix) {
		if !held.Equal(eff) {
			nd.raiseAndResolve(msg.prefix, held, eff, origin, msg.from, msg.path, core.VerdictConflict, span)
			truth, ok := nd.resolved[msg.prefix]
			if !ok {
				// Unresolvable conflict: be conservative, reject the
				// newcomer (alarm stands for the operator).
				return false
			}
			nd.purgeInvalid(msg.prefix, truth)
			return truth.Contains(origin)
		}
	}
	return true
}

// heldLists collects the distinct effective MOAS lists of all routes the
// node currently holds for prefix. Each source is a single-shard
// RouteFrom lookup (a down peer's routes were flushed when its link
// failed, so skipping down slots is only an optimization).
func (nd *Node) heldLists(prefix astypes.Prefix) []core.List {
	var lists []core.List
	add := func(r *rib.Route) {
		eff, err := core.EffectiveList(r.Communities, r.Path)
		if err != nil {
			return
		}
		for _, l := range lists {
			if l.Equal(eff) {
				return
			}
		}
		lists = append(lists, eff)
	}
	for s, peer := range nd.neighbors {
		if nd.neighborDown[s] {
			continue
		}
		if r := nd.table.RouteFrom(peer, prefix); r != nil {
			add(r)
		}
	}
	if r := nd.table.RouteFrom(astypes.ASNNone, prefix); r != nil {
		add(r)
	}
	return lists
}

func (nd *Node) raiseAndResolve(prefix astypes.Prefix, existing, received core.List, origin, from astypes.ASN, path astypes.ASPath, verdict core.Verdict, span uint64) {
	nd.net.trace(EvAlarm, nd.asn, from, prefix, path)
	class := rpki.Classify(nd.net.rpki.Validate(prefix, origin), verdict)
	nd.net.alarmClasses[class]++
	if rec := nd.net.recorder; rec.Enabled() {
		// In-transit simulation paths are immutable, so the bundle can
		// reference path without cloning.
		rec.RecordAlarm(prefix, trace.AlarmBundle{
			Span:     span,
			VNanos:   int64(nd.net.engine.Now()),
			Node:     uint16(nd.asn),
			FromPeer: uint16(from),
			Origin:   uint16(origin),
			Verdict:  verdict.String(),
			Class:    class.String(),
			Existing: trace.ASNs(existing.Origins()),
			Received: trace.ASNs(received.Origins()),
			Path:     trace.PathASNs(path),
		})
	}
	nd.alarms = append(nd.alarms, core.Conflict{
		Prefix:   prefix,
		Existing: existing,
		Received: received,
		Origin:   origin,
		FromPeer: from,
		Path:     path,
		Span:     span,
		Verdict:  verdict,
	})
	if nd.net.resolver == nil {
		return
	}
	if truth, ok := nd.net.resolver.ValidOrigins(prefix); ok {
		nd.resolved[prefix] = truth
	}
}

// purgeInvalid withdraws any installed route for prefix whose origin is
// outside the resolved valid set.
func (nd *Node) purgeInvalid(prefix astypes.Prefix, truth core.List) {
	for s, peer := range nd.neighbors {
		if nd.neighborDown[s] {
			continue
		}
		r := nd.table.RouteFrom(peer, prefix)
		if r != nil && !truth.Contains(r.OriginAS()) {
			ch := nd.table.Withdraw(peer, prefix)
			nd.propagate(ch)
		}
	}
}

// outMsg is the advertisement a propagation builds lazily and then
// shares across every receiving peer: one Prepend'ed path and one
// community slice instead of per-peer copies. Sharing is safe because
// in-transit messages are read-only and receivers clone on install.
type outMsg struct {
	built bool
	path  astypes.ASPath
	comms []astypes.Community
}

func (o *outMsg) build(nd *Node, route *rib.Route) {
	if o.built {
		return
	}
	o.built = true
	// A locally originated route already carries this AS as its path;
	// learned routes are prepended on export.
	o.path = route.Path
	o.comms = route.Communities
	if route.FromPeer != astypes.ASNNone {
		o.path = o.path.Prepend(nd.asn)
		if nd.stripMOAS {
			o.comms = core.StripMOAS(o.comms)
		}
	}
}

// propagate reacts to a best-route change by advertising the new best
// (or a withdrawal) to every neighbor. Advertisements may be deferred
// by the MRAI timer; withdrawals are always immediate (RFC 4271
// §9.2.1.1 rate limits advertisements only).
func (nd *Node) propagate(ch rib.Change) {
	if !ch.Changed {
		return
	}
	if nd.net.tracing() {
		path := astypes.ASPath{}
		if ch.New != nil {
			path = ch.New.Path
		}
		nd.net.trace(EvBestChanged, nd.asn, astypes.ASNNone, ch.Prefix, path)
	}
	var adv outMsg
	for s, peer := range nd.neighbors {
		if nd.neighborDown[s] {
			continue
		}
		if ch.New != nil && nd.mayExport(ch.New, peer) && nd.shouldDefer(peer, ch.Prefix) {
			continue
		}
		nd.emitToSlot(s, ch.Prefix, ch.New, &adv)
	}
}

// emitTo sends the route (or a withdrawal when route is nil or export
// policy forbids it) for prefix to one peer by ASN — the slow-path
// entry used by MRAI flushes and link restores.
func (nd *Node) emitTo(peer astypes.ASN, prefix astypes.Prefix, route *rib.Route) {
	s := nd.slotOf(peer)
	if s < 0 {
		return
	}
	var adv outMsg
	nd.emitToSlot(s, prefix, route, &adv)
}

// emitToSlot sends the route (or a withdrawal) for prefix to the peer
// in adjacency slot s, maintaining the advertised bookkeeping. adv is
// the shared advertisement cache for this propagation round.
//
//repro:allocfree
func (nd *Node) emitToSlot(s int, prefix astypes.Prefix, route *rib.Route, adv *outMsg) {
	peer := nd.neighbors[s]
	sent := nd.advertised[s]
	if sent == nil {
		//repro:vet ignore allocfree -- lazy one-time init of the per-slot advertised set, reused for the run's lifetime
		sent = make(map[astypes.Prefix]bool)
		nd.advertised[s] = sent
	}
	if route == nil || !nd.mayExport(route, peer) {
		if !sent[prefix] {
			return
		}
		sent[prefix] = false
		nd.net.sendSlot(nd, s, message{
			from:     nd.asn,
			prefix:   prefix,
			withdraw: true,
		})
		return
	}
	sent[prefix] = true
	adv.build(nd, route)
	nd.net.sendSlot(nd, s, message{
		from:        nd.asn,
		prefix:      prefix,
		path:        adv.path,
		communities: adv.comms,
	})
}

// mayExport applies the valley-free export rule when relationships are
// configured: local routes and routes learned from customers go to
// everyone; routes learned from peers or providers go to customers
// only.
func (nd *Node) mayExport(r *rib.Route, to astypes.ASN) bool {
	rel := nd.net.relations
	if rel == nil {
		return true
	}
	if r.FromPeer == astypes.ASNNone {
		return true
	}
	switch rel.Of(nd.asn, r.FromPeer) {
	case topology.RelProvider: // learned from a customer
		return true
	default: // learned from a peer or provider
		return rel.Of(nd.asn, to) == topology.RelProvider
	}
}

// AdoptsFalse reports whether the node's best route for prefix
// originates at an AS outside the valid set — i.e. the node has adopted
// a false route (the paper's Y-axis metric).
func (nd *Node) AdoptsFalse(prefix astypes.Prefix, valid core.List) bool {
	best := nd.table.Best(prefix)
	if best == nil {
		return false
	}
	return !valid.Contains(best.OriginAS())
}

// Census counts, over non-attacker nodes, how many adopted a false route
// for prefix and how many have no route at all.
type Census struct {
	NonAttackers int
	AdoptedFalse int
	NoRoute      int
	AlarmedNodes int
}

// FalsePct returns the paper's metric: percentage of non-attacker ASes
// adopting a false route.
func (c Census) FalsePct() float64 {
	if c.NonAttackers == 0 {
		return 0
	}
	return 100 * float64(c.AdoptedFalse) / float64(c.NonAttackers)
}

// TakeCensus computes the adoption census for prefix against the valid
// origin set: the paper's metric counts a non-attacker AS as affected
// when the best route in its RIB originates outside the valid origin
// set ("the percentage of the remaining ASes (excluding attackers)
// adopting the false routes", §5.2).
func (n *Network) TakeCensus(prefix astypes.Prefix, valid core.List) Census {
	var c Census
	for i := range n.nodes {
		node := &n.nodes[i]
		if node.attacker {
			continue
		}
		c.NonAttackers++
		best := node.table.Best(prefix)
		switch {
		case best == nil:
			c.NoRoute++
		case !valid.Contains(best.OriginAS()):
			c.AdoptedFalse++
		}
		if len(node.alarms) > 0 {
			c.AlarmedNodes++
		}
	}
	return c
}

// TakeForwardingCensus is the stricter traffic-level census: a node
// counts as hijacked when the AS-level forwarding walk for prefix
// passes through any attacker or terminates at a false origin. It is
// reported alongside the paper's RIB-level metric in the harness's
// extended output.
func (n *Network) TakeForwardingCensus(prefix astypes.Prefix, valid core.List) Census {
	var c Census
	for i := range n.nodes {
		node := &n.nodes[i]
		if node.attacker {
			continue
		}
		c.NonAttackers++
		switch n.forwardOutcome(node, prefix, valid) {
		case outcomeNoRoute:
			c.NoRoute++
		case outcomeHijacked:
			c.AdoptedFalse++
		}
		if len(node.alarms) > 0 {
			c.AlarmedNodes++
		}
	}
	return c
}

type forwardResult int

const (
	outcomeDelivered forwardResult = iota + 1
	outcomeHijacked
	outcomeNoRoute
)

// forwardOutcome walks the AS-level forwarding path a packet for prefix
// takes from src, reporting whether it is delivered to a valid origin,
// captured by an attacker/false origin, or dropped for lack of a route.
func (n *Network) forwardOutcome(src *Node, prefix astypes.Prefix, valid core.List) forwardResult {
	n.visitEpoch++
	epoch := n.visitEpoch
	node := src
	for {
		if n.visited[node.idx] == epoch {
			return outcomeNoRoute // forwarding loop: packet never delivered
		}
		n.visited[node.idx] = epoch
		if node.attacker {
			return outcomeHijacked
		}
		best := node.table.Best(prefix)
		if best == nil {
			return outcomeNoRoute
		}
		if best.FromPeer == astypes.ASNNone {
			// node originates the route itself.
			if valid.Contains(node.asn) {
				return outcomeDelivered
			}
			return outcomeHijacked
		}
		node = n.Node(best.FromPeer)
	}
}
