// Package simbgp is the AS-level BGP simulation model used by the
// paper's evaluation (§5): one BGP speaker per AS on an undirected
// peering topology, driven by the discrete-event engine in internal/sim.
// It plays the role of the authors' modified SSFnet simulator.
//
// Each node runs the standard path-vector machinery (loop detection,
// shortest-AS-path decision via internal/rib, best-route propagation to
// all peers). Nodes optionally run the paper's MOAS detection: they
// extract the effective MOAS list of every announcement (explicit
// communities or the implicit single-origin rule), raise an alarm on any
// inconsistency, resolve the conflict through a Resolver (the stand-in
// for the DNS MOASRR lookup of §4.4), and then refuse to install or
// propagate routes from origins outside the resolved valid set —
// "they stop the further propagation of a false route" (§5.2).
package simbgp

import (
	"fmt"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/rib"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Mode selects a node's MOAS-checking behaviour.
type Mode int

// Node modes.
const (
	// ModeNormal is unmodified BGP: MOAS lists transit opaquely and are
	// never checked ("Normal BGP" curves).
	ModeNormal Mode = iota + 1
	// ModeDetect checks MOAS-list consistency and suppresses resolved
	// false routes ("Full/Half MOAS Detection" curves).
	ModeDetect
)

func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeDetect:
		return "detect"
	default:
		return "unknown"
	}
}

// Resolver answers "which origins are entitled to announce this prefix"
// once a node has detected a conflict — the paper's DNS MOASRR lookup.
// internal/dnsval provides a production-shaped implementation; the
// experiment harness injects ground truth directly.
type Resolver interface {
	ValidOrigins(prefix astypes.Prefix) (core.List, bool)
}

// ResolverFunc adapts a function to the Resolver interface.
type ResolverFunc func(astypes.Prefix) (core.List, bool)

// ValidOrigins implements Resolver.
func (f ResolverFunc) ValidOrigins(p astypes.Prefix) (core.List, bool) { return f(p) }

// Config assembles a simulated network.
type Config struct {
	// Topology supplies the peering graph (required).
	Topology *topology.Graph
	// Resolver resolves detected conflicts (required if any node runs
	// ModeDetect).
	Resolver Resolver
	// LinkDelay returns the propagation delay of the (a, b) link. Nil
	// selects a deterministic per-link default.
	LinkDelay func(a, b astypes.ASN) time.Duration
	// EventLimit optionally overrides the engine's event budget.
	EventLimit uint64
	// MRAI enables the MinRouteAdvertisementInterval timer per peer
	// (zero disables it, the default and the paper's model).
	MRAI time.Duration
	// Relations, when set, enables Gao-Rexford valley-free export
	// policy: routes learned from a peer or provider are exported only
	// to customers. Nil floods every best route to every neighbor (the
	// paper's model).
	Relations *topology.Relations
}

// Network is a simulated AS-level BGP internetwork.
type Network struct {
	engine      *sim.Engine
	nodes       map[astypes.ASN]*Node
	resolver    Resolver
	linkDelay   func(a, b astypes.ASN) time.Duration
	msgCount    uint64
	failedLinks map[[2]astypes.ASN]bool
	relations   *topology.Relations
	tracer      *Tracer
}

// DefaultLinkDelay derives a deterministic delay in [10ms, 35ms) from
// the link endpoints, so that message interleavings differ across links
// but never across runs.
func DefaultLinkDelay(a, b astypes.ASN) time.Duration {
	h := uint32(a)*2654435761 ^ uint32(b)*40503
	return 10*time.Millisecond + time.Duration(h%25)*time.Millisecond
}

// NewNetwork builds one node per topology vertex, all in ModeNormal.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Topology == nil || cfg.Topology.NumNodes() == 0 {
		return nil, fmt.Errorf("simbgp: empty topology")
	}
	delay := cfg.LinkDelay
	if delay == nil {
		delay = DefaultLinkDelay
	}
	var engineOpts []sim.EngineOption
	if cfg.EventLimit > 0 {
		engineOpts = append(engineOpts, sim.WithEventLimit(cfg.EventLimit))
	}
	n := &Network{
		engine:      sim.NewEngine(engineOpts...),
		nodes:       make(map[astypes.ASN]*Node, cfg.Topology.NumNodes()),
		resolver:    cfg.Resolver,
		linkDelay:   delay,
		failedLinks: make(map[[2]astypes.ASN]bool),
		relations:   cfg.Relations,
	}
	for _, asn := range cfg.Topology.Nodes() {
		n.nodes[asn] = &Node{
			asn:       asn,
			mode:      ModeNormal,
			net:       n,
			neighbors: cfg.Topology.Neighbors(asn),
			table:     rib.NewTable(),
			resolved:  make(map[astypes.Prefix]core.List),
			alarms:    nil,
			mrai:      newMRAIState(cfg.MRAI),
		}
	}
	return n, nil
}

// Node returns the node for asn, or nil.
func (n *Network) Node(asn astypes.ASN) *Node { return n.nodes[asn] }

// Nodes returns all node ASNs in ascending order.
func (n *Network) Nodes() []astypes.ASN {
	out := make([]astypes.ASN, 0, len(n.nodes))
	for a := range n.nodes {
		out = append(out, a)
	}
	return astypes.SortASNs(out)
}

// SetMode configures a node's MOAS-checking mode.
func (n *Network) SetMode(asn astypes.ASN, m Mode) error {
	node, ok := n.nodes[asn]
	if !ok {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	node.mode = m
	return nil
}

// SetStripMOAS makes a node remove MOAS-list communities from every
// route it propagates — the §4.3 scenario of routers dropping optional
// transitive communities (and the tampering attacker of the ablation
// benches).
func (n *Network) SetStripMOAS(asn astypes.ASN, strip bool) error {
	node, ok := n.nodes[asn]
	if !ok {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	node.stripMOAS = strip
	return nil
}

// MessageCount returns the number of UPDATE messages delivered so far.
func (n *Network) MessageCount() uint64 { return n.msgCount }

// Engine exposes the underlying event engine (for custom scheduling in
// tests and harnesses).
func (n *Network) Engine() *sim.Engine { return n.engine }

// Run drives the simulation to quiescence.
func (n *Network) Run() error { return n.engine.Run() }

// message is one simulated BGP UPDATE (or withdrawal) on a link.
type message struct {
	from        astypes.ASN
	prefix      astypes.Prefix
	withdraw    bool
	path        astypes.ASPath
	communities []astypes.Community
}

// Originate makes asn announce prefix with the given MOAS list attached.
// An empty list attaches no communities (the implicit rule applies at
// receivers). The announcement is scheduled at the current virtual time.
func (n *Network) Originate(asn astypes.ASN, prefix astypes.Prefix, list core.List) error {
	node, ok := n.nodes[asn]
	if !ok {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	n.engine.Schedule(0, func() { node.originate(prefix, list, false) })
	return nil
}

// OriginateInvalid makes asn falsely announce prefix (the attack). The
// forged list, if non-empty, is attached verbatim — e.g. a superset list
// including the attacker (§4.1) or a copy of the valid list.
func (n *Network) OriginateInvalid(asn astypes.ASN, prefix astypes.Prefix, forged core.List) error {
	node, ok := n.nodes[asn]
	if !ok {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	n.engine.Schedule(0, func() { node.originate(prefix, forged, true) })
	return nil
}

// OriginateForgedPath makes asn announce prefix with a fabricated AS
// path — the §4.3 limitation case: "an AS could make a false route
// announcement with a correct origin AS but a manipulated AS path."
// The forged path's origin can be the legitimate origin, so the
// announcement carries a consistent implicit MOAS list and evades
// list checking entirely; only path authentication (the paper cites
// predecessor signing) would catch it.
func (n *Network) OriginateForgedPath(asn astypes.ASN, prefix astypes.Prefix, forged astypes.ASPath, list core.List) error {
	node, ok := n.nodes[asn]
	if !ok {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	n.engine.Schedule(0, func() {
		node.attacker = true
		route := &rib.Route{
			Prefix:      prefix,
			Path:        forged.Clone(),
			Origin:      wire.OriginIGP,
			LocalPref:   rib.DefaultLocalPref,
			Communities: list.Communities(),
			FromPeer:    astypes.ASNNone,
		}
		ch := node.table.Originate(route)
		node.propagate(ch)
	})
	return nil
}

// Withdraw makes asn withdraw its locally originated route for prefix.
func (n *Network) Withdraw(asn astypes.ASN, prefix astypes.Prefix) error {
	node, ok := n.nodes[asn]
	if !ok {
		return fmt.Errorf("simbgp: no node AS %s", asn)
	}
	n.engine.Schedule(0, func() { node.withdrawLocal(prefix) })
	return nil
}

func (n *Network) send(from, to astypes.ASN, msg message) {
	if n.failedLinks[linkKey(from, to)] {
		return
	}
	dst := n.nodes[to]
	n.engine.Schedule(n.linkDelay(from, to), func() {
		// Failure is re-checked at delivery time, so messages in flight
		// when the link fails are lost with it.
		if n.failedLinks[linkKey(from, to)] {
			return
		}
		n.msgCount++
		dst.receive(msg)
	})
}

// Node is one simulated AS.
type Node struct {
	asn       astypes.ASN
	mode      Mode
	attacker  bool
	stripMOAS bool
	net       *Network
	neighbors []astypes.ASN
	table     *rib.Table
	// resolved caches the outcome of conflict resolution per prefix (the
	// "DNS answer"), emulating a router that has investigated an alarm.
	resolved map[astypes.Prefix]core.List
	alarms   []core.Conflict
	// advertised tracks what was last sent per neighbor per prefix so
	// withdrawals are only sent for previously advertised prefixes.
	advertised map[astypes.ASN]map[astypes.Prefix]bool
	// mrai is non-nil when the MinRouteAdvertisementInterval is enabled.
	mrai *mraiState
}

// ASN returns the node's AS number.
func (nd *Node) ASN() astypes.ASN { return nd.asn }

// Mode returns the node's MOAS-checking mode.
func (nd *Node) Mode() Mode { return nd.mode }

// Attacker reports whether the node has originated an invalid route.
func (nd *Node) Attacker() bool { return nd.attacker }

// Alarms returns the MOAS conflicts this node has raised, in order.
func (nd *Node) Alarms() []core.Conflict {
	out := make([]core.Conflict, len(nd.alarms))
	copy(out, nd.alarms)
	return out
}

// Best returns the node's selected route for prefix, or nil.
func (nd *Node) Best(prefix astypes.Prefix) *rib.Route { return nd.table.Best(prefix) }

// Table exposes the node's RIB (read-mostly; the simulation is
// single-threaded per engine).
func (nd *Node) Table() *rib.Table { return nd.table }

func (nd *Node) originate(prefix astypes.Prefix, list core.List, invalid bool) {
	if invalid {
		nd.attacker = true
	}
	route := &rib.Route{
		Prefix:      prefix,
		Path:        astypes.NewSeqPath(nd.asn),
		Origin:      wire.OriginIGP,
		LocalPref:   rib.DefaultLocalPref,
		Communities: list.Communities(),
		FromPeer:    astypes.ASNNone,
	}
	ch := nd.table.Originate(route)
	nd.propagate(ch)
}

func (nd *Node) withdrawLocal(prefix astypes.Prefix) {
	ch := nd.table.WithdrawLocal(prefix)
	nd.propagate(ch)
}

func (nd *Node) receive(msg message) {
	if msg.withdraw {
		nd.net.trace(EvWithdrawMsg, nd.asn, msg.from, msg.prefix, astypes.ASPath{})
		ch := nd.table.Withdraw(msg.from, msg.prefix)
		nd.propagate(ch)
		return
	}
	nd.net.trace(EvAnnounce, nd.asn, msg.from, msg.prefix, msg.path)
	// Sender-side prepending already happened; standard loop detection.
	// A looped announcement still implicitly replaces — i.e. withdraws —
	// whatever this peer previously advertised for the prefix (RFC 4271
	// treats it as route exclusion); silently ignoring it would let two
	// nodes keep each other's stale routes alive forever after the
	// origin withdraws.
	if msg.path.Contains(nd.asn) {
		ch := nd.table.Withdraw(msg.from, msg.prefix)
		nd.propagate(ch)
		return
	}
	if nd.mode == ModeDetect && !nd.admit(msg) {
		nd.net.trace(EvRejected, nd.asn, msg.from, msg.prefix, msg.path)
		// Rejected as invalid: treat the bogus announcement as a no-op.
		// Any previously accepted route from this peer is deliberately
		// kept — the checker "eliminates false routing announcements"
		// (§5.4) rather than tearing down state, mirroring a router that
		// refuses a poisoned replacement. If the peer has in fact moved
		// its traffic to the attacker, the forwarding-walk census still
		// observes the hijack.
		return
	}
	route := &rib.Route{
		Prefix:      msg.prefix,
		Path:        msg.path,
		Origin:      wire.OriginIGP,
		LocalPref:   rib.DefaultLocalPref,
		Communities: msg.communities,
		FromPeer:    msg.from,
	}
	ch := nd.table.Update(route)
	nd.propagate(ch)
}

// admit applies the paper's MOAS check to an incoming announcement,
// returning false if the route must be suppressed.
func (nd *Node) admit(msg message) bool {
	eff, err := core.EffectiveList(msg.communities, msg.path)
	if err != nil {
		return false
	}
	origin, _ := msg.path.Origin()

	// Already-resolved prefix: filter directly by the investigated
	// origin set.
	if truth, ok := nd.resolved[msg.prefix]; ok {
		return truth.Contains(origin)
	}

	// A route whose own origin is missing from its attached list is
	// bogus on its face (§4.1).
	if !eff.Contains(origin) {
		nd.raiseAndResolve(msg.prefix, core.List{}, eff, origin, msg.from)
		if truth, ok := nd.resolved[msg.prefix]; ok {
			return truth.Contains(origin)
		}
		return false
	}

	// Compare against the effective lists of every route currently held
	// for the prefix (Adj-RIB-Ins and local).
	for _, held := range nd.heldLists(msg.prefix) {
		if !held.Equal(eff) {
			nd.raiseAndResolve(msg.prefix, held, eff, origin, msg.from)
			truth, ok := nd.resolved[msg.prefix]
			if !ok {
				// Unresolvable conflict: be conservative, reject the
				// newcomer (alarm stands for the operator).
				return false
			}
			nd.purgeInvalid(msg.prefix, truth)
			return truth.Contains(origin)
		}
	}
	return true
}

// heldLists collects the distinct effective MOAS lists of all routes the
// node currently holds for prefix.
func (nd *Node) heldLists(prefix astypes.Prefix) []core.List {
	var lists []core.List
	add := func(r *rib.Route) {
		eff, err := core.EffectiveList(r.Communities, r.Path)
		if err != nil {
			return
		}
		for _, l := range lists {
			if l.Equal(eff) {
				return
			}
		}
		lists = append(lists, eff)
	}
	for _, peer := range nd.neighbors {
		for _, r := range nd.table.RoutesFrom(peer) {
			if r.Prefix == prefix {
				add(r)
			}
		}
	}
	for _, r := range nd.table.RoutesFrom(astypes.ASNNone) {
		if r.Prefix == prefix {
			add(r)
		}
	}
	return lists
}

func (nd *Node) raiseAndResolve(prefix astypes.Prefix, existing, received core.List, origin, from astypes.ASN) {
	nd.net.trace(EvAlarm, nd.asn, from, prefix, astypes.ASPath{})
	nd.alarms = append(nd.alarms, core.Conflict{
		Prefix:   prefix,
		Existing: existing,
		Received: received,
		Origin:   origin,
		FromPeer: from,
	})
	if nd.net.resolver == nil {
		return
	}
	if truth, ok := nd.net.resolver.ValidOrigins(prefix); ok {
		nd.resolved[prefix] = truth
	}
}

// purgeInvalid withdraws any installed route for prefix whose origin is
// outside the resolved valid set.
func (nd *Node) purgeInvalid(prefix astypes.Prefix, truth core.List) {
	for _, peer := range nd.neighbors {
		for _, r := range nd.table.RoutesFrom(peer) {
			if r.Prefix != prefix {
				continue
			}
			if !truth.Contains(r.OriginAS()) {
				ch := nd.table.Withdraw(peer, prefix)
				nd.propagate(ch)
			}
		}
	}
}

// propagate reacts to a best-route change by advertising the new best
// (or a withdrawal) to every neighbor. Advertisements may be deferred
// by the MRAI timer; withdrawals are always immediate (RFC 4271
// §9.2.1.1 rate limits advertisements only).
func (nd *Node) propagate(ch rib.Change) {
	if !ch.Changed {
		return
	}
	if nd.net.tracer != nil {
		path := astypes.ASPath{}
		if ch.New != nil {
			path = ch.New.Path
		}
		nd.net.trace(EvBestChanged, nd.asn, astypes.ASNNone, ch.Prefix, path)
	}
	for _, peer := range nd.neighbors {
		if ch.New != nil && nd.mayExport(ch.New, peer) && nd.shouldDefer(peer, ch.Prefix) {
			continue
		}
		nd.emitTo(peer, ch.Prefix, ch.New)
	}
}

// emitTo sends the route (or a withdrawal when route is nil or export
// policy forbids it) for prefix to one peer, maintaining the advertised
// bookkeeping.
func (nd *Node) emitTo(peer astypes.ASN, prefix astypes.Prefix, route *rib.Route) {
	if nd.advertised == nil {
		nd.advertised = make(map[astypes.ASN]map[astypes.Prefix]bool)
	}
	sent := nd.advertised[peer]
	if sent == nil {
		sent = make(map[astypes.Prefix]bool)
		nd.advertised[peer] = sent
	}
	if route == nil || !nd.mayExport(route, peer) {
		if !sent[prefix] {
			return
		}
		sent[prefix] = false
		nd.net.send(nd.asn, peer, message{
			from:     nd.asn,
			prefix:   prefix,
			withdraw: true,
		})
		return
	}
	sent[prefix] = true
	// A locally originated route already carries this AS as its path;
	// learned routes are prepended on export.
	path := route.Path
	if route.FromPeer != astypes.ASNNone {
		path = path.Prepend(nd.asn)
	}
	comms := append([]astypes.Community(nil), route.Communities...)
	if nd.stripMOAS && route.FromPeer != astypes.ASNNone {
		comms = core.StripMOAS(comms)
	}
	nd.net.send(nd.asn, peer, message{
		from:        nd.asn,
		prefix:      prefix,
		path:        path,
		communities: comms,
	})
}

// mayExport applies the valley-free export rule when relationships are
// configured: local routes and routes learned from customers go to
// everyone; routes learned from peers or providers go to customers
// only.
func (nd *Node) mayExport(r *rib.Route, to astypes.ASN) bool {
	rel := nd.net.relations
	if rel == nil {
		return true
	}
	if r.FromPeer == astypes.ASNNone {
		return true
	}
	switch rel.Of(nd.asn, r.FromPeer) {
	case topology.RelProvider: // learned from a customer
		return true
	default: // learned from a peer or provider
		return rel.Of(nd.asn, to) == topology.RelProvider
	}
}

// AdoptsFalse reports whether the node's best route for prefix
// originates at an AS outside the valid set — i.e. the node has adopted
// a false route (the paper's Y-axis metric).
func (nd *Node) AdoptsFalse(prefix astypes.Prefix, valid core.List) bool {
	best := nd.table.Best(prefix)
	if best == nil {
		return false
	}
	return !valid.Contains(best.OriginAS())
}

// Census counts, over non-attacker nodes, how many adopted a false route
// for prefix and how many have no route at all.
type Census struct {
	NonAttackers int
	AdoptedFalse int
	NoRoute      int
	AlarmedNodes int
}

// FalsePct returns the paper's metric: percentage of non-attacker ASes
// adopting a false route.
func (c Census) FalsePct() float64 {
	if c.NonAttackers == 0 {
		return 0
	}
	return 100 * float64(c.AdoptedFalse) / float64(c.NonAttackers)
}

// TakeCensus computes the adoption census for prefix against the valid
// origin set: the paper's metric counts a non-attacker AS as affected
// when the best route in its RIB originates outside the valid origin
// set ("the percentage of the remaining ASes (excluding attackers)
// adopting the false routes", §5.2).
func (n *Network) TakeCensus(prefix astypes.Prefix, valid core.List) Census {
	var c Census
	for _, asn := range n.Nodes() {
		node := n.nodes[asn]
		if node.attacker {
			continue
		}
		c.NonAttackers++
		best := node.table.Best(prefix)
		switch {
		case best == nil:
			c.NoRoute++
		case !valid.Contains(best.OriginAS()):
			c.AdoptedFalse++
		}
		if len(node.alarms) > 0 {
			c.AlarmedNodes++
		}
	}
	return c
}

// TakeForwardingCensus is the stricter traffic-level census: a node
// counts as hijacked when the AS-level forwarding walk for prefix
// passes through any attacker or terminates at a false origin. It is
// reported alongside the paper's RIB-level metric in the harness's
// extended output.
func (n *Network) TakeForwardingCensus(prefix astypes.Prefix, valid core.List) Census {
	var c Census
	for _, asn := range n.Nodes() {
		node := n.nodes[asn]
		if node.attacker {
			continue
		}
		c.NonAttackers++
		switch n.forwardOutcome(asn, prefix, valid) {
		case outcomeNoRoute:
			c.NoRoute++
		case outcomeHijacked:
			c.AdoptedFalse++
		}
		if len(node.alarms) > 0 {
			c.AlarmedNodes++
		}
	}
	return c
}

type forwardResult int

const (
	outcomeDelivered forwardResult = iota + 1
	outcomeHijacked
	outcomeNoRoute
)

// forwardOutcome walks the AS-level forwarding path a packet for prefix
// takes from src, reporting whether it is delivered to a valid origin,
// captured by an attacker/false origin, or dropped for lack of a route.
func (n *Network) forwardOutcome(src astypes.ASN, prefix astypes.Prefix, valid core.List) forwardResult {
	cur := src
	visited := make(map[astypes.ASN]bool)
	for {
		if visited[cur] {
			return outcomeNoRoute // forwarding loop: packet never delivered
		}
		visited[cur] = true
		node := n.nodes[cur]
		if node.attacker {
			return outcomeHijacked
		}
		best := node.table.Best(prefix)
		if best == nil {
			return outcomeNoRoute
		}
		if best.FromPeer == astypes.ASNNone {
			// cur originates the route itself.
			if valid.Contains(cur) {
				return outcomeDelivered
			}
			return outcomeHijacked
		}
		cur = best.FromPeer
	}
}
