package simbgp

// The compact routing state: instead of a rib.Table, per-slot maps and
// per-prefix maps on every node, the network keeps one flat array per
// registered prefix, indexed by a global adjacency-slot number. Node i
// owns the slot range [slotBase[i], slotBase[i]+deg(i)]: one slot per
// neighbor in ascending peer order plus a final local slot for the
// node's own originated route. All route attributes are interned
// (intern.go), so an adjacency entry is two uint32s and the decision
// process runs on flat memory with no pointers — the layout that lets a
// 70k-AS network fit in a few MB per prefix instead of a rib.Table per
// node.

import (
	"sort"

	"repro/internal/astypes"
)

// pfxState is the whole network's routing state for one prefix.
type pfxState struct {
	prefix astypes.Prefix
	// adjPath/adjComm are the received path and community attribute per
	// global slot (0 = no route); adjEff lazily caches the interned
	// effective MOAS list of the slot's route for the detection scan.
	adjPath []uint32
	adjComm []uint32
	adjEff  []uint32
	// bestPlus is, per node, the global slot of the selected best route
	// plus one (0 = no route).
	bestPlus []int32
	// adv is the advertised bitset: bit g set when the route was last
	// advertised (not withdrawn) to the neighbor owning slot g.
	adv []uint64
	// resolved caches, per node, the interned outcome of conflict
	// resolution (the "DNS answer"); 0 = not investigated.
	resolved []uint32
}

func (st *pfxState) advBit(g int32) bool { return st.adv[g>>6]&(1<<(uint32(g)&63)) != 0 }
func (st *pfxState) setAdv(g int32)      { st.adv[g>>6] |= 1 << (uint32(g) & 63) }
func (st *pfxState) clrAdv(g int32)      { st.adv[g>>6] &^= 1 << (uint32(g) & 63) }

// stateOf returns the prefix's state, if registered. The returned
// pointer is invalidated by the next registerPrefix call.
//
//repro:allocfree
func (n *Network) stateOf(p astypes.Prefix) (*pfxState, bool) {
	if id, ok := n.pfxID[p]; ok {
		return &n.pfx[id], true
	}
	return nil, false
}

// registerPrefix returns the prefix's state, creating it on first
// sight. Registration is amortized: each distinct prefix allocates its
// flat arrays exactly once per network lifetime (Reset clears them in
// place).
func (n *Network) registerPrefix(p astypes.Prefix) *pfxState {
	if id, ok := n.pfxID[p]; ok {
		return &n.pfx[id]
	}
	id := int32(len(n.pfx))
	n.pfx = append(n.pfx, pfxState{
		prefix:   p,
		adjPath:  make([]uint32, n.totalSlots),
		adjComm:  make([]uint32, n.totalSlots),
		adjEff:   make([]uint32, n.totalSlots),
		bestPlus: make([]int32, len(n.nodes)),
		adv:      make([]uint64, (int(n.totalSlots)+63)/64),
		resolved: make([]uint32, len(n.nodes)),
	})
	n.pfxID[p] = id
	// Keep ids iterable in ascending prefix order, the order rib.Table
	// emitted DropPeer changes and BestRoutes in.
	pos := sort.Search(len(n.pfxSorted), func(k int) bool {
		return n.pfx[n.pfxSorted[k]].prefix.Compare(p) >= 0
	})
	n.pfxSorted = append(n.pfxSorted, 0)
	copy(n.pfxSorted[pos+1:], n.pfxSorted[pos:])
	n.pfxSorted[pos] = id
	return &n.pfx[id]
}

// localSlot returns the node's local-route slot.
//
//repro:allocfree
func (n *Network) localSlot(nd *Node) int32 {
	return n.slotBase[nd.idx] + int32(len(nd.neighbors))
}

// slotPeer returns the peer a global slot of nd belongs to (ASNNone for
// the local slot).
func (n *Network) slotPeer(nd *Node, g int32) astypes.ASN {
	s := g - n.slotBase[nd.idx]
	if int(s) == len(nd.neighbors) {
		return astypes.ASNNone
	}
	return nd.neighbors[s]
}

// updateSlot installs a route into slot g of nd and reselects,
// reporting whether the node's best route changed (by value, matching
// rib's Change.Changed semantics: re-announcing an identical route is
// not a change).
//
//repro:allocfree
func (n *Network) updateSlot(nd *Node, st *pfxState, g int32, pathID, commID, effID uint32) bool {
	prevPath, prevComm := st.adjPath[g], st.adjComm[g]
	if prevPath == pathID && prevComm == commID {
		st.adjEff[g] = effID
		return false
	}
	st.adjPath[g], st.adjComm[g], st.adjEff[g] = pathID, commID, effID
	return n.reselect(nd, st, g, prevPath, prevComm)
}

// clearSlot removes the route in slot g (withdraw / route flush) and
// reselects. Clearing an empty slot is a no-op.
//
//repro:allocfree
func (n *Network) clearSlot(nd *Node, st *pfxState, g int32) bool {
	prevPath, prevComm := st.adjPath[g], st.adjComm[g]
	if prevPath == 0 {
		return false
	}
	st.adjPath[g], st.adjComm[g], st.adjEff[g] = 0, 0, 0
	return n.reselect(nd, st, g, prevPath, prevComm)
}

// reselect recomputes nd's best route for the prefix after slot g
// changed from (prevPath, prevComm), replicating the rib.Table decision
// process under the simulator's constant LOCAL_PREF and origin code:
// fewest AS-path hops, then lowest FromPeer (the local route's
// ASNNone sorting first), with rib's prefer-oldest stability rule — the
// incumbent best is kept when its peer's current route ties the scan
// winner on attributes.
//
//repro:allocfree
func (n *Network) reselect(nd *Node, st *pfxState, g int32, prevPath, prevComm uint32) bool {
	i := nd.idx
	base := n.slotBase[i]
	deg := int32(len(nd.neighbors))
	local := base + deg

	oldPlus := st.bestPlus[i]
	var oldPath, oldComm uint32
	if oldPlus != 0 {
		if os := oldPlus - 1; os == g {
			oldPath, oldComm = prevPath, prevComm
		} else {
			oldPath, oldComm = st.adjPath[os], st.adjComm[os]
		}
	}

	// Scan the local slot first (lowest FromPeer), then neighbors in
	// ascending peer order, keeping strict improvements only: the
	// winner is the (hops, FromPeer) minimum.
	cand := int32(-1)
	var candHops uint32
	if p := st.adjPath[local]; p != 0 {
		cand, candHops = local, n.paths.hops[p]
	}
	for s := int32(0); s < deg; s++ {
		p := st.adjPath[base+s]
		if p == 0 {
			continue
		}
		if h := n.paths.hops[p]; cand < 0 || h < candHops {
			cand, candHops = base+s, h
		}
	}

	// Prefer-oldest: hold on to the incumbent peer's current route when
	// it ties the scan winner, so best paths — and traffic — do not
	// churn to a new peer without strict improvement.
	if oldPlus != 0 && cand >= 0 && oldPlus-1 != cand {
		if op := st.adjPath[oldPlus-1]; op != 0 && n.paths.hops[op] == candHops {
			cand = oldPlus - 1
		}
	}

	var newPath, newComm uint32
	if cand >= 0 {
		newPath, newComm = st.adjPath[cand], st.adjComm[cand]
	}
	st.bestPlus[i] = cand + 1
	return oldPlus != cand+1 || oldPath != newPath || oldComm != newComm
}

// heldEff returns the (lazily cached) effective MOAS-list id of the
// route in slot g, or 0 when the slot is empty or the route's list is
// unresolvable.
//
//repro:allocfree
func (n *Network) heldEff(st *pfxState, g int32) uint32 {
	if e := st.adjEff[g]; e != 0 {
		return e
	}
	p := st.adjPath[g]
	if p == 0 {
		return 0
	}
	e := effectiveID(n.comms, n.lists, st.adjComm[g], n.paths.origin[p])
	st.adjEff[g] = e
	return e
}
