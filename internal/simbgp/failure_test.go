package simbgp

import (
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
)

func TestLinkFailureReroutes(t *testing.T) {
	// 1 -- 2 -- 3 with a backup path 1 -- 4 -- 3.
	g := lineTopology(1, 2, 3)
	g.AddEdge(1, 4)
	g.AddEdge(4, 3)
	n := newNet(t, g, core.NewList(1))
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Node(3).Best(victim).FromPeer; got != 2 && got != 4 {
		t.Fatalf("unexpected next hop %v", got)
	}
	primary := n.Node(3).Best(victim).FromPeer

	if err := n.FailLink(3, primary); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	best := n.Node(3).Best(victim)
	if best == nil {
		t.Fatal("no route after failover")
	}
	if best.FromPeer == primary {
		t.Errorf("still routing via the failed link")
	}
	if best.OriginAS() != 1 {
		t.Errorf("failover changed origin: %v", best.OriginAS())
	}
	if !n.LinkFailed(3, primary) || !n.LinkFailed(primary, 3) {
		t.Error("LinkFailed should be symmetric")
	}

	// Restore: route may move back (shorter path wins again only if
	// strictly shorter; both paths are 2 hops here so prefer-oldest
	// keeps the backup). Either way the node stays connected.
	if err := n.RestoreLink(3, primary); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Node(3).Best(victim) == nil {
		t.Error("route lost after restore")
	}
	if n.LinkFailed(3, primary) {
		t.Error("link still marked failed")
	}
}

func TestLinkFailurePartitionsAndWithdraws(t *testing.T) {
	n := newNet(t, lineTopology(1, 2, 3), core.NewList(1))
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.FailLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	for _, asn := range []astypes.ASN{2, 3} {
		if n.Node(asn).Best(victim) != nil {
			t.Errorf("AS %s kept a route across the partition", asn)
		}
	}
	// Restore heals the partition.
	if err := n.RestoreLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	for _, asn := range []astypes.ASN{2, 3} {
		if n.Node(asn).Best(victim) == nil {
			t.Errorf("AS %s has no route after heal", asn)
		}
	}
}

func TestFailLinkValidation(t *testing.T) {
	n := newNet(t, lineTopology(1, 2), core.NewList(1))
	if err := n.FailLink(1, 99); err == nil {
		t.Error("unknown endpoint accepted")
	}
	g := lineTopology(1, 2, 3)
	n2 := newNet(t, g, core.NewList(1))
	if err := n2.FailLink(1, 3); err == nil {
		t.Error("non-adjacent pair accepted")
	}
}

func TestDetectionSurvivesLinkFailure(t *testing.T) {
	// After the valid route's primary path fails, detection state keeps
	// rejecting the attacker via the backup path.
	g := lineTopology(1, 2, 3)
	g.AddEdge(1, 4)
	g.AddEdge(4, 3)
	g.AddEdge(3, 9)
	n := newNet(t, g, core.NewList(1))
	detectAll(t, n, 9)
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.OriginateInvalid(9, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.FailLink(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	best := n.Node(3).Best(victim)
	if best == nil || best.OriginAS() != 1 {
		t.Errorf("AS 3 after failover: %+v", best)
	}
}

func TestSubprefixHijackEvadesMOASDetection(t *testing.T) {
	// The §4.3 limitation, reproduced as a negative result: the victim
	// announces /16; the attacker announces a /24 inside it. No MOAS
	// conflict exists (different prefixes), so no alarms fire — yet
	// traffic to the /24 lands at the attacker under longest-prefix-
	// match forwarding everywhere.
	sub := astypes.MustPrefix(victim.Addr|0x4500, 24)
	g := lineTopology(1, 2, 3, 9)
	n := newNet(t, g, core.NewList(1))
	detectAll(t, n, 9)
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.OriginateInvalid(9, sub, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	for _, asn := range n.Nodes() {
		if got := len(n.Node(asn).Alarms()); got != 0 {
			t.Errorf("AS %s raised %d alarms — subprefix hijack should be invisible to MOAS checking", asn, got)
		}
	}
	// Per-prefix census for the /16 looks clean...
	if c := n.TakeCensus(victim, core.NewList(1)); c.AdoptedFalse != 0 {
		t.Errorf("/16 census = %+v", c)
	}
	// ...but traffic to an address in the /24 is captured network-wide.
	addr := sub.Addr | 7
	lpm := n.TakeLPMCensus(addr, core.NewList(1))
	if lpm.Hijacked != lpm.NonAttackers {
		t.Errorf("LPM census = %+v, want every non-attacker hijacked", lpm)
	}
	// Traffic to an address outside the /24 still reaches the victim.
	safe := n.TakeLPMCensus(victim.Addr|7, core.NewList(1))
	if safe.Delivered != safe.NonAttackers {
		t.Errorf("safe-address census = %+v", safe)
	}
}

func TestForwardAddrNoRoute(t *testing.T) {
	n := newNet(t, lineTopology(1, 2), core.NewList(1))
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if _, delivered := n.ForwardAddr(2, 0x0a000001); delivered {
		t.Error("delivery without any route")
	}
}
