package simbgp

import (
	"fmt"
	"time"

	"repro/internal/astypes"
	"repro/internal/trace"
)

// Event tracing: an optional hook recording every routing-plane event
// the simulation produces, for debugging convergence dynamics and for
// the examples' narrations. Tracing is off unless a Tracer is attached.

// EventKind classifies a trace event.
type EventKind int

// Trace event kinds.
const (
	// EvAnnounce: a node received a route announcement.
	EvAnnounce EventKind = iota + 1
	// EvWithdrawMsg: a node received a withdrawal.
	EvWithdrawMsg
	// EvBestChanged: a node's best route for a prefix changed.
	EvBestChanged
	// EvAlarm: a node raised a MOAS alarm.
	EvAlarm
	// EvRejected: a detecting node refused an announcement.
	EvRejected
)

func (k EventKind) String() string {
	switch k {
	case EvAnnounce:
		return "announce"
	case EvWithdrawMsg:
		return "withdraw"
	case EvBestChanged:
		return "best-changed"
	case EvAlarm:
		return "alarm"
	case EvRejected:
		return "rejected"
	default:
		return "unknown"
	}
}

// TraceEvent is one recorded routing event.
type TraceEvent struct {
	At     time.Duration // virtual time
	Kind   EventKind
	Node   astypes.ASN
	Peer   astypes.ASN // message source (ASNNone for local events)
	Prefix astypes.Prefix
	Path   astypes.ASPath
}

// String renders the event compactly for logs.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%8s AS%-5s %-12s %s from AS%s path [%s]",
		e.At, e.Node, e.Kind, e.Prefix, e.Peer, e.Path)
}

// Tracer records simulation events in order. It is a bounded ring: once
// capacity is exceeded, the oldest events are dropped (Dropped counts
// them). The zero value is not usable; call NewTracer.
type Tracer struct {
	events  []TraceEvent
	start   int
	count   int
	dropped int
	// filter limits recording to matching events (nil records all).
	filter func(TraceEvent) bool
}

// TracerOption configures a Tracer.
type TracerOption interface {
	apply(*Tracer)
}

type filterOption func(TraceEvent) bool

func (f filterOption) apply(t *Tracer) { t.filter = f }

// WithFilter records only events for which keep returns true.
func WithFilter(keep func(TraceEvent) bool) TracerOption {
	return filterOption(keep)
}

// NewTracer builds a tracer holding up to capacity events.
func NewTracer(capacity int, opts ...TracerOption) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{events: make([]TraceEvent, capacity)}
	for _, o := range opts {
		o.apply(t)
	}
	return t
}

func (t *Tracer) record(e TraceEvent) {
	if t.filter != nil && !t.filter(e) {
		return
	}
	if t.count == len(t.events) {
		t.events[t.start] = e
		t.start = (t.start + 1) % len(t.events)
		t.dropped++
		return
	}
	t.events[(t.start+t.count)%len(t.events)] = e
	t.count++
}

// Events returns the recorded events, oldest first.
func (t *Tracer) Events() []TraceEvent {
	out := make([]TraceEvent, 0, t.count)
	for i := 0; i < t.count; i++ {
		out = append(out, t.events[(t.start+i)%len(t.events)])
	}
	return out
}

// Dropped reports how many events the ring evicted.
func (t *Tracer) Dropped() int { return t.dropped }

// CountKind returns the number of recorded events of one kind.
func (t *Tracer) CountKind(kind EventKind) int {
	n := 0
	for i := 0; i < t.count; i++ {
		if t.events[(t.start+i)%len(t.events)].Kind == kind {
			n++
		}
	}
	return n
}

// Attach installs the tracer on the network (replacing any previous
// one). Pass nil to disable tracing.
func (n *Network) Attach(t *Tracer) { n.tracer = t }

// AttachRecorder mirrors simulation events onto a flight recorder in
// the live path's event vocabulary (replacing any previous recorder):
// announcements and withdrawals become recv events, best-route changes
// become rib events, rejections become validate events, and alarms
// arrive as forensic bundles via raiseAndResolve. Event VNanos carry
// virtual simulation time. Pass nil to disable.
func (n *Network) AttachRecorder(rec *trace.Recorder) { n.recorder = rec }

// tracing reports whether any event sink is attached; propagation paths
// consult it before assembling event arguments.
func (n *Network) tracing() bool { return n.tracer != nil || n.recorder != nil }

func (n *Network) trace(kind EventKind, node, peer astypes.ASN, prefix astypes.Prefix, path astypes.ASPath) {
	if n.tracer != nil {
		n.tracer.record(TraceEvent{
			At:     n.engine.Now(),
			Kind:   kind,
			Node:   node,
			Peer:   peer,
			Prefix: prefix,
			Path:   path,
		})
	}
	n.recordFlight(kind, node, peer, prefix, path)
}

// recordFlight translates one simulation event for the flight recorder.
// EvAlarm is deliberately skipped: RecordAlarm in raiseAndResolve emits
// the alarm event together with its forensic bundle.
func (n *Network) recordFlight(kind EventKind, node, peer astypes.ASN, prefix astypes.Prefix, path astypes.ASPath) {
	if !n.recorder.Enabled() {
		return
	}
	e := trace.Event{
		VNanos: int64(n.engine.Now()),
		Node:   node,
		Peer:   peer,
		Prefix: prefix,
	}
	origin, hasOrigin := path.Origin()
	e.Origin = origin
	switch kind {
	case EvAnnounce:
		e.Kind = trace.KindRecv
	case EvWithdrawMsg:
		e.Kind = trace.KindRecv
		e.Detail = trace.DetailWithdrawal
	case EvBestChanged:
		e.Kind = trace.KindRIB
		if hasOrigin {
			e.Detail = trace.DetailInstalled
		} else {
			e.Detail = trace.DetailWithdrawn
		}
	case EvRejected:
		e.Kind = trace.KindValidate
		e.Detail = trace.DetailRejected
	default:
		return
	}
	n.recorder.Record(e)
}
