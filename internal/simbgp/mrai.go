package simbgp

import (
	"time"

	"repro/internal/astypes"
	"repro/internal/sim"
)

// MRAI — the MinRouteAdvertisementInterval of RFC 4271 §9.2.1.1 — rate
// limits advertisements per peer: after sending a route to a peer, a
// speaker holds further advertisements (but not withdrawals) to that
// peer until the interval elapses, batching intervening changes. SSFnet
// models it the same way; it is off by default here because the paper's
// convergence results do not depend on it, and enabled through
// Config.MRAI for the overhead ablation.

// mraiState tracks one node's per-peer advertisement timers. It is
// created lazily on a node's first deferred advertisement (the interval
// itself lives on the Node), so enabling MRAI on an internet-scale
// network costs nothing on nodes that never advertise.
type mraiState struct {
	// lastAdv is the virtual time of the last advertisement per peer.
	lastAdv map[astypes.ASN]time.Duration
	// pending accumulates prefixes whose advertisement was deferred.
	pending map[astypes.ASN]map[astypes.Prefix]bool
	// scheduled marks peers with a flush event outstanding.
	scheduled map[astypes.ASN]bool
}

// clearAll rewinds the timer state in place for run reuse. Per-peer
// batch maps survive (emptied) so a rewound network re-runs without
// reallocating one map per deferring node.
func (m *mraiState) clearAll() {
	clear(m.lastAdv)
	for _, batch := range m.pending {
		clear(batch)
	}
	clear(m.scheduled)
}

// shouldDefer reports whether an advertisement to peer must wait, and
// if so records the prefix and ensures a flush is scheduled.
func (nd *Node) shouldDefer(peer astypes.ASN, prefix astypes.Prefix) bool {
	if nd.mraiInterval <= 0 {
		return false
	}
	m := nd.mrai
	if m == nil {
		m = &mraiState{
			lastAdv:   make(map[astypes.ASN]time.Duration),
			pending:   make(map[astypes.ASN]map[astypes.Prefix]bool),
			scheduled: make(map[astypes.ASN]bool),
		}
		nd.mrai = m
	}
	now := nd.net.engine.Now()
	last, sent := m.lastAdv[peer]
	if !sent || now-last >= nd.mraiInterval {
		m.lastAdv[peer] = now
		return false
	}
	if m.pending[peer] == nil {
		m.pending[peer] = make(map[astypes.Prefix]bool)
	}
	m.pending[peer][prefix] = true
	if !m.scheduled[peer] {
		m.scheduled[peer] = true
		delay := last + nd.mraiInterval - now
		nd.net.engine.ScheduleTyped(delay,
			sim.Typed{Kind: evMRAIFlush, A: uint32(nd.idx), B: uint32(peer)})
	}
	return true
}

// flushMRAI re-advertises the current best route for every deferred
// prefix (or a withdrawal, if the route evaporated while held).
func (nd *Node) flushMRAI(peer astypes.ASN) {
	m := nd.mrai
	if m == nil {
		return
	}
	m.scheduled[peer] = false
	prefixes := m.pending[peer]
	if len(prefixes) == 0 {
		return
	}
	// The batch map is kept (emptied in place) for the peer's next burst:
	// churny peers would otherwise reallocate it every interval, and
	// pooled sweep reruns once per node per run.
	defer clear(prefixes)
	if !nd.hasNeighbor(peer) {
		return // link failed while the batch was held
	}
	m.lastAdv[peer] = nd.net.engine.Now()
	// emitTo stamps nothing into MRAI state (lastAdv was just advanced,
	// so nothing re-defers): prefixes is not mutated while ranged.
	for prefix := range prefixes {
		nd.emitTo(peer, prefix)
	}
}
