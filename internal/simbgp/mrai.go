package simbgp

import (
	"time"

	"repro/internal/astypes"
	"repro/internal/sim"
)

// MRAI — the MinRouteAdvertisementInterval of RFC 4271 §9.2.1.1 — rate
// limits advertisements per peer: after sending a route to a peer, a
// speaker holds further advertisements (but not withdrawals) to that
// peer until the interval elapses, batching intervening changes. SSFnet
// models it the same way; it is off by default here because the paper's
// convergence results do not depend on it, and enabled through
// Config.MRAI for the overhead ablation.

// mraiState tracks one node's per-peer advertisement timers.
type mraiState struct {
	interval time.Duration
	// lastAdv is the virtual time of the last advertisement per peer.
	lastAdv map[astypes.ASN]time.Duration
	// pending accumulates prefixes whose advertisement was deferred.
	pending map[astypes.ASN]map[astypes.Prefix]bool
	// scheduled marks peers with a flush event outstanding.
	scheduled map[astypes.ASN]bool
}

func newMRAIState(interval time.Duration) *mraiState {
	if interval <= 0 {
		return nil
	}
	return &mraiState{
		interval:  interval,
		lastAdv:   make(map[astypes.ASN]time.Duration),
		pending:   make(map[astypes.ASN]map[astypes.Prefix]bool),
		scheduled: make(map[astypes.ASN]bool),
	}
}

// shouldDefer reports whether an advertisement to peer must wait, and
// if so records the prefix and ensures a flush is scheduled.
func (nd *Node) shouldDefer(peer astypes.ASN, prefix astypes.Prefix) bool {
	m := nd.mrai
	if m == nil {
		return false
	}
	now := nd.net.engine.Now()
	last, sent := m.lastAdv[peer]
	if !sent || now-last >= m.interval {
		m.lastAdv[peer] = now
		return false
	}
	if m.pending[peer] == nil {
		m.pending[peer] = make(map[astypes.Prefix]bool)
	}
	m.pending[peer][prefix] = true
	if !m.scheduled[peer] {
		m.scheduled[peer] = true
		delay := last + m.interval - now
		nd.net.engine.ScheduleTyped(delay,
			sim.Typed{Kind: evMRAIFlush, A: uint32(nd.idx), B: uint32(peer)})
	}
	return true
}

// flushMRAI re-advertises the current best route for every deferred
// prefix (or a withdrawal, if the route evaporated while held).
func (nd *Node) flushMRAI(peer astypes.ASN) {
	m := nd.mrai
	if m == nil {
		return
	}
	m.scheduled[peer] = false
	prefixes := m.pending[peer]
	delete(m.pending, peer)
	if len(prefixes) == 0 {
		return
	}
	if !nd.hasNeighbor(peer) {
		return // link failed while the batch was held
	}
	m.lastAdv[peer] = nd.net.engine.Now()
	for prefix := range prefixes {
		best := nd.table.Best(prefix)
		nd.emitTo(peer, prefix, best)
	}
}
