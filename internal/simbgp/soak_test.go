package simbgp

import (
	"math/rand"
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/topology"
)

// TestSoakLargeTopology runs the full detection machinery on a
// 350-node synthetic Internet (an order of magnitude beyond the paper's
// largest topology) and checks the global invariants: convergence,
// shortest paths for the clean prefix, containment for the attacked
// one. Skipped with -short.
func TestSoakLargeTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("large-topology soak; skipped with -short")
	}
	params := topology.InternetParams{Core: 10, Mid: 40, Stubs: 300, MultiHomeProb: 0.8}
	inf, err := topology.GenerateInternet(params, 2024)
	if err != nil {
		t.Fatal(err)
	}
	g := inf.Graph
	n := g.NumNodes()
	if n != 350 {
		t.Fatalf("nodes = %d", n)
	}

	rng := rand.New(rand.NewSource(9))
	stubs := inf.StubASes()
	// Pick a multi-homed origin: a single-homed stub whose only provider
	// is compromised is the paper's §4.1 "only path" caveat and would
	// dominate the census (that case is covered by
	// TestCapturedNodeAdoptsOnColdStart).
	var origin astypes.ASN
	for {
		origin = stubs[rng.Intn(len(stubs))]
		if g.Degree(origin) >= 2 {
			break
		}
	}
	valid := core.NewList(origin)
	// Attackers are drawn from everywhere except the origin and its
	// direct providers.
	excluded := map[astypes.ASN]bool{origin: true}
	for _, p := range g.Neighbors(origin) {
		excluded[p] = true
	}
	var attackers []astypes.ASN
	nodes := g.Nodes()
	for len(attackers) < 30 {
		a := nodes[rng.Intn(len(nodes))]
		if !excluded[a] {
			attackers = astypes.DedupASNs(append(attackers, a))
		}
	}
	attackerSet := make(map[astypes.ASN]bool, len(attackers))
	for _, a := range attackers {
		attackerSet[a] = true
	}

	net, err := NewNetwork(Config{Topology: g, Resolver: resolverFor(valid)})
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range net.Nodes() {
		if !attackerSet[asn] {
			if err := net.SetMode(asn, ModeDetect); err != nil {
				t.Fatal(err)
			}
		}
	}

	// A second, unattacked prefix shares the run: its routing must be
	// completely unaffected by the attack on the victim prefix.
	clean := astypes.MustPrefix(0x0a000000, 8)
	cleanOrigin := stubs[rng.Intn(len(stubs))]
	if err := net.Originate(cleanOrigin, clean, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := net.Originate(origin, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	for _, a := range attackers {
		if err := net.OriginateInvalid(a, victim, core.List{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d nodes, %d messages, virtual time %s",
		n, net.MessageCount(), net.Engine().Now())

	// Clean prefix: everyone reaches it on a shortest path.
	dist := g.ShortestPathLens(cleanOrigin)
	for _, asn := range net.Nodes() {
		best := net.Node(asn).Best(clean)
		if asn == cleanOrigin {
			continue
		}
		if best == nil {
			t.Fatalf("AS %s lost the clean prefix", asn)
		}
		if got, want := best.Path.Hops(), dist[asn]; got != want {
			t.Fatalf("AS %s clean path %d hops, want %d", asn, got, want)
		}
	}

	// Victim prefix: detection holds the line. With 8.6% attackers on a
	// richly multihomed 350-node graph, captures should stay small.
	c := net.TakeCensus(victim, valid)
	if pct := c.FalsePct(); pct > 10 {
		t.Errorf("adoption %.1f%% at scale (census %+v)", pct, c)
	}
	if c.AlarmedNodes == 0 {
		t.Error("no alarms at scale")
	}
}
