package simbgp

import (
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/topology"
)

var victim = astypes.MustPrefix(0x83b30000, 16)

func lineTopology(asns ...astypes.ASN) *topology.Graph {
	g := topology.NewGraph()
	for i := 1; i < len(asns); i++ {
		g.AddEdge(asns[i-1], asns[i])
	}
	return g
}

func resolverFor(valid core.List) Resolver {
	return ResolverFunc(func(p astypes.Prefix) (core.List, bool) {
		return valid, p == victim
	})
}

func newNet(t *testing.T, g *topology.Graph, valid core.List) *Network {
	t.Helper()
	n, err := NewNetwork(Config{Topology: g, Resolver: resolverFor(valid)})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func detectAll(t *testing.T, n *Network, except ...astypes.ASN) {
	t.Helper()
	skip := make(map[astypes.ASN]bool)
	for _, a := range except {
		skip[a] = true
	}
	for _, asn := range n.Nodes() {
		if !skip[asn] {
			if err := n.SetMode(asn, ModeDetect); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestPropagationReachesAllNodes(t *testing.T) {
	n := newNet(t, lineTopology(1, 2, 3, 4, 5), core.NewList(1))
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	for _, asn := range n.Nodes() {
		best := n.Node(asn).Best(victim)
		if best == nil {
			t.Fatalf("AS %s has no route", asn)
		}
		if got := best.OriginAS(); got != 1 {
			t.Errorf("AS %s origin = %s", asn, got)
		}
	}
	// The received path covers every AS from the advertising neighbor
	// down to the origin: 4 hops away on the line.
	if hops := n.Node(5).Best(victim).Path.Hops(); hops != 4 {
		t.Errorf("AS 5 path hops = %d, want 4", hops)
	}
	if n.MessageCount() == 0 {
		t.Error("no messages counted")
	}
}

func TestShortestPathWins(t *testing.T) {
	g := lineTopology(1, 2, 3, 4)
	g.AddEdge(1, 4) // shortcut
	n := newNet(t, g, core.NewList(1))
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if hops := n.Node(4).Best(victim).Path.Hops(); hops != 1 {
		t.Errorf("AS 4 should use the direct link to the origin; hops = %d", hops)
	}
}

func TestWithdrawPropagates(t *testing.T) {
	n := newNet(t, lineTopology(1, 2, 3), core.NewList(1))
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.Withdraw(1, victim); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	for _, asn := range n.Nodes() {
		if n.Node(asn).Best(victim) != nil {
			t.Errorf("AS %s still has a route after withdrawal", asn)
		}
	}
}

func TestHijackWithoutDetection(t *testing.T) {
	// 1 -- 2 -- 3 -- 4 -- 5; attacker at 5: nodes 4 and 5's side adopt.
	n := newNet(t, lineTopology(1, 2, 3, 4, 5), core.NewList(1))
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.OriginateInvalid(5, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	census := n.TakeCensus(victim, core.NewList(1))
	if census.NonAttackers != 4 {
		t.Fatalf("NonAttackers = %d", census.NonAttackers)
	}
	if census.AdoptedFalse == 0 {
		t.Error("without detection someone must adopt the false route")
	}
	if census.AlarmedNodes != 0 {
		t.Error("normal nodes must not raise alarms")
	}
}

func TestHijackContainedByDetection(t *testing.T) {
	g := lineTopology(1, 2, 3, 4, 5)
	g.AddEdge(1, 3) // extra connectivity so the valid route reaches 3 fast
	n := newNet(t, g, core.NewList(1))
	detectAll(t, n, 5)
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.OriginateInvalid(5, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	census := n.TakeCensus(victim, core.NewList(1))
	if census.AdoptedFalse != 0 {
		t.Errorf("detection failed: %d adopters", census.AdoptedFalse)
	}
	if census.AlarmedNodes == 0 {
		t.Error("no node raised an alarm")
	}
	// The attacker's direct neighbor must have detected it.
	if len(n.Node(4).Alarms()) == 0 {
		t.Error("AS 4 (attacker's neighbor) saw no conflict")
	}
}

func TestValidMOASNoFalseAlarms(t *testing.T) {
	// Figure 2: prefix originated by AS 1 and AS 2 with identical lists.
	g := topology.NewGraph()
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	valid := core.NewList(1, 2)
	n := newNet(t, g, valid)
	detectAll(t, n)
	for _, origin := range []astypes.ASN{1, 2} {
		if err := n.Originate(origin, victim, valid); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	for _, asn := range n.Nodes() {
		if got := len(n.Node(asn).Alarms()); got != 0 {
			t.Errorf("AS %s raised %d false alarm(s)", asn, got)
		}
		if n.Node(asn).Best(victim) == nil {
			t.Errorf("AS %s lost the valid route", asn)
		}
	}
}

func TestForgedSupersetListDetected(t *testing.T) {
	// §4.1: attacker attaches {1, 2, Z}; inconsistent with {1, 2}.
	g := topology.NewGraph()
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 9)
	valid := core.NewList(1, 2)
	n := newNet(t, g, valid)
	detectAll(t, n, 9)
	for _, origin := range []astypes.ASN{1, 2} {
		if err := n.Originate(origin, victim, valid); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.OriginateInvalid(9, victim, valid.WithOrigin(9)); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	census := n.TakeCensus(victim, valid)
	if census.AdoptedFalse != 0 {
		t.Errorf("forged superset list adopted by %d nodes", census.AdoptedFalse)
	}
	if len(n.Node(4).Alarms()) == 0 {
		t.Error("AS 4 did not alarm on the forged list")
	}
}

func TestCapturedNodeAdoptsOnColdStart(t *testing.T) {
	// AS 9's only provider is the attacker: with a cold start it never
	// sees the valid route — the paper's single-path caveat (§4.1).
	g := lineTopology(1, 2, 5)
	g.AddEdge(5, 9)
	n := newNet(t, g, core.NewList(1))
	detectAll(t, n, 5)
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.OriginateInvalid(5, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	best := n.Node(9).Best(victim)
	if best == nil || best.OriginAS() != 5 {
		t.Errorf("captured node should adopt the only route it sees: %+v", best)
	}
	census := n.TakeCensus(victim, core.NewList(1))
	if census.AdoptedFalse != 1 {
		t.Errorf("AdoptedFalse = %d, want 1 (the captured stub)", census.AdoptedFalse)
	}
}

func TestStripMOASInTransit(t *testing.T) {
	// A stripping node removes MOAS communities from routes it relays;
	// downstream checkers then see the implicit single-origin list,
	// which for a valid 2-origin MOAS raises a (false) alarm — the §4.3
	// community-drop caveat.
	g := lineTopology(1, 3, 4)
	g.AddEdge(2, 3)
	valid := core.NewList(1, 2)
	n := newNet(t, g, valid)
	if err := n.SetStripMOAS(3, true); err != nil {
		t.Fatal(err)
	}
	if err := n.SetMode(4, ModeDetect); err != nil {
		t.Fatal(err)
	}
	for _, origin := range []astypes.ASN{1, 2} {
		if err := n.Originate(origin, victim, valid); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	best := n.Node(4).Best(victim)
	if best == nil {
		t.Fatal("AS 4 has no route")
	}
	if _, has := core.FromCommunities(best.Communities); has {
		t.Error("MOAS communities survived the stripping node")
	}
}

func TestForwardingCensusSeesProviderCapture(t *testing.T) {
	// 1 -- 2 -- 5(attacker) -- 9: at quiescence AS 9 routes via 5.
	g := lineTopology(1, 2, 5, 9)
	n := newNet(t, g, core.NewList(1))
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.OriginateInvalid(5, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	rib := n.TakeCensus(victim, core.NewList(1))
	fwd := n.TakeForwardingCensus(victim, core.NewList(1))
	if fwd.AdoptedFalse < rib.AdoptedFalse {
		t.Errorf("forwarding census (%d) must not undercount the RIB census (%d)",
			fwd.AdoptedFalse, rib.AdoptedFalse)
	}
	// AS 9's traffic necessarily enters the attacker.
	if n.forwardOutcome(n.Node(9), victim, core.NewList(1)) != outcomeHijacked {
		t.Error("AS 9's traffic should be hijacked")
	}
}

func TestSetModeUnknownNode(t *testing.T) {
	n := newNet(t, lineTopology(1, 2), core.NewList(1))
	if err := n.SetMode(99, ModeDetect); err == nil {
		t.Error("unknown node accepted")
	}
	if err := n.SetStripMOAS(99, true); err == nil {
		t.Error("unknown node accepted for strip")
	}
	if err := n.Originate(99, victim, core.List{}); err == nil {
		t.Error("unknown originator accepted")
	}
	if err := n.OriginateInvalid(99, victim, core.List{}); err == nil {
		t.Error("unknown attacker accepted")
	}
	if err := n.Withdraw(99, victim); err == nil {
		t.Error("unknown withdrawer accepted")
	}
}

func TestEmptyTopologyRejected(t *testing.T) {
	if _, err := NewNetwork(Config{Topology: topology.NewGraph()}); err == nil {
		t.Error("empty topology accepted")
	}
	if _, err := NewNetwork(Config{}); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (Census, uint64) {
		g := lineTopology(1, 2, 3, 4, 5)
		g.AddEdge(2, 5)
		n := newNet(t, g, core.NewList(1))
		detectAll(t, n, 4)
		if err := n.Originate(1, victim, core.List{}); err != nil {
			t.Fatal(err)
		}
		if err := n.OriginateInvalid(4, victim, core.List{}); err != nil {
			t.Fatal(err)
		}
		if err := n.Run(); err != nil {
			t.Fatal(err)
		}
		return n.TakeCensus(victim, core.NewList(1)), n.MessageCount()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Errorf("runs diverge: %+v/%d vs %+v/%d", c1, m1, c2, m2)
	}
}

func TestCensusFalsePct(t *testing.T) {
	c := Census{NonAttackers: 40, AdoptedFalse: 10}
	if got := c.FalsePct(); got != 25 {
		t.Errorf("FalsePct = %v", got)
	}
	if (Census{}).FalsePct() != 0 {
		t.Error("empty census should be 0%")
	}
}
