package simbgp

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

func TestMRAIConvergesToSameRoutes(t *testing.T) {
	build := func(mrai time.Duration) *Network {
		g := lineTopology(1, 2, 3, 4)
		g.AddEdge(1, 4)
		g.AddEdge(2, 4)
		n, err := NewNetwork(Config{Topology: g, MRAI: mrai})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Originate(1, victim, core.List{}); err != nil {
			t.Fatal(err)
		}
		if err := n.Run(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	plain := build(0)
	limited := build(2 * time.Second)
	for _, asn := range plain.Nodes() {
		a, b := plain.Node(asn).Best(victim), limited.Node(asn).Best(victim)
		if (a == nil) != (b == nil) {
			t.Fatalf("AS %s reachability differs under MRAI", asn)
		}
		if a != nil && a.Path.Hops() != b.Path.Hops() {
			t.Errorf("AS %s path length differs: %d vs %d", asn, a.Path.Hops(), b.Path.Hops())
		}
	}
}

func TestMRAIBatchesChurn(t *testing.T) {
	// The origin flaps the prefix several times in rapid succession; a
	// rate-limited network delivers fewer updates than a flooding one.
	run := func(mrai time.Duration) uint64 {
		g := lineTopology(1, 2, 3, 4, 5)
		n, err := NewNetwork(Config{Topology: g, MRAI: mrai})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			list := core.NewList(1)
			if i%2 == 1 {
				list = core.NewList(1, 7) // alternate attribute change
			}
			if err := n.Originate(1, victim, list); err != nil {
				t.Fatal(err)
			}
			if err := n.Engine().RunUntil(n.Engine().Now() + 5*time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.Run(); err != nil {
			t.Fatal(err)
		}
		return n.MessageCount()
	}
	flood := run(0)
	limited := run(time.Second)
	if limited >= flood {
		t.Errorf("MRAI did not reduce churn messages: %d vs %d", limited, flood)
	}
	t.Logf("messages: flood=%d mrai=%d", flood, limited)
}

func TestMRAIWithdrawalsImmediate(t *testing.T) {
	g := lineTopology(1, 2, 3)
	n, err := NewNetwork(Config{Topology: g, MRAI: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Node(3).Best(victim) == nil {
		t.Fatal("no route at AS 3")
	}
	if err := n.Withdraw(1, victim); err != nil {
		t.Fatal(err)
	}
	// Withdrawals bypass MRAI: quiescence must not wait 10 virtual
	// seconds per hop.
	before := n.Engine().Now()
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Node(3).Best(victim) != nil {
		t.Error("withdrawal did not reach AS 3")
	}
	if elapsed := n.Engine().Now() - before; elapsed > time.Second {
		t.Errorf("withdrawal took %v of virtual time (MRAI leak)", elapsed)
	}
}

func TestMRAIFlushAfterLinkFailure(t *testing.T) {
	// A pending MRAI batch for a peer whose link fails must be dropped,
	// not sent into the void.
	g := topology.NewGraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	n, err := NewNetwork(Config{Topology: g, MRAI: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.FailLink(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Node(3).Best(victim) == nil {
		t.Error("AS 3 lost the route despite the direct link to AS 1")
	}
}
