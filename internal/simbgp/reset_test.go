package simbgp

import (
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/topology"
)

// runAttackScenario originates the valid route, converges, launches the
// attack, converges again, and returns both censuses — a representative
// experiment.Run-shaped workload.
func runAttackScenario(t *testing.T, n *Network) (Census, Census, uint64) {
	t.Helper()
	valid := core.NewList(1)
	for _, asn := range n.Nodes() {
		if asn != 1 && asn != 5 {
			if err := n.SetMode(asn, ModeDetect); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.OriginateInvalid(5, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	return n.TakeCensus(victim, valid), n.TakeForwardingCensus(victim, valid), n.MessageCount()
}

func TestResetMatchesFreshNetwork(t *testing.T) {
	g := lineTopology(1, 2, 3, 4, 5)
	g.AddEdge(2, 5)
	valid := core.NewList(1)
	cfg := Config{Topology: g, Resolver: resolverFor(valid)}

	fresh, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRIB, wantFwd, wantMsgs := runAttackScenario(t, fresh)

	// A network that has already run a *different* scenario, then Reset,
	// must reproduce the fresh network's outcome exactly.
	reused, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := reused.Originate(4, victim, core.NewList(4)); err != nil {
		t.Fatal(err)
	}
	if err := reused.FailLink(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := reused.SetStripMOAS(3, true); err != nil {
		t.Fatal(err)
	}
	if err := reused.Run(); err != nil {
		t.Fatal(err)
	}
	node3 := reused.Node(3)
	if err := reused.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	if reused.Node(3) != node3 {
		t.Fatal("Reset must keep *Node pointers stable")
	}
	if reused.MessageCount() != 0 || reused.Engine().Now() != 0 {
		t.Fatalf("Reset left msgCount=%d now=%v", reused.MessageCount(), reused.Engine().Now())
	}
	if reused.LinkFailed(2, 3) {
		t.Fatal("Reset left link failed")
	}
	gotRIB, gotFwd, gotMsgs := runAttackScenario(t, reused)
	if gotRIB != wantRIB || gotFwd != wantFwd || gotMsgs != wantMsgs {
		t.Errorf("reset run diverged:\n rib  %+v vs %+v\n fwd  %+v vs %+v\n msgs %d vs %d",
			gotRIB, wantRIB, gotFwd, wantFwd, gotMsgs, wantMsgs)
	}
}

func TestResetRejectsForeignTopology(t *testing.T) {
	g := lineTopology(1, 2, 3)
	n, err := NewNetwork(Config{Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	other := lineTopology(1, 2, 3)
	if err := n.Reset(Config{Topology: other}); err == nil {
		t.Error("Reset accepted a different topology value")
	}
	if err := n.Reset(Config{Topology: g}); err != nil {
		t.Errorf("Reset rejected its own topology: %v", err)
	}
}

func TestResetSwapsRunConfig(t *testing.T) {
	// MRAI, relations, and event limit are per-run settings: a Reset
	// must apply the new values, not echo the old ones.
	g := lineTopology(1, 2, 3, 4)
	n, err := NewNetwork(Config{Topology: g, MRAI: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if n.Node(1).mraiInterval != 30*time.Second {
		t.Fatal("MRAI not enabled")
	}
	if err := n.Reset(Config{Topology: g, EventLimit: 3}); err != nil {
		t.Fatal(err)
	}
	if n.Node(1).mraiInterval != 0 || n.Node(1).mrai != nil {
		t.Error("Reset kept stale MRAI state")
	}
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err == nil {
		t.Error("EventLimit=3 should trip on a 4-node line")
	}
	if err := n.Reset(Config{Topology: g}); err != nil {
		t.Fatal(err)
	}
	if err := n.Originate(1, victim, core.List{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Errorf("default event limit should be restored: %v", err)
	}
}

// TestDeliveryAllocsZero pins the tentpole guarantee on the simulator
// side: once the inflight pool and event queue are warm, sending and
// delivering a message allocates nothing. A withdraw for an absent
// route exercises the pure delivery machinery (schedule, slot pool,
// dispatch, receive, no-op RIB update) with no route installation.
func TestDeliveryAllocsZero(t *testing.T) {
	g := lineTopology(1, 2)
	n, err := NewNetwork(Config{Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	nd := n.Node(1)
	s := nd.slotOf(2)
	if s < 0 {
		t.Fatal("no adjacency slot")
	}
	none := astypes.MustPrefix(0x0a000000, 8)
	warm := func() {
		n.sendSlot(nd, s, message{from: 1, prefix: none, withdraw: true})
		if err := n.Run(); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	allocs := testing.AllocsPerRun(200, warm)
	if allocs != 0 {
		t.Errorf("steady-state message delivery allocates %v per send+deliver, want 0", allocs)
	}
}

// TestSharedAdvertisementIsolation guards the build-once sharing: the
// path and communities one propagation hands to several peers must not
// be corrupted by any receiver (installs clone; in-transit is
// read-only).
func TestSharedAdvertisementIsolation(t *testing.T) {
	// Star: 2 is adjacent to 1, 3, 4, 5 — one propagation from 2 fans
	// out to three peers sharing one built advertisement.
	g := topology.NewGraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(2, 4)
	g.AddEdge(2, 5)
	n, err := NewNetwork(Config{Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	list := core.NewList(1, 7)
	if err := n.Originate(1, victim, list); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	for _, asn := range []astypes.ASN{3, 4, 5} {
		best := n.Node(asn).Best(victim)
		if best == nil {
			t.Fatalf("AS %s has no route", asn)
		}
		if got := best.Path.Hops(); got != 2 {
			t.Errorf("AS %s path hops = %d, want 2", asn, got)
		}
		eff, err := core.EffectiveList(best.Communities, best.Path)
		if err != nil {
			t.Fatal(err)
		}
		if !eff.Equal(list) {
			t.Errorf("AS %s effective list = %v, want %v", asn, eff, list)
		}
	}
	// Mutating one receiver's stored route must not leak into another's
	// (each installed its own clone).
	r3 := n.Node(3).Best(victim).Clone()
	r3.Communities[0] = astypes.Community(0)
	if eff, _ := core.EffectiveList(n.Node(4).Best(victim).Communities, n.Node(4).Best(victim).Path); !eff.Equal(list) {
		t.Error("clone isolation violated across receivers")
	}
}
