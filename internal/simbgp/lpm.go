package simbgp

import (
	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/ptrie"
)

// This file implements destination-address forwarding with
// longest-prefix-match semantics, used to demonstrate the paper's §4.3
// limitation: an attacker announcing a *more specific* prefix than the
// victim's wins forwarding at every router regardless of MOAS lists,
// because the two announcements never conflict at the routing layer —
// they are different prefixes.

// lpmTrie snapshots the node's Loc-RIB into a radix trie for
// longest-prefix-match forwarding.
func (nd *Node) lpmTrie() *ptrie.Trie[astypes.Prefix] {
	t := ptrie.New[astypes.Prefix]()
	n := nd.net
	for _, id := range n.pfxSorted {
		st := &n.pfx[id]
		if st.bestPlus[nd.idx] != 0 {
			t.Insert(st.prefix, st.prefix)
		}
	}
	return t
}

// ForwardAddr walks the AS-level forwarding path for a packet destined
// to addr from src, using longest-prefix-match at every hop, and
// reports where it lands: the origin AS that finally claims the packet
// (delivered=true) or no route / a loop (delivered=false).
func (n *Network) ForwardAddr(src astypes.ASN, addr uint32) (landing astypes.ASN, delivered bool) {
	node := n.Node(src)
	if node == nil {
		return astypes.ASNNone, false
	}
	return n.forwardAddr(node, addr, make([]*ptrie.Trie[astypes.Prefix], len(n.nodes)))
}

func (n *Network) forwardAddr(src *Node, addr uint32, tries []*ptrie.Trie[astypes.Prefix]) (astypes.ASN, bool) {
	n.visitEpoch++
	epoch := n.visitEpoch
	node := src
	for {
		if n.visited[node.idx] == epoch {
			return astypes.ASNNone, false
		}
		n.visited[node.idx] = epoch
		trie := tries[node.idx]
		if trie == nil {
			trie = node.lpmTrie()
			tries[node.idx] = trie
		}
		_, prefix, ok := trie.LongestMatch(addr)
		if !ok {
			return astypes.ASNNone, false
		}
		st, registered := n.stateOf(prefix)
		if !registered {
			return astypes.ASNNone, false
		}
		b := st.bestPlus[node.idx] - 1
		if b < 0 {
			return astypes.ASNNone, false
		}
		rel := b - n.slotBase[node.idx]
		if int(rel) == len(node.neighbors) {
			return node.asn, true
		}
		node = &n.nodes[node.neighborIdx[rel]]
	}
}

// LPMCensus counts, over non-attacker nodes, where traffic for addr
// lands: at a member of the valid origin set, at someone else
// (hijacked), or nowhere.
type LPMCensus struct {
	NonAttackers int
	Delivered    int
	Hijacked     int
	NoRoute      int
}

// TakeLPMCensus computes the address-level forwarding census, the
// metric under which the §4.3 subprefix attack is visible even when
// every RIB's per-prefix state looks consistent.
func (n *Network) TakeLPMCensus(addr uint32, valid core.List) LPMCensus {
	var c LPMCensus
	// Forwarding tables are snapshotted once per node across the whole
	// census.
	tries := make([]*ptrie.Trie[astypes.Prefix], len(n.nodes))
	for i := range n.nodes {
		node := &n.nodes[i]
		if node.attacker {
			continue
		}
		c.NonAttackers++
		landing, delivered := n.forwardAddr(node, addr, tries)
		switch {
		case !delivered:
			c.NoRoute++
		case valid.Contains(landing):
			c.Delivered++
		default:
			c.Hijacked++
		}
	}
	return c
}
