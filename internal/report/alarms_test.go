package report

import (
	"strings"
	"testing"
)

func TestAlarmStudyAndTable(t *testing.T) {
	bundles, err := AlarmStudy(42, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) == 0 {
		t.Fatal("full detection captured no forensic bundles")
	}
	for _, b := range bundles {
		if b.Verdict != "conflict" || b.Prefix != "131.179.0.0/16" {
			t.Errorf("bundle: %+v", b)
		}
		if len(b.Origins) != 2 {
			t.Errorf("competing origins: %v", b.Origins)
		}
		if b.Class == "likely-hijack" {
			t.Errorf("class %q without ROAs", b.Class)
		}
	}

	var sb strings.Builder
	if err := WriteAlarmTable(&sb, bundles); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"id", "verdict", "conflict", "alarm #0: MOAS conflict", "lists:"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	var empty strings.Builder
	if err := WriteAlarmTable(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no MOAS alarms") {
		t.Errorf("empty table: %q", empty.String())
	}
}

func TestAlarmStudyWithROAs(t *testing.T) {
	bundles, err := AlarmStudy(42, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) == 0 {
		t.Fatal("full detection captured no forensic bundles")
	}
	for _, b := range bundles {
		if b.Class != "likely-hijack" {
			t.Errorf("bundle %d class = %q, want likely-hijack", b.ID, b.Class)
		}
	}
	var sb strings.Builder
	if err := WriteAlarmTable(&sb, bundles); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"class", "likely-hijack"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
