// Package report orchestrates the paper's entire evaluation — the §3
// measurement study and the §5 simulation study — and renders a single
// Markdown document in the shape of EXPERIMENTS.md: per-figure series
// plus the headline statistics, with the paper's reported values beside
// the measured ones. cmd/moas-report is the CLI wrapper.
package report

import (
	"fmt"
	"io"
	"time"

	"repro/internal/experiment"
	"repro/internal/measure"
	"repro/internal/routegen"
	"repro/internal/topology"
)

// Options configures a full evaluation run.
type Options struct {
	// Seed drives topologies and selections (default 42).
	Seed int64
	// MeasureSeed drives the synthetic RouteViews series (default 1997).
	MeasureSeed int64
	// MaxAttackerPct bounds the simulation sweeps (default 35).
	MaxAttackerPct float64
	// SkipMeasurement / SkipSimulation trim the run.
	SkipMeasurement bool
	SkipSimulation  bool
	// ColdStart selects the announcement model (default true, matching
	// the headline figures).
	ColdStart bool
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.MeasureSeed == 0 {
		o.MeasureSeed = 1997
	}
	if o.MaxAttackerPct == 0 {
		o.MaxAttackerPct = 35
	}
	return o
}

// Report holds the full evaluation's results.
type Report struct {
	Options Options
	// Measurement results (nil if skipped).
	Summary *measure.Summary
	// Figure9 holds the 46-AS sweeps for 1 and 2 origins; Figure10 the
	// per-topology sweeps; Figure11 the deployment sweeps.
	Figure9  []*experiment.SweepResult
	Figure10 []*experiment.SweepResult
	Figure11 []*experiment.SweepResult
	Elapsed  time.Duration
}

// Run executes the configured evaluation.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	start := time.Now()
	rep := &Report{Options: opts}

	if !opts.SkipMeasurement {
		cfg := routegen.DefaultConfig()
		cfg.Seed = opts.MeasureSeed
		gen, err := routegen.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("report: %w", err)
		}
		analysis, err := measure.Run(gen)
		if err != nil {
			return nil, fmt.Errorf("report: %w", err)
		}
		s := analysis.Summarize()
		rep.Summary = &s
	}

	if !opts.SkipSimulation {
		set, err := topology.BuildPaperTopologies(opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("report: %w", err)
		}
		normalFull := []experiment.ModeSpec{
			{Label: "Normal BGP", Detection: experiment.DetectionOff},
			{Label: "Full MOAS Detection", Detection: experiment.DetectionFull},
		}
		deployment := []experiment.ModeSpec{
			{Label: "Normal BGP", Detection: experiment.DetectionOff},
			{Label: "Half MOAS Detection", Detection: experiment.DetectionPartial, DeployFraction: 0.5},
			{Label: "Full MOAS Detection", Detection: experiment.DetectionFull},
		}
		sweep := func(topo *topology.SampleResult, name string, origins int,
			modes []experiment.ModeSpec) (*experiment.SweepResult, error) {
			return experiment.Sweep(experiment.SweepConfig{
				Topology:       topo,
				TopologyName:   name,
				NumOrigins:     origins,
				AttackerCounts: experiment.AttackerCountsFor(topo, opts.MaxAttackerPct),
				Modes:          modes,
				Seed:           opts.Seed,
				ColdStart:      opts.ColdStart,
			})
		}
		for _, origins := range []int{1, 2} {
			res, err := sweep(set.T46, "46", origins, normalFull)
			if err != nil {
				return nil, fmt.Errorf("report: figure 9: %w", err)
			}
			rep.Figure9 = append(rep.Figure9, res)
		}
		for _, topo := range []struct {
			name string
			s    *topology.SampleResult
		}{{"25", set.T25}, {"46", set.T46}, {"63", set.T63}} {
			res, err := sweep(topo.s, topo.name, 1, normalFull)
			if err != nil {
				return nil, fmt.Errorf("report: figure 10: %w", err)
			}
			rep.Figure10 = append(rep.Figure10, res)
		}
		for _, topo := range []struct {
			name string
			s    *topology.SampleResult
		}{{"46", set.T46}, {"63", set.T63}} {
			res, err := sweep(topo.s, topo.name, 1, deployment)
			if err != nil {
				return nil, fmt.Errorf("report: figure 11: %w", err)
			}
			rep.Figure11 = append(rep.Figure11, res)
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// WriteMarkdown renders the report.
func (r *Report) WriteMarkdown(w io.Writer) error {
	p := &printer{w: w}
	p.printf("# MOAS detection — evaluation report\n\n")
	p.printf("Seeds: simulation %d, measurement %d. Elapsed: %s.\n\n",
		r.Options.Seed, r.Options.MeasureSeed, r.Elapsed.Round(time.Millisecond))

	if r.Summary != nil {
		p.printf("## Measurement study (paper §3, Figures 4-5)\n\n")
		p.printf("| Statistic | Paper | Measured |\n|---|---|---|\n")
		p.printf("| Median daily MOAS cases, 1998 | 683 | %.0f |\n", r.Summary.MedianDailyByYear[1998])
		p.printf("| Median daily MOAS cases, 2001 | 1294 | %.0f |\n", r.Summary.MedianDailyByYear[2001])
		p.printf("| One-day case fraction | 35.9%% | %.1f%% |\n", 100*r.Summary.OneDayFraction)
		p.printf("| Two-origin share | 96.14%% | %.2f%% |\n", 100*r.Summary.TwoOriginFraction)
		p.printf("| Three-origin share | 2.7%% | %.2f%% |\n", 100*r.Summary.ThreeOriginFraction)
		p.printf("| Largest spike | 1998-04-07 | %s (%d cases) |\n\n",
			r.Summary.MaxDailyDate.Format("2006-01-02"), r.Summary.MaxDaily)
	}

	writeFigure := func(title string, sweeps []*experiment.SweepResult) {
		p.printf("## %s\n\n", title)
		for _, res := range sweeps {
			p.printf("### %s-AS topology, %d origin AS(es)\n\n", res.TopologyName, res.NumOrigins)
			p.printf("| attackers | %% of ASes |")
			for _, m := range res.Modes {
				p.printf(" %s |", m.Label)
			}
			p.printf("\n|---|---|")
			for range res.Modes {
				p.printf("---|")
			}
			p.printf("\n")
			for _, pt := range res.Points {
				p.printf("| %d | %.1f%% |", pt.NumAttackers, pt.AttackerPct)
				for mi := range res.Modes {
					stddev := 0.0
					if mi < len(pt.StdDevFalsePct) {
						stddev = pt.StdDevFalsePct[mi]
					}
					p.printf(" %.2f%% ± %.2f |", pt.MeanFalsePct[mi], stddev)
				}
				p.printf("\n")
			}
			p.printf("\n")
		}
	}
	if len(r.Figure9) > 0 {
		writeFigure("Figure 9 — effectiveness of the MOAS list", r.Figure9)
	}
	if len(r.Figure10) > 0 {
		writeFigure("Figure 10 — topology-size comparison", r.Figure10)
	}
	if len(r.Figure11) > 0 {
		writeFigure("Figure 11 — partial vs complete deployment", r.Figure11)
	}
	return p.err
}

type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}
