package report

import (
	"strings"
	"testing"
)

func TestRunSimulationOnly(t *testing.T) {
	rep, err := Run(Options{
		Seed:            42,
		MaxAttackerPct:  10,
		SkipMeasurement: true,
		ColdStart:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary != nil {
		t.Error("measurement ran despite skip")
	}
	if len(rep.Figure9) != 2 || len(rep.Figure10) != 3 || len(rep.Figure11) != 2 {
		t.Fatalf("sweep counts: %d/%d/%d", len(rep.Figure9), len(rep.Figure10), len(rep.Figure11))
	}
	// Detection must beat normal BGP at every rendered point.
	for _, res := range rep.Figure9 {
		for _, pt := range res.Points {
			if pt.MeanFalsePct[1] > pt.MeanFalsePct[0] {
				t.Errorf("detection worse than normal at %d attackers", pt.NumAttackers)
			}
		}
	}

	var sb strings.Builder
	if err := rep.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	md := sb.String()
	for _, want := range []string{
		"# MOAS detection",
		"Figure 9",
		"Figure 10",
		"Figure 11",
		"46-AS topology",
		"Full MOAS Detection",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	if strings.Contains(md, "Measurement study") {
		t.Error("markdown contains the skipped measurement section")
	}
}

func TestRunMeasurementOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1279-day series; skipped with -short")
	}
	rep, err := Run(Options{SkipSimulation: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary == nil {
		t.Fatal("no measurement summary")
	}
	var sb strings.Builder
	if err := rep.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Measurement study") {
		t.Error("markdown missing the measurement section")
	}
	if strings.Contains(sb.String(), "Figure 9") {
		t.Error("markdown contains skipped simulation sections")
	}
}
