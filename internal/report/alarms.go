package report

import (
	"fmt"
	"io"

	"repro/internal/experiment"
	"repro/internal/topology"
	"repro/internal/trace"
)

// AlarmStudy replays one hijack on the 25-AS topology under full MOAS
// detection with a flight recorder attached and returns the forensic
// bundles the detecting ASes captured. Bundles are in alarm order and
// carry virtual timestamps, so the same seed yields the same bundles.
// With withROAs the victim prefix is covered by ROAs for its valid
// origin, so ROV cross-validation classes every bundle likely-hijack;
// without, bundles carry the MOAS-provenance classes.
func AlarmStudy(seed int64, forge, withROAs bool) ([]trace.AlarmBundle, error) {
	set, err := topology.BuildPaperTopologies(seed)
	if err != nil {
		return nil, err
	}
	scens, err := experiment.Selections(set.T25, 1, 1, 1, 1, seed)
	if err != nil {
		return nil, err
	}
	coverage := 0.0
	if withROAs {
		coverage = 1
	}
	rec := trace.NewRecorder(8192, trace.WithoutWallClock())
	if _, err := experiment.Run(experiment.RunConfig{
		Topology:          set.T25,
		Scenario:          scens[0],
		Detection:         experiment.DetectionFull,
		ForgeSupersetList: forge,
		ROACoverage:       coverage,
		Recorder:          rec,
	}); err != nil {
		return nil, err
	}
	return rec.Alarms(), nil
}

// WriteAlarmTable renders forensic bundles as an aligned operator
// table: one row per alarm with the detecting AS, the offending
// announcement's provenance, and the competing MOAS lists, followed by
// the full per-bundle forensics.
func WriteAlarmTable(w io.Writer, bundles []trace.AlarmBundle) error {
	if len(bundles) == 0 {
		_, err := fmt.Fprintln(w, "no MOAS alarms captured")
		return err
	}
	header := fmt.Sprintf("%-3s %-11s %-18s %-8s %-16s %-7s %-7s %-22s %s",
		"id", "virtual", "prefix", "verdict", "class", "node", "origin", "lists (exist/recv)", "path")
	fmt.Fprintln(w, header)
	for i := range bundles {
		b := &bundles[i]
		lists := fmt.Sprintf("%v/%v", b.Existing, b.Received)
		class := b.Class
		if class == "" {
			class = "-"
		}
		if _, err := fmt.Fprintf(w, "%-3d %-11s %-18s %-8s %-16s AS%-5d AS%-5d %-22s %v\n",
			b.ID, virtualStamp(b), b.Prefix, b.Verdict, class, b.Node, b.Origin, lists, b.Path); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	var buf []byte
	for i := range bundles {
		buf = trace.AppendBundleText(buf[:0], &bundles[i])
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func virtualStamp(b *trace.AlarmBundle) string {
	return fmt.Sprintf("%dms", b.VNanos/1e6)
}
