package collector

import (
	"net"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/monitor"
	"repro/internal/speaker"
)

var prefix = astypes.MustPrefix(0x83b30000, 16)

func newCollector(t *testing.T) *Collector {
	t.Helper()
	c := New(Config{RouterID: 999})
	t.Cleanup(func() { c.Close() })
	return c
}

func newPeerSpeaker(t *testing.T, asn astypes.ASN) *speaker.Speaker {
	t.Helper()
	s, err := speaker.New(speaker.Config{AS: asn, RouterID: uint32(asn)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// peerWithCollector links a speaker to the collector over loopback TCP.
func peerWithCollector(t *testing.T, c *Collector, s *speaker.Speaker) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Listen(ln)
	if err := s.Connect(ln.Addr().String(), CollectorASN); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, p := range c.Peers() {
			if p == s.AS() {
				return true
			}
		}
		return false
	}, "collector peering")
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestCollectorArchivesAnnouncements(t *testing.T) {
	c := newCollector(t)
	s1 := newPeerSpeaker(t, 4)
	peerWithCollector(t, c, s1)

	s1.Originate(prefix, core.NewList(4))
	waitFor(t, func() bool { return len(c.RoutesFrom(4)) == 1 }, "announcement archived")

	dump := c.Snapshot(time.Date(2001, 4, 6, 0, 0, 0, 0, time.UTC))
	if len(dump.Entries) != 1 {
		t.Fatalf("snapshot entries = %d", len(dump.Entries))
	}
	if dump.Entries[0].Origin() != 4 {
		t.Errorf("archived origin = %v", dump.Entries[0].Origin())
	}

	// Withdrawal clears the archive.
	s1.WithdrawLocal(prefix)
	waitFor(t, func() bool { return len(c.RoutesFrom(4)) == 0 }, "withdrawal archived")
	if d2 := c.Snapshot(time.Now()); len(d2.Entries) != 0 {
		t.Errorf("post-withdrawal snapshot entries = %d", len(d2.Entries))
	}
	if d3 := c.Snapshot(time.Now()); d3.Day != 2 {
		t.Errorf("snapshot day counter = %d", d3.Day)
	}
}

// TestCollectorFeedsMeasurementPipeline is the full live-to-measurement
// loop: speakers announce over real BGP sessions, the collector
// snapshots, and the §3 analysis counts the MOAS case.
func TestCollectorFeedsMeasurementPipeline(t *testing.T) {
	c := newCollector(t)
	s1 := newPeerSpeaker(t, 4)
	s2 := newPeerSpeaker(t, 226)
	peerWithCollector(t, c, s1)
	peerWithCollector(t, c, s2)

	list := core.NewList(4, 226)
	s1.Originate(prefix, list)
	s2.Originate(prefix, list)
	waitFor(t, func() bool {
		return len(c.RoutesFrom(4)) == 1 && len(c.RoutesFrom(226)) == 1
	}, "both origins archived")

	dump := c.Snapshot(time.Now())
	analysis := measure.NewAnalysis()
	analysis.Observe(dump)
	if got := analysis.Daily()[0].Cases; got != 1 {
		t.Errorf("measurement saw %d MOAS cases, want 1", got)
	}

	// And the off-line monitor sees a consistent (valid) MOAS: the two
	// announcements carry identical lists, so no alarm.
	mon := monitor.New()
	mon.ObserveDump("collector", dump)
	if alarms := mon.Alarms(); len(alarms) != 0 {
		t.Errorf("valid MOAS raised %d alarms via the collector", len(alarms))
	}
}

// TestCollectorMonitorCatchesLiveHijack closes the loop the paper's
// off-line deployment path describes: a hijack on the live mesh is
// caught by monitoring the collector's archive.
func TestCollectorMonitorCatchesLiveHijack(t *testing.T) {
	c := newCollector(t)
	s1 := newPeerSpeaker(t, 4)
	s2 := newPeerSpeaker(t, 52)
	peerWithCollector(t, c, s1)
	peerWithCollector(t, c, s2)

	s1.Originate(prefix, core.List{})
	s2.Originate(prefix, core.List{}) // the hijack
	waitFor(t, func() bool {
		return len(c.RoutesFrom(4)) == 1 && len(c.RoutesFrom(52)) == 1
	}, "both announcements archived")

	mon := monitor.New()
	mon.ObserveDump("collector", c.Snapshot(time.Now()))
	if len(mon.Alarms()) == 0 {
		t.Error("hijack not flagged from the collector archive")
	}
	cases := mon.MOASCases()
	if len(cases) != 1 || len(cases[0].Origins) != 2 {
		t.Errorf("cases = %+v", cases)
	}
}

func TestCollectorPeerDownCleansState(t *testing.T) {
	c := newCollector(t)
	s1 := newPeerSpeaker(t, 4)
	peerWithCollector(t, c, s1)
	s1.Originate(prefix, core.List{})
	waitFor(t, func() bool { return len(c.RoutesFrom(4)) == 1 }, "announcement archived")

	s1.Close()
	waitFor(t, func() bool { return len(c.Peers()) == 0 }, "peer removed")
	if got := len(c.RoutesFrom(4)); got != 0 {
		t.Errorf("routes survived peer teardown: %d", got)
	}
}
