package collector

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/monitor"
	"repro/internal/routegen"
	"repro/internal/telemetry"
)

// Archiver periodically snapshots a Collector to dump files on disk —
// the daily table-dump archive of the real Route Views server — and
// optionally runs each snapshot through the off-line monitor, logging
// alarms as they appear.
type Archiver struct {
	collector *Collector
	dir       string
	interval  time.Duration
	monitor   *monitor.Monitor
	onAlarm   func(monitor.Alarm)
	now       func() time.Time

	// Archive instrumentation, registered on the collector's registry.
	dumpsWritten  *telemetry.Counter
	bytesArchived *telemetry.Counter
	writeErrors   *telemetry.Counter

	mu       sync.Mutex
	written  []string // guarded by mu
	seen     int      // alarms already reported; guarded by mu
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	started  bool // guarded by mu
}

// ArchiverOption configures an Archiver.
type ArchiverOption interface {
	apply(*Archiver)
}

type archMonitorOption struct {
	m  *monitor.Monitor
	fn func(monitor.Alarm)
}

func (o archMonitorOption) apply(a *Archiver) {
	a.monitor = o.m
	a.onAlarm = o.fn
}

// WithMonitor checks every snapshot through mon and invokes onAlarm for
// each new alarm.
func WithMonitor(mon *monitor.Monitor, onAlarm func(monitor.Alarm)) ArchiverOption {
	return archMonitorOption{m: mon, fn: onAlarm}
}

type clockOption func() time.Time

func (o clockOption) apply(a *Archiver) { a.now = o }

// WithClock injects a time source (tests).
func WithClock(now func() time.Time) ArchiverOption {
	return clockOption(now)
}

// NewArchiver builds an archiver writing snapshots of c into dir every
// interval.
func NewArchiver(c *Collector, dir string, interval time.Duration, opts ...ArchiverOption) (*Archiver, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("collector: archive interval %v", interval)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("collector: archive dir: %w", err)
	}
	a := &Archiver{
		collector: c,
		dir:       dir,
		interval:  interval,
		now:       time.Now,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		dumpsWritten: c.reg.Counter("archiver_dumps_written_total",
			"Snapshot dump files written to the archive directory."),
		bytesArchived: c.reg.Counter("archiver_bytes_archived_total",
			"Bytes of dump data written to the archive directory."),
		writeErrors: c.reg.Counter("archiver_write_errors_total",
			"Snapshot writes that failed (disk trouble; the next tick retries)."),
	}
	for _, o := range opts {
		o.apply(a)
	}
	return a, nil
}

// SnapshotNow takes and writes one snapshot immediately, returning the
// file path.
func (a *Archiver) SnapshotNow() (string, error) {
	name, err := a.snapshotNow()
	if err != nil {
		a.writeErrors.Inc()
	}
	return name, err
}

func (a *Archiver) snapshotNow() (string, error) {
	d := a.collector.Snapshot(a.now())
	name := filepath.Join(a.dir, fmt.Sprintf("dump-%05d-%s.txt",
		d.Day, d.Date.UTC().Format("20060102T150405Z")))
	f, err := os.Create(name)
	if err != nil {
		return "", fmt.Errorf("collector: create snapshot: %w", err)
	}
	// Count archived bytes where they leave the process, so the metric
	// covers exactly what landed in the dump file.
	bw := bufio.NewWriter(f)
	cw := &countingWriter{w: bw}
	if err := routegen.WriteDump(cw, d); err != nil {
		f.Close()
		return "", err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	a.dumpsWritten.Inc()
	a.bytesArchived.Add(uint64(cw.n))
	a.mu.Lock()
	a.written = append(a.written, name)
	a.mu.Unlock()
	a.checkSnapshot(d)
	return name, nil
}

// countingWriter counts bytes successfully handed to the underlying
// writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (a *Archiver) checkSnapshot(d *routegen.Dump) {
	if a.monitor == nil {
		return
	}
	a.monitor.ObserveDump("collector", d)
	if a.onAlarm == nil {
		return
	}
	alarms := a.monitor.Alarms()
	a.mu.Lock()
	fresh := alarms[a.seen:]
	a.seen = len(alarms)
	a.mu.Unlock()
	for _, alarm := range fresh {
		a.onAlarm(alarm)
	}
}

// Start begins periodic snapshotting; stop with Close. Start is
// one-shot.
func (a *Archiver) Start() error {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return fmt.Errorf("collector: archiver already started")
	}
	a.started = true
	a.mu.Unlock()
	go func() {
		defer close(a.done)
		ticker := time.NewTicker(a.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if _, err := a.SnapshotNow(); err != nil {
					// Disk trouble should not kill the collector; the
					// next tick retries.
					continue
				}
			case <-a.stop:
				return
			}
		}
	}()
	return nil
}

// Written returns the snapshot files produced so far.
func (a *Archiver) Written() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.written))
	copy(out, a.written)
	return out
}

// Close stops the periodic snapshotting (if started) and waits for the
// worker to exit.
func (a *Archiver) Close() error {
	a.stopOnce.Do(func() { close(a.stop) })
	a.mu.Lock()
	started := a.started
	a.mu.Unlock()
	if started {
		<-a.done
	}
	return nil
}
