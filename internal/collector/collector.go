// Package collector implements a Route-Views-style route collector: a
// passive BGP speaker that peers with operational speakers, never
// advertises anything, and periodically snapshots its Adj-RIB-Ins as
// table dumps in the routegen exchange format. It is the live-plane
// source for the measurement pipeline (internal/measure) and the
// off-line monitor (internal/monitor) — the role the Oregon RouteViews
// server plays for the paper (§3.1, §5.1).
package collector

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/astypes"
	"repro/internal/obs"
	"repro/internal/routegen"
	"repro/internal/session"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// CollectorASN is the conventional AS number of the collector's peer
// point (Route Views uses AS 6447).
const CollectorASN astypes.ASN = 6447

// Config parameterizes a Collector.
type Config struct {
	// AS defaults to CollectorASN.
	AS astypes.ASN
	// RouterID identifies the collector in OPENs.
	RouterID uint32
	// HoldTime for peering sessions (zero selects the session default).
	HoldTime time.Duration
	// Telemetry, if set, is the registry the collector (and its
	// sessions and archiver) instruments itself on; nil creates a
	// private "moas" registry. Registry() exposes whichever is in use.
	Telemetry *telemetry.Registry
	// Trace, if set, is the flight recorder the collector's sessions
	// record message-received events on.
	Trace *trace.Recorder
	// Obs, if set, records per-stage detection latency: sessions stamp
	// ingest at the wire reader and the collector crosses the RIB stage
	// after mirroring each UPDATE.
	Obs *obs.Recorder
}

// metrics is the collector's instrumentation.
type metrics struct {
	updatesIn     *telemetry.Counter
	withdrawalsIn *telemetry.Counter
	peers         *telemetry.Gauge
	snapshots     *telemetry.Counter
	session       *session.Metrics
}

func newMetrics(r *telemetry.Registry) *metrics {
	return &metrics{
		updatesIn: r.Counter("collector_updates_in_total",
			"UPDATE messages ingested from peers."),
		withdrawalsIn: r.Counter("collector_withdrawals_in_total",
			"Withdrawn prefixes ingested."),
		peers: r.Gauge("collector_peers",
			"Connected peer sessions."),
		snapshots: r.Counter("collector_snapshots_total",
			"Table snapshots assembled."),
		session: session.NewMetrics(r),
	}
}

// route is the collector's view of one announcement from one peer.
type route struct {
	path        astypes.ASPath
	communities []astypes.Community
}

// Collector is a passive multi-peer route archive.
type Collector struct {
	cfg Config
	reg *telemetry.Registry
	met *metrics

	mu    sync.Mutex
	peers map[astypes.ASN]*session.Session // guarded by mu
	// rib[peer][prefix] mirrors each peer's announcements. Guarded by mu.
	rib       map[astypes.ASN]map[astypes.Prefix]route
	snapshots int  // guarded by mu
	closed    bool // guarded by mu

	wg        sync.WaitGroup
	listeners []net.Listener
}

// New builds a collector.
func New(cfg Config) *Collector {
	if cfg.AS == astypes.ASNNone {
		cfg.AS = CollectorASN
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry("moas")
	}
	return &Collector{
		cfg:   cfg,
		reg:   reg,
		met:   newMetrics(reg),
		peers: make(map[astypes.ASN]*session.Session),
		rib:   make(map[astypes.ASN]map[astypes.Prefix]route),
	}
}

// Registry returns the telemetry registry the collector instruments
// itself on (the configured one, or the private default).
func (c *Collector) Registry() *telemetry.Registry { return c.reg }

// handler adapts session events for one peer.
type handler struct {
	c *Collector
}

// HandleUpdate implements session.Handler.
func (h handler) HandleUpdate(peer astypes.ASN, u *wire.Update) {
	h.c.met.updatesIn.Inc()
	h.c.met.withdrawalsIn.Add(uint64(len(u.Withdrawn)))
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	table := h.c.rib[peer]
	if table == nil {
		table = make(map[astypes.Prefix]route)
		h.c.rib[peer] = table
	}
	for _, w := range u.Withdrawn {
		delete(table, w)
	}
	if len(u.NLRI) == 0 {
		return
	}
	for _, prefix := range u.NLRI {
		table[prefix] = route{
			path:        u.Attrs.ASPath.Clone(),
			communities: append([]astypes.Community(nil), u.Attrs.Communities...),
		}
	}
}

// HandleUpdateStamp is the stage-timed delivery path: the RIB-mirror
// stage crossing lands in the collector's obs recorder.
func (h handler) HandleUpdateStamp(peer astypes.ASN, u *wire.Update, st *obs.Stamp) {
	h.HandleUpdate(peer, u)
	h.c.cfg.Obs.Cross(st, obs.StageRIB)
}

// Inject feeds one UPDATE into the collector's RIB as if peer had sent
// it over a session — the entry point MRT replays and streaming-feed
// stages use to reach snapshots without a TCP peering. The update is
// cloned on ingest, so u may alias decoder scratch.
func (c *Collector) Inject(peer astypes.ASN, u *wire.Update) {
	handler{c: c}.HandleUpdate(peer, u)
}

// HandleDown implements session.Handler.
func (h handler) HandleDown(peer astypes.ASN, err error) {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	if _, ok := h.c.peers[peer]; ok {
		h.c.met.peers.Dec()
	}
	delete(h.c.peers, peer)
	delete(h.c.rib, peer)
}

// AddPeerConn runs the BGP handshake on conn and starts collecting from
// the peer. The collector accepts any peer AS.
func (c *Collector) AddPeerConn(conn net.Conn) (astypes.ASN, error) {
	sess, err := session.Establish(conn, session.Config{
		LocalAS:  c.cfg.AS,
		LocalID:  c.cfg.RouterID,
		HoldTime: c.cfg.HoldTime,
		Handler:  handler{c: c},
		Metrics:  c.met.session,
		Trace:    c.cfg.Trace,
		Obs:      c.cfg.Obs,
	})
	if err != nil {
		return astypes.ASNNone, fmt.Errorf("collector: establish: %w", err)
	}
	got := sess.PeerAS()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		sess.Close()
		return astypes.ASNNone, fmt.Errorf("collector closed")
	}
	if _, dup := c.peers[got]; dup {
		sess.Close()
		return astypes.ASNNone, fmt.Errorf("collector: duplicate peer AS %s", got)
	}
	c.peers[got] = sess
	c.met.peers.Inc()
	return got, nil
}

// Connect dials a peer.
func (c *Collector) Connect(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("collector: dial %s: %w", addr, err)
	}
	if _, err := c.AddPeerConn(conn); err != nil {
		conn.Close()
		return err
	}
	return nil
}

// Listen accepts inbound peerings until the collector is closed.
func (c *Collector) Listen(ln net.Listener) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return
	}
	c.listeners = append(c.listeners, ln)
	// Add while still holding mu with closed false: Close sets closed
	// under mu before it Waits, so the Add cannot race the Wait.
	c.wg.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				if _, err := c.AddPeerConn(conn); err != nil {
					conn.Close()
				}
			}()
		}
	}()
}

// Peers returns the connected peer ASNs in ascending order.
func (c *Collector) Peers() []astypes.ASN {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]astypes.ASN, 0, len(c.peers))
	for a := range c.peers {
		out = append(out, a)
	}
	return astypes.SortASNs(out)
}

// Snapshot assembles the current multi-peer view as one table dump, in
// the same exchange format the synthetic archive uses: one entry per
// (peer, prefix) announcement. Day numbers count snapshots taken.
func (c *Collector) Snapshot(at time.Time) *routegen.Dump {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := &routegen.Dump{Day: c.snapshots, Date: at}
	c.snapshots++
	c.met.snapshots.Inc()
	peerASNs := make([]astypes.ASN, 0, len(c.rib))
	for a := range c.rib {
		peerASNs = append(peerASNs, a)
	}
	astypes.SortASNs(peerASNs)
	for _, peer := range peerASNs {
		table := c.rib[peer]
		prefixes := make([]astypes.Prefix, 0, len(table))
		for p := range table {
			prefixes = append(prefixes, p)
		}
		sortPrefixes(prefixes)
		for _, prefix := range prefixes {
			d.Entries = append(d.Entries, routegen.Entry{
				Prefix:      prefix,
				Path:        table[prefix].path.Clone(),
				Communities: append([]astypes.Community(nil), table[prefix].communities...),
			})
		}
	}
	return d
}

// RoutesFrom returns the collector's view of one peer's table: prefix
// to (path, communities), copied.
func (c *Collector) RoutesFrom(peer astypes.ASN) map[astypes.Prefix]astypes.ASPath {
	c.mu.Lock()
	defer c.mu.Unlock()
	table := c.rib[peer]
	out := make(map[astypes.Prefix]astypes.ASPath, len(table))
	for p, r := range table {
		out[p] = r.path.Clone()
	}
	return out
}

// Close tears down all sessions and listeners.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	listeners := c.listeners
	sessions := make([]*session.Session, 0, len(c.peers))
	for _, s := range c.peers {
		sessions = append(sessions, s)
	}
	c.mu.Unlock()
	for _, ln := range listeners {
		ln.Close()
	}
	for _, s := range sessions {
		s.Close()
	}
	c.wg.Wait()
	return nil
}

func sortPrefixes(ps []astypes.Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })
}
