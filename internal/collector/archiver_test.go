package collector

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/routegen"
)

func TestArchiverSnapshotNow(t *testing.T) {
	c := newCollector(t)
	s := newPeerSpeaker(t, 4)
	peerWithCollector(t, c, s)
	s.Originate(prefix, core.NewList(4))
	waitFor(t, func() bool { return len(c.RoutesFrom(4)) == 1 }, "route archived")

	dir := t.TempDir()
	fixed := time.Date(2001, 4, 6, 12, 0, 0, 0, time.UTC)
	arch, err := NewArchiver(c, dir, time.Hour, WithClock(func() time.Time { return fixed }))
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()

	name, err := arch.SnapshotNow()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := routegen.ReadDump(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Entries) != 1 || d.Entries[0].Origin() != 4 {
		t.Errorf("snapshot entries = %+v", d.Entries)
	}
	// The dump exchange format stores dates at day precision.
	if got, want := d.Date.Format("2006-01-02"), fixed.Format("2006-01-02"); got != want {
		t.Errorf("snapshot date = %s, want %s", got, want)
	}
	if got := arch.Written(); len(got) != 1 || got[0] != name {
		t.Errorf("Written = %v", got)
	}
	if filepath.Dir(name) != dir {
		t.Errorf("snapshot outside dir: %s", name)
	}
}

func TestArchiverPeriodicAndMonitor(t *testing.T) {
	c := newCollector(t)
	origin := newPeerSpeaker(t, 4)
	attacker := newPeerSpeaker(t, 52)
	peerWithCollector(t, c, origin)
	peerWithCollector(t, c, attacker)
	origin.Originate(prefix, core.List{})
	attacker.Originate(prefix, core.List{})
	waitFor(t, func() bool {
		return len(c.RoutesFrom(4)) == 1 && len(c.RoutesFrom(52)) == 1
	}, "both routes archived")

	alarmCh := make(chan monitor.Alarm, 8)
	arch, err := NewArchiver(c, t.TempDir(), 20*time.Millisecond,
		WithMonitor(monitor.New(), func(a monitor.Alarm) { alarmCh <- a }))
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.Start(); err != nil {
		t.Fatal(err)
	}
	if err := arch.Start(); err == nil {
		t.Error("double Start accepted")
	}
	select {
	case a := <-alarmCh:
		if a.Conflict.Prefix != prefix {
			t.Errorf("alarm = %+v", a)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("periodic snapshot never raised the alarm")
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
	if len(arch.Written()) == 0 {
		t.Error("no snapshots written")
	}
}

func TestArchiverValidatesInterval(t *testing.T) {
	c := newCollector(t)
	if _, err := NewArchiver(c, t.TempDir(), 0); err == nil {
		t.Error("zero interval accepted")
	}
}
