package collector

import (
	"net"
	"sync"
	"testing"
)

// TestListenCloseRace hammers the Listen/Close window: the accept
// goroutine's wg.Add must not race Close's wg.Wait. Run under -race.
func TestListenCloseRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		c := New(Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			c.Listen(ln)
		}()
		go func() {
			defer wg.Done()
			c.Close()
		}()
		wg.Wait()
		c.Close()
		ln.Close()
	}
}
