package core

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/astypes"
)

var testPrefix = astypes.MustPrefix(0x83b30000, 16)

func TestNewListCanonicalizes(t *testing.T) {
	l := NewList(5, 1, 5, 3)
	if got := l.String(); got != "{1, 3, 5}" {
		t.Errorf("String() = %q", got)
	}
	if l.Len() != 3 {
		t.Errorf("Len() = %d", l.Len())
	}
	if !l.Contains(3) || l.Contains(4) {
		t.Error("Contains misbehaves")
	}
}

func TestListEqualIsSetEquality(t *testing.T) {
	// "The order in the list may differ, but the set of ASes included
	// in each route announcement must be identical" (§4.2).
	a := NewList(1, 2)
	b := NewList(2, 1)
	c := NewList(1, 2, 3)
	if !a.Equal(b) {
		t.Error("order must not matter")
	}
	if a.Equal(c) || c.Equal(a) {
		t.Error("different sets must differ")
	}
	if !(List{}).Equal(List{}) {
		t.Error("empty lists are equal")
	}
	if a.Equal(List{}) {
		t.Error("non-empty != empty")
	}
}

func TestListCommunitiesRoundTrip(t *testing.T) {
	l := NewList(4, 226)
	comms := l.Communities()
	if len(comms) != 2 {
		t.Fatalf("Communities() len = %d", len(comms))
	}
	for _, c := range comms {
		if c.Value() != MLVal {
			t.Errorf("community %v lacks MLVal", c)
		}
	}
	back, has := FromCommunities(comms)
	if !has || !back.Equal(l) {
		t.Errorf("FromCommunities = %v, %v", back, has)
	}
}

func TestFromCommunitiesIgnoresOthers(t *testing.T) {
	comms := []astypes.Community{
		astypes.NewCommunity(701, 666), // unrelated community
		astypes.NewCommunity(4, MLVal),
	}
	l, has := FromCommunities(comms)
	if !has || !l.Equal(NewList(4)) {
		t.Errorf("FromCommunities = %v, %v", l, has)
	}
	l, has = FromCommunities([]astypes.Community{astypes.NewCommunity(701, 666)})
	if has || !l.Empty() {
		t.Errorf("no MOAS communities should mean hasList=false; got %v, %v", l, has)
	}
}

func TestImplicitListRule(t *testing.T) {
	// "If a route does not contain a MOAS list, it will be treated as
	// if it carries a MOAS list containing the origin AS" (§4.2 fn 3).
	eff, err := EffectiveList(nil, astypes.NewSeqPath(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !eff.Equal(ImplicitList(3)) {
		t.Errorf("EffectiveList = %v, want {3}", eff)
	}
	// Explicit list wins over implicit.
	eff, err = EffectiveList(NewList(7, 8).Communities(), astypes.NewSeqPath(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !eff.Equal(NewList(7, 8)) {
		t.Errorf("EffectiveList = %v, want {7, 8}", eff)
	}
	// No list and no origin is an error.
	if _, err := EffectiveList(nil, astypes.ASPath{}); err == nil {
		t.Error("EffectiveList on empty path should fail")
	}
}

func TestWithOrigin(t *testing.T) {
	base := NewList(1, 2)
	forged := base.WithOrigin(9)
	if !forged.Equal(NewList(1, 2, 9)) {
		t.Errorf("WithOrigin = %v", forged)
	}
	if !base.Equal(NewList(1, 2)) {
		t.Error("WithOrigin must not mutate the receiver")
	}
}

func TestStripMOAS(t *testing.T) {
	other := astypes.NewCommunity(701, 666)
	comms := append(NewList(1, 2).Communities(), other)
	stripped := StripMOAS(comms)
	if len(stripped) != 1 || stripped[0] != other {
		t.Errorf("StripMOAS = %v", stripped)
	}
	if StripMOAS(nil) != nil {
		t.Error("StripMOAS(nil) should be nil")
	}
}

func TestOriginsCopyIsDefensive(t *testing.T) {
	l := NewList(1, 2)
	got := l.Origins()
	got[0] = 99
	if !l.Equal(NewList(1, 2)) {
		t.Error("Origins() must return a copy")
	}
}

func TestListSetSemanticsQuick(t *testing.T) {
	f := func(a, b []uint16) bool {
		toList := func(in []uint16) List {
			asns := make([]astypes.ASN, len(in))
			for i, v := range in {
				asns[i] = astypes.ASN(v)
			}
			return NewList(asns...)
		}
		la, lb := toList(a), toList(b)
		// Equality must agree with map-based set equality.
		set := func(in []uint16) map[uint16]bool {
			m := make(map[uint16]bool)
			for _, v := range in {
				m[v] = true
			}
			return m
		}
		sa, sb := set(a), set(b)
		same := len(sa) == len(sb)
		if same {
			for k := range sa {
				if !sb[k] {
					same = false
					break
				}
			}
		}
		return la.Equal(lb) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckerFirstAnnouncementAccepted(t *testing.T) {
	c := NewChecker()
	v, conflict := c.Check(Announcement{
		Prefix: testPrefix,
		Path:   astypes.NewSeqPath(2, 4),
	})
	if v != VerdictConsistent || conflict != nil {
		t.Fatalf("first announcement: %v, %v", v, conflict)
	}
	if l, ok := c.ListFor(testPrefix); !ok || !l.Equal(ImplicitList(4)) {
		t.Errorf("recorded list = %v, %v", l, ok)
	}
}

func TestCheckerDetectsConflict(t *testing.T) {
	var alarmed []Conflict
	c := NewChecker(WithAlarmFunc(func(cf Conflict) { alarmed = append(alarmed, cf) }))

	// Valid MOAS: both origins announce the same list.
	list := NewList(1, 2)
	for _, origin := range []astypes.ASN{1, 2} {
		v, _ := c.Check(Announcement{
			Prefix:      testPrefix,
			Path:        astypes.NewSeqPath(9, origin),
			Communities: list.Communities(),
		})
		if v != VerdictConsistent {
			t.Fatalf("valid MOAS flagged: %v", v)
		}
	}

	// The attacker's bare announcement conflicts.
	v, conflict := c.Check(Announcement{
		Prefix:   testPrefix,
		Path:     astypes.NewSeqPath(9, 52),
		FromPeer: 9,
	})
	if v != VerdictConflict || conflict == nil {
		t.Fatalf("attack not detected: %v", v)
	}
	if conflict.Origin != 52 || conflict.FromPeer != 9 {
		t.Errorf("conflict details = %+v", conflict)
	}
	if len(alarmed) != 1 {
		t.Errorf("alarm callback fired %d times", len(alarmed))
	}
	if c.AlarmCount() != 1 {
		t.Errorf("AlarmCount = %d", c.AlarmCount())
	}
}

func TestCheckerOriginNotListed(t *testing.T) {
	c := NewChecker()
	// A route whose own list omits its origin is bogus on its face.
	v, conflict := c.Check(Announcement{
		Prefix:      testPrefix,
		Path:        astypes.NewSeqPath(9, 52),
		Communities: NewList(1, 2).Communities(),
	})
	if v != VerdictOriginNotListed || conflict == nil {
		t.Fatalf("verdict = %v", v)
	}
	// It must not have established list state for the prefix.
	if _, ok := c.ListFor(testPrefix); ok {
		t.Error("bogus route must not establish the prefix list")
	}
}

func TestCheckerForgedSupersetDetected(t *testing.T) {
	c := NewChecker()
	valid := NewList(1, 2)
	if v, _ := c.Check(Announcement{
		Prefix:      testPrefix,
		Path:        astypes.NewSeqPath(1),
		Communities: valid.Communities(),
	}); v != VerdictConsistent {
		t.Fatalf("valid announcement flagged: %v", v)
	}
	forged := valid.WithOrigin(52)
	v, _ := c.Check(Announcement{
		Prefix:      testPrefix,
		Path:        astypes.NewSeqPath(52),
		Communities: forged.Communities(),
	})
	if v != VerdictConflict {
		t.Errorf("forged superset list not detected: %v", v)
	}
}

func TestCheckerForgetAndReset(t *testing.T) {
	c := NewChecker()
	c.Check(Announcement{Prefix: testPrefix, Path: astypes.NewSeqPath(4)})
	c.Forget(testPrefix)
	if _, ok := c.ListFor(testPrefix); ok {
		t.Error("Forget did not clear state")
	}
	c.Check(Announcement{Prefix: testPrefix, Path: astypes.NewSeqPath(4)})
	c.Check(Announcement{Prefix: testPrefix, Path: astypes.NewSeqPath(52)})
	if c.AlarmCount() != 1 {
		t.Fatalf("AlarmCount = %d", c.AlarmCount())
	}
	c.Reset()
	if c.AlarmCount() != 0 {
		t.Error("Reset did not clear alarms")
	}
	if _, ok := c.ListFor(testPrefix); ok {
		t.Error("Reset did not clear lists")
	}
}

func TestCheckerAlarmsAreCopies(t *testing.T) {
	c := NewChecker()
	c.Check(Announcement{Prefix: testPrefix, Path: astypes.NewSeqPath(4)})
	c.Check(Announcement{Prefix: testPrefix, Path: astypes.NewSeqPath(52)})
	a1 := c.Alarms()
	a1[0].Origin = 9999
	a2 := c.Alarms()
	if a2[0].Origin == 9999 {
		t.Error("Alarms() must return copies")
	}
}

func TestCheckerConcurrentUse(t *testing.T) {
	c := NewChecker()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(origin astypes.ASN) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Check(Announcement{
					Prefix: testPrefix,
					Path:   astypes.NewSeqPath(9, origin),
				})
			}
		}(astypes.ASN(i + 1))
	}
	wg.Wait()
	// 8 distinct implicit lists: whichever got there first won; the
	// other 7 origins conflict on every check.
	if got := c.AlarmCount(); got != 7*200 {
		t.Errorf("AlarmCount = %d, want %d", got, 7*200)
	}
}

func TestConflictErrorMessage(t *testing.T) {
	conflict := &Conflict{
		Prefix:   testPrefix,
		Existing: NewList(1, 2),
		Received: NewList(52),
		Origin:   52,
		FromPeer: 9,
	}
	msg := conflict.Error()
	for _, want := range []string{"131.179.0.0/16", "{1, 2}", "{52}", "52", "9"} {
		if !contains(msg, want) {
			t.Errorf("Error() = %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
