package core

import (
	"sync"

	"repro/internal/astypes"
)

// Verdict is the outcome of checking one route announcement against the
// MOAS state a checker has accumulated for the announced prefix.
type Verdict int

// Verdict values.
const (
	// VerdictUnset is the explicit zero value: no check has run. It has
	// its own string ("unset") so a Verdict that was never assigned is
	// visibly distinguishable in serialized forensics — an omitted
	// verdict must not masquerade as a legitimate classification.
	VerdictUnset Verdict = iota
	// VerdictConsistent: the announcement's effective MOAS list agrees
	// with every list previously seen for the prefix (or it is the first
	// announcement).
	VerdictConsistent
	// VerdictConflict: the effective list disagrees with the recorded
	// list; an alarm has been raised.
	VerdictConflict
	// VerdictOriginNotListed: the route's own origin AS is absent from
	// the MOAS list it carries — self-evidently bogus regardless of any
	// other announcement (§4.1: a faulty origin "will not be in p's MOAS
	// list").
	VerdictOriginNotListed
)

func (v Verdict) String() string {
	switch v {
	case VerdictUnset:
		return "unset"
	case VerdictConsistent:
		return "consistent"
	case VerdictConflict:
		return "conflict"
	case VerdictOriginNotListed:
		return "origin-not-listed"
	default:
		return "unknown"
	}
}

// Announcement is the checker's view of one received route: just the
// pieces the MOAS mechanism consults.
type Announcement struct {
	Prefix      astypes.Prefix
	Path        astypes.ASPath
	Communities []astypes.Community
	// AttrList, when non-nil, is a MOAS list carried in the dedicated
	// path attribute (ListAttrCode), pre-decoded by the transport layer.
	// It takes precedence over the community encoding.
	AttrList *List
	FromPeer astypes.ASN // ASNNone for locally originated routes
	// Span is the trace span of the message that carried the
	// announcement (0 when untraced); it flows into any Conflict so
	// alarm forensics can point back at the exact UPDATE.
	Span uint64
}

// effectiveList resolves the announcement's MOAS list with the full
// precedence: dedicated attribute, then communities, then the implicit
// single-origin rule.
func (a Announcement) effectiveList() (List, error) {
	if a.AttrList != nil {
		return *a.AttrList, nil
	}
	return EffectiveList(a.Communities, a.Path)
}

// AlarmFunc receives every conflict the checker detects. The paper
// prescribes generating "an alarm signal; further investigation should
// be conducted" (§4.2); resolution (e.g. a DNS MOASRR lookup,
// internal/dnsval) is deliberately out of the checker's scope.
type AlarmFunc func(Conflict)

// Checker implements the per-router MOAS-list consistency check. It
// remembers, per prefix, the first MOAS list accepted and compares every
// subsequent announcement against it ("single set comparison", §4.2).
//
// Checker is safe for concurrent use; the live speaker consults it from
// multiple session goroutines.
type Checker struct {
	mu     sync.Mutex
	lists  map[astypes.Prefix]List
	alarms []Conflict
	onA    AlarmFunc
}

// CheckerOption configures a Checker.
type CheckerOption interface {
	apply(*Checker)
}

type alarmFuncOption AlarmFunc

func (f alarmFuncOption) apply(c *Checker) { c.onA = AlarmFunc(f) }

// WithAlarmFunc installs a callback invoked synchronously for every
// detected conflict, in addition to the checker's internal alarm log.
func WithAlarmFunc(f AlarmFunc) CheckerOption {
	return alarmFuncOption(f)
}

// NewChecker returns an empty checker.
func NewChecker(opts ...CheckerOption) *Checker {
	c := &Checker{lists: make(map[astypes.Prefix]List)}
	for _, o := range opts {
		o.apply(c)
	}
	return c
}

// Check validates one announcement. The first announcement for a prefix
// establishes its MOAS list ("is simply accepted if this is the first
// and only announcement", §4.2); later announcements must carry an equal
// set. On conflict the alarm is recorded, the callback (if any) runs,
// and the previously established list is retained: the checker trusts
// first-seen state and flags divergence, exactly as the simulation's
// MOAS-capable nodes do.
func (c *Checker) Check(a Announcement) (Verdict, *Conflict) {
	eff, err := a.effectiveList()
	if err != nil {
		// An announcement with no derivable origin cannot be validated;
		// treat as conflicting with anything previously seen.
		eff = List{}
	}
	origin, _ := a.Path.Origin()

	c.mu.Lock()
	defer c.mu.Unlock()
	if !eff.Empty() && !eff.Contains(origin) {
		conflict := Conflict{
			Prefix:   a.Prefix,
			Existing: c.lists[a.Prefix],
			Received: eff,
			Origin:   origin,
			FromPeer: a.FromPeer,
			Span:     a.Span,
			Path:     a.Path.Clone(),
			Verdict:  VerdictOriginNotListed,
		}
		c.alarms = append(c.alarms, conflict)
		if c.onA != nil {
			c.onA(conflict)
		}
		return VerdictOriginNotListed, &conflict
	}
	existing, seen := c.lists[a.Prefix]
	if !seen {
		c.lists[a.Prefix] = eff
		return VerdictConsistent, nil
	}
	if existing.Equal(eff) {
		return VerdictConsistent, nil
	}
	conflict := Conflict{
		Prefix:   a.Prefix,
		Existing: existing,
		Received: eff,
		Origin:   origin,
		FromPeer: a.FromPeer,
		Span:     a.Span,
		Path:     a.Path.Clone(),
		Verdict:  VerdictConflict,
	}
	c.alarms = append(c.alarms, conflict)
	if c.onA != nil {
		c.onA(conflict)
	}
	return VerdictConflict, &conflict
}

// ListFor returns the MOAS list currently recorded for a prefix.
func (c *Checker) ListFor(p astypes.Prefix) (List, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.lists[p]
	return l, ok
}

// Forget drops the recorded state for a prefix, e.g. after all routes to
// it have been withdrawn.
func (c *Checker) Forget(p astypes.Prefix) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.lists, p)
}

// Alarms returns a copy of every conflict recorded so far, in detection
// order.
func (c *Checker) Alarms() []Conflict {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.alarms) == 0 {
		return nil
	}
	out := make([]Conflict, len(c.alarms))
	copy(out, c.alarms)
	return out
}

// AlarmCount returns the number of conflicts recorded so far.
func (c *Checker) AlarmCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.alarms)
}

// Reset clears all recorded lists and alarms.
func (c *Checker) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lists = make(map[astypes.Prefix]List)
	c.alarms = nil
}
