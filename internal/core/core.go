package core
