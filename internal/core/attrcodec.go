package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/astypes"
)

// Alternative MOAS-list encoding: a dedicated optional transitive path
// attribute instead of community values. The paper standardizes on the
// community attribute (§4.2) because it deploys with configuration
// only; the drafts it cites also discuss a dedicated attribute, which
// needs no reserved community value and survives community-stripping
// policies. Both encodings are supported end to end; the attribute form
// rides the codec's unknown-attribute transit path, so unmodified
// speakers forward it untouched.

// ListAttrCode is the path-attribute type code used for the dedicated
// encoding (from the private/experimental range).
const ListAttrCode uint8 = 254

// AttrBytes encodes the list as the attribute value: one big-endian
// 2-octet AS number per entitled origin, ascending.
func (l List) AttrBytes() []byte {
	if len(l.asns) == 0 {
		return nil
	}
	out := make([]byte, 0, 2*len(l.asns))
	for _, a := range l.asns {
		out = binary.BigEndian.AppendUint16(out, uint16(a))
	}
	return out
}

// ListFromAttrBytes decodes an attribute value produced by AttrBytes.
func ListFromAttrBytes(b []byte) (List, error) {
	if len(b) == 0 {
		return List{}, fmt.Errorf("empty MOAS-list attribute")
	}
	if len(b)%2 != 0 {
		return List{}, fmt.Errorf("MOAS-list attribute length %d not a multiple of 2", len(b))
	}
	asns := make([]astypes.ASN, 0, len(b)/2)
	for i := 0; i < len(b); i += 2 {
		asns = append(asns, astypes.ASN(binary.BigEndian.Uint16(b[i:i+2])))
	}
	return NewList(asns...), nil
}
