// Package core implements the paper's primary contribution: the MOAS
// list mechanism for detecting invalid Multiple Origin AS routing
// announcements (Zhao et al., DSN 2002, §4).
//
// The mechanism has three parts, all provided here:
//
//   - A MOAS list — the set of ASes entitled to originate a prefix —
//     encoded into the BGP community attribute as one (ASN : MLVal)
//     community per entitled origin (§4.2).
//   - The implicit-list rule: a route carrying no MOAS list is treated
//     as if it carried a list containing exactly its origin AS (§4.2
//     footnote 3).
//   - The consistency check: all MOAS lists observed for a prefix must
//     be equal as sets; any inconsistency raises an alarm (§4.2), which
//     a Checker records and which policy may translate into dropping the
//     conflicting route.
//
// The package is deliberately independent of any particular BGP engine:
// both the live speaker (internal/speaker) and the event-driven
// simulator (internal/simbgp) plug into the same Checker.
package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/astypes"
)

// MLVal is the reserved low-16-bit community value that marks a
// community as a MOAS-list member (§4.2 "MOAS List Value"). The draft
// referenced by the paper reserves one of the 2^16 values; we use 0xFFDE
// ("MOAS DEtection"), which lies outside the well-known community block.
const MLVal uint16 = 0xffde

// List is a MOAS list: the set of origin ASes entitled to originate a
// prefix. The zero value is the empty list, which is distinct from an
// absent list — use of the implicit-list rule is the caller's choice via
// ImplicitList.
type List struct {
	asns []astypes.ASN // sorted, deduplicated
}

// NewList builds a canonical (sorted, deduplicated) list from the given
// origins. The argument slice is not retained.
func NewList(origins ...astypes.ASN) List {
	if len(origins) == 0 {
		return List{}
	}
	cp := make([]astypes.ASN, len(origins))
	copy(cp, origins)
	return List{asns: astypes.DedupASNs(cp)}
}

// ImplicitList is the list a route without MOAS communities is treated
// as carrying: just its own origin AS (§4.2, footnote 3).
func ImplicitList(origin astypes.ASN) List {
	return List{asns: []astypes.ASN{origin}}
}

// Empty reports whether the list has no members.
func (l List) Empty() bool { return len(l.asns) == 0 }

// Len returns the number of entitled origins.
func (l List) Len() int { return len(l.asns) }

// Origins returns a copy of the member set in ascending order.
func (l List) Origins() []astypes.ASN {
	if len(l.asns) == 0 {
		return nil
	}
	cp := make([]astypes.ASN, len(l.asns))
	copy(cp, l.asns)
	return cp
}

// AppendOrigins appends the member set to dst in ascending order and
// returns it — the allocation-free companion to Origins for callers
// that bring their own scratch (the simulator's intern tables).
func (l List) AppendOrigins(dst []astypes.ASN) []astypes.ASN {
	return append(dst, l.asns...)
}

// Contains reports whether asn is an entitled origin.
func (l List) Contains(asn astypes.ASN) bool {
	for _, a := range l.asns {
		if a == asn {
			return true
		}
		if a > asn {
			return false
		}
	}
	return false
}

// Equal is the paper's consistency predicate: "the same set of ASes
// listed in all the MOAS Lists. The order in the list may differ, but
// the set of ASes included in each route announcement must be identical"
// (§4.2). Lists are kept canonical, so set equality is element equality.
func (l List) Equal(other List) bool {
	if len(l.asns) != len(other.asns) {
		return false
	}
	for i := range l.asns {
		if l.asns[i] != other.asns[i] {
			return false
		}
	}
	return true
}

// WithOrigin returns a new list additionally containing asn; used to
// model an attacker forging a superset list (§4.1: "Although AS 3 could
// attach its own MOAS list that includes AS 1, AS 2, and AS 3...").
func (l List) WithOrigin(asn astypes.ASN) List {
	return NewList(append(l.Origins(), asn)...)
}

// Communities encodes the list into its community-attribute form: one
// (member : MLVal) community per entitled origin, in ascending member
// order (Fig 7).
func (l List) Communities() []astypes.Community {
	if len(l.asns) == 0 {
		return nil
	}
	out := make([]astypes.Community, len(l.asns))
	for i, a := range l.asns {
		out[i] = astypes.NewCommunity(a, MLVal)
	}
	return out
}

// String renders the list as "{1, 2}" for logs and alarms.
func (l List) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range l.asns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte('}')
	return b.String()
}

// FromCommunities extracts the MOAS list carried by a route's community
// attribute, ignoring non-MOAS communities. hasList reports whether any
// MOAS-list community was present at all, so callers can distinguish an
// absent list (apply the implicit rule) from an empty attribute.
func FromCommunities(comms []astypes.Community) (l List, hasList bool) {
	var members []astypes.ASN
	for _, c := range comms {
		if c.Value() == MLVal {
			members = append(members, c.ASN())
		}
	}
	if members == nil {
		return List{}, false
	}
	return NewList(members...), true
}

// EffectiveList resolves the list a route is treated as carrying: the
// explicit list if one is present, otherwise the implicit single-origin
// list (§4.2 footnote 3). A route whose path has no origin (empty
// AS_PATH) yields an empty list and an error.
func EffectiveList(comms []astypes.Community, path astypes.ASPath) (List, error) {
	if l, ok := FromCommunities(comms); ok {
		return l, nil
	}
	origin, ok := path.Origin()
	if !ok {
		return List{}, errors.New("route has neither MOAS list nor origin AS")
	}
	return ImplicitList(origin), nil
}

// StripMOAS removes MOAS-list communities from a community attribute,
// modelling routers that drop optional transitive communities (§4.3).
// Non-MOAS communities are preserved.
func StripMOAS(comms []astypes.Community) []astypes.Community {
	var out []astypes.Community
	for _, c := range comms {
		if c.Value() != MLVal {
			out = append(out, c)
		}
	}
	return out
}

// Conflict describes one detected MOAS-list inconsistency for a prefix.
type Conflict struct {
	Prefix   astypes.Prefix
	Existing List // the list previously accepted for the prefix
	Received List // the inconsistent list on the incoming route
	Origin   astypes.ASN
	FromPeer astypes.ASN // ASNNone when locally originated/unknown
	// Path is the offending route's AS path (owned by the Conflict) and
	// Span the trace span of the UPDATE that carried it; together with
	// Verdict they feed the forensic alarm bundle.
	Path    astypes.ASPath
	Span    uint64
	Verdict Verdict
}

// Error renders a human-readable description; Conflict implements error
// so policy layers can wrap it.
func (c *Conflict) Error() string {
	return fmt.Sprintf("MOAS conflict for %s: origin %s announced list %s, expected %s (learned from AS %s)",
		c.Prefix, c.Origin, c.Received, c.Existing, c.FromPeer)
}
