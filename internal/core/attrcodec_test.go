package core

import (
	"testing"

	"repro/internal/astypes"
)

func TestAttrBytesRoundTrip(t *testing.T) {
	tests := []List{
		NewList(1),
		NewList(1, 2),
		NewList(65535, 1, 700),
	}
	for _, give := range tests {
		got, err := ListFromAttrBytes(give.AttrBytes())
		if err != nil || !got.Equal(give) {
			t.Errorf("roundtrip %v = %v (%v)", give, got, err)
		}
	}
	if (List{}).AttrBytes() != nil {
		t.Error("empty list should encode to nil")
	}
}

func TestListFromAttrBytesErrors(t *testing.T) {
	for _, bad := range [][]byte{nil, {}, {1}, {1, 2, 3}} {
		if _, err := ListFromAttrBytes(bad); err == nil {
			t.Errorf("ListFromAttrBytes(%v) should fail", bad)
		}
	}
	// Duplicates in the wire form canonicalize.
	dup := append(NewList(4).AttrBytes(), NewList(4).AttrBytes()...)
	got, err := ListFromAttrBytes(dup)
	if err != nil || !got.Equal(NewList(4)) {
		t.Errorf("duplicate members = %v (%v)", got, err)
	}
}

func TestCheckerHonorsAttrList(t *testing.T) {
	c := NewChecker()
	attr := NewList(1, 2)
	// The attribute encoding takes precedence over communities.
	v, _ := c.Check(Announcement{
		Prefix:      testPrefix,
		Path:        astypes.NewSeqPath(9, 1),
		Communities: NewList(7).Communities(), // contradicting communities
		AttrList:    &attr,
	})
	if v != VerdictConsistent {
		t.Fatalf("first attr-list announcement: %v", v)
	}
	if l, _ := c.ListFor(testPrefix); !l.Equal(attr) {
		t.Errorf("recorded list = %v, want the attribute one", l)
	}
	// An attribute-encoded hijack conflicts.
	forged := NewList(52)
	v, _ = c.Check(Announcement{
		Prefix:   testPrefix,
		Path:     astypes.NewSeqPath(9, 52),
		AttrList: &forged,
	})
	if v != VerdictConflict {
		t.Errorf("attr-encoded hijack verdict = %v", v)
	}
}

func TestVerdictStrings(t *testing.T) {
	tests := map[Verdict]string{
		VerdictUnset:           "unset",
		VerdictConsistent:      "consistent",
		VerdictConflict:        "conflict",
		VerdictOriginNotListed: "origin-not-listed",
		Verdict(99):            "unknown",
	}
	for v, want := range tests {
		if v.String() != want {
			t.Errorf("Verdict(%d).String() = %q", v, v.String())
		}
	}
}

func TestEmptyListAccessors(t *testing.T) {
	var l List
	if l.Origins() != nil {
		t.Error("empty Origins should be nil")
	}
	if l.Communities() != nil {
		t.Error("empty Communities should be nil")
	}
	if !l.Empty() || l.Len() != 0 {
		t.Error("zero list should be empty")
	}
	c := NewChecker()
	if got := c.Alarms(); got != nil {
		t.Errorf("empty Alarms = %v", got)
	}
}
