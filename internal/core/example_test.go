package core_test

import (
	"fmt"

	"repro/internal/astypes"
	"repro/internal/core"
)

// The basic mechanism: two entitled origins announce the same list; a
// hijacker's bare announcement conflicts via the implicit-list rule.
func ExampleChecker_Check() {
	prefix := astypes.MustPrefix(0x83b30000, 16) // 131.179.0.0/16
	valid := core.NewList(4, 226)
	checker := core.NewChecker()

	// Both legitimate origins attach the identical MOAS list.
	for _, origin := range []astypes.ASN{4, 226} {
		verdict, _ := checker.Check(core.Announcement{
			Prefix:      prefix,
			Path:        astypes.NewSeqPath(701, origin),
			Communities: valid.Communities(),
		})
		fmt.Println("origin", origin, "->", verdict)
	}

	// The hijacker announces without a list: implicitly {52}, which is
	// inconsistent with {4, 226}.
	verdict, conflict := checker.Check(core.Announcement{
		Prefix: prefix,
		Path:   astypes.NewSeqPath(1239, 52),
	})
	fmt.Println("origin 52 ->", verdict)
	fmt.Println(conflict.Error())
	// Output:
	// origin 4 -> consistent
	// origin 226 -> consistent
	// origin 52 -> conflict
	// MOAS conflict for 131.179.0.0/16: origin 52 announced list {52}, expected {4, 226} (learned from AS 0)
}

// MOAS lists are sets: order never matters, membership does.
func ExampleList_Equal() {
	a := core.NewList(4, 226)
	b := core.NewList(226, 4)
	c := a.WithOrigin(52) // a forged superset

	fmt.Println(a.Equal(b))
	fmt.Println(a.Equal(c))
	fmt.Println(c)
	// Output:
	// true
	// false
	// {4, 52, 226}
}

// The community encoding of §4.2: one (ASN : MLVal) value per origin.
func ExampleList_Communities() {
	list := core.NewList(4, 226)
	for _, c := range list.Communities() {
		fmt.Println(c)
	}
	back, has := core.FromCommunities(list.Communities())
	fmt.Println(has, back)
	// Output:
	// 4:65502
	// 226:65502
	// true {4, 226}
}

// A route without any MOAS list is treated as entitling only its own
// origin (§4.2 footnote 3).
func ExampleEffectiveList() {
	path := astypes.NewSeqPath(701, 1239, 4)
	list, _ := core.EffectiveList(nil, path)
	fmt.Println(list)
	// Output:
	// {4}
}
