// Package backoff provides the capped exponential backoff with jitter
// shared by every reconnecting component: the daemon's peer re-dial
// loop and the RIS-Live streaming ingest stage. Centralizing the
// schedule keeps the fleet-desynchronization property (jittered waits)
// uniform across subsystems.
package backoff

import (
	"math/rand"
	"time"
)

// Delay computes the wait before retry attempt n (0-based): exponential
// backoff 2ⁿ·base capped at max, with the final delay drawn uniformly
// from [d/2, d]. The jitter keeps a fleet of clients that lost the same
// remote from synchronizing their retry storms; the cap keeps a
// long-dead remote from pushing retries out indefinitely. A base of
// zero (or less) disables the delay entirely; a cap below the base
// clamps to the base.
func Delay(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	if base <= 0 {
		return 0
	}
	if max < base {
		max = base
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(d-half)+1))
}
