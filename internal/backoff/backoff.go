// Package backoff provides the capped exponential backoff with jitter
// shared by every reconnecting component: the daemon's peer re-dial
// loop and the RIS-Live streaming ingest stage. Centralizing the
// schedule keeps the fleet-desynchronization property (jittered waits)
// uniform across subsystems.
package backoff

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Delay computes the wait before retry attempt n (0-based): exponential
// backoff 2ⁿ·base capped at max, with the final delay drawn uniformly
// from [d/2, d]. The jitter keeps a fleet of clients that lost the same
// remote from synchronizing their retry storms; the cap keeps a
// long-dead remote from pushing retries out indefinitely. A base of
// zero (or less) disables the delay entirely; a cap below the base
// clamps to the base.
func Delay(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	if base <= 0 {
		return 0
	}
	if max < base {
		max = base
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(d-half)+1))
}

// seedCounter disambiguates wall-clock seeds: two Jitters created in
// the same nanosecond still draw distinct sequences.
var seedCounter atomic.Int64

// Jitter is a per-instance jitter source for the Delay schedule. Each
// Jitter owns a seeded *rand.Rand behind a mutex, so concurrent
// goroutines (e.g. the daemon's per-peer re-dial loops) can share one
// instance without contending on — or perturbing — the global math/rand
// state, and a fixed seed reproduces the exact delay sequence in tests.
type Jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewJitter returns a jitter source. A non-zero seed fixes the sequence
// (two Jitters with the same seed produce identical delays); seed 0
// draws a distinct wall-clock-derived seed per instance. The wall-clock
// read lives here, in backoff, so packages under the determinism
// analyzer's scope can construct default-seeded Jitters without
// touching time.Now themselves.
func NewJitter(seed int64) *Jitter {
	if seed == 0 {
		seed = time.Now().UnixNano() ^ seedCounter.Add(1)<<32
	}
	return &Jitter{rng: rand.New(rand.NewSource(seed))}
}

// Delay computes the capped-exponential jittered wait for attempt n
// (0-based), with the same schedule as the package-level Delay, drawing
// from the instance's locked source.
func (j *Jitter) Delay(base, max time.Duration, attempt int) time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Delay(base, max, attempt, j.rng)
}
