package backoff

import (
	"math/rand"
	"testing"
	"time"
)

func TestDelaySchedule(t *testing.T) {
	const (
		base = time.Second
		max  = 8 * time.Second
	)
	rng := rand.New(rand.NewSource(1))
	// Every attempt's delay must land in [d/2, d] where d doubles from
	// base until the cap; sample repeatedly to exercise the jitter.
	for attempt := 0; attempt < 10; attempt++ {
		want := base << attempt
		if want > max || want <= 0 {
			want = max
		}
		for i := 0; i < 50; i++ {
			got := Delay(base, max, attempt, rng)
			if got < want/2 || got > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, got, want/2, want)
			}
		}
	}
	// The jitter must actually vary (not return a constant).
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[Delay(base, max, 0, rng)] = true
	}
	if len(seen) < 2 {
		t.Error("Delay produced no jitter")
	}
	// Degenerate inputs.
	if Delay(0, max, 3, rng) != 0 {
		t.Error("zero base should disable the delay")
	}
	if got := Delay(base, 0, 4, rng); got < base/2 || got > base {
		t.Errorf("cap below base should clamp to base, got %v", got)
	}
}
