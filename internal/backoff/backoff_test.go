package backoff

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestDelaySchedule(t *testing.T) {
	const (
		base = time.Second
		max  = 8 * time.Second
	)
	rng := rand.New(rand.NewSource(1))
	// Every attempt's delay must land in [d/2, d] where d doubles from
	// base until the cap; sample repeatedly to exercise the jitter.
	for attempt := 0; attempt < 10; attempt++ {
		want := base << attempt
		if want > max || want <= 0 {
			want = max
		}
		for i := 0; i < 50; i++ {
			got := Delay(base, max, attempt, rng)
			if got < want/2 || got > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, got, want/2, want)
			}
		}
	}
	// The jitter must actually vary (not return a constant).
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[Delay(base, max, 0, rng)] = true
	}
	if len(seen) < 2 {
		t.Error("Delay produced no jitter")
	}
	// Degenerate inputs.
	if Delay(0, max, 3, rng) != 0 {
		t.Error("zero base should disable the delay")
	}
	if got := Delay(base, 0, 4, rng); got < base/2 || got > base {
		t.Errorf("cap below base should clamp to base, got %v", got)
	}
}

func TestJitterSeededReproducibility(t *testing.T) {
	const (
		base = time.Second
		max  = 30 * time.Second
	)
	a, b := NewJitter(42), NewJitter(42)
	for attempt := 0; attempt < 16; attempt++ {
		da, db := a.Delay(base, max, attempt), b.Delay(base, max, attempt)
		if da != db {
			t.Fatalf("attempt %d: same-seed Jitters diverged: %v vs %v", attempt, da, db)
		}
		want := base << attempt
		if want > max || want <= 0 {
			want = max
		}
		if da < want/2 || da > want {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, da, want/2, want)
		}
	}
	// Distinct seeds (and distinct default-seeded instances) must not
	// replay the same sequence.
	differs := func(x, y *Jitter) bool {
		for attempt := 0; attempt < 8; attempt++ {
			if x.Delay(base, max, attempt) != y.Delay(base, max, attempt) {
				return true
			}
		}
		return false
	}
	if !differs(NewJitter(1), NewJitter(2)) {
		t.Error("seeds 1 and 2 produced identical delay sequences")
	}
	if !differs(NewJitter(0), NewJitter(0)) {
		t.Error("two default-seeded Jitters produced identical delay sequences")
	}
}

func TestJitterConcurrent(t *testing.T) {
	// One shared Jitter hammered from many goroutines: the locked source
	// must stay race-free (run under -race) and in schedule.
	j := NewJitter(7)
	const goroutines = 8
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				got := j.Delay(time.Second, 8*time.Second, 2)
				if got < 2*time.Second || got > 4*time.Second {
					done <- fmt.Errorf("delay %v outside [2s, 4s]", got)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
