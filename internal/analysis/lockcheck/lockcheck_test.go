package lockcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockcheck"
)

func TestLockCheck(t *testing.T) {
	tests := []struct {
		name string
		pkg  string
	}{
		{"unguarded and misguarded accesses", "flagged"},
		{"properly locked accesses", "clean"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", lockcheck.Analyzer, tc.pkg)
		})
	}
}
