// Package wire is a fixture stub mirroring the message-write API the
// lockcheck analyzer keys on.
package wire

import "io"

// Message is the stub message interface.
type Message interface{ Type() uint8 }

// Keepalive is a body-less stub message.
type Keepalive struct{}

// Type implements Message.
func (*Keepalive) Type() uint8 { return 4 }

// WriteMessage writes one message.
func WriteMessage(w io.Writer, m Message) error { return nil }
