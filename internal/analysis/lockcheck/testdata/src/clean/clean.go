// Package clean holds access shapes lockcheck must accept.
package clean

import (
	"io"
	"sync"

	"repro/internal/wire"
)

// Table mimics the RIB.
type Table struct {
	mu sync.RWMutex
	// routes is the table body. Guarded by mu.
	routes map[string]int
	// gen counts reselections; guarded by mu.
	gen int
	// stats is unguarded: no annotation, no checking.
	stats int
}

func (t *Table) Read() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gen
}

func (t *Table) Write(k string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.routes[k] = 1
	t.gen++
}

// reselectLocked relies on the *Locked naming convention: the caller
// holds mu.
func (t *Table) reselectLocked() {
	t.gen++
	for k := range t.routes {
		t.routes[k]++
	}
}

func (t *Table) Unguarded() int {
	return t.stats
}

// locking inside a function literal covers accesses in that literal.
func (t *Table) LitLocks() {
	go func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		t.gen++
	}()
}

func (t *Table) Suppressed() int {
	//repro:vet ignore lockcheck -- exercising the suppression path
	return t.gen
}

// Sess mimics the session write path.
type Sess struct {
	conn    io.Writer
	writeMu sync.Mutex
	mu      sync.Mutex
	state   int // guarded by mu
}

func (s *Sess) Send() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return wire.WriteMessage(s.conn, &wire.Keepalive{})
}

func (s *Sess) State() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}
