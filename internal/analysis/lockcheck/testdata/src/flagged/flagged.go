// Package flagged exercises the access shapes lockcheck rejects.
package flagged

import (
	"io"
	"sync"

	"repro/internal/wire"
)

// Table mimics the RIB: map state guarded by an RWMutex.
type Table struct {
	mu sync.RWMutex
	// routes is the table body. Guarded by mu.
	routes map[string]int
	// gen counts reselections; guarded by mu.
	gen int
}

func (t *Table) UnlockedRead() int {
	return t.gen // want `t\.gen is guarded by t\.mu, which is not locked in UnlockedRead`
}

func (t *Table) UnlockedWrite(k string) {
	t.routes[k] = 1 // want `t\.routes is guarded by t\.mu, which is not locked in UnlockedWrite`
}

func (t *Table) WriteUnderRLock() {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.gen++ // want `write to t\.gen holds only t\.mu\.RLock`
}

func (t *Table) WrongReceiverLock(u *Table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	u.gen++ // want `u\.gen is guarded by u\.mu, which is not locked in WrongReceiverLock`
}

// goroutineEscape: a function literal is its own locking scope — the
// enclosing function's lock does not carry into it.
func (t *Table) LitEscape() {
	t.mu.Lock()
	defer t.mu.Unlock()
	go func() {
		t.gen++ // want `t\.gen is guarded by t\.mu, which is not locked`
	}()
}

// Sess mimics the session: a conn whose writes serialize on writeMu.
type Sess struct {
	conn    io.Writer
	writeMu sync.Mutex
	mu      sync.Mutex
	state   int // guarded by mu
}

func (s *Sess) BareSend() error {
	return wire.WriteMessage(s.conn, &wire.Keepalive{}) // want `wire\.WriteMessage on s\.conn without holding s\.writeMu`
}

func (s *Sess) WrongLockSend() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = 1
	return wire.WriteMessage(s.conn, &wire.Keepalive{}) // want `wire\.WriteMessage on s\.conn without holding s\.writeMu`
}
