// Package lockcheck enforces the repo's documented mutex discipline.
//
// Struct fields annotated with a "guarded by <mutex>" comment (doc or
// trailing) may only be accessed in functions that, earlier in the same
// function body, lock that mutex on the same base expression — or in
// functions whose name ends in "Locked", the repo's convention for
// "caller holds the lock". Writes additionally require the exclusive
// lock: a preceding RLock alone is flagged.
//
// The check is intra-procedural and source-order based: it does not
// prove the lock is still held at the access (an early Unlock defeats
// it), but it reliably catches the bug class that matters here — a
// field read or written with no lock acquisition on the path at all,
// which is exactly how shared RIB and session state gets corrupted
// under concurrent sessions.
//
// One cross-cutting rule rides along: in any package whose guarded
// structs declare a writeMu field, every wire.WriteMessage call whose
// writer is a field of such a struct must be under writeMu. The BGP
// transport interleaves messages from the keepalive timer, the route
// propagation path and the teardown path onto one net.Conn; an
// unguarded write can interleave two frames and desynchronize the peer.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer enforces "guarded by" field annotations.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "flags accesses to fields documented as 'guarded by <mu>' reached without " +
		"locking <mu> earlier in the function (functions named *Locked are exempt)",
	Run: run,
}

// guardedField identifies one annotated field of one struct type.
type guardedField struct {
	structName string
	field      string
	guard      string
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	// Structs with a writeMu field get the WriteMessage rule.
	writeMuStructs := make(map[string]bool)
	for g := range guards {
		if fieldOfStruct(pass, g.structName, "writeMu") {
			writeMuStructs[g.structName] = true
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncBody(pass, guards, writeMuStructs, fd.Name.Name, fd.Body)
		}
	}
	return nil
}

// collectGuards parses "guarded by <name>" annotations off struct field
// comments, keyed by (struct type name, field name).
func collectGuards(pass *analysis.Pass) map[guardedField]bool {
	out := make(map[guardedField]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				guard := guardAnnotation(f)
				if guard == "" {
					continue
				}
				for _, name := range f.Names {
					out[guardedField{ts.Name.Name, name.Name, guard}] = true
				}
			}
			return false
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's comments, or "".
func guardAnnotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		text := cg.Text()
		idx := strings.Index(strings.ToLower(text), "guarded by ")
		if idx < 0 {
			continue
		}
		rest := text[idx+len("guarded by "):]
		name := strings.TrimRight(strings.Fields(rest)[0], ".,;:")
		return name
	}
	return ""
}

// fieldOfStruct reports whether the named struct type in this package
// has a field with the given name.
func fieldOfStruct(pass *analysis.Pass, structName, field string) bool {
	obj := pass.Pkg.Scope().Lookup(structName)
	if obj == nil {
		return false
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			return true
		}
	}
	return false
}

// lockEvent records one mutex acquisition seen while scanning a
// function body in source order.
type lockEvent struct {
	base     string // rendered base expression, e.g. "s" or "h.c"
	guard    string // mutex field name
	readOnly bool   // RLock rather than Lock
	pos      token.Pos
}

// checkFuncBody scans one function body (treating nested function
// literals as their own scopes) for guarded-field accesses.
func checkFuncBody(pass *analysis.Pass, guards map[guardedField]bool, writeMuStructs map[string]bool, funcName string, body *ast.BlockStmt) {
	exempt := strings.HasSuffix(funcName, "Locked")
	var locks []lockEvent
	var walk func(n ast.Node, writing bool) // writing: n is being assigned to

	heldBefore := func(base, guard string, pos token.Pos, write bool) (held, rlockOnly bool) {
		for _, l := range locks {
			if l.base == base && l.guard == guard && l.pos < pos {
				if !l.readOnly {
					return true, false
				}
				held, rlockOnly = true, true
			}
		}
		return held, rlockOnly
	}

	checkAccess := func(sel *ast.SelectorExpr, write bool) {
		structName, ok := guardedStructOf(pass, sel)
		if !ok {
			return
		}
		for g := range guards {
			if g.structName != structName || g.field != sel.Sel.Name {
				continue
			}
			if exempt {
				return
			}
			base := types.ExprString(sel.X)
			held, rlockOnly := heldBefore(base, g.guard, sel.Pos(), write)
			switch {
			case !held:
				pass.Reportf(sel.Pos(),
					"%s.%s is guarded by %s.%s, which is not locked in %s (lock it, or name the function *Locked)",
					base, g.field, base, g.guard, funcName)
			case write && rlockOnly:
				pass.Reportf(sel.Pos(),
					"write to %s.%s holds only %s.%s.RLock; writes need the exclusive Lock",
					base, g.field, base, g.guard)
			}
			return
		}
	}

	checkWriteMessage := func(call *ast.CallExpr) {
		if !analysis.IsPkgFunc(pass.TypesInfo, call, "internal/wire", "WriteMessage") || len(call.Args) == 0 {
			return
		}
		sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
		if !ok {
			return
		}
		structName, ok := guardedStructOf(pass, sel)
		if !ok || !writeMuStructs[structName] || exempt {
			return
		}
		base := types.ExprString(sel.X)
		if held, _ := heldBefore(base, "writeMu", call.Pos(), true); !held {
			pass.Reportf(call.Pos(),
				"wire.WriteMessage on %s.%s without holding %s.writeMu; concurrent writers interleave frames",
				base, sel.Sel.Name, base)
		}
	}

	walk = func(n ast.Node, writing bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			// A function literal is its own locking scope; the literal's
			// name inherits the enclosing function for messages.
			checkFuncBody(pass, guards, writeMuStructs, funcName+" (func literal)", n.Body)
			return
		case *ast.CallExpr:
			if base, guard, readOnly, ok := lockCall(n); ok {
				locks = append(locks, lockEvent{base: base, guard: guard, readOnly: readOnly, pos: n.Pos()})
			}
			checkWriteMessage(n)
			walk(n.Fun, false)
			for _, a := range n.Args {
				walk(a, false)
			}
			return
		case *ast.SelectorExpr:
			checkAccess(n, writing)
			walk(n.X, false)
			return
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				walk(lhs, true)
			}
			for _, rhs := range n.Rhs {
				walk(rhs, false)
			}
			return
		case *ast.IncDecStmt:
			walk(n.X, true)
			return
		case *ast.IndexExpr:
			// Writing through an index (m[k] = v) writes the container.
			walk(n.X, writing)
			walk(n.Index, false)
			return
		}
		// Generic traversal for all other nodes.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c, false)
			return false
		})
	}
	walk(body, false)
}

// guardedStructOf resolves the struct type (declared in this package)
// whose field sel accesses, unwrapping pointers.
func guardedStructOf(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", false
	}
	named := analysis.NamedType(tv.Type)
	if named == nil || named.Obj().Pkg() != pass.Pkg {
		return "", false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return "", false
	}
	return named.Obj().Name(), true
}

// lockCall matches <base>.<guard>.Lock() / RLock() and returns the
// rendered base and guard field name.
func lockCall(call *ast.CallExpr) (base, guard string, readOnly, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	switch sel.Sel.Name {
	case "Lock":
	case "RLock":
		readOnly = true
	default:
		return "", "", false, false
	}
	inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	return types.ExprString(inner.X), inner.Sel.Name, readOnly, true
}
