// Package all registers every repo-specific analyzer, for the
// cmd/repro-vet multichecker and any future drivers.
package all

import (
	"repro/internal/analysis"
	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/atomiccheck"
	"repro/internal/analysis/attrbounds"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/goroutinectx"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/moascompare"
	"repro/internal/analysis/spanthread"
	"repro/internal/analysis/stagestamp"
	"repro/internal/analysis/wireerr"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		allocfree.Analyzer,
		atomiccheck.Analyzer,
		attrbounds.Analyzer,
		determinism.Analyzer,
		goroutinectx.Analyzer,
		lockcheck.Analyzer,
		moascompare.Analyzer,
		spanthread.Analyzer,
		stagestamp.Analyzer,
		wireerr.Analyzer,
	}
}
