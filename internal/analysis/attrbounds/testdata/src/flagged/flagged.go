// Package flagged exercises the construction shapes attrbounds rejects.
package flagged

import (
	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/wire"
)

func rawConversion(v uint32) astypes.Community {
	return astypes.Community(v) // want `raw conversion to astypes\.Community bypasses validation; use astypes\.NewCommunity or core\.List\.Communities`
}

func handPacked(as astypes.ASN) astypes.Community {
	return astypes.Community(uint32(as)<<16 | 0xffde) // want `raw conversion to astypes\.Community bypasses validation`
}

func mlvalLiteral(as astypes.ASN) astypes.Community {
	return astypes.NewCommunity(as, 0xffde) // want `MOAS-list community built directly with MLVal; emit members via core\.List\.Communities for canonical order`
}

func mlvalNamed(as astypes.ASN) astypes.Community {
	return astypes.NewCommunity(as, core.MLVal) // want `MOAS-list community built directly with MLVal`
}

func rawAttr(code uint8, v []byte) wire.UnknownAttr {
	return wire.UnknownAttr{Flags: 0xc0, Code: code, Value: v} // want `direct wire\.UnknownAttr literal bypasses flag validation; use wire\.NewOptionalTransitive`
}

func rawAttrElems(code uint8) []wire.UnknownAttr {
	return []wire.UnknownAttr{
		{Flags: 0xc0, Code: code}, // want `direct wire\.UnknownAttr literal bypasses flag validation`
	}
}
