// Package clean holds construction shapes attrbounds must accept.
package clean

import (
	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/wire"
)

// the validated constructor with an ordinary value is fine.
func constructed(as astypes.ASN) astypes.Community {
	return astypes.NewCommunity(as, 100)
}

// MOAS members come from the list, which owns ordering.
func members(l core.List) []astypes.Community {
	return l.Communities()
}

// a non-constant value half cannot be judged and stays quiet.
func dynamic(as astypes.ASN, v uint16) astypes.Community {
	return astypes.NewCommunity(as, v)
}

// Community-to-Community conversion is not a construction.
type comm = astypes.Community

func rebrand(c astypes.Community) comm {
	return comm(c)
}

// opaque attributes via the sanctioned constructor.
func attr(code uint8, v []byte) wire.UnknownAttr {
	return wire.NewOptionalTransitive(code, v)
}

// unrelated conversions are out of scope.
func unrelated(v uint32) uint16 {
	return uint16(v)
}

func suppressed(v uint32) astypes.Community {
	//repro:vet ignore attrbounds -- exercising the suppression path
	return astypes.Community(v)
}
