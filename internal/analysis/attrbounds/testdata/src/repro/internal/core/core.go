// Package core is a fixture stub mirroring the MOAS-list API.
package core

import "repro/internal/astypes"

// MLVal marks a community value as a MOAS-list member.
const MLVal = 0xffde

// List is a MOAS list.
type List struct {
	asns []astypes.ASN
}

// NewList builds a list from origin ASNs.
func NewList(asns ...astypes.ASN) List { return List{asns: asns} }

// Communities emits the canonical MOAS-list community members.
func (l List) Communities() []astypes.Community {
	out := make([]astypes.Community, len(l.asns))
	for i, as := range l.asns {
		out[i] = astypes.NewCommunity(as, MLVal)
	}
	return out
}
