// Package astypes is a fixture stub mirroring the community tuple API
// the attrbounds analyzer protects.
package astypes

// ASN is a 16-bit autonomous system number.
type ASN uint16

// Community is a packed (ASN, value) tuple.
type Community uint32

// NewCommunity packs a validated (ASN, value) tuple.
func NewCommunity(as ASN, value uint16) Community {
	return Community(uint32(as)<<16 | uint32(value))
}
