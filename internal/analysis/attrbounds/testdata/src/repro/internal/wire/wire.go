// Package wire is a fixture stub mirroring the attribute encoding API.
package wire

// UnknownAttr is an opaque path attribute.
type UnknownAttr struct {
	Flags uint8
	Code  uint8
	Value []byte
}

// NewOptionalTransitive builds an opaque attribute with the optional
// and transitive flag bits set and the value copied.
func NewOptionalTransitive(code uint8, value []byte) UnknownAttr {
	v := make([]byte, len(value))
	copy(v, value)
	return UnknownAttr{Flags: 0xc0, Code: code, Value: v}
}
