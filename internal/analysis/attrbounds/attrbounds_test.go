package attrbounds_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/attrbounds"
)

func TestAttrBounds(t *testing.T) {
	tests := []struct {
		name string
		pkg  string
	}{
		{"bypassing constructions", "flagged"},
		{"sanctioned constructions", "clean"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", attrbounds.Analyzer, tc.pkg)
		})
	}
}
