// Package attrbounds flags community-attribute tuple construction that
// bypasses the validated constructors.
//
// The MOAS list rides in BGP community values (§4.2): a community is an
// (ASN, value) tuple packed into 32 bits, and the reserved value
// core.MLVal marks a community as a MOAS-list member. The only
// sanctioned ways to build these tuples are:
//
//   - astypes.NewCommunity / astypes.ParseCommunity for general
//     communities,
//   - core.List.Communities() for MOAS-list members (it emits the
//     canonical ascending order the checker relies on),
//   - wire.NewOptionalTransitive for the dedicated attribute encoding.
//
// Raw uint32 conversions, hand-rolled shifts, direct UnknownAttr
// literals, or NewCommunity calls that hardcode the MLVal half all
// bypass those invariants; a single mis-packed tuple makes two
// honestly-identical MOAS lists compare unequal and raises a false
// alarm. The decoding packages (astypes, wire, routegen) own the raw
// representation and are exempt.
package attrbounds

import (
	"go/ast"
	"go/constant"

	"repro/internal/analysis"
)

// Analyzer flags community/attribute construction outside the
// validated constructors.
var Analyzer = &analysis.Analyzer{
	Name: "attrbounds",
	Doc: "flags community-attribute tuples built without the validated constructors " +
		"(astypes.NewCommunity, core.List.Communities, wire.NewOptionalTransitive)",
	Run: run,
}

// codec packages own the raw representations.
var exemptSuffixes = []string{
	"internal/astypes",
	"internal/wire",
	"internal/routegen",
	"internal/core",
}

// mlval mirrors core.MLVal; hardcoding the MOAS-list marker outside
// core is exactly what this analyzer exists to catch, so the analyzer
// keeps its own copy rather than importing it.
const mlval = 0xffde

func run(pass *analysis.Pass) error {
	for _, suffix := range exemptSuffixes {
		if analysis.HasPathSuffix(pass.Pkg.Path(), suffix) {
			return nil
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkConversion(pass, n)
			checkMLValConstruction(pass, n)
		case *ast.CompositeLit:
			checkUnknownAttrLit(pass, n)
		}
		return true
	})
	return nil
}

// checkConversion flags astypes.Community(x) type conversions: packing
// a raw 32-bit value is the codec packages' business.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	if !analysis.IsPkgType(tv.Type, "internal/astypes", "Community") {
		return
	}
	// Converting an existing Community (e.g. through a type alias) is
	// not a construction; flag only numeric packing.
	if argTV, ok := pass.TypesInfo.Types[call.Args[0]]; ok {
		if analysis.IsPkgType(argTV.Type, "internal/astypes", "Community") {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"raw conversion to astypes.Community bypasses validation; use astypes.NewCommunity or core.List.Communities")
}

// checkMLValConstruction flags NewCommunity calls whose value half is
// the MOAS-list marker: MOAS communities must come from
// core.List.Communities so ordering and deduplication hold.
func checkMLValConstruction(pass *analysis.Pass, call *ast.CallExpr) {
	if !analysis.IsPkgFunc(pass.TypesInfo, call, "internal/astypes", "NewCommunity") || len(call.Args) != 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return
	}
	if v, exact := constant.Uint64Val(constant.ToInt(tv.Value)); exact && v == mlval {
		pass.Reportf(call.Pos(),
			"MOAS-list community built directly with MLVal; emit members via core.List.Communities for canonical order")
	}
}

// checkUnknownAttrLit flags wire.UnknownAttr{...} literals: opaque
// attributes must be built by wire.NewOptionalTransitive, which sets
// the flag bits and copies the value.
func checkUnknownAttrLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	if !analysis.IsPkgType(tv.Type, "internal/wire", "UnknownAttr") {
		return
	}
	pass.Reportf(lit.Pos(),
		"direct wire.UnknownAttr literal bypasses flag validation; use wire.NewOptionalTransitive")
}
