// Package load type-checks packages of this module for the static
// analyzers, without depending on golang.org/x/tools/go/packages. It
// shells out to `go list -export -deps` for package metadata and
// compiled export data, parses the target packages' sources, and
// type-checks them with the standard library's gc importer reading the
// export data of every dependency from the build cache.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listEntry is the subset of `go list -json` output we consume.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
}

const listFields = "-json=ImportPath,Dir,Export,GoFiles,DepOnly"

func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list", "-export", "-deps", listFields}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("go list: decode output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// DepImporter resolves import paths to type information using export
// data from the build cache, listing lazily and caching across calls.
// It is the fallback importer for both the main driver and the
// analysistest fixture loader.
type DepImporter struct {
	dir  string // module directory to run `go list` in
	fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	gc      types.Importer
}

// NewDepImporter returns an importer running `go list` in dir.
func NewDepImporter(dir string, fset *token.FileSet) *DepImporter {
	d := &DepImporter{dir: dir, fset: fset, exports: make(map[string]string)}
	d.gc = importer.ForCompiler(fset, "gc", d.lookup)
	return d
}

func (d *DepImporter) lookup(path string) (io.ReadCloser, error) {
	d.mu.Lock()
	e, ok := d.exports[path]
	d.mu.Unlock()
	if !ok {
		entries, err := goList(d.dir, path)
		if err != nil {
			return nil, err
		}
		d.mu.Lock()
		for _, entry := range entries {
			if entry.Export != "" {
				d.exports[entry.ImportPath] = entry.Export
			}
		}
		e, ok = d.exports[path]
		d.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(e)
}

// Import implements types.Importer.
func (d *DepImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return d.gc.Import(path)
}

// seed primes the export cache from an already-run `go list`.
func (d *DepImporter) seed(entries []listEntry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, e := range entries {
		if e.Export != "" {
			d.exports[e.ImportPath] = e.Export
		}
	}
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// CheckDir parses the non-test Go files in dir and type-checks them as
// importPath using imp to resolve imports.
func CheckDir(fset *token.FileSet, dir, importPath string, goFiles []string, imp types.Importer) (*Package, error) {
	if len(goFiles) == 0 {
		names, err := listDirGoFiles(dir)
		if err != nil {
			return nil, err
		}
		goFiles = names
	}
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		TypesInfo:  info,
	}, nil
}

func listDirGoFiles(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Packages loads, parses and type-checks the module packages matching
// patterns (e.g. "./..."), with dir as the working directory for the go
// tool. Dependencies are resolved from export data only; targets are
// checked from source.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	entries, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewDepImporter(dir, fset)
	imp.seed(entries)
	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || len(e.GoFiles) == 0 {
			continue
		}
		p, err := CheckDir(fset, e.Dir, e.ImportPath, e.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
