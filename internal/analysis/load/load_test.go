package load_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/load"
)

// writeModule lays out a throwaway module under t.TempDir and returns
// its root. files maps relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestGenericFunctions loads a package whose API is generic: the new
// analyzers walk TypesInfo of instantiated and uninstantiated generic
// code, so loading must type-check it without error.
func TestGenericFunctions(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"generic.go": `package tmpmod

type Number interface {
	~int | ~int64 | ~float64
}

func Sum[T Number](xs []T) T {
	var total T
	for _, x := range xs {
		total += x
	}
	return total
}

func Keys[K comparable, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

var _ = Sum([]int{1, 2, 3})
var _ = Keys(map[string]int{"a": 1})
`,
	})
	pkgs, err := load.Packages(dir, "./...")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Types == nil || pkg.TypesInfo == nil {
		t.Fatal("package missing type information")
	}
	if obj := pkg.Types.Scope().Lookup("Sum"); obj == nil {
		t.Fatal("generic function Sum not in package scope")
	}
}

// TestBuildTaggedFiles loads a package with a constrained file: go list
// reports only the files selected for the current build context, so a
// file excluded by its tag must not break loading or leak into Files.
func TestBuildTaggedFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"main.go": `package tmpmod

func Live() int { return on() }
`,
		"on_default.go": `//go:build !neverenabled

package tmpmod

func on() int { return 1 }
`,
		"off_tagged.go": `//go:build neverenabled

package tmpmod

// This file references an undefined symbol: if the loader ever feeds
// it to the type checker the test fails loudly.
func off() int { return doesNotExist() }
`,
	})
	pkgs, err := load.Packages(dir, "./...")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	for _, f := range pkgs[0].Files {
		name := filepath.Base(pkgs[0].Fset.Position(f.Pos()).Filename)
		if name == "off_tagged.go" {
			t.Fatal("build-tag-excluded file was loaded")
		}
	}
}

// TestTestFilesExcluded pins the loader contract the analyzers rely on:
// _test.go files are never analyzed, even when present in the package
// directory.
func TestTestFilesExcluded(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"lib.go": `package tmpmod

func Lib() int { return 1 }
`,
		"lib_test.go": `package tmpmod

import "testing"

func TestLib(t *testing.T) {
	if Lib() != 1 {
		t.Fatal("nope")
	}
}
`,
	})
	pkgs, err := load.Packages(dir, "./...")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
			if name == "lib_test.go" {
				t.Fatal("_test.go file was loaded for analysis")
			}
		}
	}
}
