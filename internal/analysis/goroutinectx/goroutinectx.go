// Package goroutinectx flags fire-and-forget goroutines in the
// long-lived server packages (daemon, collector, session, speaker).
//
// Every goroutine launched there must be joinable or stoppable: the
// paper's monitor is meant to run unattended against live feeds, and a
// goroutine that neither honors shutdown nor signals completion is how
// Close() returns while work is still mutating shared state — the exact
// shape of the daemon/collector shutdown races this repo has had.
//
// A launch is compliant when the spawned function does at least one of:
//
//   - select/receive on a done channel (chan struct{}) or ctx.Done()
//   - close(ch) — completion signalled by closing a done channel
//   - ch <- v — completion signalled by sending a result (the
//     handshake send pattern)
//   - wg.Done() — registered with a sync.WaitGroup
//   - range over a channel (worker draining a job queue closed by the
//     owner)
//
// Launching a bare method value or function value (go s.cfg.Callback())
// is flagged unconditionally when the body cannot be resolved within
// the package: wrap it in a literal that registers with the WaitGroup.
package goroutinectx

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags unsupervised goroutine launches in server packages.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinectx",
	Doc: "flags 'go' launches in daemon/collector/session/speaker that neither honor " +
		"a shutdown signal nor register completion (WaitGroup, done channel, result send)",
	Run: run,
}

// checkedPackages are the long-lived server packages under the rule.
var checkedPackages = map[string]bool{
	"daemon":    true,
	"collector": true,
	"session":   true,
	"speaker":   true,
}

func run(pass *analysis.Pass) error {
	if !checkedPackages[pass.Pkg.Name()] {
		return nil
	}
	// Map package functions/methods to their declarations so that
	// `go s.readLoop()` can be judged by readLoop's body.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		switch fn := ast.Unparen(gs.Call.Fun).(type) {
		case *ast.FuncLit:
			if !supervised(pass, fn.Body) {
				pass.Reportf(gs.Pos(),
					"goroutine neither honors shutdown nor signals completion; select on a done channel, close one, or register with a WaitGroup")
			}
		default:
			callee := analysis.CalleeFunc(pass.TypesInfo, gs.Call)
			if callee != nil {
				if fd, ok := decls[callee]; ok {
					if !supervised(pass, fd.Body) {
						pass.Reportf(gs.Pos(),
							"goroutine %s neither honors shutdown nor signals completion", callee.Name())
					}
					return true
				}
			}
			pass.Reportf(gs.Pos(),
				"goroutine launches an unresolvable function value; wrap it in a literal that registers with a WaitGroup or honors shutdown")
		}
		return true
	})
	return nil
}

// supervised reports whether the goroutine body contains any accepted
// supervision pattern. Nested function literals are not inspected: the
// launch being judged must itself be supervised.
func supervised(pass *analysis.Pass, body *ast.BlockStmt) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			ok = true
		case *ast.UnaryExpr:
			// <-ch receive: counts when the channel is a done channel
			// (chan struct{}) or a ctx.Done()-style call result.
			if n.Op == token.ARROW && isDoneChannel(pass, n.X) {
				ok = true
			}
		case *ast.RangeStmt:
			if tv, found := pass.TypesInfo.Types[n.X]; found {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					ok = true
				}
			}
		case *ast.CallExpr:
			if isClose(pass, n) || isWaitGroupDone(pass, n) {
				ok = true
			}
		}
		return !ok
	})
	return ok
}

// isDoneChannel recognizes chan struct{} values and Done() call results.
func isDoneChannel(pass *analysis.Pass, e ast.Expr) bool {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

func isClose(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// isWaitGroupDone matches wg.Done() on a sync.WaitGroup.
func isWaitGroupDone(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && analysis.IsPkgType(tv.Type, "sync", "WaitGroup")
}
