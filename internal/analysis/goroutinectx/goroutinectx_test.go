package goroutinectx_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goroutinectx"
)

func TestGoroutineCtx(t *testing.T) {
	tests := []struct {
		name string
		pkg  string
	}{
		{"server package launches", "daemon"},
		{"unchecked package is exempt", "other"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", goroutinectx.Analyzer, tc.pkg)
		})
	}
}
