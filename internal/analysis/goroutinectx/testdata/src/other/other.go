// Package other is not one of the checked server packages, so even a
// bare fire-and-forget launch stays quiet here.
package other

// Spawn launches without supervision; out of scope for goroutinectx.
func Spawn(f func()) {
	go f()
	go func() { f() }()
}
