// Package daemon is a fixture named after a checked server package:
// goroutinectx applies here.
package daemon

import (
	"context"
	"sync"
)

// D mimics a long-lived server owning goroutines.
type D struct {
	wg   sync.WaitGroup
	stop chan struct{}
	jobs chan int
	cb   func()
}

func (d *D) FireAndForget() {
	go func() { // want `goroutine neither honors shutdown nor signals completion`
		d.work()
	}()
}

func (d *D) UnresolvableValue() {
	go d.cb() // want `goroutine launches an unresolvable function value`
}

func (d *D) BadMethod() {
	go d.work() // want `goroutine work neither honors shutdown nor signals completion`
}

// NestedLitDoesNotCount: supervision inside a nested literal does not
// supervise the launch itself.
func (d *D) NestedLitDoesNotCount() {
	go func() { // want `goroutine neither honors shutdown nor signals completion`
		f := func() { d.wg.Done() }
		_ = f
	}()
}

func (d *D) WaitGroupTracked() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.work()
	}()
}

func (d *D) StopSelect() {
	go func() {
		for {
			select {
			case <-d.stop:
				return
			case j := <-d.jobs:
				_ = j
			}
		}
	}()
}

func (d *D) ContextDone(ctx context.Context) {
	go func() {
		<-ctx.Done()
		d.work()
	}()
}

func (d *D) ResultSend(errc chan error) {
	go func() {
		errc <- nil
	}()
}

func (d *D) CloseSignal(done chan struct{}) {
	go func() {
		defer close(done)
		d.work()
	}()
}

func (d *D) RangeWorker() {
	go func() {
		for j := range d.jobs {
			_ = j
		}
	}()
}

func (d *D) GoodMethod() {
	d.wg.Add(1)
	go d.trackedLoop()
}

func (d *D) trackedLoop() {
	defer d.wg.Done()
	d.work()
}

func (d *D) Suppressed() {
	//repro:vet ignore goroutinectx -- exercising the suppression path
	go d.cb()
}

func (d *D) work() {}
