package atomiccheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomiccheck"
)

func TestAtomicCheck(t *testing.T) {
	tests := []struct {
		name string
		pkg  string
	}{
		{"mixed atomic and plain access", "flagged"},
		{"seqlock, Locked-suffix, and typed atomics", "clean"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", atomiccheck.Analyzer, tc.pkg)
		})
	}
}
