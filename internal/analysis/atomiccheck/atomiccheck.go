// Package atomiccheck enforces all-or-nothing atomic access: a struct
// field or package-level variable touched through a sync/atomic
// function anywhere in the package must be touched atomically
// everywhere in the package. Mixing atomic.AddUint64(&s.n, 1) with a
// plain `s.n` read is a data race the race detector only catches when
// both sides happen to execute in a soaked test; this analyzer catches
// the mix at compile time.
//
// Two repo conventions are exempt:
//
//   - functions whose name ends in "Locked" — the repo's "caller holds
//     the lock" convention; a mutex may serialize plain access on one
//     side of a publication boundary (telemetry snapshots do this)
//   - structs carrying the internal/trace seqlock idiom: a field named
//     "mark" of type sync/atomic.Uint32/Uint64. The mark word's
//     store-release/load-acquire pairs publish the other fields, so
//     plain access to them between mark transitions is the design,
//     not a bug.
//
// Fields typed as sync/atomic.Uint64 etc. need no checking — the type
// system already forbids plain access — so the analyzer is about the
// old-style atomic function calls on plainly typed words.
package atomiccheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer enforces consistent atomic access.
var Analyzer = &analysis.Analyzer{
	Name: "atomiccheck",
	Doc: "flags plain reads/writes of fields or package vars that are accessed via sync/atomic " +
		"elsewhere in the package (*Locked functions and seqlock mark-word structs exempt)",
	Run: run,
}

// target identifies one atomically-accessed storage location: a struct
// field (structName set) or a package-level var (structName empty).
type target struct {
	structName string
	name       string
}

func run(pass *analysis.Pass) error {
	atomicSites := make(map[ast.Node]bool) // the &x arg nodes of atomic calls
	targets := make(map[target]bool)

	// Pass 1: find every sync/atomic call and record its target.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := analysis.CalleeFunc(pass.TypesInfo, call)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods of atomic.Uint64 etc.: typed, safe
			}
			if len(call.Args) == 0 {
				return true
			}
			u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			if t, ok := targetOf(pass, u.X); ok {
				targets[t] = true
				atomicSites[u.X] = true
			}
			return true
		})
	}
	if len(targets) == 0 {
		return nil
	}

	// Pass 2: flag plain accesses to the same targets.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				expr, ok := n.(ast.Expr)
				if !ok || atomicSites[n] {
					return true
				}
				t, ok := targetOf(pass, expr)
				if !ok || !targets[t] {
					return true
				}
				if t.structName != "" && hasSeqlockMark(pass, t.structName) {
					return true
				}
				label := t.name
				if t.structName != "" {
					label = t.structName + "." + t.name
				}
				pass.Reportf(expr.Pos(),
					"plain access to %s, which is accessed via sync/atomic elsewhere in this package "+
						"(use atomic ops everywhere, or move the access into a *Locked function)",
					label)
				return false
			})
		}
	}
	return nil
}

// targetOf resolves an expression to an atomic-checkable storage
// location: a named-struct field selector or a package-level variable.
func targetOf(pass *analysis.Pass, e ast.Expr) (target, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sel, ok := pass.TypesInfo.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return target{}, false
		}
		named := analysis.NamedType(sel.Recv())
		if named == nil || named.Obj().Pkg() != pass.Pkg {
			return target{}, false
		}
		return target{structName: named.Obj().Name(), name: e.Sel.Name}, true
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[e].(*types.Var)
		if !ok || v.Pkg() != pass.Pkg || v.Parent() != pass.Pkg.Scope() {
			return target{}, false
		}
		return target{name: v.Name()}, true
	}
	return target{}, false
}

// hasSeqlockMark reports whether the named struct declares the trace
// seqlock idiom: an atomic.Uint32/Uint64 field named "mark".
func hasSeqlockMark(pass *analysis.Pass, structName string) bool {
	obj := pass.Pkg.Scope().Lookup(structName)
	if obj == nil {
		return false
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "mark" {
			continue
		}
		named := analysis.NamedType(f.Type())
		if named == nil || named.Obj().Pkg() == nil {
			continue
		}
		if named.Obj().Pkg().Path() == "sync/atomic" &&
			strings.HasPrefix(named.Obj().Name(), "Uint") {
			return true
		}
	}
	return false
}
