// Package flagged mixes sync/atomic and plain access to the same
// storage locations — the races atomiccheck exists to catch.
package flagged

import "sync/atomic"

// Stats counts deliveries; n is atomic on the write side only.
type Stats struct {
	n uint64
}

func (s *Stats) Inc() {
	atomic.AddUint64(&s.n, 1)
}

func (s *Stats) Read() uint64 {
	return s.n // want `plain access to Stats\.n`
}

var dropped int64

func Drop() {
	atomic.AddInt64(&dropped, 1)
}

func Dropped() int64 {
	return dropped // want `plain access to dropped`
}
