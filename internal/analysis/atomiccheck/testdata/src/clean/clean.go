// Package clean holds the access patterns atomiccheck must accept: the
// trace seqlock idiom, *Locked snapshot functions, and typed atomics.
package clean

import (
	"sync"
	"sync/atomic"
)

// slot mirrors the internal/trace seqlock: the mark word's
// store-release/load-acquire pairs publish seq, so plain access between
// mark transitions is the design, not a race.
type slot struct {
	mark atomic.Uint64
	seq  uint64
}

func (s *slot) store(v uint64) {
	s.mark.Add(1)
	atomic.StoreUint64(&s.seq, v)
	s.mark.Add(1)
}

func (s *slot) read() uint64 {
	return s.seq
}

// Counter pairs an atomic fast path with a mutex-serialized snapshot
// path; the plain read lives in a *Locked function per repo convention.
type Counter struct {
	mu sync.Mutex
	n  uint64
}

func (c *Counter) Inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *Counter) Snapshot() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *Counter) snapshotLocked() uint64 {
	return c.n
}

// Typed fields need no checking: the type system forbids plain access.
type Typed struct {
	n atomic.Uint64
}

func (t *Typed) Inc() uint64 { return t.n.Add(1) }

var _ = []interface{}{(*slot).store, (*slot).read}
