// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks the reported diagnostics against
// expectations written in the fixtures themselves, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract:
//
//	bad()  // want `regexp matching the diagnostic`
//
// A line may carry several back-quoted (or double-quoted) regexps when
// several diagnostics are expected on it. Every diagnostic must match a
// want on its line, and every want must be matched by a diagnostic.
//
// Fixture packages live at testdata/src/<importpath>/. Imports resolve
// first against testdata/src (so fixtures can stub repo packages such
// as repro/internal/core with just the declarations the analyzer keys
// on), then against the real build via export data, which covers the
// standard library.
package analysistest

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// srcImporter resolves fixture imports: testdata/src first, then the
// surrounding module's export data (standard library and real deps).
type srcImporter struct {
	srcDir   string
	fset     *token.FileSet
	fallback *load.DepImporter
	pkgs     map[string]*types.Package
	loading  map[string]bool
	units    map[string]analysis.Unit
}

func (si *srcImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(si.srcDir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return si.fallback.Import(path)
	}
	if si.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	si.loading[path] = true
	defer delete(si.loading, path)
	pkg, err := load.CheckDir(si.fset, dir, path, nil, si)
	if err != nil {
		return nil, err
	}
	si.pkgs[path] = pkg.Types
	si.units[path] = analysis.Unit{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	return pkg.Types, nil
}

// want expectations: file:line -> pending regexps.
type wantKey struct {
	file string
	line int
}

var wantRe = regexp.MustCompile("//.*\\bwant\\b(.*)$")

// parseWants extracts // want expectations from one fixture file.
func parseWants(path string) (map[int][]*regexp.Regexp, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[int][]*regexp.Regexp)
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rest := strings.TrimSpace(m[1])
		for rest != "" {
			quote := rest[0]
			if quote != '`' && quote != '"' {
				return nil, fmt.Errorf("%s:%d: malformed want: %q", path, i+1, rest)
			}
			end := strings.IndexByte(rest[1:], quote)
			if end < 0 {
				return nil, fmt.Errorf("%s:%d: unterminated want pattern", path, i+1)
			}
			pat := rest[1 : 1+end]
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
			}
			out[i+1] = append(out[i+1], re)
			rest = strings.TrimSpace(rest[2+end:])
		}
	}
	return out, nil
}

// Run loads each fixture package from testdataDir/src, applies the
// analyzer, and reports mismatches between diagnostics and // want
// expectations as test errors. Suppression comments are honored, so
// fixtures can cover them.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	srcDir := filepath.Join(testdataDir, "src")
	fset := token.NewFileSet()
	si := &srcImporter{
		srcDir:   srcDir,
		fset:     fset,
		fallback: load.NewDepImporter(".", fset),
		pkgs:     make(map[string]*types.Package),
		loading:  make(map[string]bool),
		units:    make(map[string]analysis.Unit),
	}
	for _, path := range pkgPaths {
		if _, err := si.Import(path); err != nil {
			t.Fatalf("load fixture %s: %v", path, err)
		}
		unit := si.units[path]
		diags, err := analysis.Run(unit, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, path, err)
		}

		pending := make(map[wantKey][]*regexp.Regexp)
		for _, f := range unit.Files {
			name := fset.Position(f.Pos()).Filename
			wants, err := parseWants(name)
			if err != nil {
				t.Fatal(err)
			}
			for line, res := range wants {
				pending[wantKey{name, line}] = res
			}
		}

		for _, d := range diags {
			key := wantKey{d.Pos.Filename, d.Pos.Line}
			matched := -1
			for i, re := range pending[key] {
				if re.MatchString(d.Message) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s: unexpected diagnostic: %s", path, d)
				continue
			}
			pending[key] = append(pending[key][:matched], pending[key][matched+1:]...)
			if len(pending[key]) == 0 {
				delete(pending, key)
			}
		}
		for key, res := range pending {
			for _, re := range res {
				t.Errorf("%s: no diagnostic at %s:%d matching %q", path, key.file, key.line, re)
			}
		}
	}
}
