// Package clean names every stage it records.
package clean

import (
	"time"

	"repro/internal/obs"
)

// localAlarm aliases a stage constant; still a declared obs.Stage
// constant, so call sites may use it.
const localAlarm = obs.StageAlarm

func constants(r *obs.Recorder, st *obs.Stamp) {
	r.Record(obs.StageDecode, 7, time.Millisecond)
	r.Cross(st, obs.StageSession)
	r.Cross(st, (obs.StageRIB))
	r.End(st, localAlarm)
}

func nilRecorder(st *obs.Stamp) {
	var r *obs.Recorder
	r.Cross(st, obs.StageValidate)
}

var _ = []interface{}{constants, nilRecorder}
