// Package obs stubs repro/internal/obs with the declarations
// stagestamp keys on.
package obs

import "time"

type Stage uint8

const (
	StageDecode Stage = iota
	StageSession
	StageValidate
	StageRIB
	StageAlarm
	NumStages
)

type Stamp struct {
	Span uint64
}

type Recorder struct{}

func (r *Recorder) Record(stage Stage, span uint64, d time.Duration) {}

func (r *Recorder) Cross(st *Stamp, stage Stage) {}

func (r *Recorder) End(st *Stamp, stage Stage) {}

func (r *Recorder) Start(span uint64) Stamp { return Stamp{Span: span} }
