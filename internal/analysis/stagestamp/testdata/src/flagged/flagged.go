// Package flagged records stage latency without naming the stage.
package flagged

import (
	"time"

	"repro/internal/obs"
)

func literalStage(r *obs.Recorder) {
	r.Record(2, 7, time.Millisecond) // want `obs\.Recorder\.Record stage argument must be a declared obs\.Stage constant`
}

func convertedStage(r *obs.Recorder, st *obs.Stamp) {
	r.Cross(st, obs.Stage(3)) // want `obs\.Recorder\.Cross stage argument must be a declared obs\.Stage constant`
}

func variableStage(r *obs.Recorder, st *obs.Stamp, s obs.Stage) {
	r.End(st, s) // want `obs\.Recorder\.End stage argument must be a declared obs\.Stage constant`
}

func computedStage(r *obs.Recorder, st *obs.Stamp) {
	r.Cross(st, obs.StageDecode+1) // want `obs\.Recorder\.Cross stage argument must be a declared obs\.Stage constant`
}

var _ = []interface{}{literalStage, convertedStage, variableStage, computedStage}
