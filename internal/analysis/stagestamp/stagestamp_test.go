package stagestamp_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/stagestamp"
)

func TestStageStamp(t *testing.T) {
	tests := []struct {
		name string
		pkg  string
	}{
		{"unnamed stage arguments", "flagged"},
		{"named stage constants", "clean"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", stagestamp.Analyzer, tc.pkg)
		})
	}
}
