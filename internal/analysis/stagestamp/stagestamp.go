// Package stagestamp enforces the detection-latency stage contract:
// every obs.Recorder record call site must name the stage it lands in
// with a declared obs.Stage constant (obs.StageDecode, obs.StageRIB,
// …), never a bare number, a variable, or a computed expression.
//
// The per-stage histograms are only as trustworthy as their stage
// attribution. The stage argument is a tiny integer, so a refactor
// that shuffles arguments or threads a "current stage" variable
// through a pipeline would still compile — and silently misfile
// latency into the wrong histogram, which an operator reading
// /debug/status cannot detect. Requiring a named constant at the call
// site makes the attribution reviewable where the measurement happens.
//
// The obs package itself is exempt: its own helpers (Cross delegating
// to Record, the snapshot loop) legitimately traffic in stage values.
package stagestamp

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer enforces named stage constants at obs record call sites.
var Analyzer = &analysis.Analyzer{
	Name: "stagestamp",
	Doc: "flags obs.Recorder Record/Cross/End call sites whose stage argument is not a " +
		"declared obs.Stage constant, so per-stage latency attribution stays reviewable",
	Run: run,
}

// stageArg maps the checked methods to the index of their stage
// parameter.
var stageArg = map[string]int{
	"Record": 0,
	"Cross":  1,
	"End":    1,
}

func run(pass *analysis.Pass) error {
	if analysis.HasPathSuffix(pass.Pkg.Path(), "internal/obs") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			idx, ok := stageArg[fn.Name()]
			if !ok || !isObsRecorderMethod(fn) || idx >= len(call.Args) {
				return true
			}
			if !isStageConst(pass.TypesInfo, call.Args[idx]) {
				pass.Reportf(call.Args[idx].Pos(),
					"obs.Recorder.%s stage argument must be a declared obs.Stage constant (obs.StageDecode, …), not a computed value: stage attribution must be reviewable at the call site",
					fn.Name())
			}
			return true
		})
	}
	return nil
}

// isObsRecorderMethod reports whether fn is a method on obs.Recorder
// (pointer or value receiver).
func isObsRecorderMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return analysis.IsPkgType(sig.Recv().Type(), "internal/obs", "Recorder")
}

// isStageConst reports whether e names a declared constant of type
// obs.Stage — a package-level stage constant or a local alias of one.
// Literals, conversions, variables, and arithmetic all fail: they type
// check but hide the attribution.
func isStageConst(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return false
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok {
		return false
	}
	return analysis.IsPkgType(c.Type(), "internal/obs", "Stage")
}
