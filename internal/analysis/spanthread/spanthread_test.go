package spanthread_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/spanthread"
)

func TestSpanThread(t *testing.T) {
	tests := []struct {
		name string
		pkg  string
	}{
		{"dropped span and reason provenance", "flagged"},
		{"explicit spans and sentinels", "clean"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", spanthread.Analyzer, tc.pkg)
		})
	}
}
