// Package rib stubs repro/internal/rib with the declarations
// spanthread keys on.
package rib

type Reason uint8

const (
	ReasonNone Reason = iota
	ReasonNewBest
	ReasonWithdraw
)

type Change struct {
	Changed bool
	Reason  Reason
}
