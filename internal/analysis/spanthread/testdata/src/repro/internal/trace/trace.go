// Package trace stubs repro/internal/trace with the declarations
// spanthread keys on.
package trace

type AlarmBundle struct {
	ID      int
	Nanos   int64
	Span    uint64
	Node    uint16
	Verdict string
}
