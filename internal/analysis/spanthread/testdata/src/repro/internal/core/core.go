// Package core stubs repro/internal/core with the declarations
// spanthread keys on.
package core

type Prefix struct {
	Addr uint32
	Len  uint8
}

type ASN uint16

type Announcement struct {
	Prefix   Prefix
	FromPeer ASN
	Span     uint64
}

type Conflict struct {
	Prefix   Prefix
	Origin   ASN
	FromPeer ASN
	Span     uint64
}
