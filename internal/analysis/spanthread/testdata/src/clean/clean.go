// Package clean threads span provenance explicitly everywhere.
package clean

import (
	"repro/internal/core"
	"repro/internal/rib"
	"repro/internal/trace"
)

func conflict(p core.Prefix, span uint64) core.Conflict {
	return core.Conflict{Prefix: p, Span: span}
}

// Zero-value sentinels are not forensic records.
func sentinel() trace.AlarmBundle {
	return trace.AlarmBundle{}
}

// A full bundle states both its span and its verdict.
func bundle(span uint64) trace.AlarmBundle {
	return trace.AlarmBundle{Span: span, Verdict: "conflict"}
}

// A deliberate "no message context" span is stated, not omitted.
func untraced(p core.Prefix) core.Announcement {
	return core.Announcement{Prefix: p, Span: 0}
}

func change() rib.Change {
	return rib.Change{Changed: true, Reason: rib.ReasonNewBest}
}

func noChange() rib.Change {
	return rib.Change{Changed: false}
}

var _ = []interface{}{conflict, sentinel, bundle, untraced, change, noChange}
