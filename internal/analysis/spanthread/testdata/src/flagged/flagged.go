// Package flagged drops span provenance on the forensic chain.
package flagged

import (
	"repro/internal/core"
	"repro/internal/rib"
	"repro/internal/trace"
)

func conflictNoSpan(p core.Prefix, origin core.ASN) core.Conflict {
	return core.Conflict{ // want `Conflict literal without an explicit Span`
		Prefix: p,
		Origin: origin,
	}
}

func announcementNoSpan(p core.Prefix) core.Announcement {
	return core.Announcement{Prefix: p} // want `Announcement literal without an explicit Span`
}

func bundleNoSpan(id int) trace.AlarmBundle {
	return trace.AlarmBundle{ID: id, Verdict: "conflict"} // want `AlarmBundle literal without an explicit Span`
}

func bundleNoVerdict(id int, span uint64) trace.AlarmBundle {
	return trace.AlarmBundle{ID: id, Span: span} // want `AlarmBundle literal without an explicit Verdict`
}

func bundleNoSpanNoVerdict(id int) trace.AlarmBundle {
	return trace.AlarmBundle{ID: id} // want `AlarmBundle literal without an explicit Span` `AlarmBundle literal without an explicit Verdict`
}

func positional(p core.Prefix, origin, from core.ASN) core.Conflict {
	return core.Conflict{p, origin, from, 7} // want `Conflict built with a positional literal`
}

func changeNoReason() rib.Change {
	return rib.Change{Changed: true} // want `rib\.Change with Changed: true but no Reason`
}

var _ = []interface{}{conflictNoSpan, announcementNoSpan, bundleNoSpan, bundleNoVerdict, bundleNoSpanNoVerdict, positional, changeNoReason}
