// Package spanthread enforces the forensic span-threading contract
// (PR 5): every value that enters the MOAS forensic chain must state
// its message-span provenance explicitly, so a refactor of the live
// path (the planned stage-pipeline restructuring in particular) cannot
// silently drop the wire.Decoder ordinal that lets an operator trace an
// alarm back to the exact UPDATE that caused it.
//
// Two rules:
//
//   - composite literals of core.Announcement, core.Conflict, and
//     trace.AlarmBundle must carry an explicit Span: key. Span zero is
//     a legitimate value ("no message context"), but it must be written
//     down — an omitted field and a deliberate zero are
//     indistinguishable at the literal and mean different things to a
//     reviewer. Positional literals are flagged for the same reason.
//   - composite literals of rib.Change that state Changed: true must
//     also state a Reason: the trace/forensic consumers classify
//     changes by Reason, and a defaulted ReasonNone on a real change
//     reads as "decision process ran, nothing happened".
//   - composite literals of trace.AlarmBundle must additionally carry
//     an explicit Verdict: the bundle stores the verdict as a bare
//     string, so a defaulted "" (or an accidental core.VerdictUnset
//     stringification) would serialize as a legitimate-looking field.
//     State the checker verdict, or Verdict:
//     core.VerdictUnset.String() deliberately.
//
// Empty literals (T{}) are zero-value sentinels, not forensic records,
// and are exempt.
package spanthread

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer enforces span/reason threading on the forensic chain.
var Analyzer = &analysis.Analyzer{
	Name: "spanthread",
	Doc: "flags core.Announcement/core.Conflict/trace.AlarmBundle literals without an explicit " +
		"Span, trace.AlarmBundle literals without an explicit Verdict, and rib.Change literals " +
		"with Changed: true but no Reason",
	Run: run,
}

// spanTypes are the forensic types that must state Span explicitly,
// keyed by (package path suffix, type name).
var spanTypes = []struct{ pkg, name string }{
	{"internal/core", "Announcement"},
	{"internal/core", "Conflict"},
	{"internal/trace", "AlarmBundle"},
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[cl]
			if !ok || tv.Type == nil {
				return true
			}
			for _, st := range spanTypes {
				if analysis.IsPkgType(tv.Type, st.pkg, st.name) {
					checkSpan(pass, cl, st.name)
					return true
				}
			}
			if analysis.IsPkgType(tv.Type, "internal/rib", "Change") {
				checkChangeReason(pass, cl)
			}
			return true
		})
	}
	return nil
}

// checkSpan requires an explicit Span key on a non-empty keyed literal,
// and — for trace.AlarmBundle — an explicit Verdict as well.
func checkSpan(pass *analysis.Pass, cl *ast.CompositeLit, typeName string) {
	if len(cl.Elts) == 0 {
		return // zero-value sentinel
	}
	keyed, hasSpan, hasVerdict := true, false, false
	for _, e := range cl.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			keyed = false
			break
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			switch id.Name {
			case "Span":
				hasSpan = true
			case "Verdict":
				hasVerdict = true
			}
		}
	}
	if !keyed {
		pass.Reportf(cl.Pos(),
			"%s built with a positional literal: use a keyed literal with an explicit Span so forensic provenance survives refactors",
			typeName)
		return
	}
	if !hasSpan {
		pass.Reportf(cl.Pos(),
			"%s literal without an explicit Span: thread the message span through (state Span: 0 deliberately if no message context exists)",
			typeName)
	}
	if typeName == "AlarmBundle" && !hasVerdict {
		pass.Reportf(cl.Pos(),
			"AlarmBundle literal without an explicit Verdict: an unset verdict serializes as a legitimate-looking field; state the checker verdict (core.VerdictUnset.String() if none exists)")
	}
}

// checkChangeReason requires Reason alongside Changed: true.
func checkChangeReason(pass *analysis.Pass, cl *ast.CompositeLit) {
	changedTrue, hasReason := false, false
	for _, e := range cl.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			return // positional Change literals are not part of the contract
		}
		id, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch id.Name {
		case "Changed":
			if v, ok := kv.Value.(*ast.Ident); ok && v.Name == "true" {
				changedTrue = true
			}
		case "Reason":
			hasReason = true
		}
	}
	if changedTrue && !hasReason {
		pass.Reportf(cl.Pos(),
			"rib.Change with Changed: true but no Reason: trace and forensic consumers classify changes by Reason")
	}
}
