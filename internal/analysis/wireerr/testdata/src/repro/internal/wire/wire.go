// Package wire is a fixture stub mirroring the codec entry points the
// wireerr analyzer protects.
package wire

import "io"

// Message is the stub message interface.
type Message interface{ Type() uint8 }

// Keepalive is a body-less stub message.
type Keepalive struct{}

// Type implements Message.
func (*Keepalive) Type() uint8 { return 4 }

// ReadMessage reads one message.
func ReadMessage(r io.Reader) (Message, error) { return nil, nil }

// WriteMessage writes one message.
func WriteMessage(w io.Writer, m Message) error { return nil }

// Encode serializes a message.
func Encode(m Message) ([]byte, error) { return nil, nil }

// Decode parses one message.
func Decode(b []byte) (Message, error) { return nil, nil }
