// Package flagged exercises the error-handling shapes wireerr rejects.
package flagged

import (
	"fmt"
	"io"

	"repro/internal/wire"
)

func drop(w io.Writer, m wire.Message) {
	wire.WriteMessage(w, m) // want `error from wire\.WriteMessage dropped; handle it or wrap it with %w and context`
}

func discard(w io.Writer, m wire.Message) {
	_ = wire.WriteMessage(w, m) // want `error from wire\.WriteMessage discarded into _; handle it or wrap it with %w and context`
}

func discardMulti(b []byte) wire.Message {
	m, _ := wire.Decode(b) // want `error from wire\.Decode discarded into _`
	return m
}

func bareReturn(w io.Writer, m wire.Message) error {
	return wire.WriteMessage(w, m) // want `error from wire\.WriteMessage returned unwrapped; wrap with %w and peer/message context`
}

func barePropagate(r io.Reader) (wire.Message, error) {
	m, err := wire.ReadMessage(r)
	if err != nil {
		return nil, err // want `wire codec error returned unwrapped; wrap with fmt\.Errorf\("\.\.\.: %w", err\) and peer/message context`
	}
	return m, nil
}

func flatten(r io.Reader) (wire.Message, error) {
	m, err := wire.ReadMessage(r)
	if err != nil {
		return nil, fmt.Errorf("read from peer: %v", err) // want `wire codec error flattened with %v/%s; use %w so the NOTIFICATION code survives errors\.As`
	}
	return m, nil
}

func flattenIfInit(b []byte) error {
	if _, err := wire.Decode(b); err != nil {
		return fmt.Errorf("decode: %s", err) // want `wire codec error flattened with %v/%s`
	}
	return nil
}
