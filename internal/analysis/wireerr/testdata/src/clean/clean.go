// Package clean holds error-handling shapes wireerr must accept.
package clean

import (
	"errors"
	"fmt"
	"io"
	"log"

	"repro/internal/wire"
)

func wrapped(r io.Reader, peer string) (wire.Message, error) {
	m, err := wire.ReadMessage(r)
	if err != nil {
		return nil, fmt.Errorf("read from %s: %w", peer, err)
	}
	return m, nil
}

func wrappedIfInit(w io.Writer, m wire.Message, peer string) error {
	if err := wire.WriteMessage(w, m); err != nil {
		return fmt.Errorf("write keepalive to %s: %w", peer, err)
	}
	return nil
}

// handling without propagating is fine: the error is consumed.
func handled(b []byte) wire.Message {
	m, err := wire.Decode(b)
	if err != nil {
		log.Printf("decode: %v", err)
		return nil
	}
	return m
}

// wrapping a DIFFERENT error with %v inside the guard is not a wire
// codec flattening.
func otherErr(r io.Reader) error {
	_, err := wire.ReadMessage(r)
	if err != nil {
		other := errors.New("secondary")
		return fmt.Errorf("cleanup: %v (while handling %w)", other, err)
	}
	return nil
}

// non-wire functions with the same names are out of scope.
type codec struct{}

func (codec) Encode(m wire.Message) ([]byte, error) { return nil, nil }

func localNames(c codec, m wire.Message) {
	c.Encode(m)
	_, _ = c.Encode(m)
}

func suppressed(w io.Writer, m wire.Message) {
	//repro:vet ignore wireerr -- exercising the suppression path
	_ = wire.WriteMessage(w, m)
}
