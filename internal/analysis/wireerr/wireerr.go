// Package wireerr enforces the error-handling contract around the
// internal/wire codec: every error from Encode/Decode/ReadMessage/
// WriteMessage must be handled, and when propagated it must be wrapped
// with %w plus context (which peer, which message, which prefix).
//
// The wire codec is the repo's trust boundary: its *MessageError values
// carry the NOTIFICATION code/subcode a conformant speaker must send
// back, so dropping or flattening them (fmt.Errorf with %v, or a bare
// return) silently degrades protocol behaviour and strips the context
// an operator needs to attribute a malformed announcement to a peer.
//
// Flagged:
//
//	wire.WriteMessage(c, m)             // result dropped
//	_ = wire.WriteMessage(c, m)         // explicitly discarded
//	err := wire.ReadMessage(c)
//	if err != nil { return err }        // propagated unwrapped
//	... fmt.Errorf("read: %v", err)     // wrapped without %w
//	return wire.WriteMessage(c, m)      // returned unwrapped
//
// Deliberate best-effort writes (teardown notifications) are annotated
// with a suppression comment; see docs/static-analysis.md.
package wireerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer enforces wrap-with-context on wire codec errors.
var Analyzer = &analysis.Analyzer{
	Name: "wireerr",
	Doc: "flags dropped or unwrapped errors from internal/wire encode/decode paths; " +
		"they must be wrapped with %w and peer/message context",
	Run: run,
}

const wirePath = "internal/wire"

// wireFuncs are the codec entry points whose errors are protected.
var wireFuncs = map[string]bool{
	"Encode":       true,
	"Decode":       true,
	"ReadMessage":  true,
	"WriteMessage": true,
}

func run(pass *analysis.Pass) error {
	// The codec package itself composes these internally.
	if analysis.HasPathSuffix(pass.Pkg.Path(), wirePath) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isWireCall(pass, call) {
				pass.Reportf(n.Pos(), "error from wire.%s dropped; handle it or wrap it with %%w and context",
					calleeName(pass, call))
			}
		case *ast.AssignStmt:
			checkAssign(pass, n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isWireCall(pass, call) {
					pass.Reportf(n.Pos(), "error from wire.%s returned unwrapped; wrap with %%w and peer/message context",
						calleeName(pass, call))
				}
			}
		case *ast.BlockStmt:
			checkErrFlow(pass, n)
		}
		return true
	})
	return nil
}

func isWireCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil || !wireFuncs[f.Name()] {
		return false
	}
	return analysis.HasPathSuffix(f.Pkg().Path(), wirePath)
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if f := analysis.CalleeFunc(pass.TypesInfo, call); f != nil {
		return f.Name()
	}
	return "?"
}

// checkAssign flags `_ = wire.X(...)` and multi-assigns that discard
// the error position into the blank identifier.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !isWireCall(pass, call) {
		return
	}
	// The error is the last result of every protected wire function.
	last := as.Lhs[len(as.Lhs)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(as.Pos(), "error from wire.%s discarded into _; handle it or wrap it with %%w and context",
			calleeName(pass, call))
	}
}

// checkErrFlow scans a block for the idiom
//
//	x, err := wire.X(...)        (or: if err := wire.X(...); err != nil)
//	if err != nil { ... }
//
// and, within the guard body, flags bare `return err` and fmt.Errorf
// wrappings of err whose format verb is not %w.
func checkErrFlow(pass *analysis.Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		var (
			errObj types.Object
			guard  *ast.IfStmt
		)
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			errObj = wireErrObj(pass, s)
			if errObj == nil {
				continue
			}
			// Find the if err != nil guard among the following statements,
			// stopping if err is reassigned.
			for _, next := range block.List[i+1:] {
				if ifs, ok := next.(*ast.IfStmt); ok && guardsErr(pass, ifs.Cond, errObj) {
					guard = ifs
					break
				}
				if reassigns(pass, next, errObj) {
					break
				}
			}
		case *ast.IfStmt:
			init, ok := s.Init.(*ast.AssignStmt)
			if !ok {
				continue
			}
			errObj = wireErrObj(pass, init)
			if errObj != nil && guardsErr(pass, s.Cond, errObj) {
				guard = s
			}
		}
		if errObj == nil || guard == nil {
			continue
		}
		checkGuardBody(pass, guard.Body, errObj)
	}
}

// wireErrObj returns the object bound to the error result of a wire
// call in this assignment, or nil.
func wireErrObj(pass *analysis.Pass, as *ast.AssignStmt) types.Object {
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !isWireCall(pass, call) {
		return nil
	}
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || last.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[last]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[last]
}

// guardsErr matches `err != nil` for the given err object.
func guardsErr(pass *analysis.Pass, cond ast.Expr, errObj types.Object) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if id, ok := ast.Unparen(side).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == errObj {
			return true
		}
	}
	return false
}

func reassigns(pass *analysis.Pass, stmt ast.Stmt, errObj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return !found
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if pass.TypesInfo.Uses[id] == errObj || pass.TypesInfo.Defs[id] == errObj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// checkGuardBody flags unwrapped propagation of errObj inside an
// `if err != nil` body.
func checkGuardBody(pass *analysis.Pass, body *ast.BlockStmt, errObj types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == errObj {
					pass.Reportf(n.Pos(),
						"wire codec error returned unwrapped; wrap with fmt.Errorf(\"...: %%w\", err) and peer/message context")
				}
			}
		case *ast.CallExpr:
			checkErrorf(pass, n, errObj)
		}
		return true
	})
}

// checkErrorf flags fmt.Errorf calls that include errObj but whose
// format string lacks %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr, errObj types.Object) {
	if !analysis.IsPkgFunc(pass.TypesInfo, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	usesErr := false
	for _, arg := range call.Args[1:] {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == errObj {
			usesErr = true
		}
	}
	if !usesErr {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !strings.Contains(format, "%w") {
		pass.Reportf(call.Pos(), "wire codec error flattened with %%v/%%s; use %%w so the NOTIFICATION code survives errors.As")
	}
}
