package wireerr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wireerr"
)

func TestWireErr(t *testing.T) {
	tests := []struct {
		name string
		pkg  string
	}{
		{"dropped and unwrapped errors", "flagged"},
		{"handled and wrapped errors", "clean"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", wireerr.Analyzer, tc.pkg)
		})
	}
}
