// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver model, sufficient to host the
// repo-specific analyzers under internal/analysis/... without pulling
// x/tools into the module. An Analyzer inspects one type-checked
// package at a time through a Pass and reports Diagnostics; drivers
// (cmd/repro-vet, the analysistest harness) assemble passes from loaded
// packages and collect the findings.
//
// Findings can be silenced at a specific site with a suppression
// comment on the flagged line or the line directly above it:
//
//	//repro:vet ignore <analyzer> -- reason
//
// The reason is free text but required by convention; see
// docs/static-analysis.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects the package presented by
// the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in output and suppression comments;
	// lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant enforced and
	// why it matters.
	Doc string
	// Run performs the check. Diagnostics are reported through the
	// pass; the error return is for operational failures only.
	Run func(*Pass) error
}

// Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line:col: message (analyzer) form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Inspect walks every file of the pass in source order, calling fn for
// each node; fn returning false prunes the subtree (ast.Inspect
// semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// suppressionMarker introduces a site suppression comment.
const suppressionMarker = "repro:vet ignore"

// suppressedLines extracts, per file name, the set of line numbers on
// which a finding by the named analyzer is suppressed. A suppression
// comment covers its own line and the line below it, so both trailing
// comments and whole-line comments above the flagged statement work.
func suppressedLines(fset *token.FileSet, files []*ast.File, analyzer string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
				if !strings.HasPrefix(text, suppressionMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, suppressionMarker))
				name, _, _ := strings.Cut(rest, " ")
				name = strings.TrimSuffix(name, ",")
				if name != analyzer && name != "all" {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	return out
}

// Unit is the input a driver supplies per package: the parsed syntax
// plus type information, as produced by internal/analysis/load.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Run applies each analyzer to the unit and returns the surviving
// findings, suppression comments applied, sorted by position.
func Run(u Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, u.Pkg.Path(), err)
		}
		if len(pass.diagnostics) == 0 {
			continue
		}
		supp := suppressedLines(u.Fset, u.Files, a.Name)
		for _, d := range pass.diagnostics {
			if supp[d.Pos.Filename][d.Pos.Line] {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// Helpers shared by the repo's analyzers.

// NamedType unwraps pointers and aliases and returns the named type
// beneath, or nil.
func NamedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// IsPkgType reports whether t (through pointers/aliases) is the named
// type name declared in a package whose import path ends with
// pathSuffix (e.g. "internal/core"). Matching by suffix keeps the
// analyzers applicable to both the real packages and the analysistest
// fixture stubs, which mirror the real import paths under testdata/src.
func IsPkgType(t types.Type, pathSuffix, name string) bool {
	n := NamedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && hasPathSuffix(n.Obj().Pkg().Path(), pathSuffix)
}

// CalleeFunc resolves the called function/method of a CallExpr, or nil
// (e.g. for calls of function-typed values or conversions).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// IsPkgFunc reports whether call invokes the package-level function
// name from a package whose path ends with pathSuffix.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pathSuffix, name string) bool {
	f := CalleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Name() != name {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return hasPathSuffix(f.Pkg().Path(), pathSuffix)
}

// HasPathSuffix reports whether an import path is, or ends with a
// path-separated, suffix — the matching rule all repo analyzers use so
// they apply equally to the real packages and to fixture stubs that
// mirror the import paths under testdata/src.
func HasPathSuffix(path, suffix string) bool {
	return hasPathSuffix(path, suffix)
}

func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
