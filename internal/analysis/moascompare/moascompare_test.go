package moascompare_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/moascompare"
)

func TestMOASCompare(t *testing.T) {
	tests := []struct {
		name string
		pkg  string
	}{
		{"flagged comparisons", "flagged"},
		{"clean and suppressed comparisons", "clean"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", moascompare.Analyzer, tc.pkg)
		})
	}
}
