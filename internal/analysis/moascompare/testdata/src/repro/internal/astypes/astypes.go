// Package astypes is a fixture stub mirroring the declarations the
// moascompare analyzer keys on.
package astypes

// ASN is a 2-octet AS number.
type ASN uint16

// Community is a BGP community value.
type Community uint32

// NewCommunity packs the (ASN, value) halves.
func NewCommunity(asn ASN, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}
