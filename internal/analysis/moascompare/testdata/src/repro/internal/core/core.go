// Package core is a fixture stub mirroring the MOAS-list API surface
// the moascompare analyzer keys on.
package core

import "repro/internal/astypes"

// List is the MOAS list stub.
type List struct {
	asns []astypes.ASN
}

// NewList builds a list.
func NewList(origins ...astypes.ASN) List { return List{asns: origins} }

// Origins returns the member set.
func (l List) Origins() []astypes.ASN { return l.asns }

// Communities encodes the list.
func (l List) Communities() []astypes.Community { return nil }

// Equal is the canonical set comparison.
func (l List) Equal(other List) bool { return len(l.asns) == len(other.asns) }

// String renders the list.
func (l List) String() string { return "{}" }
