// Package flagged exercises every comparison shape moascompare rejects.
package flagged

import (
	"reflect"
	"slices"

	"repro/internal/core"
)

func deepEqualOnLists(a, b core.List) bool {
	return reflect.DeepEqual(a, b) // want `MOAS lists must be compared as sets with core\.List\.Equal, not reflect\.DeepEqual`
}

func slicesEqualOnOrigins(a, b core.List) bool {
	return slices.Equal(a.Origins(), b.Origins()) // want `MOAS lists must be compared as sets with core\.List\.Equal, not slices\.Equal`
}

func slicesCompareOnOrigins(a, b core.List) int {
	return slices.Compare(a.Origins(), b.Origins()) // want `MOAS lists must be compared as sets with core\.List\.Equal, not slices\.Compare`
}

func deepEqualOnCommunities(a, b core.List) bool {
	return reflect.DeepEqual(a.Communities(), b.Communities()) // want `MOAS lists must be compared as sets with core\.List\.Equal, not reflect\.DeepEqual`
}

func stringCompare(a, b core.List) bool {
	return a.String() == b.String() // want `comparing MOAS list String\(\) renderings`
}

func stringCompareNeq(a, b core.List) bool {
	return a.String() != b.String() // want `comparing MOAS list String\(\) renderings`
}
