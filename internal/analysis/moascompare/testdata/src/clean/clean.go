// Package clean holds comparisons moascompare must accept.
package clean

import (
	"reflect"
	"slices"

	"repro/internal/core"
)

// canonical set comparison: the one true way.
func equal(a, b core.List) bool {
	return a.Equal(b)
}

// non-MOAS uses of the comparison helpers are none of our business.
func unrelated(a, b []int, m map[string]int) bool {
	return slices.Equal(a, b) && reflect.DeepEqual(m, m)
}

// String comparisons on non-List types are fine.
type labeled struct{}

func (labeled) String() string { return "x" }

func strings(a, b labeled) bool {
	return a.String() == b.String()
}

// suppression: an acknowledged, justified exception stays quiet.
func suppressed(a, b core.List) bool {
	//repro:vet ignore moascompare -- exercising the suppression path
	return reflect.DeepEqual(a, b)
}
