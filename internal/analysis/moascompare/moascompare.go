// Package moascompare flags MOAS-list comparisons that bypass the
// canonical set-equality helper core.List.Equal.
//
// The paper's alarm condition (§4.2) is *set* inequality of MOAS lists:
// "the order in the list may differ, but the set of ASes included in
// each route announcement must be identical". core.List keeps its
// members canonical (sorted, deduplicated) exactly so that Equal is the
// one correct comparison. Comparing lists any other way — reflect.
// DeepEqual on the struct, ordered slice equality over Origins(), or
// comparing String() renderings — either re-derives the invariant in
// place (fragile under refactoring) or silently depends on it, and has
// historically been how BGP monitors come to disagree with themselves
// about identical data.
package moascompare

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Analyzer flags MOAS-list comparisons outside core.List.Equal.
var Analyzer = &analysis.Analyzer{
	Name: "moascompare",
	Doc: "flags ordered or reflective comparisons of MOAS lists/origin sets; " +
		"the paper's alarm condition is set equality, provided only by core.List.Equal",
	Run: run,
}

const corePath = "internal/core"

func run(pass *analysis.Pass) error {
	// The defining package may compare its own representation.
	if analysis.HasPathSuffix(pass.Pkg.Path(), corePath) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.BinaryExpr:
			checkBinary(pass, n)
		}
		return true
	})
	return nil
}

// comparison helpers whose use on MOAS lists is flagged.
var comparators = []struct{ path, name string }{
	{"reflect", "DeepEqual"},
	{"slices", "Equal"},
	{"slices", "EqualFunc"},
	{"slices", "Compare"},
	{"slices", "CompareFunc"},
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	for _, c := range comparators {
		if !analysis.IsPkgFunc(pass.TypesInfo, call, c.path, c.name) {
			continue
		}
		for _, arg := range call.Args {
			if isMOASListExpr(pass, arg) {
				pass.Reportf(call.Pos(),
					"MOAS lists must be compared as sets with core.List.Equal, not %s.%s", c.path, c.name)
				return
			}
		}
	}
}

func checkBinary(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	// a.String() == b.String() on MOAS lists: an ordered, render-based
	// comparison dressed up as set equality.
	if isListStringCall(pass, be.X) && isListStringCall(pass, be.Y) {
		pass.Reportf(be.Pos(),
			"comparing MOAS list String() renderings; use core.List.Equal for set equality")
	}
}

// isMOASListExpr reports whether e is a core.List value or an origin
// slice obtained from core.List.Origins()/Communities().
func isMOASListExpr(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := pass.TypesInfo.Types[e]; ok && analysis.IsPkgType(tv.Type, corePath, "List") {
		return true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Origins" && sel.Sel.Name != "Communities" {
		return false
	}
	recv, ok := pass.TypesInfo.Types[sel.X]
	return ok && analysis.IsPkgType(recv.Type, corePath, "List")
}

func isListStringCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "String" {
		return false
	}
	recv, ok := pass.TypesInfo.Types[sel.X]
	return ok && analysis.IsPkgType(recv.Type, corePath, "List")
}
