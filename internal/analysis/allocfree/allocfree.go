// Package allocfree statically enforces the repo's zero-allocation
// contract on the annotated hot paths (the PR 3 wire encode/decode
// path, rib.Best, the PR 5 trace record path, the PR 4 simbgp
// delivery path, and the PR 8 rpki.Validate ROV lookup). Functions
// carrying a //repro:allocfree annotation in
// their doc comment must not contain allocating constructs:
//
//   - growing append on non-scratch slices (a slice is scratch when it
//     reaches the function as a parameter, a field, or a value derived
//     from one — the append-in-place idiom the codec is built on)
//   - map, slice, or &struct composite literals, make, and new
//   - closures capturing variables (each capture boxes onto the heap)
//   - string <-> []byte / []rune conversions
//   - interface boxing at call sites (a concrete, non-pointer-shaped
//     value passed where an interface is expected)
//   - fmt.* calls
//
// Cold failure paths are carved out: allocating constructs inside a
// return statement whose final result is a non-nil error are exempt,
// because AllocsPerRun guards measure the success path and NOTIFICATION
// errors are by definition off it. Everything else needs a reasoned
// //repro:vet ignore.
//
// The check is intra-procedural: annotate every function on the hot
// path, not just the entry point. The dynamic AllocsPerRun guards stay;
// this analyzer catches the regression before a benchmark ever runs,
// and on paths the benchmarks do not exercise.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Marker is the annotation that opts a function into the check.
const Marker = "//repro:allocfree"

// Analyzer enforces the zero-allocation contract on annotated functions.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "flags allocating constructs (growing append, composite-literal/make/new, capturing " +
		"closures, string<->[]byte conversions, interface boxing, fmt calls) in functions " +
		"annotated //repro:allocfree",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotated(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// annotated reports whether the function's doc comment carries the
// //repro:allocfree marker.
func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), Marker) {
			return true
		}
	}
	return false
}

// checker carries the per-function state of one checkFunc invocation.
type checker struct {
	pass *analysis.Pass
	name string
	// scratch marks local variables with scratch provenance: parameters,
	// named results, and locals assigned from a parameter, field, or
	// another scratch value (possibly through an append-in-place call).
	// Appending to a scratch slice reuses caller-owned capacity and is
	// amortized allocation-free; appending to anything else grows a
	// fresh backing array.
	scratch map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, name: fd.Name.Name, scratch: make(map[types.Object]bool)}
	// Parameters (including the receiver) and named results are scratch
	// roots.
	mark := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if obj := pass.TypesInfo.Defs[n]; obj != nil {
					c.scratch[obj] = true
				}
			}
		}
	}
	mark(fd.Recv)
	mark(fd.Type.Params)
	mark(fd.Type.Results)

	// Pre-pass: propagate scratch provenance through assignments,
	// optimistically (a var is scratch if any assignment anywhere in the
	// function gives it scratch provenance). Flow-insensitivity errs
	// toward fewer false positives.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) == 0 {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.objOf(id)
				if obj == nil || c.scratch[obj] {
					continue
				}
				// x := expr / x, y := expr (single rhs: provenance of the
				// whole rhs covers every lhs).
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				}
				if rhs != nil && c.isScratch(rhs) {
					c.scratch[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	c.walk(fd.Body, false)
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Defs[id]
}

// isScratch reports whether e denotes caller-owned (or field-anchored)
// storage that append may grow without a steady-state allocation.
func (c *checker) isScratch(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.objOf(e)
		if obj == nil {
			return false
		}
		if c.scratch[obj] {
			return true
		}
		// Package-level scratch (e.g. a pool-backed buffer var).
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		return false
	case *ast.SelectorExpr:
		// A field of anything (receiver state, config, pool) is scratch:
		// growth is amortized against the owner's lifetime.
		return true
	case *ast.IndexExpr:
		return c.isScratch(e.X)
	case *ast.SliceExpr:
		return c.isScratch(e.X)
	case *ast.CallExpr:
		// append follows its destination: the result owns the same
		// backing array (or its in-place growth).
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return len(e.Args) > 0 && c.isScratch(e.Args[0])
			}
		}
		// The append-in-place idiom: a function handed a scratch slice
		// returns it extended (wire.AppendMessage, binary.AppendUint16,
		// encodePrefixes...). Only slice-typed arguments carry that
		// provenance; a scratch scalar (p.Len) must not taint the result.
		for _, a := range e.Args {
			tv, ok := c.pass.TypesInfo.Types[a]
			if !ok || tv.Type == nil {
				continue
			}
			if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
				continue
			}
			if c.isScratch(a) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// walk checks one statement/expression tree. coldReturn is true inside
// a return statement whose final result is a non-nil error — the cold
// failure path the contract does not cover.
func (c *checker) walk(n ast.Node, coldReturn bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.ReturnStmt:
		cold := coldReturn || c.isErrorReturn(n)
		for _, r := range n.Results {
			c.walk(r, cold)
		}
		return
	case *ast.FuncLit:
		if !coldReturn {
			if capt := c.captured(n); capt != "" {
				c.pass.Reportf(n.Pos(),
					"closure captures %s in allocfree function %s (captured variables are heap-allocated)",
					capt, c.name)
			}
		}
		// The literal's body runs as part of the annotated path; check it
		// with the same rules.
		c.walk(n.Body, coldReturn)
		return
	case *ast.CallExpr:
		c.checkCall(n, coldReturn)
		c.walk(n.Fun, coldReturn)
		for _, a := range n.Args {
			c.walk(a, coldReturn)
		}
		return
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				if !coldReturn {
					c.pass.Reportf(n.Pos(),
						"&%s literal allocates in allocfree function %s",
						typeLabel(c.pass, cl), c.name)
				}
				// Contents already reported via the outer flag.
				return
			}
		}
		c.walk(n.X, coldReturn)
		return
	case *ast.CompositeLit:
		if tv, ok := c.pass.TypesInfo.Types[n]; ok && tv.Type != nil && !coldReturn {
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				c.pass.Reportf(n.Pos(), "map literal allocates in allocfree function %s", c.name)
			case *types.Slice:
				if len(n.Elts) > 0 { // []T{} of len 0 is backed by zerobase
					c.pass.Reportf(n.Pos(), "slice literal allocates in allocfree function %s", c.name)
				}
			}
		}
		for _, e := range n.Elts {
			c.walk(e, coldReturn)
		}
		return
	}
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		c.walk(child, coldReturn)
		return false
	})
}

// isErrorReturn reports whether ret's final expression is a non-nil
// value of type error — the cold-path exemption.
func (c *checker) isErrorReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[last]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Identical(tv.Type, types.Universe.Lookup("error").Type())
}

// checkCall applies the call-site rules: append discipline, make/new,
// string conversions, fmt, and interface boxing of arguments.
func (c *checker) checkCall(call *ast.CallExpr, coldReturn bool) {
	if coldReturn {
		return
	}
	fun := ast.Unparen(call.Fun)

	// Builtins and conversions.
	if id, ok := fun.(*ast.Ident); ok {
		switch c.pass.TypesInfo.Uses[id].(type) {
		case *types.Builtin:
			switch id.Name {
			case "append":
				if len(call.Args) > 0 && !c.isScratch(call.Args[0]) {
					c.pass.Reportf(call.Pos(),
						"append to non-scratch slice %s in allocfree function %s (grow caller-owned or field-anchored storage instead)",
						types.ExprString(call.Args[0]), c.name)
				}
			case "make":
				c.pass.Reportf(call.Pos(), "make allocates in allocfree function %s", c.name)
			case "new":
				c.pass.Reportf(call.Pos(), "new allocates in allocfree function %s", c.name)
			}
			return
		}
	}
	if tv, ok := c.pass.TypesInfo.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		c.checkConversion(call, tv.Type)
		return
	}

	// fmt calls.
	if f := analysis.CalleeFunc(c.pass.TypesInfo, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		c.pass.Reportf(call.Pos(), "fmt.%s call in allocfree function %s (fmt formats through interfaces and allocates)",
			f.Name(), c.name)
		return
	}

	// Interface boxing of arguments.
	c.checkBoxing(call)
}

// checkConversion flags string <-> byte/rune-slice conversions, which
// copy the data.
func (c *checker) checkConversion(call *ast.CallExpr, to types.Type) {
	arg := ast.Unparen(call.Args[0])
	if id, ok := arg.(*ast.Ident); ok && id.Name == "nil" {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	from := tv.Type
	if isString(to) && isByteOrRuneSlice(from) {
		c.pass.Reportf(call.Pos(), "[]byte-to-string conversion copies in allocfree function %s", c.name)
	}
	if isByteOrRuneSlice(to) && isString(from) {
		c.pass.Reportf(call.Pos(), "string-to-%s conversion copies in allocfree function %s",
			types.TypeString(to, nil), c.name)
	}
}

// checkBoxing flags concrete, non-pointer-shaped values passed where an
// interface parameter is expected. Pointer-shaped kinds (pointers,
// funcs, chans, maps, unsafe.Pointer) fit in an interface word without
// allocating; everything else is boxed onto the heap.
func (c *checker) checkBoxing(call *ast.CallExpr) {
	sig := callSignature(c.pass.TypesInfo, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // x... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := c.pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
			continue // nil or constant (constants intern in small-value caches)
		}
		at := tv.Type
		if types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		c.pass.Reportf(arg.Pos(),
			"%s value boxed into interface argument in allocfree function %s (pass a pointer or restructure the call)",
			types.TypeString(at, relativeTo(c.pass.Pkg)), c.name)
	}
}

func relativeTo(pkg *types.Package) types.Qualifier {
	return func(p *types.Package) string {
		if p == pkg {
			return ""
		}
		return p.Name()
	}
}

// callSignature resolves the signature of the called function, if the
// call is not a conversion or builtin.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// captured returns the name of a variable the literal captures from an
// enclosing function scope, or "".
func (c *checker) captured(lit *ast.FuncLit) string {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() != c.pass.Pkg {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() == c.pass.Pkg.Scope() {
			return true
		}
		// Declared outside the literal's extent -> captured.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

func typeLabel(pass *analysis.Pass, cl *ast.CompositeLit) string {
	if tv, ok := pass.TypesInfo.Types[cl]; ok && tv.Type != nil {
		return types.TypeString(tv.Type, relativeTo(pass.Pkg))
	}
	return "composite"
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// pointerShaped reports whether a value of type t is stored directly in
// an interface word (no heap box on conversion).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}
