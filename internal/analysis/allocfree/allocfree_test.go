package allocfree_test

import (
	"testing"

	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/analysistest"
)

func TestAllocFree(t *testing.T) {
	tests := []struct {
		name string
		pkg  string
	}{
		{"allocating constructs and the naive encode rewrite", "flagged"},
		{"append-in-place wire encode copy and scratch idioms", "clean"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", allocfree.Analyzer, tc.pkg)
		})
	}
}
