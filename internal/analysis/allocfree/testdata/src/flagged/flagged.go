// Package flagged exercises every allocating construct allocfree
// rejects, anchored by a deliberately-allocating rewrite of the wire
// UPDATE encode path (fresh section buffers and concatenation instead
// of append-in-place).
package flagged

import "fmt"

type Prefix struct {
	Addr uint32
	Len  uint8
}

type Update struct {
	Withdrawn []Prefix
	NLRI      []Prefix
}

// encodeBodyNaive is the UPDATE encode path rewritten the naive way:
// build each section in a fresh slice, then concatenate.
//
//repro:allocfree
func (u *Update) encodeBodyNaive() ([]byte, error) {
	section := make([]byte, 0, 16) // want `make allocates in allocfree function encodeBodyNaive`
	for _, p := range u.Withdrawn {
		section = append(section, p.Len) // want `append to non-scratch slice section`
	}
	var body []byte
	body = append(body, section...) // want `append to non-scratch slice body`
	return body, nil
}

//repro:allocfree
func mapLit() map[uint32]bool {
	return map[uint32]bool{} // want `map literal allocates in allocfree function mapLit`
}

//repro:allocfree
func sliceLit(n uint8) []byte {
	return []byte{n, 0} // want `slice literal allocates in allocfree function sliceLit`
}

//repro:allocfree
func structPtr(p Prefix) *Prefix {
	return &Prefix{Addr: p.Addr} // want `&Prefix literal allocates in allocfree function structPtr`
}

//repro:allocfree
func newAlloc() *Update {
	return new(Update) // want `new allocates in allocfree function newAlloc`
}

//repro:allocfree
func capture(n int) func() int {
	return func() int { return n } // want `closure captures n in allocfree function capture`
}

//repro:allocfree
func toString(b []byte) string {
	return string(b) // want `\[\]byte-to-string conversion copies in allocfree function toString`
}

//repro:allocfree
func toBytes(s string) []byte {
	return []byte(s) // want `string-to-\[\]byte conversion copies in allocfree function toBytes`
}

func digest(v interface{}) {}

//repro:allocfree
func boxes(p Prefix) {
	digest(p) // want `Prefix value boxed into interface argument in allocfree function boxes`
}

//repro:allocfree
func format(n int) string {
	return fmt.Sprintf("n=%d", n) // want `fmt\.Sprintf call in allocfree function format`
}
