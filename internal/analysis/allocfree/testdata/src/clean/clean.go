// Package clean holds allocation-free shapes the allocfree analyzer
// must accept, including a faithful copy of the wire UPDATE encode
// path (append-in-place on the caller's buffer, length fix-ups via
// PutUint16, fmt only on cold error returns).
package clean

import (
	"encoding/binary"
	"fmt"
)

type Prefix struct {
	Addr uint32
	Len  uint8
}

type Update struct {
	Withdrawn []Prefix
	NLRI      []Prefix
}

// encodePrefixes mirrors wire.encodePrefixes: every byte is appended to
// the caller-owned dst, and the only fmt call sits on an error return.
//
//repro:allocfree
func encodePrefixes(dst []byte, prefixes []Prefix) ([]byte, error) {
	for _, p := range prefixes {
		if p.Len > 32 {
			return nil, fmt.Errorf("prefix length %d out of range", p.Len)
		}
		dst = append(dst, p.Len)
		octets := (int(p.Len) + 7) / 8
		for i := 0; i < octets; i++ {
			dst = append(dst, byte(p.Addr>>uint(24-8*i)))
		}
	}
	return dst, nil
}

// encodeBody mirrors wire.(*Update).encodeBody: sections are appended
// in place and their length prefixes fixed up afterwards, so encoding
// never builds intermediate slices.
//
//repro:allocfree
func (u *Update) encodeBody(dst []byte) ([]byte, error) {
	wOff := len(dst)
	dst = append(dst, 0, 0)
	dst, err := encodePrefixes(dst, u.Withdrawn)
	if err != nil {
		return nil, fmt.Errorf("encode withdrawn routes: %w", err)
	}
	binary.BigEndian.PutUint16(dst[wOff:], uint16(len(dst)-wOff-2))
	dst, err = encodePrefixes(dst, u.NLRI)
	if err != nil {
		return nil, fmt.Errorf("encode NLRI: %w", err)
	}
	return dst, nil
}

// appendAttrHeader mirrors wire.appendAttrHeader, including returning
// the extension of a scratch slice through a stdlib append helper.
//
//repro:allocfree
func appendAttrHeader(dst []byte, flags, code uint8, vLen int) ([]byte, error) {
	if vLen > 0xffff {
		return nil, fmt.Errorf("attribute %d too long: %d bytes", code, vLen)
	}
	if vLen > 0xff {
		dst = append(dst, flags, code)
		return binary.BigEndian.AppendUint16(dst, uint16(vLen)), nil
	}
	return append(dst, flags, code, uint8(vLen)), nil
}

// Decoder mirrors the wire scratch-decoder: slices hanging off the
// receiver are reused across messages, so growing them is amortized
// allocation-free.
type Decoder struct {
	asns []uint16
	span uint64
}

//repro:allocfree
func (d *Decoder) decodeASNs(data []byte) {
	d.asns = d.asns[:0]
	for len(data) >= 2 {
		d.asns = append(d.asns, binary.BigEndian.Uint16(data))
		data = data[2:]
	}
	d.span++
}

// seed allocates once at construction time; the annotation still covers
// the function, so the deliberate allocation carries a reasoned ignore.
//
//repro:allocfree
func (d *Decoder) seed() {
	//repro:vet ignore allocfree -- one-time capacity seed, not steady-state
	d.asns = make([]uint16, 0, 64)
}

// report is off the hot path: no annotation, no checks.
func report(n int) string {
	return fmt.Sprintf("n=%d", n)
}

func sink(vs ...interface{}) {}

var global []byte

// passThrough covers the non-boxing shapes: forwarding a variadic slice
// with ..., passing pointer-shaped values into interface parameters,
// and growing a package-level scratch buffer.
//
//repro:allocfree
func passThrough(vs []interface{}, p *Prefix) {
	sink(vs...)
	sink(p)
	global = append(global, 1)
}

var _ = report
