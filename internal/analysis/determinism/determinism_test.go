package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	tests := []struct {
		name string
		pkg  string
	}{
		{"nondeterministic constructs in scope", "detflagged/internal/measure"},
		{"deterministic idioms in scope", "detclean/internal/sim"},
		{"out-of-scope package unchecked", "outofscope"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			analysistest.Run(t, "testdata", determinism.Analyzer, tc.pkg)
		})
	}
}
