// Package determinism statically enforces the evaluation pipeline's
// byte-identical-to-serial contract (PR 4): a sweep with a fixed seed
// must produce the same bytes whether it runs on one worker or N. The
// check applies to the deterministic packages — internal/sim,
// internal/simbgp, internal/experiment, internal/routegen,
// internal/measure, internal/mrt (an archive must decode to the
// same records on every run; its rislive sibling deliberately stays
// outside the scope, since reconnect jitter and wall-clock timestamps
// are part of that package's job) and internal/rpki (ROV results feed
// the simulator's alarm classification, so lookups and snapshots must
// not depend on map order or wall clock; the RTR client's reconnect
// delays come from internal/backoff, which owns the jitter) — and
// flags the three constructs that historically break the contract:
//
//   - ranging over a map while appending to a slice, scheduling events,
//     sending on a channel, or printing — Go randomizes map iteration
//     order, so anything order-sensitive fed from a map range is
//     nondeterministic unless the collected slice is sorted afterwards
//     in the same function (which is recognized and exempt)
//   - time.Now / time.Since / time.Until / time.Sleep and the global
//     math/rand functions — virtual time comes from the sim engine and
//     randomness from per-run rand.New(rand.NewSource(seed)) instances;
//     wall-clock or shared-state sources differ across runs
//   - select statements with two or more value-binding receive cases —
//     when several results are ready, select picks uniformly at random;
//     result collection must drain one data channel (a bare <-done
//     cancellation case does not count)
//
// Packages outside the deterministic set are not checked.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer enforces the deterministic-evaluation contract.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flags map-range order dependence, wall-clock/global-rand use, and multi-receive " +
		"selects in the deterministic evaluation packages (sim, simbgp, experiment, routegen, measure, mrt, rpki)",
	Run: run,
}

// scopeSuffixes are the packages under the byte-identical-to-serial
// contract.
var scopeSuffixes = []string{
	"internal/sim",
	"internal/simbgp",
	"internal/experiment",
	"internal/routegen",
	"internal/measure",
	"internal/mrt",
	"internal/rpki",
}

// allowedRandFuncs are the package-level math/rand functions that
// construct seeded per-run state rather than consuming the global
// source.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, s := range scopeSuffixes {
		if analysis.HasPathSuffix(pass.Pkg.Path(), s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// sortedExprs collects the rendered arguments of every sort call in
	// the function; a map-range append into one of them is ordered
	// before use and therefore exempt.
	sorted := sortedExprs(pass, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkTimeAndRand(pass, n, fd.Name.Name)
		case *ast.RangeStmt:
			if isMapType(pass, n.X) {
				checkMapRange(pass, n, fd.Name.Name, sorted)
			}
		case *ast.SelectStmt:
			checkSelect(pass, n, fd.Name.Name)
		}
		return true
	})
}

// checkTimeAndRand flags wall-clock reads and global math/rand use.
func checkTimeAndRand(pass *analysis.Pass, call *ast.CallExpr, funcName string) {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. a local *rand.Rand, engine.Now) are fine
	}
	switch f.Pkg().Path() {
	case "time":
		switch f.Name() {
		case "Now", "Since", "Until", "Sleep":
			pass.Reportf(call.Pos(),
				"time.%s in deterministic package (use the sim engine's virtual clock; wall time differs across runs) in %s",
				f.Name(), funcName)
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[f.Name()] {
			pass.Reportf(call.Pos(),
				"global math/rand.%s in deterministic package (draw from a per-run rand.New(rand.NewSource(seed))) in %s",
				f.Name(), funcName)
		}
	}
}

// checkMapRange flags order-sensitive sinks inside a map-range body.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, funcName string, sorted map[string]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if len(call.Args) == 0 {
					continue
				}
				base := types.ExprString(call.Args[0])
				if sorted[base] {
					continue
				}
				pass.Reportf(call.Pos(),
					"append to %s inside a map range in %s: element order follows map iteration order (sort %s afterwards, or iterate sorted keys)",
					base, funcName, base)
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside a map range in %s: delivery order follows map iteration order", funcName)
		case *ast.CallExpr:
			if f := analysis.CalleeFunc(pass.TypesInfo, n); f != nil {
				switch f.Name() {
				case "Schedule", "ScheduleTyped", "ScheduleAt":
					pass.Reportf(n.Pos(),
						"%s inside a map range in %s: event order follows map iteration order (iterate sorted keys)",
						f.Name(), funcName)
				case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln", "Sprint", "Sprintf", "Sprintln":
					if f.Pkg() != nil && f.Pkg().Path() == "fmt" {
						pass.Reportf(n.Pos(),
							"fmt.%s inside a map range in %s: output order follows map iteration order", f.Name(), funcName)
					}
				}
			}
		}
		return true
	})
}

// checkSelect flags selects that bind received values from two or more
// channels: when both are ready the winner is random, so a result
// merger built this way interleaves nondeterministically.
func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt, funcName string) {
	binding := 0
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		if as, ok := comm.Comm.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			if u, ok := ast.Unparen(as.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				binding++
			}
		}
	}
	if binding >= 2 {
		pass.Reportf(sel.Pos(),
			"select with %d value-binding receives in %s: ready-channel choice is random; collect results from one channel (reorder-buffer pattern)",
			binding, funcName)
	}
}

// sortedExprs returns the rendered form of every argument passed to a
// sort.* or slices.Sort* call in the body.
func sortedExprs(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := analysis.CalleeFunc(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, a := range call.Args {
			out[types.ExprString(a)] = true
		}
		return true
	})
	return out
}

func isMapType(pass *analysis.Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
