// Package outofscope is outside the deterministic package set: wall
// clock and global rand are allowed here, so nothing is reported.
package outofscope

import (
	"math/rand"
	"time"
)

func Wall() int64 { return time.Now().UnixNano() }

func Roll() int { return rand.Intn(6) }
