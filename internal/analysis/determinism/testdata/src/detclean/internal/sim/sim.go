// Package sim (fixture) holds deterministic shapes the analyzer must
// accept: map ranges whose collected slice is sorted before use, seeded
// per-run rand instances, and single-data-channel result collection.
package sim

import (
	"math/rand"
	"sort"
)

// sortedKeys collects map keys and sorts them in the same function:
// order independence is restored, so the append is exempt.
func sortedKeys(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// seeded draws from a per-run source; rand.New/rand.NewSource construct
// state rather than consuming the global source, and r.Intn is a
// method on the local instance.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// drain collects results from one data channel; the done case is a
// bare receive and does not bind a value.
func drain(results chan int, done chan struct{}) int {
	total := 0
	for {
		select {
		case v := <-results:
			total += v
		case <-done:
			return total
		}
	}
}

// aggregate ranges over a map with an order-independent sink.
func aggregate(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

var _ = []interface{}{sortedKeys, seeded, drain, aggregate}
