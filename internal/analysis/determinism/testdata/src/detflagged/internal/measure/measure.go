// Package measure (fixture) exercises the constructs determinism
// rejects inside the deterministic package set; the import path ends in
// internal/measure, putting it in scope.
package measure

import (
	"fmt"
	"math/rand"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package`
}

func globalRand() int {
	return rand.Intn(6) // want `global math/rand\.Intn in deterministic package`
}

func collectKeys(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `append to keys inside a map range`
	}
	return keys
}

func fanOut(m map[int]string, ch chan int) {
	for k := range m {
		ch <- k // want `channel send inside a map range`
	}
}

type engine struct{}

func (engine) Schedule(at int) {}

func scheduleAll(e engine, m map[int]bool) {
	for k := range m {
		e.Schedule(k) // want `Schedule inside a map range`
	}
}

func dump(m map[int]string) {
	for k, v := range m {
		fmt.Printf("%d=%s\n", k, v) // want `fmt\.Printf inside a map range`
	}
}

func merge(a, b chan int) int {
	total := 0
	for i := 0; i < 2; i++ {
		select { // want `select with 2 value-binding receives`
		case v := <-a:
			total += v
		case v := <-b:
			total += v
		}
	}
	return total
}

var _ = []interface{}{wallClock, globalRand, collectKeys, fanOut, scheduleAll, dump, merge}
