// MRT ingestion for the measurement pipeline: the §3 origin-set study
// run over real collector archives instead of synthetic routegen dumps.
// One MRT table dump plays the role of one day's snapshot; a directory
// of them (sorted by file name, the collectors' natural date order) is
// a study series.

package measure

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/mrt"
)

// ObserveMRT ingests one MRT table dump (or update trace) as the given
// study day. Every RIB entry and every announced NLRI contributes one
// (prefix, origin) sighting through the same day accumulator Observe
// uses. The day's date is taken from the first record's timestamp
// (truncated to the UTC day). Records with malformed bodies are
// skipped and counted in the result; a terminal framing error aborts.
func (a *Analysis) ObserveMRT(day int, r io.Reader) (MRTResult, error) {
	var res MRTResult
	rd, err := mrt.NewReader(r)
	if err != nil {
		return res, err
	}
	a.beginDay()
	var date time.Time
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			res.Stats = rd.Stats()
			if mrt.IsTerminal(err) {
				return res, err
			}
			res.Malformed++
			continue
		}
		if date.IsZero() {
			date = rec.Time.Truncate(24 * time.Hour)
		}
		switch rec.Kind {
		case mrt.KindRIB:
			for i := range rec.Entries {
				if origin, ok := rec.Entries[i].Path.Origin(); ok {
					a.noteOrigin(rec.Prefix, origin)
				}
			}
		case mrt.KindMessage:
			if rec.Update == nil {
				continue
			}
			if origin, ok := rec.Update.Attrs.ASPath.Origin(); ok {
				for _, prefix := range rec.Update.NLRI {
					a.noteOrigin(prefix, origin)
				}
			}
		}
	}
	a.endDay(day, date)
	res.Stats = rd.Stats()
	return res, nil
}

// MRTResult reports what one MRT ingest consumed.
type MRTResult struct {
	// Stats are the reader's counters.
	Stats mrt.Stats
	// Malformed counts records whose bodies failed to decode and were
	// skipped.
	Malformed uint64
}

// MRTFile is the per-file report of ObserveMRTDir.
type MRTFile struct {
	Name   string
	Result MRTResult
}

// ObserveMRTDir runs the study over every regular file in dir in
// lexical name order (collector archives embed the date in the name,
// so that is chronological order), one file per study day.
func (a *Analysis) ObserveMRTDir(dir string) ([]MRTFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("measure: read MRT dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("measure: no MRT files in %s", dir)
	}
	out := make([]MRTFile, 0, len(names))
	for day, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		res, err := a.ObserveMRT(day, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("measure: %s: %w", name, err)
		}
		out = append(out, MRTFile{Name: name, Result: res})
	}
	return out, nil
}
