package measure

import (
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/routegen"
)

func entry(prefix string, origin astypes.ASN) routegen.Entry {
	return routegen.Entry{
		Prefix: astypes.MustPrefix(mustAddr(prefix)),
		Path:   astypes.NewSeqPath(6447, 701, origin),
	}
}

func mustAddr(s string) (uint32, uint8) {
	p, err := astypes.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p.Addr, p.Len
}

func dump(day int, entries ...routegen.Entry) *routegen.Dump {
	return &routegen.Dump{
		Day:     day,
		Date:    routegen.StudyStart.AddDate(0, 0, day),
		Entries: entries,
	}
}

func TestObserveCountsMOASOnly(t *testing.T) {
	a := NewAnalysis()
	a.Observe(dump(0,
		entry("10.0.0.0/8", 1),
		entry("10.0.0.0/8", 2), // MOAS
		entry("20.0.0.0/8", 3), // single origin
		entry("30.0.0.0/8", 4),
		entry("30.0.0.0/8", 4), // duplicate origin: not MOAS
	))
	daily := a.Daily()
	if len(daily) != 1 || daily[0].Cases != 1 {
		t.Fatalf("daily = %+v", daily)
	}
}

func TestDurationCountsNonContiguousDays(t *testing.T) {
	// "regardless of whether the days were continuous and regardless of
	// whether the same set of origins was involved" (§3.1).
	a := NewAnalysis()
	a.Observe(dump(0, entry("10.0.0.0/8", 1), entry("10.0.0.0/8", 2)))
	a.Observe(dump(1, entry("10.0.0.0/8", 1))) // quiet day
	a.Observe(dump(2, entry("10.0.0.0/8", 1), entry("10.0.0.0/8", 3)))
	h := a.DurationHistogram()
	if h.Count(2) != 1 || h.Total() != 1 {
		t.Errorf("duration histogram = %v", h)
	}
}

func TestSummaryStatistics(t *testing.T) {
	a := NewAnalysis()
	// Day 0 (1997): two 2-origin cases and one 3-origin case.
	a.Observe(dump(0,
		entry("10.0.0.0/8", 1), entry("10.0.0.0/8", 2),
		entry("20.0.0.0/8", 3), entry("20.0.0.0/8", 4),
		entry("30.0.0.0/8", 5), entry("30.0.0.0/8", 6), entry("30.0.0.0/8", 7),
	))
	// Day 1: only one of them persists.
	a.Observe(dump(1, entry("10.0.0.0/8", 1), entry("10.0.0.0/8", 2)))
	s := a.Summarize()
	if s.TotalCases != 3 {
		t.Errorf("TotalCases = %d", s.TotalCases)
	}
	if s.OneDayCases != 2 {
		t.Errorf("OneDayCases = %d", s.OneDayCases)
	}
	if s.MaxDaily != 3 {
		t.Errorf("MaxDaily = %d", s.MaxDaily)
	}
	wantDate := routegen.StudyStart
	if !s.MaxDailyDate.Equal(wantDate) {
		t.Errorf("MaxDailyDate = %v", s.MaxDailyDate)
	}
	// Daily cases were 3 (day 0) and 1 (day 1): median 2.
	if got := s.MedianDailyByYear[1997]; got != 2 {
		t.Errorf("median 1997 = %v", got)
	}
	// Observations: 3 two-origin (2 on day 0 + 1 on day 1), 1 three-origin.
	if s.TwoOriginFraction != 0.75 || s.ThreeOriginFraction != 0.25 {
		t.Errorf("origin fractions = %v / %v", s.TwoOriginFraction, s.ThreeOriginFraction)
	}
	// String() should mention the headline numbers.
	str := s.String()
	for _, want := range []string{"total MOAS cases: 3", "one-day cases: 2"} {
		if !containsStr(str, want) {
			t.Errorf("summary %q missing %q", str, want)
		}
	}
}

func TestEmptyAnalysis(t *testing.T) {
	s := NewAnalysis().Summarize()
	if s.TotalCases != 0 || s.OneDayFraction != 0 || s.MaxDaily != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestAnalysisIgnoresEmptyPaths(t *testing.T) {
	a := NewAnalysis()
	a.Observe(&routegen.Dump{Day: 0, Date: time.Now(), Entries: []routegen.Entry{
		{Prefix: astypes.MustPrefix(0x0a000000, 8)}, // no path
		entry("10.0.0.0/8", 1),
	}})
	if a.Daily()[0].Cases != 0 {
		t.Error("pathless entry should not create a MOAS case")
	}
}

// TestCalibrationAgainstPaper runs the full default series and asserts
// the §3 statistics within tolerances. This is the reproduction gate
// for Figures 4 and 5; EXPERIMENTS.md records the exact values.
func TestCalibrationAgainstPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1279-day series; skipped with -short")
	}
	g, err := routegen.New(routegen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Summarize()
	t.Logf("summary:\n%s", s.String())

	assertBetween(t, "total cases", float64(s.TotalCases), 3400, 4700)           // paper ~3824
	assertBetween(t, "one-day fraction", s.OneDayFraction, 0.31, 0.41)           // paper 35.9%
	assertBetween(t, "median 1998", s.MedianDailyByYear[1998], 600, 780)         // paper 683
	assertBetween(t, "median 2001", s.MedianDailyByYear[2001], 1150, 1440)       // paper 1294
	assertBetween(t, "two-origin fraction", s.TwoOriginFraction, 0.92, 0.985)    // paper 96.14%
	assertBetween(t, "three-origin fraction", s.ThreeOriginFraction, 0.01, 0.05) // paper 2.7%
	if got := s.MaxDailyDate.Format("2006-01-02"); got != "1998-04-07" {
		t.Errorf("max daily on %s, want 1998-04-07 (the AS8584 event)", got)
	}
	// Daily counts rise over the window (Figure 4's trend).
	daily := a.Daily()
	firstYear, lastYear := 0.0, 0.0
	for _, dc := range daily[:365] {
		firstYear += float64(dc.Cases)
	}
	for _, dc := range daily[len(daily)-365:] {
		lastYear += float64(dc.Cases)
	}
	if lastYear <= firstYear*1.3 {
		t.Errorf("daily MOAS counts should grow markedly: first-year sum %.0f, last-year sum %.0f",
			firstYear, lastYear)
	}
	// Figure 5's bimodal shape: a dominant 1-day bin plus a long tail.
	h := a.DurationHistogram()
	if h.Count(1) < h.Count(2) {
		t.Error("1-day cases should dominate 2-day cases")
	}
	longTail := 0
	for _, bin := range h.Bins() {
		if bin.Value >= 300 {
			longTail += bin.Count
		}
	}
	if longTail < 100 {
		t.Errorf("expected a substantial long-duration tail, got %d cases >= 300 days", longTail)
	}
}

func assertBetween(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %v, want within [%v, %v]", name, got, lo, hi)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
