package measure

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteFigure4CSV serializes the daily MOAS-case series (Figure 4) as
// CSV rows of (day, date, cases).
func (a *Analysis) WriteFigure4CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"day", "date", "cases"}); err != nil {
		return fmt.Errorf("write fig4 header: %w", err)
	}
	for _, dc := range a.daily {
		row := []string{
			strconv.Itoa(dc.Day),
			dc.Date.Format("2006-01-02"),
			strconv.Itoa(dc.Cases),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write fig4 row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("flush fig4 csv: %w", err)
	}
	return nil
}

// WriteFigure5CSV serializes the duration histogram (Figure 5) as CSV
// rows of (duration_days, cases).
func (a *Analysis) WriteFigure5CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"duration_days", "cases"}); err != nil {
		return fmt.Errorf("write fig5 header: %w", err)
	}
	for _, bin := range a.DurationHistogram().Bins() {
		row := []string{strconv.Itoa(bin.Value), strconv.Itoa(bin.Count)}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write fig5 row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("flush fig5 csv: %w", err)
	}
	return nil
}
